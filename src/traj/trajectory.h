#ifndef T2VEC_TRAJ_TRAJECTORY_H_
#define T2VEC_TRAJ_TRAJECTORY_H_

#include <cstdint>
#include <vector>

#include "geo/point.h"

/// \file
/// The trajectory type (paper Def. 2): a sequence of sample points from the
/// underlying route of a moving object. Points are in the local planar frame
/// (meters); see geo/projection.h for the lon/lat boundary.

namespace t2vec::traj {

/// A trajectory: ordered sample points plus a stable id.
struct Trajectory {
  int64_t id = -1;
  std::vector<geo::Point> points;

  size_t size() const { return points.size(); }
  bool empty() const { return points.empty(); }

  /// Total polyline length in meters.
  double Length() const {
    double total = 0.0;
    for (size_t i = 1; i < points.size(); ++i) {
      total += geo::Distance(points[i - 1], points[i]);
    }
    return total;
  }
};

}  // namespace t2vec::traj

#endif  // T2VEC_TRAJ_TRAJECTORY_H_
