#include "traj/tokenizer.h"

namespace t2vec::traj {

TokenSeq Tokenize(const geo::HotCellVocab& vocab, const Trajectory& t) {
  TokenSeq seq;
  seq.reserve(t.points.size());
  for (const geo::Point& p : t.points) seq.push_back(vocab.TokenOf(p));
  return seq;
}

std::vector<TokenSeq> TokenizeAll(const geo::HotCellVocab& vocab,
                                  const std::vector<Trajectory>& trips) {
  std::vector<TokenSeq> out;
  out.reserve(trips.size());
  for (const Trajectory& t : trips) out.push_back(Tokenize(vocab, t));
  return out;
}

}  // namespace t2vec::traj
