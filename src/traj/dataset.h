#ifndef T2VEC_TRAJ_DATASET_H_
#define T2VEC_TRAJ_DATASET_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "traj/trajectory.h"

/// \file
/// Container for a trajectory collection, with train/test splitting (the
/// paper splits by trip start time; our generator emits trips in temporal
/// order, so a prefix split is equivalent) and a simple text serialization.

namespace t2vec::traj {

/// An ordered collection of trajectories.
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::vector<Trajectory> trajectories)
      : trajectories_(std::move(trajectories)) {}

  size_t size() const { return trajectories_.size(); }
  bool empty() const { return trajectories_.empty(); }

  const Trajectory& operator[](size_t i) const { return trajectories_[i]; }
  Trajectory& operator[](size_t i) { return trajectories_[i]; }

  const std::vector<Trajectory>& trajectories() const { return trajectories_; }

  void Add(Trajectory t) { trajectories_.push_back(std::move(t)); }

  /// All sample points across all trajectories (feeds vocabulary building).
  std::vector<geo::Point> AllPoints() const;

  /// Mean trajectory length in points (Table II's "mean length").
  double MeanLength() const;

  /// Total number of sample points (Table II's "#Points").
  int64_t TotalPoints() const;

  /// Splits by position: the first `train_count` trajectories become the
  /// training set, the rest the test set (temporal split).
  void Split(size_t train_count, Dataset* train, Dataset* test) const;

  /// Writes the dataset to a text file (one line per point, blank line
  /// between trajectories).
  Status Save(const std::string& path) const;

  /// Reads a dataset written by Save().
  static Result<Dataset> Load(const std::string& path);

 private:
  std::vector<Trajectory> trajectories_;
};

}  // namespace t2vec::traj

#endif  // T2VEC_TRAJ_DATASET_H_
