#ifndef T2VEC_TRAJ_TOKENIZER_H_
#define T2VEC_TRAJ_TOKENIZER_H_

#include <vector>

#include "geo/vocab.h"
#include "traj/trajectory.h"

/// \file
/// Trajectory -> token-sequence conversion. Each sample point is mapped to
/// its nearest hot cell (paper Sec. IV-B); the resulting token sequence is
/// what the sequence encoder-decoder consumes.

namespace t2vec::traj {

/// A trajectory rendered as a sequence of hot-cell tokens.
using TokenSeq = std::vector<geo::Token>;

/// Maps every point of `t` to its nearest hot-cell token.
TokenSeq Tokenize(const geo::HotCellVocab& vocab, const Trajectory& t);

/// Tokenizes every trajectory of a collection.
std::vector<TokenSeq> TokenizeAll(const geo::HotCellVocab& vocab,
                                  const std::vector<Trajectory>& trips);

}  // namespace t2vec::traj

#endif  // T2VEC_TRAJ_TOKENIZER_H_
