#ifndef T2VEC_TRAJ_CSV_H_
#define T2VEC_TRAJ_CSV_H_

#include <string>

#include "common/status.h"
#include "geo/projection.h"
#include "traj/dataset.h"

/// \file
/// Import/export of lon/lat trajectory CSV — the boundary for real datasets
/// such as the ECML/PKDD Porto taxi release. Rows are
/// `trip_id,lon,lat` (header optional); consecutive rows with the same
/// trip_id form one trajectory, ordered as they appear. Coordinates are
/// projected into the local planar frame on load so the rest of the library
/// operates in meters.

namespace t2vec::traj {

/// Loads `trip_id,lon,lat` rows and projects them with `projection`.
/// Skips a leading header row if the first field is not numeric. Fails on
/// malformed rows; trajectories shorter than `min_points` are dropped
/// (paper Sec. V-A filters trips shorter than 30 points).
Result<Dataset> LoadLonLatCsv(const std::string& path,
                              const geo::LocalProjection& projection,
                              int min_points = 2);

/// Writes a dataset back as `trip_id,lon,lat` rows (inverse projection).
Status SaveLonLatCsv(const Dataset& dataset,
                     const geo::LocalProjection& projection,
                     const std::string& path);

}  // namespace t2vec::traj

#endif  // T2VEC_TRAJ_CSV_H_
