#include "traj/csv.h"

#include <cctype>
#include <fstream>
#include <sstream>

#include "common/fs.h"

namespace t2vec::traj {

namespace {

// Splits a CSV line into exactly three fields; no quoting support (the
// format carries only ids and numbers).
bool SplitRow(const std::string& line, std::string* id, std::string* lon,
              std::string* lat) {
  const size_t c1 = line.find(',');
  if (c1 == std::string::npos) return false;
  const size_t c2 = line.find(',', c1 + 1);
  if (c2 == std::string::npos) return false;
  if (line.find(',', c2 + 1) != std::string::npos) return false;
  *id = line.substr(0, c1);
  *lon = line.substr(c1 + 1, c2 - c1 - 1);
  *lat = line.substr(c2 + 1);
  return true;
}

bool ParseDouble(const std::string& s, double* out) {
  std::istringstream stream(s);
  return static_cast<bool>(stream >> *out) && stream.eof();
}

}  // namespace

Result<Dataset> LoadLonLatCsv(const std::string& path,
                              const geo::LocalProjection& projection,
                              int min_points) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for read: " + path);

  Dataset dataset;
  Trajectory current;
  bool has_current = false;
  std::string previous_id;

  auto flush = [&]() {
    if (has_current &&
        static_cast<int>(current.size()) >= min_points) {
      dataset.Add(std::move(current));
    }
    current = Trajectory{};
  };

  std::string line;
  size_t row = 0;
  while (std::getline(in, line)) {
    ++row;
    if (line.empty()) continue;
    if (!line.empty() && line.back() == '\r') line.pop_back();

    std::string id_field, lon_field, lat_field;
    if (!SplitRow(line, &id_field, &lon_field, &lat_field)) {
      return Status::IoError("malformed CSV row " + std::to_string(row) +
                             " in " + path);
    }
    double lon = 0.0, lat = 0.0;
    if (!ParseDouble(lon_field, &lon) || !ParseDouble(lat_field, &lat)) {
      if (row == 1) continue;  // Header row.
      return Status::IoError("non-numeric coordinates at row " +
                             std::to_string(row) + " in " + path);
    }
    if (lon < -180.0 || lon > 180.0 || lat < -90.0 || lat > 90.0) {
      return Status::InvalidArgument("out-of-range lon/lat at row " +
                                     std::to_string(row) + " in " + path);
    }

    if (!has_current || id_field != previous_id) {
      flush();
      has_current = true;
      previous_id = id_field;
      // Numeric ids are preserved; others get a sequential id.
      std::istringstream id_stream(id_field);
      if (!(id_stream >> current.id)) {
        current.id = static_cast<int64_t>(dataset.size());
      }
    }
    current.points.push_back(projection.Forward({lon, lat}));
  }
  flush();
  if (dataset.empty()) {
    return Status::InvalidArgument("no usable trajectories in " + path);
  }
  return dataset;
}

Status SaveLonLatCsv(const Dataset& dataset,
                     const geo::LocalProjection& projection,
                     const std::string& path) {
  std::ostringstream out;
  out.precision(10);
  out << "trip_id,lon,lat\n";
  for (size_t i = 0; i < dataset.size(); ++i) {
    for (const geo::Point& p : dataset[i].points) {
      const geo::GeoPoint g = projection.Inverse(p);
      out << dataset[i].id << "," << g.lon << "," << g.lat << "\n";
    }
  }
  return WriteFileAtomic(path, out.str());
}

}  // namespace t2vec::traj
