#ifndef T2VEC_TRAJ_ROAD_NETWORK_H_
#define T2VEC_TRAJ_ROAD_NETWORK_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "geo/point.h"

/// \file
/// Synthetic road network (dataset substitution, DESIGN.md §1).
///
/// The network is a perturbed lattice: intersections sit near lattice
/// positions with random jitter, connected by 4-neighbor streets plus a
/// fraction of diagonal shortcuts. Each directed edge carries a popularity
/// weight drawn from a heavy-tailed distribution, mimicking the skewed
/// transition patterns between urban locations that t2vec exploits
/// (paper Sec. IV-A, citing [10], [12]). Routes are popularity-biased walks,
/// so popular corridors emerge and are shared across many trips — exactly
/// the structure the encoder-decoder learns from historical data.

namespace t2vec::traj {

/// Parameters for the synthetic road network.
struct RoadNetworkConfig {
  double region_width = 10000.0;    ///< meters
  double region_height = 10000.0;   ///< meters
  double node_spacing = 250.0;      ///< lattice spacing, meters
  double position_jitter = 50.0;    ///< max node displacement, meters
  double diagonal_fraction = 0.15;  ///< fraction of cells with a diagonal
  double popularity_alpha = 1.0;    ///< Pareto tail index for edge weights
  uint64_t seed = 1;
};

/// A random planar road graph with popularity-weighted directed edges.
class RoadNetwork {
 public:
  explicit RoadNetwork(const RoadNetworkConfig& config);

  /// Node position in meters.
  const geo::Point& NodePosition(int32_t node) const {
    return positions_[static_cast<size_t>(node)];
  }

  size_t num_nodes() const { return positions_.size(); }
  size_t num_edges() const;

  /// Samples a route of roughly `target_length_m` meters as a
  /// popularity-biased walk without immediate backtracking. Returns node
  /// positions (at least two nodes).
  std::vector<geo::Point> SampleRoute(double target_length_m, Rng& rng) const;

  /// Samples a start node, biased toward high-popularity "hub" nodes
  /// (taxi stands, stations); exposed for tests.
  int32_t SampleStartNode(Rng& rng) const;

  const RoadNetworkConfig& config() const { return config_; }

 private:
  struct Edge {
    int32_t to;
    double popularity;
    double length;
  };

  RoadNetworkConfig config_;
  std::vector<geo::Point> positions_;
  std::vector<std::vector<Edge>> adjacency_;
  std::vector<double> node_popularity_;  // Sum of outgoing edge popularity.
};

}  // namespace t2vec::traj

#endif  // T2VEC_TRAJ_ROAD_NETWORK_H_
