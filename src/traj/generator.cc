#include "traj/generator.h"

#include <algorithm>
#include <cmath>

#include "common/thread_pool.h"

namespace t2vec::traj {

namespace {

// splitmix64-style derivation of an independent per-trip RNG seed from the
// generator seed and the trip id. Decorrelating trips this way (instead of
// one shared stream) is what makes trip i a pure function of (config, i).
uint64_t TripSeed(uint64_t base_seed, int64_t id) {
  uint64_t z = base_seed + 0x9E3779B97F4A7C15ULL *
                               (static_cast<uint64_t>(id) + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

GeneratorConfig GeneratorConfig::PortoLike() {
  GeneratorConfig config;
  config.network.region_width = 8000.0;
  config.network.region_height = 8000.0;
  config.network.node_spacing = 250.0;
  config.network.seed = 11;
  config.report_interval_s = 15.0;
  config.min_trip_points = 30;
  config.max_trip_points = 90;
  config.seed = 101;
  return config;
}

GeneratorConfig GeneratorConfig::HarbinLike() {
  GeneratorConfig config;
  config.network.region_width = 12000.0;
  config.network.region_height = 12000.0;
  config.network.node_spacing = 300.0;
  config.network.seed = 13;
  config.report_interval_s = 10.0;
  config.min_trip_points = 60;
  config.max_trip_points = 130;
  config.seed = 103;
  return config;
}

SyntheticTrajectoryGenerator::SyntheticTrajectoryGenerator(
    const GeneratorConfig& config)
    : config_(config), network_(config.network) {}

std::vector<geo::Point> SampleAlongPolyline(
    const std::vector<geo::Point>& route, double spacing_m) {
  T2VEC_CHECK(route.size() >= 2);
  T2VEC_CHECK(spacing_m > 0.0);
  std::vector<geo::Point> points;
  points.push_back(route.front());
  double carry = spacing_m;  // Distance until the next sample point.
  for (size_t i = 1; i < route.size(); ++i) {
    const geo::Point& a = route[i - 1];
    const geo::Point& b = route[i];
    const double seg_len = geo::Distance(a, b);
    double offset = carry;
    while (offset <= seg_len) {
      points.push_back(geo::Lerp(a, b, offset / seg_len));
      offset += spacing_m;
    }
    carry = offset - seg_len;
  }
  return points;
}

Trajectory SyntheticTrajectoryGenerator::GenerateOne(
    int64_t id, std::vector<geo::Point>* route_out) const {
  Rng rng(TripSeed(config_.seed, id));
  Trajectory trip;
  trip.id = id;
  // Rejection loop: regenerate until the trip is long enough (short walks
  // near the region border can terminate early).
  for (int attempt = 0; attempt < 100; ++attempt) {
    const double speed =
        rng.Uniform(config_.min_speed_mps, config_.max_speed_mps);
    const double spacing = speed * config_.report_interval_s;
    const int target_points = static_cast<int>(rng.Uniform(
        config_.min_trip_points, config_.max_trip_points));
    const double target_length = spacing * target_points;

    std::vector<geo::Point> route = network_.SampleRoute(target_length, rng);
    std::vector<geo::Point> samples = SampleAlongPolyline(route, spacing);
    if (static_cast<int>(samples.size()) < config_.min_trip_points) continue;
    if (static_cast<int>(samples.size()) > config_.max_trip_points) {
      samples.resize(static_cast<size_t>(config_.max_trip_points));
    }

    trip.points.clear();
    trip.points.reserve(samples.size());
    for (const geo::Point& p : samples) {
      trip.points.push_back({p.x + rng.Gaussian(0.0, config_.gps_noise_m),
                             p.y + rng.Gaussian(0.0, config_.gps_noise_m)});
    }
    if (route_out != nullptr) *route_out = std::move(route);
    return trip;
  }
  T2VEC_CHECK(false && "generator failed to produce a valid trip");
  return trip;
}

Dataset SyntheticTrajectoryGenerator::Generate(size_t count) const {
  std::vector<Trajectory> trips(count);
  ParallelFor(0, count, 8, [&](size_t i) {
    trips[i] = GenerateOne(static_cast<int64_t>(i), nullptr);
  });
  return Dataset(std::move(trips));
}

}  // namespace t2vec::traj
