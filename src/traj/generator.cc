#include "traj/generator.h"

#include <algorithm>
#include <cmath>

namespace t2vec::traj {

GeneratorConfig GeneratorConfig::PortoLike() {
  GeneratorConfig config;
  config.network.region_width = 8000.0;
  config.network.region_height = 8000.0;
  config.network.node_spacing = 250.0;
  config.network.seed = 11;
  config.report_interval_s = 15.0;
  config.min_trip_points = 30;
  config.max_trip_points = 90;
  config.seed = 101;
  return config;
}

GeneratorConfig GeneratorConfig::HarbinLike() {
  GeneratorConfig config;
  config.network.region_width = 12000.0;
  config.network.region_height = 12000.0;
  config.network.node_spacing = 300.0;
  config.network.seed = 13;
  config.report_interval_s = 10.0;
  config.min_trip_points = 60;
  config.max_trip_points = 130;
  config.seed = 103;
  return config;
}

SyntheticTrajectoryGenerator::SyntheticTrajectoryGenerator(
    const GeneratorConfig& config)
    : config_(config), network_(config.network), rng_(config.seed) {}

std::vector<geo::Point> SampleAlongPolyline(
    const std::vector<geo::Point>& route, double spacing_m) {
  T2VEC_CHECK(route.size() >= 2);
  T2VEC_CHECK(spacing_m > 0.0);
  std::vector<geo::Point> points;
  points.push_back(route.front());
  double carry = spacing_m;  // Distance until the next sample point.
  for (size_t i = 1; i < route.size(); ++i) {
    const geo::Point& a = route[i - 1];
    const geo::Point& b = route[i];
    const double seg_len = geo::Distance(a, b);
    double offset = carry;
    while (offset <= seg_len) {
      points.push_back(geo::Lerp(a, b, offset / seg_len));
      offset += spacing_m;
    }
    carry = offset - seg_len;
  }
  return points;
}

Trajectory SyntheticTrajectoryGenerator::GenerateOne(
    int64_t id, std::vector<geo::Point>* route_out) {
  Trajectory trip;
  trip.id = id;
  // Rejection loop: regenerate until the trip is long enough (short walks
  // near the region border can terminate early).
  for (int attempt = 0; attempt < 100; ++attempt) {
    const double speed =
        rng_.Uniform(config_.min_speed_mps, config_.max_speed_mps);
    const double spacing = speed * config_.report_interval_s;
    const int target_points = static_cast<int>(rng_.Uniform(
        config_.min_trip_points, config_.max_trip_points));
    const double target_length = spacing * target_points;

    std::vector<geo::Point> route = network_.SampleRoute(target_length, rng_);
    std::vector<geo::Point> samples = SampleAlongPolyline(route, spacing);
    if (static_cast<int>(samples.size()) < config_.min_trip_points) continue;
    if (static_cast<int>(samples.size()) > config_.max_trip_points) {
      samples.resize(static_cast<size_t>(config_.max_trip_points));
    }

    trip.points.clear();
    trip.points.reserve(samples.size());
    for (const geo::Point& p : samples) {
      trip.points.push_back({p.x + rng_.Gaussian(0.0, config_.gps_noise_m),
                             p.y + rng_.Gaussian(0.0, config_.gps_noise_m)});
    }
    if (route_out != nullptr) *route_out = std::move(route);
    return trip;
  }
  T2VEC_CHECK(false && "generator failed to produce a valid trip");
  return trip;
}

Dataset SyntheticTrajectoryGenerator::Generate(size_t count) {
  Dataset dataset;
  for (size_t i = 0; i < count; ++i) {
    dataset.Add(GenerateOne(static_cast<int64_t>(i), nullptr));
  }
  return dataset;
}

}  // namespace t2vec::traj
