#include "traj/transforms.h"

namespace t2vec::traj {

Trajectory Downsample(const Trajectory& t, double dropping_rate, Rng& rng) {
  T2VEC_CHECK(dropping_rate >= 0.0 && dropping_rate < 1.0);
  Trajectory out;
  out.id = t.id;
  if (t.points.size() <= 2 || dropping_rate == 0.0) {
    out.points = t.points;
    return out;
  }
  out.points.reserve(t.points.size());
  out.points.push_back(t.points.front());
  for (size_t i = 1; i + 1 < t.points.size(); ++i) {
    if (!rng.Bernoulli(dropping_rate)) out.points.push_back(t.points[i]);
  }
  out.points.push_back(t.points.back());
  return out;
}

Trajectory Distort(const Trajectory& t, double distorting_rate, Rng& rng,
                   double radius_m) {
  T2VEC_CHECK(distorting_rate >= 0.0 && distorting_rate <= 1.0);
  Trajectory out;
  out.id = t.id;
  out.points.reserve(t.points.size());
  for (const geo::Point& p : t.points) {
    if (rng.Bernoulli(distorting_rate)) {
      out.points.push_back({p.x + radius_m * rng.Gaussian(),
                            p.y + radius_m * rng.Gaussian()});
    } else {
      out.points.push_back(p);
    }
  }
  return out;
}

std::pair<Trajectory, Trajectory> AlternatingSplit(const Trajectory& t) {
  Trajectory odd, even;
  odd.id = t.id;
  even.id = t.id;
  odd.points.reserve((t.points.size() + 1) / 2);
  even.points.reserve(t.points.size() / 2);
  for (size_t i = 0; i < t.points.size(); ++i) {
    ((i % 2 == 0) ? odd : even).points.push_back(t.points[i]);
  }
  return {std::move(odd), std::move(even)};
}

}  // namespace t2vec::traj
