#ifndef T2VEC_TRAJ_SIMPLIFY_H_
#define T2VEC_TRAJ_SIMPLIFY_H_

#include "traj/trajectory.h"

/// \file
/// Trajectory simplification utilities. Douglas–Peucker is the standard
/// preprocessing step in trajectory pipelines (compression before storage,
/// noise-robust shape extraction); it also provides a *structured*
/// downsampling contrast to the uniform random dropping of the paper's
/// protocol — simplification keeps shape-defining points, random dropping
/// does not.

namespace t2vec::traj {

/// Douglas–Peucker simplification: returns the sub-trajectory whose
/// deviation from `t` never exceeds `epsilon_m` meters. Endpoints are
/// always retained; point order is preserved.
Trajectory DouglasPeucker(const Trajectory& t, double epsilon_m);

/// Maximum perpendicular deviation of `t`'s points from the polyline
/// `simplified` (validation metric for simplification).
double MaxDeviation(const Trajectory& t, const Trajectory& simplified);

}  // namespace t2vec::traj

#endif  // T2VEC_TRAJ_SIMPLIFY_H_
