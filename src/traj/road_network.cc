#include "traj/road_network.h"

#include <algorithm>
#include <cmath>

namespace t2vec::traj {

RoadNetwork::RoadNetwork(const RoadNetworkConfig& config) : config_(config) {
  Rng rng(config.seed);
  const int32_t cols = std::max(
      2, static_cast<int32_t>(config.region_width / config.node_spacing) + 1);
  const int32_t rows = std::max(
      2, static_cast<int32_t>(config.region_height / config.node_spacing) + 1);

  positions_.reserve(static_cast<size_t>(rows) * cols);
  for (int32_t r = 0; r < rows; ++r) {
    for (int32_t c = 0; c < cols; ++c) {
      const double jx = rng.Uniform(-config.position_jitter,
                                    config.position_jitter);
      const double jy = rng.Uniform(-config.position_jitter,
                                    config.position_jitter);
      positions_.push_back(
          {c * config.node_spacing + jx, r * config.node_spacing + jy});
    }
  }

  adjacency_.resize(positions_.size());
  auto node_at = [cols](int32_t r, int32_t c) { return r * cols + c; };

  // Heavy-tailed popularity: pareto-like via inverse-CDF of U^(-1/alpha).
  auto draw_popularity = [&rng, &config]() {
    const double u = std::max(rng.Uniform(), 1e-9);
    return std::pow(u, -1.0 / config.popularity_alpha);
  };

  // Streets are bidirectional but each direction gets its own popularity
  // (one-way-like asymmetry of real traffic).
  auto connect = [&](int32_t a, int32_t b) {
    const double len = geo::Distance(positions_[static_cast<size_t>(a)],
                                     positions_[static_cast<size_t>(b)]);
    adjacency_[static_cast<size_t>(a)].push_back({b, draw_popularity(), len});
    adjacency_[static_cast<size_t>(b)].push_back({a, draw_popularity(), len});
  };

  for (int32_t r = 0; r < rows; ++r) {
    for (int32_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) connect(node_at(r, c), node_at(r, c + 1));
      if (r + 1 < rows) connect(node_at(r, c), node_at(r + 1, c));
      if (r + 1 < rows && c + 1 < cols &&
          rng.Bernoulli(config.diagonal_fraction)) {
        // One random diagonal per lattice cell (either orientation).
        if (rng.Bernoulli(0.5)) {
          connect(node_at(r, c), node_at(r + 1, c + 1));
        } else {
          connect(node_at(r, c + 1), node_at(r + 1, c));
        }
      }
    }
  }

  node_popularity_.resize(positions_.size(), 0.0);
  for (size_t i = 0; i < adjacency_.size(); ++i) {
    for (const Edge& e : adjacency_[i]) node_popularity_[i] += e.popularity;
  }
}

size_t RoadNetwork::num_edges() const {
  size_t total = 0;
  for (const auto& edges : adjacency_) total += edges.size();
  return total;
}

int32_t RoadNetwork::SampleStartNode(Rng& rng) const {
  // Squaring the popularity sharpens the hub structure: a few nodes dominate
  // trip origins, as taxi stands do.
  std::vector<double> weights(node_popularity_.size());
  for (size_t i = 0; i < weights.size(); ++i) {
    weights[i] = node_popularity_[i] * node_popularity_[i];
  }
  return static_cast<int32_t>(rng.Categorical(weights));
}

std::vector<geo::Point> RoadNetwork::SampleRoute(double target_length_m,
                                                 Rng& rng) const {
  int32_t current = SampleStartNode(rng);
  int32_t previous = -1;
  std::vector<geo::Point> route;
  route.push_back(positions_[static_cast<size_t>(current)]);
  double length = 0.0;

  std::vector<double> weights;
  while (length < target_length_m) {
    const auto& edges = adjacency_[static_cast<size_t>(current)];
    T2VEC_CHECK(!edges.empty());
    weights.clear();
    weights.reserve(edges.size());
    for (const Edge& e : edges) {
      // No immediate backtracking unless it is the only option.
      weights.push_back(e.to == previous ? 0.0 : e.popularity);
    }
    double total = 0.0;
    for (double w : weights) total += w;
    if (total <= 0.0) {
      weights.assign(edges.size(), 1.0);  // Dead end: allow turning back.
    }
    const Edge& chosen = edges[rng.Categorical(weights)];
    previous = current;
    current = chosen.to;
    route.push_back(positions_[static_cast<size_t>(current)]);
    length += chosen.length;
  }
  return route;
}

}  // namespace t2vec::traj
