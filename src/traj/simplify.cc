#include "traj/simplify.h"

#include <algorithm>
#include <vector>

#include "common/macros.h"

namespace t2vec::traj {

namespace {

// Marks the points to keep in [first, last] (iterative stack to avoid deep
// recursion on long trajectories).
void MarkKeepers(const std::vector<geo::Point>& points, double epsilon,
                 std::vector<uint8_t>* keep) {
  std::vector<std::pair<size_t, size_t>> stack = {{0, points.size() - 1}};
  while (!stack.empty()) {
    const auto [first, last] = stack.back();
    stack.pop_back();
    if (last <= first + 1) continue;
    double worst = -1.0;
    size_t worst_index = first;
    for (size_t i = first + 1; i < last; ++i) {
      const double d =
          geo::DistanceToSegment(points[i], points[first], points[last]);
      if (d > worst) {
        worst = d;
        worst_index = i;
      }
    }
    if (worst > epsilon) {
      (*keep)[worst_index] = 1;
      stack.emplace_back(first, worst_index);
      stack.emplace_back(worst_index, last);
    }
  }
}

}  // namespace

Trajectory DouglasPeucker(const Trajectory& t, double epsilon_m) {
  T2VEC_CHECK(epsilon_m >= 0.0);
  Trajectory out;
  out.id = t.id;
  if (t.size() <= 2) {
    out.points = t.points;
    return out;
  }
  std::vector<uint8_t> keep(t.size(), 0);
  keep.front() = 1;
  keep.back() = 1;
  MarkKeepers(t.points, epsilon_m, &keep);
  for (size_t i = 0; i < t.size(); ++i) {
    if (keep[i]) out.points.push_back(t.points[i]);
  }
  return out;
}

double MaxDeviation(const Trajectory& t, const Trajectory& simplified) {
  T2VEC_CHECK(simplified.size() >= 2);
  double worst = 0.0;
  for (const geo::Point& p : t.points) {
    double best = 1e300;
    for (size_t i = 1; i < simplified.size(); ++i) {
      best = std::min(best,
                      geo::DistanceToSegment(p, simplified.points[i - 1],
                                             simplified.points[i]));
    }
    worst = std::max(worst, best);
  }
  return worst;
}

}  // namespace t2vec::traj
