#include "traj/dataset.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/fs.h"

namespace t2vec::traj {

std::vector<geo::Point> Dataset::AllPoints() const {
  std::vector<geo::Point> out;
  out.reserve(static_cast<size_t>(TotalPoints()));
  for (const Trajectory& t : trajectories_) {
    out.insert(out.end(), t.points.begin(), t.points.end());
  }
  return out;
}

double Dataset::MeanLength() const {
  if (trajectories_.empty()) return 0.0;
  return static_cast<double>(TotalPoints()) /
         static_cast<double>(trajectories_.size());
}

int64_t Dataset::TotalPoints() const {
  int64_t total = 0;
  for (const Trajectory& t : trajectories_) {
    total += static_cast<int64_t>(t.size());
  }
  return total;
}

void Dataset::Split(size_t train_count, Dataset* train, Dataset* test) const {
  T2VEC_CHECK(train_count <= trajectories_.size());
  train->trajectories_.assign(trajectories_.begin(),
                              trajectories_.begin() + train_count);
  test->trajectories_.assign(trajectories_.begin() + train_count,
                             trajectories_.end());
}

Status Dataset::Save(const std::string& path) const {
  std::ostringstream out;
  out.precision(15);  // Sub-micrometer for metropolitan-scale coordinates.
  for (const Trajectory& t : trajectories_) {
    out << "# " << t.id << "\n";
    for (const geo::Point& p : t.points) {
      out << p.x << " " << p.y << "\n";
    }
  }
  return WriteFileAtomic(path, out.str());
}

Result<Dataset> Dataset::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for read: " + path);
  Dataset dataset;
  Trajectory current;
  bool has_current = false;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      if (has_current) dataset.Add(std::move(current));
      current = Trajectory{};
      has_current = true;
      std::istringstream header(line.substr(1));
      if (!(header >> current.id)) {
        return Status::IoError("malformed trajectory header: " + line);
      }
      continue;
    }
    if (!has_current) {
      return Status::IoError("point before trajectory header in " + path);
    }
    std::istringstream fields(line);
    geo::Point p;
    if (!(fields >> p.x >> p.y)) {
      return Status::IoError("malformed point line: " + line);
    }
    current.points.push_back(p);
  }
  if (has_current) dataset.Add(std::move(current));
  return dataset;
}

}  // namespace t2vec::traj
