#ifndef T2VEC_TRAJ_TRANSFORMS_H_
#define T2VEC_TRAJ_TRANSFORMS_H_

#include <utility>

#include "common/rng.h"
#include "traj/trajectory.h"

/// \file
/// The trajectory transformations of the paper's experimental protocol:
/// random downsampling at dropping rate r1 (Sec. IV-B), point distortion at
/// distorting rate r2 with 30 m Gaussian noise (Eq. 3), and the alternating
/// odd/even split used to build query/database pairs (Fig. 4).

namespace t2vec::traj {

/// Distortion radius of Eq. 3: p += 30 * N(0, 1) meters per coordinate.
inline constexpr double kDistortRadiusM = 30.0;

/// Randomly drops interior points with probability `dropping_rate`; the
/// start and end points are always preserved (the paper keeps them to avoid
/// changing the underlying route).
Trajectory Downsample(const Trajectory& t, double dropping_rate, Rng& rng);

/// Distorts a random fraction `distorting_rate` of the points by adding
/// Gaussian noise with radius `radius_m` per coordinate (paper Eq. 3).
Trajectory Distort(const Trajectory& t, double distorting_rate, Rng& rng,
                   double radius_m = kDistortRadiusM);

/// Splits `t` into two sub-trajectories by alternately assigning points
/// (indices 0, 2, 4, ... and 1, 3, 5, ...), as in the paper's Fig. 4. Both
/// halves inherit the source id.
std::pair<Trajectory, Trajectory> AlternatingSplit(const Trajectory& t);

}  // namespace t2vec::traj

#endif  // T2VEC_TRAJ_TRANSFORMS_H_
