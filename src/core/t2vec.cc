#include "core/t2vec.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <deque>
#include <filesystem>
#include <unordered_map>

#include "common/logging.h"
#include "common/sync.h"
#include "common/serialize.h"
#include "common/thread_pool.h"
#include "core/decoder.h"
#include "core/cell_pretrain.h"
#include "core/pairs.h"
#include "geo/cell_knn.h"
#include "nn/checkpoint.h"
#include "nn/kernels.h"

namespace t2vec::core {

namespace {

constexpr uint32_t kModelMagic = 0x54325631;  // "T2V1"
// Version 2 added the atomic-write + CRC32C trailer framing (DESIGN.md §7);
// the payload layout is unchanged, so version-1 (trailer-less) files remain
// loadable.
constexpr uint32_t kModelVersion = 2;
constexpr uint32_t kFirstChecksummedModelVersion = 2;

// Bounding box of all points, expanded by one cell so boundary clamping
// never moves a real point.
void BoundingBox(const std::vector<geo::Point>& points, double margin,
                 geo::Point* min_corner, geo::Point* max_corner) {
  T2VEC_CHECK(!points.empty());
  *min_corner = points.front();
  *max_corner = points.front();
  for (const geo::Point& p : points) {
    min_corner->x = std::min(min_corner->x, p.x);
    min_corner->y = std::min(min_corner->y, p.y);
    max_corner->x = std::max(max_corner->x, p.x);
    max_corner->y = std::max(max_corner->y, p.y);
  }
  min_corner->x -= margin;
  min_corner->y -= margin;
  max_corner->x += margin;
  max_corner->y += margin;
}

}  // namespace

Result<T2Vec> T2Vec::TrainChecked(const std::vector<traj::Trajectory>& trips,
                                  const T2VecConfig& config,
                                  TrainStats* stats) {
  if (Status status = config.Validate(); !status.ok()) return status;
  if (trips.empty()) {
    return Status::InvalidArgument("training set is empty");
  }
  bool any_points = false;
  for (const traj::Trajectory& t : trips) any_points |= !t.empty();
  if (!any_points) {
    return Status::InvalidArgument("no trajectory has any points");
  }
  Rng rng(config.seed);

  // 1. Hot-cell vocabulary over the training points.
  std::vector<geo::Point> all_points;
  for (const traj::Trajectory& t : trips) {
    all_points.insert(all_points.end(), t.points.begin(), t.points.end());
  }
  geo::Point min_corner, max_corner;
  BoundingBox(all_points, config.cell_size, &min_corner, &max_corner);
  geo::SpatialGrid grid(min_corner, max_corner, config.cell_size);
  auto vocab = std::make_unique<geo::HotCellVocab>(grid, all_points,
                                                   config.hot_cell_min_hits);
  T2VEC_LOG_INFO("vocab: %zu hot cells (grid %lld x %lld)",
                 vocab->num_hot_cells(),
                 static_cast<long long>(grid.rows()),
                 static_cast<long long>(grid.cols()));

  // 2. K-nearest-cell kernel table.
  geo::CellKnnTable knn(*vocab, config.knn_k, config.theta);

  // 3. Model; optionally seed the embedding with Algorithm 1.
  auto model =
      std::make_unique<EncoderDecoder>(config, vocab->vocab_size(), rng);
  if (config.pretrain_cells) {
    Rng pretrain_rng = rng.Fork();
    // The pretraining kernel (Eq. 8) may use its own θ.
    const geo::CellKnnTable* context_knn = &knn;
    std::unique_ptr<geo::CellKnnTable> alt_knn;
    if (config.pretrain_theta != config.theta) {
      alt_knn = std::make_unique<geo::CellKnnTable>(*vocab, config.knn_k,
                                                    config.pretrain_theta);
      context_knn = alt_knn.get();
    }
    model->embedding().table().value = PretrainCellEmbeddings(
        *vocab, *context_knn, config, pretrain_rng);
    T2VEC_LOG_INFO("cell pretraining done");
  }

  // 4. Training pairs (r1 x r2 grid of variants).
  Rng pair_rng = rng.Fork();
  std::vector<TokenPair> pairs =
      BuildTrainingPairs(trips, *vocab, config, pair_rng);
  T2VEC_LOG_INFO("training pairs: %zu", pairs.size());

  // 5. Train.
  Rng loss_rng = rng.Fork();
  std::unique_ptr<SeqLoss> loss =
      MakeLoss(config, &model->projection(), vocab.get(), &knn, loss_rng);
  Trainer trainer(model.get(), loss.get(), config);
  if (!config.checkpoint_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(config.checkpoint_dir, ec);
    if (ec) {
      return Status::IoError("cannot create checkpoint directory " +
                             config.checkpoint_dir + ": " + ec.message());
    }
    trainer.EnableCheckpoints(config.checkpoint_dir, config.checkpoint_every);
  }
  if (!config.resume_from.empty()) {
    // A broken snapshot may have already scribbled on the model weights, so
    // surface the error instead of silently training from a half-restored
    // state.
    if (Status status = trainer.Resume(config.resume_from); !status.ok()) {
      return status;
    }
  }
  Rng train_rng = rng.Fork();
  TrainStats local_stats = trainer.Train(std::move(pairs), train_rng);
  if (stats != nullptr) *stats = local_stats;
  T2VEC_LOG_INFO("training done: %zu iters, best val %.4f, %.0fs",
                 local_stats.iterations, local_stats.best_val_loss,
                 local_stats.train_seconds);

  return T2Vec(config, std::move(vocab), std::move(model));
}

T2Vec T2Vec::Train(const std::vector<traj::Trajectory>& trips,
                   const T2VecConfig& config, TrainStats* stats) {
  Result<T2Vec> result = TrainChecked(trips, config, stats);
  if (!result.ok()) {
    T2VEC_LOG_ERROR("T2Vec::Train: %s", result.status().ToString().c_str());
  }
  T2VEC_CHECK(result.ok());
  return std::move(result).value();
}

traj::TokenSeq T2Vec::TokenizeForEncoder(const traj::Trajectory& trip) const {
  traj::TokenSeq seq = traj::Tokenize(*vocab_, trip);
  if (config_.reverse_source) std::reverse(seq.begin(), seq.end());
  return seq;
}

nn::Matrix T2Vec::Encode(const std::vector<traj::Trajectory>& trips) const {
  // Encode in slices to bound the padded batch size. Slices are independent
  // (the forward pass is const and each slice writes a disjoint row range of
  // `out`), so they parallelize with results bit-identical to a serial run.
  constexpr size_t kSlice = 256;
  nn::Matrix out(trips.size(), model_->hidden());
  const size_t num_slices = (trips.size() + kSlice - 1) / kSlice;
  ParallelFor(
      0, num_slices, 1,
      [&](size_t s) {
        const size_t start = s * kSlice;
        const size_t end = std::min(start + kSlice, trips.size());
        std::vector<traj::TokenSeq> seqs;
        seqs.reserve(end - start);
        for (size_t i = start; i < end; ++i) {
          seqs.push_back(TokenizeForEncoder(trips[i]));
        }
        const nn::Matrix block = model_->EncodeBatch(seqs);
        for (size_t i = start; i < end; ++i) {
          std::copy(block.Row(i - start), block.Row(i - start) + block.cols(),
                    out.Row(i));
        }
      },
      config_.num_threads);
  return out;
}

std::vector<float> T2Vec::EncodeOne(const traj::Trajectory& trip) const {
  const nn::Matrix m = model_->EncodeBatch({TokenizeForEncoder(trip)});
  return {m.Row(0), m.Row(0) + m.cols()};
}

nn::Matrix T2Vec::EncodeTokenized(
    const std::vector<traj::TokenSeq>& seqs) const {
  return model_->EncodeBatch(seqs);
}

const QuantizedEncoder& T2Vec::Quantized() const {
  sync::MutexLock lock(&quant_->mu);
  if (!quant_->enc) {
    quant_->enc = std::make_unique<QuantizedEncoder>(*model_);
  }
  return *quant_->enc;  // Never reset once built, so the ref stays valid.
}

void T2Vec::PrepareQuantized() const { Quantized(); }

nn::Matrix T2Vec::EncodeQuantizedTokenized(
    const std::vector<traj::TokenSeq>& seqs) const {
  return Quantized().EncodeBatch(seqs);
}

nn::Matrix T2Vec::EncodeQuantized(
    const std::vector<traj::Trajectory>& trips) const {
  // Same slice scheme as Encode: disjoint row ranges, bit-identical to a
  // serial run at any thread count.
  constexpr size_t kSlice = 256;
  const QuantizedEncoder& enc = Quantized();  // Build before going parallel.
  nn::Matrix out(trips.size(), model_->hidden());
  const size_t num_slices = (trips.size() + kSlice - 1) / kSlice;
  ParallelFor(
      0, num_slices, 1,
      [&](size_t s) {
        const size_t start = s * kSlice;
        const size_t end = std::min(start + kSlice, trips.size());
        std::vector<traj::TokenSeq> seqs;
        seqs.reserve(end - start);
        for (size_t i = start; i < end; ++i) {
          seqs.push_back(TokenizeForEncoder(trips[i]));
        }
        const nn::Matrix block = enc.EncodeBatch(seqs);
        for (size_t i = start; i < end; ++i) {
          std::copy(block.Row(i - start), block.Row(i - start) + block.cols(),
                    out.Row(i));
        }
      },
      config_.num_threads);
  return out;
}

double T2Vec::Distance(const traj::Trajectory& a,
                       const traj::Trajectory& b) const {
  const nn::Matrix m = model_->EncodeBatch(
      {TokenizeForEncoder(a), TokenizeForEncoder(b)});
  return std::sqrt(nn::Kernels().sqdist_f64(m.Row(0), m.Row(1), m.cols()));
}

traj::Trajectory T2Vec::ReconstructRoute(const traj::Trajectory& sparse,
                                         size_t max_len) const {
  if (max_len == 0) max_len = 4 * std::max<size_t>(sparse.size(), 8);
  SequenceDecoder decoder(model_.get());
  const traj::TokenSeq decoded =
      decoder.DecodeGreedy(TokenizeForEncoder(sparse), max_len);
  traj::Trajectory route;
  route.id = sparse.id;
  route.points.reserve(decoded.size());
  for (geo::Token token : decoded) {
    if (!geo::HotCellVocab::IsSpecial(token)) {
      route.points.push_back(vocab_->CenterOf(token));
    }
  }
  return route;
}

Status T2Vec::Save(const std::string& path) const {
  if (config_.use_attention) {
    return Status::InvalidArgument(
        "attention models cannot be serialized yet");
  }
  BinaryWriter writer(path);
  if (!writer.ok()) return writer.status();
  writer.WritePod(kModelMagic);
  writer.WritePod(kModelVersion);

  // Architecture fields needed to reconstruct the model.
  writer.WritePod<uint64_t>(config_.embed_dim);
  writer.WritePod<uint64_t>(config_.hidden);
  writer.WritePod<uint64_t>(config_.layers);
  writer.WritePod<uint8_t>(config_.reverse_source ? 1 : 0);
  writer.WritePod<double>(config_.cell_size);

  // Vocabulary: grid + hot cells + counts.
  const geo::SpatialGrid& grid = vocab_->grid();
  writer.WritePod<double>(grid.min_corner().x);
  writer.WritePod<double>(grid.min_corner().y);
  writer.WritePod<double>(grid.cell_size());
  writer.WritePod<int64_t>(grid.rows());
  writer.WritePod<int64_t>(grid.cols());
  writer.WriteVector(vocab_->hot_cells());
  std::vector<int64_t> counts(vocab_->num_hot_cells());
  for (size_t i = 0; i < counts.size(); ++i) {
    counts[i] = vocab_->HitCount(static_cast<geo::Token>(i) +
                                 geo::kNumSpecialTokens);
  }
  writer.WriteVector(counts);

  // Weights, in Params() order (stable by construction).
  nn::ParamList params = const_cast<EncoderDecoder*>(model_.get())->Params();
  nn::WriteParamBlock(&writer, params);
  return writer.Finish();
}

Result<T2Vec> T2Vec::Load(const std::string& path) {
  BinaryReader reader(path);
  if (!reader.ok()) return reader.status();
  uint32_t magic = 0, version = 0;
  if (!reader.ReadPod(&magic) || magic != kModelMagic) {
    return Status::IoError("bad model magic in " + path);
  }
  if (!reader.ReadPod(&version) || version == 0 || version > kModelVersion) {
    return Status::IoError("unsupported model version in " + path);
  }
  if (version >= kFirstChecksummedModelVersion && !reader.checksummed()) {
    return Status::IoError("model file " + path +
                           " is missing its checksum trailer (truncated?)");
  }

  T2VecConfig config;
  uint64_t embed_dim = 0, hidden = 0, layers = 0;
  uint8_t reverse_source = 0;
  if (!reader.ReadPod(&embed_dim) || !reader.ReadPod(&hidden) ||
      !reader.ReadPod(&layers) || !reader.ReadPod(&reverse_source) ||
      !reader.ReadPod(&config.cell_size)) {
    return Status::IoError("truncated model header in " + path);
  }
  config.embed_dim = embed_dim;
  config.hidden = hidden;
  config.layers = layers;
  config.reverse_source = (reverse_source != 0);

  double min_x = 0, min_y = 0, cell_size = 0;
  int64_t rows = 0, cols = 0;
  std::vector<geo::CellId> hot_cells;
  std::vector<int64_t> counts;
  if (!reader.ReadPod(&min_x) || !reader.ReadPod(&min_y) ||
      !reader.ReadPod(&cell_size) || !reader.ReadPod(&rows) ||
      !reader.ReadPod(&cols) || !reader.ReadVector(&hot_cells) ||
      !reader.ReadVector(&counts)) {
    return Status::IoError("truncated vocabulary section in " + path);
  }
  const geo::Point min_corner{min_x, min_y};
  const geo::Point max_corner{
      min_x + static_cast<double>(cols) * cell_size,
      min_y + static_cast<double>(rows) * cell_size};
  geo::SpatialGrid grid(min_corner, max_corner, cell_size);
  if (grid.rows() != rows || grid.cols() != cols) {
    return Status::Internal("grid reconstruction mismatch");
  }
  auto vocab = std::make_unique<geo::HotCellVocab>(grid, std::move(hot_cells),
                                                   std::move(counts));

  Rng rng(0);  // Weights are overwritten below.
  auto model =
      std::make_unique<EncoderDecoder>(config, vocab->vocab_size(), rng);
  nn::ParamList params = model->Params();
  if (Status status = nn::ReadParamBlock(&reader, params); !status.ok()) {
    return Status(status.code(), status.message() + " in " + path);
  }
  return T2Vec(config, std::move(vocab), std::move(model));
}

namespace {

/// Content fingerprint for the measure's memo cache: id, length, and the
/// bit patterns of the first/middle/last points (bit-pattern hashed so
/// negative coordinates and -0.0 are well-defined, as in eval's
/// DataFingerprint). Cheap, and collisions require equal id, length, and
/// three identical probe points.
uint64_t TrajFingerprint(const traj::Trajectory& t) {
  uint64_t h = 0xCBF29CE484222325ULL;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 0x100000001B3ULL;
    }
  };
  mix(static_cast<uint64_t>(t.id));
  mix(t.size());
  auto mix_point = [&](const geo::Point& p) {
    uint64_t bits = 0;
    std::memcpy(&bits, &p.x, sizeof(bits));
    mix(bits);
    std::memcpy(&bits, &p.y, sizeof(bits));
    mix(bits);
  };
  if (!t.empty()) {
    mix_point(t.points.front());
    mix_point(t.points[t.size() / 2]);
    mix_point(t.points.back());
  }
  return h;
}

}  // namespace

/// Memo cache state: a bounded fingerprint -> representation map with FIFO
/// eviction. Guarded by a mutex because the evaluation harness calls
/// Distance from parallel query loops; on a miss the encode itself runs
/// outside the lock (it is pure), so concurrent misses at worst encode the
/// same trajectory twice — with identical results.
struct T2VecMeasure::Memo {
  sync::Mutex mu;
  /// Immutable after construction — readable without the lock (Encoded's
  /// capacity == 0 fast path runs before any locking).
  const size_t capacity;
  std::unordered_map<uint64_t, std::vector<float>> entries GUARDED_BY(mu);
  std::deque<uint64_t> order GUARDED_BY(mu);  // Insertion order, for eviction.
  size_t hits GUARDED_BY(mu) = 0;
  size_t misses GUARDED_BY(mu) = 0;

  explicit Memo(size_t cap) : capacity(cap) {}
};

T2VecMeasure::T2VecMeasure(const T2Vec* model, size_t capacity)
    : model_(model), memo_(std::make_unique<Memo>(capacity)) {}

T2VecMeasure::~T2VecMeasure() = default;

std::vector<float> T2VecMeasure::Encoded(const traj::Trajectory& t) const {
  if (memo_->capacity == 0) return model_->EncodeOne(t);
  const uint64_t key = TrajFingerprint(t);
  {
    sync::MutexLock lock(&memo_->mu);
    auto it = memo_->entries.find(key);
    if (it != memo_->entries.end()) {
      ++memo_->hits;
      return it->second;
    }
    ++memo_->misses;
  }
  std::vector<float> vec = model_->EncodeOne(t);
  sync::MutexLock lock(&memo_->mu);
  if (memo_->entries.emplace(key, vec).second) {
    memo_->order.push_back(key);
    while (memo_->order.size() > memo_->capacity) {
      memo_->entries.erase(memo_->order.front());
      memo_->order.pop_front();
    }
  }
  return vec;
}

double T2VecMeasure::Distance(const traj::Trajectory& a,
                              const traj::Trajectory& b) const {
  const std::vector<float> va = Encoded(a);
  const std::vector<float> vb = Encoded(b);
  return std::sqrt(nn::Kernels().sqdist_f64(va.data(), vb.data(), va.size()));
}

size_t T2VecMeasure::cache_hits() const {
  sync::ReaderMutexLock lock(&memo_->mu);
  return memo_->hits;
}

size_t T2VecMeasure::cache_misses() const {
  sync::ReaderMutexLock lock(&memo_->mu);
  return memo_->misses;
}

}  // namespace t2vec::core
