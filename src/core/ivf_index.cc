#include "core/ivf_index.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <utility>

#include "common/macros.h"
#include "common/order.h"
#include "common/rng.h"
#include "common/sort.h"
#include "common/thread_pool.h"
#include "nn/kernels.h"

namespace t2vec::core {

namespace {

// Parallel grain sizes: assignment items cost nlist distance kernels each,
// scan items one — both chosen so a few-thousand-item loop still splits
// across cores while amortizing dispatch.
constexpr size_t kAssignGrain = 16;
constexpr size_t kScanGrain = 256;

}  // namespace

IvfIndex::IvfIndex(size_t dim, const IndexConfig& config)
    : AnnIndex(dim),
      nlist_(config.ivf_nlist),
      nprobe_(config.ivf_nprobe),
      train_iters_(config.ivf_train_iters),
      seed_(config.ivf_seed),
      train_per_list_(config.ivf_train_per_list) {
  T2VEC_CHECK(nlist_ >= 1);
  T2VEC_CHECK(nprobe_ >= 1);
  T2VEC_CHECK(train_iters_ >= 1);
  T2VEC_CHECK(train_per_list_ >= 1);
}

void IvfIndex::set_nprobe(size_t nprobe) {
  T2VEC_CHECK(nprobe >= 1);
  nprobe_ = nprobe;
}

size_t IvfIndex::NearestCentroid(const float* vec) const {
  const size_t d = dim();
  const nn::KernelOps& ops = nn::Kernels();
  size_t best = 0;
  double best_dist = std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < nlist_; ++c) {
    const double dist = ops.sqdist_f64(vec, &centroids_[c * d], d);
    // Strict < keeps ties on the lower centroid index; a NaN distance never
    // wins, so an all-NaN row deterministically lands in list 0.
    if (dist < best_dist) {
      best_dist = dist;
      best = c;
    }
  }
  return best;
}

void IvfIndex::OnAppend(size_t row) {
  if (trained_) {
    lists_[NearestCentroid(rows().Row(row))].push_back(
        static_cast<uint32_t>(row));
    return;
  }
  // Training fires when row threshold-1 registers — a pure function of the
  // row id, not of Size(), so a Restore replay (where all rows are already
  // installed before the first OnAppend) trains at exactly the same point
  // over exactly the same rows as a live one-at-a-time build.
  if (row + 1 == train_threshold()) Train();
}

void IvfIndex::Train() {
  // Exactly the first threshold rows: under a Restore replay more rows are
  // already installed, and they must not influence training (they get
  // assigned by the replay's later OnAppend calls, like live Adds).
  const size_t n = train_threshold();
  const size_t d = dim();

  // Fixed-seed init: a shuffled row permutation picks nlist_ distinct
  // seeding rows (n >= nlist_ because the threshold is nlist_ * per_list).
  std::vector<uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  Rng(seed_).Shuffle(perm);
  centroids_.assign(nlist_ * d, 0.0f);
  for (size_t c = 0; c < nlist_; ++c) {
    const float* src = rows().Row(perm[c]);
    std::copy(src, src + d, &centroids_[c * d]);
  }

  std::vector<uint32_t> assign(n);
  const auto assign_all = [&] {
    // Each iteration writes only assign[i]: bit-identical to serial at any
    // thread count.
    ParallelFor(0, n, kAssignGrain, [&](size_t i) {
      assign[i] = static_cast<uint32_t>(NearestCentroid(rows().Row(i)));
    });
  };

  std::vector<double> sums(nlist_ * d);
  std::vector<uint64_t> counts(nlist_);
  for (int iter = 0; iter < train_iters_; ++iter) {
    assign_all();
    // Centroid update: serial ascending-row accumulation in double keeps
    // the floating-point reduction order fixed.
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0u);
    for (size_t i = 0; i < n; ++i) {
      const float* v = rows().Row(i);
      double* sum = &sums[assign[i] * d];
      for (size_t j = 0; j < d; ++j) sum[j] += static_cast<double>(v[j]);
      ++counts[assign[i]];
    }
    for (size_t c = 0; c < nlist_; ++c) {
      if (counts[c] == 0) continue;  // Empty cluster keeps its centroid.
      const double inv = 1.0 / static_cast<double>(counts[c]);
      for (size_t j = 0; j < d; ++j) {
        centroids_[c * d + j] = static_cast<float>(sums[c * d + j] * inv);
      }
    }
  }

  // Final assignment under the final centroids — the same NearestCentroid
  // every later incremental Add uses, so list membership cannot depend on
  // whether a row arrived before or after training... except for the rows
  // that *defined* the centroids, which are assigned here, once, in
  // ascending order.
  assign_all();
  lists_.assign(nlist_, {});
  for (size_t i = 0; i < n; ++i) {
    lists_[assign[i]].push_back(static_cast<uint32_t>(i));
  }
  trained_ = true;
}

KnnResult IvfIndex::ExactQuery(std::span<const float> query, size_t k) const {
  k = std::min(k, Size());
  if (k == 0) return {};
  const size_t d = dim();
  const nn::KernelOps& ops = nn::Kernels();
  std::vector<std::pair<double, size_t>> scored(Size());
  const float* q = query.data();
  ParallelFor(0, Size(), kScanGrain, [&](size_t i) {
    scored[i] = {ops.sqdist_f64(q, rows().Row(i), d), i};
  });
  TotalOrderPartialSort(scored.begin(), scored.begin() + static_cast<long>(k),
                        scored.end(), NanLastLess{});
  KnnResult out;
  out.ids.reserve(k);
  out.distances.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    out.ids.push_back(scored[i].second);
    out.distances.push_back(scored[i].first);
  }
  return out;
}

KnnResult IvfIndex::Query(std::span<const float> query, size_t k) const {
  T2VEC_CHECK(query.size() == dim());
  if (!trained_) {
    // Pre-training a small store answers exactly (identical to
    // VectorIndex), so approximation only ever trades recall at scale.
    CountQuery(Size());
    return ExactQuery(query, k);
  }
  // Same clamp as every index: over-asking degrades, never aborts.
  k = std::min(k, Size());
  if (k == 0) return {};

  const size_t d = dim();
  const nn::KernelOps& ops = nn::Kernels();
  const float* q = query.data();

  // Rank every centroid, then probe lists in that order. The full sort
  // (not a partial one) keeps the widening step below deterministic: the
  // (nprobe+1)-th list is already decided.
  std::vector<std::pair<double, size_t>> cdist(nlist_);
  ParallelFor(0, nlist_, kAssignGrain, [&](size_t c) {
    cdist[c] = {ops.sqdist_f64(q, &centroids_[c * d], d), c};
  });
  DeterministicSort(cdist.begin(), cdist.end(), NanLastLess{});

  // Probe the nprobe nearest lists, widening deterministically to further
  // lists until k candidates surfaced (inverted lists are disjoint, so no
  // dedup is needed and indices stay unique for the total-order sort).
  std::vector<size_t> candidates;
  size_t probed = 0;
  for (const auto& [cd, c] : cdist) {
    if (probed >= nprobe_ && candidates.size() >= k) break;
    for (const uint32_t row : lists_[c]) candidates.push_back(row);
    ++probed;
  }
  CountQuery(candidates.size());

  k = std::min(k, candidates.size());
  if (k == 0) return {};
  std::vector<std::pair<double, size_t>> scored(candidates.size());
  ParallelFor(0, candidates.size(), kScanGrain, [&](size_t i) {
    const size_t row = candidates[i];
    scored[i] = {ops.sqdist_f64(q, rows().Row(row), d), row};
  });
  TotalOrderPartialSort(scored.begin(), scored.begin() + static_cast<long>(k),
                        scored.end(), NanLastLess{});
  KnnResult out;
  out.ids.reserve(k);
  out.distances.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    out.ids.push_back(scored[i].second);
    out.distances.push_back(scored[i].first);
  }
  return out;
}

void IvfIndex::SaveAux(BinaryWriter* writer) const {
  writer->WritePod<uint32_t>(trained_ ? 1 : 0);
  writer->WritePod<uint64_t>(nlist_);
  writer->WritePod<uint64_t>(train_per_list_);
  writer->WritePod<int32_t>(train_iters_);
  writer->WritePod<uint64_t>(seed_);
  if (!trained_) return;
  writer->WriteVector(centroids_);
  for (size_t c = 0; c < nlist_; ++c) writer->WriteVector(lists_[c]);
}

Status IvfIndex::LoadAux(BinaryReader* reader) {
  // Parse into locals and commit only at the end (Restore's contract).
  // Structural parameters are adopted from the snapshot — the quantizer
  // geometry lives with the data it was trained on; only the query-time
  // nprobe knob comes from the live config.
  uint32_t trained_flag = 0;
  uint64_t nlist = 0, per_list = 0, seed = 0;
  int32_t iters = 0;
  if (!reader->ReadPod(&trained_flag) || !reader->ReadPod(&nlist) ||
      !reader->ReadPod(&per_list) || !reader->ReadPod(&iters) ||
      !reader->ReadPod(&seed) || nlist == 0 || per_list == 0 || iters < 1) {
    return Status::IoError("malformed IVF snapshot parameters");
  }
  std::vector<float> centroids;
  std::vector<std::vector<uint32_t>> lists;
  if (trained_flag != 0) {
    if (!reader->ReadVector(&centroids) ||
        centroids.size() != static_cast<size_t>(nlist) * dim()) {
      return Status::IoError("malformed IVF snapshot centroids");
    }
    lists.resize(static_cast<size_t>(nlist));
    size_t total = 0;
    for (auto& list : lists) {
      if (!reader->ReadVector(&list)) {
        return Status::IoError("malformed IVF snapshot lists");
      }
      for (const uint32_t row : list) {
        if (row >= Size()) {
          return Status::IoError("IVF snapshot list references missing row");
        }
      }
      total += list.size();
    }
    if (total != Size()) {
      return Status::IoError("IVF snapshot lists do not cover the rows");
    }
  }
  nlist_ = static_cast<size_t>(nlist);
  train_per_list_ = static_cast<size_t>(per_list);
  train_iters_ = iters;
  seed_ = seed;
  trained_ = trained_flag != 0;
  centroids_ = std::move(centroids);
  lists_ = std::move(lists);
  return Status::Ok();
}

void IvfIndex::FillStats(IndexStats* stats) const {
  stats->trained = trained_;
  stats->nlist = nlist_;
  stats->nprobe = nprobe_;
}

}  // namespace t2vec::core
