#ifndef T2VEC_CORE_CONFIG_H_
#define T2VEC_CORE_CONFIG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

/// \file
/// Hyperparameters of the t2vec training pipeline. Defaults are the paper's
/// settings scaled down so every experiment trains on a single CPU core
/// (paper value in comments); the paper-scale values can be restored field
/// by field.

namespace t2vec::core {

/// Which training loss drives the decoder (paper Sec. IV-C1, Table VII).
enum class LossKind {
  kL1,  ///< Plain NLL over the full vocabulary (Eq. 4).
  kL2,  ///< Exact spatial proximity aware loss (Eq. 5).
  kL3,  ///< K-nearest + noise-contrastive approximation (Eq. 7).
};

/// How L3's noise-contrastive term is computed (DESIGN.md §4.2).
enum class NceVariant {
  kSampledSoftmax,  ///< Softmax restricted to NK(y) ∪ O(y). Default.
  kBinaryNce,       ///< Gutmann & Hyvärinen logistic-regression NCE.
};

/// All hyperparameters of vocabulary building, pretraining, and training.
struct T2VecConfig {
  // --- Spatial discretization (paper Sec. V-B) ---
  double cell_size = 100.0;   ///< Cell side, meters (paper: 100).
  int hot_cell_min_hits = 5;  ///< δ: min hits for a hot cell (paper: 50).

  // --- Spatial proximity machinery (paper Sec. IV-C) ---
  int knn_k = 20;          ///< K nearest cells in L3 / pretraining (paper: 20).
  int nce_noise = 64;      ///< |O(y_t)| noise cells (paper: 500).
  double theta = 100.0;    ///< Kernel scale θ, meters (paper: 100).
  LossKind loss = LossKind::kL3;
  NceVariant nce_variant = NceVariant::kSampledSoftmax;

  // --- Model architecture ---
  size_t embed_dim = 64;  ///< Cell representation dim d (paper: 256).
  size_t hidden = 96;     ///< GRU hidden size |v| (paper: 256).
  size_t layers = 2;      ///< Stacked GRU layers (paper: 3).
  /// Feed the encoder the source sequence reversed (Sutskever et al. 2014).
  /// Shortens the gradient path from the decoder's first steps to the
  /// source's first tokens; markedly better representations at small
  /// training budgets. Applied consistently at train and encode time.
  bool reverse_source = true;
  /// Decode with global (Luong) attention over the encoder outputs —
  /// an extension beyond the paper (off by default for faithfulness). The
  /// trajectory representation stays the encoder's final hidden state; only
  /// the reconstruction decoder changes. Attention models cannot be
  /// serialized yet (T2Vec::Save rejects them).
  bool use_attention = false;

  // --- Cell representation pretraining (Algorithm 1) ---
  bool pretrain_cells = true;
  int pretrain_context = 10;    ///< Context window l (paper: 10).
  int pretrain_negatives = 8;   ///< Negative samples per pair.
  int pretrain_epochs = 12;     ///< Passes over the vocabulary.
  float pretrain_lr = 0.05f;
  double pretrain_theta = 100.0;  ///< θ of the sampling distribution (Eq. 8).

  // --- Training-pair generation (paper Sec. V-A: 4 x 4 = 16 pairs) ---
  std::vector<double> r1_grid = {0.0, 0.2, 0.4, 0.6};
  std::vector<double> r2_grid = {0.0, 0.2, 0.4, 0.6};

  // --- Optimization (paper Sec. V-B) ---
  float learning_rate = 1e-3f;  ///< Adam initial lr (paper: 0.001).
  double grad_clip = 5.0;       ///< Max global grad norm (paper: 5).
  size_t batch_size = 64;
  size_t max_iterations = 4000;    ///< Hard cap on training batches.
  size_t validate_every = 250;     ///< Iterations between validation passes.
  size_t patience = 8;             ///< Validation checks without improvement
                                   ///< before early stop (paper: 20k iters).
  size_t validation_pairs = 512;   ///< Pairs held out for validation.

  uint64_t seed = 42;

  // --- Execution (no effect on results; see common/thread_pool.h) ---
  /// Threads for the read-side hot paths (Encode, kNN). 0 = use the global
  /// default (`T2VEC_THREADS` env, then hardware concurrency). Parallel
  /// execution is bit-identical to serial at any thread count.
  int num_threads = 0;

  // --- Crash safety (no effect on results; DESIGN.md §7) ---
  /// Directory for periodic training-state snapshots (model weights, Adam
  /// moments, RNG engines, trainer progress), written atomically with CRC
  /// framing. Empty disables checkpointing. Excluded from Fingerprint():
  /// snapshots never change the trained weights.
  std::string checkpoint_dir;
  /// Iterations between snapshots when `checkpoint_dir` is set.
  size_t checkpoint_every = 500;
  /// Snapshot to resume training from: a snapshot file, or a directory
  /// (the newest snapshot_*.t2vsnap inside is picked). The run must use the
  /// same config (fingerprint-checked) and training data; the resumed run's
  /// final parameters are bit-identical to an uninterrupted run's.
  std::string resume_from;

  /// Checks every field for internal consistency. Returns OK when the config
  /// can drive a training run; otherwise an InvalidArgument status naming
  /// the first offending field. `T2Vec::TrainChecked` validates before
  /// touching any data, so malformed configs surface as `Status` instead of
  /// aborting mid-pipeline via CHECK.
  Status Validate() const;

  /// Stable hash of every result-affecting field, used as the on-disk cache
  /// key for trained models (eval/cache.h). Execution knobs such as
  /// `num_threads` are excluded: they never change the trained weights.
  uint64_t Fingerprint() const;

  /// Human-readable one-line summary for logs.
  std::string Summary() const;
};

}  // namespace t2vec::core

#endif  // T2VEC_CORE_CONFIG_H_
