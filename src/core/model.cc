#include "core/model.h"

#include <algorithm>

#include "common/thread_pool.h"
#include "core/pairs.h"

namespace t2vec::core {

Batch BuildBatch(const std::vector<const TokenPair*>& pairs) {
  Batch batch;
  batch.batch_size = pairs.size();
  T2VEC_CHECK(!pairs.empty());

  size_t max_src = 0, max_tgt = 0;
  for (const TokenPair* p : pairs) {
    max_src = std::max(max_src, p->src.size());
    max_tgt = std::max(max_tgt, p->tgt.size() + 1);  // +1 for EOS.
  }
  T2VEC_CHECK(max_src > 0);

  batch.src_steps.assign(max_src,
                         std::vector<geo::Token>(pairs.size(),
                                                 geo::kPadToken));
  batch.src_masks.assign(max_src, std::vector<float>(pairs.size(), 0.0f));
  batch.dec_input_steps.assign(
      max_tgt, std::vector<geo::Token>(pairs.size(), geo::kPadToken));
  batch.target_steps.assign(
      max_tgt, std::vector<geo::Token>(pairs.size(), geo::kPadToken));
  batch.tgt_masks.assign(max_tgt, std::vector<float>(pairs.size(), 0.0f));

  for (size_t b = 0; b < pairs.size(); ++b) {
    const traj::TokenSeq& src = pairs[b]->src;
    const traj::TokenSeq& tgt = pairs[b]->tgt;
    for (size_t t = 0; t < src.size(); ++t) {
      batch.src_steps[t][b] = src[t];
      batch.src_masks[t][b] = 1.0f;
    }
    // Decoder: input BOS, y_1..y_{T-1}; target y_1..y_T, EOS.
    const size_t tgt_len = tgt.size() + 1;
    for (size_t t = 0; t < tgt_len; ++t) {
      batch.dec_input_steps[t][b] =
          (t == 0) ? geo::kBosToken : tgt[t - 1];
      batch.target_steps[t][b] =
          (t < tgt.size()) ? tgt[t] : geo::kEosToken;
      batch.tgt_masks[t][b] = 1.0f;
    }
    batch.target_tokens += tgt_len;
  }
  return batch;
}

EncoderDecoder::EncoderDecoder(const T2VecConfig& config,
                               geo::Token vocab_size, Rng& rng)
    : embedding_(static_cast<size_t>(vocab_size), config.embed_dim, rng),
      encoder_("encoder", config.embed_dim, config.hidden, config.layers,
               rng),
      decoder_("decoder", config.embed_dim, config.hidden, config.layers,
               rng),
      proj_(static_cast<size_t>(vocab_size), config.hidden, rng),
      num_threads_(config.num_threads) {
  if (config.use_attention) {
    attention_ = std::make_unique<nn::Attention>("attn", config.hidden, rng);
  }
}

void EncoderDecoder::EmbedStep(const std::vector<geo::Token>& ids,
                               nn::Matrix* out) const {
  embedding_.Forward(ids, out);
}

double EncoderDecoder::RunBatch(const Batch& batch, SeqLoss* loss,
                                bool accumulate_grads) {
  T2VEC_CHECK(batch.batch_size > 0);
  const ScopedNumThreads thread_scope(num_threads_);
  loss->set_grad_scale(1.0f / static_cast<float>(batch.batch_size));

  // ---- Encoder forward ----
  std::vector<nn::Matrix> enc_xs(batch.src_steps.size());
  for (size_t t = 0; t < batch.src_steps.size(); ++t) {
    EmbedStep(batch.src_steps[t], &enc_xs[t]);
  }
  nn::Gru::ForwardResult enc_result;
  encoder_.Forward(enc_xs, nullptr, batch.src_masks, &enc_result);

  // ---- Decoder forward (teacher forcing) ----
  std::vector<nn::Matrix> dec_xs(batch.dec_input_steps.size());
  for (size_t t = 0; t < batch.dec_input_steps.size(); ++t) {
    EmbedStep(batch.dec_input_steps[t], &dec_xs[t]);
  }
  nn::Gru::ForwardResult dec_result;
  decoder_.Forward(dec_xs, &enc_result.final_state, batch.tgt_masks,
                   &dec_result);

  // ---- Optional attention over the encoder outputs ----
  const std::vector<nn::Matrix>& dec_hs = dec_result.TopOutputs();
  const std::vector<nn::Matrix>& enc_hs = enc_result.TopOutputs();
  nn::AttentionCache attn_cache;
  const std::vector<nn::Matrix>* loss_inputs = &dec_hs;
  if (attention_ != nullptr) {
    attention_->Forward(dec_hs, enc_hs, batch.src_masks, &attn_cache);
    loss_inputs = &attn_cache.output;
  }

  // ---- Loss over every decoder step ----
  std::vector<nn::Matrix> d_loss_inputs(loss_inputs->size());
  double total_loss = 0.0;
  for (size_t t = 0; t < loss_inputs->size(); ++t) {
    total_loss += loss->StepLossAndGrad((*loss_inputs)[t],
                                        batch.target_steps[t],
                                        accumulate_grads, &d_loss_inputs[t]);
  }
  if (!accumulate_grads) return total_loss;

  // ---- Attention backward (splits gradient between decoder and encoder
  //      per-step outputs) ----
  std::vector<nn::Matrix> d_dec_hs;
  std::vector<nn::Matrix> d_enc_hs;  // Empty when attention is off.
  if (attention_ != nullptr) {
    attention_->Backward(dec_hs, enc_hs, batch.src_masks, attn_cache,
                         d_loss_inputs, &d_dec_hs, &d_enc_hs);
  } else {
    d_dec_hs = std::move(d_loss_inputs);
  }

  // ---- Decoder backward ----
  std::vector<nn::Matrix> d_dec_xs;
  nn::GruState d_enc_final;
  decoder_.Backward(dec_xs, &enc_result.final_state, batch.tgt_masks,
                    dec_result, &d_dec_hs, nullptr, &d_dec_xs, &d_enc_final);
  for (size_t t = 0; t < d_dec_xs.size(); ++t) {
    embedding_.Backward(batch.dec_input_steps[t], d_dec_xs[t]);
  }

  // ---- Encoder backward (gradient arrives via its final states and, with
  //      attention, via its per-step outputs) ----
  std::vector<nn::Matrix> d_enc_xs;
  encoder_.Backward(enc_xs, nullptr, batch.src_masks, enc_result,
                    d_enc_hs.empty() ? nullptr : &d_enc_hs, &d_enc_final,
                    &d_enc_xs, nullptr);
  for (size_t t = 0; t < d_enc_xs.size(); ++t) {
    embedding_.Backward(batch.src_steps[t], d_enc_xs[t]);
  }
  return total_loss;
}

nn::Matrix EncoderDecoder::EncodeBatch(
    const std::vector<traj::TokenSeq>& seqs) const {
  const size_t n = seqs.size();
  nn::Matrix out(n, hidden());
  if (n == 0) return out;

  size_t max_len = 0;
  for (const traj::TokenSeq& s : seqs) max_len = std::max(max_len, s.size());
  if (max_len == 0) return out;

  std::vector<std::vector<geo::Token>> steps(
      max_len, std::vector<geo::Token>(n, geo::kPadToken));
  std::vector<std::vector<float>> masks(max_len,
                                        std::vector<float>(n, 0.0f));
  for (size_t b = 0; b < n; ++b) {
    for (size_t t = 0; t < seqs[b].size(); ++t) {
      steps[t][b] = seqs[b][t];
      masks[t][b] = 1.0f;
    }
  }

  std::vector<nn::Matrix> xs(max_len);
  for (size_t t = 0; t < max_len; ++t) EmbedStep(steps[t], &xs[t]);
  nn::Gru::ForwardResult result;
  encoder_.Forward(xs, nullptr, masks, &result);

  const nn::Matrix& top = result.final_state.h.back();
  for (size_t b = 0; b < n; ++b) {
    if (seqs[b].empty()) continue;  // Leave the zero vector.
    std::copy(top.Row(b), top.Row(b) + hidden(), out.Row(b));
  }
  return out;
}

QuantizedEncoder::QuantizedEncoder(const EncoderDecoder& model)
    : embedding_(&model.embedding()), gru_(model.encoder()) {}

nn::Matrix QuantizedEncoder::EncodeBatch(
    const std::vector<traj::TokenSeq>& seqs) const {
  // Mirrors EncoderDecoder::EncodeBatch: pad to step-major token steps with
  // masks, embed each step (fp32 table lookups — exact), then run the
  // quantized GRU stack and copy out the top layer's final states.
  const size_t n = seqs.size();
  nn::Matrix out(n, hidden());
  if (n == 0) return out;

  size_t max_len = 0;
  for (const traj::TokenSeq& s : seqs) max_len = std::max(max_len, s.size());
  if (max_len == 0) return out;

  std::vector<std::vector<geo::Token>> steps(
      max_len, std::vector<geo::Token>(n, geo::kPadToken));
  std::vector<std::vector<float>> masks(max_len,
                                        std::vector<float>(n, 0.0f));
  for (size_t b = 0; b < n; ++b) {
    for (size_t t = 0; t < seqs[b].size(); ++t) {
      steps[t][b] = seqs[b][t];
      masks[t][b] = 1.0f;
    }
  }

  std::vector<nn::Matrix> xs(max_len);
  for (size_t t = 0; t < max_len; ++t) embedding_->Forward(steps[t], &xs[t]);
  nn::Matrix final_h;
  gru_.Forward(xs, masks, &final_h);

  for (size_t b = 0; b < n; ++b) {
    if (seqs[b].empty()) continue;  // Leave the zero vector.
    std::copy(final_h.Row(b), final_h.Row(b) + hidden(), out.Row(b));
  }
  return out;
}

nn::ParamList EncoderDecoder::Params() {
  nn::ParamList params = embedding_.Params();
  for (nn::Parameter* p : encoder_.Params()) params.push_back(p);
  for (nn::Parameter* p : decoder_.Params()) params.push_back(p);
  if (attention_ != nullptr) {
    for (nn::Parameter* p : attention_->Params()) params.push_back(p);
  }
  for (nn::Parameter* p : proj_.Params()) params.push_back(p);
  return params;
}

}  // namespace t2vec::core
