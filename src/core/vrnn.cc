#include "core/vrnn.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"
#include "common/sort.h"
#include "nn/optimizer.h"

namespace t2vec::core {

VRnn::VRnn(const T2VecConfig& config, geo::Token vocab_size, Rng& rng)
    : config_(config),
      embedding_(static_cast<size_t>(vocab_size), config.embed_dim, rng),
      gru_("vrnn", config.embed_dim, config.hidden, config.layers, rng),
      proj_(static_cast<size_t>(vocab_size), config.hidden, rng) {}

double VRnn::Train(const std::vector<traj::TokenSeq>& seqs, size_t iterations,
                   Rng& rng) {
  // Usable sequences need at least two tokens (one transition).
  std::vector<size_t> usable;
  for (size_t i = 0; i < seqs.size(); ++i) {
    if (seqs[i].size() >= 2) usable.push_back(i);
  }
  T2VEC_CHECK(!usable.empty());

  // Length-sorted contiguous batches, shuffled order (as in the trainer).
  // Equal-length ties feed batch composition, so the sort is pinned — same
  // rationale as MakeBatches in core/trainer.cc.
  DeterministicSort(usable.begin(), usable.end(), [&](size_t a, size_t b) {
    return seqs[a].size() < seqs[b].size();
  });
  std::vector<std::vector<size_t>> batches;
  for (size_t start = 0; start < usable.size();
       start += config_.batch_size) {
    const size_t end = std::min(start + config_.batch_size, usable.size());
    batches.emplace_back(usable.begin() + static_cast<long>(start),
                         usable.begin() + static_cast<long>(end));
  }
  std::vector<size_t> order(batches.size());
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(order);

  NllLoss loss(&proj_);
  nn::Adam adam(Params(), config_.learning_rate);
  adam.ZeroGrad();

  double smoothed = 0.0;
  bool has_smoothed = false;
  size_t cursor = 0;
  for (size_t iter = 0; iter < iterations; ++iter) {
    if (cursor >= order.size()) {
      cursor = 0;
      rng.Shuffle(order);
    }
    const std::vector<size_t>& batch_ids = batches[order[cursor++]];
    const size_t batch_size = batch_ids.size();

    // Inputs: tokens[0..n-2]; targets: tokens[1..n-1].
    size_t max_steps = 0;
    for (size_t i : batch_ids) {
      max_steps = std::max(max_steps, seqs[i].size() - 1);
    }
    std::vector<std::vector<geo::Token>> in_steps(
        max_steps, std::vector<geo::Token>(batch_size, geo::kPadToken));
    std::vector<std::vector<geo::Token>> tgt_steps = in_steps;
    std::vector<std::vector<float>> masks(
        max_steps, std::vector<float>(batch_size, 0.0f));
    size_t target_tokens = 0;
    for (size_t b = 0; b < batch_size; ++b) {
      const traj::TokenSeq& s = seqs[batch_ids[b]];
      for (size_t t = 0; t + 1 < s.size(); ++t) {
        in_steps[t][b] = s[t];
        tgt_steps[t][b] = s[t + 1];
        masks[t][b] = 1.0f;
        ++target_tokens;
      }
    }

    loss.set_grad_scale(1.0f / static_cast<float>(batch_size));
    std::vector<nn::Matrix> xs(max_steps);
    for (size_t t = 0; t < max_steps; ++t) {
      embedding_.Forward(in_steps[t], &xs[t]);
    }
    nn::Gru::ForwardResult result;
    gru_.Forward(xs, nullptr, masks, &result);

    const std::vector<nn::Matrix>& hs = result.TopOutputs();
    std::vector<nn::Matrix> d_hs(hs.size());
    double batch_loss = 0.0;
    for (size_t t = 0; t < hs.size(); ++t) {
      batch_loss += loss.StepLossAndGrad(hs[t], tgt_steps[t],
                                         /*accumulate_grads=*/true, &d_hs[t]);
    }
    std::vector<nn::Matrix> d_xs;
    gru_.Backward(xs, nullptr, masks, result, &d_hs, nullptr, &d_xs, nullptr);
    for (size_t t = 0; t < d_xs.size(); ++t) {
      embedding_.Backward(in_steps[t], d_xs[t]);
    }

    nn::ClipGradNorm(Params(), config_.grad_clip);
    adam.Step();
    adam.ZeroGrad();

    const double per_token =
        batch_loss / static_cast<double>(std::max<size_t>(target_tokens, 1));
    smoothed = has_smoothed ? 0.98 * smoothed + 0.02 * per_token : per_token;
    has_smoothed = true;
  }
  return smoothed;
}

nn::Matrix VRnn::EncodeBatch(const std::vector<traj::TokenSeq>& seqs) const {
  const size_t n = seqs.size();
  nn::Matrix out(n, hidden());
  if (n == 0) return out;
  size_t max_len = 0;
  for (const traj::TokenSeq& s : seqs) max_len = std::max(max_len, s.size());
  if (max_len == 0) return out;

  std::vector<std::vector<geo::Token>> steps(
      max_len, std::vector<geo::Token>(n, geo::kPadToken));
  std::vector<std::vector<float>> masks(max_len, std::vector<float>(n, 0.0f));
  for (size_t b = 0; b < n; ++b) {
    for (size_t t = 0; t < seqs[b].size(); ++t) {
      steps[t][b] = seqs[b][t];
      masks[t][b] = 1.0f;
    }
  }
  std::vector<nn::Matrix> xs(max_len);
  for (size_t t = 0; t < max_len; ++t) embedding_.Forward(steps[t], &xs[t]);
  nn::Gru::ForwardResult result;
  gru_.Forward(xs, nullptr, masks, &result);
  const nn::Matrix& top = result.final_state.h.back();
  for (size_t b = 0; b < n; ++b) {
    if (seqs[b].empty()) continue;
    std::copy(top.Row(b), top.Row(b) + hidden(), out.Row(b));
  }
  return out;
}

nn::ParamList VRnn::Params() {
  nn::ParamList params = embedding_.Params();
  for (nn::Parameter* p : gru_.Params()) params.push_back(p);
  for (nn::Parameter* p : proj_.Params()) params.push_back(p);
  return params;
}

}  // namespace t2vec::core
