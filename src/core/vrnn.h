#ifndef T2VEC_CORE_VRNN_H_
#define T2VEC_CORE_VRNN_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/config.h"
#include "core/loss.h"
#include "geo/vocab.h"
#include "nn/embedding.h"
#include "nn/gru.h"
#include "traj/tokenizer.h"

/// \file
/// The vanilla-RNN embedding baseline (paper Sec. V-A): the same GRU
/// architecture as the t2vec encoder, but trained as a language model — it
/// predicts the next cell given the cells already seen (plain NLL loss, no
/// spatial machinery, no encoder-decoder pairing). The representation is,
/// as in t2vec, the final hidden state of the top layer.

namespace t2vec::core {

/// The vRNN baseline model.
class VRnn {
 public:
  /// Architecture fields (embed_dim, hidden, layers) are taken from
  /// `config`, matching the paper's "same parameters as our encoder-RNN".
  VRnn(const T2VecConfig& config, geo::Token vocab_size, Rng& rng);

  /// Trains on the token sequences with next-cell prediction for
  /// `iterations` batches. Returns the final smoothed per-token loss.
  double Train(const std::vector<traj::TokenSeq>& seqs, size_t iterations,
               Rng& rng);

  /// Encodes sequences into an N x hidden matrix of final hidden states.
  nn::Matrix EncodeBatch(const std::vector<traj::TokenSeq>& seqs) const;

  size_t hidden() const { return gru_.hidden(); }

  nn::ParamList Params();

 private:
  T2VecConfig config_;
  nn::Embedding embedding_;
  nn::Gru gru_;
  OutputProjection proj_;
};

}  // namespace t2vec::core

#endif  // T2VEC_CORE_VRNN_H_
