#include "core/ann_index.h"

#include <cstdio>
#include <cstring>
#include <utility>

#include "common/macros.h"
#include "core/ivf_index.h"
#include "core/vec_index.h"

namespace t2vec::core {

namespace {

// One shared parse of the standalone snapshot header; both loaders funnel
// through it so the validation (magic, version, checksum policy, size
// bounds) cannot drift between the copying and the mmap path.
struct SnapshotHeader {
  IndexKind kind = IndexKind::kExact;
  size_t dim = 0;
  size_t rows = 0;
};

Result<SnapshotHeader> ParseIndexHeader(BinaryReader* reader,
                                        const std::string& path) {
  if (!reader->ok()) return reader->status();
  uint32_t magic = 0, version = 0, kind = 0;
  uint64_t dim = 0, rows = 0;
  if (!reader->ReadPod(&magic) || magic != kIndexSnapshotMagic) {
    return Status::IoError("not an index snapshot: " + path);
  }
  if (!reader->ReadPod(&version) || version == 0 ||
      version > kIndexSnapshotVersion) {
    return Status::IoError("unsupported index snapshot version in " + path);
  }
  // Every index snapshot version is CRC-framed; a version-valid file with
  // no trailer had its checksum stripped (e.g. trailer-sized truncation).
  if (!reader->checksummed()) {
    return Status::IoError("index snapshot " + path +
                           " is missing its checksum trailer");
  }
  if (!reader->ReadPod(&kind) ||
      kind > static_cast<uint32_t>(IndexKind::kIvf)) {
    return Status::IoError("unknown index kind in " + path);
  }
  if (!reader->ReadPod(&dim) || dim == 0 || !reader->ReadPod(&rows)) {
    return Status::IoError("truncated index snapshot header in " + path);
  }
  if (rows > reader->remaining() / (dim * sizeof(float))) {
    return Status::IoError("index snapshot row block truncated in " + path);
  }
  SnapshotHeader header;
  header.kind = static_cast<IndexKind>(kind);
  header.dim = static_cast<size_t>(dim);
  header.rows = static_cast<size_t>(rows);
  return header;
}

Result<std::unique_ptr<AnnIndex>> RestoreIndex(const IndexConfig& config,
                                               const std::string& path,
                                               BinaryReader* reader,
                                               RowBlock block,
                                               IndexKind file_kind,
                                               size_t dim) {
  auto created = CreateIndex(config, dim);
  if (!created.ok()) return created.status();
  std::unique_ptr<AnnIndex> index = std::move(created).value();
  // The aux block only describes `file_kind`'s structure; under a different
  // configured kind the rows still load and the backend rebuilds.
  BinaryReader* aux = file_kind == config.kind ? reader : nullptr;
  if (Status st = index->Restore(std::move(block), aux); !st.ok()) {
    return Status(st.code(), "loading " + path + ": " + st.message());
  }
  return index;
}

}  // namespace

const char* IndexKindName(IndexKind kind) {
  switch (kind) {
    case IndexKind::kExact:
      return "exact";
    case IndexKind::kLsh:
      return "lsh";
    case IndexKind::kIvf:
      return "ivf";
  }
  return "unknown";
}

Result<IndexKind> ParseIndexKind(const std::string& name) {
  if (name == "exact") return IndexKind::kExact;
  if (name == "lsh") return IndexKind::kLsh;
  if (name == "ivf") return IndexKind::kIvf;
  return Status::InvalidArgument("unknown index kind \"" + name +
                                 "\" (expected exact, lsh, or ivf)");
}

Status IndexConfig::Validate() const {
  switch (kind) {
    case IndexKind::kExact:
      return Status::Ok();
    case IndexKind::kLsh:
      if (lsh_tables < 1) {
        return Status::InvalidArgument("lsh_tables must be >= 1");
      }
      if (lsh_bits < 1 || lsh_bits > 24) {
        return Status::InvalidArgument("lsh_bits must be in [1, 24]");
      }
      return Status::Ok();
    case IndexKind::kIvf:
      if (ivf_nlist < 1) {
        return Status::InvalidArgument("ivf_nlist must be >= 1");
      }
      if (ivf_nprobe < 1) {
        return Status::InvalidArgument("ivf_nprobe must be >= 1");
      }
      if (ivf_train_iters < 1) {
        return Status::InvalidArgument("ivf_train_iters must be >= 1");
      }
      if (ivf_train_per_list < 1) {
        return Status::InvalidArgument("ivf_train_per_list must be >= 1");
      }
      return Status::Ok();
  }
  return Status::InvalidArgument("unknown index kind");
}

double IndexStats::MeanCandidates() const {
  if (queries == 0) return 0.0;
  return static_cast<double>(candidates) / static_cast<double>(queries);
}

std::string IndexStats::ToJson() const {
  char mean[32];
  std::snprintf(mean, sizeof(mean), "%.2f", MeanCandidates());
  std::string json = "{\"kind\":\"";
  json += IndexKindName(kind);
  json += "\",\"size\":" + std::to_string(size);
  json += ",\"dim\":" + std::to_string(dim);
  json += ",\"queries\":" + std::to_string(queries);
  json += ",\"candidates\":" + std::to_string(candidates);
  json += ",\"mean_candidates\":";
  json += mean;
  json += ",\"trained\":";
  json += trained ? "true" : "false";
  if (kind == IndexKind::kIvf) {
    json += ",\"nlist\":" + std::to_string(nlist);
    json += ",\"nprobe\":" + std::to_string(nprobe);
  }
  json += "}";
  return json;
}

RowStore::RowStore(size_t dim) : dim_(dim) { T2VEC_CHECK(dim > 0); }

size_t RowStore::Append(std::span<const float> vec) {
  T2VEC_CHECK(vec.size() == dim_);
  tail_.insert(tail_.end(), vec.begin(), vec.end());
  return rows() - 1;
}

void RowStore::InstallBorrowed(const float* base, size_t n,
                               std::shared_ptr<MmapFile> keepalive) {
  T2VEC_CHECK(rows() == 0);
  base_ = base;
  base_rows_ = n;
  keepalive_ = std::move(keepalive);
}

void RowStore::InstallOwned(std::vector<float> data) {
  T2VEC_CHECK(rows() == 0);
  T2VEC_CHECK(data.size() % dim_ == 0);
  owned_base_ = std::move(data);
  base_ = owned_base_.data();
  base_rows_ = owned_base_.size() / dim_;
}

void RowStore::AppendRawTo(BinaryWriter* writer) const {
  if (base_rows_ > 0) {
    writer->WriteRaw(base_, base_rows_ * dim_ * sizeof(float));
  }
  if (!tail_.empty()) {
    writer->WriteRaw(tail_.data(), tail_.size() * sizeof(float));
  }
}

void AnnIndex::Add(std::span<const float> vec) {
  const size_t row = rows_.Append(vec);
  OnAppend(row);
}

Status AnnIndex::Save(const std::string& path) const {
  BinaryWriter writer(path);
  writer.WritePod(kIndexSnapshotMagic);
  writer.WritePod(kIndexSnapshotVersion);
  writer.WritePod(static_cast<uint32_t>(kind()));
  writer.WritePod<uint64_t>(dim());
  writer.WritePod<uint64_t>(Size());
  // Header is 28 bytes, so the row block lands 4-byte aligned for the mmap
  // read path (static_asserted here rather than trusted).
  static_assert((4 + 4 + 4 + 8 + 8) % alignof(float) == 0);
  rows_.AppendRawTo(&writer);
  SaveAux(&writer);
  return writer.Finish();
}

Status AnnIndex::Restore(RowBlock block, BinaryReader* aux) {
  T2VEC_CHECK(Size() == 0);
  const size_t n = block.rows;
  if (block.borrowed != nullptr) {
    rows_.InstallBorrowed(block.borrowed, n, std::move(block.keepalive));
  } else {
    T2VEC_CHECK(block.owned.size() == n * dim());
    rows_.InstallOwned(std::move(block.owned));
  }
  if (aux != nullptr) {
    Status st = LoadAux(aux);
    if (st.ok()) return st;
    if (st.code() != StatusCode::kInvalidArgument) return st;
    // Aux written under different parameters: fall through to the replay
    // rebuild (LoadAux left the index untouched).
  }
  for (size_t r = 0; r < n; ++r) OnAppend(r);
  return Status::Ok();
}

IndexStats AnnIndex::Stats() const {
  IndexStats stats;
  stats.kind = kind();
  stats.size = Size();
  stats.dim = dim();
  stats.queries = queries_.load(std::memory_order_relaxed);
  stats.candidates = candidates_.load(std::memory_order_relaxed);
  FillStats(&stats);
  return stats;
}

double AnnIndex::MeanCandidates() const { return Stats().MeanCandidates(); }

void AnnIndex::CountQuery(size_t candidates) const {
  queries_.fetch_add(1, std::memory_order_relaxed);
  candidates_.fetch_add(static_cast<int64_t>(candidates),
                        std::memory_order_relaxed);
}

Result<std::unique_ptr<AnnIndex>> CreateIndex(const IndexConfig& config,
                                              size_t dim) {
  if (Status st = config.Validate(); !st.ok()) return st;
  if (dim == 0) return Status::InvalidArgument("index dim must be > 0");
  switch (config.kind) {
    case IndexKind::kExact:
      return std::unique_ptr<AnnIndex>(new VectorIndex(dim));
    case IndexKind::kLsh:
      return std::unique_ptr<AnnIndex>(new LshIndex(
          dim, config.lsh_tables, config.lsh_bits, config.lsh_seed));
    case IndexKind::kIvf:
      return std::unique_ptr<AnnIndex>(new IvfIndex(dim, config));
  }
  return Status::InvalidArgument("unknown index kind");
}

Result<std::unique_ptr<AnnIndex>> LoadIndex(const IndexConfig& config,
                                            const std::string& path) {
  BinaryReader reader(path);
  auto header = ParseIndexHeader(&reader, path);
  if (!header.ok()) return header.status();
  const SnapshotHeader& h = header.value();
  RowBlock block;
  block.rows = h.rows;
  block.owned.resize(h.rows * h.dim);
  const char* raw = reader.ReadRaw(h.rows * h.dim * sizeof(float));
  T2VEC_CHECK(raw != nullptr);  // Bounded by ParseIndexHeader's size check.
  std::memcpy(block.owned.data(), raw, block.owned.size() * sizeof(float));
  return RestoreIndex(config, path, &reader, std::move(block), h.kind, h.dim);
}

Result<std::unique_ptr<AnnIndex>> OpenIndexMmap(const IndexConfig& config,
                                               const std::string& path) {
  auto mapped = MmapFile::Open(path);
  if (!mapped.ok()) return mapped.status();
  auto keepalive = std::make_shared<MmapFile>(std::move(mapped).value());
  BinaryReader reader(keepalive->data(), keepalive->size(), path);
  auto header = ParseIndexHeader(&reader, path);
  if (!header.ok()) return header.status();
  const SnapshotHeader& h = header.value();
  RowBlock block;
  block.rows = h.rows;
  block.borrowed = reinterpret_cast<const float*>(
      reader.ReadRaw(h.rows * h.dim * sizeof(float)));
  block.keepalive = keepalive;
  if (h.rows > 0) {
    T2VEC_CHECK(block.borrowed != nullptr);
    // The 28-byte header keeps the block float-aligned within the
    // page-aligned mapping; verify rather than assume.
    T2VEC_CHECK(reinterpret_cast<uintptr_t>(block.borrowed) %
                    alignof(float) ==
                0);
  } else {
    block.borrowed = nullptr;
  }
  return RestoreIndex(config, path, &reader, std::move(block), h.kind, h.dim);
}

}  // namespace t2vec::core
