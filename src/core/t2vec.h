#ifndef T2VEC_CORE_T2VEC_H_
#define T2VEC_CORE_T2VEC_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "core/config.h"
#include "core/model.h"
#include "core/trainer.h"
#include "dist/measure.h"
#include "geo/vocab.h"
#include "traj/dataset.h"

/// \file
/// The library's main entry point: the end-to-end t2vec pipeline.
///
/// Training (T2Vec::Train) runs the paper's full recipe:
///   1. build the hot-cell vocabulary over the training trips (Sec. IV-B),
///   2. precompute the K-nearest-cell kernel table (Sec. IV-C),
///   3. pretrain cell embeddings with Algorithm 1 (unless disabled),
///   4. generate the r1 x r2 grid of (variant, original) pairs,
///   5. train the seq2seq model with the configured loss (L1/L2/L3),
///      Adam, gradient clipping, and validation early stopping.
///
/// A trained model encodes any trajectory into a |v|-dimensional vector in
/// O(n) and measures similarity as the Euclidean distance between vectors in
/// O(|v|) (Sec. IV-D).

namespace t2vec::core {

/// A trained t2vec model: vocabulary + encoder-decoder weights.
class T2Vec {
 public:
  /// Runs the full training pipeline on `trips` after validating the config
  /// and the inputs; invalid configs and empty training sets surface as an
  /// InvalidArgument status instead of aborting. `stats`, if non-null,
  /// receives the training run summary.
  static Result<T2Vec> TrainChecked(const std::vector<traj::Trajectory>& trips,
                                    const T2VecConfig& config,
                                    TrainStats* stats = nullptr);

  /// CHECK-failing convenience wrapper around TrainChecked for callers that
  /// treat a bad config as a programming error.
  static T2Vec Train(const std::vector<traj::Trajectory>& trips,
                     const T2VecConfig& config, TrainStats* stats = nullptr);

  /// Encodes trajectories into an N x hidden matrix of representations.
  nn::Matrix Encode(const std::vector<traj::Trajectory>& trips) const;

  /// Encodes a single trajectory.
  std::vector<float> EncodeOne(const traj::Trajectory& trip) const;

  /// Tokenizes a trajectory exactly the way the encoder consumes it
  /// (reversed when config().reverse_source). Tokenize once, then batch
  /// with EncodeTokenized — the serving layer buckets requests by token
  /// length this way without re-tokenizing.
  traj::TokenSeq EncoderTokens(const traj::Trajectory& trip) const {
    return TokenizeForEncoder(trip);
  }

  /// Batch-encodes pre-tokenized sequences (one padded forward pass):
  /// returns an N x hidden matrix whose row i is the representation of
  /// seqs[i]. Row i depends only on seqs[i] — per-row results are
  /// bit-identical across batch compositions of equal-length sequences,
  /// which is the contract the serving layer's micro-batching relies on.
  nn::Matrix EncodeTokenized(const std::vector<traj::TokenSeq>& seqs) const;

  /// int8 variants of Encode / EncodeTokenized for serving: roughly the
  /// fp32 representations at a fraction of the cost, via the quantized
  /// encoder (core/model.h QuantizedEncoder). Results differ from fp32 by a
  /// small, measured error (EXPERIMENTS.md) but are themselves
  /// deterministic across thread counts and SIMD tiers. The quantized
  /// weights are built lazily on first use and cached; call
  /// PrepareQuantized() to pay that cost eagerly (e.g. at server startup).
  nn::Matrix EncodeQuantized(const std::vector<traj::Trajectory>& trips) const;
  nn::Matrix EncodeQuantizedTokenized(
      const std::vector<traj::TokenSeq>& seqs) const;

  /// Builds the quantized encoder now (idempotent, thread-safe). The cache
  /// snapshots the current weights; it is never invalidated by later
  /// training, matching the load-then-serve lifecycle.
  void PrepareQuantized() const;

  /// Euclidean distance between the two trajectories' representations.
  /// O(n + |v|) total (paper Sec. IV-D).
  double Distance(const traj::Trajectory& a, const traj::Trajectory& b) const;

  /// Reconstructs the most likely dense route of a sparse/noisy trajectory
  /// by greedy decoding (the paper's P(R|T) objective, Sec. IV-A): returns
  /// the decoded hot-cell centers. `max_len` bounds the decoded length
  /// (0 = 4x the input length).
  traj::Trajectory ReconstructRoute(const traj::Trajectory& sparse,
                                    size_t max_len = 0) const;

  /// Serializes config, vocabulary, and weights into one file.
  Status Save(const std::string& path) const;

  /// Restores a model written by Save().
  static Result<T2Vec> Load(const std::string& path);

  const T2VecConfig& config() const { return config_; }
  const geo::HotCellVocab& vocab() const { return *vocab_; }
  EncoderDecoder& model() { return *model_; }
  const EncoderDecoder& model() const { return *model_; }

  T2Vec(T2Vec&&) = default;
  T2Vec& operator=(T2Vec&&) = default;

 private:
  /// Lazily-built quantized encoder. Behind a unique_ptr so T2Vec stays
  /// movable (sync::Mutex is not).
  struct QuantCache {
    sync::Mutex mu;
    std::unique_ptr<QuantizedEncoder> enc GUARDED_BY(mu);
  };

  /// Tokenizes a trajectory the way the encoder expects (reversed when
  /// config_.reverse_source is set).
  traj::TokenSeq TokenizeForEncoder(const traj::Trajectory& trip) const;

  /// The cached quantized encoder, building it on first call.
  const QuantizedEncoder& Quantized() const;

  T2Vec(T2VecConfig config, std::unique_ptr<geo::HotCellVocab> vocab,
        std::unique_ptr<EncoderDecoder> model)
      : config_(config),
        vocab_(std::move(vocab)),
        model_(std::move(model)),
        quant_(std::make_unique<QuantCache>()) {}

  T2VecConfig config_;
  std::unique_ptr<geo::HotCellVocab> vocab_;
  std::unique_ptr<EncoderDecoder> model_;
  mutable std::unique_ptr<QuantCache> quant_;
};

/// Adapter exposing a trained T2Vec as a dist::Measure so the evaluation
/// harness can rank it alongside the classical baselines. A bounded memo
/// cache keyed by a trajectory fingerprint stores recent representations,
/// so ranking loops that compare a query against a whole database encode
/// each trajectory once instead of O(n) times per pair. Thread-safe (the
/// harness calls Distance from parallel query loops); batch experiments
/// should still precompute vectors via T2Vec::Encode.
class T2VecMeasure : public dist::Measure {
 public:
  /// `capacity` bounds the memo cache (entries, FIFO eviction; 0 disables
  /// caching entirely).
  explicit T2VecMeasure(const T2Vec* model, size_t capacity = 1024);
  ~T2VecMeasure() override;

  double Distance(const traj::Trajectory& a,
                  const traj::Trajectory& b) const override;
  std::string Name() const override { return "t2vec"; }

  /// Cache diagnostics (for tests and tuning).
  size_t cache_hits() const;
  size_t cache_misses() const;

 private:
  struct Memo;
  /// The representation of `t`, from the memo cache when present.
  std::vector<float> Encoded(const traj::Trajectory& t) const;

  const T2Vec* model_;
  std::unique_ptr<Memo> memo_;
};

}  // namespace t2vec::core

#endif  // T2VEC_CORE_T2VEC_H_
