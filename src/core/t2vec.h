#ifndef T2VEC_CORE_T2VEC_H_
#define T2VEC_CORE_T2VEC_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/config.h"
#include "core/model.h"
#include "core/trainer.h"
#include "dist/measure.h"
#include "geo/vocab.h"
#include "traj/dataset.h"

/// \file
/// The library's main entry point: the end-to-end t2vec pipeline.
///
/// Training (T2Vec::Train) runs the paper's full recipe:
///   1. build the hot-cell vocabulary over the training trips (Sec. IV-B),
///   2. precompute the K-nearest-cell kernel table (Sec. IV-C),
///   3. pretrain cell embeddings with Algorithm 1 (unless disabled),
///   4. generate the r1 x r2 grid of (variant, original) pairs,
///   5. train the seq2seq model with the configured loss (L1/L2/L3),
///      Adam, gradient clipping, and validation early stopping.
///
/// A trained model encodes any trajectory into a |v|-dimensional vector in
/// O(n) and measures similarity as the Euclidean distance between vectors in
/// O(|v|) (Sec. IV-D).

namespace t2vec::core {

/// A trained t2vec model: vocabulary + encoder-decoder weights.
class T2Vec {
 public:
  /// Runs the full training pipeline on `trips`. `stats`, if non-null,
  /// receives the training run summary.
  static T2Vec Train(const std::vector<traj::Trajectory>& trips,
                     const T2VecConfig& config, TrainStats* stats = nullptr);

  /// Encodes trajectories into an N x hidden matrix of representations.
  nn::Matrix Encode(const std::vector<traj::Trajectory>& trips) const;

  /// Encodes a single trajectory.
  std::vector<float> EncodeOne(const traj::Trajectory& trip) const;

  /// Euclidean distance between the two trajectories' representations.
  /// O(n + |v|) total (paper Sec. IV-D).
  double Distance(const traj::Trajectory& a, const traj::Trajectory& b) const;

  /// Reconstructs the most likely dense route of a sparse/noisy trajectory
  /// by greedy decoding (the paper's P(R|T) objective, Sec. IV-A): returns
  /// the decoded hot-cell centers. `max_len` bounds the decoded length
  /// (0 = 4x the input length).
  traj::Trajectory ReconstructRoute(const traj::Trajectory& sparse,
                                    size_t max_len = 0) const;

  /// Serializes config, vocabulary, and weights into one file.
  Status Save(const std::string& path) const;

  /// Restores a model written by Save().
  static Result<T2Vec> Load(const std::string& path);

  const T2VecConfig& config() const { return config_; }
  const geo::HotCellVocab& vocab() const { return *vocab_; }
  EncoderDecoder& model() { return *model_; }
  const EncoderDecoder& model() const { return *model_; }

  T2Vec(T2Vec&&) = default;
  T2Vec& operator=(T2Vec&&) = default;

 private:
  /// Tokenizes a trajectory the way the encoder expects (reversed when
  /// config_.reverse_source is set).
  traj::TokenSeq TokenizeForEncoder(const traj::Trajectory& trip) const;

  T2Vec(T2VecConfig config, std::unique_ptr<geo::HotCellVocab> vocab,
        std::unique_ptr<EncoderDecoder> model)
      : config_(config), vocab_(std::move(vocab)), model_(std::move(model)) {}

  T2VecConfig config_;
  std::unique_ptr<geo::HotCellVocab> vocab_;
  std::unique_ptr<EncoderDecoder> model_;
};

/// Adapter exposing a trained T2Vec as a dist::Measure so the evaluation
/// harness can rank it alongside the classical baselines. Encodes per call;
/// batch experiments should precompute vectors via T2Vec::Encode instead.
class T2VecMeasure : public dist::Measure {
 public:
  explicit T2VecMeasure(const T2Vec* model) : model_(model) {}
  double Distance(const traj::Trajectory& a,
                  const traj::Trajectory& b) const override {
    return model_->Distance(a, b);
  }
  std::string Name() const override { return "t2vec"; }

 private:
  const T2Vec* model_;
};

}  // namespace t2vec::core

#endif  // T2VEC_CORE_T2VEC_H_
