#include "core/pairs.h"

#include <algorithm>

#include "traj/transforms.h"

namespace t2vec::core {

std::vector<TokenPair> BuildTrainingPairs(
    const std::vector<traj::Trajectory>& trips,
    const geo::HotCellVocab& vocab, const T2VecConfig& config, Rng& rng) {
  std::vector<TokenPair> pairs;
  pairs.reserve(trips.size() * config.r1_grid.size() *
                config.r2_grid.size());
  for (const traj::Trajectory& trip : trips) {
    if (trip.size() < 2) continue;
    const traj::TokenSeq tgt = traj::Tokenize(vocab, trip);
    for (double r1 : config.r1_grid) {
      const traj::Trajectory down = traj::Downsample(trip, r1, rng);
      for (double r2 : config.r2_grid) {
        const traj::Trajectory variant = traj::Distort(down, r2, rng);
        traj::TokenSeq src = traj::Tokenize(vocab, variant);
        if (config.reverse_source) std::reverse(src.begin(), src.end());
        pairs.push_back({std::move(src), tgt});
      }
    }
  }
  return pairs;
}

}  // namespace t2vec::core
