#ifndef T2VEC_CORE_DECODER_H_
#define T2VEC_CORE_DECODER_H_

#include <vector>

#include "core/model.h"

/// \file
/// Sequence decoding: reconstruct the most likely *dense* token sequence
/// from a sparse/noisy trajectory.
///
/// The paper's objective is maximizing P(R|T) — inferring the underlying
/// route from a degraded observation (Sec. IV-A). Training optimizes this
/// through reconstruction pairs; this header exposes the generative side of
/// the trained model: greedy and beam-search decoding of
/// argmax_y P(y | v(T)). It powers the route-reconstruction API
/// (T2Vec::ReconstructRoute) and demonstrates that the learned model really
/// does recover dense routes from sparse inputs.

namespace t2vec::core {

/// A decoded candidate sequence with its cumulative log-probability.
struct Hypothesis {
  traj::TokenSeq tokens;  ///< Decoded cell tokens (BOS/EOS stripped).
  double log_prob = 0.0;  ///< Sum of per-token log P.
};

/// Greedy / beam-search decoder over a trained EncoderDecoder.
/// The model must outlive the decoder.
class SequenceDecoder {
 public:
  explicit SequenceDecoder(const EncoderDecoder* model) : model_(model) {}

  /// Greedy argmax decoding conditioned on the encoded `src`. Stops at EOS
  /// or after `max_len` tokens.
  traj::TokenSeq DecodeGreedy(const traj::TokenSeq& src,
                              size_t max_len) const;

  /// Beam search with `beam_width` beams; returns completed hypotheses
  /// sorted by descending length-normalized log-probability (best first).
  std::vector<Hypothesis> DecodeBeam(const traj::TokenSeq& src,
                                     size_t beam_width, size_t max_len) const;

 private:
  const EncoderDecoder* model_;
};

}  // namespace t2vec::core

#endif  // T2VEC_CORE_DECODER_H_
