#ifndef T2VEC_CORE_MODEL_H_
#define T2VEC_CORE_MODEL_H_

#include <vector>

#include <memory>

#include "common/rng.h"
#include "core/config.h"
#include "core/loss.h"
#include "nn/attention.h"
#include "nn/embedding.h"
#include "nn/gru.h"
#include "nn/quant.h"
#include "traj/tokenizer.h"

/// \file
/// The t2vec sequence encoder-decoder (paper Sec. III-B, IV).
///
/// Encoder: token embedding -> multi-layer GRU; the trajectory
/// representation v is the top layer's final hidden state.
/// Decoder: a second multi-layer GRU whose per-layer initial states are the
/// encoder's final states; it is trained with teacher forcing to reproduce
/// the original (high-sampling-rate) token sequence, terminated by EOS.
/// The embedding table is shared between encoder and decoder inputs — both
/// sides speak the same cell vocabulary, and the shared table is what cell
/// pretraining (Algorithm 1) initializes.

namespace t2vec::core {

/// A padded batch of training pairs in step-major layout.
struct Batch {
  /// Encoder input tokens per step ([T_src] x B, kPadToken when exhausted).
  std::vector<std::vector<geo::Token>> src_steps;
  /// Encoder masks, aligned with src_steps (1 = active).
  std::vector<std::vector<float>> src_masks;
  /// Decoder input tokens per step: BOS, y_1, ..., y_{T-1}.
  std::vector<std::vector<geo::Token>> dec_input_steps;
  /// Decoder targets per step: y_1, ..., y_T, EOS (kPadToken when done).
  std::vector<std::vector<geo::Token>> target_steps;
  /// Decoder masks aligned with target_steps.
  std::vector<std::vector<float>> tgt_masks;
  size_t batch_size = 0;
  size_t target_tokens = 0;  ///< Active targets (for per-token loss).
};

/// Builds a padded batch from raw (src, tgt) token-sequence pairs.
/// `pairs[i]` pointers must outlive the call. EOS is appended to targets.
Batch BuildBatch(const std::vector<const struct TokenPair*>& pairs);

/// The encoder-decoder model.
class EncoderDecoder {
 public:
  EncoderDecoder(const T2VecConfig& config, geo::Token vocab_size, Rng& rng);

  /// Runs one teacher-forced pass over a batch. Returns the summed loss over
  /// all active target tokens. When `accumulate_grads` is true, gradients of
  /// all parameters are accumulated (call Params()/optimizer afterwards);
  /// when false (validation), parameters are untouched.
  double RunBatch(const Batch& batch, SeqLoss* loss, bool accumulate_grads);

  /// Encodes token sequences into representation vectors: returns an
  /// N x hidden matrix whose row i is v(seqs[i]) — the encoder top layer's
  /// final hidden state. Empty sequences yield the zero vector.
  nn::Matrix EncodeBatch(const std::vector<traj::TokenSeq>& seqs) const;

  OutputProjection& projection() { return proj_; }
  const OutputProjection& projection() const { return proj_; }
  nn::Embedding& embedding() { return embedding_; }
  const nn::Embedding& embedding() const { return embedding_; }
  const nn::Gru& encoder() const { return encoder_; }
  const nn::Gru& decoder() const { return decoder_; }
  bool has_attention() const { return attention_ != nullptr; }
  const nn::Attention* attention() const { return attention_.get(); }

  size_t hidden() const { return encoder_.hidden(); }

  /// All trainable parameters (embedding, both GRUs, projection).
  nn::ParamList Params();

 private:
  /// Embeds one batch step of token ids.
  void EmbedStep(const std::vector<geo::Token>& ids, nn::Matrix* out) const;

  nn::Embedding embedding_;
  nn::Gru encoder_;
  nn::Gru decoder_;
  /// Optional global attention over encoder outputs (config.use_attention).
  std::unique_ptr<nn::Attention> attention_;
  OutputProjection proj_;
  /// Thread-count override scoped to RunBatch (T2VecConfig::num_threads);
  /// the GEMM kernels partition output rows over the pool, bit-identically
  /// to serial at any count (nn/matrix.h).
  int num_threads_ = 0;
};

/// int8 inference twin of the encoder half: fp32 embedding lookups feeding a
/// quantized GRU stack (nn/quant.h). Weights are captured (quantized) at
/// construction from a trained model — typically once at serving-load time;
/// rebuild after any further training. Encoding is deterministic across
/// thread counts and SIMD dispatch tiers (the int8 dots are exact integers).
class QuantizedEncoder {
 public:
  explicit QuantizedEncoder(const EncoderDecoder& model);

  /// int8 analogue of EncoderDecoder::EncodeBatch: same padding, masks, and
  /// zero-vector-for-empty-sequence behavior; the GRU math runs int8.
  nn::Matrix EncodeBatch(const std::vector<traj::TokenSeq>& seqs) const;

  size_t hidden() const { return gru_.hidden(); }

 private:
  const nn::Embedding* embedding_;
  nn::QuantizedGru gru_;
};

}  // namespace t2vec::core

#endif  // T2VEC_CORE_MODEL_H_
