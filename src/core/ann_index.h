#ifndef T2VEC_CORE_ANN_INDEX_H_
#define T2VEC_CORE_ANN_INDEX_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/fs.h"
#include "common/serialize.h"
#include "common/status.h"
#include "dist/knn.h"

/// \file
/// The polymorphic nearest-neighbor index interface (DESIGN.md §4e).
///
/// Every serving path constructs its index through `IndexConfig` +
/// `CreateIndex` and talks to it as an `AnnIndex`: exact scan
/// (`VectorIndex`), multi-probe LSH (`LshIndex`), or the IVF coarse
/// quantizer (`IvfIndex`). The base class owns the vector rows (`RowStore`)
/// and the non-virtual Add/Save/Restore skeleton; backends only implement
/// how a new row enters their acceleration structure (`OnAppend`) and how
/// that structure round-trips a snapshot (`SaveAux`/`LoadAux`).
///
/// This template-method split is what makes the "incremental Add is
/// provably identical to build-once" guarantee structural rather than
/// per-backend: a bulk build, a one-at-a-time build, and a snapshot restore
/// without usable aux all funnel through the same `OnAppend(row)` calls in
/// the same ascending row order, so there is no second code path to drift.
///
/// Snapshot format (standalone index files, magic "t2vA"):
///
///     magic u32 | version u32 | kind u32 | dim u64 | rows u64 |
///     rows*dim raw floats | backend aux | CRC32C trailer
///
/// The raw float block starts at byte 28 (4-byte aligned) so an
/// mmap-backed open (`OpenIndexMmap`) can serve rows zero-copy straight
/// out of the page cache: the CRC is verified once at open, and the
/// `RowStore` keeps the mapping alive for as long as any borrowed row may
/// be dereferenced (see `common/fs.h` MmapFile lifetime rules).

namespace t2vec::core {

using dist::KnnResult;

/// Magic + version for standalone index snapshots ("t2vA" little-endian).
/// Version 2 is the first (and current) version: index snapshots were born
/// after the repo-wide CRC-framing bump, so like every other artifact they
/// start at the first checksummed version and readers reject "version >= 2
/// but no trailer" as a stripped checksum.
inline constexpr uint32_t kIndexSnapshotMagic = 0x41763274;
inline constexpr uint32_t kIndexSnapshotVersion = 2;

/// Which nearest-neighbor backend serves queries.
enum class IndexKind : uint32_t {
  kExact = 0,  // VectorIndex: exact linear scan
  kLsh = 1,    // LshIndex: random-hyperplane multi-probe LSH
  kIvf = 2,    // IvfIndex: k-means coarse quantizer + inverted lists
};

/// "exact" / "lsh" / "ivf" (stable CLI + stats-JSON names).
const char* IndexKindName(IndexKind kind);

/// Parses an IndexKindName; InvalidArgument for anything else.
Result<IndexKind> ParseIndexKind(const std::string& name);

/// Everything needed to construct an index, validated up front so a typo'd
/// CLI flag fails with a message instead of a CHECK later. Defaults are the
/// benchmark-tuned serving settings (BENCH_ann.json).
struct IndexConfig {
  IndexKind kind = IndexKind::kExact;

  // --- LSH (kind == kLsh) ---
  int lsh_tables = 6;       // hash tables; more -> higher recall, more memory
  int lsh_bits = 12;        // signature bits per table (1..24)
  uint64_t lsh_seed = 9;    // hyperplane RNG seed

  // --- IVF (kind == kIvf) ---
  size_t ivf_nlist = 256;        // inverted lists (k-means centroids)
  size_t ivf_nprobe = 8;         // lists scanned per query
  int ivf_train_iters = 10;      // Lloyd iterations
  uint64_t ivf_seed = 17;        // centroid-init RNG seed
  size_t ivf_train_per_list = 32;  // training starts at nlist * this rows

  /// OK, or InvalidArgument naming the offending field.
  Status Validate() const;
};

/// A point-in-time snapshot of index diagnostics for the stats endpoint.
struct IndexStats {
  IndexKind kind = IndexKind::kExact;
  size_t size = 0;   // rows indexed
  size_t dim = 0;
  int64_t queries = 0;           // Query() calls served
  int64_t candidates = 0;        // rows exactly scored across all queries
  bool trained = true;           // IVF: quantizer trained (others: always)
  size_t nlist = 0;              // IVF: inverted lists (0 otherwise)
  size_t nprobe = 0;             // IVF: lists probed per query (0 otherwise)

  /// Rows scored per query on average — the work an approximate index
  /// saved relative to `size` rows for an exact scan.
  double MeanCandidates() const;

  /// One-line JSON object for the server stats endpoint.
  std::string ToJson() const;
};

/// Flat row-major storage for an index's vectors: an optional *borrowed*
/// prefix (rows inside an mmap'd snapshot, served zero-copy) plus an owned
/// tail for rows appended afterwards. Row r is stable for the life of the
/// store; the `keepalive` shared_ptr pins the mapping a borrowed prefix
/// points into.
class RowStore {
 public:
  explicit RowStore(size_t dim);

  size_t rows() const { return base_rows_ + tail_.size() / dim_; }
  size_t dim() const { return dim_; }

  /// Pointer to row `r` (length dim()). Borrowed rows point into the
  /// mapping; appended rows into owned storage.
  const float* Row(size_t r) const {
    return r < base_rows_ ? base_ + r * dim_
                          : tail_.data() + (r - base_rows_) * dim_;
  }

  /// Copies `vec` (length dim()) in as row rows(); returns its row id.
  size_t Append(std::span<const float> vec);

  /// Installs `n` borrowed rows as the base prefix (store must be empty).
  /// `keepalive` owns the bytes `base` points into.
  void InstallBorrowed(const float* base, size_t n,
                       std::shared_ptr<MmapFile> keepalive);

  /// Installs owned rows as the base prefix (store must be empty).
  void InstallOwned(std::vector<float> data);

  /// Appends every row's raw bytes (no length prefix) to `writer` — at most
  /// two write calls (borrowed block + owned tail), not one per row.
  void AppendRawTo(BinaryWriter* writer) const;

 private:
  size_t dim_;
  const float* base_ = nullptr;  // borrowed prefix (nullptr if none)
  size_t base_rows_ = 0;
  std::vector<float> owned_base_;  // backs base_ when InstallOwned was used
  std::vector<float> tail_;        // rows appended after the base
  std::shared_ptr<MmapFile> keepalive_;
};

/// Rows to install into a restored index: either an owned float block or a
/// borrowed pointer (plus the mapping that keeps it alive).
struct RowBlock {
  size_t rows = 0;
  std::vector<float> owned;            // used when borrowed == nullptr
  const float* borrowed = nullptr;
  std::shared_ptr<MmapFile> keepalive;
};

/// Abstract nearest-neighbor index. See the file comment for the
/// template-method contract; thread-safety matches the concrete indexes:
/// Query is const and safe to call concurrently, Add/Restore are not.
class AnnIndex {
 public:
  virtual ~AnnIndex() = default;
  AnnIndex(const AnnIndex&) = delete;
  AnnIndex& operator=(const AnnIndex&) = delete;

  /// Appends one vector (length dim()) as row Size() and registers it with
  /// the backend. An index grown by Add answers queries identically to one
  /// built from the same rows in any other way (bulk, restore, replay).
  void Add(std::span<const float> vec);

  /// The (approximate) k nearest rows with squared Euclidean distances,
  /// ascending, NaNs last. k is clamped to Size(): over-asking returns
  /// every row ranked and an empty index returns an empty result — k is
  /// client input on the serving path, so it must never abort.
  virtual KnnResult Query(std::span<const float> query, size_t k) const = 0;

  size_t Size() const { return rows_.rows(); }
  size_t size() const { return Size(); }
  size_t dim() const { return rows_.dim(); }
  virtual IndexKind kind() const = 0;

  /// Raw pointer to indexed row `r` — zero-copy for borrowed (mmap) rows.
  const float* RowPtr(size_t r) const { return rows_.Row(r); }

  /// Writes the standalone snapshot format (see file comment) atomically.
  Status Save(const std::string& path) const;

  /// Installs restored rows into an empty index, then rebuilds the backend
  /// structure: from `aux` (the snapshot's serialized structure) when given
  /// and loadable, otherwise by replaying OnAppend over every row in
  /// ascending order — the same calls Add makes, so a rebuilt index is
  /// bit-identical to one grown live. An InvalidArgument from the backend's
  /// LoadAux (aux written under different parameters) downgrades to the
  /// replay path; I/O and corruption errors propagate.
  Status Restore(RowBlock block, BinaryReader* aux);

  /// Diagnostics snapshot (kind, sizes, query/candidate counters).
  IndexStats Stats() const;

  /// Mean rows exactly scored per query so far.
  double MeanCandidates() const;

  /// Appends the raw row bytes to `writer` (store snapshots embed them).
  void AppendRowsTo(BinaryWriter* writer) const { rows_.AppendRawTo(writer); }

  /// Appends the backend structure bytes to `writer` (store snapshots embed
  /// them after the rows; Restore() consumes them as its `aux`).
  void AppendAuxTo(BinaryWriter* writer) const { SaveAux(writer); }

 protected:
  explicit AnnIndex(size_t dim) : rows_(dim) {}

  /// Registers row `row` (already present in rows()) with the backend's
  /// acceleration structure. Called with rows strictly ascending.
  virtual void OnAppend(size_t row) = 0;

  /// Serializes the backend structure after the row block. Must be a pure
  /// function of the index state with a deterministic byte layout.
  virtual void SaveAux(BinaryWriter* writer) const = 0;

  /// Restores the backend structure written by SaveAux, after the rows are
  /// already installed. Must mutate the index only on success so Restore
  /// can fall back to the replay path on InvalidArgument.
  virtual Status LoadAux(BinaryReader* reader) = 0;

  /// Fills backend-specific IndexStats fields (kind/size/dim/counters are
  /// filled by the base).
  virtual void FillStats(IndexStats* stats) const = 0;

  const RowStore& rows() const { return rows_; }

  /// Records one served query that exactly scored `candidates` rows.
  void CountQuery(size_t candidates) const;

 private:
  RowStore rows_;
  // Not mutex-guarded (DESIGN.md §5.4): relaxed atomic counters keep
  // concurrent Query diagnostics race-free, and no cross-field ordering is
  // needed — the neighbor results themselves are pure.
  mutable std::atomic<int64_t> queries_{0};
  mutable std::atomic<int64_t> candidates_{0};
};

/// Constructs an empty index for `dim`-dimensional vectors per `config`
/// (validated first). The only way serving code builds a concrete index.
Result<std::unique_ptr<AnnIndex>> CreateIndex(const IndexConfig& config,
                                              size_t dim);

/// Loads a standalone index snapshot, reading the whole file. The file's
/// kind must not necessarily match `config.kind`: rows always load, and the
/// aux structure is used when the kinds match, rebuilt otherwise.
Result<std::unique_ptr<AnnIndex>> LoadIndex(const IndexConfig& config,
                                            const std::string& path);

/// Like LoadIndex but memory-maps the snapshot and serves its rows
/// zero-copy: the CRC is verified once at open (one sequential pass) and no
/// row bytes are copied, so a million-vector index opens in milliseconds.
Result<std::unique_ptr<AnnIndex>> OpenIndexMmap(const IndexConfig& config,
                                               const std::string& path);

}  // namespace t2vec::core

#endif  // T2VEC_CORE_ANN_INDEX_H_
