#ifndef T2VEC_CORE_VEC_INDEX_H_
#define T2VEC_CORE_VEC_INDEX_H_

#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "nn/matrix.h"

/// \file
/// Nearest-neighbor search over trajectory representation vectors.
///
/// `VectorIndex` is the exact linear scan: O(N · |v|) per query — already at
/// least an order of magnitude faster than the O(N · n²) DP baselines
/// (paper Fig. 6). `LshIndex` implements the paper's future-work item 3
/// (Sec. VI): random-hyperplane locality-sensitive hashing to push below
/// linear scan; candidates from matching buckets are re-ranked exactly.

namespace t2vec::core {

/// Exact k-NN by linear scan over an N x D vector matrix.
class VectorIndex {
 public:
  explicit VectorIndex(nn::Matrix vectors);

  /// Squared Euclidean distance from `query` (length dim()) to row i.
  double Distance(const float* query, size_t i) const;

  /// Indices of the k nearest rows, ascending by distance.
  std::vector<size_t> Knn(const float* query, size_t k) const;

  /// 1-based rank of `target` in the distance ordering from `query`
  /// (strictly-closer count + 1, so ties favor the target).
  size_t RankOf(const float* query, size_t target) const;

  size_t size() const { return vectors_.rows(); }
  size_t dim() const { return vectors_.cols(); }
  const nn::Matrix& vectors() const { return vectors_; }

 private:
  nn::Matrix vectors_;
};

/// Approximate k-NN via random-hyperplane LSH with multi-probe.
class LshIndex {
 public:
  /// `num_tables` hash tables of `num_bits`-bit signatures over `vectors`
  /// (N x D). More tables -> higher recall, more memory.
  LshIndex(const nn::Matrix& vectors, int num_tables, int num_bits,
           uint64_t seed);

  /// Approximate k nearest rows: candidates are gathered from the query's
  /// bucket in every table plus all 1-bit-flip probes, then ranked exactly.
  /// Falls back to a full scan when fewer than k candidates surface.
  std::vector<size_t> Knn(const float* query, size_t k) const;

  /// Mean number of candidates examined per query so far (diagnostics).
  double MeanCandidates() const;

 private:
  uint32_t Signature(const float* vec, int table) const;

  const nn::Matrix* vectors_;
  int num_tables_;
  int num_bits_;
  nn::Matrix hyperplanes_;  // (num_tables * num_bits) x D
  std::vector<std::unordered_map<uint32_t, std::vector<uint32_t>>> tables_;
  // Atomic so concurrent Knn calls (e.g. from a parallel query loop) keep
  // the diagnostics race-free; the neighbor results themselves are pure.
  mutable std::atomic<int64_t> probe_count_{0};
  mutable std::atomic<int64_t> candidate_count_{0};
};

}  // namespace t2vec::core

#endif  // T2VEC_CORE_VEC_INDEX_H_
