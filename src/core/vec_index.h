#ifndef T2VEC_CORE_VEC_INDEX_H_
#define T2VEC_CORE_VEC_INDEX_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/ann_index.h"
#include "nn/matrix.h"

/// \file
/// The exact and LSH nearest-neighbor backends of `core/ann_index.h`.
///
/// `VectorIndex` is the exact linear scan: O(N · |v|) per query — already at
/// least an order of magnitude faster than the O(N · n²) DP baselines
/// (paper Fig. 6). `LshIndex` implements the paper's future-work item 3
/// (Sec. VI): random-hyperplane locality-sensitive hashing to push below
/// linear scan; candidates from matching buckets are re-ranked exactly.
/// (`core/ivf_index.h` holds the third backend, the IVF coarse quantizer.)
///
/// Both indexes own their vectors through the base `RowStore` and support
/// incremental growth for the online serving path (serve/embedding_store.h):
/// `Add` appends a vector and registers it, and an index grown one vector
/// at a time answers queries identically to one built in bulk or restored
/// from a snapshot (the template-method guarantee in ann_index.h).
///
/// Serving code should not name these types: construct through
/// `IndexConfig` + `CreateIndex` (enforced by the raw-index-ctor lint
/// rule) so the backend stays a config choice, not a compile-time one.

namespace t2vec::core {

/// Exact k-NN by linear scan over the stored vectors.
class VectorIndex : public AnnIndex {
 public:
  /// An empty, growable index for D-dimensional vectors (Add() appends).
  explicit VectorIndex(size_t dim);

  /// An index seeded from a prebuilt vector matrix (rows are copied in).
  explicit VectorIndex(const nn::Matrix& vectors);

  /// The k nearest rows with their squared Euclidean distances, ascending
  /// (NaN distances order last). k is clamped to Size() — see
  /// AnnIndex::Query.
  KnnResult Query(std::span<const float> query, size_t k) const override;

  IndexKind kind() const override { return IndexKind::kExact; }

  /// Squared Euclidean distance from `query` (length dim()) to row i.
  double Distance(const float* query, size_t i) const;

  /// 1-based rank of `target` in the distance ordering from `query`
  /// (strictly-closer count + 1, so ties favor the target).
  size_t RankOf(const float* query, size_t target) const;

 protected:
  void OnAppend(size_t /*row*/) override {}  // The rows *are* the structure.
  void SaveAux(BinaryWriter* /*writer*/) const override {}
  Status LoadAux(BinaryReader* /*reader*/) override { return Status::Ok(); }
  void FillStats(IndexStats* /*stats*/) const override {}
};

/// Approximate k-NN via random-hyperplane LSH with multi-probe.
class LshIndex : public AnnIndex {
 public:
  /// An empty index: `num_tables` hash tables of `num_bits`-bit signatures
  /// (1..24) whose hyperplanes are drawn from `seed`. More tables -> higher
  /// recall, more memory.
  LshIndex(size_t dim, int num_tables, int num_bits, uint64_t seed);

  /// Convenience: seeds the index with every row of `vectors` (copied in).
  LshIndex(const nn::Matrix& vectors, int num_tables, int num_bits,
           uint64_t seed);

  /// Approximate k nearest rows and their squared Euclidean distances:
  /// candidates are gathered from the query's bucket in every table plus
  /// all 1-bit-flip probes, then ranked exactly. Falls back to a full scan
  /// when fewer than k candidates surface. k is clamped to Size().
  KnnResult Query(std::span<const float> query, size_t k) const override;

  IndexKind kind() const override { return IndexKind::kLsh; }

  int num_tables() const { return num_tables_; }
  int num_bits() const { return num_bits_; }

 protected:
  /// Hashes the new row into every table's bucket; bucket contents stay in
  /// ascending row order, the order every construction path produces.
  void OnAppend(size_t row) override;

  /// Params header + buckets with deterministically sorted keys.
  void SaveAux(BinaryWriter* writer) const override;

  /// InvalidArgument when the snapshot's params differ from this index's
  /// (Restore then rebuilds by replay); mutates only on success.
  Status LoadAux(BinaryReader* reader) override;

  void FillStats(IndexStats* /*stats*/) const override {}

 private:
  uint32_t Signature(const float* vec, int table) const;

  int num_tables_;
  int num_bits_;
  uint64_t seed_;
  nn::Matrix hyperplanes_;  // (num_tables * num_bits) x D
  std::vector<std::unordered_map<uint32_t, std::vector<uint32_t>>> tables_;
};

}  // namespace t2vec::core

#endif  // T2VEC_CORE_VEC_INDEX_H_
