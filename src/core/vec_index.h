#ifndef T2VEC_CORE_VEC_INDEX_H_
#define T2VEC_CORE_VEC_INDEX_H_

#include <atomic>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "dist/knn.h"
#include "nn/matrix.h"

/// \file
/// Nearest-neighbor search over trajectory representation vectors.
///
/// `VectorIndex` is the exact linear scan: O(N · |v|) per query — already at
/// least an order of magnitude faster than the O(N · n²) DP baselines
/// (paper Fig. 6). `LshIndex` implements the paper's future-work item 3
/// (Sec. VI): random-hyperplane locality-sensitive hashing to push below
/// linear scan; candidates from matching buckets are re-ranked exactly.
///
/// Both indexes support incremental growth for the online serving path
/// (serve/embedding_store.h): `VectorIndex::Add` appends a vector,
/// `LshIndex::Add` hashes a newly appended row into its buckets. An index
/// grown one vector at a time answers queries identically to one built from
/// the full matrix up front.
///
/// Queries return `dist::KnnResult` (ids + distances, ascending); the raw
/// `Knn` id-only signatures survive as deprecated forwarders.

namespace t2vec::core {

using dist::KnnResult;

/// Exact k-NN by linear scan over an N x D vector matrix.
class VectorIndex {
 public:
  /// An index over a prebuilt vector matrix.
  explicit VectorIndex(nn::Matrix vectors);

  /// An empty, growable index for D-dimensional vectors (Add() appends).
  explicit VectorIndex(size_t dim);

  /// Appends one vector (length dim()) as row size(). Queries immediately
  /// see the new row; an index grown by Add answers identically to one
  /// constructed from the final matrix.
  void Add(std::span<const float> vec);

  /// Squared Euclidean distance from `query` (length dim()) to row i.
  double Distance(const float* query, size_t i) const;

  /// The k nearest rows with their squared Euclidean distances, ascending
  /// (NaN distances order last). k is clamped to size(): asking for more
  /// neighbors than the index holds returns every row ranked, and an empty
  /// index returns an empty result — k is client input on the serving path,
  /// so over-asking must never abort.
  KnnResult Query(std::span<const float> query, size_t k) const;

  /// \deprecated Id-only forwarder; use Query(), which also returns the
  /// distances the scan computed.
  [[deprecated("use Query(), which returns distances with the ranking")]]
  std::vector<size_t> Knn(const float* query, size_t k) const;

  /// 1-based rank of `target` in the distance ordering from `query`
  /// (strictly-closer count + 1, so ties favor the target).
  size_t RankOf(const float* query, size_t target) const;

  size_t size() const { return vectors_.rows(); }
  size_t dim() const { return vectors_.cols(); }
  const nn::Matrix& vectors() const { return vectors_; }

 private:
  nn::Matrix vectors_;
};

/// Approximate k-NN via random-hyperplane LSH with multi-probe.
class LshIndex {
 public:
  /// `num_tables` hash tables of `num_bits`-bit signatures over `vectors`
  /// (N x D). More tables -> higher recall, more memory. The matrix must
  /// outlive the index; rows appended to it later become visible to queries
  /// once registered via Add().
  LshIndex(const nn::Matrix& vectors, int num_tables, int num_bits,
           uint64_t seed);

  /// Registers row `row` of the backing matrix in every hash table. Rows
  /// must be added in order (row == indexed_rows()); the constructor has
  /// already added every row present at build time. Incremental adds yield
  /// exactly the buckets a build-once construction over the same matrix
  /// produces.
  void Add(size_t row);

  /// Approximate k nearest rows and their squared Euclidean distances:
  /// candidates are gathered from the query's bucket in every table plus
  /// all 1-bit-flip probes, then ranked exactly. Falls back to a full scan
  /// when fewer than k candidates surface. k is clamped to indexed_rows()
  /// (see VectorIndex::Query).
  KnnResult Query(std::span<const float> query, size_t k) const;

  /// \deprecated Id-only forwarder; use Query().
  [[deprecated("use Query(), which returns distances with the ranking")]]
  std::vector<size_t> Knn(const float* query, size_t k) const;

  /// Rows registered so far (== backing matrix rows unless the matrix grew
  /// without a matching Add()).
  size_t indexed_rows() const { return indexed_rows_; }

  /// Mean number of candidates examined per query so far (diagnostics).
  double MeanCandidates() const;

 private:
  uint32_t Signature(const float* vec, int table) const;

  const nn::Matrix* vectors_;
  int num_tables_;
  int num_bits_;
  size_t indexed_rows_ = 0;
  nn::Matrix hyperplanes_;  // (num_tables * num_bits) x D
  std::vector<std::unordered_map<uint32_t, std::vector<uint32_t>>> tables_;
  // Atomic so concurrent Query calls (e.g. from a parallel query loop) keep
  // the diagnostics race-free; the neighbor results themselves are pure.
  mutable std::atomic<int64_t> probe_count_{0};
  mutable std::atomic<int64_t> candidate_count_{0};
};

}  // namespace t2vec::core

#endif  // T2VEC_CORE_VEC_INDEX_H_
