#include "core/loss.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "nn/loss.h"
#include "nn/matrix.h"

namespace t2vec::core {

OutputProjection::OutputProjection(size_t vocab_size, size_t hidden, Rng& rng)
    : weight_("proj.weight", vocab_size, hidden) {
  nn::InitXavier(&weight_.value, rng);
}

void OutputProjection::FullLogits(const nn::Matrix& h,
                                  nn::Matrix* logits) const {
  logits->Resize(h.rows(), vocab_size());
  nn::GemmTransB(h, weight_.value, logits);
}

void OutputProjection::FullBackward(const nn::Matrix& h,
                                    const nn::Matrix& d_logits,
                                    bool accumulate, nn::Matrix* d_h) {
  if (accumulate) {
    // dW (V x H) += d_logits^T (V x B) · h (B x H).
    nn::GemmTransA(d_logits, h, &weight_.grad, 1.0f, 1.0f);
  }
  d_h->Resize(h.rows(), hidden());
  nn::Gemm(d_logits, weight_.value, d_h);
}

void OutputProjection::SampledScores(const float* h,
                                     const std::vector<geo::Token>& candidates,
                                     std::vector<float>* scores) const {
  const size_t dim = hidden();
  const size_t n = candidates.size();
  scores->resize(n);
  if (n == 0) return;
  // Gather the candidate rows so scoring is one GEMM through the same
  // DotLanes kernel as FullLogits: a sampled score equals the matching full
  // logit bit-for-bit.
  gather_.Resize(n, dim);
  for (size_t i = 0; i < n; ++i) {
    std::memcpy(gather_.Row(i),
                weight_.value.Row(static_cast<size_t>(candidates[i])),
                dim * sizeof(float));
  }
  nn::GemmTransBV(nn::ConstMatrixView(h, 1, dim, dim), gather_,
                  nn::MatrixView(scores->data(), 1, n, n));
}

void OutputProjection::SampledBackward(
    const float* h, const std::vector<geo::Token>& candidates,
    const std::vector<float>& d_scores, bool accumulate, float* d_h) {
  const size_t dim = hidden();
  const size_t n = candidates.size();
  if (n == 0) return;
  gather_.Resize(n, dim);
  for (size_t i = 0; i < n; ++i) {
    std::memcpy(gather_.Row(i),
                weight_.value.Row(static_cast<size_t>(candidates[i])),
                dim * sizeof(float));
  }
  // d_h (1 x H) += d_scores (1 x C) · gathered W rows (C x H).
  nn::GemmV(nn::ConstMatrixView(d_scores.data(), 1, n, n), gather_,
            nn::MatrixView(d_h, 1, dim, dim), 1.0f, 1.0f);
  if (accumulate) {
    // Weight-gradient scatter stays scalar: candidate lists may repeat a
    // row, so the updates must stay serialized per candidate.
    for (size_t i = 0; i < n; ++i) {
      const float g = d_scores[i];
      if (g == 0.0f) continue;
      float* __restrict gw =
          weight_.grad.Row(static_cast<size_t>(candidates[i]));
      for (size_t j = 0; j < dim; ++j) gw[j] += g * h[j];
    }
  }
}

// ---------------------------------------------------------------------------
// L1
// ---------------------------------------------------------------------------

double NllLoss::StepLossAndGrad(const nn::Matrix& h,
                                const std::vector<geo::Token>& targets,
                                bool accumulate_grads, nn::Matrix* d_h) {
  proj_->FullLogits(h, &logits_);
  const double loss =
      nn::SoftmaxCrossEntropy(logits_, targets, geo::kPadToken, &d_logits_);
  if (grad_scale_ != 1.0f) nn::Scale(&d_logits_, grad_scale_);
  proj_->FullBackward(h, d_logits_, accumulate_grads, d_h);
  return loss;
}

// ---------------------------------------------------------------------------
// L2
// ---------------------------------------------------------------------------

SpatialLoss::SpatialLoss(OutputProjection* proj,
                         const geo::HotCellVocab* vocab, double theta)
    : proj_(proj), vocab_(vocab), theta_(theta) {
  T2VEC_CHECK(theta > 0.0);
}

double SpatialLoss::StepLossAndGrad(const nn::Matrix& h,
                                    const std::vector<geo::Token>& targets,
                                    bool accumulate_grads, nn::Matrix* d_h) {
  const size_t batch = h.rows();
  const size_t vocab_size = proj_->vocab_size();
  const geo::Token num_tokens = vocab_->vocab_size();
  T2VEC_CHECK(vocab_size == static_cast<size_t>(num_tokens));

  target_dist_.Resize(batch, vocab_size);
  target_dist_.SetZero();
  std::vector<uint8_t> active(batch, 0);

  for (size_t b = 0; b < batch; ++b) {
    const geo::Token y = targets[b];
    if (y == geo::kPadToken) continue;
    active[b] = 1;
    float* __restrict row = target_dist_.Row(b);
    if (geo::HotCellVocab::IsSpecial(y)) {
      row[static_cast<size_t>(y)] = 1.0f;  // One-hot for EOS.
      continue;
    }
    // Eq. 5: w_u ∝ exp(-||u - y||_2 / θ) over every hot cell u.
    const geo::Point target_center = vocab_->CenterOf(y);
    double total = 0.0;
    for (geo::Token u = geo::kNumSpecialTokens; u < num_tokens; ++u) {
      const double dist = geo::Distance(vocab_->CenterOf(u), target_center);
      const double w = std::exp(-dist / theta_);
      if (w > 1e-12) {
        row[static_cast<size_t>(u)] = static_cast<float>(w);
        total += w;
      }
    }
    const float inv = static_cast<float>(1.0 / total);
    for (size_t u = geo::kNumSpecialTokens; u < vocab_size; ++u) {
      row[u] *= inv;
    }
  }

  proj_->FullLogits(h, &logits_);
  const double loss =
      nn::SoftCrossEntropy(logits_, target_dist_, active, &d_logits_);
  if (grad_scale_ != 1.0f) nn::Scale(&d_logits_, grad_scale_);
  proj_->FullBackward(h, d_logits_, accumulate_grads, d_h);
  return loss;
}

// ---------------------------------------------------------------------------
// L3
// ---------------------------------------------------------------------------

ApproxSpatialLoss::ApproxSpatialLoss(OutputProjection* proj,
                                     const geo::HotCellVocab* vocab,
                                     const geo::CellKnnTable* knn,
                                     const T2VecConfig& config, Rng rng)
    : proj_(proj),
      vocab_(vocab),
      knn_(knn),
      num_noise_(config.nce_noise),
      variant_(config.nce_variant),
      rng_(rng) {
  // Noise distribution O(y_t): smoothed hit-count unigram over hot cells.
  const size_t num_cells = vocab_->num_hot_cells();
  std::vector<double> counts(num_cells);
  for (size_t i = 0; i < num_cells; ++i) {
    counts[i] = static_cast<double>(vocab_->HitCount(
        static_cast<geo::Token>(i) + geo::kNumSpecialTokens));
  }
  noise_dist_ =
      std::make_unique<AliasSampler>(SmoothedDistribution(counts, 0.75));
}

double ApproxSpatialLoss::StepLossAndGrad(
    const nn::Matrix& h, const std::vector<geo::Token>& targets,
    bool accumulate_grads, nn::Matrix* d_h) {
  const size_t batch = h.rows();
  d_h->Resize(batch, h.cols());
  d_h->SetZero();

  double total_loss = 0.0;
  for (size_t b = 0; b < batch; ++b) {
    const geo::Token y = targets[b];
    if (y == geo::kPadToken) continue;
    if (variant_ == NceVariant::kSampledSoftmax) {
      total_loss += RowSampledSoftmax(h.Row(b), y, accumulate_grads,
                                      d_h->Row(b));
    } else {
      total_loss += RowBinaryNce(h.Row(b), y, accumulate_grads, d_h->Row(b));
    }
  }
  return total_loss;
}

double ApproxSpatialLoss::RowSampledSoftmax(const float* h, geo::Token target,
                                            bool accumulate_grads,
                                            float* d_h) {
  // Positive set NK(y_t) with kernel weights (one-hot for EOS targets).
  candidates_.clear();
  pos_weights_.clear();
  if (geo::HotCellVocab::IsSpecial(target)) {
    candidates_.push_back(target);
    pos_weights_.push_back(1.0f);
  } else {
    const std::vector<geo::Token>& nk = knn_->Neighbors(target);
    const std::vector<float>& w = knn_->Weights(target);
    candidates_.assign(nk.begin(), nk.end());
    pos_weights_.assign(w.begin(), w.end());
  }
  const size_t num_pos = candidates_.size();

  // Noise set O(y_t), drawn from V \ NK(y_t) (collisions are re-drawn once
  // and then skipped; the distribution tail makes double collisions rare).
  for (int i = 0; i < num_noise_; ++i) {
    geo::Token sampled = static_cast<geo::Token>(noise_dist_->Sample(rng_)) +
                         geo::kNumSpecialTokens;
    if (std::find(candidates_.begin(), candidates_.begin() + num_pos,
                  sampled) != candidates_.begin() + num_pos) {
      sampled = static_cast<geo::Token>(noise_dist_->Sample(rng_)) +
                geo::kNumSpecialTokens;
      if (std::find(candidates_.begin(), candidates_.begin() + num_pos,
                    sampled) != candidates_.begin() + num_pos) {
        continue;
      }
    }
    candidates_.push_back(sampled);
  }

  proj_->SampledScores(h, candidates_, &scores_);

  // Softmax restricted to NO = NK ∪ O.
  float max_score = scores_[0];
  for (float s : scores_) max_score = std::max(max_score, s);
  double z = 0.0;
  for (float s : scores_) z += std::exp(s - max_score);
  const double log_z = max_score + std::log(z);

  double loss = 0.0;
  d_scores_.resize(candidates_.size());
  for (size_t i = 0; i < candidates_.size(); ++i) {
    const double p = std::exp(scores_[i] - log_z);
    const float w = (i < num_pos) ? pos_weights_[i] : 0.0f;
    if (w > 0.0f) loss += static_cast<double>(w) * (log_z - scores_[i]);
    d_scores_[i] = grad_scale_ * (static_cast<float>(p) - w);
  }
  proj_->SampledBackward(h, candidates_, d_scores_, accumulate_grads, d_h);
  return loss;
}

double ApproxSpatialLoss::RowBinaryNce(const float* h, geo::Token target,
                                       bool accumulate_grads, float* d_h) {
  // Positives as in the sampled-softmax variant.
  candidates_.clear();
  pos_weights_.clear();
  if (geo::HotCellVocab::IsSpecial(target)) {
    candidates_.push_back(target);
    pos_weights_.push_back(1.0f);
  } else {
    const std::vector<geo::Token>& nk = knn_->Neighbors(target);
    const std::vector<float>& w = knn_->Weights(target);
    candidates_.assign(nk.begin(), nk.end());
    pos_weights_.assign(w.begin(), w.end());
  }
  const size_t num_pos = candidates_.size();
  for (int i = 0; i < num_noise_; ++i) {
    candidates_.push_back(static_cast<geo::Token>(noise_dist_->Sample(rng_)) +
                          geo::kNumSpecialTokens);
  }

  proj_->SampledScores(h, candidates_, &scores_);

  // NCE score correction: s' = s - log(m * q(token)); q from the noise
  // distribution (special tokens get a uniform fallback).
  auto log_mq = [&](geo::Token t) {
    double q;
    if (geo::HotCellVocab::IsSpecial(t)) {
      q = 1.0 / static_cast<double>(proj_->vocab_size());
    } else {
      q = noise_dist_->Probability(static_cast<size_t>(t) -
                                   geo::kNumSpecialTokens);
    }
    return std::log(std::max(1e-12, static_cast<double>(num_noise_) * q));
  };

  double loss = 0.0;
  d_scores_.resize(candidates_.size());
  for (size_t i = 0; i < candidates_.size(); ++i) {
    const double s = scores_[i] - log_mq(candidates_[i]);
    const double sigma = 1.0 / (1.0 + std::exp(-s));
    if (i < num_pos) {
      // Data term, weighted by the kernel weight.
      const double w = pos_weights_[i];
      loss += -w * std::log(std::max(sigma, 1e-12));
      d_scores_[i] = grad_scale_ * static_cast<float>(w * (sigma - 1.0));
    } else {
      // Noise term.
      loss += -std::log(std::max(1.0 - sigma, 1e-12));
      d_scores_[i] = grad_scale_ * static_cast<float>(sigma);
    }
  }
  proj_->SampledBackward(h, candidates_, d_scores_, accumulate_grads, d_h);
  return loss;
}

std::unique_ptr<SeqLoss> MakeLoss(const T2VecConfig& config,
                                  OutputProjection* proj,
                                  const geo::HotCellVocab* vocab,
                                  const geo::CellKnnTable* knn, Rng rng) {
  switch (config.loss) {
    case LossKind::kL1:
      return std::make_unique<NllLoss>(proj);
    case LossKind::kL2:
      return std::make_unique<SpatialLoss>(proj, vocab, config.theta);
    case LossKind::kL3:
      return std::make_unique<ApproxSpatialLoss>(proj, vocab, knn, config,
                                                 rng);
  }
  T2VEC_CHECK(false);
  return nullptr;
}

}  // namespace t2vec::core
