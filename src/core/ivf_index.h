#ifndef T2VEC_CORE_IVF_INDEX_H_
#define T2VEC_CORE_IVF_INDEX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/ann_index.h"

/// \file
/// Deterministic IVF (inverted-file) approximate k-NN index (DESIGN.md §4e).
///
/// A fixed-seed k-means coarse quantizer partitions the vectors into
/// `nlist` inverted lists; a query exactly scores only the lists whose
/// centroids are nearest (`nprobe` of them), turning the O(N) scan into
/// O(nlist + N·nprobe/nlist) — the structure that makes million-vector
/// stores servable (paper Sec. VI future work 3, via the KNN-guided
/// similarity-learning evaluation framing in PAPERS.md).
///
/// Determinism contract (DESIGN.md §5): training runs at a fixed point in
/// the row sequence (the moment `Size()` reaches `nlist × train_per_list`)
/// over exactly the rows present then, initialized by a fixed-seed
/// `common/rng.h` shuffle; Lloyd assignment parallelizes with disjoint
/// writes and breaks ties toward the lower centroid index, centroid updates
/// accumulate serially in ascending row order in double precision, and all
/// distances route through the dispatched `nn/kernels.h` `sqdist_f64` —
/// so the index is bit-identical at any thread count and on every SIMD
/// tier. Because training time is a pure function of the row sequence,
/// build-once, Add-one-at-a-time, and snapshot-replay construction all
/// execute the same training call at the same point: grown ≡ built by
/// construction, not by test luck.
///
/// Before training, queries fall back to an exact scan identical to
/// `VectorIndex` — a small store answers exactly; the quantizer only kicks
/// in once there is enough data to train it.

namespace t2vec::core {

/// IVF index. Query is const and thread-safe; Add/Restore/set_nprobe are
/// not (same single-writer contract as the other indexes).
class IvfIndex : public AnnIndex {
 public:
  /// An empty IVF index for `dim`-dimensional vectors. `config`'s ivf_*
  /// fields must already be Validate()d (CreateIndex does this).
  IvfIndex(size_t dim, const IndexConfig& config);

  /// Approximate k nearest rows (exact before training; see file comment).
  /// Probes the `nprobe` nearest lists, then keeps widening to further
  /// lists until at least k candidates surfaced, so short answers only
  /// happen when the whole index holds fewer than k rows.
  KnnResult Query(std::span<const float> query, size_t k) const override;

  IndexKind kind() const override { return IndexKind::kIvf; }

  /// True once the coarse quantizer has been trained.
  bool trained() const { return trained_; }

  size_t nlist() const { return nlist_; }
  size_t nprobe() const { return nprobe_; }

  /// Adjusts the recall/latency knob for subsequent queries (benchmark
  /// sweeps). Not thread-safe against concurrent Query calls.
  void set_nprobe(size_t nprobe);

  /// Rows at which training triggers (nlist × train_per_list).
  size_t train_threshold() const { return nlist_ * train_per_list_; }

 protected:
  void OnAppend(size_t row) override;
  void SaveAux(BinaryWriter* writer) const override;
  Status LoadAux(BinaryReader* reader) override;
  void FillStats(IndexStats* stats) const override;

 private:
  /// Fixed-seed Lloyd k-means over rows [0, train_threshold()), then
  /// assigns those training rows to their inverted lists (later rows are
  /// assigned by their own OnAppend).
  void Train();

  /// Index of the nearest centroid (squared Euclidean; ties and NaN rows
  /// resolve to the lowest centroid index).
  size_t NearestCentroid(const float* vec) const;

  /// Exact linear scan used before training (mirrors VectorIndex::Query).
  KnnResult ExactQuery(std::span<const float> query, size_t k) const;

  size_t nlist_;
  size_t nprobe_;
  int train_iters_;
  uint64_t seed_;
  size_t train_per_list_;

  bool trained_ = false;
  std::vector<float> centroids_;            // nlist_ x dim()
  std::vector<std::vector<uint32_t>> lists_;  // row ids, ascending per list
};

}  // namespace t2vec::core

#endif  // T2VEC_CORE_IVF_INDEX_H_
