#ifndef T2VEC_CORE_CELL_PRETRAIN_H_
#define T2VEC_CORE_CELL_PRETRAIN_H_

#include "common/rng.h"
#include "core/config.h"
#include "geo/cell_knn.h"
#include "geo/vocab.h"
#include "nn/matrix.h"

/// \file
/// Cell representation pretraining — the paper's Algorithm 1 ("CL").
///
/// For every hot cell u, a context C(u) of size l is sampled from its K
/// nearest cells with probability proportional to exp(-d/θ) (Eq. 8). The
/// (cell, context) pairs are then trained with skip-gram + negative sampling
/// (Mikolov et al. [34]): spatially close cells end up with close embedding
/// vectors, which seeds the model's embedding layer so that trajectories of
/// the same route start out close in latent space.

namespace t2vec::core {

/// Runs Algorithm 1 and returns a vocab_size x embed_dim embedding matrix.
/// Rows of special tokens are small random vectors. The negative-sampling
/// noise distribution is the smoothed hot-cell hit-count unigram
/// (count^0.75, the word2vec convention).
nn::Matrix PretrainCellEmbeddings(const geo::HotCellVocab& vocab,
                                  const geo::CellKnnTable& knn,
                                  const T2VecConfig& config, Rng& rng);

}  // namespace t2vec::core

#endif  // T2VEC_CORE_CELL_PRETRAIN_H_
