#ifndef T2VEC_CORE_TRAINER_H_
#define T2VEC_CORE_TRAINER_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/config.h"
#include "core/model.h"
#include "core/pairs.h"

/// \file
/// The training loop (paper Sec. V-B): Adam with gradient-norm clipping,
/// length-bucketed batching, and early stopping on a held-out validation
/// split when the validation loss stops decreasing.
///
/// Crash safety (DESIGN.md §7): with checkpointing enabled the trainer
/// writes a full training-state snapshot — model weights, Adam moments and
/// step count, the training and loss-noise RNG engines, the current batch
/// permutation/cursor, and the smoothed-loss/early-stop bookkeeping — every
/// `checkpoint_every` iterations, atomically and CRC-framed. Resuming from
/// any snapshot replays the remaining iterations bit-identically: the final
/// parameters are memcmp-equal to those of an uninterrupted run, at any
/// thread count.

namespace t2vec::core {

/// Summary of a completed training run.
struct TrainStats {
  size_t iterations = 0;           ///< Batches processed.
  double train_seconds = 0.0;      ///< Wall-clock training time (resumed
                                   ///< runs count only their own portion).
  double best_val_loss = 0.0;      ///< Best per-token validation loss.
  double final_train_loss = 0.0;   ///< Smoothed per-token training loss.
  bool early_stopped = false;      ///< True if patience ran out before the
                                   ///< iteration cap.
  /// (iteration, per-token validation loss) curve.
  std::vector<std::pair<size_t, double>> val_curve;
};

/// Trains an EncoderDecoder on (variant, original) token pairs.
class Trainer {
 public:
  /// `model` and `loss` must outlive the trainer; the loss must wrap the
  /// model's own OutputProjection.
  Trainer(EncoderDecoder* model, SeqLoss* loss, const T2VecConfig& config);
  ~Trainer();

  /// Enables periodic snapshots: every `every` iterations a full
  /// training-state snapshot is written to `dir`/snapshot_<iter>.t2vsnap
  /// (atomic + CRC-framed). The directory must exist. A failed snapshot
  /// write is logged and training continues — durability must never kill
  /// the run it protects.
  void EnableCheckpoints(std::string dir, size_t every);

  /// Loads a snapshot — `path` is a snapshot file or a directory holding
  /// snapshot_*.t2vsnap files (the newest is picked) — and restores the
  /// model's weights. The next Train() call continues from the snapshot's
  /// iteration instead of iteration 1. Fails soft: a corrupt or truncated
  /// snapshot, or one written under a different config (fingerprint
  /// mismatch) or model architecture, returns a non-OK Status and the next
  /// Train() runs from scratch. On a parameter-section failure the model
  /// weights are unspecified; reinitialize before training.
  Status Resume(const std::string& path);

  /// The newest snapshot file in `dir` (highest iteration number), or
  /// NotFound when the directory holds none.
  static Result<std::string> LatestSnapshot(const std::string& dir);

  /// Runs the full loop over `pairs` (the last `validation_pairs` entries,
  /// after shuffling, become the validation set). Returns run statistics.
  /// After a successful Resume(), `pairs` and `rng` must be the same data
  /// and freshly-seeded generator the original run started from; the
  /// deterministic setup (shuffle, split, batching) is replayed and then
  /// every piece of mutable state is overwritten from the snapshot.
  TrainStats Train(std::vector<TokenPair> pairs, Rng& rng);

 private:
  struct Snapshot;  // Parsed snapshot state (core/trainer.cc).

  /// Mean per-token loss over the validation set (no gradient updates).
  double ValidationLoss(const std::vector<TokenPair>& val_pairs);

  EncoderDecoder* model_;
  SeqLoss* loss_;
  T2VecConfig config_;
  std::string checkpoint_dir_;
  size_t checkpoint_every_ = 0;
  std::unique_ptr<Snapshot> resume_;
};

}  // namespace t2vec::core

#endif  // T2VEC_CORE_TRAINER_H_
