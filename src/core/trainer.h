#ifndef T2VEC_CORE_TRAINER_H_
#define T2VEC_CORE_TRAINER_H_

#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/config.h"
#include "core/model.h"
#include "core/pairs.h"

/// \file
/// The training loop (paper Sec. V-B): Adam with gradient-norm clipping,
/// length-bucketed batching, and early stopping on a held-out validation
/// split when the validation loss stops decreasing.

namespace t2vec::core {

/// Summary of a completed training run.
struct TrainStats {
  size_t iterations = 0;           ///< Batches processed.
  double train_seconds = 0.0;      ///< Wall-clock training time.
  double best_val_loss = 0.0;      ///< Best per-token validation loss.
  double final_train_loss = 0.0;   ///< Smoothed per-token training loss.
  bool early_stopped = false;      ///< True if patience ran out before the
                                   ///< iteration cap.
  /// (iteration, per-token validation loss) curve.
  std::vector<std::pair<size_t, double>> val_curve;
};

/// Trains an EncoderDecoder on (variant, original) token pairs.
class Trainer {
 public:
  /// `model` and `loss` must outlive the trainer; the loss must wrap the
  /// model's own OutputProjection.
  Trainer(EncoderDecoder* model, SeqLoss* loss, const T2VecConfig& config);

  /// Runs the full loop over `pairs` (the last `validation_pairs` entries,
  /// after shuffling, become the validation set). Returns run statistics.
  TrainStats Train(std::vector<TokenPair> pairs, Rng& rng);

 private:
  /// Mean per-token loss over the validation set (no gradient updates).
  double ValidationLoss(const std::vector<TokenPair>& val_pairs);

  EncoderDecoder* model_;
  SeqLoss* loss_;
  T2VecConfig config_;
};

}  // namespace t2vec::core

#endif  // T2VEC_CORE_TRAINER_H_
