#ifndef T2VEC_CORE_PAIRS_H_
#define T2VEC_CORE_PAIRS_H_

#include <vector>

#include "common/rng.h"
#include "core/config.h"
#include "geo/vocab.h"
#include "traj/dataset.h"
#include "traj/tokenizer.h"

/// \file
/// Training-pair construction (paper Sec. IV-B, V-A). For every original
/// trajectory T_b and every (r1, r2) in the configured grid, one variant
/// T_a = Distort(Downsample(T_b, r1), r2) is created; the model learns to
/// reconstruct T_b's token sequence from T_a's. At the paper's default
/// 4 x 4 grid this yields 16 pairs per trajectory.

namespace t2vec::core {

/// One (source variant, original target) token-sequence pair.
struct TokenPair {
  traj::TokenSeq src;  ///< Downsampled + distorted variant T_a.
  traj::TokenSeq tgt;  ///< Original trajectory T_b (no EOS; the batch
                       ///< builder appends it).
};

/// Builds the full r1 x r2 grid of training pairs for every trajectory.
std::vector<TokenPair> BuildTrainingPairs(
    const std::vector<traj::Trajectory>& trips, const geo::HotCellVocab& vocab,
    const T2VecConfig& config, Rng& rng);

}  // namespace t2vec::core

#endif  // T2VEC_CORE_PAIRS_H_
