#include "core/vec_index.h"

#include <algorithm>
#include <utility>

#include "common/macros.h"
#include "common/order.h"
#include "common/rng.h"
#include "common/sort.h"
#include "common/thread_pool.h"
#include "nn/kernels.h"

namespace t2vec::core {

namespace {

// Chunk size for parallel per-row distance scans: small enough to split a
// few-thousand-row database across cores, large enough to amortize dispatch.
constexpr size_t kScanGrain = 256;

}  // namespace

VectorIndex::VectorIndex(size_t dim) : AnnIndex(dim) {}

VectorIndex::VectorIndex(const nn::Matrix& vectors)
    : AnnIndex(vectors.cols()) {
  for (size_t i = 0; i < vectors.rows(); ++i) {
    Add(std::span<const float>(vectors.Row(i), vectors.cols()));
  }
}

double VectorIndex::Distance(const float* query, size_t i) const {
  // Dispatched 8-double-lane squared distance (nn/kernels.h sqdist_f64);
  // identical bits on every SIMD tier.
  return nn::Kernels().sqdist_f64(query, rows().Row(i), dim());
}

KnnResult VectorIndex::Query(std::span<const float> query, size_t k) const {
  T2VEC_CHECK(query.size() == dim());
  // k is a request parameter, not an invariant: a served query may ask for
  // more neighbors than the store holds (or hit an empty store), and that
  // must degrade to a shorter answer, never abort the process.
  k = std::min(k, Size());
  CountQuery(Size());
  if (k == 0) return {};
  // Each iteration writes only scored[i], so the parallel fill is
  // bit-identical to the serial one; the sort stays serial.
  std::vector<std::pair<double, size_t>> scored(Size());
  const float* q = query.data();
  ParallelFor(0, Size(), kScanGrain, [&](size_t i) {
    scored[i] = {Distance(q, i), i};
  });
  // NanLastLess over distinct row indices is a strict total order.
  TotalOrderPartialSort(scored.begin(), scored.begin() + static_cast<long>(k),
                        scored.end(), NanLastLess{});
  KnnResult out;
  out.ids.reserve(k);
  out.distances.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    out.ids.push_back(scored[i].second);
    out.distances.push_back(scored[i].first);
  }
  return out;
}

size_t VectorIndex::RankOf(const float* query, size_t target) const {
  T2VEC_CHECK(target < Size());
  const double target_dist = Distance(query, target);
  std::vector<double> dists(Size());
  ParallelFor(0, Size(), kScanGrain,
              [&](size_t i) { dists[i] = Distance(query, i); });
  size_t closer = 0;
  for (size_t i = 0; i < Size(); ++i) {
    if (i != target && dists[i] < target_dist) ++closer;
  }
  return closer + 1;
}

LshIndex::LshIndex(size_t dim, int num_tables, int num_bits, uint64_t seed)
    : AnnIndex(dim),
      num_tables_(num_tables),
      num_bits_(num_bits),
      seed_(seed) {
  T2VEC_CHECK(num_tables >= 1);
  T2VEC_CHECK(num_bits >= 1 && num_bits <= 24);
  Rng rng(seed);
  hyperplanes_.Resize(
      static_cast<size_t>(num_tables) * static_cast<size_t>(num_bits), dim);
  for (size_t i = 0; i < hyperplanes_.size(); ++i) {
    hyperplanes_.data()[i] = static_cast<float>(rng.Gaussian());
  }
  tables_.resize(static_cast<size_t>(num_tables));
}

LshIndex::LshIndex(const nn::Matrix& vectors, int num_tables, int num_bits,
                   uint64_t seed)
    : LshIndex(vectors.cols(), num_tables, num_bits, seed) {
  for (size_t i = 0; i < vectors.rows(); ++i) {
    Add(std::span<const float>(vectors.Row(i), vectors.cols()));
  }
}

void LshIndex::OnAppend(size_t row) {
  for (int t = 0; t < num_tables_; ++t) {
    tables_[static_cast<size_t>(t)][Signature(rows().Row(row), t)].push_back(
        static_cast<uint32_t>(row));
  }
}

uint32_t LshIndex::Signature(const float* vec, int table) const {
  uint32_t sig = 0;
  const size_t d = dim();
  const nn::KernelOps& ops = nn::Kernels();
  for (int b = 0; b < num_bits_; ++b) {
    const float* __restrict plane = hyperplanes_.Row(
        static_cast<size_t>(table) * static_cast<size_t>(num_bits_) +
        static_cast<size_t>(b));
    const double dot = ops.dot_f64(plane, vec, d);
    sig = (sig << 1) | (dot >= 0.0 ? 1u : 0u);
  }
  return sig;
}

KnnResult LshIndex::Query(std::span<const float> query, size_t k) const {
  T2VEC_CHECK(query.size() == dim());
  // Same clamp as VectorIndex::Query: over-asking returns every indexed row
  // ranked; an empty index returns an empty result.
  k = std::min(k, Size());
  if (k == 0) return {};
  std::vector<uint8_t> seen(Size(), 0);
  std::vector<size_t> candidates;

  auto gather = [&](int table, uint32_t sig) {
    auto it = tables_[static_cast<size_t>(table)].find(sig);
    if (it == tables_[static_cast<size_t>(table)].end()) return;
    for (uint32_t idx : it->second) {
      if (!seen[idx]) {
        seen[idx] = 1;
        candidates.push_back(idx);
      }
    }
  };

  for (int t = 0; t < num_tables_; ++t) {
    const uint32_t sig = Signature(query.data(), t);
    gather(t, sig);
    // Multi-probe: all 1-bit flips of the signature.
    for (int b = 0; b < num_bits_; ++b) gather(t, sig ^ (1u << b));
  }

  if (candidates.size() < k) {
    // Recall fallback: widen to a full scan.
    candidates.resize(Size());
    for (size_t i = 0; i < candidates.size(); ++i) candidates[i] = i;
  }
  CountQuery(candidates.size());

  // Exact re-ranking of the candidate set (same dispatched squared-distance
  // kernel as VectorIndex::Distance).
  const size_t d = dim();
  const nn::KernelOps& ops = nn::Kernels();
  std::vector<std::pair<double, size_t>> scored(candidates.size());
  ParallelFor(0, candidates.size(), kScanGrain, [&](size_t c) {
    const size_t idx = candidates[c];
    scored[c] = {ops.sqdist_f64(query.data(), rows().Row(idx), d), idx};
  });
  // Candidates are deduplicated, so NanLastLess is a strict total order.
  TotalOrderPartialSort(scored.begin(), scored.begin() + static_cast<long>(k),
                        scored.end(), NanLastLess{});
  KnnResult out;
  out.ids.reserve(k);
  out.distances.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    out.ids.push_back(scored[i].second);
    out.distances.push_back(scored[i].first);
  }
  return out;
}

void LshIndex::SaveAux(BinaryWriter* writer) const {
  writer->WritePod<int32_t>(num_tables_);
  writer->WritePod<int32_t>(num_bits_);
  writer->WritePod<uint64_t>(seed_);
  // Buckets in deterministically sorted key order so equal indexes always
  // serialize to identical bytes (unordered_map iteration order is not part
  // of the index's logical state).
  std::vector<uint32_t> keys;
  for (const auto& table : tables_) {
    keys.clear();
    keys.reserve(table.size());
    for (const auto& [key, bucket] : table) keys.push_back(key);
    DeterministicSort(keys.begin(), keys.end());
    writer->WritePod<uint64_t>(keys.size());
    for (const uint32_t key : keys) {
      writer->WritePod<uint32_t>(key);
      writer->WriteVector(table.at(key));
    }
  }
}

Status LshIndex::LoadAux(BinaryReader* reader) {
  int32_t num_tables = 0, num_bits = 0;
  uint64_t seed = 0;
  if (!reader->ReadPod(&num_tables) || !reader->ReadPod(&num_bits) ||
      !reader->ReadPod(&seed)) {
    return Status::IoError("malformed LSH snapshot parameters");
  }
  if (num_tables != num_tables_ || num_bits != num_bits_ || seed != seed_) {
    // Written under a different configuration: the caller rebuilds by
    // replay under this index's own parameters.
    return Status::InvalidArgument("LSH snapshot parameters differ");
  }
  std::vector<std::unordered_map<uint32_t, std::vector<uint32_t>>> tables(
      static_cast<size_t>(num_tables));
  for (auto& table : tables) {
    uint64_t buckets = 0;
    if (!reader->ReadPod(&buckets)) {
      return Status::IoError("malformed LSH snapshot tables");
    }
    for (uint64_t b = 0; b < buckets; ++b) {
      uint32_t key = 0;
      std::vector<uint32_t> bucket;
      if (!reader->ReadPod(&key) || !reader->ReadVector(&bucket)) {
        return Status::IoError("malformed LSH snapshot bucket");
      }
      for (const uint32_t row : bucket) {
        if (row >= Size()) {
          return Status::IoError("LSH snapshot bucket references missing row");
        }
      }
      table.emplace(key, std::move(bucket));
    }
  }
  tables_ = std::move(tables);
  return Status::Ok();
}

}  // namespace t2vec::core
