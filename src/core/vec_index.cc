#include "core/vec_index.h"

#include <algorithm>

#include "common/macros.h"
#include "common/order.h"
#include "common/rng.h"
#include "common/sort.h"
#include "common/thread_pool.h"
#include "nn/kernels.h"

namespace t2vec::core {

namespace {

// Chunk size for parallel per-row distance scans: small enough to split a
// few-thousand-row database across cores, large enough to amortize dispatch.
constexpr size_t kScanGrain = 256;

}  // namespace

VectorIndex::VectorIndex(nn::Matrix vectors) : vectors_(std::move(vectors)) {}

VectorIndex::VectorIndex(size_t dim) : vectors_(0, dim) {
  T2VEC_CHECK(dim > 0);
}

void VectorIndex::Add(std::span<const float> vec) {
  T2VEC_CHECK(vec.size() == dim());
  // Row-major append: growing the row count extends the flat storage while
  // std::vector::resize preserves the existing prefix, so prior rows keep
  // their bytes.
  const size_t row = vectors_.rows();
  vectors_.Resize(row + 1, dim());
  std::copy(vec.begin(), vec.end(), vectors_.Row(row));
}

double VectorIndex::Distance(const float* query, size_t i) const {
  // Dispatched 8-double-lane squared distance (nn/kernels.h sqdist_f64);
  // identical bits on every SIMD tier.
  return nn::Kernels().sqdist_f64(query, vectors_.Row(i), vectors_.cols());
}

KnnResult VectorIndex::Query(std::span<const float> query, size_t k) const {
  T2VEC_CHECK(query.size() == dim());
  // k is a request parameter, not an invariant: a served query may ask for
  // more neighbors than the store holds (or hit an empty store), and that
  // must degrade to a shorter answer, never abort the process.
  k = std::min(k, size());
  if (k == 0) return {};
  // Each iteration writes only scored[i], so the parallel fill is
  // bit-identical to the serial one; the sort stays serial.
  std::vector<std::pair<double, size_t>> scored(size());
  const float* q = query.data();
  ParallelFor(0, size(), kScanGrain, [&](size_t i) {
    scored[i] = {Distance(q, i), i};
  });
  // NanLastLess over distinct row indices is a strict total order.
  TotalOrderPartialSort(scored.begin(), scored.begin() + static_cast<long>(k),
                        scored.end(), NanLastLess{});
  KnnResult out;
  out.ids.reserve(k);
  out.distances.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    out.ids.push_back(scored[i].second);
    out.distances.push_back(scored[i].first);
  }
  return out;
}

std::vector<size_t> VectorIndex::Knn(const float* query, size_t k) const {
  return Query(std::span<const float>(query, dim()), k).ids;
}

size_t VectorIndex::RankOf(const float* query, size_t target) const {
  T2VEC_CHECK(target < size());
  const double target_dist = Distance(query, target);
  std::vector<double> dists(size());
  ParallelFor(0, size(), kScanGrain,
              [&](size_t i) { dists[i] = Distance(query, i); });
  size_t closer = 0;
  for (size_t i = 0; i < size(); ++i) {
    if (i != target && dists[i] < target_dist) ++closer;
  }
  return closer + 1;
}

LshIndex::LshIndex(const nn::Matrix& vectors, int num_tables, int num_bits,
                   uint64_t seed)
    : vectors_(&vectors), num_tables_(num_tables), num_bits_(num_bits) {
  T2VEC_CHECK(num_tables >= 1);
  T2VEC_CHECK(num_bits >= 1 && num_bits <= 24);
  Rng rng(seed);
  hyperplanes_.Resize(
      static_cast<size_t>(num_tables) * static_cast<size_t>(num_bits),
      vectors.cols());
  for (size_t i = 0; i < hyperplanes_.size(); ++i) {
    hyperplanes_.data()[i] = static_cast<float>(rng.Gaussian());
  }
  // Signatures are independent per row; bucket insertion stays serial so
  // bucket contents keep the ascending-row order the serial build produced
  // — the same order an incremental Add()-at-a-time build yields.
  std::vector<uint32_t> signatures(vectors.rows() *
                                   static_cast<size_t>(num_tables));
  ParallelFor(0, vectors.rows(), 64, [&](size_t i) {
    for (int t = 0; t < num_tables; ++t) {
      signatures[i * static_cast<size_t>(num_tables) +
                 static_cast<size_t>(t)] = Signature(vectors.Row(i), t);
    }
  });
  tables_.resize(static_cast<size_t>(num_tables));
  for (size_t i = 0; i < vectors.rows(); ++i) {
    for (int t = 0; t < num_tables; ++t) {
      tables_[static_cast<size_t>(t)]
             [signatures[i * static_cast<size_t>(num_tables) +
                         static_cast<size_t>(t)]]
                 .push_back(static_cast<uint32_t>(i));
    }
  }
  indexed_rows_ = vectors.rows();
}

void LshIndex::Add(size_t row) {
  T2VEC_CHECK(row == indexed_rows_);
  T2VEC_CHECK(row < vectors_->rows());
  for (int t = 0; t < num_tables_; ++t) {
    tables_[static_cast<size_t>(t)][Signature(vectors_->Row(row), t)]
        .push_back(static_cast<uint32_t>(row));
  }
  indexed_rows_ = row + 1;
}

uint32_t LshIndex::Signature(const float* vec, int table) const {
  uint32_t sig = 0;
  const size_t d = vectors_->cols();
  const nn::KernelOps& ops = nn::Kernels();
  for (int b = 0; b < num_bits_; ++b) {
    const float* __restrict plane = hyperplanes_.Row(
        static_cast<size_t>(table) * static_cast<size_t>(num_bits_) +
        static_cast<size_t>(b));
    const double dot = ops.dot_f64(plane, vec, d);
    sig = (sig << 1) | (dot >= 0.0 ? 1u : 0u);
  }
  return sig;
}

KnnResult LshIndex::Query(std::span<const float> query, size_t k) const {
  T2VEC_CHECK(query.size() == vectors_->cols());
  // Same clamp as VectorIndex::Query: over-asking returns every indexed row
  // ranked; an empty index returns an empty result.
  k = std::min(k, indexed_rows_);
  if (k == 0) return {};
  std::vector<uint8_t> seen(indexed_rows_, 0);
  std::vector<size_t> candidates;

  auto gather = [&](int table, uint32_t sig) {
    auto it = tables_[static_cast<size_t>(table)].find(sig);
    if (it == tables_[static_cast<size_t>(table)].end()) return;
    for (uint32_t idx : it->second) {
      if (!seen[idx]) {
        seen[idx] = 1;
        candidates.push_back(idx);
      }
    }
  };

  for (int t = 0; t < num_tables_; ++t) {
    const uint32_t sig = Signature(query.data(), t);
    gather(t, sig);
    // Multi-probe: all 1-bit flips of the signature.
    for (int b = 0; b < num_bits_; ++b) gather(t, sig ^ (1u << b));
  }

  probe_count_++;
  candidate_count_ += static_cast<int64_t>(candidates.size());

  if (candidates.size() < k) {
    // Recall fallback: widen to a full scan.
    candidates.resize(indexed_rows_);
    for (size_t i = 0; i < candidates.size(); ++i) candidates[i] = i;
  }

  // Exact re-ranking of the candidate set (same dispatched squared-distance
  // kernel as VectorIndex::Distance).
  const size_t d = vectors_->cols();
  const nn::KernelOps& ops = nn::Kernels();
  std::vector<std::pair<double, size_t>> scored(candidates.size());
  ParallelFor(0, candidates.size(), kScanGrain, [&](size_t c) {
    const size_t idx = candidates[c];
    scored[c] = {ops.sqdist_f64(query.data(), vectors_->Row(idx), d), idx};
  });
  // Candidates are deduplicated, so NanLastLess is a strict total order.
  TotalOrderPartialSort(scored.begin(), scored.begin() + static_cast<long>(k),
                        scored.end(), NanLastLess{});
  KnnResult out;
  out.ids.reserve(k);
  out.distances.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    out.ids.push_back(scored[i].second);
    out.distances.push_back(scored[i].first);
  }
  return out;
}

std::vector<size_t> LshIndex::Knn(const float* query, size_t k) const {
  return Query(std::span<const float>(query, vectors_->cols()), k).ids;
}

double LshIndex::MeanCandidates() const {
  if (probe_count_ == 0) return 0.0;
  return static_cast<double>(candidate_count_) /
         static_cast<double>(probe_count_);
}

}  // namespace t2vec::core
