#ifndef T2VEC_CORE_LOSS_H_
#define T2VEC_CORE_LOSS_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/config.h"
#include "geo/cell_knn.h"
#include "geo/vocab.h"
#include "nn/parameter.h"

/// \file
/// The decoder's output projection and the paper's three training losses.
///
///  - L1: plain negative log likelihood over the vocabulary (Eq. 4) — the
///    NMT default, spatially blind.
///  - L2: exact spatial proximity aware loss (Eq. 5) — the target becomes a
///    soft distribution w_{u,y_t} ∝ exp(-||u - y_t||/θ) over all cells, so
///    decoding a nearby cell is penalized less than a distant one. O(|V|)
///    per decoded position: accurate but expensive (paper Table VII).
///  - L3: approximate loss (Eq. 7) — positives restricted to the K nearest
///    cells NK(y_t); the normalizer estimated over NK(y_t) plus a small
///    random noise set O(y_t), either as a sampled softmax or as true binary
///    NCE (Gutmann & Hyvärinen). O(K + |O|) per position.

namespace t2vec::core {

/// The decoder's projection into vocabulary space: score(u) = W_u · h
/// (the paper's formulation, Eq. at end of Sec. III-B, has no bias term).
class OutputProjection {
 public:
  OutputProjection(size_t vocab_size, size_t hidden, Rng& rng);

  /// logits (B x V) = h (B x H) · W^T.
  void FullLogits(const nn::Matrix& h, nn::Matrix* logits) const;

  /// Writes d_h = d_logits · W and, when `accumulate` is true, adds
  /// dW += d_logits^T · h.
  void FullBackward(const nn::Matrix& h, const nn::Matrix& d_logits,
                    bool accumulate, nn::Matrix* d_h);

  /// Scores of the candidate tokens for a single hidden row `h` (length H).
  /// Candidate weight rows are gathered and scored through the same GEMM
  /// kernel as FullLogits, so sampled scores equal the corresponding full
  /// logits bit-for-bit. Uses internal scratch: not thread-safe.
  void SampledScores(const float* h, const std::vector<geo::Token>& candidates,
                     std::vector<float>* scores) const;

  /// Sparse backward for one row: dW[c] += d_scores[c] * h and
  /// d_h += Σ d_scores[c] * W[c]. Skips weight grads if `accumulate` false.
  void SampledBackward(const float* h,
                       const std::vector<geo::Token>& candidates,
                       const std::vector<float>& d_scores, bool accumulate,
                       float* d_h);

  size_t vocab_size() const { return weight_.value.rows(); }
  size_t hidden() const { return weight_.value.cols(); }

  nn::Parameter& weight() { return weight_; }
  nn::ParamList Params() { return {&weight_}; }

 private:
  nn::Parameter weight_;       // V x H
  mutable nn::Matrix gather_;  // Candidate-row scratch for the sampled path.
};

/// Interface of a per-decoding-step loss.
class SeqLoss {
 public:
  virtual ~SeqLoss() = default;

  /// Computes the summed loss of one decoder step. `h` holds the top-layer
  /// hidden states (B x H); `targets[b]` is the target token of row b, with
  /// geo::kPadToken marking inactive rows. Writes d_h (B x H, zeros for
  /// inactive rows); accumulates projection-weight gradients unless
  /// `accumulate_grads` is false (validation passes).
  virtual double StepLossAndGrad(const nn::Matrix& h,
                                 const std::vector<geo::Token>& targets,
                                 bool accumulate_grads, nn::Matrix* d_h) = 0;

  /// Display name for logs/tables.
  virtual const char* Name() const = 0;

  /// The loss's internal noise generator when it has one (L3 draws noise
  /// cells every step, including validation passes), else nullptr. Training
  /// snapshots persist this state: without it a resumed run would replay
  /// different noise sets and drift off the uninterrupted run's bytes.
  virtual Rng* MutableNoiseRng() { return nullptr; }

  /// Scale applied to every gradient this loss produces; the model sets it
  /// to 1/batch_size so the objective is the mean per-sequence loss.
  void set_grad_scale(float s) { grad_scale_ = s; }

 protected:
  float grad_scale_ = 1.0f;
};

/// L1: full-softmax NLL (paper Eq. 4).
class NllLoss : public SeqLoss {
 public:
  explicit NllLoss(OutputProjection* proj) : proj_(proj) {}
  double StepLossAndGrad(const nn::Matrix& h,
                         const std::vector<geo::Token>& targets,
                         bool accumulate_grads, nn::Matrix* d_h) override;
  const char* Name() const override { return "L1"; }

 private:
  OutputProjection* proj_;
  nn::Matrix logits_, d_logits_;  // Reused buffers.
};

/// L2: exact spatial proximity aware loss (paper Eq. 5). The soft target
/// distribution for each hot-cell target is materialized over the entire
/// vocabulary; kernel values below 1e-12 are dropped (they are zero in
/// float anyway), special-token targets (EOS) use a one-hot target.
class SpatialLoss : public SeqLoss {
 public:
  SpatialLoss(OutputProjection* proj, const geo::HotCellVocab* vocab,
              double theta);
  double StepLossAndGrad(const nn::Matrix& h,
                         const std::vector<geo::Token>& targets,
                         bool accumulate_grads, nn::Matrix* d_h) override;
  const char* Name() const override { return "L2"; }

 private:
  OutputProjection* proj_;
  const geo::HotCellVocab* vocab_;
  double theta_;
  nn::Matrix logits_, d_logits_, target_dist_;
};

/// L3: approximate spatial proximity aware loss (paper Eq. 7) with a
/// noise-contrastive normalizer. O(K + |O|) work per decoded position.
class ApproxSpatialLoss : public SeqLoss {
 public:
  /// `knn` supplies NK(y_t) and the kernel weights w_{u,y_t}; the noise set
  /// O(y_t) is drawn from the smoothed hit-count unigram of `vocab`.
  ApproxSpatialLoss(OutputProjection* proj, const geo::HotCellVocab* vocab,
                    const geo::CellKnnTable* knn, const T2VecConfig& config,
                    Rng rng);
  double StepLossAndGrad(const nn::Matrix& h,
                         const std::vector<geo::Token>& targets,
                         bool accumulate_grads, nn::Matrix* d_h) override;
  const char* Name() const override { return "L3"; }
  Rng* MutableNoiseRng() override { return &rng_; }

 private:
  double RowSampledSoftmax(const float* h, geo::Token target,
                           bool accumulate_grads, float* d_h);
  double RowBinaryNce(const float* h, geo::Token target,
                      bool accumulate_grads, float* d_h);

  OutputProjection* proj_;
  const geo::HotCellVocab* vocab_;
  const geo::CellKnnTable* knn_;
  int num_noise_;
  NceVariant variant_;
  Rng rng_;
  std::unique_ptr<AliasSampler> noise_dist_;
  // Reused per-row buffers.
  std::vector<geo::Token> candidates_;
  std::vector<float> pos_weights_;
  std::vector<float> scores_;
  std::vector<float> d_scores_;
};

/// Factory: builds the loss selected by `config.loss`.
std::unique_ptr<SeqLoss> MakeLoss(const T2VecConfig& config,
                                  OutputProjection* proj,
                                  const geo::HotCellVocab* vocab,
                                  const geo::CellKnnTable* knn, Rng rng);

}  // namespace t2vec::core

#endif  // T2VEC_CORE_LOSS_H_
