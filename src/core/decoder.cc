#include "core/decoder.h"

#include <algorithm>
#include <cmath>

#include "common/sort.h"
#include "nn/ops.h"

namespace t2vec::core {

namespace {

// Encodes `src`, returning the encoder's per-layer final states (the
// decoder's initial state) and its per-step top-layer outputs (consumed by
// attention when the model has it). Returns false for an empty source.
bool EncodeSource(const EncoderDecoder& model, const traj::TokenSeq& src,
                  nn::GruState* state, std::vector<nn::Matrix>* enc_outputs) {
  if (src.empty()) return false;
  std::vector<nn::Matrix> xs(src.size());
  for (size_t t = 0; t < src.size(); ++t) {
    model.embedding().Forward({src[t]}, &xs[t]);
  }
  nn::Gru::ForwardResult result;
  model.encoder().Forward(xs, nullptr, {}, &result);
  *enc_outputs = result.TopOutputs();
  *state = std::move(result.final_state);
  return true;
}

// One decoder step: feeds `token`, advances `state`, writes the top-layer
// hidden's log-softmax over the vocabulary into `log_probs` (1 x V).
// With attention, the attentional hidden replaces the raw GRU output.
void DecoderStep(const EncoderDecoder& model, geo::Token token,
                 const std::vector<nn::Matrix>& enc_outputs,
                 nn::GruState* state, nn::Matrix* log_probs) {
  nn::Matrix x;
  model.embedding().Forward({token}, &x);
  nn::Gru::ForwardResult result;
  const std::vector<nn::Matrix> xs = {std::move(x)};
  model.decoder().Forward(xs, state, {}, &result);
  *state = std::move(result.final_state);

  nn::Matrix logits;
  if (model.has_attention()) {
    nn::AttentionCache cache;
    model.attention()->Forward({state->h.back()}, enc_outputs, {}, &cache);
    model.projection().FullLogits(cache.output.front(), &logits);
  } else {
    model.projection().FullLogits(state->h.back(), &logits);
  }
  nn::LogSoftmaxRows(logits, log_probs);
}

// Top-k (token, log-prob) pairs, excluding the non-emittable specials
// (PAD/BOS/UNK stay internal; EOS is a legal output).
std::vector<std::pair<double, geo::Token>> TopK(const nn::Matrix& log_probs,
                                                size_t k) {
  std::vector<std::pair<double, geo::Token>> scored;
  scored.reserve(log_probs.cols());
  for (size_t u = 0; u < log_probs.cols(); ++u) {
    const auto token = static_cast<geo::Token>(u);
    if (token == geo::kPadToken || token == geo::kBosToken ||
        token == geo::kUnkToken) {
      continue;
    }
    scored.emplace_back(-log_probs.At(0, u), token);
  }
  k = std::min(k, scored.size());
  // (neg-log-prob, token) pairs with distinct tokens: operator< is a strict
  // total order, so the k-prefix is unique on every toolchain.
  TotalOrderPartialSort(scored.begin(), scored.begin() + static_cast<long>(k),
                        scored.end());
  scored.resize(k);
  for (auto& [neg_lp, token] : scored) neg_lp = -neg_lp;  // Back to log-prob.
  return scored;
}

}  // namespace

traj::TokenSeq SequenceDecoder::DecodeGreedy(const traj::TokenSeq& src,
                                             size_t max_len) const {
  traj::TokenSeq out;
  nn::GruState state;
  std::vector<nn::Matrix> enc_outputs;
  if (!EncodeSource(*model_, src, &state, &enc_outputs)) return out;

  geo::Token token = geo::kBosToken;
  nn::Matrix log_probs;
  for (size_t step = 0; step < max_len; ++step) {
    DecoderStep(*model_, token, enc_outputs, &state, &log_probs);
    const auto best = TopK(log_probs, 1);
    T2VEC_CHECK(!best.empty());
    token = best[0].second;
    if (token == geo::kEosToken) break;
    out.push_back(token);
  }
  return out;
}

std::vector<Hypothesis> SequenceDecoder::DecodeBeam(const traj::TokenSeq& src,
                                                    size_t beam_width,
                                                    size_t max_len) const {
  T2VEC_CHECK(beam_width >= 1);
  std::vector<Hypothesis> finished;
  nn::GruState init;
  std::vector<nn::Matrix> enc_outputs;
  if (!EncodeSource(*model_, src, &init, &enc_outputs)) return finished;

  struct Beam {
    Hypothesis hyp;
    nn::GruState state;
    geo::Token last = geo::kBosToken;
  };
  std::vector<Beam> beams = {{Hypothesis{}, std::move(init), geo::kBosToken}};

  nn::Matrix log_probs;
  for (size_t step = 0; step < max_len && !beams.empty(); ++step) {
    std::vector<Beam> expanded;
    for (Beam& beam : beams) {
      DecoderStep(*model_, beam.last, enc_outputs, &beam.state, &log_probs);
      for (const auto& [lp, token] : TopK(log_probs, beam_width)) {
        if (token == geo::kEosToken) {
          Hypothesis done = beam.hyp;
          done.log_prob += lp;
          finished.push_back(std::move(done));
          continue;
        }
        Beam next;
        next.hyp = beam.hyp;
        next.hyp.tokens.push_back(token);
        next.hyp.log_prob = beam.hyp.log_prob + lp;
        next.state = beam.state;
        next.last = token;
        expanded.push_back(std::move(next));
      }
    }
    // Beams can tie exactly in log-prob; the pinned sort keeps the pruned
    // beam set identical across toolchains.
    DeterministicSort(expanded.begin(), expanded.end(),
                      [](const Beam& a, const Beam& b) {
                        return a.hyp.log_prob > b.hyp.log_prob;
                      });
    if (expanded.size() > beam_width) expanded.resize(beam_width);
    beams = std::move(expanded);
  }
  // Surviving unfinished beams count as hypotheses too (hit max_len).
  for (Beam& beam : beams) finished.push_back(std::move(beam.hyp));

  // Length-normalized ranking avoids the short-sequence bias; pinned so the
  // returned hypothesis order (ties included) is toolchain-independent.
  DeterministicSort(finished.begin(), finished.end(),
            [](const Hypothesis& a, const Hypothesis& b) {
              const double na =
                  a.log_prob / static_cast<double>(a.tokens.size() + 1);
              const double nb =
                  b.log_prob / static_cast<double>(b.tokens.size() + 1);
              return na > nb;
            });
  if (finished.size() > beam_width) finished.resize(beam_width);
  return finished;
}

}  // namespace t2vec::core
