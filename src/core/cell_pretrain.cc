#include "core/cell_pretrain.h"

#include <cmath>
#include <vector>

namespace t2vec::core {

namespace {

// Logistic sigmoid for scalar scores.
inline float SigmoidScalar(float x) { return 1.0f / (1.0f + std::exp(-x)); }

// One skip-gram SGD update for (center, context, label): in/out vectors of
// dimension d; returns nothing, updates both tables in place.
// The gradient of -log sigmoid(±s) w.r.t. s is (sigmoid(s) - label).
void SgnsUpdate(float* in_vec, float* out_vec, size_t d, float label,
                float lr, std::vector<float>& in_grad_accum) {
  double score = 0.0;
  for (size_t j = 0; j < d; ++j) {
    score += static_cast<double>(in_vec[j]) * out_vec[j];
  }
  const float g = (SigmoidScalar(static_cast<float>(score)) - label) * lr;
  for (size_t j = 0; j < d; ++j) {
    in_grad_accum[j] += g * out_vec[j];
    out_vec[j] -= g * in_vec[j];
  }
}

}  // namespace

nn::Matrix PretrainCellEmbeddings(const geo::HotCellVocab& vocab,
                                  const geo::CellKnnTable& knn,
                                  const T2VecConfig& config, Rng& rng) {
  const size_t d = config.embed_dim;
  const size_t vocab_size = static_cast<size_t>(vocab.vocab_size());
  const size_t num_cells = vocab.num_hot_cells();

  // Input (returned) and output embedding tables, word2vec-style.
  nn::Matrix in_table(vocab_size, d);
  nn::Matrix out_table(vocab_size, d);
  const float init_scale = 0.5f / static_cast<float>(d);
  for (size_t i = 0; i < in_table.size(); ++i) {
    in_table.data()[i] = static_cast<float>(rng.Uniform(-init_scale,
                                                        init_scale));
  }

  // Negative-sampling distribution: smoothed hit counts (count^0.75).
  std::vector<double> counts(num_cells);
  for (size_t i = 0; i < num_cells; ++i) {
    counts[i] = static_cast<double>(
        vocab.HitCount(static_cast<geo::Token>(i) + geo::kNumSpecialTokens));
  }
  const AliasSampler noise(SmoothedDistribution(counts, 0.75));

  std::vector<float> in_grad(d);
  for (int epoch = 0; epoch < config.pretrain_epochs; ++epoch) {
    for (size_t ci = 0; ci < num_cells; ++ci) {
      const geo::Token u =
          static_cast<geo::Token>(ci) + geo::kNumSpecialTokens;
      const std::vector<geo::Token>& neighbors = knn.Neighbors(u);
      const std::vector<float>& weights = knn.Weights(u);
      float* in_vec = in_table.Row(static_cast<size_t>(u));

      // Algorithm 1 lines 2-5: sample context C(u) of size l from the
      // kernel distribution over NK(u).
      for (int c = 0; c < config.pretrain_context; ++c) {
        // Categorical draw from the precomputed kernel weights.
        double target = rng.Uniform();
        size_t pick = 0;
        for (; pick + 1 < weights.size(); ++pick) {
          target -= weights[pick];
          if (target < 0.0) break;
        }
        const geo::Token context = neighbors[pick];
        if (context == u) continue;  // Self pairs carry no signal.

        std::fill(in_grad.begin(), in_grad.end(), 0.0f);
        // Positive pair.
        SgnsUpdate(in_vec, out_table.Row(static_cast<size_t>(context)), d,
                   1.0f, config.pretrain_lr, in_grad);
        // Negative samples.
        for (int neg = 0; neg < config.pretrain_negatives; ++neg) {
          const geo::Token sampled =
              static_cast<geo::Token>(noise.Sample(rng)) +
              geo::kNumSpecialTokens;
          if (sampled == context || sampled == u) continue;
          SgnsUpdate(in_vec, out_table.Row(static_cast<size_t>(sampled)), d,
                     0.0f, config.pretrain_lr, in_grad);
        }
        for (size_t j = 0; j < d; ++j) in_vec[j] -= in_grad[j];
      }
    }
  }
  return in_table;
}

}  // namespace t2vec::core
