#include "core/trainer.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <limits>
#include <numeric>

#include "common/fault.h"
#include "common/fs.h"
#include "common/logging.h"
#include "common/serialize.h"
#include "common/sort.h"
#include "common/stopwatch.h"
#include "nn/checkpoint.h"
#include "nn/optimizer.h"

namespace t2vec::core {

namespace {

constexpr uint32_t kSnapshotMagic = 0x4E533254;  // "T2SN"
constexpr uint32_t kSnapshotVersion = 1;
constexpr char kSnapshotPrefix[] = "snapshot_";
constexpr char kSnapshotSuffix[] = ".t2vsnap";

std::string SnapshotName(uint64_t iteration) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s%08llu%s", kSnapshotPrefix,
                static_cast<unsigned long long>(iteration), kSnapshotSuffix);
  return buf;
}

// Groups pair indices into batches of similar target length (cuts padding
// waste): sort by target length, then slice. Equal-length ties are common
// (every augmented variant of a trip shares the clean target's length), so
// the sort runs through the pinned algorithm in common/sort.h: `std::sort`
// places ties in an implementation-defined order, which would make batch
// composition — and hence the trained model — differ across standard
// libraries.
std::vector<std::vector<size_t>> MakeBatches(
    const std::vector<TokenPair>& pairs, size_t batch_size) {
  std::vector<size_t> order(pairs.size());
  std::iota(order.begin(), order.end(), 0);
  DeterministicSort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return pairs[a].tgt.size() < pairs[b].tgt.size();
  });
  std::vector<std::vector<size_t>> batches;
  for (size_t start = 0; start < order.size(); start += batch_size) {
    const size_t end = std::min(start + batch_size, order.size());
    batches.emplace_back(order.begin() + static_cast<long>(start),
                         order.begin() + static_cast<long>(end));
  }
  return batches;
}

Batch BuildBatchFromIndices(const std::vector<TokenPair>& pairs,
                            const std::vector<size_t>& indices) {
  std::vector<const TokenPair*> selected;
  selected.reserve(indices.size());
  for (size_t i : indices) selected.push_back(&pairs[i]);
  return BuildBatch(selected);
}

}  // namespace

/// Every piece of mutable training state outside the model weights. The
/// weights themselves travel in the same file (a full parameter block), so
/// one snapshot is sufficient to continue the run bit-identically.
struct Trainer::Snapshot {
  uint64_t iteration = 0;
  uint64_t pairs_size = 0;   // Training pairs after the validation split.
  uint64_t batch_count = 0;  // Guards against resuming on different data.
  Rng::State train_rng{};
  uint8_t has_loss_rng = 0;
  Rng::State loss_rng{};
  double smoothed_loss = 0.0;
  uint8_t has_smoothed = 0;
  double best_val = 0.0;
  uint64_t checks_since_best = 0;
  uint64_t cursor = 0;
  std::vector<uint64_t> batch_order;
  std::vector<uint64_t> curve_iters;
  std::vector<double> curve_losses;
  nn::Adam::State adam;

  Status Write(const std::string& path, uint64_t config_fingerprint,
               const nn::ParamList& params) const;
  Status Read(const std::string& path, uint64_t config_fingerprint,
              const nn::ParamList& params);
};

Status Trainer::Snapshot::Write(const std::string& path,
                                uint64_t config_fingerprint,
                                const nn::ParamList& params) const {
  if (const int err = T2VEC_FAULT_POINT("trainer.snapshot.write")) {
    return Status::IoError(ErrnoMessage("snapshot write", path, err));
  }
  BinaryWriter writer(path);
  if (!writer.ok()) return writer.status();
  writer.WritePod(kSnapshotMagic);
  writer.WritePod(kSnapshotVersion);
  writer.WritePod<uint64_t>(config_fingerprint);
  writer.WritePod<uint64_t>(iteration);
  writer.WritePod<uint64_t>(pairs_size);
  writer.WritePod<uint64_t>(batch_count);
  writer.WritePod(train_rng);
  writer.WritePod<uint8_t>(has_loss_rng);
  writer.WritePod(loss_rng);
  writer.WritePod<double>(smoothed_loss);
  writer.WritePod<uint8_t>(has_smoothed);
  writer.WritePod<double>(best_val);
  writer.WritePod<uint64_t>(checks_since_best);
  writer.WritePod<uint64_t>(cursor);
  writer.WriteVector(batch_order);
  writer.WriteVector(curve_iters);
  writer.WriteVector(curve_losses);
  nn::WriteParamBlock(&writer, params);
  writer.WritePod<int64_t>(adam.step);
  writer.WritePod<uint64_t>(adam.m.size());
  for (size_t i = 0; i < adam.m.size(); ++i) {
    writer.WriteVector(adam.m[i]);
    writer.WriteVector(adam.v[i]);
  }
  return writer.Finish();
}

Status Trainer::Snapshot::Read(const std::string& path,
                               uint64_t config_fingerprint,
                               const nn::ParamList& params) {
  BinaryReader reader(path);
  if (!reader.ok()) return reader.status();
  uint32_t magic = 0, version = 0;
  if (!reader.ReadPod(&magic) || magic != kSnapshotMagic) {
    return Status::IoError("bad snapshot magic in " + path);
  }
  if (!reader.ReadPod(&version) || version != kSnapshotVersion) {
    return Status::IoError("unsupported snapshot version in " + path);
  }
  // Snapshots have always been CRC-framed; a framed file whose trailer is
  // gone was truncated at exactly the payload boundary.
  if (!reader.checksummed()) {
    return Status::IoError("snapshot " + path +
                           " is missing its checksum trailer (truncated?)");
  }
  uint64_t fingerprint = 0;
  if (!reader.ReadPod(&fingerprint)) {
    return Status::IoError("truncated snapshot header in " + path);
  }
  if (fingerprint != config_fingerprint) {
    return Status::FailedPrecondition(
        "snapshot " + path +
        " was written under a different training config "
        "(fingerprint mismatch); resume requires the identical config");
  }
  if (!reader.ReadPod(&iteration) || !reader.ReadPod(&pairs_size) ||
      !reader.ReadPod(&batch_count) || !reader.ReadPod(&train_rng) ||
      !reader.ReadPod(&has_loss_rng) || !reader.ReadPod(&loss_rng) ||
      !reader.ReadPod(&smoothed_loss) || !reader.ReadPod(&has_smoothed) ||
      !reader.ReadPod(&best_val) || !reader.ReadPod(&checks_since_best) ||
      !reader.ReadPod(&cursor) || !reader.ReadVector(&batch_order) ||
      !reader.ReadVector(&curve_iters) || !reader.ReadVector(&curve_losses)) {
    return Status::IoError("truncated snapshot state in " + path);
  }
  if (curve_iters.size() != curve_losses.size()) {
    return Status::IoError("inconsistent validation curve in " + path);
  }
  if (Status status = nn::ReadParamBlock(&reader, params); !status.ok()) {
    return Status(status.code(), status.message() + " in " + path);
  }
  uint64_t moment_count = 0;
  if (!reader.ReadPod(&adam.step) || !reader.ReadPod(&moment_count)) {
    return Status::IoError("truncated optimizer state in " + path);
  }
  if (moment_count != params.size()) {
    return Status::IoError("optimizer moment count mismatch in " + path);
  }
  adam.m.resize(moment_count);
  adam.v.resize(moment_count);
  for (uint64_t i = 0; i < moment_count; ++i) {
    if (!reader.ReadVector(&adam.m[i]) || !reader.ReadVector(&adam.v[i])) {
      return Status::IoError("truncated optimizer moments in " + path);
    }
  }
  return Status::Ok();
}

Trainer::Trainer(EncoderDecoder* model, SeqLoss* loss,
                 const T2VecConfig& config)
    : model_(model), loss_(loss), config_(config) {}

Trainer::~Trainer() = default;

void Trainer::EnableCheckpoints(std::string dir, size_t every) {
  T2VEC_CHECK(every > 0);
  checkpoint_dir_ = std::move(dir);
  checkpoint_every_ = every;
}

Result<std::string> Trainer::LatestSnapshot(const std::string& dir) {
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) {
    return Status::IoError("cannot list snapshot directory " + dir + ": " +
                           ec.message());
  }
  uint64_t best_iter = 0;
  std::string best_name;
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    const size_t prefix_len = sizeof(kSnapshotPrefix) - 1;
    const size_t suffix_len = sizeof(kSnapshotSuffix) - 1;
    if (name.size() <= prefix_len + suffix_len ||
        name.compare(0, prefix_len, kSnapshotPrefix) != 0 ||
        name.compare(name.size() - suffix_len, suffix_len,
                     kSnapshotSuffix) != 0) {
      continue;
    }
    const std::string digits =
        name.substr(prefix_len, name.size() - prefix_len - suffix_len);
    char* end = nullptr;
    const unsigned long long iter = std::strtoull(digits.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') continue;
    if (best_name.empty() || iter > best_iter) {
      best_iter = iter;
      best_name = name;
    }
  }
  if (best_name.empty()) {
    return Status::NotFound("no snapshot_*.t2vsnap files in " + dir);
  }
  return dir + "/" + best_name;
}

Status Trainer::Resume(const std::string& path) {
  std::string file = path;
  std::error_code ec;
  if (std::filesystem::is_directory(path, ec)) {
    Result<std::string> latest = LatestSnapshot(path);
    if (!latest.ok()) return latest.status();
    file = latest.value();
  }
  auto snapshot = std::make_unique<Snapshot>();
  if (Status status =
          snapshot->Read(file, config_.Fingerprint(), model_->Params());
      !status.ok()) {
    return status;
  }
  T2VEC_LOG_INFO("resuming from %s (iteration %llu)", file.c_str(),
                 static_cast<unsigned long long>(snapshot->iteration));
  resume_ = std::move(snapshot);
  return Status::Ok();
}

double Trainer::ValidationLoss(const std::vector<TokenPair>& val_pairs) {
  if (val_pairs.empty()) return 0.0;
  double total_loss = 0.0;
  size_t total_tokens = 0;
  std::vector<size_t> indices;
  for (size_t start = 0; start < val_pairs.size();
       start += config_.batch_size) {
    const size_t end =
        std::min(start + config_.batch_size, val_pairs.size());
    indices.clear();
    for (size_t i = start; i < end; ++i) indices.push_back(i);
    const Batch batch = BuildBatchFromIndices(val_pairs, indices);
    total_loss += model_->RunBatch(batch, loss_, /*accumulate_grads=*/false);
    total_tokens += batch.target_tokens;
  }
  return total_loss / static_cast<double>(std::max<size_t>(total_tokens, 1));
}

TrainStats Trainer::Train(std::vector<TokenPair> pairs, Rng& rng) {
  T2VEC_CHECK(!pairs.empty());
  TrainStats stats;
  Stopwatch watch;

  // Hold out the validation split (paper: 10k trajectories; scaled).
  rng.Shuffle(pairs);
  const size_t val_count =
      std::min(config_.validation_pairs, pairs.size() / 5);
  std::vector<TokenPair> val_pairs(pairs.end() - static_cast<long>(val_count),
                                   pairs.end());
  pairs.resize(pairs.size() - val_count);
  T2VEC_CHECK(!pairs.empty());

  std::vector<std::vector<size_t>> batches =
      MakeBatches(pairs, config_.batch_size);
  std::vector<size_t> batch_order(batches.size());
  std::iota(batch_order.begin(), batch_order.end(), 0);
  rng.Shuffle(batch_order);

  nn::Adam adam(model_->Params(), config_.learning_rate);
  adam.ZeroGrad();

  double best_val = std::numeric_limits<double>::infinity();
  size_t checks_since_best = 0;
  double smoothed_loss = 0.0;
  bool has_smoothed = false;
  size_t cursor = 0;
  size_t start_iter = 1;

  if (resume_) {
    // The deterministic setup above (shuffle, split, batching, the first
    // batch-order permutation) replayed exactly as in the original run;
    // now overwrite every piece of mutable state with the snapshot's. The
    // model weights were already restored by Resume().
    if (resume_->pairs_size != pairs.size() ||
        resume_->batch_count != batches.size()) {
      T2VEC_LOG_ERROR(
          "resume snapshot was written against different training data "
          "(%llu pairs / %llu batches vs %zu / %zu); resume requires the "
          "identical dataset",
          static_cast<unsigned long long>(resume_->pairs_size),
          static_cast<unsigned long long>(resume_->batch_count), pairs.size(),
          batches.size());
      T2VEC_CHECK(false);
    }
    rng.SetState(resume_->train_rng);
    if (Rng* noise_rng = loss_->MutableNoiseRng();
        noise_rng != nullptr && resume_->has_loss_rng != 0) {
      noise_rng->SetState(resume_->loss_rng);
    }
    smoothed_loss = resume_->smoothed_loss;
    has_smoothed = resume_->has_smoothed != 0;
    best_val = resume_->best_val;
    checks_since_best = resume_->checks_since_best;
    cursor = resume_->cursor;
    batch_order.assign(resume_->batch_order.begin(),
                       resume_->batch_order.end());
    stats.val_curve.clear();
    for (size_t i = 0; i < resume_->curve_iters.size(); ++i) {
      stats.val_curve.emplace_back(resume_->curve_iters[i],
                                   resume_->curve_losses[i]);
    }
    const Status adam_status = adam.SetState(resume_->adam);
    if (!adam_status.ok()) {
      T2VEC_LOG_ERROR("resume: %s", adam_status.ToString().c_str());
      T2VEC_CHECK(false);
    }
    stats.iterations = resume_->iteration;
    start_iter = resume_->iteration + 1;
    resume_.reset();
  }

  // Captures the complete mutable training state and writes it atomically;
  // a failed write is logged and training continues (durability must never
  // kill the run it protects — the fault-injection tests pin this down).
  const auto write_snapshot = [&](size_t iter) {
    Snapshot snapshot;
    snapshot.iteration = iter;
    snapshot.pairs_size = pairs.size();
    snapshot.batch_count = batches.size();
    snapshot.train_rng = rng.GetState();
    if (Rng* noise_rng = loss_->MutableNoiseRng()) {
      snapshot.has_loss_rng = 1;
      snapshot.loss_rng = noise_rng->GetState();
    }
    snapshot.smoothed_loss = smoothed_loss;
    snapshot.has_smoothed = has_smoothed ? 1 : 0;
    snapshot.best_val = best_val;
    snapshot.checks_since_best = checks_since_best;
    snapshot.cursor = cursor;
    snapshot.batch_order.assign(batch_order.begin(), batch_order.end());
    for (const auto& [it_iter, it_loss] : stats.val_curve) {
      snapshot.curve_iters.push_back(it_iter);
      snapshot.curve_losses.push_back(it_loss);
    }
    snapshot.adam = adam.GetState();
    const std::string path = checkpoint_dir_ + "/" + SnapshotName(iter);
    const Status status =
        snapshot.Write(path, config_.Fingerprint(), model_->Params());
    if (!status.ok()) {
      T2VEC_LOG_WARN("snapshot write failed (training continues): %s",
                     status.ToString().c_str());
    }
  };

  for (size_t iter = start_iter; iter <= config_.max_iterations; ++iter) {
    if (cursor >= batch_order.size()) {
      cursor = 0;
      rng.Shuffle(batch_order);
    }
    const Batch batch =
        BuildBatchFromIndices(pairs, batches[batch_order[cursor++]]);
    const double loss =
        model_->RunBatch(batch, loss_, /*accumulate_grads=*/true);
    const double per_token =
        loss / static_cast<double>(std::max<size_t>(batch.target_tokens, 1));
    smoothed_loss = has_smoothed ? 0.98 * smoothed_loss + 0.02 * per_token
                                 : per_token;
    has_smoothed = true;

    nn::ClipGradNorm(model_->Params(), config_.grad_clip);
    adam.Step();
    adam.ZeroGrad();
    stats.iterations = iter;

    if (iter % config_.validate_every == 0 && !val_pairs.empty()) {
      const double val_loss = ValidationLoss(val_pairs);
      stats.val_curve.emplace_back(iter, val_loss);
      T2VEC_LOG_INFO("iter %zu: train %.4f, val %.4f (%.0fs)", iter,
                     smoothed_loss, val_loss, watch.ElapsedSeconds());
      if (val_loss < best_val - 1e-5) {
        best_val = val_loss;
        checks_since_best = 0;
      } else if (++checks_since_best >= config_.patience) {
        stats.early_stopped = true;
        break;
      }
    }

    if (checkpoint_every_ != 0 && iter % checkpoint_every_ == 0) {
      write_snapshot(iter);
    }
  }

  stats.train_seconds = watch.ElapsedSeconds();
  stats.best_val_loss =
      std::isfinite(best_val) ? best_val : ValidationLoss(val_pairs);
  stats.final_train_loss = smoothed_loss;
  return stats;
}

}  // namespace t2vec::core
