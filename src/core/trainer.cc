#include "core/trainer.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"
#include "common/sort.h"
#include "common/stopwatch.h"
#include "nn/optimizer.h"

namespace t2vec::core {

namespace {

// Groups pair indices into batches of similar target length (cuts padding
// waste): sort by target length, then slice. Equal-length ties are common
// (every augmented variant of a trip shares the clean target's length), so
// the sort runs through the pinned algorithm in common/sort.h: `std::sort`
// places ties in an implementation-defined order, which would make batch
// composition — and hence the trained model — differ across standard
// libraries.
std::vector<std::vector<size_t>> MakeBatches(
    const std::vector<TokenPair>& pairs, size_t batch_size) {
  std::vector<size_t> order(pairs.size());
  std::iota(order.begin(), order.end(), 0);
  DeterministicSort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return pairs[a].tgt.size() < pairs[b].tgt.size();
  });
  std::vector<std::vector<size_t>> batches;
  for (size_t start = 0; start < order.size(); start += batch_size) {
    const size_t end = std::min(start + batch_size, order.size());
    batches.emplace_back(order.begin() + static_cast<long>(start),
                         order.begin() + static_cast<long>(end));
  }
  return batches;
}

Batch BuildBatchFromIndices(const std::vector<TokenPair>& pairs,
                            const std::vector<size_t>& indices) {
  std::vector<const TokenPair*> selected;
  selected.reserve(indices.size());
  for (size_t i : indices) selected.push_back(&pairs[i]);
  return BuildBatch(selected);
}

}  // namespace

Trainer::Trainer(EncoderDecoder* model, SeqLoss* loss,
                 const T2VecConfig& config)
    : model_(model), loss_(loss), config_(config) {}

double Trainer::ValidationLoss(const std::vector<TokenPair>& val_pairs) {
  if (val_pairs.empty()) return 0.0;
  double total_loss = 0.0;
  size_t total_tokens = 0;
  std::vector<size_t> indices;
  for (size_t start = 0; start < val_pairs.size();
       start += config_.batch_size) {
    const size_t end =
        std::min(start + config_.batch_size, val_pairs.size());
    indices.clear();
    for (size_t i = start; i < end; ++i) indices.push_back(i);
    const Batch batch = BuildBatchFromIndices(val_pairs, indices);
    total_loss += model_->RunBatch(batch, loss_, /*accumulate_grads=*/false);
    total_tokens += batch.target_tokens;
  }
  return total_loss / static_cast<double>(std::max<size_t>(total_tokens, 1));
}

TrainStats Trainer::Train(std::vector<TokenPair> pairs, Rng& rng) {
  T2VEC_CHECK(!pairs.empty());
  TrainStats stats;
  Stopwatch watch;

  // Hold out the validation split (paper: 10k trajectories; scaled).
  rng.Shuffle(pairs);
  const size_t val_count =
      std::min(config_.validation_pairs, pairs.size() / 5);
  std::vector<TokenPair> val_pairs(pairs.end() - static_cast<long>(val_count),
                                   pairs.end());
  pairs.resize(pairs.size() - val_count);
  T2VEC_CHECK(!pairs.empty());

  std::vector<std::vector<size_t>> batches =
      MakeBatches(pairs, config_.batch_size);
  std::vector<size_t> batch_order(batches.size());
  std::iota(batch_order.begin(), batch_order.end(), 0);
  rng.Shuffle(batch_order);

  nn::Adam adam(model_->Params(), config_.learning_rate);
  adam.ZeroGrad();

  double best_val = std::numeric_limits<double>::infinity();
  size_t checks_since_best = 0;
  double smoothed_loss = 0.0;
  bool has_smoothed = false;
  size_t cursor = 0;

  for (size_t iter = 1; iter <= config_.max_iterations; ++iter) {
    if (cursor >= batch_order.size()) {
      cursor = 0;
      rng.Shuffle(batch_order);
    }
    const Batch batch =
        BuildBatchFromIndices(pairs, batches[batch_order[cursor++]]);
    const double loss =
        model_->RunBatch(batch, loss_, /*accumulate_grads=*/true);
    const double per_token =
        loss / static_cast<double>(std::max<size_t>(batch.target_tokens, 1));
    smoothed_loss = has_smoothed ? 0.98 * smoothed_loss + 0.02 * per_token
                                 : per_token;
    has_smoothed = true;

    nn::ClipGradNorm(model_->Params(), config_.grad_clip);
    adam.Step();
    adam.ZeroGrad();
    stats.iterations = iter;

    if (iter % config_.validate_every == 0 && !val_pairs.empty()) {
      const double val_loss = ValidationLoss(val_pairs);
      stats.val_curve.emplace_back(iter, val_loss);
      T2VEC_LOG_INFO("iter %zu: train %.4f, val %.4f (%.0fs)", iter,
                     smoothed_loss, val_loss, watch.ElapsedSeconds());
      if (val_loss < best_val - 1e-5) {
        best_val = val_loss;
        checks_since_best = 0;
      } else if (++checks_since_best >= config_.patience) {
        stats.early_stopped = true;
        break;
      }
    }
  }

  stats.train_seconds = watch.ElapsedSeconds();
  stats.best_val_loss =
      std::isfinite(best_val) ? best_val : ValidationLoss(val_pairs);
  stats.final_train_loss = smoothed_loss;
  return stats;
}

}  // namespace t2vec::core
