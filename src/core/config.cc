#include "core/config.h"

#include <cstdio>

namespace t2vec::core {

namespace {

// FNV-1a style mixing over raw field bytes.
void MixBytes(uint64_t* h, const void* data, size_t len) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    *h ^= bytes[i];
    *h *= 0x100000001B3ULL;
  }
}

template <typename T>
void Mix(uint64_t* h, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  MixBytes(h, &value, sizeof(value));
}

}  // namespace

uint64_t T2VecConfig::Fingerprint() const {
  uint64_t h = 0xCBF29CE484222325ULL;
  Mix(&h, cell_size);
  Mix(&h, hot_cell_min_hits);
  Mix(&h, knn_k);
  Mix(&h, nce_noise);
  Mix(&h, theta);
  Mix(&h, loss);
  Mix(&h, nce_variant);
  Mix(&h, embed_dim);
  Mix(&h, hidden);
  Mix(&h, layers);
  Mix(&h, reverse_source);
  Mix(&h, use_attention);
  Mix(&h, pretrain_cells);
  Mix(&h, pretrain_context);
  Mix(&h, pretrain_negatives);
  Mix(&h, pretrain_epochs);
  Mix(&h, pretrain_lr);
  Mix(&h, pretrain_theta);
  for (double r : r1_grid) Mix(&h, r);
  for (double r : r2_grid) Mix(&h, r);
  Mix(&h, learning_rate);
  Mix(&h, grad_clip);
  Mix(&h, batch_size);
  Mix(&h, max_iterations);
  Mix(&h, validate_every);
  Mix(&h, patience);
  Mix(&h, validation_pairs);
  Mix(&h, seed);
  return h;
}

std::string T2VecConfig::Summary() const {
  const char* loss_name =
      loss == LossKind::kL1 ? "L1" : (loss == LossKind::kL2 ? "L2" : "L3");
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "cell=%.0fm hidden=%zu layers=%zu embed=%zu loss=%s%s K=%d "
                "noise=%d lr=%.4f batch=%zu iters=%zu",
                cell_size, hidden, layers, embed_dim, loss_name,
                pretrain_cells ? "+CL" : "", knn_k, nce_noise,
                static_cast<double>(learning_rate), batch_size,
                max_iterations);
  return buf;
}

}  // namespace t2vec::core
