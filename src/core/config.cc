#include "core/config.h"

#include <cstdio>

namespace t2vec::core {

namespace {

// FNV-1a style mixing over raw field bytes.
void MixBytes(uint64_t* h, const void* data, size_t len) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    *h ^= bytes[i];
    *h *= 0x100000001B3ULL;
  }
}

template <typename T>
void Mix(uint64_t* h, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  MixBytes(h, &value, sizeof(value));
}

}  // namespace

Status T2VecConfig::Validate() const {
  auto bad = [](const std::string& msg) {
    return Status::InvalidArgument("T2VecConfig: " + msg);
  };
  if (!(cell_size > 0.0)) return bad("cell_size must be > 0");
  if (hot_cell_min_hits < 1) return bad("hot_cell_min_hits must be >= 1");
  if (knn_k < 1) return bad("knn_k must be >= 1");
  if (nce_noise < 1) return bad("nce_noise must be >= 1");
  if (!(theta > 0.0)) return bad("theta must be > 0");
  if (embed_dim == 0) return bad("embed_dim must be >= 1");
  if (hidden == 0) return bad("hidden must be >= 1");
  if (layers == 0) return bad("layers must be >= 1");
  if (pretrain_cells) {
    if (pretrain_context < 1) return bad("pretrain_context must be >= 1");
    if (pretrain_negatives < 1) return bad("pretrain_negatives must be >= 1");
    if (pretrain_epochs < 1) return bad("pretrain_epochs must be >= 1");
    if (!(pretrain_lr > 0.0f)) return bad("pretrain_lr must be > 0");
    if (!(pretrain_theta > 0.0)) return bad("pretrain_theta must be > 0");
  }
  if (r1_grid.empty()) return bad("r1_grid must be non-empty");
  if (r2_grid.empty()) return bad("r2_grid must be non-empty");
  for (double r : r1_grid) {
    if (!(r >= 0.0 && r < 1.0)) return bad("r1_grid rates must be in [0, 1)");
  }
  for (double r : r2_grid) {
    if (!(r >= 0.0 && r < 1.0)) return bad("r2_grid rates must be in [0, 1)");
  }
  if (!(learning_rate > 0.0f)) return bad("learning_rate must be > 0");
  if (!(grad_clip > 0.0)) return bad("grad_clip must be > 0");
  if (batch_size == 0) return bad("batch_size must be >= 1");
  if (max_iterations == 0) return bad("max_iterations must be >= 1");
  if (validate_every == 0) return bad("validate_every must be >= 1");
  if (patience == 0) return bad("patience must be >= 1");
  if (validation_pairs == 0) return bad("validation_pairs must be >= 1");
  if (num_threads < 0) return bad("num_threads must be >= 0");
  if (!checkpoint_dir.empty() && checkpoint_every == 0) {
    return bad("checkpoint_every must be >= 1 when checkpoint_dir is set");
  }
  return Status::Ok();
}

uint64_t T2VecConfig::Fingerprint() const {
  uint64_t h = 0xCBF29CE484222325ULL;
  Mix(&h, cell_size);
  Mix(&h, hot_cell_min_hits);
  Mix(&h, knn_k);
  Mix(&h, nce_noise);
  Mix(&h, theta);
  Mix(&h, loss);
  Mix(&h, nce_variant);
  Mix(&h, embed_dim);
  Mix(&h, hidden);
  Mix(&h, layers);
  Mix(&h, reverse_source);
  Mix(&h, use_attention);
  Mix(&h, pretrain_cells);
  Mix(&h, pretrain_context);
  Mix(&h, pretrain_negatives);
  Mix(&h, pretrain_epochs);
  Mix(&h, pretrain_lr);
  Mix(&h, pretrain_theta);
  for (double r : r1_grid) Mix(&h, r);
  for (double r : r2_grid) Mix(&h, r);
  Mix(&h, learning_rate);
  Mix(&h, grad_clip);
  Mix(&h, batch_size);
  Mix(&h, max_iterations);
  Mix(&h, validate_every);
  Mix(&h, patience);
  Mix(&h, validation_pairs);
  Mix(&h, seed);
  return h;
}

std::string T2VecConfig::Summary() const {
  const char* loss_name =
      loss == LossKind::kL1 ? "L1" : (loss == LossKind::kL2 ? "L2" : "L3");
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "cell=%.0fm hidden=%zu layers=%zu embed=%zu loss=%s%s K=%d "
                "noise=%d lr=%.4f batch=%zu iters=%zu",
                cell_size, hidden, layers, embed_dim, loss_name,
                pretrain_cells ? "+CL" : "", knn_k, nce_noise,
                static_cast<double>(learning_rate), batch_size,
                max_iterations);
  return buf;
}

}  // namespace t2vec::core
