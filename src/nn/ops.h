#ifndef T2VEC_NN_OPS_H_
#define T2VEC_NN_OPS_H_

#include "nn/matrix.h"

/// \file
/// Elementwise activations and softmax, with the backward helpers the GRU and
/// loss layers need. Backward functions follow the convention
/// `dX = dY ⊙ f'(...)` expressed in terms of the *outputs* of the forward
/// pass (σ' = y(1-y), tanh' = 1-y²) so no pre-activations need to be stored.

namespace t2vec::nn {

/// out = σ(in), elementwise logistic sigmoid. `out` may alias `in`.
void Sigmoid(const Matrix& in, Matrix* out);

/// out = tanh(in), elementwise. `out` may alias `in`.
void Tanh(const Matrix& in, Matrix* out);

/// d_in = d_out ⊙ y ⊙ (1 - y) where y = σ(pre-activation).
/// `d_in` may alias `d_out`.
void SigmoidBackward(const Matrix& y, const Matrix& d_out, Matrix* d_in);

/// d_in = d_out ⊙ (1 - y²) where y = tanh(pre-activation).
void TanhBackward(const Matrix& y, const Matrix& d_out, Matrix* d_in);

// Strided-view variants. Shapes must already match (views cannot resize).
// The per-element expressions are shared with the Matrix overloads above, so
// running an activation on a column block of a packed buffer produces the
// same bits as running it on a separate per-gate matrix (the fused-kernel
// determinism contract in nn/matrix.h).
void SigmoidV(ConstMatrixView in, MatrixView out);
void TanhV(ConstMatrixView in, MatrixView out);
void SigmoidBackwardV(ConstMatrixView y, ConstMatrixView d_out,
                      MatrixView d_in);
void TanhBackwardV(ConstMatrixView y, ConstMatrixView d_out, MatrixView d_in);

/// Adds row vector `bias` (1 x n) to every row of `out` (m x n).
void AddRowBroadcastV(MatrixView out, const Matrix& bias);

/// Row-wise softmax: every row of `out` is the softmax of the matching row of
/// `in`. Numerically stabilized by max subtraction. May alias.
void SoftmaxRows(const Matrix& in, Matrix* out);

/// Row-wise log-softmax. May alias.
void LogSoftmaxRows(const Matrix& in, Matrix* out);

}  // namespace t2vec::nn

#endif  // T2VEC_NN_OPS_H_
