#ifndef T2VEC_NN_EMBEDDING_H_
#define T2VEC_NN_EMBEDDING_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "nn/parameter.h"

/// \file
/// Token embedding layer: a |V| x d table, looked up by integer token id.
/// This is the layer the paper's cell-representation pretraining
/// (Algorithm 1) initializes; the trainer then continues to fine-tune it.

namespace t2vec::nn {

/// Embedding lookup table with sparse gradient accumulation.
class Embedding {
 public:
  /// Creates a vocab_size x dim table initialized U(-0.1, 0.1).
  Embedding(size_t vocab_size, size_t dim, Rng& rng);

  /// Forward: out (B x dim) = rows of the table selected by `ids` (size B).
  void Forward(const std::vector<int32_t>& ids, Matrix* out) const;

  /// Backward: accumulates d_out (B x dim) into the gradient rows of `ids`.
  void Backward(const std::vector<int32_t>& ids, const Matrix& d_out);

  size_t vocab_size() const { return table_.value.rows(); }
  size_t dim() const { return table_.value.cols(); }

  /// The underlying table parameter (e.g. to load pretrained vectors).
  Parameter& table() { return table_; }
  const Parameter& table() const { return table_; }

  ParamList Params() { return {&table_}; }

 private:
  Parameter table_;
};

}  // namespace t2vec::nn

#endif  // T2VEC_NN_EMBEDDING_H_
