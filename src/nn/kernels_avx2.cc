#include "nn/kernels.h"

/// \file
/// AVX2 + FMA implementations of the dispatched kernels. This is the ONLY
/// translation unit allowed to include <immintrin.h> (lint rule
/// raw-intrinsics); it is compiled with -mavx2 -mfma on x86 and collapses to
/// a nullptr table elsewhere. Nothing here may run unless the CPU probe
/// (common/cpu.h) reported AVX2 support — dispatch guarantees that.
///
/// Bit-identity with kernels_scalar.cc is structural: one ymm register IS
/// the scalar code's 8-lane accumulator array, vfmadd is std::fma, and
/// tails + lane combines reuse the same in-order scalar chains. See the
/// contract in nn/kernels.h.

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <cmath>

namespace t2vec::nn {

namespace {

float DotAvx2(const float* __restrict x, const float* __restrict y, size_t k) {
  __m256 accv = _mm256_setzero_ps();
  size_t p = 0;
  for (; p + 8 <= k; p += 8) {
    accv = _mm256_fmadd_ps(_mm256_loadu_ps(x + p), _mm256_loadu_ps(y + p),
                           accv);
  }
  alignas(32) float lanes[8];
  _mm256_store_ps(lanes, accv);
  float acc = 0.0f;
  for (; p < k; ++p) acc = std::fma(x[p], y[p], acc);
  for (size_t l = 0; l < 8; ++l) acc += lanes[l];
  return acc;
}

void Dot4Avx2(const float* __restrict x0, const float* __restrict x1,
              const float* __restrict x2, const float* __restrict x3,
              const float* __restrict y, size_t k, float* __restrict out) {
  __m256 v0 = _mm256_setzero_ps(), v1 = _mm256_setzero_ps(),
         v2 = _mm256_setzero_ps(), v3 = _mm256_setzero_ps();
  size_t p = 0;
  for (; p + 8 <= k; p += 8) {
    const __m256 yv = _mm256_loadu_ps(y + p);
    v0 = _mm256_fmadd_ps(_mm256_loadu_ps(x0 + p), yv, v0);
    v1 = _mm256_fmadd_ps(_mm256_loadu_ps(x1 + p), yv, v1);
    v2 = _mm256_fmadd_ps(_mm256_loadu_ps(x2 + p), yv, v2);
    v3 = _mm256_fmadd_ps(_mm256_loadu_ps(x3 + p), yv, v3);
  }
  float a0 = 0.0f, a1 = 0.0f, a2 = 0.0f, a3 = 0.0f;
  for (; p < k; ++p) {
    const float yv = y[p];
    a0 = std::fma(x0[p], yv, a0);
    a1 = std::fma(x1[p], yv, a1);
    a2 = std::fma(x2[p], yv, a2);
    a3 = std::fma(x3[p], yv, a3);
  }
  alignas(32) float lanes[8];
  const __m256 vs[4] = {v0, v1, v2, v3};
  const float tails[4] = {a0, a1, a2, a3};
  for (size_t t = 0; t < 4; ++t) {
    _mm256_store_ps(lanes, vs[t]);
    float acc = tails[t];
    for (size_t l = 0; l < 8; ++l) acc += lanes[l];
    out[t] = acc;
  }
}

void Tile8x32Avx2(float* __restrict acc, const float* __restrict a,
                  size_t row_stride, size_t step_stride,
                  const float* __restrict b, size_t ldb, size_t p0, size_t p1,
                  float alpha) {
  // Four 8-column slabs; per (r, j) element the accumulation chain over p is
  // the same as the scalar tile's (slab order only reorders independent
  // elements, never an element's own chain).
  //
  // The alpha-scaled A column is packed once per depth chunk (one fp32
  // rounding per (r, p), exactly the scalar tile's av[r]) so the hot loop
  // is pure memory-broadcast + fma: 9 load-port uops against 8 fmas per
  // depth step instead of a vmulss + register-broadcast pair per row — and
  // the scaling isn't redone for every slab. Chunking keeps the scratch in
  // L1 and on the stack; chaining chunks preserves each element's order.
  constexpr size_t kChunk = 128;
  alignas(32) float scaled[8 * kChunk];
  for (size_t q0 = p0; q0 < p1; q0 += kChunk) {
    const size_t q1 = q0 + kChunk < p1 ? q0 + kChunk : p1;
    for (size_t p = q0; p < q1; ++p) {
      const float* __restrict ap = a + p * step_stride;
      float* __restrict dst = scaled + (p - q0) * 8;
      for (size_t r = 0; r < 8; ++r) dst[r] = alpha * ap[r * row_stride];
    }
    for (size_t jj = 0; jj < 32; jj += 8) {
      float* __restrict slab = acc + jj;
      __m256 c0 = _mm256_loadu_ps(slab + 0 * 32);
      __m256 c1 = _mm256_loadu_ps(slab + 1 * 32);
      __m256 c2 = _mm256_loadu_ps(slab + 2 * 32);
      __m256 c3 = _mm256_loadu_ps(slab + 3 * 32);
      __m256 c4 = _mm256_loadu_ps(slab + 4 * 32);
      __m256 c5 = _mm256_loadu_ps(slab + 5 * 32);
      __m256 c6 = _mm256_loadu_ps(slab + 6 * 32);
      __m256 c7 = _mm256_loadu_ps(slab + 7 * 32);
      for (size_t p = q0; p < q1; ++p) {
        const __m256 bv = _mm256_loadu_ps(b + p * ldb + jj);
        const float* __restrict av = scaled + (p - q0) * 8;
        c0 = _mm256_fmadd_ps(_mm256_broadcast_ss(av + 0), bv, c0);
        c1 = _mm256_fmadd_ps(_mm256_broadcast_ss(av + 1), bv, c1);
        c2 = _mm256_fmadd_ps(_mm256_broadcast_ss(av + 2), bv, c2);
        c3 = _mm256_fmadd_ps(_mm256_broadcast_ss(av + 3), bv, c3);
        c4 = _mm256_fmadd_ps(_mm256_broadcast_ss(av + 4), bv, c4);
        c5 = _mm256_fmadd_ps(_mm256_broadcast_ss(av + 5), bv, c5);
        c6 = _mm256_fmadd_ps(_mm256_broadcast_ss(av + 6), bv, c6);
        c7 = _mm256_fmadd_ps(_mm256_broadcast_ss(av + 7), bv, c7);
      }
      _mm256_storeu_ps(slab + 0 * 32, c0);
      _mm256_storeu_ps(slab + 1 * 32, c1);
      _mm256_storeu_ps(slab + 2 * 32, c2);
      _mm256_storeu_ps(slab + 3 * 32, c3);
      _mm256_storeu_ps(slab + 4 * 32, c4);
      _mm256_storeu_ps(slab + 5 * 32, c5);
      _mm256_storeu_ps(slab + 6 * 32, c6);
      _mm256_storeu_ps(slab + 7 * 32, c7);
    }
  }
}

// Shared f64 reduction shape: 8 double lanes as two ymm accumulators
// (lo = lanes 0..3, hi = lanes 4..7), explicit-fma tail, fixed pairwise
// combine — byte-for-byte the scalar kernels' reduction.
inline double CombineF64(__m256d lo, __m256d hi, double tail) {
  alignas(32) double l[8];
  _mm256_store_pd(l, lo);
  _mm256_store_pd(l + 4, hi);
  return tail + ((l[0] + l[1]) + (l[2] + l[3])) +
         ((l[4] + l[5]) + (l[6] + l[7]));
}

double SqNormAvx2(const float* __restrict x, size_t n) {
  __m256d lo = _mm256_setzero_pd(), hi = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(x + i);
    const __m256d vlo = _mm256_cvtps_pd(_mm256_castps256_ps128(v));
    const __m256d vhi = _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1));
    lo = _mm256_fmadd_pd(vlo, vlo, lo);
    hi = _mm256_fmadd_pd(vhi, vhi, hi);
  }
  double acc = 0.0;
  for (; i < n; ++i) {
    const double v = static_cast<double>(x[i]);
    acc = std::fma(v, v, acc);
  }
  return CombineF64(lo, hi, acc);
}

double DotF64Avx2(const float* __restrict x, const float* __restrict y,
                  size_t n) {
  __m256d lo = _mm256_setzero_pd(), hi = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 xv = _mm256_loadu_ps(x + i);
    const __m256 yv = _mm256_loadu_ps(y + i);
    lo = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm256_castps256_ps128(xv)),
                         _mm256_cvtps_pd(_mm256_castps256_ps128(yv)), lo);
    hi = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm256_extractf128_ps(xv, 1)),
                         _mm256_cvtps_pd(_mm256_extractf128_ps(yv, 1)), hi);
  }
  double acc = 0.0;
  for (; i < n; ++i) {
    acc = std::fma(static_cast<double>(x[i]), static_cast<double>(y[i]), acc);
  }
  return CombineF64(lo, hi, acc);
}

double SqDistAvx2(const float* __restrict x, const float* __restrict y,
                  size_t n) {
  __m256d lo = _mm256_setzero_pd(), hi = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 xv = _mm256_loadu_ps(x + i);
    const __m256 yv = _mm256_loadu_ps(y + i);
    const __m256d dlo =
        _mm256_sub_pd(_mm256_cvtps_pd(_mm256_castps256_ps128(xv)),
                      _mm256_cvtps_pd(_mm256_castps256_ps128(yv)));
    const __m256d dhi =
        _mm256_sub_pd(_mm256_cvtps_pd(_mm256_extractf128_ps(xv, 1)),
                      _mm256_cvtps_pd(_mm256_extractf128_ps(yv, 1)));
    lo = _mm256_fmadd_pd(dlo, dlo, lo);
    hi = _mm256_fmadd_pd(dhi, dhi, hi);
  }
  double acc = 0.0;
  for (; i < n; ++i) {
    const double d = static_cast<double>(x[i]) - static_cast<double>(y[i]);
    acc = std::fma(d, d, acc);
  }
  return CombineF64(lo, hi, acc);
}

int32_t DotI8Avx2(const int8_t* __restrict x, const int8_t* __restrict y,
                  size_t k) {
  // Sign-extend to int16 and use vpmaddwd: products and adjacent-pair sums
  // stay exact in int32 (max 2 * 127 * 127), so no saturation anywhere —
  // this is why vpmaddubsw (which saturates) is NOT used. Integer sums are
  // associative, so the lane order here needs no scalar mirroring.
  __m256i acc = _mm256_setzero_si256();
  size_t p = 0;
  for (; p + 16 <= k; p += 16) {
    const __m256i xv = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(x + p)));
    const __m256i yv = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(y + p)));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(xv, yv));
  }
  alignas(32) int32_t lanes[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  int32_t s = ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) +
              ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
  for (; p < k; ++p) {
    s += static_cast<int32_t>(x[p]) * static_cast<int32_t>(y[p]);
  }
  return s;
}

constexpr KernelOps kAvx2Ops = {
    "avx2",     DotAvx2,    Dot4Avx2,   Tile8x32Avx2,
    SqNormAvx2, DotF64Avx2, SqDistAvx2, DotI8Avx2,
};

}  // namespace

namespace internal {
const KernelOps* GetAvx2Kernels() { return &kAvx2Ops; }
}  // namespace internal

}  // namespace t2vec::nn

#else  // !x86

namespace t2vec::nn {
namespace internal {
const KernelOps* GetAvx2Kernels() { return nullptr; }
}  // namespace internal
}  // namespace t2vec::nn

#endif
