#ifndef T2VEC_NN_QUANT_H_
#define T2VEC_NN_QUANT_H_

#include <cstdint>
#include <vector>

#include "nn/gru.h"
#include "nn/matrix.h"

/// \file
/// int8 symmetric quantization for the serving-path encoder.
///
/// Weights are quantized once at load time, per output channel (row of W^T):
/// scale = max|w| / 127, zero point 0, so dequantization is a single
/// multiply and the worst-case per-element error is scale / 2. Activations
/// are quantized dynamically per batch row with the same symmetric scheme.
/// The inner product runs int8 x int8 -> int32 exactly (kernels.h dot_i8),
/// then one fp32 dequantize-accumulate per output element with a fixed
/// operation order.
///
/// Determinism: the int32 dots are exact integers (any evaluation order,
/// any dispatch tier gives the same value), activation quantization is
/// scalar-only arithmetic, and the fp32 dequantize chain per element is
/// fixed in source — so quantized inference is bit-identical across thread
/// counts AND across SIMD tiers (stronger than the fp32 path, which is
/// bit-identical across threads/tiers by matching reduction shapes).
///
/// Accuracy: quantization does change results relative to fp32 — that is
/// the speed/accuracy trade. EXPERIMENTS.md records the measured max
/// embedding error and the fig5 kNN-precision delta.

namespace t2vec::nn {

/// A weight matrix stored quantized and transposed: row r holds output
/// channel r's k weights contiguously, with its dequantization scale.
struct QuantizedMatrix {
  size_t rows = 0;  ///< Output channels.
  size_t cols = 0;  ///< Reduction length k.
  std::vector<int8_t> data;  ///< rows x cols, row-major.
  std::vector<float> scales;  ///< Per-row dequant scale (max|row| / 127).

  const int8_t* Row(size_t r) const { return data.data() + r * cols; }
};

/// Quantizes w^T (w is k x out, e.g. a Linear/GRU weight in its natural
/// layout): the result has `out` rows of length k.
QuantizedMatrix QuantizeTransposed(ConstMatrixView w);

/// Appends w^T's rows to `dst` (stacking gate packs such as [Wc|Wz|Wr]).
/// w.rows must equal dst->cols unless dst is empty.
void AppendTransposed(ConstMatrixView w, QuantizedMatrix* dst);

/// Quantizes each row of `x` symmetrically into `q` (resized to
/// x.rows * x.cols) with per-row scales (resized to x.rows). Rounding is
/// lrintf (round-to-nearest-even at ties via the default rounding mode);
/// an all-zero row gets scale 0. Scalar arithmetic only — every dispatch
/// tier quantizes identically.
void QuantizeRowsDynamic(ConstMatrixView x, std::vector<int8_t>* q,
                         std::vector<float>* scales);

/// out(i, j) = [accumulate ? out(i, j) : 0]
///             + sx[i] * qw.scales[j] * dot_i8(qx row i, qw row j)
///             [+ bias[j]]
/// for the m x qw.rows output view. Parallelized over output rows (each
/// element computed wholly by one worker). `qx` holds m rows of qw.cols
/// int8 values; `bias`, when non-null, has qw.rows entries.
void QuantizedGemmTransB(const int8_t* qx, const float* sx, size_t m,
                         const QuantizedMatrix& qw, MatrixView out,
                         bool accumulate, const float* bias);

/// One GRU layer running int8 inference with the gate structure of
/// GruLayer::Forward's fused path ([c|z|r] pre-activations, fp32
/// sigmoid/tanh, masked state carry). Weights are captured (quantized) at
/// construction; later optimizer steps on the source layer do NOT refresh
/// them — rebuild for that.
class QuantizedGruLayer {
 public:
  explicit QuantizedGruLayer(const GruLayer& layer);

  /// Runs the layer over `xs` ([T] of B x in_dim) from zero initial state,
  /// writing each step's hidden output into hs ([T] of B x H). Masks follow
  /// the GruLayer::Forward convention.
  void Forward(const std::vector<Matrix>& xs,
               const std::vector<std::vector<float>>& masks,
               std::vector<Matrix>* hs) const;

  size_t in_dim() const { return w_pack_.cols; }
  size_t hidden() const { return uc_.rows; }

 private:
  QuantizedMatrix w_pack_;  ///< 3H x in_dim, channel rows [Wc | Wz | Wr].
  QuantizedMatrix u_pack_;  ///< 2H x H, channel rows [Uz | Ur].
  QuantizedMatrix uc_;      ///< H x H.
  Matrix bz_, br_, bc_;     ///< fp32 bias copies (1 x H).
};

/// A quantized multi-layer GRU stack for encoding (zero initial state).
class QuantizedGru {
 public:
  explicit QuantizedGru(const Gru& gru);

  /// Runs the stack over `xs` and writes the top layer's final-step hidden
  /// state (B x H) to `final_h`. With masks, that is each sequence's state
  /// at its own last valid token, as in Gru::Forward.
  void Forward(const std::vector<Matrix>& xs,
               const std::vector<std::vector<float>>& masks,
               Matrix* final_h) const;

  size_t layers() const { return layers_.size(); }
  size_t hidden() const { return layers_.front().hidden(); }
  size_t in_dim() const { return layers_.front().in_dim(); }

 private:
  std::vector<QuantizedGruLayer> layers_;
};

}  // namespace t2vec::nn

#endif  // T2VEC_NN_QUANT_H_
