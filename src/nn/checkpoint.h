#ifndef T2VEC_NN_CHECKPOINT_H_
#define T2VEC_NN_CHECKPOINT_H_

#include <string>

#include "common/serialize.h"
#include "common/status.h"
#include "nn/parameter.h"

/// \file
/// Checkpoint (de)serialization for a parameter list. Parameters are matched
/// by name and shape on load, so a checkpoint written by one model instance
/// can be restored into a freshly constructed instance with identical
/// hyperparameters.
///
/// Checkpoints are written atomically with a CRC32C trailer (common/fs.h,
/// common/serialize.h): a crash mid-save leaves the previous checkpoint
/// intact, and any post-write corruption fails the load with a clean Status.
/// Format version 2 is the framing bump; version-1 files (no trailer)
/// remain loadable.

namespace t2vec::nn {

/// Writes every parameter's name, shape, and values to `path`.
Status SaveParams(const ParamList& params, const std::string& path);

/// Restores parameter values from `path`. Fails if any stored parameter is
/// missing from `params` or has a mismatched shape, or if `params` contains
/// parameters absent from the file.
Status LoadParams(const ParamList& params, const std::string& path);

/// Writes the raw parameter block (count, then name/shape/values per entry)
/// into an already-open writer. SaveParams wraps this with the checkpoint
/// magic/version; training snapshots embed it in their own framing.
void WriteParamBlock(BinaryWriter* writer, const ParamList& params);

/// Reads a block written by WriteParamBlock into `params`, matching entries
/// by name and checking shapes. Bumps the global parameter version on
/// success; on failure some parameters may already have been overwritten.
Status ReadParamBlock(BinaryReader* reader, const ParamList& params);

}  // namespace t2vec::nn

#endif  // T2VEC_NN_CHECKPOINT_H_
