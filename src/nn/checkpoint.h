#ifndef T2VEC_NN_CHECKPOINT_H_
#define T2VEC_NN_CHECKPOINT_H_

#include <string>

#include "common/status.h"
#include "nn/parameter.h"

/// \file
/// Checkpoint (de)serialization for a parameter list. Parameters are matched
/// by name and shape on load, so a checkpoint written by one model instance
/// can be restored into a freshly constructed instance with identical
/// hyperparameters.

namespace t2vec::nn {

/// Writes every parameter's name, shape, and values to `path`.
Status SaveParams(const ParamList& params, const std::string& path);

/// Restores parameter values from `path`. Fails if any stored parameter is
/// missing from `params` or has a mismatched shape, or if `params` contains
/// parameters absent from the file.
Status LoadParams(const ParamList& params, const std::string& path);

}  // namespace t2vec::nn

#endif  // T2VEC_NN_CHECKPOINT_H_
