#ifndef T2VEC_NN_LINEAR_H_
#define T2VEC_NN_LINEAR_H_

#include <string>

#include "common/rng.h"
#include "nn/parameter.h"

/// \file
/// Fully-connected layer y = x W + b with row-vector inputs (batch rows).
/// Serves as the decoder's output projection into vocabulary space.

namespace t2vec::nn {

/// Affine layer: input B x in_dim, output B x out_dim.
class Linear {
 public:
  Linear(std::string name, size_t in_dim, size_t out_dim, Rng& rng);

  /// out = x · W + b.
  void Forward(const Matrix& x, Matrix* out) const;

  /// Accumulates dW, db; writes dx (B x in_dim). `x` must be the forward
  /// input that produced this call's d_out.
  void Backward(const Matrix& x, const Matrix& d_out, Matrix* d_x);

  /// Sequence variants: `xs` ([T] of B x in_dim) is packed step-major and the
  /// whole sequence runs through one GEMM when fused kernels are enabled
  /// (one GEMM per step on row blocks otherwise — bit-identical either way,
  /// see nn/matrix.h). Outputs land per step in `outs`.
  void ForwardSeq(const std::vector<Matrix>& xs,
                  std::vector<Matrix>* outs) const;

  /// Backward for ForwardSeq: accumulates dW/db over the whole sequence and
  /// writes per-step input gradients. Produces the same gradient bits as T
  /// separate Backward calls in step order.
  void BackwardSeq(const std::vector<Matrix>& xs,
                   const std::vector<Matrix>& d_outs,
                   std::vector<Matrix>* d_xs);

  size_t in_dim() const { return weight_.value.rows(); }
  size_t out_dim() const { return weight_.value.cols(); }

  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }
  const Parameter& weight() const { return weight_; }
  const Parameter& bias() const { return bias_; }

  ParamList Params() { return {&weight_, &bias_}; }

 private:
  Parameter weight_;  // in_dim x out_dim
  Parameter bias_;    // 1 x out_dim
};

}  // namespace t2vec::nn

#endif  // T2VEC_NN_LINEAR_H_
