#include "nn/ops.h"

#include <cmath>

namespace t2vec::nn {

void Sigmoid(const Matrix& in, Matrix* out) {
  out->Resize(in.rows(), in.cols());
  const float* __restrict x = in.data();
  float* __restrict y = out->data();
  const size_t n = in.size();
  for (size_t i = 0; i < n; ++i) y[i] = 1.0f / (1.0f + std::exp(-x[i]));
}

void Tanh(const Matrix& in, Matrix* out) {
  out->Resize(in.rows(), in.cols());
  const float* __restrict x = in.data();
  float* __restrict y = out->data();
  const size_t n = in.size();
  for (size_t i = 0; i < n; ++i) y[i] = std::tanh(x[i]);
}

void SigmoidBackward(const Matrix& y, const Matrix& d_out, Matrix* d_in) {
  T2VEC_CHECK(SameShape(y, d_out));
  d_in->Resize(y.rows(), y.cols());
  const float* __restrict yv = y.data();
  const float* __restrict g = d_out.data();
  float* __restrict o = d_in->data();
  const size_t n = y.size();
  for (size_t i = 0; i < n; ++i) o[i] = g[i] * yv[i] * (1.0f - yv[i]);
}

void TanhBackward(const Matrix& y, const Matrix& d_out, Matrix* d_in) {
  T2VEC_CHECK(SameShape(y, d_out));
  d_in->Resize(y.rows(), y.cols());
  const float* __restrict yv = y.data();
  const float* __restrict g = d_out.data();
  float* __restrict o = d_in->data();
  const size_t n = y.size();
  for (size_t i = 0; i < n; ++i) o[i] = g[i] * (1.0f - yv[i] * yv[i]);
}

void SoftmaxRows(const Matrix& in, Matrix* out) {
  out->Resize(in.rows(), in.cols());
  const size_t n = in.cols();
  for (size_t r = 0; r < in.rows(); ++r) {
    const float* __restrict x = in.Row(r);
    float* __restrict y = out->Row(r);
    float max_val = x[0];
    for (size_t j = 1; j < n; ++j) max_val = std::max(max_val, x[j]);
    double total = 0.0;
    for (size_t j = 0; j < n; ++j) {
      y[j] = std::exp(x[j] - max_val);
      total += y[j];
    }
    const float inv = static_cast<float>(1.0 / total);
    for (size_t j = 0; j < n; ++j) y[j] *= inv;
  }
}

void LogSoftmaxRows(const Matrix& in, Matrix* out) {
  out->Resize(in.rows(), in.cols());
  const size_t n = in.cols();
  for (size_t r = 0; r < in.rows(); ++r) {
    const float* __restrict x = in.Row(r);
    float* __restrict y = out->Row(r);
    float max_val = x[0];
    for (size_t j = 1; j < n; ++j) max_val = std::max(max_val, x[j]);
    double total = 0.0;
    for (size_t j = 0; j < n; ++j) total += std::exp(x[j] - max_val);
    const float log_z = max_val + static_cast<float>(std::log(total));
    for (size_t j = 0; j < n; ++j) y[j] = x[j] - log_z;
  }
}

}  // namespace t2vec::nn
