#include "nn/ops.h"

#include <cmath>

namespace t2vec::nn {

void SigmoidV(ConstMatrixView in, MatrixView out) {
  T2VEC_CHECK(in.rows == out.rows && in.cols == out.cols);
  for (size_t r = 0; r < in.rows; ++r) {
    const float* __restrict x = in.Row(r);
    float* __restrict y = out.Row(r);
    for (size_t j = 0; j < in.cols; ++j) {
      y[j] = 1.0f / (1.0f + std::exp(-x[j]));
    }
  }
}

void TanhV(ConstMatrixView in, MatrixView out) {
  T2VEC_CHECK(in.rows == out.rows && in.cols == out.cols);
  for (size_t r = 0; r < in.rows; ++r) {
    const float* __restrict x = in.Row(r);
    float* __restrict y = out.Row(r);
    for (size_t j = 0; j < in.cols; ++j) y[j] = std::tanh(x[j]);
  }
}

void SigmoidBackwardV(ConstMatrixView y, ConstMatrixView d_out,
                      MatrixView d_in) {
  T2VEC_CHECK(y.rows == d_out.rows && y.cols == d_out.cols);
  T2VEC_CHECK(y.rows == d_in.rows && y.cols == d_in.cols);
  for (size_t r = 0; r < y.rows; ++r) {
    const float* __restrict yv = y.Row(r);
    const float* __restrict g = d_out.Row(r);
    float* __restrict o = d_in.Row(r);
    for (size_t j = 0; j < y.cols; ++j) {
      o[j] = g[j] * yv[j] * (1.0f - yv[j]);
    }
  }
}

void TanhBackwardV(ConstMatrixView y, ConstMatrixView d_out, MatrixView d_in) {
  T2VEC_CHECK(y.rows == d_out.rows && y.cols == d_out.cols);
  T2VEC_CHECK(y.rows == d_in.rows && y.cols == d_in.cols);
  for (size_t r = 0; r < y.rows; ++r) {
    const float* __restrict yv = y.Row(r);
    const float* __restrict g = d_out.Row(r);
    float* __restrict o = d_in.Row(r);
    for (size_t j = 0; j < y.cols; ++j) {
      o[j] = g[j] * (1.0f - yv[j] * yv[j]);
    }
  }
}

void AddRowBroadcastV(MatrixView out, const Matrix& bias) {
  T2VEC_CHECK(bias.rows() == 1 && bias.cols() == out.cols);
  const float* __restrict b = bias.data();
  for (size_t r = 0; r < out.rows; ++r) {
    float* __restrict o = out.Row(r);
    for (size_t j = 0; j < out.cols; ++j) o[j] += b[j];
  }
}

void Sigmoid(const Matrix& in, Matrix* out) {
  if (out != &in) out->Resize(in.rows(), in.cols());
  SigmoidV(in, *out);
}

void Tanh(const Matrix& in, Matrix* out) {
  if (out != &in) out->Resize(in.rows(), in.cols());
  TanhV(in, *out);
}

void SigmoidBackward(const Matrix& y, const Matrix& d_out, Matrix* d_in) {
  if (d_in != &y && d_in != &d_out) d_in->Resize(y.rows(), y.cols());
  SigmoidBackwardV(y, d_out, MatrixView(*d_in));
}

void TanhBackward(const Matrix& y, const Matrix& d_out, Matrix* d_in) {
  if (d_in != &y && d_in != &d_out) d_in->Resize(y.rows(), y.cols());
  TanhBackwardV(y, d_out, MatrixView(*d_in));
}

void SoftmaxRows(const Matrix& in, Matrix* out) {
  out->Resize(in.rows(), in.cols());
  const size_t n = in.cols();
  for (size_t r = 0; r < in.rows(); ++r) {
    const float* __restrict x = in.Row(r);
    float* __restrict y = out->Row(r);
    float max_val = x[0];
    for (size_t j = 1; j < n; ++j) max_val = std::max(max_val, x[j]);
    double total = 0.0;
    for (size_t j = 0; j < n; ++j) {
      y[j] = std::exp(x[j] - max_val);
      total += y[j];
    }
    const float inv = static_cast<float>(1.0 / total);
    for (size_t j = 0; j < n; ++j) y[j] *= inv;
  }
}

void LogSoftmaxRows(const Matrix& in, Matrix* out) {
  out->Resize(in.rows(), in.cols());
  const size_t n = in.cols();
  for (size_t r = 0; r < in.rows(); ++r) {
    const float* __restrict x = in.Row(r);
    float* __restrict y = out->Row(r);
    float max_val = x[0];
    for (size_t j = 1; j < n; ++j) max_val = std::max(max_val, x[j]);
    double total = 0.0;
    for (size_t j = 0; j < n; ++j) total += std::exp(x[j] - max_val);
    const float log_z = max_val + static_cast<float>(std::log(total));
    for (size_t j = 0; j < n; ++j) y[j] = x[j] - log_z;
  }
}

}  // namespace t2vec::nn
