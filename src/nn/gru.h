#ifndef T2VEC_NN_GRU_H_
#define T2VEC_NN_GRU_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/sync.h"
#include "nn/parameter.h"

/// \file
/// Batched multi-layer GRU with hand-derived backpropagation through time.
///
/// Conventions:
///  - Sequences are batch-major per step: the input is a vector of T matrices,
///    each B x in_dim (step t holds the t-th token of every sequence).
///  - Variable lengths are handled with per-step masks (B floats, 1 = active):
///    at a masked-out step the hidden state is carried through unchanged, so
///    the state at the last step is each sequence's state at its own final
///    valid token. This mirrors packed sequences in mainstream frameworks.
///  - Gate equations (Cho et al. 2014):
///        z = σ(x·Wz + h⁻·Uz + bz)          update gate
///        r = σ(x·Wr + h⁻·Ur + br)          reset gate
///        c = tanh(x·Wc + (r ⊙ h⁻)·Uc + bc) candidate
///        h = (1 − z) ⊙ h⁻ + z ⊙ c
///
/// The paper uses a 3-layer GRU with hidden size 256; both are configurable.

namespace t2vec::nn {

/// Per-step activations saved by the forward pass for BPTT.
struct GruCache {
  std::vector<Matrix> z;   ///< update gate, per step, B x H
  std::vector<Matrix> r;   ///< reset gate
  std::vector<Matrix> c;   ///< candidate state
  std::vector<Matrix> rh;  ///< r ⊙ h_prev (input to the Uc product)
  std::vector<Matrix> h;   ///< post-mask hidden output

  size_t steps() const { return h.size(); }
};

/// One GRU layer operating on a full batched sequence.
class GruLayer {
 public:
  /// Creates a layer with Xavier-initialized weights.
  GruLayer(const std::string& name, size_t in_dim, size_t hidden, Rng& rng);

  /// Runs the layer over the sequence `xs` ([T] of B x in_dim) starting from
  /// `h0` (B x H). `masks[t]` has B entries in {0,1}; pass an empty vector for
  /// an all-active batch. Fills `cache` (also the output: cache->h).
  void Forward(const std::vector<Matrix>& xs, const Matrix& h0,
               const std::vector<std::vector<float>>& masks,
               GruCache* cache) const;

  /// Backward through time. `d_hs` is the gradient w.r.t. each step's output
  /// (nullptr = zeros); `d_h_last` is an extra gradient flowing into the
  /// final hidden state (nullptr = none). Accumulates weight gradients and
  /// writes `d_xs` ([T] of B x in_dim) and `d_h0` (B x H).
  void Backward(const std::vector<Matrix>& xs, const Matrix& h0,
                const std::vector<std::vector<float>>& masks,
                const GruCache& cache, const std::vector<Matrix>* d_hs,
                const Matrix* d_h_last, std::vector<Matrix>* d_xs,
                Matrix* d_h0);

  size_t in_dim() const { return wz_.value.rows(); }
  size_t hidden() const { return uz_.value.rows(); }

  /// Read-only views of the named weights, for derived inference engines
  /// (nn/quant.h builds its int8 packs from these). Pointers are valid for
  /// the layer's lifetime.
  struct WeightRefs {
    const Matrix* wz;
    const Matrix* wr;
    const Matrix* wc;
    const Matrix* uz;
    const Matrix* ur;
    const Matrix* uc;
    const Matrix* bz;
    const Matrix* br;
    const Matrix* bc;
  };
  WeightRefs Weights() const {
    return {&wz_.value, &wr_.value, &wc_.value, &uz_.value, &ur_.value,
            &uc_.value, &bz_.value, &br_.value, &bc_.value};
  }

  ParamList Params();

 private:
  /// Cached fused weight packs (`[Wc|Wz|Wr]` and `[Uz|Ur]`; candidate first
  /// to preserve the historical dx accumulation order). The named
  /// parameters stay the checkpoint format; the packs are a derived layout
  /// that lets Forward/Backward issue one GEMM per input and one per hidden
  /// state instead of three. Stamped with the global ParamVersion() they
  /// were built at and rebuilt lazily after any optimizer step / checkpoint
  /// load (nn/parameter.h). T2Vec::Encode runs Forward concurrently from
  /// pool workers, so rebuilds are double-checked: the packs are written
  /// under `mu`, then published by the release store to `version`; readers
  /// that acquire-load a current `version` may read the packs without the
  /// lock. That version handshake — not `mu` alone — is what protects
  /// w_pack/u_pack, so they carry a protocol comment instead of a
  /// GUARDED_BY annotation (DESIGN.md §5.4).
  struct PackCache {
    sync::Mutex mu;
    std::atomic<uint64_t> version{0};
    // Protocol-guarded (see above): written under mu before the release
    // store to version; read lock-free after an acquire load matches.
    Matrix w_pack;  ///< in_dim x 3H: [Wc | Wz | Wr]
    Matrix u_pack;  ///< H x 2H: [Uz | Ur] (Uc consumes r ⊙ h⁻, stays apart)
  };

  /// Rebuilds the packs if any parameter changed since they were built.
  void RefreshPacks() const;

  Parameter wz_, wr_, wc_;  // in_dim x H
  Parameter uz_, ur_, uc_;  // H x H
  Parameter bz_, br_, bc_;  // 1 x H
  mutable std::unique_ptr<PackCache> packs_;
};

/// Per-layer hidden states (the seq2seq handoff between encoder and decoder).
struct GruState {
  std::vector<Matrix> h;  ///< one B x H matrix per layer

  size_t layers() const { return h.size(); }
};

/// Multi-layer GRU stack.
class Gru {
 public:
  /// Everything the forward pass computed; needed by Backward.
  struct ForwardResult {
    std::vector<GruCache> caches;  ///< per layer
    GruState final_state;          ///< h at the last step, per layer

    /// Output sequence of the top layer ([T] of B x H).
    const std::vector<Matrix>& TopOutputs() const {
      return caches.back().h;
    }
  };

  /// `layers` stacked GRU layers; layer 0 consumes `in_dim`, the rest consume
  /// `hidden`.
  Gru(const std::string& name, size_t in_dim, size_t hidden, size_t layers,
      Rng& rng);

  /// Runs the stack. `init` supplies per-layer initial states (nullptr =
  /// zeros).
  void Forward(const std::vector<Matrix>& xs, const GruState* init,
               const std::vector<std::vector<float>>& masks,
               ForwardResult* result) const;

  /// Backward through the stack. `d_top` is the gradient on the top layer's
  /// per-step outputs (nullptr = zeros); `d_final` on each layer's final
  /// state (nullptr = none). Writes `d_xs` and, if `d_init` is non-null, the
  /// gradient on the initial states.
  void Backward(const std::vector<Matrix>& xs, const GruState* init,
                const std::vector<std::vector<float>>& masks,
                const ForwardResult& result, const std::vector<Matrix>* d_top,
                const GruState* d_final, std::vector<Matrix>* d_xs,
                GruState* d_init);

  size_t layers() const { return layers_.size(); }
  size_t hidden() const { return layers_.front().hidden(); }
  size_t in_dim() const { return layers_.front().in_dim(); }
  const GruLayer& layer(size_t i) const { return layers_[i]; }

  ParamList Params();

 private:
  std::vector<GruLayer> layers_;
};

}  // namespace t2vec::nn

#endif  // T2VEC_NN_GRU_H_
