#include "nn/kernels.h"

#include <cmath>

/// \file
/// Portable reference implementations of the dispatched kernels, plus the
/// tier-resolution glue. Every loop here is the bit-exactness contract: the
/// AVX2 TU mirrors these reduction shapes instruction-for-value
/// (see nn/kernels.h).

namespace t2vec::nn {

namespace {

constexpr size_t kLanes = 8;  // fp32 partial-sum lanes (one ymm register).

float DotScalar(const float* __restrict x, const float* __restrict y,
                size_t k) {
  float lanes[kLanes] = {0};
  size_t p = 0;
  for (; p + kLanes <= k; p += kLanes) {
    for (size_t l = 0; l < kLanes; ++l) {
      lanes[l] = std::fma(x[p + l], y[p + l], lanes[l]);
    }
  }
  float acc = 0.0f;
  for (; p < k; ++p) acc = std::fma(x[p], y[p], acc);
  for (size_t l = 0; l < kLanes; ++l) acc += lanes[l];
  return acc;
}

// Reduces one element's lane array with the fixed in-order combine.
inline float ReduceLanes(const float* __restrict lanes, float tail) {
  for (size_t l = 0; l < kLanes; ++l) tail += lanes[l];
  return tail;
}

void Dot4Scalar(const float* __restrict x0, const float* __restrict x1,
                const float* __restrict x2, const float* __restrict x3,
                const float* __restrict y, size_t k, float* __restrict out) {
  float l0[kLanes] = {}, l1[kLanes] = {}, l2[kLanes] = {}, l3[kLanes] = {};
  size_t p = 0;
  for (; p + kLanes <= k; p += kLanes) {
    for (size_t l = 0; l < kLanes; ++l) {
      const float yv = y[p + l];
      l0[l] = std::fma(x0[p + l], yv, l0[l]);
      l1[l] = std::fma(x1[p + l], yv, l1[l]);
      l2[l] = std::fma(x2[p + l], yv, l2[l]);
      l3[l] = std::fma(x3[p + l], yv, l3[l]);
    }
  }
  float a0 = 0.0f, a1 = 0.0f, a2 = 0.0f, a3 = 0.0f;
  for (; p < k; ++p) {
    const float yv = y[p];
    a0 = std::fma(x0[p], yv, a0);
    a1 = std::fma(x1[p], yv, a1);
    a2 = std::fma(x2[p], yv, a2);
    a3 = std::fma(x3[p], yv, a3);
  }
  out[0] = ReduceLanes(l0, a0);
  out[1] = ReduceLanes(l1, a1);
  out[2] = ReduceLanes(l2, a2);
  out[3] = ReduceLanes(l3, a3);
}

void Tile8x32Scalar(float* __restrict acc, const float* __restrict a,
                    size_t row_stride, size_t step_stride,
                    const float* __restrict b, size_t ldb, size_t p0,
                    size_t p1, float alpha) {
  for (size_t p = p0; p < p1; ++p) {
    const float* __restrict brow = b + p * ldb;
    float av[8];
    for (size_t r = 0; r < 8; ++r) {
      av[r] = alpha * a[r * row_stride + p * step_stride];
    }
    for (size_t r = 0; r < 8; ++r) {
      float* __restrict arow = acc + r * 32;
      for (size_t j = 0; j < 32; ++j) {
        arow[j] = std::fma(av[r], brow[j], arow[j]);
      }
    }
  }
}

double SqNormScalar(const float* __restrict x, size_t n) {
  double lanes[kLanes] = {0};
  size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    for (size_t l = 0; l < kLanes; ++l) {
      const double v = static_cast<double>(x[i + l]);
      lanes[l] = std::fma(v, v, lanes[l]);
    }
  }
  double acc = 0.0;
  for (; i < n; ++i) {
    const double v = static_cast<double>(x[i]);
    acc = std::fma(v, v, acc);
  }
  return acc + ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) +
         ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
}

double DotF64Scalar(const float* __restrict x, const float* __restrict y,
                    size_t n) {
  double lanes[kLanes] = {0};
  size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    for (size_t l = 0; l < kLanes; ++l) {
      lanes[l] = std::fma(static_cast<double>(x[i + l]),
                          static_cast<double>(y[i + l]), lanes[l]);
    }
  }
  double acc = 0.0;
  for (; i < n; ++i) {
    acc = std::fma(static_cast<double>(x[i]), static_cast<double>(y[i]), acc);
  }
  return acc + ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) +
         ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
}

double SqDistScalar(const float* __restrict x, const float* __restrict y,
                    size_t n) {
  double lanes[kLanes] = {0};
  size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    for (size_t l = 0; l < kLanes; ++l) {
      const double d =
          static_cast<double>(x[i + l]) - static_cast<double>(y[i + l]);
      lanes[l] = std::fma(d, d, lanes[l]);
    }
  }
  double acc = 0.0;
  for (; i < n; ++i) {
    const double d = static_cast<double>(x[i]) - static_cast<double>(y[i]);
    acc = std::fma(d, d, acc);
  }
  return acc + ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) +
         ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
}

int32_t DotI8Scalar(const int8_t* __restrict x, const int8_t* __restrict y,
                    size_t k) {
  int32_t acc = 0;
  for (size_t p = 0; p < k; ++p) {
    acc += static_cast<int32_t>(x[p]) * static_cast<int32_t>(y[p]);
  }
  return acc;
}

constexpr KernelOps kScalarOps = {
    "scalar",     DotScalar,    Dot4Scalar,   Tile8x32Scalar,
    SqNormScalar, DotF64Scalar, SqDistScalar, DotI8Scalar,
};

}  // namespace

const KernelOps& KernelsFor(SimdTier tier) {
  if (tier == SimdTier::kAvx2) {
    if (const KernelOps* ops = internal::GetAvx2Kernels()) return *ops;
  }
  return kScalarOps;
}

const KernelOps& Kernels() { return KernelsFor(ActiveSimdTier()); }

}  // namespace t2vec::nn
