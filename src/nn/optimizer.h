#ifndef T2VEC_NN_OPTIMIZER_H_
#define T2VEC_NN_OPTIMIZER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "nn/parameter.h"

/// \file
/// First-order optimizers. The paper trains with Adam (lr = 0.001) plus
/// global gradient-norm clipping at 5; both are implemented here, with plain
/// SGD kept as a baseline and for the skip-gram pretrainer.

namespace t2vec::nn {

/// Interface for optimizers that update a fixed parameter list in place.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Applies one update using the parameters' current gradients, then the
  /// caller is expected to zero the gradients (or call ZeroGrad()).
  virtual void Step() = 0;

  /// Zeroes every parameter's gradient accumulator.
  void ZeroGrad();

 protected:
  explicit Optimizer(ParamList params) : params_(std::move(params)) {}
  ParamList params_;
};

/// Stochastic gradient descent with optional momentum.
class Sgd : public Optimizer {
 public:
  Sgd(ParamList params, float lr, float momentum = 0.0f);

  void Step() override;

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 private:
  float lr_;
  float momentum_;
  std::vector<Matrix> velocity_;
};

/// Adam (Kingma & Ba, 2014) with bias correction.
class Adam : public Optimizer {
 public:
  /// Complete mutable optimizer state: the bias-correction step count and
  /// the flattened first/second moment buffer per parameter. Persisted in
  /// training snapshots (core/trainer.h) so a resumed run's updates are
  /// bit-identical to an uninterrupted one — without the moments, resuming
  /// would restart Adam's variance estimates and diverge immediately.
  struct State {
    int64_t step = 0;
    std::vector<std::vector<float>> m;
    std::vector<std::vector<float>> v;
  };

  Adam(ParamList params, float lr = 1e-3f, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f);

  void Step() override;

  /// Copies out the step count and both moment buffers.
  State GetState() const;

  /// Restores state captured by GetState. Fails soft (InvalidArgument) when
  /// the buffer count or any buffer size does not match this optimizer's
  /// parameter list; the optimizer is unchanged then.
  Status SetState(const State& state);

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }
  int64_t step_count() const { return step_; }

 private:
  float lr_, beta1_, beta2_, eps_;
  int64_t step_ = 0;
  std::vector<Matrix> m_;  // First-moment estimates.
  std::vector<Matrix> v_;  // Second-moment estimates.
};

}  // namespace t2vec::nn

#endif  // T2VEC_NN_OPTIMIZER_H_
