#include "nn/embedding.h"

#include <cstring>

namespace t2vec::nn {

Embedding::Embedding(size_t vocab_size, size_t dim, Rng& rng)
    : table_("embedding", vocab_size, dim) {
  InitUniform(&table_.value, 0.1f, rng);
}

void Embedding::Forward(const std::vector<int32_t>& ids, Matrix* out) const {
  const size_t d = dim();
  out->Resize(ids.size(), d);
  for (size_t i = 0; i < ids.size(); ++i) {
    const int32_t id = ids[i];
    T2VEC_DCHECK(id >= 0 && static_cast<size_t>(id) < vocab_size());
    std::memcpy(out->Row(i), table_.value.Row(static_cast<size_t>(id)),
                d * sizeof(float));
  }
}

void Embedding::Backward(const std::vector<int32_t>& ids,
                         const Matrix& d_out) {
  T2VEC_CHECK(d_out.rows() == ids.size() && d_out.cols() == dim());
  const size_t d = dim();
  for (size_t i = 0; i < ids.size(); ++i) {
    const int32_t id = ids[i];
    T2VEC_DCHECK(id >= 0 && static_cast<size_t>(id) < vocab_size());
    float* __restrict g = table_.grad.Row(static_cast<size_t>(id));
    const float* __restrict src = d_out.Row(i);
    for (size_t j = 0; j < d; ++j) g[j] += src[j];
  }
}

}  // namespace t2vec::nn
