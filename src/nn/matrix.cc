#include "nn/matrix.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>

#include "common/thread_pool.h"
#include "nn/kernels.h"

namespace t2vec::nn {

double Matrix::SquaredNorm() const {
  // Dispatched 8-double-lane reduction (nn/kernels.h sqnorm): explicit fma
  // per lane and a fixed combine tree, identical bits on every tier.
  return Kernels().sqnorm(data_.data(), data_.size());
}

std::string Matrix::ToString(size_t max_rows, size_t max_cols) const {
  const size_t shown_rows = std::min(rows_, max_rows);
  const size_t shown_cols = std::min(cols_, max_cols);
  std::string out;
  // Header + 10 bytes per rendered cell + row decorations; one allocation.
  out.reserve(64 + shown_rows * (10 * shown_cols + 8));
  char buf[64];
  // Header via snprintf: `"[" + std::to_string(...)` concatenation trips
  // GCC 12's -Wrestrict false positive on the inlined insert(0, const char*).
  const int hdr = std::snprintf(buf, sizeof(buf), "[%zu x %zu]\n", rows_, cols_);
  out.append(buf, static_cast<size_t>(hdr));
  for (size_t r = 0; r < shown_rows; ++r) {
    for (size_t c = 0; c < shown_cols; ++c) {
      const int len = std::snprintf(buf, sizeof(buf), "%9.4f ", At(r, c));
      out.append(buf, static_cast<size_t>(len));
    }
    if (cols_ > max_cols) out += "...";
    out += "\n";
  }
  if (rows_ > max_rows) out += "...\n";
  return out;
}

namespace {

std::atomic<bool> g_fused_kernels{true};

// ---------------------------------------------------------------------------
// Blocked GEMM kernels.
//
// Tiling scheme (DESIGN.md "Kernels"): the output is walked in MR x NR
// register tiles accumulated with std::fma; panels of KC reduction steps and
// NC output columns keep the streamed operand resident in L2. Output rows
// are partitioned across the deterministic thread pool; each worker owns a
// disjoint contiguous row range, and every output element is accumulated in
// a fixed order regardless of blocking or thread count, so results are
// bit-identical to the serial kernel (enforced by matrix_test /
// fused_kernels_test).
// ---------------------------------------------------------------------------

constexpr size_t kMR = 8;    // Micro-tile rows (accumulator rows).
constexpr size_t kNR = 32;   // Micro-tile cols (two AVX-512 vectors).
constexpr size_t kKC = 256;  // Reduction panel length.
constexpr size_t kNC = 256;  // Output-column panel width.

// Engage the pool only when a GEMM has enough arithmetic to amortize the
// wake-up; below this it runs inline on the caller.
constexpr double kParallelMinFlops = 1.5e6;

// MR x nr output tile: acc = beta-term (first panel) or the partial result
// already stored in c, then acc = fma(alpha * a_elem, b_elem, acc) for
// p in [p0, p1) ascending; stores acc back to c. `kTransA` selects whether
// the a element for (row r, step p) is a[p * lda + r] (a^T) or
// a[r * lda + p]. fp32 stores between panels do not round, so panel splits
// never change the per-element chain.
template <size_t MR, bool kTransA>
void MicroTile(const KernelOps& ops, const float* __restrict a, size_t lda,
               const float* __restrict b, size_t ldb, float* __restrict c,
               size_t ldc, size_t nr, size_t p0, size_t p1, float alpha,
               float beta, bool first_panel) {
  float acc[MR][kNR];
  if (first_panel && beta == 0.0f) {
    for (size_t r = 0; r < MR; ++r) {
      for (size_t j = 0; j < nr; ++j) acc[r][j] = 0.0f;
    }
  } else if (first_panel && beta != 1.0f) {
    for (size_t r = 0; r < MR; ++r) {
      for (size_t j = 0; j < nr; ++j) acc[r][j] = beta * c[r * ldc + j];
    }
  } else {
    for (size_t r = 0; r < MR; ++r) {
      for (size_t j = 0; j < nr; ++j) acc[r][j] = c[r * ldc + j];
    }
  }

  if (nr == kNR) {
    if constexpr (MR == kMR) {
      // Full 8 x 32 tile: the dispatched kernel (scalar or AVX2, identical
      // per-element fma chains — nn/kernels.h) runs the accumulation.
      ops.tile8x32(&acc[0][0], a, kTransA ? 1 : lda, kTransA ? lda : 1, b,
                   ldb, p0, p1, alpha);
    } else {
      // Full-width edge tile: constant trip count so the j loops vectorize.
      for (size_t p = p0; p < p1; ++p) {
        const float* __restrict brow = b + p * ldb;
        float av[MR];
        for (size_t r = 0; r < MR; ++r) {
          av[r] = alpha * (kTransA ? a[p * lda + r] : a[r * lda + p]);
        }
        for (size_t r = 0; r < MR; ++r) {
          for (size_t j = 0; j < kNR; ++j) {
            acc[r][j] = std::fma(av[r], brow[j], acc[r][j]);
          }
        }
      }
    }
  } else {
    for (size_t p = p0; p < p1; ++p) {
      const float* __restrict brow = b + p * ldb;
      float av[MR];
      for (size_t r = 0; r < MR; ++r) {
        av[r] = alpha * (kTransA ? a[p * lda + r] : a[r * lda + p]);
      }
      for (size_t r = 0; r < MR; ++r) {
        for (size_t j = 0; j < nr; ++j) {
          acc[r][j] = std::fma(av[r], brow[j], acc[r][j]);
        }
      }
    }
  }

  for (size_t r = 0; r < MR; ++r) {
    for (size_t j = 0; j < nr; ++j) c[r * ldc + j] = acc[r][j];
  }
}

// Runs the blocked kernel over output rows [i0, i1). `a_row_stride` /
// `a_step_stride` express the a-element address as
// a[row * a_row_stride + p * a_step_stride].
template <bool kTransA>
void GemmRowRange(const KernelOps& ops, const float* a, size_t lda,
                  const float* b, size_t ldb, float* c, size_t ldc, size_t i0,
                  size_t i1, size_t k, size_t n, float alpha, float beta) {
  for (size_t jc = 0; jc < n; jc += kNC) {
    const size_t jc_end = std::min(jc + kNC, n);
    for (size_t pc = 0; pc < k; pc += kKC) {
      const size_t pc_end = std::min(pc + kKC, k);
      const bool first_panel = (pc == 0);
      size_t i = i0;
      while (i < i1) {
        const size_t left = i1 - i;
        const size_t mr = left >= 8 ? 8 : left >= 4 ? 4 : left >= 2 ? 2 : 1;
        const float* a_tile = kTransA ? a + i : a + i * lda;
        for (size_t j = jc; j < jc_end; j += kNR) {
          const size_t nr = std::min(kNR, jc_end - j);
          float* c_tile = c + i * ldc + j;
          const float* b_tile = b + j;
          switch (mr) {
            case 8:
              MicroTile<8, kTransA>(ops, a_tile, lda, b_tile, ldb, c_tile,
                                    ldc, nr, pc, pc_end, alpha, beta,
                                    first_panel);
              break;
            case 4:
              MicroTile<4, kTransA>(ops, a_tile, lda, b_tile, ldb, c_tile,
                                    ldc, nr, pc, pc_end, alpha, beta,
                                    first_panel);
              break;
            case 2:
              MicroTile<2, kTransA>(ops, a_tile, lda, b_tile, ldb, c_tile,
                                    ldc, nr, pc, pc_end, alpha, beta,
                                    first_panel);
              break;
            default:
              MicroTile<1, kTransA>(ops, a_tile, lda, b_tile, ldb, c_tile,
                                    ldc, nr, pc, pc_end, alpha, beta,
                                    first_panel);
          }
        }
        i += mr;
      }
    }
  }
}

// Partitions output rows [0, m) across the pool when the problem is big
// enough; each chunk is a pure function of (m, chunks), and chunks only
// bound how work is split — per-element accumulation order never depends on
// the partition.
template <bool kTransA>
void GemmBlocked(const float* a, size_t lda, const float* b, size_t ldb,
                 float* c, size_t ldc, size_t m, size_t k, size_t n,
                 float alpha, float beta) {
  if (m == 0 || n == 0) return;
  const KernelOps& ops = Kernels();  // Resolve the tier once per GEMM.
  if (k == 0) {
    // Pure beta scaling; no reduction panels to run.
    for (size_t i = 0; i < m; ++i) {
      float* row = c + i * ldc;
      for (size_t j = 0; j < n; ++j) {
        row[j] = beta == 0.0f ? 0.0f : beta * row[j];
      }
    }
    return;
  }
  const double flops = 2.0 * static_cast<double>(m) * k * n;
  const int threads = GetNumThreads();
  if (flops < kParallelMinFlops || threads <= 1 || m < 2 * kMR ||
      ThreadPool::InParallelRegion()) {
    GemmRowRange<kTransA>(ops, a, lda, b, ldb, c, ldc, 0, m, k, n, alpha,
                          beta);
    return;
  }
  const size_t chunks =
      std::min<size_t>(static_cast<size_t>(threads), (m + kMR - 1) / kMR);
  ParallelFor(0, chunks, 1, [&](size_t chunk) {
    const size_t i0 = (m * chunk) / chunks;
    const size_t i1 = (m * (chunk + 1)) / chunks;
    GemmRowRange<kTransA>(ops, a, lda, b, ldb, c, ldc, i0, i1, k, n, alpha,
                          beta);
  });
}

// ---------------------------------------------------------------------------
// GemmTransB: out(i, j) = dot(a row i, b row j) — both contiguous — so the
// reduction runs along the fast dimension and is lane-split 8 ways with a
// fixed in-order lane reduction, making every TransB path (tiled or not,
// any thread count) produce identical bits. Tiles of `kIT` a-rows share
// each streamed b row.
// ---------------------------------------------------------------------------

constexpr size_t kIT = 4;  // a-rows sharing one b-row stream.

// The lane-split dot kernels every TransB path reduces with now live in the
// dispatch table (nn/kernels.h dot / dot4): 8 fp32 partial-sum lanes with an
// in-order tail and combine, identical bits on every tier. The 4-row tiled
// variant reduces each element exactly like the single-row dot, so tiling
// rows cannot change bits.

// Segment chain shared by every TransB path: v = beta-term, then
// v = fma(alpha, dot_segment, v) per consecutive k-segment — exactly the
// chain produced by separate beta=1 calls, which is what makes fused packed
// matmuls bit-identical to per-gate ones.
void TransBRange(const KernelOps& ops, const float* a, size_t lda,
                 const float* b, size_t ldb, float* c, size_t ldc, size_t i0,
                 size_t i1, size_t j0, size_t j1, size_t k, float alpha,
                 float beta, size_t segment) {
  const size_t nseg = k / segment;
  size_t i = i0;
  while (i < i1) {
    const size_t it = std::min<size_t>(kIT, i1 - i);
    const float* xs[kIT];
    for (size_t t = 0; t < it; ++t) xs[t] = a + (i + t) * lda;
    for (size_t j = j0; j < j1; ++j) {
      const float* brow = b + j * ldb;
      float v[kIT];
      for (size_t t = 0; t < it; ++t) {
        float* cv = c + (i + t) * ldc + j;
        v[t] = beta == 0.0f ? 0.0f : beta * *cv;
      }
      for (size_t s = 0; s < nseg; ++s) {
        const size_t off = s * segment;
        float dots[kIT];
        if (it == kIT) {
          ops.dot4(xs[0] + off, xs[1] + off, xs[2] + off, xs[3] + off,
                   brow + off, segment, dots);
        } else {
          for (size_t t = 0; t < it; ++t) {
            dots[t] = ops.dot(xs[t] + off, brow + off, segment);
          }
        }
        for (size_t t = 0; t < it; ++t) {
          v[t] = std::fma(alpha, dots[t], v[t]);
        }
      }
      for (size_t t = 0; t < it; ++t) c[(i + t) * ldc + j] = v[t];
    }
    i += it;
  }
}

}  // namespace

void GemmV(ConstMatrixView a, ConstMatrixView b, MatrixView out, float alpha,
           float beta) {
  const size_t m = a.rows, k = a.cols, n = b.cols;
  T2VEC_CHECK(b.rows == k);
  T2VEC_CHECK(out.rows == m && out.cols == n);
  GemmBlocked<false>(a.data, a.ld, b.data, b.ld, out.data, out.ld, m, k, n,
                     alpha, beta);
}

void GemmTransAV(ConstMatrixView a, ConstMatrixView b, MatrixView out,
                 float alpha, float beta) {
  // out (m x n) = a^T * b, a: k x m, b: k x n.
  const size_t k = a.rows, m = a.cols, n = b.cols;
  T2VEC_CHECK(b.rows == k);
  T2VEC_CHECK(out.rows == m && out.cols == n);
  GemmBlocked<true>(a.data, a.ld, b.data, b.ld, out.data, out.ld, m, k, n,
                    alpha, beta);
}

void GemmTransBV(ConstMatrixView a, ConstMatrixView b, MatrixView out,
                 float alpha, float beta, size_t segment) {
  // out (m x n) = a * b^T, a: m x k, b: n x k.
  const size_t m = a.rows, k = a.cols, n = b.rows;
  T2VEC_CHECK(b.cols == k);
  T2VEC_CHECK(out.rows == m && out.cols == n);
  if (m == 0 || n == 0) return;
  if (segment == 0 || segment >= k) {
    segment = std::max<size_t>(k, 1);
  } else {
    T2VEC_CHECK(k % segment == 0);
  }
  if (k == 0) {
    for (size_t i = 0; i < m; ++i) {
      float* row = out.data + i * out.ld;
      for (size_t j = 0; j < n; ++j) {
        row[j] = beta == 0.0f ? 0.0f : beta * row[j];
      }
    }
    return;
  }

  const KernelOps& ops = Kernels();  // Resolve the tier once per GEMM.
  const double flops = 2.0 * static_cast<double>(m) * k * n;
  const int threads = GetNumThreads();
  if (flops < kParallelMinFlops || threads <= 1 ||
      ThreadPool::InParallelRegion()) {
    TransBRange(ops, a.data, a.ld, b.data, b.ld, out.data, out.ld, 0, m, 0, n,
                k, alpha, beta, segment);
    return;
  }
  // Split whichever output dimension is larger; either way each element is
  // computed entirely by one worker, so the partition cannot change bits.
  if (m >= n) {
    const size_t chunks =
        std::min<size_t>(static_cast<size_t>(threads), (m + kIT - 1) / kIT);
    ParallelFor(0, chunks, 1, [&](size_t chunk) {
      const size_t i0 = (m * chunk) / chunks;
      const size_t i1 = (m * (chunk + 1)) / chunks;
      TransBRange(ops, a.data, a.ld, b.data, b.ld, out.data, out.ld, i0, i1,
                  0, n, k, alpha, beta, segment);
    });
  } else {
    const size_t chunks = std::min<size_t>(static_cast<size_t>(threads), n);
    ParallelFor(0, chunks, 1, [&](size_t chunk) {
      const size_t j0 = (n * chunk) / chunks;
      const size_t j1 = (n * (chunk + 1)) / chunks;
      TransBRange(ops, a.data, a.ld, b.data, b.ld, out.data, out.ld, 0, m,
                  j0, j1, k, alpha, beta, segment);
    });
  }
}

void Gemm(const Matrix& a, const Matrix& b, Matrix* out, float alpha,
          float beta) {
  GemmV(a, b, MatrixView(*out), alpha, beta);
}

void GemmTransA(const Matrix& a, const Matrix& b, Matrix* out, float alpha,
                float beta) {
  GemmTransAV(a, b, MatrixView(*out), alpha, beta);
}

void GemmTransB(const Matrix& a, const Matrix& b, Matrix* out, float alpha,
                float beta) {
  GemmTransBV(a, b, MatrixView(*out), alpha, beta);
}

void SetFusedKernels(bool on) { g_fused_kernels.store(on); }

bool FusedKernelsEnabled() { return g_fused_kernels.load(); }

void AddInPlace(Matrix* out, const Matrix& a) {
  T2VEC_CHECK(SameShape(*out, a));
  float* __restrict o = out->data();
  const float* __restrict x = a.data();
  const size_t n = a.size();
  for (size_t i = 0; i < n; ++i) o[i] += x[i];
}

void Add(const Matrix& a, const Matrix& b, Matrix* out) {
  T2VEC_CHECK(SameShape(a, b));
  out->Resize(a.rows(), a.cols());
  const float* __restrict x = a.data();
  const float* __restrict y = b.data();
  float* __restrict o = out->data();
  const size_t n = a.size();
  for (size_t i = 0; i < n; ++i) o[i] = x[i] + y[i];
}

void Axpy(float scale, const Matrix& a, Matrix* out) {
  T2VEC_CHECK(SameShape(*out, a));
  float* __restrict o = out->data();
  const float* __restrict x = a.data();
  const size_t n = a.size();
  for (size_t i = 0; i < n; ++i) o[i] += scale * x[i];
}

void Scale(Matrix* out, float scale) {
  float* __restrict o = out->data();
  const size_t n = out->size();
  for (size_t i = 0; i < n; ++i) o[i] *= scale;
}

void AddRowBroadcast(Matrix* out, const Matrix& bias) {
  T2VEC_CHECK(bias.rows() == 1 && bias.cols() == out->cols());
  const float* __restrict b = bias.data();
  const size_t n = out->cols();
  for (size_t r = 0; r < out->rows(); ++r) {
    float* __restrict o = out->Row(r);
    for (size_t j = 0; j < n; ++j) o[j] += b[j];
  }
}

void SumRowsIntoV(ConstMatrixView grad, Matrix* bias_grad) {
  T2VEC_CHECK(bias_grad->rows() == 1 && bias_grad->cols() == grad.cols);
  float* __restrict b = bias_grad->data();
  const size_t n = grad.cols;
  for (size_t r = 0; r < grad.rows; ++r) {
    const float* __restrict g = grad.Row(r);
    for (size_t j = 0; j < n; ++j) b[j] += g[j];
  }
}

void SumRowsInto(const Matrix& grad, Matrix* bias_grad) {
  SumRowsIntoV(grad, bias_grad);
}

void Hadamard(const Matrix& a, const Matrix& b, Matrix* out) {
  T2VEC_CHECK(SameShape(a, b));
  out->Resize(a.rows(), a.cols());
  const float* __restrict x = a.data();
  const float* __restrict y = b.data();
  float* __restrict o = out->data();
  const size_t n = a.size();
  for (size_t i = 0; i < n; ++i) o[i] = x[i] * y[i];
}

void HadamardAccum(const Matrix& a, const Matrix& b, Matrix* out) {
  T2VEC_CHECK(SameShape(a, b));
  T2VEC_CHECK(SameShape(a, *out));
  const float* __restrict x = a.data();
  const float* __restrict y = b.data();
  float* __restrict o = out->data();
  const size_t n = a.size();
  for (size_t i = 0; i < n; ++i) o[i] += x[i] * y[i];
}

double Dot(const Matrix& a, const Matrix& b) {
  T2VEC_CHECK(SameShape(a, b));
  return Kernels().dot_f64(a.data(), b.data(), a.size());
}

float MaxAbsDiff(const Matrix& a, const Matrix& b) {
  T2VEC_CHECK(SameShape(a, b));
  float max_diff = 0.0f;
  for (size_t i = 0; i < a.size(); ++i) {
    max_diff = std::max(max_diff, std::fabs(a.data()[i] - b.data()[i]));
  }
  return max_diff;
}

}  // namespace t2vec::nn
