#include "nn/matrix.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace t2vec::nn {

double Matrix::SquaredNorm() const {
  double total = 0.0;
  for (float x : data_) total += static_cast<double>(x) * x;
  return total;
}

std::string Matrix::ToString(size_t max_rows, size_t max_cols) const {
  std::string out = "[" + std::to_string(rows_) + " x " +
                    std::to_string(cols_) + "]\n";
  char buf[32];
  for (size_t r = 0; r < std::min(rows_, max_rows); ++r) {
    for (size_t c = 0; c < std::min(cols_, max_cols); ++c) {
      std::snprintf(buf, sizeof(buf), "%9.4f ", At(r, c));
      out += buf;
    }
    if (cols_ > max_cols) out += "...";
    out += "\n";
  }
  if (rows_ > max_rows) out += "...\n";
  return out;
}

namespace {

// Inner kernel: out_row (n) += a_val * b_row (n). The compiler vectorizes
// this loop; keeping it tiny and restrict-qualified is what makes the
// single-core training loop feasible.
inline void AxpyRow(float a_val, const float* __restrict b_row,
                    float* __restrict out_row, size_t n) {
  for (size_t j = 0; j < n; ++j) out_row[j] += a_val * b_row[j];
}

}  // namespace

void Gemm(const Matrix& a, const Matrix& b, Matrix* out, float alpha,
          float beta) {
  const size_t m = a.rows(), k = a.cols(), n = b.cols();
  T2VEC_CHECK(b.rows() == k);
  T2VEC_CHECK(out->rows() == m && out->cols() == n);
  if (beta == 0.0f) {
    out->SetZero();
  } else if (beta != 1.0f) {
    Scale(out, beta);
  }
  // i-k-j loop order: streams through b and out rows contiguously.
  for (size_t i = 0; i < m; ++i) {
    const float* a_row = a.Row(i);
    float* out_row = out->Row(i);
    for (size_t p = 0; p < k; ++p) {
      const float scaled = alpha * a_row[p];
      if (scaled != 0.0f) AxpyRow(scaled, b.Row(p), out_row, n);
    }
  }
}

void GemmTransA(const Matrix& a, const Matrix& b, Matrix* out, float alpha,
                float beta) {
  // out (m x n) = a^T (m x k_rows) ... a: k x m, b: k x n.
  const size_t k = a.rows(), m = a.cols(), n = b.cols();
  T2VEC_CHECK(b.rows() == k);
  T2VEC_CHECK(out->rows() == m && out->cols() == n);
  if (beta == 0.0f) {
    out->SetZero();
  } else if (beta != 1.0f) {
    Scale(out, beta);
  }
  // For each shared row p of a and b: out[i, :] += a[p, i] * b[p, :].
  for (size_t p = 0; p < k; ++p) {
    const float* a_row = a.Row(p);
    const float* b_row = b.Row(p);
    for (size_t i = 0; i < m; ++i) {
      const float scaled = alpha * a_row[i];
      if (scaled != 0.0f) AxpyRow(scaled, b_row, out->Row(i), n);
    }
  }
}

namespace {

// Dot product with 8 independent accumulator lanes so the compiler can
// vectorize the reduction without reassociation flags.
inline float DotLanes(const float* __restrict x, const float* __restrict y,
                      size_t k) {
  float lanes[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  size_t p = 0;
  for (; p + 8 <= k; p += 8) {
    for (size_t l = 0; l < 8; ++l) lanes[l] += x[p + l] * y[p + l];
  }
  float acc = 0.0f;
  for (; p < k; ++p) acc += x[p] * y[p];
  return acc + ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) +
         ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
}

}  // namespace

void GemmTransB(const Matrix& a, const Matrix& b, Matrix* out, float alpha,
                float beta) {
  // out (m x n) = a (m x k) * b^T, b: n x k.
  const size_t m = a.rows(), k = a.cols(), n = b.rows();
  T2VEC_CHECK(b.cols() == k);
  T2VEC_CHECK(out->rows() == m && out->cols() == n);
  for (size_t i = 0; i < m; ++i) {
    const float* a_row = a.Row(i);
    float* out_row = out->Row(i);
    for (size_t j = 0; j < n; ++j) {
      const float acc = DotLanes(a_row, b.Row(j), k);
      out_row[j] =
          alpha * acc + (beta == 0.0f ? 0.0f : beta * out_row[j]);
    }
  }
}

void AddInPlace(Matrix* out, const Matrix& a) {
  T2VEC_CHECK(SameShape(*out, a));
  float* __restrict o = out->data();
  const float* __restrict x = a.data();
  const size_t n = a.size();
  for (size_t i = 0; i < n; ++i) o[i] += x[i];
}

void Add(const Matrix& a, const Matrix& b, Matrix* out) {
  T2VEC_CHECK(SameShape(a, b));
  out->Resize(a.rows(), a.cols());
  const float* __restrict x = a.data();
  const float* __restrict y = b.data();
  float* __restrict o = out->data();
  const size_t n = a.size();
  for (size_t i = 0; i < n; ++i) o[i] = x[i] + y[i];
}

void Axpy(float scale, const Matrix& a, Matrix* out) {
  T2VEC_CHECK(SameShape(*out, a));
  float* __restrict o = out->data();
  const float* __restrict x = a.data();
  const size_t n = a.size();
  for (size_t i = 0; i < n; ++i) o[i] += scale * x[i];
}

void Scale(Matrix* out, float scale) {
  float* __restrict o = out->data();
  const size_t n = out->size();
  for (size_t i = 0; i < n; ++i) o[i] *= scale;
}

void AddRowBroadcast(Matrix* out, const Matrix& bias) {
  T2VEC_CHECK(bias.rows() == 1 && bias.cols() == out->cols());
  const float* __restrict b = bias.data();
  const size_t n = out->cols();
  for (size_t r = 0; r < out->rows(); ++r) {
    float* __restrict o = out->Row(r);
    for (size_t j = 0; j < n; ++j) o[j] += b[j];
  }
}

void SumRowsInto(const Matrix& grad, Matrix* bias_grad) {
  T2VEC_CHECK(bias_grad->rows() == 1 && bias_grad->cols() == grad.cols());
  float* __restrict b = bias_grad->data();
  const size_t n = grad.cols();
  for (size_t r = 0; r < grad.rows(); ++r) {
    const float* __restrict g = grad.Row(r);
    for (size_t j = 0; j < n; ++j) b[j] += g[j];
  }
}

void Hadamard(const Matrix& a, const Matrix& b, Matrix* out) {
  T2VEC_CHECK(SameShape(a, b));
  out->Resize(a.rows(), a.cols());
  const float* __restrict x = a.data();
  const float* __restrict y = b.data();
  float* __restrict o = out->data();
  const size_t n = a.size();
  for (size_t i = 0; i < n; ++i) o[i] = x[i] * y[i];
}

void HadamardAccum(const Matrix& a, const Matrix& b, Matrix* out) {
  T2VEC_CHECK(SameShape(a, b));
  T2VEC_CHECK(SameShape(a, *out));
  const float* __restrict x = a.data();
  const float* __restrict y = b.data();
  float* __restrict o = out->data();
  const size_t n = a.size();
  for (size_t i = 0; i < n; ++i) o[i] += x[i] * y[i];
}

double Dot(const Matrix& a, const Matrix& b) {
  T2VEC_CHECK(SameShape(a, b));
  double acc = 0.0;
  const float* x = a.data();
  const float* y = b.data();
  for (size_t i = 0; i < a.size(); ++i) {
    acc += static_cast<double>(x[i]) * y[i];
  }
  return acc;
}

float MaxAbsDiff(const Matrix& a, const Matrix& b) {
  T2VEC_CHECK(SameShape(a, b));
  float max_diff = 0.0f;
  for (size_t i = 0; i < a.size(); ++i) {
    max_diff = std::max(max_diff, std::fabs(a.data()[i] - b.data()[i]));
  }
  return max_diff;
}

}  // namespace t2vec::nn
