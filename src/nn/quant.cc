#include "nn/quant.h"

#include <cmath>

#include "common/macros.h"
#include "common/thread_pool.h"
#include "nn/kernels.h"
#include "nn/ops.h"

namespace t2vec::nn {

namespace {

// Row-scan grain for the quantized GEMM: one output row (H int8 dots) is
// already substantial work, so split fine.
constexpr size_t kQGemmGrain = 1;

// Quantizes `n` floats at stride `stride` into q with the row's symmetric
// scale. Shared by weight (column walk) and activation (row walk) paths so
// both use the same lrintf rounding.
float QuantizeStrided(const float* x, size_t n, size_t stride, int8_t* q) {
  float max_abs = 0.0f;
  for (size_t i = 0; i < n; ++i) {
    const float a = std::fabs(x[i * stride]);
    if (a > max_abs) max_abs = a;
  }
  if (max_abs == 0.0f) {
    for (size_t i = 0; i < n; ++i) q[i] = 0;
    return 0.0f;
  }
  const float scale = max_abs / 127.0f;
  const float inv = 127.0f / max_abs;
  for (size_t i = 0; i < n; ++i) {
    // lrintf never leaves [-127, 127] here because |x| <= max_abs.
    q[i] = static_cast<int8_t>(std::lrintf(x[i * stride] * inv));
  }
  return scale;
}

// h_out = m ⊙ h_new + (1 - m) ⊙ h_prev (same as gru.cc's ApplyMask).
void ApplyMask(const std::vector<float>& mask, const Matrix& h_new,
               const Matrix& h_prev, Matrix* h_out) {
  h_out->Resize(h_new.rows(), h_new.cols());
  const size_t n = h_new.cols();
  for (size_t b = 0; b < h_new.rows(); ++b) {
    const float m = mask[b];
    const float* __restrict hn = h_new.Row(b);
    const float* __restrict hp = h_prev.Row(b);
    float* __restrict ho = h_out->Row(b);
    for (size_t j = 0; j < n; ++j) ho[j] = m * hn[j] + (1.0f - m) * hp[j];
  }
}

}  // namespace

QuantizedMatrix QuantizeTransposed(ConstMatrixView w) {
  QuantizedMatrix out;
  AppendTransposed(w, &out);
  return out;
}

void AppendTransposed(ConstMatrixView w, QuantizedMatrix* dst) {
  if (dst->rows == 0) {
    dst->cols = w.rows;
  } else {
    T2VEC_CHECK(dst->cols == w.rows);
  }
  const size_t first = dst->rows;
  dst->rows += w.cols;
  dst->data.resize(dst->rows * dst->cols);
  dst->scales.resize(dst->rows);
  for (size_t c = 0; c < w.cols; ++c) {
    // Output channel c of w is column c: elements w[k][c], stride w.ld.
    dst->scales[first + c] = QuantizeStrided(
        w.data + c, w.rows, w.ld, dst->data.data() + (first + c) * dst->cols);
  }
}

void QuantizeRowsDynamic(ConstMatrixView x, std::vector<int8_t>* q,
                         std::vector<float>* scales) {
  q->resize(x.rows * x.cols);
  scales->resize(x.rows);
  for (size_t i = 0; i < x.rows; ++i) {
    (*scales)[i] = QuantizeStrided(x.Row(i), x.cols, 1,
                                   q->data() + i * x.cols);
  }
}

void QuantizedGemmTransB(const int8_t* qx, const float* sx, size_t m,
                         const QuantizedMatrix& qw, MatrixView out,
                         bool accumulate, const float* bias) {
  T2VEC_CHECK(out.rows == m && out.cols == qw.rows);
  const KernelOps& ops = Kernels();
  const size_t k = qw.cols;
  const size_t n = qw.rows;
  ParallelFor(0, m, kQGemmGrain, [&](size_t i) {
    const int8_t* __restrict xrow = qx + i * k;
    const float s_row = sx[i];
    float* __restrict orow = out.Row(i);
    for (size_t j = 0; j < n; ++j) {
      // Fixed per-element fp chain: exact int32 dot, one combined scale,
      // one fma into the (optional) accumulator, one bias add.
      const float dotf =
          static_cast<float>(ops.dot_i8(xrow, qw.Row(j), k));
      const float scale = s_row * qw.scales[j];
      float v = accumulate ? std::fma(scale, dotf, orow[j]) : scale * dotf;
      if (bias != nullptr) v += bias[j];
      orow[j] = v;
    }
  });
}

QuantizedGruLayer::QuantizedGruLayer(const GruLayer& layer) {
  const GruLayer::WeightRefs w = layer.Weights();
  // Channel order [c | z | r] matches the fused fp32 path's pre3 layout.
  AppendTransposed(*w.wc, &w_pack_);
  AppendTransposed(*w.wz, &w_pack_);
  AppendTransposed(*w.wr, &w_pack_);
  AppendTransposed(*w.uz, &u_pack_);
  AppendTransposed(*w.ur, &u_pack_);
  uc_ = QuantizeTransposed(*w.uc);
  bz_ = *w.bz;
  br_ = *w.br;
  bc_ = *w.bc;
}

void QuantizedGruLayer::Forward(const std::vector<Matrix>& xs,
                                const std::vector<std::vector<float>>& masks,
                                std::vector<Matrix>* hs) const {
  const size_t steps = xs.size();
  const size_t dim = hidden();
  T2VEC_CHECK(masks.empty() || masks.size() == steps);
  hs->resize(steps);
  if (steps == 0) return;
  const size_t batch = xs[0].rows();

  const Matrix h0(batch, dim, 0.0f);
  Matrix pre3(batch, 3 * dim);
  Matrix z(batch, dim), r(batch, dim), c(batch, dim), rh(batch, dim);
  Matrix h_raw(batch, dim);
  std::vector<int8_t> qbuf;
  std::vector<float> sbuf;

  for (size_t t = 0; t < steps; ++t) {
    const Matrix& x = xs[t];
    const Matrix& h_prev = (t == 0) ? h0 : (*hs)[t - 1];
    T2VEC_CHECK(x.rows() == batch && x.cols() == in_dim());

    // [pre_c | pre_z | pre_r] = deq(q(x) · qW^T); then the z/r blocks get
    // the hidden term and the c block the (r ⊙ h⁻) term, mirroring the
    // fused fp32 gate structure in GruLayer::Forward.
    QuantizeRowsDynamic(x, &qbuf, &sbuf);
    QuantizedGemmTransB(qbuf.data(), sbuf.data(), batch, w_pack_,
                        MatrixView(pre3), /*accumulate=*/false, nullptr);
    QuantizeRowsDynamic(h_prev, &qbuf, &sbuf);
    QuantizedGemmTransB(qbuf.data(), sbuf.data(), batch, u_pack_,
                        ColBlock(&pre3, dim, 2 * dim), /*accumulate=*/true,
                        nullptr);

    AddRowBroadcastV(ColBlock(&pre3, dim, dim), bz_);
    SigmoidV(ColBlock(pre3, dim, dim), MatrixView(z));
    AddRowBroadcastV(ColBlock(&pre3, 2 * dim, dim), br_);
    SigmoidV(ColBlock(pre3, 2 * dim, dim), MatrixView(r));

    Hadamard(r, h_prev, &rh);
    QuantizeRowsDynamic(rh, &qbuf, &sbuf);
    QuantizedGemmTransB(qbuf.data(), sbuf.data(), batch, uc_,
                        ColBlock(&pre3, 0, dim), /*accumulate=*/true, nullptr);
    AddRowBroadcastV(ColBlock(&pre3, 0, dim), bc_);
    TanhV(ColBlock(pre3, 0, dim), MatrixView(c));

    // h_raw = (1 - z) ⊙ h_prev + z ⊙ c
    for (size_t b = 0; b < batch; ++b) {
      const float* __restrict zv = z.Row(b);
      const float* __restrict cv = c.Row(b);
      const float* __restrict hp = h_prev.Row(b);
      float* __restrict hr = h_raw.Row(b);
      for (size_t j = 0; j < dim; ++j) {
        hr[j] = (1.0f - zv[j]) * hp[j] + zv[j] * cv[j];
      }
    }

    if (masks.empty()) {
      (*hs)[t] = h_raw;
    } else {
      ApplyMask(masks[t], h_raw, h_prev, &(*hs)[t]);
    }
  }
}

QuantizedGru::QuantizedGru(const Gru& gru) {
  layers_.reserve(gru.layers());
  for (size_t l = 0; l < gru.layers(); ++l) {
    layers_.emplace_back(gru.layer(l));
  }
}

void QuantizedGru::Forward(const std::vector<Matrix>& xs,
                           const std::vector<std::vector<float>>& masks,
                           Matrix* final_h) const {
  std::vector<Matrix> cur;
  const std::vector<Matrix>* input = &xs;
  std::vector<Matrix> next;
  for (size_t l = 0; l < layers_.size(); ++l) {
    layers_[l].Forward(*input, masks, &next);
    cur = std::move(next);
    next.clear();
    input = &cur;
  }
  T2VEC_CHECK(!cur.empty());
  *final_h = cur.back();
}

}  // namespace t2vec::nn
