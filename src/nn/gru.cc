#include "nn/gru.h"

#include <cstring>

#include "nn/ops.h"

namespace t2vec::nn {

namespace {

// h_out = m ⊙ h_new + (1 - m) ⊙ h_prev, mask broadcast across columns.
void ApplyMask(const std::vector<float>& mask, const Matrix& h_new,
               const Matrix& h_prev, Matrix* h_out) {
  h_out->Resize(h_new.rows(), h_new.cols());
  const size_t n = h_new.cols();
  for (size_t b = 0; b < h_new.rows(); ++b) {
    const float m = mask[b];
    const float* __restrict hn = h_new.Row(b);
    const float* __restrict hp = h_prev.Row(b);
    float* __restrict ho = h_out->Row(b);
    for (size_t j = 0; j < n; ++j) ho[j] = m * hn[j] + (1.0f - m) * hp[j];
  }
}

// Copies the columns of each source side by side into `dst`
// (rows x sum-of-cols). Bitwise copies: packing/unpacking never rounds.
void PackColumns(std::initializer_list<const Matrix*> srcs, Matrix* dst) {
  size_t total = 0;
  const size_t rows = (*srcs.begin())->rows();
  for (const Matrix* s : srcs) total += s->cols();
  dst->Resize(rows, total);
  for (size_t r = 0; r < rows; ++r) {
    float* out = dst->Row(r);
    for (const Matrix* s : srcs) {
      std::memcpy(out, s->Row(r), s->cols() * sizeof(float));
      out += s->cols();
    }
  }
}

// Inverse of PackColumns.
void UnpackColumns(const Matrix& src, std::initializer_list<Matrix*> dsts) {
  for (size_t r = 0; r < src.rows(); ++r) {
    const float* in = src.Row(r);
    for (Matrix* d : dsts) {
      std::memcpy(d->Row(r), in, d->cols() * sizeof(float));
      in += d->cols();
    }
  }
}

}  // namespace

GruLayer::GruLayer(const std::string& name, size_t in_dim, size_t hidden,
                   Rng& rng)
    : wz_(name + ".Wz", in_dim, hidden),
      wr_(name + ".Wr", in_dim, hidden),
      wc_(name + ".Wc", in_dim, hidden),
      uz_(name + ".Uz", hidden, hidden),
      ur_(name + ".Ur", hidden, hidden),
      uc_(name + ".Uc", hidden, hidden),
      bz_(name + ".bz", 1, hidden),
      br_(name + ".br", 1, hidden),
      bc_(name + ".bc", 1, hidden),
      packs_(std::make_unique<PackCache>()) {
  InitXavier(&wz_.value, rng);
  InitXavier(&wr_.value, rng);
  InitXavier(&wc_.value, rng);
  InitXavier(&uz_.value, rng);
  InitXavier(&ur_.value, rng);
  InitXavier(&uc_.value, rng);
}

void GruLayer::RefreshPacks() const {
  PackCache& pc = *packs_;
  const uint64_t version = ParamVersion();
  if (pc.version.load(std::memory_order_acquire) == version) return;
  sync::MutexLock lock(&pc.mu);
  if (pc.version.load(std::memory_order_relaxed) == version) return;
  PackColumns({&wc_.value, &wz_.value, &wr_.value}, &pc.w_pack);
  PackColumns({&uz_.value, &ur_.value}, &pc.u_pack);
  pc.version.store(version, std::memory_order_release);
}

void GruLayer::Forward(const std::vector<Matrix>& xs, const Matrix& h0,
                       const std::vector<std::vector<float>>& masks,
                       GruCache* cache) const {
  const size_t steps = xs.size();
  const size_t batch = h0.rows();
  const size_t dim = hidden();
  T2VEC_CHECK(h0.cols() == dim);
  T2VEC_CHECK(masks.empty() || masks.size() == steps);

  cache->z.resize(steps);
  cache->r.resize(steps);
  cache->c.resize(steps);
  cache->rh.resize(steps);
  cache->h.resize(steps);

  const bool fused = FusedKernelsEnabled();
  if (fused) RefreshPacks();
  const PackCache& pc = *packs_;

  Matrix pre3;                // Fused: all three pre-activations, B x 3H.
  Matrix pre(batch, dim);     // Unfused: reused per-gate buffer.
  Matrix h_raw(batch, dim);   // Pre-mask new hidden.
  if (fused) pre3.Resize(batch, 3 * dim);

  for (size_t t = 0; t < steps; ++t) {
    const Matrix& x = xs[t];
    const Matrix& h_prev = (t == 0) ? h0 : cache->h[t - 1];
    T2VEC_CHECK(x.rows() == batch && x.cols() == in_dim());

    if (fused) {
      // [pre_c | pre_z | pre_r] = x [Wc|Wz|Wr]; then the z/r blocks get the
      // hidden-state term in one GEMM over [Uz|Ur]. Identical per-element
      // accumulation chains as the per-gate calls below (nn/matrix.h).
      GemmV(x, pc.w_pack, pre3);
      GemmV(h_prev, pc.u_pack, ColBlock(&pre3, dim, 2 * dim), 1.0f, 1.0f);

      AddRowBroadcastV(ColBlock(&pre3, dim, dim), bz_.value);
      cache->z[t].Resize(batch, dim);
      SigmoidV(ColBlock(pre3, dim, dim), cache->z[t]);

      AddRowBroadcastV(ColBlock(&pre3, 2 * dim, dim), br_.value);
      cache->r[t].Resize(batch, dim);
      SigmoidV(ColBlock(pre3, 2 * dim, dim), cache->r[t]);

      Hadamard(cache->r[t], h_prev, &cache->rh[t]);
      GemmV(cache->rh[t], uc_.value, ColBlock(&pre3, 0, dim), 1.0f, 1.0f);
      AddRowBroadcastV(ColBlock(&pre3, 0, dim), bc_.value);
      cache->c[t].Resize(batch, dim);
      TanhV(ColBlock(pre3, 0, dim), cache->c[t]);
    } else {
      // z = sigmoid(x Wz + h_prev Uz + bz)
      Gemm(x, wz_.value, &pre);
      Gemm(h_prev, uz_.value, &pre, 1.0f, 1.0f);
      AddRowBroadcast(&pre, bz_.value);
      Sigmoid(pre, &cache->z[t]);

      // r = sigmoid(x Wr + h_prev Ur + br)
      Gemm(x, wr_.value, &pre);
      Gemm(h_prev, ur_.value, &pre, 1.0f, 1.0f);
      AddRowBroadcast(&pre, br_.value);
      Sigmoid(pre, &cache->r[t]);

      // c = tanh(x Wc + (r ⊙ h_prev) Uc + bc)
      Hadamard(cache->r[t], h_prev, &cache->rh[t]);
      Gemm(x, wc_.value, &pre);
      Gemm(cache->rh[t], uc_.value, &pre, 1.0f, 1.0f);
      AddRowBroadcast(&pre, bc_.value);
      Tanh(pre, &cache->c[t]);
    }

    // h_raw = (1 - z) ⊙ h_prev + z ⊙ c
    const Matrix& z = cache->z[t];
    const Matrix& c = cache->c[t];
    h_raw.Resize(batch, dim);
    for (size_t b = 0; b < batch; ++b) {
      const float* __restrict zv = z.Row(b);
      const float* __restrict cv = c.Row(b);
      const float* __restrict hp = h_prev.Row(b);
      float* __restrict hr = h_raw.Row(b);
      for (size_t j = 0; j < dim; ++j) {
        hr[j] = (1.0f - zv[j]) * hp[j] + zv[j] * cv[j];
      }
    }

    if (masks.empty()) {
      cache->h[t] = h_raw;
    } else {
      ApplyMask(masks[t], h_raw, h_prev, &cache->h[t]);
    }
  }
}

void GruLayer::Backward(const std::vector<Matrix>& xs, const Matrix& h0,
                        const std::vector<std::vector<float>>& masks,
                        const GruCache& cache, const std::vector<Matrix>* d_hs,
                        const Matrix* d_h_last, std::vector<Matrix>* d_xs,
                        Matrix* d_h0) {
  const size_t steps = xs.size();
  const size_t batch = h0.rows();
  const size_t dim = hidden();
  T2VEC_CHECK(cache.steps() == steps);

  d_xs->resize(steps);

  const bool fused = FusedKernelsEnabled();
  if (fused) RefreshPacks();
  const PackCache& pc = *packs_;

  Matrix dh(batch, dim);        // Running gradient on h_t.
  Matrix dh_prev(batch, dim);   // Gradient flowing to h_{t-1}.
  Matrix dh_raw(batch, dim);    // Gradient on the pre-mask hidden.
  Matrix dz(batch, dim), dc(batch, dim), dr(batch, dim);
  Matrix dz_pre, dc_pre, dr_pre;  // Unfused per-gate buffers.
  Matrix drh(batch, dim);
  Matrix d3;                    // Fused: [dc_pre | dz_pre | dr_pre], B x 3H.
  Matrix wg_pack, ug_pack;      // Fused gradient accumulators.

  if (fused) {
    d3.Resize(batch, 3 * dim);
    // Seed the packed accumulators from the named gradients so fused
    // accumulation continues the exact same per-element chains; copied back
    // (bitwise) after the loop.
    PackColumns({&wc_.grad, &wz_.grad, &wr_.grad}, &wg_pack);
    PackColumns({&uz_.grad, &ur_.grad}, &ug_pack);
  } else {
    dz_pre.Resize(batch, dim);
    dc_pre.Resize(batch, dim);
    dr_pre.Resize(batch, dim);
  }

  if (d_h_last != nullptr) {
    T2VEC_CHECK(SameShape(*d_h_last, dh));
    dh = *d_h_last;
  }

  for (size_t t = steps; t-- > 0;) {
    if (d_hs != nullptr && !(*d_hs)[t].empty()) {
      AddInPlace(&dh, (*d_hs)[t]);
    }
    const Matrix& h_prev = (t == 0) ? h0 : cache.h[t - 1];
    const Matrix& z = cache.z[t];
    const Matrix& r = cache.r[t];
    const Matrix& c = cache.c[t];
    const Matrix& x = xs[t];

    dh_prev.SetZero();

    // Undo the mask: gradient on h_raw is dh ⊙ m; the carried part dh ⊙
    // (1 - m) flows straight to h_prev.
    if (masks.empty()) {
      dh_raw = dh;
    } else {
      const std::vector<float>& m = masks[t];
      dh_raw.Resize(batch, dim);
      for (size_t b = 0; b < batch; ++b) {
        const float mb = m[b];
        const float* __restrict g = dh.Row(b);
        float* __restrict gr = dh_raw.Row(b);
        float* __restrict gp = dh_prev.Row(b);
        for (size_t j = 0; j < dim; ++j) {
          gr[j] = g[j] * mb;
          gp[j] += g[j] * (1.0f - mb);
        }
      }
    }

    // h_raw = (1 - z) ⊙ h_prev + z ⊙ c
    //   dz = dh_raw ⊙ (c - h_prev); dc = dh_raw ⊙ z;
    //   dh_prev += dh_raw ⊙ (1 - z)
    dz.Resize(batch, dim);
    dc.Resize(batch, dim);
    for (size_t b = 0; b < batch; ++b) {
      const float* __restrict g = dh_raw.Row(b);
      const float* __restrict zv = z.Row(b);
      const float* __restrict cv = c.Row(b);
      const float* __restrict hp = h_prev.Row(b);
      float* __restrict dzv = dz.Row(b);
      float* __restrict dcv = dc.Row(b);
      float* __restrict gp = dh_prev.Row(b);
      for (size_t j = 0; j < dim; ++j) {
        dzv[j] = g[j] * (cv[j] - hp[j]);
        dcv[j] = g[j] * zv[j];
        gp[j] += g[j] * (1.0f - zv[j]);
      }
    }

    Matrix& dx = (*d_xs)[t];
    dx.Resize(batch, in_dim());

    if (fused) {
      // Pre-activation gradients land directly in the packed d3 blocks.
      TanhBackwardV(c, dc, ColBlock(&d3, 0, dim));
      const ConstMatrixView dc_pre_v = ColBlock(d3, 0, dim);
      drh.Resize(batch, dim);
      GemmTransBV(dc_pre_v, uc_.value, drh);
      Hadamard(drh, h_prev, &dr);
      HadamardAccum(drh, r, &dh_prev);
      SigmoidBackwardV(z, dz, ColBlock(&d3, dim, dim));
      SigmoidBackwardV(r, dr, ColBlock(&d3, 2 * dim, dim));

      // One TransA per operand: dW_pack += x^T d3, dU_pack += h⁻^T [dz|dr],
      // dUc += rh^T dc_pre.
      GemmTransAV(x, d3, wg_pack, 1.0f, 1.0f);
      GemmTransAV(h_prev, ColBlock(d3, dim, 2 * dim), ug_pack, 1.0f, 1.0f);
      GemmTransAV(cache.rh[t], dc_pre_v, uc_.grad, 1.0f, 1.0f);
      SumRowsIntoV(dc_pre_v, &bc_.grad);
      SumRowsIntoV(ColBlock(d3, dim, dim), &bz_.grad);
      SumRowsIntoV(ColBlock(d3, 2 * dim, dim), &br_.grad);

      // dx = d3 [Wc|Wz|Wr]^T and dh_prev += [dz|dr] [Uz|Ur]^T, each as one
      // segmented GEMM whose per-segment chain equals the three (two)
      // separate beta=1 calls in the unfused branch — the pack keeps the
      // historical candidate-first accumulation order.
      GemmTransBV(d3, pc.w_pack, dx, 1.0f, 0.0f, dim);
      GemmTransBV(ColBlock(d3, dim, 2 * dim), pc.u_pack, dh_prev, 1.0f, 1.0f,
                  dim);
    } else {
      // Through the candidate tanh.
      TanhBackward(c, dc, &dc_pre);
      // dWc += x^T dc_pre; dUc += rh^T dc_pre; dbc += colsum(dc_pre).
      GemmTransA(x, dc_pre, &wc_.grad, 1.0f, 1.0f);
      GemmTransA(cache.rh[t], dc_pre, &uc_.grad, 1.0f, 1.0f);
      SumRowsInto(dc_pre, &bc_.grad);
      // dx = dc_pre Wc^T (first contribution); drh = dc_pre Uc^T.
      GemmTransB(dc_pre, wc_.value, &dx);
      drh.Resize(batch, dim);
      GemmTransB(dc_pre, uc_.value, &drh);

      // rh = r ⊙ h_prev: dr = drh ⊙ h_prev; dh_prev += drh ⊙ r.
      Hadamard(drh, h_prev, &dr);
      HadamardAccum(drh, r, &dh_prev);

      // Through the gate sigmoids.
      SigmoidBackward(z, dz, &dz_pre);
      SigmoidBackward(r, dr, &dr_pre);

      // Update-gate path.
      GemmTransA(x, dz_pre, &wz_.grad, 1.0f, 1.0f);
      GemmTransA(h_prev, dz_pre, &uz_.grad, 1.0f, 1.0f);
      SumRowsInto(dz_pre, &bz_.grad);
      GemmTransB(dz_pre, wz_.value, &dx, 1.0f, 1.0f);
      GemmTransB(dz_pre, uz_.value, &dh_prev, 1.0f, 1.0f);

      // Reset-gate path.
      GemmTransA(x, dr_pre, &wr_.grad, 1.0f, 1.0f);
      GemmTransA(h_prev, dr_pre, &ur_.grad, 1.0f, 1.0f);
      SumRowsInto(dr_pre, &br_.grad);
      GemmTransB(dr_pre, wr_.value, &dx, 1.0f, 1.0f);
      GemmTransB(dr_pre, ur_.value, &dh_prev, 1.0f, 1.0f);
    }

    dh = dh_prev;
  }

  if (fused) {
    UnpackColumns(wg_pack, {&wc_.grad, &wz_.grad, &wr_.grad});
    UnpackColumns(ug_pack, {&uz_.grad, &ur_.grad});
  }

  if (d_h0 != nullptr) *d_h0 = dh;
}

ParamList GruLayer::Params() {
  return {&wz_, &wr_, &wc_, &uz_, &ur_, &uc_, &bz_, &br_, &bc_};
}

Gru::Gru(const std::string& name, size_t in_dim, size_t hidden, size_t layers,
         Rng& rng) {
  T2VEC_CHECK(layers >= 1);
  layers_.reserve(layers);
  for (size_t l = 0; l < layers; ++l) {
    layers_.emplace_back(name + ".l" + std::to_string(l),
                         l == 0 ? in_dim : hidden, hidden, rng);
  }
}

void Gru::Forward(const std::vector<Matrix>& xs, const GruState* init,
                  const std::vector<std::vector<float>>& masks,
                  ForwardResult* result) const {
  T2VEC_CHECK(!xs.empty());
  const size_t batch = xs.front().rows();
  const size_t dim = hidden();
  if (init != nullptr) T2VEC_CHECK(init->layers() == layers());

  result->caches.assign(layers(), GruCache{});
  result->final_state.h.assign(layers(), Matrix());

  const Matrix zero_h0(batch, dim);
  const std::vector<Matrix>* layer_input = &xs;
  for (size_t l = 0; l < layers(); ++l) {
    const Matrix& h0 = (init != nullptr) ? init->h[l] : zero_h0;
    layers_[l].Forward(*layer_input, h0, masks, &result->caches[l]);
    result->final_state.h[l] = result->caches[l].h.back();
    layer_input = &result->caches[l].h;
  }
}

void Gru::Backward(const std::vector<Matrix>& xs, const GruState* init,
                   const std::vector<std::vector<float>>& masks,
                   const ForwardResult& result,
                   const std::vector<Matrix>* d_top, const GruState* d_final,
                   std::vector<Matrix>* d_xs, GruState* d_init) {
  const size_t batch = xs.front().rows();
  const size_t dim = hidden();
  const Matrix zero_h0(batch, dim);

  if (d_init != nullptr) d_init->h.assign(layers(), Matrix());

  // Gradient on the current layer's per-step outputs; starts as d_top for the
  // top layer and becomes the d_xs of the layer above for lower layers.
  std::vector<Matrix> d_out_storage;
  const std::vector<Matrix>* d_out = d_top;

  for (size_t l = layers(); l-- > 0;) {
    const std::vector<Matrix>& layer_input =
        (l == 0) ? xs : result.caches[l - 1].h;
    const Matrix& h0 = (init != nullptr) ? init->h[l] : zero_h0;
    const Matrix* d_h_last =
        (d_final != nullptr && !d_final->h[l].empty()) ? &d_final->h[l]
                                                       : nullptr;
    std::vector<Matrix> d_in;
    Matrix d_h0;
    layers_[l].Backward(layer_input, h0, masks, result.caches[l], d_out,
                        d_h_last, &d_in, &d_h0);
    if (d_init != nullptr) d_init->h[l] = std::move(d_h0);
    d_out_storage = std::move(d_in);
    d_out = &d_out_storage;
  }

  if (d_xs != nullptr) *d_xs = std::move(d_out_storage);
}

ParamList Gru::Params() {
  ParamList out;
  for (GruLayer& layer : layers_) {
    for (Parameter* p : layer.Params()) out.push_back(p);
  }
  return out;
}

}  // namespace t2vec::nn
