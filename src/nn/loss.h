#ifndef T2VEC_NN_LOSS_H_
#define T2VEC_NN_LOSS_H_

#include <cstdint>
#include <vector>

#include "nn/matrix.h"

/// \file
/// Generic classification losses over logits. The t2vec-specific spatial
/// proximity aware losses (L2, L3 of the paper) live in core/loss.h; this
/// file provides the shared full-softmax machinery used by the paper's L1
/// (plain NLL) and by the vRNN baseline.

namespace t2vec::nn {

/// Full softmax cross-entropy against integer targets.
///
/// `logits` is B x |V|; `targets` has B entries; entries equal to
/// `ignore_index` contribute neither loss nor gradient (used for padding).
/// Returns the summed loss; `d_logits` (same shape as logits) receives
/// p - onehot(target) per active row, zeros for ignored rows.
double SoftmaxCrossEntropy(const Matrix& logits,
                           const std::vector<int32_t>& targets,
                           int32_t ignore_index, Matrix* d_logits);

/// Cross-entropy against a full target *distribution* per row (soft labels).
/// Rows whose `row_active` entry is false are skipped. Returns the summed
/// loss -Σ_u w_u log p_u; writes d_logits = p - w for active rows.
/// This is the gradient form of the paper's exact L2 loss once the spatial
/// kernel weights have been materialized as `target_dist`.
double SoftCrossEntropy(const Matrix& logits, const Matrix& target_dist,
                        const std::vector<uint8_t>& row_active,
                        Matrix* d_logits);

}  // namespace t2vec::nn

#endif  // T2VEC_NN_LOSS_H_
