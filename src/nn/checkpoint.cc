#include "nn/checkpoint.h"

#include <map>

#include "common/fault.h"
#include "common/fs.h"

namespace t2vec::nn {

namespace {
constexpr uint32_t kMagic = 0x54325643;  // "T2VC"
// Version 2 added the atomic-write + CRC32C trailer framing; the payload
// layout is unchanged, so version-1 (trailer-less) files remain loadable.
constexpr uint32_t kVersion = 2;
constexpr uint32_t kFirstChecksummedVersion = 2;
}  // namespace

void WriteParamBlock(BinaryWriter* writer, const ParamList& params) {
  writer->WritePod<uint64_t>(params.size());
  for (const Parameter* p : params) {
    writer->WriteString(p->name);
    writer->WritePod<uint64_t>(p->value.rows());
    writer->WritePod<uint64_t>(p->value.cols());
    writer->WriteVector(p->value.storage());
  }
}

Status ReadParamBlock(BinaryReader* reader, const ParamList& params) {
  uint64_t count = 0;
  if (!reader->ReadPod(&count)) {
    return Status::IoError("truncated parameter block");
  }

  std::map<std::string, Parameter*> by_name;
  for (Parameter* p : params) by_name[p->name] = p;
  if (by_name.size() != params.size()) {
    return Status::InvalidArgument("duplicate parameter names");
  }
  if (count != params.size()) {
    return Status::InvalidArgument(
        "parameter block has " + std::to_string(count) +
        " params, model has " + std::to_string(params.size()));
  }

  for (uint64_t i = 0; i < count; ++i) {
    std::string name;
    uint64_t rows = 0, cols = 0;
    std::vector<float> values;
    if (!reader->ReadString(&name) || !reader->ReadPod(&rows) ||
        !reader->ReadPod(&cols) || !reader->ReadVector(&values)) {
      return Status::IoError("truncated parameter entry");
    }
    auto it = by_name.find(name);
    if (it == by_name.end()) {
      return Status::NotFound("parameter not in model: " + name);
    }
    Parameter* p = it->second;
    if (p->value.rows() != rows || p->value.cols() != cols ||
        values.size() != rows * cols) {
      return Status::InvalidArgument("shape mismatch for " + name);
    }
    p->value.storage() = std::move(values);
  }
  BumpParamVersion();
  return Status::Ok();
}

Status SaveParams(const ParamList& params, const std::string& path) {
  if (const int err = T2VEC_FAULT_POINT("checkpoint.write")) {
    return Status::IoError(ErrnoMessage("checkpoint write", path, err));
  }
  BinaryWriter writer(path);
  if (!writer.ok()) return writer.status();
  writer.WritePod(kMagic);
  writer.WritePod(kVersion);
  WriteParamBlock(&writer, params);
  return writer.Finish();
}

Status LoadParams(const ParamList& params, const std::string& path) {
  BinaryReader reader(path);
  if (!reader.ok()) return reader.status();
  uint32_t magic = 0, version = 0;
  if (!reader.ReadPod(&magic) || magic != kMagic) {
    return Status::IoError("bad checkpoint magic in " + path);
  }
  if (!reader.ReadPod(&version) || version == 0 || version > kVersion) {
    return Status::IoError("unsupported checkpoint version in " + path);
  }
  if (version >= kFirstChecksummedVersion && !reader.checksummed()) {
    return Status::IoError("checkpoint " + path +
                           " is missing its checksum trailer (truncated?)");
  }
  Status status = ReadParamBlock(&reader, params);
  if (!status.ok()) {
    return Status(status.code(), status.message() + " in " + path);
  }
  return Status::Ok();
}

}  // namespace t2vec::nn
