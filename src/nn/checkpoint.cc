#include "nn/checkpoint.h"

#include <map>

#include "common/serialize.h"

namespace t2vec::nn {

namespace {
constexpr uint32_t kMagic = 0x54325643;  // "T2VC"
constexpr uint32_t kVersion = 1;
}  // namespace

Status SaveParams(const ParamList& params, const std::string& path) {
  BinaryWriter writer(path);
  if (!writer.ok()) return Status::IoError("cannot open for write: " + path);
  writer.WritePod(kMagic);
  writer.WritePod(kVersion);
  writer.WritePod<uint64_t>(params.size());
  for (const Parameter* p : params) {
    writer.WriteString(p->name);
    writer.WritePod<uint64_t>(p->value.rows());
    writer.WritePod<uint64_t>(p->value.cols());
    writer.WriteVector(p->value.storage());
  }
  return writer.Finish();
}

Status LoadParams(const ParamList& params, const std::string& path) {
  BinaryReader reader(path);
  if (!reader.ok()) return Status::IoError("cannot open for read: " + path);
  uint32_t magic = 0, version = 0;
  if (!reader.ReadPod(&magic) || magic != kMagic) {
    return Status::IoError("bad checkpoint magic in " + path);
  }
  if (!reader.ReadPod(&version) || version != kVersion) {
    return Status::IoError("unsupported checkpoint version in " + path);
  }
  uint64_t count = 0;
  if (!reader.ReadPod(&count)) return Status::IoError("truncated checkpoint");

  std::map<std::string, Parameter*> by_name;
  for (Parameter* p : params) by_name[p->name] = p;
  if (by_name.size() != params.size()) {
    return Status::InvalidArgument("duplicate parameter names");
  }
  if (count != params.size()) {
    return Status::InvalidArgument(
        "checkpoint has " + std::to_string(count) + " params, model has " +
        std::to_string(params.size()));
  }

  for (uint64_t i = 0; i < count; ++i) {
    std::string name;
    uint64_t rows = 0, cols = 0;
    std::vector<float> values;
    if (!reader.ReadString(&name) || !reader.ReadPod(&rows) ||
        !reader.ReadPod(&cols) || !reader.ReadVector(&values)) {
      return Status::IoError("truncated checkpoint entry");
    }
    auto it = by_name.find(name);
    if (it == by_name.end()) {
      return Status::NotFound("parameter not in model: " + name);
    }
    Parameter* p = it->second;
    if (p->value.rows() != rows || p->value.cols() != cols ||
        values.size() != rows * cols) {
      return Status::InvalidArgument("shape mismatch for " + name);
    }
    p->value.storage() = std::move(values);
  }
  BumpParamVersion();
  return Status::Ok();
}

}  // namespace t2vec::nn
