#include "nn/attention.h"

#include <cmath>
#include <cstring>

#include "nn/ops.h"

namespace t2vec::nn {

Attention::Attention(const std::string& name, size_t hidden, Rng& rng)
    : wa_(name + ".Wa", hidden, hidden),
      wc_(name + ".Wc", 2 * hidden, hidden) {
  InitXavier(&wa_.value, rng);
  InitXavier(&wc_.value, rng);
}

void Attention::Forward(const std::vector<Matrix>& dec_hs,
                        const std::vector<Matrix>& enc_hs,
                        const std::vector<std::vector<float>>& src_masks,
                        AttentionCache* cache) const {
  T2VEC_CHECK(!dec_hs.empty() && !enc_hs.empty());
  const size_t batch = dec_hs.front().rows();
  const size_t dim = hidden();
  const size_t src_steps = enc_hs.size();
  T2VEC_CHECK(src_masks.empty() || src_masks.size() == src_steps);
  const bool fused = FusedKernelsEnabled();

  // Pack the encoder outputs step-major so keys (and later the weight
  // gradients) are single GEMMs over the whole source sequence.
  cache->enc_packed.Resize(src_steps * batch, dim);
  for (size_t s = 0; s < src_steps; ++s) {
    T2VEC_CHECK(enc_hs[s].rows() == batch && enc_hs[s].cols() == dim);
    std::memcpy(cache->enc_packed.Row(s * batch), enc_hs[s].data(),
                batch * dim * sizeof(float));
  }

  // Keys: k_s = e_s W_a, shared across decoder steps. Rows are independent
  // in a non-transposed GEMM, so one fused call over the packed rows equals
  // the per-step calls bit-for-bit.
  cache->keys.Resize(src_steps * batch, dim);
  if (fused) {
    GemmV(cache->enc_packed, wa_.value, cache->keys);
  } else {
    for (size_t s = 0; s < src_steps; ++s) {
      GemmV(RowBlock(cache->enc_packed, s * batch, batch), wa_.value,
            RowBlock(&cache->keys, s * batch, batch));
    }
  }

  const size_t dec_steps = dec_hs.size();
  cache->alphas.resize(dec_steps);
  cache->concat.Resize(dec_steps * batch, 2 * dim);
  cache->output.resize(dec_steps);

  Matrix scores(batch, src_steps);
  for (size_t t = 0; t < dec_steps; ++t) {
    const Matrix& h = dec_hs[t];
    // score[b][s] = h[b] · k_s[b]; masked positions get -inf equivalent.
    scores.Resize(batch, src_steps);
    for (size_t s = 0; s < src_steps; ++s) {
      const float* key = cache->keys.Row(s * batch);
      for (size_t b = 0; b < batch; ++b) {
        const float* __restrict hb = h.Row(b);
        const float* __restrict kb = key + b * dim;
        float acc = 0.0f;
        for (size_t j = 0; j < dim; ++j) acc += hb[j] * kb[j];
        const bool masked = !src_masks.empty() && src_masks[s][b] == 0.0f;
        scores(b, s) = masked ? -1e30f : acc;
      }
    }
    SoftmaxRows(scores, &cache->alphas[t]);

    // Context and concat [h ; c], written into the packed row block.
    const Matrix& alpha = cache->alphas[t];
    for (size_t b = 0; b < batch; ++b) {
      float* __restrict zb = cache->concat.Row(t * batch + b);
      const float* __restrict hb = h.Row(b);
      for (size_t j = 0; j < dim; ++j) {
        zb[j] = hb[j];
        zb[dim + j] = 0.0f;
      }
      for (size_t s = 0; s < src_steps; ++s) {
        const float a = alpha(b, s);
        if (a == 0.0f) continue;
        const float* __restrict eb = cache->enc_packed.Row(s * batch + b);
        for (size_t j = 0; j < dim; ++j) zb[dim + j] += a * eb[j];
      }
    }
  }

  // ĥ = tanh(z Wc): one GEMM over every decoder step when fused.
  Matrix pre(dec_steps * batch, dim);
  if (fused) {
    GemmV(cache->concat, wc_.value, pre);
  } else {
    for (size_t t = 0; t < dec_steps; ++t) {
      GemmV(RowBlock(cache->concat, t * batch, batch), wc_.value,
            RowBlock(&pre, t * batch, batch));
    }
  }
  for (size_t t = 0; t < dec_steps; ++t) {
    cache->output[t].Resize(batch, dim);
    TanhV(RowBlock(pre, t * batch, batch), cache->output[t]);
  }
}

void Attention::Backward(const std::vector<Matrix>& dec_hs,
                         const std::vector<Matrix>& enc_hs,
                         const std::vector<std::vector<float>>& src_masks,
                         const AttentionCache& cache,
                         const std::vector<Matrix>& d_output,
                         std::vector<Matrix>* d_dec_hs,
                         std::vector<Matrix>* d_enc_hs) {
  const size_t batch = dec_hs.front().rows();
  const size_t dim = hidden();
  const size_t src_steps = enc_hs.size();
  const size_t dec_steps = dec_hs.size();
  const bool fused = FusedKernelsEnabled();

  d_dec_hs->assign(dec_steps, Matrix());
  // Packed accumulators over the whole source sequence; unpacked into the
  // per-step outputs at the end (bitwise copies).
  Matrix d_enc(src_steps * batch, dim);
  Matrix d_keys(src_steps * batch, dim);

  // Through ĥ = tanh(z Wc), all decoder steps at once.
  Matrix d_pre(dec_steps * batch, dim);
  for (size_t t = 0; t < dec_steps; ++t) {
    TanhBackwardV(cache.output[t], d_output[t],
                  RowBlock(&d_pre, t * batch, batch));
  }
  // dWc += z^T d_pre. The fused call reduces rows in step-major ascending
  // order — the same chain as consecutive per-step beta=1 calls.
  Matrix dz(dec_steps * batch, 2 * dim);
  if (fused) {
    GemmTransAV(cache.concat, d_pre, wc_.grad, 1.0f, 1.0f);
    GemmTransBV(d_pre, wc_.value, dz);
  } else {
    for (size_t t = 0; t < dec_steps; ++t) {
      GemmTransAV(RowBlock(cache.concat, t * batch, batch),
                  RowBlock(d_pre, t * batch, batch), wc_.grad, 1.0f, 1.0f);
      GemmTransBV(RowBlock(d_pre, t * batch, batch), wc_.value,
                  RowBlock(&dz, t * batch, batch));
    }
  }

  Matrix d_alpha(batch, src_steps);
  Matrix d_scores(batch, src_steps);

  for (size_t t = 0; t < dec_steps; ++t) {
    const Matrix& alpha = cache.alphas[t];
    const Matrix& h = dec_hs[t];

    // Split dz into dh (direct) and dc (context).
    Matrix& dh = (*d_dec_hs)[t];
    dh.Resize(batch, dim);
    for (size_t b = 0; b < batch; ++b) {
      const float* __restrict dzb = dz.Row(t * batch + b);
      float* __restrict dhb = dh.Row(b);
      for (size_t j = 0; j < dim; ++j) dhb[j] = dzb[j];
    }

    // dc -> dα and d e_s (context path): c = Σ α_s e_s.
    d_alpha.Resize(batch, src_steps);
    for (size_t s = 0; s < src_steps; ++s) {
      for (size_t b = 0; b < batch; ++b) {
        const float* __restrict dcb = dz.Row(t * batch + b) + dim;
        const float* __restrict eb = cache.enc_packed.Row(s * batch + b);
        float* __restrict deb = d_enc.Row(s * batch + b);
        const float a = alpha(b, s);
        float acc = 0.0f;
        for (size_t j = 0; j < dim; ++j) {
          acc += dcb[j] * eb[j];
          deb[j] += a * dcb[j];
        }
        d_alpha(b, s) = acc;
      }
    }

    // Softmax backward: ds = α ⊙ (dα - Σ_u α_u dα_u). Masked positions have
    // α = 0, so they produce no gradient automatically.
    d_scores.Resize(batch, src_steps);
    for (size_t b = 0; b < batch; ++b) {
      double inner = 0.0;
      for (size_t s = 0; s < src_steps; ++s) {
        inner += static_cast<double>(alpha(b, s)) * d_alpha(b, s);
      }
      for (size_t s = 0; s < src_steps; ++s) {
        d_scores(b, s) = alpha(b, s) *
                         (d_alpha(b, s) - static_cast<float>(inner));
      }
    }

    // score_s = h · k_s: dh += ds_s k_s; dk_s += ds_s h.
    for (size_t s = 0; s < src_steps; ++s) {
      for (size_t b = 0; b < batch; ++b) {
        const float ds = d_scores(b, s);
        if (ds == 0.0f) continue;
        const float* __restrict kb = cache.keys.Row(s * batch + b);
        const float* __restrict hb = h.Row(b);
        float* __restrict dhb = dh.Row(b);
        float* __restrict dkb = d_keys.Row(s * batch + b);
        for (size_t j = 0; j < dim; ++j) {
          dhb[j] += ds * kb[j];
          dkb[j] += ds * hb[j];
        }
      }
    }
  }

  // Keys: k_s = e_s W_a -> dW_a += e_s^T dk_s; d e_s += dk_s W_a^T, fused
  // over the packed source sequence.
  (void)src_masks;
  if (fused) {
    GemmTransAV(cache.enc_packed, d_keys, wa_.grad, 1.0f, 1.0f);
    GemmTransBV(d_keys, wa_.value, d_enc, 1.0f, 1.0f);
  } else {
    for (size_t s = 0; s < src_steps; ++s) {
      GemmTransAV(RowBlock(cache.enc_packed, s * batch, batch),
                  RowBlock(d_keys, s * batch, batch), wa_.grad, 1.0f, 1.0f);
      GemmTransBV(RowBlock(d_keys, s * batch, batch), wa_.value,
                  RowBlock(&d_enc, s * batch, batch), 1.0f, 1.0f);
    }
  }

  d_enc_hs->assign(src_steps, Matrix(batch, dim));
  for (size_t s = 0; s < src_steps; ++s) {
    std::memcpy((*d_enc_hs)[s].data(), d_enc.Row(s * batch),
                batch * dim * sizeof(float));
  }
}

}  // namespace t2vec::nn
