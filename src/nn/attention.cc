#include "nn/attention.h"

#include <cmath>

#include "nn/ops.h"

namespace t2vec::nn {

Attention::Attention(const std::string& name, size_t hidden, Rng& rng)
    : wa_(name + ".Wa", hidden, hidden),
      wc_(name + ".Wc", 2 * hidden, hidden) {
  InitXavier(&wa_.value, rng);
  InitXavier(&wc_.value, rng);
}

void Attention::Forward(const std::vector<Matrix>& dec_hs,
                        const std::vector<Matrix>& enc_hs,
                        const std::vector<std::vector<float>>& src_masks,
                        AttentionCache* cache) const {
  T2VEC_CHECK(!dec_hs.empty() && !enc_hs.empty());
  const size_t batch = dec_hs.front().rows();
  const size_t dim = hidden();
  const size_t src_steps = enc_hs.size();
  T2VEC_CHECK(src_masks.empty() || src_masks.size() == src_steps);

  // Keys: k_s = e_s W_a, shared across decoder steps.
  cache->keys.resize(src_steps);
  for (size_t s = 0; s < src_steps; ++s) {
    cache->keys[s].Resize(batch, dim);
    Gemm(enc_hs[s], wa_.value, &cache->keys[s]);
  }

  const size_t dec_steps = dec_hs.size();
  cache->alphas.resize(dec_steps);
  cache->concat.resize(dec_steps);
  cache->output.resize(dec_steps);

  Matrix scores(batch, src_steps);
  for (size_t t = 0; t < dec_steps; ++t) {
    const Matrix& h = dec_hs[t];
    // score[b][s] = h[b] · k_s[b]; masked positions get -inf equivalent.
    scores.Resize(batch, src_steps);
    for (size_t s = 0; s < src_steps; ++s) {
      const Matrix& key = cache->keys[s];
      for (size_t b = 0; b < batch; ++b) {
        const float* __restrict hb = h.Row(b);
        const float* __restrict kb = key.Row(b);
        float acc = 0.0f;
        for (size_t j = 0; j < dim; ++j) acc += hb[j] * kb[j];
        const bool masked = !src_masks.empty() && src_masks[s][b] == 0.0f;
        scores(b, s) = masked ? -1e30f : acc;
      }
    }
    SoftmaxRows(scores, &cache->alphas[t]);

    // Context and concat [h ; c].
    Matrix& z = cache->concat[t];
    z.Resize(batch, 2 * dim);
    const Matrix& alpha = cache->alphas[t];
    for (size_t b = 0; b < batch; ++b) {
      float* __restrict zb = z.Row(b);
      const float* __restrict hb = h.Row(b);
      for (size_t j = 0; j < dim; ++j) {
        zb[j] = hb[j];
        zb[dim + j] = 0.0f;
      }
      for (size_t s = 0; s < src_steps; ++s) {
        const float a = alpha(b, s);
        if (a == 0.0f) continue;
        const float* __restrict eb = enc_hs[s].Row(b);
        for (size_t j = 0; j < dim; ++j) zb[dim + j] += a * eb[j];
      }
    }

    // ĥ = tanh(z Wc).
    Matrix pre(batch, dim);
    Gemm(z, wc_.value, &pre);
    Tanh(pre, &cache->output[t]);
  }
}

void Attention::Backward(const std::vector<Matrix>& dec_hs,
                         const std::vector<Matrix>& enc_hs,
                         const std::vector<std::vector<float>>& src_masks,
                         const AttentionCache& cache,
                         const std::vector<Matrix>& d_output,
                         std::vector<Matrix>* d_dec_hs,
                         std::vector<Matrix>* d_enc_hs) {
  const size_t batch = dec_hs.front().rows();
  const size_t dim = hidden();
  const size_t src_steps = enc_hs.size();
  const size_t dec_steps = dec_hs.size();

  d_dec_hs->assign(dec_steps, Matrix());
  d_enc_hs->assign(src_steps, Matrix(batch, dim));
  // Gradient on the keys, accumulated over all decoder steps; converted to
  // W_a / encoder-output gradients at the end.
  std::vector<Matrix> d_keys(src_steps, Matrix(batch, dim));

  Matrix dz_pre(batch, dim);
  Matrix dz(batch, 2 * dim);
  Matrix d_alpha(batch, src_steps);
  Matrix d_scores(batch, src_steps);

  for (size_t t = 0; t < dec_steps; ++t) {
    const Matrix& alpha = cache.alphas[t];
    const Matrix& h = dec_hs[t];

    // Through ĥ = tanh(z Wc).
    TanhBackward(cache.output[t], d_output[t], &dz_pre);
    GemmTransA(cache.concat[t], dz_pre, &wc_.grad, 1.0f, 1.0f);
    dz.Resize(batch, 2 * dim);
    GemmTransB(dz_pre, wc_.value, &dz);

    // Split dz into dh (direct) and dc (context).
    Matrix& dh = (*d_dec_hs)[t];
    dh.Resize(batch, dim);
    for (size_t b = 0; b < batch; ++b) {
      const float* __restrict dzb = dz.Row(b);
      float* __restrict dhb = dh.Row(b);
      for (size_t j = 0; j < dim; ++j) dhb[j] = dzb[j];
    }

    // dc -> dα and d e_s (context path): c = Σ α_s e_s.
    d_alpha.Resize(batch, src_steps);
    for (size_t s = 0; s < src_steps; ++s) {
      const Matrix& e = enc_hs[s];
      Matrix& de = (*d_enc_hs)[s];
      for (size_t b = 0; b < batch; ++b) {
        const float* __restrict dcb = dz.Row(b) + dim;
        const float* __restrict eb = e.Row(b);
        float* __restrict deb = de.Row(b);
        const float a = alpha(b, s);
        float acc = 0.0f;
        for (size_t j = 0; j < dim; ++j) {
          acc += dcb[j] * eb[j];
          deb[j] += a * dcb[j];
        }
        d_alpha(b, s) = acc;
      }
    }

    // Softmax backward: ds = α ⊙ (dα - Σ_u α_u dα_u). Masked positions have
    // α = 0, so they produce no gradient automatically.
    d_scores.Resize(batch, src_steps);
    for (size_t b = 0; b < batch; ++b) {
      double inner = 0.0;
      for (size_t s = 0; s < src_steps; ++s) {
        inner += static_cast<double>(alpha(b, s)) * d_alpha(b, s);
      }
      for (size_t s = 0; s < src_steps; ++s) {
        d_scores(b, s) = alpha(b, s) *
                         (d_alpha(b, s) - static_cast<float>(inner));
      }
    }

    // score_s = h · k_s: dh += ds_s k_s; dk_s += ds_s h.
    for (size_t s = 0; s < src_steps; ++s) {
      const Matrix& key = cache.keys[s];
      Matrix& dk = d_keys[s];
      for (size_t b = 0; b < batch; ++b) {
        const float ds = d_scores(b, s);
        if (ds == 0.0f) continue;
        const float* __restrict kb = key.Row(b);
        const float* __restrict hb = h.Row(b);
        float* __restrict dhb = dh.Row(b);
        float* __restrict dkb = dk.Row(b);
        for (size_t j = 0; j < dim; ++j) {
          dhb[j] += ds * kb[j];
          dkb[j] += ds * hb[j];
        }
      }
    }
  }

  // Keys: k_s = e_s W_a -> dW_a += e_s^T dk_s; d e_s += dk_s W_a^T.
  (void)src_masks;
  for (size_t s = 0; s < src_steps; ++s) {
    GemmTransA(enc_hs[s], d_keys[s], &wa_.grad, 1.0f, 1.0f);
    GemmTransB(d_keys[s], wa_.value, &(*d_enc_hs)[s], 1.0f, 1.0f);
  }
}

}  // namespace t2vec::nn
