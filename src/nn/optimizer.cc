#include "nn/optimizer.h"

#include <algorithm>
#include <cmath>

namespace t2vec::nn {

void Optimizer::ZeroGrad() {
  for (Parameter* p : params_) p->ZeroGrad();
}

Sgd::Sgd(ParamList params, float lr, float momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  if (momentum_ != 0.0f) {
    velocity_.reserve(params_.size());
    for (Parameter* p : params_) {
      velocity_.emplace_back(p->value.rows(), p->value.cols());
    }
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Parameter* p = params_[i];
    if (momentum_ != 0.0f) {
      Matrix& vel = velocity_[i];
      float* __restrict v = vel.data();
      const float* __restrict g = p->grad.data();
      float* __restrict w = p->value.data();
      const size_t n = vel.size();
      for (size_t j = 0; j < n; ++j) {
        v[j] = momentum_ * v[j] - lr_ * g[j];
        w[j] += v[j];
      }
    } else {
      Axpy(-lr_, p->grad, &p->value);
    }
  }
  BumpParamVersion();
}

Adam::Adam(ParamList params, float lr, float beta1, float beta2, float eps)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Parameter* p : params_) {
    m_.emplace_back(p->value.rows(), p->value.cols());
    v_.emplace_back(p->value.rows(), p->value.cols());
  }
}

Adam::State Adam::GetState() const {
  State state;
  state.step = step_;
  state.m.reserve(m_.size());
  state.v.reserve(v_.size());
  for (const Matrix& m : m_) {
    state.m.emplace_back(m.data(), m.data() + m.size());
  }
  for (const Matrix& v : v_) {
    state.v.emplace_back(v.data(), v.data() + v.size());
  }
  return state;
}

Status Adam::SetState(const State& state) {
  if (state.m.size() != m_.size() || state.v.size() != v_.size()) {
    return Status::InvalidArgument(
        "Adam::SetState: snapshot has " + std::to_string(state.m.size()) +
        " moment buffers, optimizer has " + std::to_string(m_.size()));
  }
  for (size_t i = 0; i < m_.size(); ++i) {
    if (state.m[i].size() != m_[i].size() ||
        state.v[i].size() != v_[i].size()) {
      return Status::InvalidArgument(
          "Adam::SetState: moment buffer " + std::to_string(i) +
          " size mismatch");
    }
  }
  step_ = state.step;
  for (size_t i = 0; i < m_.size(); ++i) {
    std::copy(state.m[i].begin(), state.m[i].end(), m_[i].data());
    std::copy(state.v[i].begin(), state.v[i].end(), v_[i].data());
  }
  return Status::Ok();
}

void Adam::Step() {
  ++step_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(step_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(step_));
  const float alpha =
      static_cast<float>(lr_ * std::sqrt(bc2) / bc1);

  for (size_t i = 0; i < params_.size(); ++i) {
    Parameter* p = params_[i];
    float* __restrict m = m_[i].data();
    float* __restrict v = v_[i].data();
    const float* __restrict g = p->grad.data();
    float* __restrict w = p->value.data();
    const size_t n = p->value.size();
    for (size_t j = 0; j < n; ++j) {
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * g[j];
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * g[j] * g[j];
      w[j] -= alpha * m[j] / (std::sqrt(v[j]) + eps_);
    }
  }
  BumpParamVersion();
}

}  // namespace t2vec::nn
