#include "nn/optimizer.h"

#include <cmath>

namespace t2vec::nn {

void Optimizer::ZeroGrad() {
  for (Parameter* p : params_) p->ZeroGrad();
}

Sgd::Sgd(ParamList params, float lr, float momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  if (momentum_ != 0.0f) {
    velocity_.reserve(params_.size());
    for (Parameter* p : params_) {
      velocity_.emplace_back(p->value.rows(), p->value.cols());
    }
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Parameter* p = params_[i];
    if (momentum_ != 0.0f) {
      Matrix& vel = velocity_[i];
      float* __restrict v = vel.data();
      const float* __restrict g = p->grad.data();
      float* __restrict w = p->value.data();
      const size_t n = vel.size();
      for (size_t j = 0; j < n; ++j) {
        v[j] = momentum_ * v[j] - lr_ * g[j];
        w[j] += v[j];
      }
    } else {
      Axpy(-lr_, p->grad, &p->value);
    }
  }
  BumpParamVersion();
}

Adam::Adam(ParamList params, float lr, float beta1, float beta2, float eps)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Parameter* p : params_) {
    m_.emplace_back(p->value.rows(), p->value.cols());
    v_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Adam::Step() {
  ++step_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(step_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(step_));
  const float alpha =
      static_cast<float>(lr_ * std::sqrt(bc2) / bc1);

  for (size_t i = 0; i < params_.size(); ++i) {
    Parameter* p = params_[i];
    float* __restrict m = m_[i].data();
    float* __restrict v = v_[i].data();
    const float* __restrict g = p->grad.data();
    float* __restrict w = p->value.data();
    const size_t n = p->value.size();
    for (size_t j = 0; j < n; ++j) {
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * g[j];
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * g[j] * g[j];
      w[j] -= alpha * m[j] / (std::sqrt(v[j]) + eps_);
    }
  }
  BumpParamVersion();
}

}  // namespace t2vec::nn
