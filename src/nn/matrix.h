#ifndef T2VEC_NN_MATRIX_H_
#define T2VEC_NN_MATRIX_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/macros.h"

/// \file
/// Dense row-major float matrix and the linear-algebra kernels the network
/// training loop is built on. This is the compute substrate replacing the
/// paper's PyTorch/GPU stack (see DESIGN.md §1).
///
/// Design notes:
///  - `float` storage: training at this scale is well conditioned in fp32 and
///    halves memory traffic versus double.
///  - All kernels are free functions with explicit output parameters so the
///    training loop can reuse buffers across steps without reallocation.
///  - Accumulating variants (`beta = 1`) are provided because backprop sums
///    gradient contributions in place.
///  - The GEMM kernels are cache-blocked, register-tiled, and partition
///    output rows across the deterministic thread pool. Every output element
///    is accumulated in a fixed order (see "Determinism" below), so results
///    are bit-identical to a serial run at any thread count and identical
///    whether gate matrices are fused into packed buffers or multiplied one
///    by one (DESIGN.md "Kernels").
///
/// Determinism contract of the kernel layer:
///  - `Gemm`/`GemmTransA`: element (i, j) is the fp32 chain
///    `acc = beta-term; for p ascending: acc = fma(alpha * a_ip, b_pj, acc)`.
///    The reduction dimension is never split across SIMD lanes or threads,
///    so blocking, tiling, and row partitioning cannot change the result.
///  - `GemmTransB`: element (i, j) reduces along the contiguous dimension
///    with a fixed 8-lane split (`DotLanes`), again identical across block
///    sizes and thread counts. The `segments` parameter chains several
///    consecutive k-segments exactly like back-to-back `beta = 1` calls, so
///    a fused matmul over packed `[Wz|Wr|Wc]` reproduces the three separate
///    per-gate calls bit-for-bit.
///  - All accumulations use `std::fma`, so results do not depend on whether
///    the compiler contracts a particular loop.
/// Caveat: unlike the pre-blocking kernels, zero entries of `a` are no
/// longer skipped, so non-finite inputs (inf/NaN) propagate into products
/// where they previously multiplied with a skipped zero. Finite inputs are
/// unaffected.

namespace t2vec::nn {

/// Dense row-major float matrix. A 1 x n matrix doubles as a row vector.
class Matrix {
 public:
  /// Creates an empty 0 x 0 matrix.
  Matrix() : rows_(0), cols_(0) {}

  /// Creates a zero-initialized rows x cols matrix.
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

  /// Creates a matrix filled with `value`.
  Matrix(size_t rows, size_t cols, float value)
      : rows_(rows), cols_(cols), data_(rows * cols, value) {}

  Matrix(const Matrix&) = default;
  Matrix& operator=(const Matrix&) = default;
  Matrix(Matrix&&) = default;
  Matrix& operator=(Matrix&&) = default;

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  /// Pointer to the start of row r.
  float* Row(size_t r) {
    T2VEC_DCHECK(r < rows_);
    return data_.data() + r * cols_;
  }
  const float* Row(size_t r) const {
    T2VEC_DCHECK(r < rows_);
    return data_.data() + r * cols_;
  }

  float& At(size_t r, size_t c) {
    T2VEC_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  float At(size_t r, size_t c) const {
    T2VEC_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  float& operator()(size_t r, size_t c) { return At(r, c); }
  float operator()(size_t r, size_t c) const { return At(r, c); }

  /// Resizes to rows x cols; contents become unspecified unless the shape is
  /// unchanged. Use SetZero() afterwards when a fresh accumulator is needed.
  void Resize(size_t rows, size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
  }

  /// Sets every element to zero.
  void SetZero() { std::fill(data_.begin(), data_.end(), 0.0f); }

  /// Sets every element to `value`.
  void Fill(float value) { std::fill(data_.begin(), data_.end(), value); }

  /// Underlying storage (for serialization).
  const std::vector<float>& storage() const { return data_; }
  std::vector<float>& storage() { return data_; }

  /// Frobenius norm squared (8-lane double accumulation).
  double SquaredNorm() const;

  /// Debug rendering (small matrices only).
  std::string ToString(size_t max_rows = 6, size_t max_cols = 8) const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<float> data_;
};

/// Whether `a` and `b` have identical shapes.
inline bool SameShape(const Matrix& a, const Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols();
}

// ---------------------------------------------------------------------------
// Strided views. A view is a non-owning rows x cols window whose consecutive
// rows are `ld` floats apart; they let the fused GRU/attention paths run
// GEMMs directly on column blocks of packed buffers without copies.
// ---------------------------------------------------------------------------

/// Mutable view of a row-major block with leading dimension `ld`.
struct MatrixView {
  float* data;
  size_t rows;
  size_t cols;
  size_t ld;

  MatrixView(float* d, size_t r, size_t c, size_t l)
      : data(d), rows(r), cols(c), ld(l) {}
  /// Whole-matrix view.
  MatrixView(Matrix& m)  // NOLINT(google-explicit-constructor)
      : data(m.data()), rows(m.rows()), cols(m.cols()), ld(m.cols()) {}

  float* Row(size_t r) const { return data + r * ld; }
};

/// Read-only view of a row-major block with leading dimension `ld`.
struct ConstMatrixView {
  const float* data;
  size_t rows;
  size_t cols;
  size_t ld;

  ConstMatrixView(const float* d, size_t r, size_t c, size_t l)
      : data(d), rows(r), cols(c), ld(l) {}
  ConstMatrixView(const Matrix& m)  // NOLINT(google-explicit-constructor)
      : data(m.data()), rows(m.rows()), cols(m.cols()), ld(m.cols()) {}
  ConstMatrixView(const MatrixView& v)  // NOLINT(google-explicit-constructor)
      : data(v.data), rows(v.rows), cols(v.cols), ld(v.ld) {}

  const float* Row(size_t r) const { return data + r * ld; }
};

/// Columns [c0, c0 + cols) of `m` as a strided view.
inline MatrixView ColBlock(Matrix* m, size_t c0, size_t cols) {
  T2VEC_DCHECK(c0 + cols <= m->cols());
  return MatrixView(m->data() + c0, m->rows(), cols, m->cols());
}
inline ConstMatrixView ColBlock(const Matrix& m, size_t c0, size_t cols) {
  T2VEC_DCHECK(c0 + cols <= m.cols());
  return ConstMatrixView(m.data() + c0, m.rows(), cols, m.cols());
}

/// Rows [r0, r0 + rows) of `m` (contiguous, same leading dimension).
inline MatrixView RowBlock(Matrix* m, size_t r0, size_t rows) {
  T2VEC_DCHECK(r0 + rows <= m->rows());
  return MatrixView(m->Row(r0), rows, m->cols(), m->cols());
}
inline ConstMatrixView RowBlock(const Matrix& m, size_t r0, size_t rows) {
  T2VEC_DCHECK(r0 + rows <= m.rows());
  return ConstMatrixView(m.Row(r0), rows, m.cols(), m.cols());
}

// ---------------------------------------------------------------------------
// GEMM kernels. out = alpha * op(a) * op(b) + beta * out.
// ---------------------------------------------------------------------------

/// out = alpha * a * b + beta * out, a: m x k, b: k x n.
void GemmV(ConstMatrixView a, ConstMatrixView b, MatrixView out,
           float alpha = 1.0f, float beta = 0.0f);

/// out = alpha * a^T * b + beta * out, a: k x m, b: k x n. Used for weight
/// gradients (dW = x^T dy).
void GemmTransAV(ConstMatrixView a, ConstMatrixView b, MatrixView out,
                 float alpha = 1.0f, float beta = 0.0f);

/// out = alpha * a * b^T + beta * out, a: m x k, b: n x k. Used for input
/// gradients (dx = dy W^T) and for scoring against embedding tables.
///
/// `segment` (0 = whole k) splits the reduction into consecutive segments of
/// that length, chained exactly like separate `beta = 1` calls per segment:
/// `v = beta-term; for each segment s: v = fma(alpha, dot_s, v)`. The fused
/// gate path uses `segment = hidden` over packed `[Wz|Wr|Wc]` so it matches
/// the per-gate calls bit-for-bit.
void GemmTransBV(ConstMatrixView a, ConstMatrixView b, MatrixView out,
                 float alpha = 1.0f, float beta = 0.0f, size_t segment = 0);

/// Matrix-shaped convenience wrappers (the historical API).
void Gemm(const Matrix& a, const Matrix& b, Matrix* out, float alpha = 1.0f,
          float beta = 0.0f);
void GemmTransA(const Matrix& a, const Matrix& b, Matrix* out,
                float alpha = 1.0f, float beta = 0.0f);
void GemmTransB(const Matrix& a, const Matrix& b, Matrix* out,
                float alpha = 1.0f, float beta = 0.0f);

// ---------------------------------------------------------------------------
// Kernel configuration.
// ---------------------------------------------------------------------------

/// Enables/disables the fused packed-weight matmul paths (GRU gates,
/// attention batching, packed linear/NCE scoring). On by default; the off
/// position issues the same kernels once per gate/step and exists so tests
/// can assert the two paths are bit-identical. Thread-safe.
void SetFusedKernels(bool on);
bool FusedKernelsEnabled();

// ---------------------------------------------------------------------------
// Elementwise / rowwise helpers.
// ---------------------------------------------------------------------------

/// out += a (shapes must match).
void AddInPlace(Matrix* out, const Matrix& a);

/// out = a + b.
void Add(const Matrix& a, const Matrix& b, Matrix* out);

/// out += scale * a.
void Axpy(float scale, const Matrix& a, Matrix* out);

/// out *= scale.
void Scale(Matrix* out, float scale);

/// Adds row vector `bias` (1 x n) to every row of `out` (m x n).
void AddRowBroadcast(Matrix* out, const Matrix& bias);

/// bias_grad (1 x n) += column sums of `grad` (m x n).
void SumRowsInto(const Matrix& grad, Matrix* bias_grad);
void SumRowsIntoV(ConstMatrixView grad, Matrix* bias_grad);

/// out = a ⊙ b (Hadamard product).
void Hadamard(const Matrix& a, const Matrix& b, Matrix* out);

/// out += a ⊙ b.
void HadamardAccum(const Matrix& a, const Matrix& b, Matrix* out);

/// Dot product of the flattened matrices (8-lane double accumulation).
double Dot(const Matrix& a, const Matrix& b);

/// Max |a - b| over all elements (shapes must match). For tests.
float MaxAbsDiff(const Matrix& a, const Matrix& b);

}  // namespace t2vec::nn

#endif  // T2VEC_NN_MATRIX_H_
