#include "nn/linear.h"

namespace t2vec::nn {

Linear::Linear(std::string name, size_t in_dim, size_t out_dim, Rng& rng)
    : weight_(name + ".weight", in_dim, out_dim),
      bias_(name + ".bias", 1, out_dim) {
  InitXavier(&weight_.value, rng);
}

void Linear::Forward(const Matrix& x, Matrix* out) const {
  out->Resize(x.rows(), out_dim());
  Gemm(x, weight_.value, out);
  AddRowBroadcast(out, bias_.value);
}

void Linear::Backward(const Matrix& x, const Matrix& d_out, Matrix* d_x) {
  T2VEC_CHECK(d_out.rows() == x.rows() && d_out.cols() == out_dim());
  // dW += x^T d_out; db += colsum(d_out); dx = d_out W^T.
  GemmTransA(x, d_out, &weight_.grad, 1.0f, 1.0f);
  SumRowsInto(d_out, &bias_.grad);
  d_x->Resize(x.rows(), in_dim());
  GemmTransB(d_out, weight_.value, d_x);
}

}  // namespace t2vec::nn
