#include "nn/linear.h"

#include <cstring>

namespace t2vec::nn {

namespace {

// Stacks the per-step matrices into one (T*B) x cols matrix (bitwise).
void PackSteps(const std::vector<Matrix>& steps, Matrix* packed) {
  const size_t batch = steps.front().rows();
  const size_t cols = steps.front().cols();
  packed->Resize(steps.size() * batch, cols);
  for (size_t t = 0; t < steps.size(); ++t) {
    T2VEC_CHECK(steps[t].rows() == batch && steps[t].cols() == cols);
    std::memcpy(packed->Row(t * batch), steps[t].data(),
                batch * cols * sizeof(float));
  }
}

}  // namespace

Linear::Linear(std::string name, size_t in_dim, size_t out_dim, Rng& rng)
    : weight_(name + ".weight", in_dim, out_dim),
      bias_(name + ".bias", 1, out_dim) {
  InitXavier(&weight_.value, rng);
}

void Linear::Forward(const Matrix& x, Matrix* out) const {
  out->Resize(x.rows(), out_dim());
  Gemm(x, weight_.value, out);
  AddRowBroadcast(out, bias_.value);
}

void Linear::Backward(const Matrix& x, const Matrix& d_out, Matrix* d_x) {
  T2VEC_CHECK(d_out.rows() == x.rows() && d_out.cols() == out_dim());
  // dW += x^T d_out; db += colsum(d_out); dx = d_out W^T.
  GemmTransA(x, d_out, &weight_.grad, 1.0f, 1.0f);
  SumRowsInto(d_out, &bias_.grad);
  d_x->Resize(x.rows(), in_dim());
  GemmTransB(d_out, weight_.value, d_x);
}

void Linear::ForwardSeq(const std::vector<Matrix>& xs,
                        std::vector<Matrix>* outs) const {
  T2VEC_CHECK(!xs.empty());
  const size_t batch = xs.front().rows();
  Matrix x_packed;
  PackSteps(xs, &x_packed);
  Matrix out_packed(xs.size() * batch, out_dim());
  if (FusedKernelsEnabled()) {
    GemmV(x_packed, weight_.value, out_packed);
  } else {
    for (size_t t = 0; t < xs.size(); ++t) {
      GemmV(RowBlock(x_packed, t * batch, batch), weight_.value,
            RowBlock(&out_packed, t * batch, batch));
    }
  }
  AddRowBroadcast(&out_packed, bias_.value);
  outs->resize(xs.size());
  for (size_t t = 0; t < xs.size(); ++t) {
    (*outs)[t].Resize(batch, out_dim());
    std::memcpy((*outs)[t].data(), out_packed.Row(t * batch),
                batch * out_dim() * sizeof(float));
  }
}

void Linear::BackwardSeq(const std::vector<Matrix>& xs,
                         const std::vector<Matrix>& d_outs,
                         std::vector<Matrix>* d_xs) {
  T2VEC_CHECK(!xs.empty() && d_outs.size() == xs.size());
  const size_t batch = xs.front().rows();
  Matrix x_packed, d_out_packed;
  PackSteps(xs, &x_packed);
  PackSteps(d_outs, &d_out_packed);
  Matrix d_x_packed(xs.size() * batch, in_dim());
  if (FusedKernelsEnabled()) {
    // One reduction over all T*B rows: the same ascending-row chain as the
    // per-step beta=1 calls below.
    GemmTransAV(x_packed, d_out_packed, weight_.grad, 1.0f, 1.0f);
    SumRowsIntoV(d_out_packed, &bias_.grad);
    GemmTransBV(d_out_packed, weight_.value, d_x_packed);
  } else {
    for (size_t t = 0; t < xs.size(); ++t) {
      GemmTransAV(RowBlock(x_packed, t * batch, batch),
                  RowBlock(d_out_packed, t * batch, batch), weight_.grad,
                  1.0f, 1.0f);
      SumRowsIntoV(RowBlock(d_out_packed, t * batch, batch), &bias_.grad);
      GemmTransBV(RowBlock(d_out_packed, t * batch, batch), weight_.value,
                  RowBlock(&d_x_packed, t * batch, batch));
    }
  }
  d_xs->resize(xs.size());
  for (size_t t = 0; t < xs.size(); ++t) {
    (*d_xs)[t].Resize(batch, in_dim());
    std::memcpy((*d_xs)[t].data(), d_x_packed.Row(t * batch),
                batch * in_dim() * sizeof(float));
  }
}

}  // namespace t2vec::nn
