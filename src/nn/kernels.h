#ifndef T2VEC_NN_KERNELS_H_
#define T2VEC_NN_KERNELS_H_

#include <cstddef>
#include <cstdint>

#include "common/cpu.h"

/// \file
/// Runtime-dispatched inner kernels shared by the GEMM, distance, and
/// quantized-inference paths.
///
/// Every entry point exists in (at least) two implementations — a portable
/// scalar reference (kernels_scalar.cc) and an AVX2+FMA version
/// (kernels_avx2.cc, the only TU in the tree allowed to include
/// <immintrin.h>; the determinism linter enforces that). The pair is
/// bit-identical by construction, not by tolerance: each fp32 kernel keeps 8
/// independent accumulator lanes advanced with fused multiply-adds plus an
/// in-order scalar tail, which maps one-to-one onto a single ymm accumulator
/// — per-element rounding chains are the same instruction-for-value. The
/// f64 kernels use 8 double lanes (two ymm registers) with explicit
/// std::fma on the scalar side so -ffp-contract cannot desynchronize the
/// tiers, and the fixed pairwise combine ((l0+l1)+(l2+l3))+((l4+l5)+(l6+l7)).
/// The int8 kernel accumulates exact int32 products, so any evaluation
/// order gives the same answer.
///
/// Tier selection comes from common/cpu.h (CPU probe + T2VEC_SIMD
/// override). simd_kernels_test memcmp-compares the tiers on every kernel.

namespace t2vec::nn {

/// Function-pointer table for one dispatch tier.
struct KernelOps {
  const char* name;  ///< Tier name, e.g. "scalar", "avx2".

  /// Lane-split fp32 dot product: 8 fma lanes over the body, in-order scalar
  /// fma tail, then tail + lane[0] + ... + lane[7] sequentially.
  float (*dot)(const float* x, const float* y, size_t k);

  /// Dots of four x-rows against one shared y stream; each output element
  /// reduces exactly like dot().
  void (*dot4)(const float* x0, const float* x1, const float* x2,
               const float* x3, const float* y, size_t k, float* out);

  /// Full-width 8 x 32 GEMM micro-tile accumulation: for p in [p0, p1)
  /// ascending, av = alpha * a[r * row_stride + p * step_stride] and
  /// acc[r][j] = fma(av, b[p * ldb + j], acc[r][j]). `acc` is a row-major
  /// 8 x 32 buffer owned by the caller (loaded/stored around the call).
  void (*tile8x32)(float* acc, const float* a, size_t row_stride,
                   size_t step_stride, const float* b, size_t ldb, size_t p0,
                   size_t p1, float alpha);

  /// sum(x[i]^2) in double: 8 fma lanes, in-order fma tail, pairwise combine.
  double (*sqnorm)(const float* x, size_t n);

  /// sum(x[i] * y[i]) in double, same reduction shape as sqnorm.
  double (*dot_f64)(const float* x, const float* y, size_t n);

  /// sum((x[i] - y[i])^2) in double (difference taken in double), same
  /// reduction shape as sqnorm.
  double (*sqdist_f64)(const float* x, const float* y, size_t n);

  /// Exact int8 x int8 -> int32 dot product (no saturation at any width).
  int32_t (*dot_i8)(const int8_t* x, const int8_t* y, size_t k);
};

/// The table for `tier`, falling back to scalar when the tier has no
/// implementation in this build.
const KernelOps& KernelsFor(SimdTier tier);

/// The table for ActiveSimdTier().
const KernelOps& Kernels();

namespace internal {
/// The AVX2 table, or nullptr when this build/platform has none. Defined in
/// kernels_avx2.cc; callers must gate on SimdTierSupported(kAvx2) before
/// executing any of its entries.
const KernelOps* GetAvx2Kernels();
}  // namespace internal

}  // namespace t2vec::nn

#endif  // T2VEC_NN_KERNELS_H_
