#ifndef T2VEC_NN_PARAMETER_H_
#define T2VEC_NN_PARAMETER_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "nn/matrix.h"

/// \file
/// Trainable parameter: a value matrix plus its gradient accumulator, with a
/// stable name used for checkpoint serialization. Layers expose their
/// parameters through `Params()` so optimizers and the checkpoint writer can
/// iterate them uniformly.

namespace t2vec::nn {

/// A named trainable tensor (value + gradient of the same shape).
struct Parameter {
  std::string name;
  Matrix value;
  Matrix grad;

  Parameter() = default;
  Parameter(std::string n, size_t rows, size_t cols)
      : name(std::move(n)), value(rows, cols), grad(rows, cols) {}

  /// Zeroes the gradient accumulator.
  void ZeroGrad() { grad.SetZero(); }
};

/// A flat list of parameter pointers; the unit optimizers operate on.
using ParamList = std::vector<Parameter*>;

/// Global parameter-version counter backing the fused-weight pack caches
/// (nn/gru.h, nn/attention.h): layers stamp their packed `[Wz|Wr|Wc]`
/// buffers with the version they were built at and rebuild lazily when it
/// moves. Anything that mutates parameter values outside a layer's own
/// methods — optimizer steps, checkpoint loads, init helpers, gradcheck
/// perturbations — must call BumpParamVersion(). Thread-safe.
uint64_t ParamVersion();
void BumpParamVersion();

/// Fills `m` with U(-scale, scale).
void InitUniform(Matrix* m, float scale, Rng& rng);

/// Xavier/Glorot uniform init: scale = sqrt(6 / (fan_in + fan_out)), with
/// fan_in = rows, fan_out = cols (matches our x·W row-vector convention).
void InitXavier(Matrix* m, Rng& rng);

/// Total number of scalar weights in the list.
size_t TotalParamCount(const ParamList& params);

/// Clips the *global* L2 norm of all gradients in `params` to `max_norm`
/// (Pascanu et al.; the paper clips at 5). Returns the pre-clip norm.
double ClipGradNorm(const ParamList& params, double max_norm);

}  // namespace t2vec::nn

#endif  // T2VEC_NN_PARAMETER_H_
