#include "nn/parameter.h"

#include <atomic>
#include <cmath>

namespace t2vec::nn {

namespace {
std::atomic<uint64_t> g_param_version{1};
}  // namespace

uint64_t ParamVersion() { return g_param_version.load(std::memory_order_acquire); }

void BumpParamVersion() {
  g_param_version.fetch_add(1, std::memory_order_acq_rel);
}

void InitUniform(Matrix* m, float scale, Rng& rng) {
  for (size_t i = 0; i < m->size(); ++i) {
    m->data()[i] = static_cast<float>(rng.Uniform(-scale, scale));
  }
  BumpParamVersion();
}

void InitXavier(Matrix* m, Rng& rng) {
  const double fan_in = static_cast<double>(m->rows());
  const double fan_out = static_cast<double>(m->cols());
  const float scale = static_cast<float>(std::sqrt(6.0 / (fan_in + fan_out)));
  InitUniform(m, scale, rng);
}

size_t TotalParamCount(const ParamList& params) {
  size_t total = 0;
  for (const Parameter* p : params) total += p->value.size();
  return total;
}

double ClipGradNorm(const ParamList& params, double max_norm) {
  double sq = 0.0;
  for (const Parameter* p : params) sq += p->grad.SquaredNorm();
  const double norm = std::sqrt(sq);
  if (norm > max_norm && norm > 0.0) {
    const float scale = static_cast<float>(max_norm / norm);
    for (Parameter* p : params) Scale(&p->grad, scale);
  }
  return norm;
}

}  // namespace t2vec::nn
