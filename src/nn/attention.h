#ifndef T2VEC_NN_ATTENTION_H_
#define T2VEC_NN_ATTENTION_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "nn/parameter.h"

/// \file
/// Global (Luong-style) attention over encoder outputs — an extension
/// beyond the paper's plain seq2seq (its related work cites Bahdanau et
/// al.; t2vec itself compresses everything into the final hidden state).
///
/// For each decoder step t with hidden h_t and encoder outputs e_1..e_S:
///   score_ts = h_t · (W_a e_s)                     (general bilinear score)
///   α_t      = masked-softmax_s(score_t)           (source padding excluded)
///   c_t      = Σ_s α_ts e_s                        (context vector)
///   ĥ_t      = tanh([h_t ; c_t] W_c)               (attentional hidden)
///
/// ĥ_t replaces h_t as the input to the output projection/loss. The layer
/// is stateless across steps, so forward/backward run over whole sequences.

namespace t2vec::nn {

/// Per-batch activations cached by the attention forward pass. Sequence-long
/// intermediates are stored packed (step-major row blocks: row s*B + b is
/// batch row b of step s) so the whole sequence runs through single GEMMs.
struct AttentionCache {
  Matrix enc_packed;           ///< Encoder outputs, (S*B) x H.
  Matrix keys;                 ///< W_a-projected encoder outputs, (S*B) x H.
  std::vector<Matrix> alphas;  ///< Attention weights per decoder step
                               ///< (B x S).
  Matrix concat;               ///< [h_t ; c_t], (T*B) x 2H.
  std::vector<Matrix> output;  ///< ĥ_t per decoder step (B x H).
};

/// Batched global-attention layer.
class Attention {
 public:
  /// Both encoder and decoder hidden sizes are `hidden`.
  Attention(const std::string& name, size_t hidden, Rng& rng);

  /// Runs attention for every decoder step. `dec_hs` has T matrices (B x H),
  /// `enc_hs` has S matrices (B x H); `src_masks[s][b]` ∈ {0,1} marks valid
  /// source positions (empty = all valid). Results land in `cache`
  /// (cache->output is ĥ).
  void Forward(const std::vector<Matrix>& dec_hs,
               const std::vector<Matrix>& enc_hs,
               const std::vector<std::vector<float>>& src_masks,
               AttentionCache* cache) const;

  /// Backward pass: given d ĥ per decoder step, accumulates weight
  /// gradients and writes gradients for the decoder hiddens (`d_dec_hs`)
  /// and the encoder outputs (`d_enc_hs`).
  void Backward(const std::vector<Matrix>& dec_hs,
                const std::vector<Matrix>& enc_hs,
                const std::vector<std::vector<float>>& src_masks,
                const AttentionCache& cache,
                const std::vector<Matrix>& d_output,
                std::vector<Matrix>* d_dec_hs,
                std::vector<Matrix>* d_enc_hs);

  size_t hidden() const { return wa_.value.rows(); }

  ParamList Params() { return {&wa_, &wc_}; }

 private:
  Parameter wa_;  ///< H x H bilinear score matrix.
  Parameter wc_;  ///< 2H x H output combination.
};

}  // namespace t2vec::nn

#endif  // T2VEC_NN_ATTENTION_H_
