#include "nn/loss.h"

#include <cmath>

#include "nn/ops.h"

namespace t2vec::nn {

double SoftmaxCrossEntropy(const Matrix& logits,
                           const std::vector<int32_t>& targets,
                           int32_t ignore_index, Matrix* d_logits) {
  T2VEC_CHECK(targets.size() == logits.rows());
  const size_t vocab = logits.cols();
  d_logits->Resize(logits.rows(), vocab);

  double total_loss = 0.0;
  for (size_t b = 0; b < logits.rows(); ++b) {
    float* __restrict dl = d_logits->Row(b);
    const int32_t target = targets[b];
    if (target == ignore_index) {
      for (size_t j = 0; j < vocab; ++j) dl[j] = 0.0f;
      continue;
    }
    T2VEC_DCHECK(target >= 0 && static_cast<size_t>(target) < vocab);
    const float* __restrict x = logits.Row(b);
    float max_val = x[0];
    for (size_t j = 1; j < vocab; ++j) max_val = std::max(max_val, x[j]);
    double z = 0.0;
    for (size_t j = 0; j < vocab; ++j) z += std::exp(x[j] - max_val);
    const double log_z = max_val + std::log(z);
    total_loss += log_z - x[static_cast<size_t>(target)];
    const float inv_z = static_cast<float>(1.0 / z);
    for (size_t j = 0; j < vocab; ++j) {
      dl[j] = std::exp(x[j] - max_val) * inv_z;
    }
    dl[static_cast<size_t>(target)] -= 1.0f;
  }
  return total_loss;
}

double SoftCrossEntropy(const Matrix& logits, const Matrix& target_dist,
                        const std::vector<uint8_t>& row_active,
                        Matrix* d_logits) {
  T2VEC_CHECK(SameShape(logits, target_dist));
  T2VEC_CHECK(row_active.size() == logits.rows());
  const size_t vocab = logits.cols();
  d_logits->Resize(logits.rows(), vocab);

  double total_loss = 0.0;
  for (size_t b = 0; b < logits.rows(); ++b) {
    float* __restrict dl = d_logits->Row(b);
    if (!row_active[b]) {
      for (size_t j = 0; j < vocab; ++j) dl[j] = 0.0f;
      continue;
    }
    const float* __restrict x = logits.Row(b);
    const float* __restrict w = target_dist.Row(b);
    float max_val = x[0];
    for (size_t j = 1; j < vocab; ++j) max_val = std::max(max_val, x[j]);
    double z = 0.0;
    for (size_t j = 0; j < vocab; ++j) z += std::exp(x[j] - max_val);
    const double log_z = max_val + std::log(z);
    const float inv_z = static_cast<float>(1.0 / z);
    for (size_t j = 0; j < vocab; ++j) {
      const float p = std::exp(x[j] - max_val) * inv_z;
      if (w[j] > 0.0f) {
        total_loss += static_cast<double>(w[j]) * (log_z - x[j]);
      }
      dl[j] = p - w[j];
    }
  }
  return total_loss;
}

}  // namespace t2vec::nn
