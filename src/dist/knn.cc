#include "dist/knn.h"

#include <algorithm>

#include "common/macros.h"

namespace t2vec::dist {

std::vector<size_t> KnnSearch(const Measure& measure,
                              const traj::Trajectory& query,
                              const std::vector<traj::Trajectory>& database,
                              size_t k) {
  T2VEC_CHECK(k > 0 && k <= database.size());
  std::vector<std::pair<double, size_t>> scored;
  scored.reserve(database.size());
  for (size_t i = 0; i < database.size(); ++i) {
    scored.emplace_back(measure.Distance(query, database[i]), i);
  }
  std::partial_sort(scored.begin(), scored.begin() + static_cast<long>(k),
                    scored.end());
  std::vector<size_t> out;
  out.reserve(k);
  for (size_t i = 0; i < k; ++i) out.push_back(scored[i].second);
  return out;
}

size_t RankOf(const Measure& measure, const traj::Trajectory& query,
              const std::vector<traj::Trajectory>& database,
              size_t target_index) {
  T2VEC_CHECK(target_index < database.size());
  const double target_dist =
      measure.Distance(query, database[target_index]);
  size_t closer = 0;
  for (size_t i = 0; i < database.size(); ++i) {
    if (i == target_index) continue;
    if (measure.Distance(query, database[i]) < target_dist) ++closer;
  }
  return closer + 1;
}

}  // namespace t2vec::dist
