#include "dist/knn.h"

#include <algorithm>

#include "common/macros.h"
#include "common/order.h"
#include "common/sort.h"
#include "common/thread_pool.h"

namespace t2vec::dist {

namespace {

// The classical measures are O(n^2) dynamic programs, so even a handful of
// comparisons is worth splitting across cores.
constexpr size_t kDistanceGrain = 4;

}  // namespace

KnnResult KnnQuery(const Measure& measure, const traj::Trajectory& query,
                   const std::vector<traj::Trajectory>& database, size_t k) {
  // Clamp rather than CHECK: k is request input (serving paths forward it
  // from clients), so over-asking returns the whole database ranked and an
  // empty database returns an empty result — never an abort.
  k = std::min(k, database.size());
  if (k == 0) return {};
  // Distances are computed in parallel (scored[i] is iteration-private);
  // the selection sort stays serial, so results match the serial scan
  // bit for bit at any thread count.
  std::vector<std::pair<double, size_t>> scored(database.size());
  ParallelFor(0, database.size(), kDistanceGrain, [&](size_t i) {
    scored[i] = {measure.Distance(query, database[i]), i};
  });
  // NanLastLess over distinct indices is a strict total order, so the
  // k-prefix is unique on every toolchain.
  TotalOrderPartialSort(scored.begin(), scored.begin() + static_cast<long>(k),
                        scored.end(), NanLastLess{});
  KnnResult out;
  out.ids.reserve(k);
  out.distances.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    out.ids.push_back(scored[i].second);
    out.distances.push_back(scored[i].first);
  }
  return out;
}

size_t RankOf(const Measure& measure, const traj::Trajectory& query,
              const std::vector<traj::Trajectory>& database,
              size_t target_index) {
  T2VEC_CHECK(target_index < database.size());
  const double target_dist =
      measure.Distance(query, database[target_index]);
  std::vector<double> dists(database.size());
  ParallelFor(0, database.size(), kDistanceGrain, [&](size_t i) {
    dists[i] = measure.Distance(query, database[i]);
  });
  size_t closer = 0;
  for (size_t i = 0; i < database.size(); ++i) {
    if (i == target_index) continue;
    if (dists[i] < target_dist) ++closer;
  }
  return closer + 1;
}

}  // namespace t2vec::dist
