#include "dist/cms.h"

#include <algorithm>

#include "common/sort.h"

namespace t2vec::dist {

double CellJaccardDistance(std::vector<geo::Token> a,
                           std::vector<geo::Token> b) {
  // Equal tokens are indistinguishable, so any sort yields the same bytes;
  // the pinned sort keeps the tree free of raw std::sort all the same.
  DeterministicSort(a.begin(), a.end());
  a.erase(std::unique(a.begin(), a.end()), a.end());
  DeterministicSort(b.begin(), b.end());
  b.erase(std::unique(b.begin(), b.end()), b.end());
  if (a.empty() && b.empty()) return 0.0;

  size_t common = 0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++common;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  const size_t uni = a.size() + b.size() - common;
  return 1.0 - static_cast<double>(common) / static_cast<double>(uni);
}

double CmsMeasure::Distance(const traj::Trajectory& a,
                            const traj::Trajectory& b) const {
  std::vector<geo::Token> ta, tb;
  ta.reserve(a.size());
  tb.reserve(b.size());
  for (const geo::Point& p : a.points) ta.push_back(vocab_->TokenOf(p));
  for (const geo::Point& p : b.points) tb.push_back(vocab_->TokenOf(p));
  return CellJaccardDistance(std::move(ta), std::move(tb));
}

}  // namespace t2vec::dist
