#ifndef T2VEC_DIST_KNN_H_
#define T2VEC_DIST_KNN_H_

#include <cstddef>
#include <vector>

#include "dist/measure.h"
#include "traj/trajectory.h"

/// \file
/// Brute-force k-nearest-neighbor search over a trajectory database under
/// any Measure. This is the O(DB · n²) query path the paper's Fig. 6
/// compares t2vec's linear scan of vectors against.

namespace t2vec::dist {

/// A ranked k-NN answer: `ids[i]` is the i-th nearest entry, `distances[i]`
/// its distance, both ascending by distance. Returning the distances with
/// the ranking lets callers stop recomputing them after the search (the
/// sorted scan already paid for every one of them).
struct KnnResult {
  std::vector<size_t> ids;
  std::vector<double> distances;

  size_t size() const { return ids.size(); }
  bool empty() const { return ids.empty(); }
};

/// The k database trajectories closest to `query` under `measure`, ordered
/// by ascending distance (NaN distances order last, ties by index). k is
/// clamped to the database size: over-asking ranks the whole database and
/// an empty database yields an empty result, never an abort.
KnnResult KnnQuery(const Measure& measure, const traj::Trajectory& query,
                   const std::vector<traj::Trajectory>& database, size_t k);

/// 1-based rank of `target_index` in the ordering of `database` by distance
/// to `query` (rank 1 = nearest). Counts strictly closer entries plus one;
/// among equal distances the target wins, which makes the most-similar-
/// search evaluation insensitive to tie order.
size_t RankOf(const Measure& measure, const traj::Trajectory& query,
              const std::vector<traj::Trajectory>& database,
              size_t target_index);

}  // namespace t2vec::dist

#endif  // T2VEC_DIST_KNN_H_
