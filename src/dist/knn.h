#ifndef T2VEC_DIST_KNN_H_
#define T2VEC_DIST_KNN_H_

#include <cstddef>
#include <vector>

#include "dist/measure.h"
#include "traj/trajectory.h"

/// \file
/// Brute-force k-nearest-neighbor search over a trajectory database under
/// any Measure. This is the O(DB · n²) query path the paper's Fig. 6
/// compares t2vec's linear scan of vectors against.

namespace t2vec::dist {

/// Indices of the k database trajectories closest to `query` under
/// `measure`, ordered by ascending distance (ties broken by index).
std::vector<size_t> KnnSearch(const Measure& measure,
                              const traj::Trajectory& query,
                              const std::vector<traj::Trajectory>& database,
                              size_t k);

/// 1-based rank of `target_index` in the ordering of `database` by distance
/// to `query` (rank 1 = nearest). Counts strictly closer entries plus one;
/// among equal distances the target wins, which makes the most-similar-
/// search evaluation insensitive to tie order.
size_t RankOf(const Measure& measure, const traj::Trajectory& query,
              const std::vector<traj::Trajectory>& database,
              size_t target_index);

}  // namespace t2vec::dist

#endif  // T2VEC_DIST_KNN_H_
