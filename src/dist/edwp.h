#ifndef T2VEC_DIST_EDWP_H_
#define T2VEC_DIST_EDWP_H_

#include <vector>

#include "dist/measure.h"
#include "geo/point.h"

/// \file
/// Edit Distance with Projections (EDwP) — the paper's strongest baseline,
/// reimplemented from the definitions in Ranu et al., "Indexing and Matching
/// Trajectories under Inconsistent Sampling Rates", ICDE 2015 (the authors
/// only shipped a compiled JAR; see DESIGN.md §1).
///
/// Ingredients preserved from the original:
///  - *Replacement* matches a segment of one trajectory with a segment of
///    the other at cost d(start, start') + d(end, end').
///  - *Insertion* uses linear interpolation: when one trajectory advances
///    while the other stays on its current segment, the stationary segment
///    contributes the *projections* of the advancing segment's endpoints, so
///    an extra point lying on the other trajectory's line costs ~0.
///  - Every operation's cost is weighted by its *coverage* (the total length
///    of trajectory it explains), making the measure robust to dense bursts
///    of nearly coincident points.
///
/// The dynamic program is the standard O(n·m) edit-distance lattice with
/// these costs. Like the original, the measure degrades when the dropping
/// rate is so high that straight-line interpolation no longer approximates
/// the route (paper Sec. V-C1, Experiment 2).

namespace t2vec::dist {

/// Raw EDwP value between two point sequences (lower = more similar).
double Edwp(const std::vector<geo::Point>& a,
            const std::vector<geo::Point>& b);

class EdwpMeasure : public Measure {
 public:
  double Distance(const traj::Trajectory& a,
                  const traj::Trajectory& b) const override {
    return Edwp(a.points, b.points);
  }
  std::string Name() const override { return "EDwP"; }
};

}  // namespace t2vec::dist

#endif  // T2VEC_DIST_EDWP_H_
