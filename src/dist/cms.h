#ifndef T2VEC_DIST_CMS_H_
#define T2VEC_DIST_CMS_H_

#include <vector>

#include "dist/measure.h"
#include "geo/vocab.h"

/// \file
/// Common-set (CMS) baseline: trajectories are mapped to their hot-cell
/// token *sets* and compared by Jaccard distance. The paper includes CMS to
/// test whether the encoder merely counts shared cells; CMS ignores order,
/// which is why it performs worst in the most-similar-search experiments.

namespace t2vec::dist {

class CmsMeasure : public Measure {
 public:
  /// The vocabulary must outlive the measure.
  explicit CmsMeasure(const geo::HotCellVocab* vocab) : vocab_(vocab) {}

  /// 1 - |cells(a) ∩ cells(b)| / |cells(a) ∪ cells(b)|.
  double Distance(const traj::Trajectory& a,
                  const traj::Trajectory& b) const override;

  std::string Name() const override { return "CMS"; }

 private:
  const geo::HotCellVocab* vocab_;
};

/// Jaccard distance between two token multiset-collapsed sets; exposed for
/// tests and for precomputed-token callers.
double CellJaccardDistance(std::vector<geo::Token> a,
                           std::vector<geo::Token> b);

}  // namespace t2vec::dist

#endif  // T2VEC_DIST_CMS_H_
