#include "dist/classic.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/macros.h"

namespace t2vec::dist {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

double Dtw(const std::vector<geo::Point>& a,
           const std::vector<geo::Point>& b) {
  T2VEC_CHECK(!a.empty() && !b.empty());
  const size_t n = a.size(), m = b.size();
  // Rolling rows: prev[j] = D(i-1, j), curr[j] = D(i, j).
  std::vector<double> prev(m + 1, kInf), curr(m + 1, kInf);
  prev[0] = 0.0;
  for (size_t i = 1; i <= n; ++i) {
    curr[0] = kInf;
    for (size_t j = 1; j <= m; ++j) {
      const double cost = geo::Distance(a[i - 1], b[j - 1]);
      curr[j] = cost + std::min({prev[j], curr[j - 1], prev[j - 1]});
    }
    std::swap(prev, curr);
  }
  return prev[m];
}

int Lcss(const std::vector<geo::Point>& a, const std::vector<geo::Point>& b,
         double eps) {
  const size_t n = a.size(), m = b.size();
  if (n == 0 || m == 0) return 0;
  const double eps_sq = eps * eps;
  std::vector<int> prev(m + 1, 0), curr(m + 1, 0);
  for (size_t i = 1; i <= n; ++i) {
    for (size_t j = 1; j <= m; ++j) {
      if (geo::SquaredDistance(a[i - 1], b[j - 1]) <= eps_sq) {
        curr[j] = prev[j - 1] + 1;
      } else {
        curr[j] = std::max(prev[j], curr[j - 1]);
      }
    }
    std::swap(prev, curr);
  }
  return prev[m];
}

double LcssDistance(const std::vector<geo::Point>& a,
                    const std::vector<geo::Point>& b, double eps) {
  if (a.empty() || b.empty()) return 1.0;
  const double common = Lcss(a, b, eps);
  return 1.0 - common / static_cast<double>(std::min(a.size(), b.size()));
}

int Edr(const std::vector<geo::Point>& a, const std::vector<geo::Point>& b,
        double eps) {
  const size_t n = a.size(), m = b.size();
  if (n == 0) return static_cast<int>(m);
  if (m == 0) return static_cast<int>(n);
  std::vector<int> prev(m + 1), curr(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = static_cast<int>(j);
  for (size_t i = 1; i <= n; ++i) {
    curr[0] = static_cast<int>(i);
    for (size_t j = 1; j <= m; ++j) {
      // EDR's match predicate: within eps in each coordinate.
      const bool match = std::fabs(a[i - 1].x - b[j - 1].x) <= eps &&
                         std::fabs(a[i - 1].y - b[j - 1].y) <= eps;
      const int subcost = match ? 0 : 1;
      curr[j] = std::min({prev[j - 1] + subcost, prev[j] + 1, curr[j - 1] + 1});
    }
    std::swap(prev, curr);
  }
  return prev[m];
}

double Erp(const std::vector<geo::Point>& a, const std::vector<geo::Point>& b,
           const geo::Point& gap) {
  const size_t n = a.size(), m = b.size();
  std::vector<double> prev(m + 1, 0.0), curr(m + 1, 0.0);
  // Deleting all of b's prefix: pay distance to the gap element.
  for (size_t j = 1; j <= m; ++j) {
    prev[j] = prev[j - 1] + geo::Distance(b[j - 1], gap);
  }
  for (size_t i = 1; i <= n; ++i) {
    curr[0] = prev[0] + geo::Distance(a[i - 1], gap);
    for (size_t j = 1; j <= m; ++j) {
      const double match = prev[j - 1] + geo::Distance(a[i - 1], b[j - 1]);
      const double del_a = prev[j] + geo::Distance(a[i - 1], gap);
      const double del_b = curr[j - 1] + geo::Distance(b[j - 1], gap);
      curr[j] = std::min({match, del_a, del_b});
    }
    std::swap(prev, curr);
  }
  return prev[m];
}

double DiscreteFrechet(const std::vector<geo::Point>& a,
                       const std::vector<geo::Point>& b) {
  T2VEC_CHECK(!a.empty() && !b.empty());
  const size_t n = a.size(), m = b.size();
  std::vector<double> prev(m), curr(m);
  for (size_t j = 0; j < m; ++j) {
    const double d = geo::Distance(a[0], b[j]);
    prev[j] = (j == 0) ? d : std::max(prev[j - 1], d);
  }
  for (size_t i = 1; i < n; ++i) {
    for (size_t j = 0; j < m; ++j) {
      const double d = geo::Distance(a[i], b[j]);
      double reach;
      if (j == 0) {
        reach = prev[0];
      } else {
        reach = std::min({prev[j], prev[j - 1], curr[j - 1]});
      }
      curr[j] = std::max(reach, d);
    }
    std::swap(prev, curr);
  }
  return prev[m - 1];
}

double Hausdorff(const std::vector<geo::Point>& a,
                 const std::vector<geo::Point>& b) {
  T2VEC_CHECK(!a.empty() && !b.empty());
  auto directed = [](const std::vector<geo::Point>& from,
                     const std::vector<geo::Point>& to) {
    double worst = 0.0;
    for (const geo::Point& p : from) {
      double best = kInf;
      for (const geo::Point& q : to) {
        best = std::min(best, geo::SquaredDistance(p, q));
      }
      worst = std::max(worst, best);
    }
    return std::sqrt(worst);
  };
  return std::max(directed(a, b), directed(b, a));
}

}  // namespace t2vec::dist
