#ifndef T2VEC_DIST_CLASSIC_H_
#define T2VEC_DIST_CLASSIC_H_

#include <string>
#include <vector>

#include "dist/measure.h"
#include "geo/point.h"

/// \file
/// Classical pairwise point-matching measures (the paper's baselines plus
/// the standard measures its related work discusses). All are O(n·m)
/// dynamic programs over the two point sequences — the quadratic complexity
/// the paper's linear-time representation replaces.
///
/// Free functions compute the raw values; Measure wrappers adapt them to the
/// common ranking interface.

namespace t2vec::dist {

/// Dynamic Time Warping: sum of matched Euclidean distances under the
/// cheapest monotone alignment (Yi et al. 1998).
double Dtw(const std::vector<geo::Point>& a, const std::vector<geo::Point>& b);

/// Longest Common SubSequence length with spatial threshold `eps`: points
/// match when within Euclidean distance eps (Vlachos et al. 2002).
int Lcss(const std::vector<geo::Point>& a, const std::vector<geo::Point>& b,
         double eps);

/// LCSS turned into a distance in [0, 1]: 1 - LCSS / min(|a|, |b|).
double LcssDistance(const std::vector<geo::Point>& a,
                    const std::vector<geo::Point>& b, double eps);

/// Edit Distance on Real sequences (Chen et al. 2005): unit cost per
/// unmatched point, match when within eps in both coordinates.
int Edr(const std::vector<geo::Point>& a, const std::vector<geo::Point>& b,
        double eps);

/// Edit distance with Real Penalty (Chen & Ng 2004): metric edit distance
/// with gap element `gap`.
double Erp(const std::vector<geo::Point>& a, const std::vector<geo::Point>& b,
           const geo::Point& gap);

/// Discrete Fréchet distance (coupling distance).
double DiscreteFrechet(const std::vector<geo::Point>& a,
                       const std::vector<geo::Point>& b);

/// Symmetric Hausdorff distance between the point sets.
double Hausdorff(const std::vector<geo::Point>& a,
                 const std::vector<geo::Point>& b);

// ---------------------------------------------------------------------------
// Measure adapters.
// ---------------------------------------------------------------------------

class DtwMeasure : public Measure {
 public:
  double Distance(const traj::Trajectory& a,
                  const traj::Trajectory& b) const override {
    return Dtw(a.points, b.points);
  }
  std::string Name() const override { return "DTW"; }
};

class LcssMeasure : public Measure {
 public:
  /// `eps`: spatial matching threshold in meters. The original papers set it
  /// relative to the data scale; we default to the grid cell size.
  explicit LcssMeasure(double eps) : eps_(eps) {}
  double Distance(const traj::Trajectory& a,
                  const traj::Trajectory& b) const override {
    return LcssDistance(a.points, b.points, eps_);
  }
  std::string Name() const override { return "LCSS"; }

 private:
  double eps_;
};

class EdrMeasure : public Measure {
 public:
  explicit EdrMeasure(double eps) : eps_(eps) {}
  double Distance(const traj::Trajectory& a,
                  const traj::Trajectory& b) const override {
    return Edr(a.points, b.points, eps_);
  }
  std::string Name() const override { return "EDR"; }

 private:
  double eps_;
};

class ErpMeasure : public Measure {
 public:
  explicit ErpMeasure(geo::Point gap) : gap_(gap) {}
  double Distance(const traj::Trajectory& a,
                  const traj::Trajectory& b) const override {
    return Erp(a.points, b.points, gap_);
  }
  std::string Name() const override { return "ERP"; }

 private:
  geo::Point gap_;
};

class FrechetMeasure : public Measure {
 public:
  double Distance(const traj::Trajectory& a,
                  const traj::Trajectory& b) const override {
    return DiscreteFrechet(a.points, b.points);
  }
  std::string Name() const override { return "Frechet"; }
};

class HausdorffMeasure : public Measure {
 public:
  double Distance(const traj::Trajectory& a,
                  const traj::Trajectory& b) const override {
    return Hausdorff(a.points, b.points);
  }
  std::string Name() const override { return "Hausdorff"; }
};

}  // namespace t2vec::dist

#endif  // T2VEC_DIST_CLASSIC_H_
