#include "dist/edwp.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "common/macros.h"

namespace t2vec::dist {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// A DP cell: cheapest cost of explaining the prefixes, plus the *current
// aligned positions* on each trajectory. After an insertion the current
// position is a projection point interior to a segment (the insertion
// split the segment there); subsequent operations continue from it. The
// positions follow the argmin path, which is how the published EDwP
// implementation keeps its quadratic DP despite virtual split points.
struct Cell {
  double cost = kInf;
  geo::Point pa;  // Current position on trajectory a.
  geo::Point pb;  // Current position on trajectory b.
};

// Coverage-weighted cost of one edit operation that moves the alignment
// from (from_a, from_b) to (to_a, to_b):
//   Replacement(e1, e2) * Coverage(e1, e2)
//     = (d(e1.start, e2.start) + d(e1.end, e2.end)) * (|e1| + |e2|).
double OpCost(const geo::Point& from_a, const geo::Point& from_b,
              const geo::Point& to_a, const geo::Point& to_b) {
  const double rep =
      geo::Distance(from_a, from_b) + geo::Distance(to_a, to_b);
  const double coverage =
      geo::Distance(from_a, to_a) + geo::Distance(from_b, to_b);
  return rep * coverage;
}

}  // namespace

double Edwp(const std::vector<geo::Point>& a,
            const std::vector<geo::Point>& b) {
  T2VEC_CHECK(!a.empty() && !b.empty());
  const size_t n = a.size(), m = b.size();
  if (n == 1 && m == 1) return geo::Distance(a[0], b[0]);

  std::vector<Cell> prev(m), curr(m);

  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < m; ++j) {
      Cell best;
      if (i == 0 && j == 0) {
        best = {0.0, a[0], b[0]};
        curr[0] = best;
        continue;
      }

      // Replacement: segments (pa -> a[i]) and (pb -> b[j]) match.
      if (i > 0 && j > 0 && prev[j - 1].cost < kInf) {
        const Cell& s = prev[j - 1];
        const double c = s.cost + OpCost(s.pa, s.pb, a[i], b[j]);
        if (c < best.cost) best = {c, a[i], b[j]};
      }

      // Insertion into b: a advances to a[i]; b inserts the projection of
      // a[i] onto its upcoming segment (pb -> b[j+1]), splitting it there.
      if (i > 0 && prev[j].cost < kInf) {
        const Cell& s = prev[j];
        const geo::Point p =
            (j + 1 < m) ? geo::ProjectOntoSegment(a[i], s.pb, b[j + 1])
                        : b[j];
        const double c = s.cost + OpCost(s.pa, s.pb, a[i], p);
        if (c < best.cost) best = {c, a[i], p};
      }

      // Insertion into a: symmetric.
      if (j > 0 && curr[j - 1].cost < kInf) {
        const Cell& s = curr[j - 1];
        const geo::Point p =
            (i + 1 < n) ? geo::ProjectOntoSegment(b[j], s.pa, a[i + 1])
                        : a[i];
        const double c = s.cost + OpCost(s.pa, s.pb, p, b[j]);
        if (c < best.cost) best = {c, p, b[j]};
      }

      curr[j] = best;
    }
    std::swap(prev, curr);
    for (Cell& c : curr) c.cost = kInf;
  }
  return prev[m - 1].cost;
}

}  // namespace t2vec::dist
