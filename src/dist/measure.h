#ifndef T2VEC_DIST_MEASURE_H_
#define T2VEC_DIST_MEASURE_H_

#include <memory>
#include <string>

#include "traj/trajectory.h"

/// \file
/// Common interface for trajectory distance measures. Lower = more similar.
/// The evaluation harness ranks and searches through this interface so every
/// baseline and t2vec itself are interchangeable.

namespace t2vec::dist {

/// A (dis)similarity measure between two trajectories.
class Measure {
 public:
  virtual ~Measure() = default;

  /// Distance between `a` and `b`; lower means more similar. Must be
  /// symmetric and non-negative, and 0 for identical inputs.
  virtual double Distance(const traj::Trajectory& a,
                          const traj::Trajectory& b) const = 0;

  /// Short display name ("EDR", "t2vec", ...).
  virtual std::string Name() const = 0;
};

}  // namespace t2vec::dist

#endif  // T2VEC_DIST_MEASURE_H_
