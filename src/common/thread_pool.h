#ifndef T2VEC_COMMON_THREAD_POOL_H_
#define T2VEC_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "common/sync.h"

/// \file
/// Deterministic data parallelism for the read-side hot paths.
///
/// The design goal is *bit-identical results at every thread count*. That is
/// achieved by restricting parallelism to loops whose iterations are
/// independent and write to disjoint outputs: `ParallelFor` splits the index
/// range into contiguous chunks by **static partitioning** (a pure function
/// of the range and the thread count, never of scheduling order), and all
/// cross-iteration combining — sorts, reductions over floating-point values —
/// stays serial at the call site. Under that contract the outputs of a
/// parallel run and a serial run are the same bytes, which keeps the model
/// cache, the benchmark tables, and every test reproducible regardless of
/// `T2VEC_THREADS`.
///
/// Thread-count resolution, in decreasing priority:
///   1. an explicit `num_threads` argument to `ParallelFor` (> 0),
///   2. the process-wide value set by `SetNumThreads` (tests, config wiring),
///   3. the `T2VEC_THREADS` environment variable,
///   4. `std::thread::hardware_concurrency()`.
///
/// Nested `ParallelFor` calls run inline on the calling worker: the inner
/// loop's work is already covered by the outer partitioning, and running it
/// inline makes nesting deadlock-free by construction.

namespace t2vec {

/// A fixed set of worker threads executing submitted closures. Construction
/// is cheap relative to the loops it serves; most code should use the
/// process-wide instance behind `ParallelFor` rather than building pools.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  /// Number of worker threads.
  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Runs every task to completion before returning. The caller participates
  /// (it executes queued tasks too), so a pool of W workers gives W + 1
  /// concurrent lanes and `Run` never blocks on an idle queue.
  void Run(std::vector<std::function<void()>> tasks);

  /// Lazily constructed process-wide pool sized by `T2VEC_THREADS` (or
  /// hardware concurrency). Never destroyed before process exit.
  static ThreadPool& Global();

  /// True when called from inside a `Run` task (worker or participating
  /// caller); used to run nested parallel loops inline.
  static bool InParallelRegion();

 private:
  void WorkerLoop();
  /// Pops and runs queued tasks until the queue drains; returns when empty.
  /// Drops mu_ around each task body and reacquires it to pop the next.
  void DrainQueue() REQUIRES(mu_);

  std::vector<std::thread> workers_;
  /// Serializes concurrent Run() callers; held across the whole batch, so
  /// it is always taken before mu_.
  sync::Mutex run_mu_ ACQUIRED_BEFORE(mu_);
  sync::Mutex mu_;
  sync::CondVar work_cv_;  // Signals workers: task queued or stop.
  sync::CondVar done_cv_;  // Signals Run(): all tasks finished.
  std::vector<std::function<void()>> queue_ GUARDED_BY(mu_);
  size_t next_task_ GUARDED_BY(mu_) = 0;  // Queue front (popped in order).
  size_t in_flight_ GUARDED_BY(mu_) = 0;  // Queued but not yet finished.
  bool stop_ GUARDED_BY(mu_) = false;
};

/// Sets the process-wide thread count used when no explicit override is
/// given. `n <= 0` restores the default (`T2VEC_THREADS` env, then hardware
/// concurrency). Thread-safe; mainly for tests and benchmark harnesses.
void SetNumThreads(int n);

/// The thread count `ParallelFor` resolves to when `num_threads <= 0`.
int GetNumThreads();

/// Sets the process-wide thread count and returns the previous raw setting
/// (0 = default resolution). The returned value round-trips through
/// `SetNumThreads` to restore the prior state.
int ExchangeNumThreads(int n);

/// RAII override of the process-wide thread count (restores the previous
/// setting on destruction). `n <= 0` leaves the current setting untouched.
/// Used by the trainer to scope `T2VecConfig::num_threads` to RunBatch.
class ScopedNumThreads {
 public:
  explicit ScopedNumThreads(int n)
      : active_(n > 0), prev_(active_ ? ExchangeNumThreads(n) : 0) {}
  ~ScopedNumThreads() {
    if (active_) SetNumThreads(prev_);
  }
  ScopedNumThreads(const ScopedNumThreads&) = delete;
  ScopedNumThreads& operator=(const ScopedNumThreads&) = delete;

 private:
  bool active_;
  int prev_;
};

/// Applies `fn(i)` for every i in [begin, end), in parallel over at most
/// `num_threads` statically partitioned contiguous chunks.
///
/// Determinism contract: `fn` must write only to outputs owned by iteration
/// i (disjoint across iterations) and must not read outputs of other
/// iterations; under that contract the result is bit-identical to the serial
/// loop for every thread count. `grain` is the minimum chunk size — ranges
/// of at most `grain` iterations (and nested calls) run inline serially.
/// `num_threads <= 0` uses `GetNumThreads()`.
void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t)>& fn, int num_threads = 0);

}  // namespace t2vec

#endif  // T2VEC_COMMON_THREAD_POOL_H_
