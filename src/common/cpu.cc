#include "common/cpu.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"

namespace t2vec {

namespace {

bool CpuHasAvx2Fma() {
#if defined(__x86_64__) || defined(__i386__)
  // __builtin_cpu_supports consults the libgcc CPU model, which checks
  // OSXSAVE/XGETBV as well as the CPUID feature bits, so an OS that does not
  // save YMM state correctly reports "no AVX2".
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

constexpr int kTierUnresolved = -1;

// Not mutex-guarded (DESIGN.md §5.4): the cell is resolved once by a
// compare-exchange race whose loser adopts the winner's value, then only
// read. Acquire/release ordering on the CAS and the SetSimdTier store is
// the whole protocol.
std::atomic<int>& TierCell() {
  static std::atomic<int> cell{kTierUnresolved};
  return cell;
}

SimdTier ClampToSupported(SimdTier requested, const char* origin) {
  if (SimdTierSupported(requested)) return requested;
  T2VEC_LOG_WARN("SIMD tier '%s' requested via %s but unsupported by this "
                 "CPU; falling back to scalar",
                 SimdTierName(requested), origin);
  return SimdTier::kScalar;
}

SimdTier ResolveTier() {
  if (const char* env = std::getenv("T2VEC_SIMD")) {
    if (std::strcmp(env, "scalar") == 0) return SimdTier::kScalar;
    if (std::strcmp(env, "avx2") == 0) {
      return ClampToSupported(SimdTier::kAvx2, "T2VEC_SIMD");
    }
    T2VEC_LOG_WARN("Unknown T2VEC_SIMD value '%s' (want scalar|avx2); "
                   "using CPU probe",
                   env);
  }
  return CpuHasAvx2Fma() ? SimdTier::kAvx2 : SimdTier::kScalar;
}

}  // namespace

const char* SimdTierName(SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar:
      return "scalar";
    case SimdTier::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool SimdTierSupported(SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar:
      return true;
    case SimdTier::kAvx2:
      return CpuHasAvx2Fma();
  }
  return false;
}

SimdTier ActiveSimdTier() {
  int cached = TierCell().load(std::memory_order_acquire);
  if (cached != kTierUnresolved) return static_cast<SimdTier>(cached);
  const SimdTier resolved = ResolveTier();
  int expected = kTierUnresolved;
  if (TierCell().compare_exchange_strong(expected, static_cast<int>(resolved),
                                         std::memory_order_acq_rel)) {
    T2VEC_LOG_INFO("SIMD dispatch tier: %s", SimdTierName(resolved));
    return resolved;
  }
  // Another thread resolved first; its value is authoritative.
  return static_cast<SimdTier>(expected);
}

SimdTier SetSimdTier(SimdTier tier) {
  const SimdTier installed = ClampToSupported(tier, "SetSimdTier");
  TierCell().store(static_cast<int>(installed), std::memory_order_release);
  return installed;
}

}  // namespace t2vec
