#include "common/fault.h"

#include <cerrno>
#include <cstdlib>
#include <map>

#include "common/sync.h"

namespace t2vec::fault {

namespace internal {
std::atomic<bool> g_armed{false};
}  // namespace internal

namespace {

struct Site {
  uint64_t nth = 0;  // 1-based hit to fail; the period when periodic.
  int err = 0;       // errno to inject on that hit.
  uint64_t hits = 0;
  bool periodic = false;  // fire on every nth-th hit instead of once.
};

// The armed-site table and its lock, leaked so fault points hit during
// static destruction never touch a dead registry.
struct Registry {
  sync::Mutex mu;
  std::map<std::string, Site> sites GUARDED_BY(mu);
};

Registry& Reg() {
  static Registry* reg = new Registry;
  return *reg;
}

int ParseErrno(const std::string& token) {
  static const std::map<std::string, int> kNames = {
      {"EIO", EIO},
      {"ENOSPC", ENOSPC},
      {"EACCES", EACCES},
      {"EDQUOT", EDQUOT},
      {"EROFS", EROFS},
      {"EMFILE", EMFILE},
      {"ENOENT", ENOENT},
      {"ECONNRESET", ECONNRESET},
      {"ECONNREFUSED", ECONNREFUSED},
      {"ECONNABORTED", ECONNABORTED},
      {"ETIMEDOUT", ETIMEDOUT},
      {"EPIPE", EPIPE},
      {"EAGAIN", EAGAIN},
  };
  const auto it = kNames.find(token);
  if (it != kNames.end()) return it->second;
  char* end = nullptr;
  const long value = std::strtol(token.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || value <= 0) return 0;
  return static_cast<int>(value);
}

// Arms sites named in T2VEC_FAULT before main() runs, so the env syntax
// works for subprocess/CLI tests without any code hook.
const bool g_env_loaded = [] {
  const char* spec = std::getenv("T2VEC_FAULT");
  if (spec != nullptr) ArmFromSpec(spec);
  return true;
}();

}  // namespace

void Arm(const std::string& site, uint64_t nth, int err) {
  if (site.empty() || nth == 0 || err == 0) return;
  Registry& reg = Reg();
  sync::MutexLock lock(&reg.mu);
  reg.sites[site] = Site{nth, err, 0, /*periodic=*/false};
  internal::g_armed.store(true, std::memory_order_relaxed);
}

void ArmEvery(const std::string& site, uint64_t period, int err) {
  if (site.empty() || period == 0 || err == 0) return;
  Registry& reg = Reg();
  sync::MutexLock lock(&reg.mu);
  reg.sites[site] = Site{period, err, 0, /*periodic=*/true};
  internal::g_armed.store(true, std::memory_order_relaxed);
}

bool ArmFromSpec(const std::string& spec) {
  size_t start = 0;
  while (start < spec.size()) {
    size_t end = spec.find(';', start);
    if (end == std::string::npos) end = spec.size();
    const std::string triple = spec.substr(start, end - start);
    start = end + 1;
    if (triple.empty()) continue;
    const size_t c1 = triple.find(':');
    const size_t c2 = c1 == std::string::npos ? std::string::npos
                                              : triple.find(':', c1 + 1);
    if (c1 == std::string::npos || c2 == std::string::npos) return false;
    const std::string site = triple.substr(0, c1);
    char* num_end = nullptr;
    std::string nth_str = triple.substr(c1 + 1, c2 - c1 - 1);
    const bool periodic = !nth_str.empty() && nth_str[0] == '*';
    if (periodic) nth_str.erase(0, 1);
    const unsigned long long nth =
        std::strtoull(nth_str.c_str(), &num_end, 10);
    if (nth_str.empty() || num_end == nullptr || *num_end != '\0' || nth == 0)
      return false;
    const int err = ParseErrno(triple.substr(c2 + 1));
    if (site.empty() || err == 0) return false;
    if (periodic) {
      ArmEvery(site, nth, err);
    } else {
      Arm(site, nth, err);
    }
  }
  return true;
}

void DisarmAll() {
  Registry& reg = Reg();
  sync::MutexLock lock(&reg.mu);
  reg.sites.clear();
  internal::g_armed.store(false, std::memory_order_relaxed);
}

uint64_t HitCount(const std::string& site) {
  Registry& reg = Reg();
  sync::ReaderMutexLock lock(&reg.mu);
  const auto it = reg.sites.find(site);
  return it == reg.sites.end() ? 0 : it->second.hits;
}

namespace internal {

int HitSlow(const char* site) {
  Registry& reg = Reg();
  sync::MutexLock lock(&reg.mu);
  const auto it = reg.sites.find(site);
  if (it == reg.sites.end()) return 0;
  ++it->second.hits;
  if (it->second.periodic) {
    return it->second.hits % it->second.nth == 0 ? it->second.err : 0;
  }
  return it->second.hits == it->second.nth ? it->second.err : 0;
}

}  // namespace internal

}  // namespace t2vec::fault
