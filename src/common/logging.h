#ifndef T2VEC_COMMON_LOGGING_H_
#define T2VEC_COMMON_LOGGING_H_

#include <cstdarg>
#include <cstdio>

/// \file
/// Tiny leveled logger. Training and experiment drivers use it for progress
/// reporting; it writes to stderr so that table output on stdout stays clean.

namespace t2vec {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Returns the mutable global minimum level (default kInfo).
inline LogLevel& GlobalLogLevel() {
  static LogLevel level = LogLevel::kInfo;
  return level;
}

/// printf-style logging to stderr, filtered by GlobalLogLevel().
inline void Logf(LogLevel level, const char* fmt, ...) {
  if (level < GlobalLogLevel()) return;
  const char* names[] = {"DEBUG", "INFO", "WARN", "ERROR"};
  std::fprintf(stderr, "[%s] ", names[static_cast<int>(level)]);
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fprintf(stderr, "\n");
}

}  // namespace t2vec

#define T2VEC_LOG_DEBUG(...) ::t2vec::Logf(::t2vec::LogLevel::kDebug, __VA_ARGS__)
#define T2VEC_LOG_INFO(...) ::t2vec::Logf(::t2vec::LogLevel::kInfo, __VA_ARGS__)
#define T2VEC_LOG_WARN(...) ::t2vec::Logf(::t2vec::LogLevel::kWarn, __VA_ARGS__)
#define T2VEC_LOG_ERROR(...) ::t2vec::Logf(::t2vec::LogLevel::kError, __VA_ARGS__)

#endif  // T2VEC_COMMON_LOGGING_H_
