#ifndef T2VEC_COMMON_ORDER_H_
#define T2VEC_COMMON_ORDER_H_

#include <cmath>
#include <cstddef>
#include <utility>

/// \file
/// NaN-safe comparators for (distance, index) scoring pairs.
///
/// `std::partial_sort` requires a strict weak ordering. The default
/// `std::pair` comparator uses `operator<` on the distance, and every
/// comparison involving a NaN distance is false — NaN then compares
/// "equivalent" to every number while those numbers are not equivalent to
/// each other, which breaks transitivity-of-equivalence and is undefined
/// behavior (in practice: garbage neighbor lists). Classical measures can
/// produce NaN from degenerate inputs, so the kNN sites order through this
/// comparator instead: finite distances first (ties broken by index, which
/// keeps results deterministic), all NaNs last, ordered among themselves by
/// index.
///
/// Because the kNN sites always pair each distance with a *distinct* index,
/// the index tiebreak (applied to NaNs too) makes this a strict total order:
/// no two elements ever compare equivalent, so a `TotalOrderPartialSort`
/// through it yields the same k-prefix on every toolchain (common/sort.h).

namespace t2vec {

/// Strict ordering over (distance, index) pairs with NaN distances ordered
/// after every non-NaN distance; a total order whenever indices are unique.
struct NanLastLess {
  bool operator()(const std::pair<double, size_t>& a,
                  const std::pair<double, size_t>& b) const {
    const bool a_nan = std::isnan(a.first);
    const bool b_nan = std::isnan(b.first);
    if (a_nan && b_nan) return a.second < b.second;
    if (a_nan || b_nan) return b_nan;
    return a < b;
  }
};

}  // namespace t2vec

#endif  // T2VEC_COMMON_ORDER_H_
