#include "common/fs.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/fault.h"

namespace t2vec {

namespace {

// Reflected Castagnoli table, built once. The generator loop is pure integer
// arithmetic, so the table is identical on every platform.
const uint32_t* Crc32cTable() {
  static const uint32_t* table = [] {
    auto* t = new uint32_t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0x82F63B78u : 0u);
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t Crc32c(uint32_t crc, const void* data, size_t n) {
  const uint32_t* table = Crc32cTable();
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

std::string ErrnoMessage(const std::string& op, const std::string& path,
                         int err) {
  return op + " failed for " + path + ": " + std::strerror(err) + " (errno " +
         std::to_string(err) + ")";
}

AtomicFileWriter::AtomicFileWriter(std::string path)
    : path_(std::move(path)), tmp_path_(path_ + ".tmp") {
  if (const int err = T2VEC_FAULT_POINT("fs.open")) {
    Fail("open", err);
    return;
  }
  fd_ = ::open(tmp_path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
               0644);
  if (fd_ < 0) Fail("open", errno);
}

AtomicFileWriter::~AtomicFileWriter() { Abandon(); }

void AtomicFileWriter::Fail(const std::string& op, int err) {
  if (!status_.ok()) return;  // Keep the first error.
  status_ = Status::IoError(ErrnoMessage(op, tmp_path_, err));
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  ::unlink(tmp_path_.c_str());
}

void AtomicFileWriter::Append(const void* data, size_t n) {
  if (!status_.ok() || committed_) return;
  if (const int err = T2VEC_FAULT_POINT("fs.write")) {
    Fail("write", err);
    return;
  }
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t written = ::write(fd_, p, n);
    if (written < 0) {
      if (errno == EINTR) continue;
      Fail("write", errno);
      return;
    }
    p += written;
    n -= static_cast<size_t>(written);
  }
}

Status AtomicFileWriter::Commit() {
  if (!status_.ok()) return status_;
  if (committed_) return Status::Ok();
  if (const int err = T2VEC_FAULT_POINT("fs.fsync")) {
    Fail("fsync", err);
    return status_;
  }
  if (::fsync(fd_) != 0) {
    Fail("fsync", errno);
    return status_;
  }
  if (::close(fd_) != 0) {
    const int err = errno;
    fd_ = -1;
    Fail("close", err);
    return status_;
  }
  fd_ = -1;
  if (const int err = T2VEC_FAULT_POINT("fs.rename")) {
    Fail("rename", err);
    return status_;
  }
  if (::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    Fail("rename", errno);
    return status_;
  }
  committed_ = true;
  // Best-effort directory sync so the rename itself survives power loss.
  // Failure here cannot corrupt anything (the data is already durable and
  // the directory entry will settle on its own), so it is not reported.
  const size_t slash = path_.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path_.substr(0, slash + 1);
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dir_fd >= 0) {
    (void)::fsync(dir_fd);
    ::close(dir_fd);
  }
  return Status::Ok();
}

void AtomicFileWriter::Abandon() {
  if (committed_) return;
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  ::unlink(tmp_path_.c_str());
}

AppendOnlyFile::AppendOnlyFile(std::string path) : path_(std::move(path)) {
  if (const int err = T2VEC_FAULT_POINT("fs.append.open")) {
    Fail("open", err);
    return;
  }
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
               0644);
  if (fd_ < 0) {
    Fail("open", errno);
    return;
  }
  const off_t end = ::lseek(fd_, 0, SEEK_END);
  if (end < 0) {
    Fail("lseek", errno);
    return;
  }
  size_ = static_cast<uint64_t>(end);
}

AppendOnlyFile::~AppendOnlyFile() {
  if (fd_ >= 0) ::close(fd_);
}

void AppendOnlyFile::Fail(const std::string& op, int err) {
  if (!status_.ok()) return;  // Keep the first error.
  status_ = Status::IoError(ErrnoMessage(op, path_, err));
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status AppendOnlyFile::Append(const void* data, size_t n) {
  if (!status_.ok()) return status_;
  if (const int err = T2VEC_FAULT_POINT("fs.append.write")) {
    Fail("write", err);
    return status_;
  }
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t written = ::write(fd_, p, n);
    if (written < 0) {
      if (errno == EINTR) continue;
      Fail("write", errno);
      return status_;
    }
    p += written;
    n -= static_cast<size_t>(written);
    size_ += static_cast<uint64_t>(written);
  }
  return Status::Ok();
}

Status AppendOnlyFile::Sync() {
  if (!status_.ok()) return status_;
  if (const int err = T2VEC_FAULT_POINT("fs.append.fsync")) {
    Fail("fsync", err);
    return status_;
  }
  if (::fsync(fd_) != 0) {
    Fail("fsync", errno);
    return status_;
  }
  return Status::Ok();
}

Status TruncateFile(const std::string& path, uint64_t size) {
  if (const int err = T2VEC_FAULT_POINT("fs.truncate")) {
    return Status::IoError(ErrnoMessage("truncate", path, err));
  }
  const int fd = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IoError(ErrnoMessage("open", path, errno));
  }
  if (::ftruncate(fd, static_cast<off_t>(size)) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IoError(ErrnoMessage("truncate", path, err));
  }
  if (::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IoError(ErrnoMessage("fsync", path, err));
  }
  ::close(fd);
  return Status::Ok();
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Status MakeDir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) {
    return Status::Ok();
  }
  return Status::IoError(ErrnoMessage("mkdir", path, errno));
}

Status WriteFileAtomic(const std::string& path, const std::string& contents) {
  AtomicFileWriter writer(path);
  writer.Append(contents.data(), contents.size());
  return writer.Commit();
}

Result<MmapFile> MmapFile::Open(const std::string& path) {
  if (const int err = T2VEC_FAULT_POINT("fs.mmap")) {
    return Status::IoError(ErrnoMessage("mmap", path, err));
  }
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IoError(ErrnoMessage("open", path, errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IoError(ErrnoMessage("fstat", path, err));
  }
  MmapFile file;
  file.size_ = static_cast<size_t>(st.st_size);
  file.path_ = path;
  if (file.size_ > 0) {
    void* base = ::mmap(nullptr, file.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (base == MAP_FAILED) {
      const int err = errno;
      ::close(fd);
      return Status::IoError(ErrnoMessage("mmap", path, err));
    }
    file.base_ = base;
  }
  // The mapping holds its own reference to the inode; the descriptor is no
  // longer needed.
  ::close(fd);
  return file;
}

MmapFile::~MmapFile() {
  if (base_ != nullptr) ::munmap(base_, size_);
}

MmapFile::MmapFile(MmapFile&& other) noexcept
    : base_(other.base_), size_(other.size_), path_(std::move(other.path_)) {
  other.base_ = nullptr;
  other.size_ = 0;
}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    if (base_ != nullptr) ::munmap(base_, size_);
    base_ = other.base_;
    size_ = other.size_;
    path_ = std::move(other.path_);
    other.base_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

Status ReadFileToString(const std::string& path, std::string* out) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IoError(ErrnoMessage("open", path, errno));
  }
  out->clear();
  char buffer[1 << 16];
  for (;;) {
    const ssize_t got = ::read(fd, buffer, sizeof(buffer));
    if (got < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      return Status::IoError(ErrnoMessage("read", path, err));
    }
    if (got == 0) break;
    out->append(buffer, static_cast<size_t>(got));
  }
  ::close(fd);
  return Status::Ok();
}

}  // namespace t2vec
