#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "common/macros.h"

namespace t2vec {

namespace {

// Set while a thread (worker or participating caller) executes pool tasks.
thread_local bool tls_in_parallel_region = false;

int DefaultNumThreads() {
  if (const char* env = std::getenv("T2VEC_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

// 0 means "unset, fall back to DefaultNumThreads()".
std::atomic<int> g_num_threads{0};

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    sync::MutexLock lock(&mu_);
    stop_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  tls_in_parallel_region = true;
  mu_.Lock();
  for (;;) {
    while (!stop_ && next_task_ >= queue_.size()) work_cv_.Wait(&mu_);
    if (stop_) break;
    DrainQueue();
  }
  mu_.Unlock();
}

void ThreadPool::DrainQueue() {
  while (next_task_ < queue_.size()) {
    std::function<void()> task = std::move(queue_[next_task_++]);
    mu_.Unlock();
    task();
    mu_.Lock();
    if (--in_flight_ == 0) done_cv_.NotifyAll();
  }
}

void ThreadPool::Run(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  // One batch at a time; a second caller waits here, not on a corrupt queue.
  sync::MutexLock run_lock(&run_mu_);
  mu_.Lock();
  T2VEC_CHECK(in_flight_ == 0 && next_task_ == queue_.size());
  queue_ = std::move(tasks);
  next_task_ = 0;
  in_flight_ = queue_.size();
  work_cv_.NotifyAll();

  // Participate instead of idling, then wait for stragglers.
  const bool was_in_region = tls_in_parallel_region;
  tls_in_parallel_region = true;
  DrainQueue();
  tls_in_parallel_region = was_in_region;
  while (in_flight_ != 0) done_cv_.Wait(&mu_);
  queue_.clear();
  next_task_ = 0;
  mu_.Unlock();
}

ThreadPool& ThreadPool::Global() {
  // Sized once at first use; SetNumThreads then only changes how many chunks
  // ParallelFor creates, not the pool size. Intentionally leaked so tasks
  // running during static destruction never touch a dead pool.
  static ThreadPool* pool = new ThreadPool(DefaultNumThreads());
  return *pool;
}

bool ThreadPool::InParallelRegion() { return tls_in_parallel_region; }

void SetNumThreads(int n) { g_num_threads.store(n > 0 ? n : 0); }

int ExchangeNumThreads(int n) {
  return g_num_threads.exchange(n > 0 ? n : 0);
}

int GetNumThreads() {
  const int n = g_num_threads.load();
  return n > 0 ? n : DefaultNumThreads();
}

void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t)>& fn, int num_threads) {
  if (end <= begin) return;
  const size_t n = end - begin;
  const int threads = num_threads > 0 ? num_threads : GetNumThreads();
  if (threads <= 1 || n <= std::max<size_t>(grain, 1) ||
      ThreadPool::InParallelRegion()) {
    for (size_t i = begin; i < end; ++i) fn(i);
    return;
  }

  // Static partitioning: chunk boundaries depend only on (n, chunks), so the
  // work assignment — and with the disjoint-writes contract, the result —
  // is identical no matter how the chunks are scheduled onto workers.
  const size_t max_chunks = (n + grain - 1) / std::max<size_t>(grain, 1);
  const size_t chunks = std::min<size_t>(static_cast<size_t>(threads),
                                         std::max<size_t>(max_chunks, 1));
  std::vector<std::function<void()>> tasks;
  tasks.reserve(chunks);
  for (size_t c = 0; c < chunks; ++c) {
    const size_t chunk_begin = begin + (n * c) / chunks;
    const size_t chunk_end = begin + (n * (c + 1)) / chunks;
    tasks.emplace_back([chunk_begin, chunk_end, &fn] {
      for (size_t i = chunk_begin; i < chunk_end; ++i) fn(i);
    });
  }
  ThreadPool::Global().Run(std::move(tasks));
}

}  // namespace t2vec
