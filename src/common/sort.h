#ifndef T2VEC_COMMON_SORT_H_
#define T2VEC_COMMON_SORT_H_

#include <algorithm>
#include <cstddef>
#include <functional>
#include <utility>

/// \file
/// Pinned introsort for orderings that feed model-visible decisions.
///
/// `std::sort` guarantees a sorted result but not a specific permutation:
/// with comparators that have equivalence classes (ties), the placement of
/// tied elements is implementation-defined and differs across standard
/// libraries (and can change between releases). Code that slices a sorted
/// order into training batches would therefore train a different model per
/// toolchain. `DeterministicSort` pins the whole algorithm — classic
/// median-of-3 introsort (Musser): a depth-limited quicksort loop with an
/// insertion-sort finish below a fixed threshold and a heapsort fallback —
/// so the output permutation, tie placement included, is a pure function of
/// the input everywhere.
///
/// The quicksort/insertion parameterization matches the widespread GNU
/// implementation, which keeps historical batch compositions (and thus
/// trained models) unchanged on the reference toolchain; the heapsort
/// fallback only triggers on adversarial inputs deeper than 2*log2(n).

namespace t2vec {

namespace sort_internal {

inline constexpr std::ptrdiff_t kInsertionThreshold = 16;

template <typename It, typename Comp>
void MoveMedianToFirst(It result, It a, It b, It c, Comp comp) {
  if (comp(*a, *b)) {
    if (comp(*b, *c)) {
      std::iter_swap(result, b);
    } else if (comp(*a, *c)) {
      std::iter_swap(result, c);
    } else {
      std::iter_swap(result, a);
    }
  } else if (comp(*a, *c)) {
    std::iter_swap(result, a);
  } else if (comp(*b, *c)) {
    std::iter_swap(result, c);
  } else {
    std::iter_swap(result, b);
  }
}

// Hoare partition; callers guarantee the pivot is a median of sampled
// elements, so the inner loops need no bounds checks.
template <typename It, typename Comp>
It UnguardedPartition(It first, It last, It pivot, Comp comp) {
  while (true) {
    while (comp(*first, *pivot)) ++first;
    --last;
    while (comp(*pivot, *last)) --last;
    if (!(first < last)) return first;
    std::iter_swap(first, last);
    ++first;
  }
}

template <typename It, typename Comp>
It PartitionPivot(It first, It last, Comp comp) {
  It mid = first + (last - first) / 2;
  MoveMedianToFirst(first, first + 1, mid, last - 1, comp);
  return UnguardedPartition(first + 1, last, first, comp);
}

// Insert *last into the sorted run ending just before it; the caller
// guarantees an element <= *last exists below, so no bounds check.
template <typename It, typename Comp>
void UnguardedLinearInsert(It last, Comp comp) {
  auto val = std::move(*last);
  It next = last;
  --next;
  while (comp(val, *next)) {
    *last = std::move(*next);
    last = next;
    --next;
  }
  *last = std::move(val);
}

template <typename It, typename Comp>
void InsertionSort(It first, It last, Comp comp) {
  if (first == last) return;
  for (It i = first + 1; i != last; ++i) {
    if (comp(*i, *first)) {
      auto val = std::move(*i);
      std::move_backward(first, i, i + 1);
      *first = std::move(val);
    } else {
      UnguardedLinearInsert(i, comp);
    }
  }
}

// Bottom-up heapsort; only reached past the recursion depth limit. Any
// fixed heapsort works here — what matters is that it is pinned.
template <typename It, typename Comp>
void SiftDown(It first, std::ptrdiff_t root, std::ptrdiff_t end, Comp comp) {
  while (2 * root + 1 < end) {
    std::ptrdiff_t child = 2 * root + 1;
    if (child + 1 < end && comp(first[child], first[child + 1])) ++child;
    if (!comp(first[root], first[child])) return;
    std::iter_swap(first + root, first + child);
    root = child;
  }
}

template <typename It, typename Comp>
void HeapSort(It first, It last, Comp comp) {
  const std::ptrdiff_t n = last - first;
  for (std::ptrdiff_t start = n / 2 - 1; start >= 0; --start) {
    SiftDown(first, start, n, comp);
  }
  for (std::ptrdiff_t end = n - 1; end > 0; --end) {
    std::iter_swap(first, first + end);
    SiftDown(first, 0, end, comp);
  }
}

template <typename It, typename Comp>
void IntrosortLoop(It first, It last, int depth_limit, Comp comp) {
  while (last - first > kInsertionThreshold) {
    if (depth_limit == 0) {
      HeapSort(first, last, comp);
      return;
    }
    --depth_limit;
    It cut = PartitionPivot(first, last, comp);
    IntrosortLoop(cut, last, depth_limit, comp);
    last = cut;
  }
}

inline int FloorLog2(std::ptrdiff_t n) {
  int k = 0;
  while (n > 1) {
    n >>= 1;
    ++k;
  }
  return k;
}

}  // namespace sort_internal

/// Sorts [first, last) with a pinned algorithm: the resulting permutation
/// (including the placement of comparator-equivalent elements) is identical
/// on every platform and toolchain. Use wherever the sorted order feeds a
/// reproducibility-sensitive decision; `comp` must be a strict weak
/// ordering, as for `std::sort`.
template <typename It, typename Comp>
void DeterministicSort(It first, It last, Comp comp) {
  namespace si = sort_internal;
  const std::ptrdiff_t n = last - first;
  if (n <= 1) return;
  si::IntrosortLoop(first, last, 2 * si::FloorLog2(n), comp);
  if (n > si::kInsertionThreshold) {
    si::InsertionSort(first, first + si::kInsertionThreshold, comp);
    for (It i = first + si::kInsertionThreshold; i != last; ++i) {
      si::UnguardedLinearInsert(i, comp);
    }
  } else {
    si::InsertionSort(first, last, comp);
  }
}

/// `DeterministicSort` with `operator<`.
template <typename It>
void DeterministicSort(It first, It last) {
  DeterministicSort(first, last, std::less<>{});
}

/// Partial sort for comparators that are strict *total* orders — no two
/// distinct elements may compare equivalent (e.g. (distance, unique-index)
/// pairs with an index tiebreak). Under that contract the sorted k-prefix is
/// the unique minimal prefix, so any conforming `std::partial_sort` produces
/// the same result and the call is deterministic across toolchains without
/// paying for a full pinned sort. The determinism linter exempts this header;
/// call sites that cannot guarantee totality must use `DeterministicSort` on
/// the whole range instead.
template <typename It, typename Comp>
void TotalOrderPartialSort(It first, It middle, It last, Comp comp) {
  std::partial_sort(first, middle, last, comp);
}

/// `TotalOrderPartialSort` with `operator<` (elements with unique ordering
/// keys, e.g. pairs whose second member is a distinct index).
template <typename It>
void TotalOrderPartialSort(It first, It middle, It last) {
  std::partial_sort(first, middle, last);
}

/// Selection counterpart of `TotalOrderPartialSort`: with a strict total
/// order the nth element is uniquely determined, so reading `*nth` (e.g. as
/// a pruning bound) is deterministic. The *arrangement* of the two partitions
/// is still implementation-defined — callers must not let it escape except
/// through a subsequent deterministic ordering of the full range.
template <typename It, typename Comp>
void TotalOrderNthElement(It first, It nth, It last, Comp comp) {
  std::nth_element(first, nth, last, comp);
}

/// `TotalOrderNthElement` with `operator<`.
template <typename It>
void TotalOrderNthElement(It first, It nth, It last) {
  std::nth_element(first, nth, last);
}

}  // namespace t2vec

#endif  // T2VEC_COMMON_SORT_H_
