#ifndef T2VEC_COMMON_SERIALIZE_H_
#define T2VEC_COMMON_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "common/fs.h"
#include "common/status.h"

/// \file
/// Binary (de)serialization for model checkpoints, training snapshots,
/// embedding-store snapshots, and caches.
///
/// The format is a flat little-endian stream; each composite type writes a
/// tag-free fixed layout, and streams are versioned by their owners (every
/// artifact writes a magic + version header). Not intended for cross-endian
/// portability.
///
/// Durability framing (DESIGN.md §7): the writer streams through
/// `AtomicFileWriter` (write `path.tmp`, fsync, rename) and `Finish()`
/// appends a 16-byte CRC32C trailer:
///
///     [payload bytes][payload_size u64][crc32c u32][trailer magic u32]
///
/// The reader verifies the trailer before any field is trusted: a valid
/// trailer bounds every read by the payload size and a CRC mismatch fails
/// the whole file up front. Files without a valid trailer are read in
/// legacy mode (`checksummed() == false`) so pre-framing artifacts stay
/// loadable — owners that bumped their format version reject the
/// combination "new version, no trailer", which is how truncation that
/// strips exactly the trailer is caught.

namespace t2vec {

/// Marks the end of a CRC-framed stream ("CRC2" little-endian).
inline constexpr uint32_t kCrcTrailerMagic = 0x32435243;

/// Size of the checksum trailer appended by BinaryWriter::Finish().
inline constexpr size_t kCrcTrailerBytes = 16;

/// Appends primitive values and vectors to a binary output stream.
///
/// Bytes stream into `path + ".tmp"`; nothing appears at `path` until
/// `Finish()` has fsynced and renamed the complete, checksummed file. Check
/// `ok()` after construction for open errors (details in `status()`).
class BinaryWriter {
 public:
  explicit BinaryWriter(const std::string& path) : file_(path) {}

  bool ok() const { return file_.ok(); }

  /// OK, or the first I/O error (operation + path + strerror context).
  const Status& status() const { return file_.status(); }

  template <typename T>
  void WritePod(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    Append(&value, sizeof(T));
  }

  void WriteString(const std::string& s) {
    WritePod<uint64_t>(s.size());
    Append(s.data(), s.size());
  }

  template <typename T>
  void WriteVector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    WritePod<uint64_t>(v.size());
    Append(v.data(), v.size() * sizeof(T));
  }

  /// Appends `n` raw bytes with no length prefix. For large fixed-layout
  /// blocks (e.g. an index's vector rows) whose size an earlier field
  /// already records: one call is one `write(2)`, so writing a block this
  /// way instead of element-at-a-time keeps snapshot writes O(fields), not
  /// O(rows), in syscalls.
  void WriteRaw(const void* data, size_t n) { Append(data, n); }

  /// Payload bytes appended so far. Lets writers compute the file offset of
  /// the next field, e.g. to keep a raw block aligned for mmap serving.
  uint64_t payload_size() const { return payload_size_; }

  /// Appends the CRC32C trailer and atomically publishes the file. Returns
  /// the first error of the whole write sequence; on error the final path
  /// is untouched.
  Status Finish() {
    const uint64_t payload_size = payload_size_;
    const uint32_t crc = crc_;
    // The trailer describes the payload, so it is excluded from the CRC.
    file_.Append(&payload_size, sizeof(payload_size));
    file_.Append(&crc, sizeof(crc));
    file_.Append(&kCrcTrailerMagic, sizeof(kCrcTrailerMagic));
    return file_.Commit();
  }

 private:
  void Append(const void* data, size_t n) {
    crc_ = Crc32c(crc_, data, n);
    payload_size_ += n;
    file_.Append(data, n);
  }

  AtomicFileWriter file_;
  uint32_t crc_ = 0;
  uint64_t payload_size_ = 0;
};

/// Reads values written by BinaryWriter, in the same order.
///
/// The whole file is read up front and the CRC trailer is verified before
/// the first field is served; every subsequent read is bounded by the
/// verified payload size, so a corrupt length field can never trigger a
/// multi-GiB allocation — it fails soft instead. Check `ok()` before use;
/// `status()` carries the open/verification error.
class BinaryReader {
 public:
  explicit BinaryReader(const std::string& path) {
    status_ = ReadFileToString(path, &data_);
    if (!status_.ok()) {
      failed_ = true;
      return;
    }
    Init(data_.data(), data_.size(), path);
  }

  /// View mode: reads directly from `[data, data + size)` without copying —
  /// the mmap serving path. The CRC trailer is still verified up front (one
  /// sequential pass at open; the kernel faults the pages in once and they
  /// stay warm), and `ReadRaw` then serves large blocks as pointers into the
  /// mapping. The caller keeps the underlying bytes alive for as long as the
  /// reader and anything returned by `ReadRaw` are in use. `name` labels
  /// error messages (pass the file path).
  BinaryReader(const char* data, size_t size, const std::string& name) {
    Init(data, size, name);
  }

  bool ok() const { return !failed_; }

  /// OK, or the open / checksum-verification error.
  const Status& status() const { return status_; }

  /// True when a valid CRC trailer was present and verified. Owners of
  /// versioned formats reject version >= "framing bump" files that are not
  /// checksummed: that combination means the trailer was stripped.
  bool checksummed() const { return checksummed_; }

  /// Unread payload bytes.
  size_t remaining() const { return payload_end_ - pos_; }

  template <typename T>
  bool ReadPod(T* value) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (failed_ || sizeof(T) > remaining()) return FailRead();
    std::memcpy(value, base_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  bool ReadString(std::string* s) {
    uint64_t n = 0;
    if (!ReadPod(&n)) return false;
    // Bounding by the remaining byte count (not a fixed cap) makes a corrupt
    // length field fail soft instead of attempting a huge allocation.
    if (n > remaining()) return FailRead();
    s->assign(base_ + pos_, static_cast<size_t>(n));
    pos_ += static_cast<size_t>(n);
    return true;
  }

  template <typename T>
  bool ReadVector(std::vector<T>* v) {
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t n = 0;
    if (!ReadPod(&n)) return false;
    if (n > remaining() / sizeof(T)) return FailRead();
    v->resize(static_cast<size_t>(n));
    if (n > 0) {
      std::memcpy(v->data(), base_ + pos_,
                  static_cast<size_t>(n) * sizeof(T));
      pos_ += static_cast<size_t>(n) * sizeof(T);
    }
    return true;
  }

  /// Returns a pointer to the next `n` payload bytes without copying, or
  /// nullptr (and fails the reader) if fewer remain. In file mode the
  /// pointer lives as long as the reader; in view mode as long as the
  /// caller's backing bytes. The CRC covering these bytes was already
  /// verified at construction.
  const char* ReadRaw(size_t n) {
    if (failed_ || n > remaining()) {
      FailRead();
      return nullptr;
    }
    const char* p = base_ + pos_;
    pos_ += n;
    return p;
  }

  /// Absolute payload offset of the next read (bytes consumed so far).
  size_t position() const { return pos_; }

 private:
  void Init(const char* data, size_t size, const std::string& name) {
    base_ = data;
    payload_end_ = size;
    if (size < kCrcTrailerBytes) return;  // Legacy (tiny) stream.
    uint64_t payload_size = 0;
    uint32_t crc = 0, magic = 0;
    const char* trailer = data + size - kCrcTrailerBytes;
    std::memcpy(&payload_size, trailer, sizeof(payload_size));
    std::memcpy(&crc, trailer + 8, sizeof(crc));
    std::memcpy(&magic, trailer + 12, sizeof(magic));
    if (magic != kCrcTrailerMagic || payload_size != size - kCrcTrailerBytes) {
      return;  // No trailer: legacy stream, reads bounded by file size.
    }
    if (Crc32c(0, data, payload_size) != crc) {
      failed_ = true;
      status_ = Status::IoError("checksum mismatch in " + name +
                                ": file is corrupt");
      return;
    }
    checksummed_ = true;
    payload_end_ = payload_size;
  }

  bool FailRead() {
    failed_ = true;
    return false;
  }

  std::string data_;
  const char* base_ = nullptr;
  size_t pos_ = 0;
  size_t payload_end_ = 0;
  bool checksummed_ = false;
  bool failed_ = false;
  Status status_;
};

}  // namespace t2vec

#endif  // T2VEC_COMMON_SERIALIZE_H_
