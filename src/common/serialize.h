#ifndef T2VEC_COMMON_SERIALIZE_H_
#define T2VEC_COMMON_SERIALIZE_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "common/status.h"

/// \file
/// Minimal binary (de)serialization used for model checkpoints and caches.
///
/// The format is a flat little-endian stream; each composite type writes a
/// tag-free fixed layout. Streams are versioned by their owners (the model
/// writes a magic + version header). Not intended for cross-endian portability.

namespace t2vec {

/// Appends primitive values and vectors to a binary output stream.
class BinaryWriter {
 public:
  /// Opens `path` for writing (truncates). Check `ok()` before use.
  explicit BinaryWriter(const std::string& path)
      : out_(path, std::ios::binary | std::ios::trunc) {}

  bool ok() const { return static_cast<bool>(out_); }

  template <typename T>
  void WritePod(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    out_.write(reinterpret_cast<const char*>(&value), sizeof(T));
  }

  void WriteString(const std::string& s) {
    WritePod<uint64_t>(s.size());
    out_.write(s.data(), static_cast<std::streamsize>(s.size()));
  }

  template <typename T>
  void WriteVector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    WritePod<uint64_t>(v.size());
    out_.write(reinterpret_cast<const char*>(v.data()),
               static_cast<std::streamsize>(v.size() * sizeof(T)));
  }

  /// Flushes and reports whether every write succeeded.
  Status Finish() {
    out_.flush();
    if (!out_) return Status::IoError("binary write failed");
    return Status::Ok();
  }

 private:
  std::ofstream out_;
};

/// Reads values written by BinaryWriter, in the same order.
class BinaryReader {
 public:
  /// Opens `path` for reading. Check `ok()` before use.
  explicit BinaryReader(const std::string& path)
      : in_(path, std::ios::binary) {}

  bool ok() const { return static_cast<bool>(in_); }

  template <typename T>
  bool ReadPod(T* value) {
    static_assert(std::is_trivially_copyable_v<T>);
    in_.read(reinterpret_cast<char*>(value), sizeof(T));
    return static_cast<bool>(in_);
  }

  bool ReadString(std::string* s) {
    uint64_t n = 0;
    if (!ReadPod(&n)) return false;
    if (n > (1ULL << 32)) return false;  // Corruption guard.
    s->resize(n);
    in_.read(s->data(), static_cast<std::streamsize>(n));
    return static_cast<bool>(in_);
  }

  template <typename T>
  bool ReadVector(std::vector<T>* v) {
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t n = 0;
    if (!ReadPod(&n)) return false;
    if (n > (1ULL << 32)) return false;  // Corruption guard.
    v->resize(n);
    in_.read(reinterpret_cast<char*>(v->data()),
             static_cast<std::streamsize>(n * sizeof(T)));
    return static_cast<bool>(in_);
  }

 private:
  std::ifstream in_;
};

}  // namespace t2vec

#endif  // T2VEC_COMMON_SERIALIZE_H_
