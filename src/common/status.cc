#include "common/status.h"

namespace t2vec {
namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out = CodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace t2vec
