#ifndef T2VEC_COMMON_SYNC_H_
#define T2VEC_COMMON_SYNC_H_

#include <chrono>
#include <condition_variable>
#include <shared_mutex>

/// \file
/// Annotated synchronization primitives — the only mutex/condvar types the
/// tree may use (lint rule `raw-mutex`, DESIGN.md §5.1/§5.4).
///
/// Every wrapper carries Clang Thread Safety Analysis attributes, so a
/// `-DT2VEC_THREAD_SAFETY=ON` Clang build proves, at compile time, that
/// every field annotated `GUARDED_BY(mu)` is only touched with `mu` held
/// (shared for reads, exclusive for writes), that `REQUIRES`-annotated
/// helpers are only called under their lock, and that every acquire has a
/// matching release on every path. On GCC (and any non-Clang compiler) the
/// annotation macros expand to nothing — zero layout or codegen change,
/// asserted by tests/sync_test.cc.
///
/// Policy (DESIGN.md §5.4 "Concurrency contract"):
///  - shared state gets `GUARDED_BY(mu_)` (or `PT_GUARDED_BY` for pointees)
///    the moment it is touched by more than one thread;
///  - state protected by a protocol the annotation language cannot express
///    (an acquire/release version handshake, a relaxed atomic counter,
///    immutable-after-construction data) carries a comment naming that
///    protocol instead of an annotation;
///  - `NO_THREAD_SAFETY_ANALYSIS` is a last resort for code whose locking
///    is correct but inexpressible, and needs a justifying comment.

// ---------------------------------------------------------------------------
// Clang Thread Safety Analysis attribute macros (canonical spelling from the
// Clang documentation). Inert everywhere except Clang.
// ---------------------------------------------------------------------------

#if defined(__clang__) && !defined(SWIG)
#define T2VEC_TSA_ATTR(x) __attribute__((x))
#else
#define T2VEC_TSA_ATTR(x)  // Expands to nothing: GCC ignores the contract.
#endif

#define CAPABILITY(x) T2VEC_TSA_ATTR(capability(x))
#define SCOPED_CAPABILITY T2VEC_TSA_ATTR(scoped_lockable)
#define GUARDED_BY(x) T2VEC_TSA_ATTR(guarded_by(x))
#define PT_GUARDED_BY(x) T2VEC_TSA_ATTR(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) T2VEC_TSA_ATTR(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) T2VEC_TSA_ATTR(acquired_after(__VA_ARGS__))
#define REQUIRES(...) T2VEC_TSA_ATTR(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  T2VEC_TSA_ATTR(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) T2VEC_TSA_ATTR(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  T2VEC_TSA_ATTR(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) T2VEC_TSA_ATTR(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  T2VEC_TSA_ATTR(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  T2VEC_TSA_ATTR(release_generic_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) T2VEC_TSA_ATTR(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  T2VEC_TSA_ATTR(try_acquire_shared_capability(__VA_ARGS__))
#define EXCLUDES(...) T2VEC_TSA_ATTR(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) T2VEC_TSA_ATTR(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) \
  T2VEC_TSA_ATTR(assert_shared_capability(x))
#define RETURN_CAPABILITY(x) T2VEC_TSA_ATTR(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS T2VEC_TSA_ATTR(no_thread_safety_analysis)

namespace t2vec::sync {

class CondVar;

/// An annotated reader/writer mutex. `Lock`/`Unlock` take the capability
/// exclusively; `ReaderLock`/`ReaderUnlock` take it shared, so snapshot
/// paths (metrics JSON, store reads) never serialize against each other —
/// only against writers. Prefer the scoped RAII types below; the manual
/// methods exist for dispatcher loops that hand the lock across a wait.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { inner_.lock(); }
  void Unlock() RELEASE() { inner_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return inner_.try_lock(); }

  void ReaderLock() ACQUIRE_SHARED() { inner_.lock_shared(); }
  void ReaderUnlock() RELEASE_SHARED() { inner_.unlock_shared(); }

 private:
  friend class CondVar;
  std::shared_mutex inner_;
};

/// RAII exclusive lock.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// RAII shared (reader) lock.
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(Mutex* mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->ReaderLock();
  }
  ~ReaderMutexLock() RELEASE() { mu_->ReaderUnlock(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// A condition variable bound to `Mutex`. Waits require the mutex held
/// *exclusively* (the wait atomically releases and reacquires it).
///
/// Callers spell the predicate loop out instead of passing a lambda —
///
///     mu_.Lock();
///     while (!ready_) cv_.Wait(&mu_);
///
/// — so every read of guarded state stays in a function the analysis can
/// see holds the lock (a predicate lambda is analyzed as its own unlocked
/// function and would defeat the `GUARDED_BY` checks).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `*mu`, blocks until notified (or spuriously
  /// woken), and reacquires `*mu` before returning.
  void Wait(Mutex* mu) REQUIRES(mu);

  /// Like Wait, but also returns (with `std::cv_status::timeout`) once the
  /// monotonic deadline passes. steady_clock only — wall clocks are banned
  /// tree-wide (lint rule `wall-clock`).
  std::cv_status WaitUntil(Mutex* mu,
                           std::chrono::steady_clock::time_point deadline)
      REQUIRES(mu);

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace t2vec::sync

#endif  // T2VEC_COMMON_SYNC_H_
