#ifndef T2VEC_COMMON_STATUS_H_
#define T2VEC_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "common/macros.h"

/// \file
/// Lightweight Status / Result<T> types for fallible operations.
///
/// The library does not throw exceptions across public API boundaries.
/// Operations that can fail due to external conditions (missing files,
/// malformed input) return `Status` or `Result<T>`; internal invariant
/// violations use T2VEC_CHECK.

namespace t2vec {

/// Coarse error categories; enough to make callers' dispatch readable.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIoError,
  kFailedPrecondition,
  kInternal,
  kUnavailable,       ///< Transient overload; retrying later may succeed.
  kDeadlineExceeded,  ///< The request's deadline passed before completion.
};

/// Result of a fallible operation: either OK or a code plus message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "IoError: cannot open foo".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Move-friendly.
///
/// Deliberately not a std::variant: an optional value plus a Status keeps
/// the invariant (`value_` engaged iff `status_.ok()`) just as tight while
/// generating code GCC's -Wmaybe-uninitialized can follow — the variant
/// formulation trips a known GCC 12 false positive on the inactive
/// alternative's string members at -O3, and the -Werror gate builds there.
template <typename T>
class Result {
 public:
  /// Implicit from value — lets functions `return value;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from a non-OK status — lets functions `return status;`.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    T2VEC_CHECK(!status_.ok());
  }

  bool ok() const { return value_.has_value(); }

  /// Ok when a value is held, the construction error otherwise.
  const Status& status() const { return status_; }

  /// Value accessors; CHECK-fail when not ok().
  const T& value() const& {
    T2VEC_CHECK(value_.has_value());
    return *value_;
  }
  T& value() & {
    T2VEC_CHECK(value_.has_value());
    return *value_;
  }
  T&& value() && {
    T2VEC_CHECK(value_.has_value());
    return *std::move(value_);
  }

 private:
  std::optional<T> value_;
  Status status_;  // Ok iff value_ is engaged.
};

}  // namespace t2vec

#endif  // T2VEC_COMMON_STATUS_H_
