#ifndef T2VEC_COMMON_FAULT_H_
#define T2VEC_COMMON_FAULT_H_

#include <atomic>
#include <cstdint>
#include <string>

/// \file
/// Deterministic fault injection for I/O failure testing.
///
/// Durable-artifact code paths mark their failure-capable operations with a
/// named fault point:
///
///     if (int err = T2VEC_FAULT_POINT("fs.write")) {
///       return Status::IoError(ErrnoMessage("write", path, err));
///     }
///
/// When the registry is disarmed (the default, and the only state reachable
/// in production) the macro is a single relaxed atomic load that returns 0 —
/// a no-op branch. Tests arm a site to fail its Nth hit with a chosen errno,
/// either programmatically (`fault::Arm`) or through the environment:
///
///     T2VEC_FAULT="fs.write:1:EIO;fs.rename:2:28"
///
/// (semicolon-separated `site:nth:errno` triples; errno accepts a decimal
/// number or one of the symbolic names EIO, ENOSPC, EACCES, EDQUOT, EROFS,
/// EMFILE, ENOENT, ECONNRESET, ECONNREFUSED, ECONNABORTED, ETIMEDOUT,
/// EPIPE, EAGAIN). Hits are counted per site under a mutex, so the Nth hit
/// is the same operation on every run at every thread count — faults are as
/// reproducible as the code they interrupt. A tripped site stays armed but
/// never fires again until re-armed, which lets tests assert that one failed
/// checkpoint write does not poison subsequent ones.
///
/// Rate-based injection for chaos/soak runs arms a site *periodically*:
/// `ArmEvery(site, 10, err)` (spec syntax `site:*10:errno`) fires on hits
/// 10, 20, 30, ... — roughly a 10% fault rate that stays deterministic in
/// hit-count space. Periodic sites keep firing until disarmed or re-armed.
///
/// Socket-layer sites (serve/net.h) add two *short-I/O* variants:
/// `net.recv.short` / `net.send.short` do not inject an errno — a firing
/// hit truncates that one recv/send to a single byte instead, exercising
/// the reassembly and short-write loops (the armed errno value is ignored,
/// only the firing schedule matters).

namespace t2vec::fault {

/// Arms `site` to fail its `nth` hit (1-based) with errno `err`. Re-arming a
/// site replaces the previous arming and resets its hit count. `err` must be
/// nonzero.
void Arm(const std::string& site, uint64_t nth, int err);

/// Arms `site` to fail every `period`-th hit (hits period, 2·period, ...)
/// with errno `err` — rate-based injection for chaos soaks that stays
/// deterministic in hit-count space. Spec syntax: `site:*period:errno`.
/// Re-arming replaces the previous arming and resets the hit count.
void ArmEvery(const std::string& site, uint64_t period, int err);

/// Parses a `site:nth:errno[;site:nth:errno...]` spec (the T2VEC_FAULT
/// environment syntax; `nth` may be `*period` for periodic arming) and arms
/// every triple. Returns false (arming nothing further) on the first
/// malformed triple.
bool ArmFromSpec(const std::string& spec);

/// Clears every armed site and hit counter.
void DisarmAll();

/// Hits recorded against `site` since it was armed; 0 for unarmed sites.
uint64_t HitCount(const std::string& site);

namespace internal {
extern std::atomic<bool> g_armed;
int HitSlow(const char* site);
}  // namespace internal

/// Records a hit of `site`; returns the errno to inject (nonzero) when this
/// is the armed Nth hit, and 0 otherwise. Prefer the macro.
inline int Hit(const char* site) {
  if (!internal::g_armed.load(std::memory_order_relaxed)) return 0;
  return internal::HitSlow(site);
}

}  // namespace t2vec::fault

/// Evaluates to the errno to inject at this site, or 0 when disarmed.
#define T2VEC_FAULT_POINT(site) ::t2vec::fault::Hit(site)

#endif  // T2VEC_COMMON_FAULT_H_
