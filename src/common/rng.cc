#include "common/rng.h"

#include <cmath>
#include <numbers>

namespace t2vec {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformInt(uint64_t n) {
  T2VEC_DCHECK(n > 0);
  // Rejection sampling to remove modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  uint64_t x;
  do {
    x = NextU64();
  } while (x >= limit);
  return x % n;
}

double Rng::Uniform() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  const double u2 = Uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_gaussian_ = radius * std::sin(angle);
  has_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    T2VEC_DCHECK(w >= 0.0);
    total += w;
  }
  T2VEC_CHECK(total > 0.0);
  double target = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // Floating-point edge: return last index.
}

Rng Rng::Fork() { return Rng(NextU64()); }

Rng::State Rng::GetState() const {
  State state;
  for (int i = 0; i < 4; ++i) state.s[i] = s_[i];
  state.has_cached_gaussian = has_cached_gaussian_ ? 1 : 0;
  state.cached_gaussian = cached_gaussian_;
  return state;
}

void Rng::SetState(const State& state) {
  for (int i = 0; i < 4; ++i) s_[i] = state.s[i];
  has_cached_gaussian_ = state.has_cached_gaussian != 0;
  cached_gaussian_ = state.cached_gaussian;
}

std::vector<double> SmoothedDistribution(const std::vector<double>& counts,
                                         double power) {
  std::vector<double> out(counts.size());
  double total = 0.0;
  for (size_t i = 0; i < counts.size(); ++i) {
    out[i] = std::pow(counts[i], power);
    total += out[i];
  }
  T2VEC_CHECK(total > 0.0);
  for (double& x : out) x /= total;
  return out;
}

AliasSampler::AliasSampler(const std::vector<double>& weights) {
  const size_t n = weights.size();
  T2VEC_CHECK(n > 0);
  double total = 0.0;
  for (double w : weights) {
    T2VEC_CHECK(w >= 0.0);
    total += w;
  }
  T2VEC_CHECK(total > 0.0);

  prob_of_.resize(n);
  accept_.resize(n);
  alias_.assign(n, 0);

  // Scaled probabilities; Vose's alias method.
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) {
    prob_of_[i] = weights[i] / total;
    scaled[i] = prob_of_[i] * static_cast<double>(n);
  }
  std::vector<uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const uint32_t s = small.back();
    small.pop_back();
    const uint32_t l = large.back();
    large.pop_back();
    accept_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (uint32_t i : large) accept_[i] = 1.0;
  for (uint32_t i : small) accept_[i] = 1.0;
}

size_t AliasSampler::Sample(Rng& rng) const {
  const size_t i = rng.UniformInt(accept_.size());
  return rng.Uniform() < accept_[i] ? i : alias_[i];
}

}  // namespace t2vec
