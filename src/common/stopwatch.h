#ifndef T2VEC_COMMON_STOPWATCH_H_
#define T2VEC_COMMON_STOPWATCH_H_

#include <chrono>

/// \file
/// Wall-clock timing used by the training loop and the efficiency benches.

namespace t2vec {

/// Monotonic wall-clock stopwatch. Starts running on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch from zero.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace t2vec

#endif  // T2VEC_COMMON_STOPWATCH_H_
