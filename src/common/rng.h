#ifndef T2VEC_COMMON_RNG_H_
#define T2VEC_COMMON_RNG_H_

#include <cstdint>
#include <vector>

#include "common/macros.h"

/// \file
/// Deterministic random number generation.
///
/// Every stochastic component of the library (data generation, dropout-style
/// downsampling, noise sampling, weight init, shuffling) draws from an
/// explicitly seeded `Rng` so that experiments are bit-reproducible.

namespace t2vec {

/// A small, fast, deterministic PRNG (xoshiro256** with splitmix64 seeding).
///
/// Not cryptographically secure; statistically solid for simulation use.
/// Copyable — copying forks the stream.
class Rng {
 public:
  /// Seeds the generator. Equal seeds yield identical streams on all
  /// platforms.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit integer.
  uint64_t NextU64();

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Standard normal via Box–Muller (cached second value).
  double Gaussian();

  /// Gaussian with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return Uniform() < p; }

  /// Samples an index from non-negative `weights` proportionally to weight.
  /// Requires at least one strictly positive weight.
  size_t Categorical(const std::vector<double>& weights);

  /// Fisher–Yates shuffle of [first, last) index order applied to `v`.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = UniformInt(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child generator (for parallel or per-component
  /// streams) without consuming much parent state.
  Rng Fork();

  /// Complete engine state: the four xoshiro words plus the Box–Muller
  /// carry. Trivially copyable with a fixed layout, so training snapshots
  /// persist it as one POD and a restored generator continues the exact
  /// stream — the keystone of bit-exact training resume.
  struct State {
    uint64_t s[4];
    uint64_t has_cached_gaussian;  // 0 or 1; fixed-width for serialization.
    double cached_gaussian;
  };

  State GetState() const;
  void SetState(const State& state);

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

/// Utility used to build sampling tables: raises each weight to `power`
/// (word2vec-style unigram smoothing) and normalizes to a distribution.
std::vector<double> SmoothedDistribution(const std::vector<double>& counts,
                                         double power);

/// Alias sampler for O(1) draws from a fixed categorical distribution.
/// Used by negative sampling in skip-gram pretraining and by the NCE loss,
/// where millions of draws from the same distribution are needed.
class AliasSampler {
 public:
  /// Builds the alias table from a (not necessarily normalized) weight
  /// vector. Requires at least one strictly positive weight.
  explicit AliasSampler(const std::vector<double>& weights);

  /// Draws one index.
  size_t Sample(Rng& rng) const;

  /// Probability of index i under the normalized distribution.
  double Probability(size_t i) const {
    T2VEC_DCHECK(i < prob_of_.size());
    return prob_of_[i];
  }

  size_t size() const { return prob_of_.size(); }

 private:
  std::vector<double> accept_;
  std::vector<uint32_t> alias_;
  std::vector<double> prob_of_;
};

}  // namespace t2vec

#endif  // T2VEC_COMMON_RNG_H_
