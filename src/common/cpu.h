#ifndef T2VEC_COMMON_CPU_H_
#define T2VEC_COMMON_CPU_H_

/// \file
/// Runtime CPU-feature probe and SIMD dispatch-tier selection.
///
/// The kernel layer (nn/kernels.h) keys its function-pointer table off
/// ActiveSimdTier(). The tier is resolved once, on first use:
///
///   1. A programmatic override set via SetSimdTier() wins (tests, benches).
///   2. Otherwise the T2VEC_SIMD environment variable ("scalar" or "avx2")
///      forces a tier.
///   3. Otherwise the highest tier the CPU supports is chosen.
///
/// Requests for a tier the hardware cannot run are clamped to kScalar with a
/// warning log — forcing "avx2" on a non-AVX2 machine degrades gracefully,
/// it never traps on an illegal instruction. Every kernel with a SIMD
/// implementation is bit-identical to its scalar reference (see
/// nn/kernels.h), so the tier affects speed only, never results.

namespace t2vec {

enum class SimdTier {
  kScalar = 0,  // Portable C++; the reference implementation.
  kAvx2 = 1,    // AVX2 + FMA (x86-64).
};

/// Human-readable tier name ("scalar", "avx2").
const char* SimdTierName(SimdTier tier);

/// True when the running CPU can execute `tier`'s instructions.
/// kScalar is always supported.
bool SimdTierSupported(SimdTier tier);

/// The tier the kernel dispatch table uses. Resolved once (thread-safe);
/// subsequent calls return the cached value unless SetSimdTier() intervenes.
SimdTier ActiveSimdTier();

/// Forces the active tier, clamping to the best supported tier at or below
/// the request (an unsupported request logs a warning and yields kScalar).
/// Returns the tier actually installed. Intended for tests and benchmarks;
/// not thread-safe against concurrent kernel launches.
SimdTier SetSimdTier(SimdTier tier);

}  // namespace t2vec

#endif  // T2VEC_COMMON_CPU_H_
