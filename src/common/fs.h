#ifndef T2VEC_COMMON_FS_H_
#define T2VEC_COMMON_FS_H_

#include <cstdint>
#include <string>

#include "common/status.h"

/// \file
/// Durable file I/O primitives (DESIGN.md §7).
///
/// Every binary artifact the library persists (model checkpoints, training
/// snapshots, embedding-store snapshots, eval caches) is written through
/// `AtomicFileWriter`: bytes stream into `path + ".tmp"`, which is fsynced
/// and renamed over `path` only once every byte is on disk. A crash or I/O
/// failure at any point leaves either the previous file or the complete new
/// file at the final path — never a truncated mix. Corruption *after* a
/// successful write is caught by the CRC32C trailer that
/// `common/serialize.h` frames around every payload.
///
/// All failure paths return `Status` with the failing operation, path, and
/// `strerror(errno)` context; nothing in this layer aborts.

namespace t2vec {

/// CRC32C (Castagnoli polynomial, reflected). `crc` is the running value —
/// pass 0 for a fresh stream — and the updated value is returned. The
/// standard check value applies: Crc32c(0, "123456789", 9) == 0xE3069283.
uint32_t Crc32c(uint32_t crc, const void* data, size_t n);

/// Formats "`op` failed for `path`: <strerror> (errno N)".
std::string ErrnoMessage(const std::string& op, const std::string& path,
                         int err);

/// Write-to-temporary-then-rename file writer.
///
/// The constructor opens `path + ".tmp"` (truncating any stale leftover);
/// `Append` streams bytes into it; `Commit` fsyncs, closes, and renames the
/// temporary over `path`. If the writer is destroyed or `Abandon`ed before
/// a successful Commit, the temporary is deleted and the final path is
/// untouched. After any failure the writer is inert: further Appends are
/// no-ops and Commit returns the first error.
///
/// Fault points (common/fault.h): "fs.open", "fs.write", "fs.fsync",
/// "fs.rename".
class AtomicFileWriter {
 public:
  explicit AtomicFileWriter(std::string path);
  ~AtomicFileWriter();

  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  /// True until the first I/O failure.
  bool ok() const { return status_.ok(); }

  /// OK, or the first error encountered (with errno context).
  const Status& status() const { return status_; }

  /// Appends `n` bytes to the temporary file.
  void Append(const void* data, size_t n);

  /// Flushes and fsyncs the temporary, then renames it over the final path.
  /// Returns the first error of the whole write sequence; on error the
  /// temporary is removed and the final path is left as it was.
  Status Commit();

  /// Closes and deletes the temporary without touching the final path.
  /// No-op after a successful Commit.
  void Abandon();

  const std::string& path() const { return path_; }
  const std::string& tmp_path() const { return tmp_path_; }

 private:
  void Fail(const std::string& op, int err);

  std::string path_;
  std::string tmp_path_;
  int fd_ = -1;
  bool committed_ = false;
  Status status_;
};

/// Durable append-mode file handle for write-ahead logs.
///
/// `AtomicFileWriter` publishes whole artifacts; a WAL instead grows one
/// fsynced record at a time and must survive reopening mid-stream, so this
/// class wraps an `O_APPEND` descriptor directly: the constructor opens (or
/// creates) `path` positioned at its current end, `Append` streams bytes,
/// and `Sync` makes everything appended so far durable. Torn tails from a
/// crash between Append and Sync are the *reader's* problem — the WAL layer
/// (serve/wal.h) frames records with CRC32C so replay stops cleanly at the
/// first incomplete record.
///
/// Like AtomicFileWriter, the first error wins and makes the writer inert;
/// all failures surface as Status with errno context, never aborts.
///
/// Fault points (common/fault.h): "fs.append.open", "fs.append.write",
/// "fs.append.fsync".
class AppendOnlyFile {
 public:
  explicit AppendOnlyFile(std::string path);
  ~AppendOnlyFile();

  AppendOnlyFile(const AppendOnlyFile&) = delete;
  AppendOnlyFile& operator=(const AppendOnlyFile&) = delete;

  /// True until the first I/O failure.
  bool ok() const { return status_.ok(); }

  /// OK, or the first error encountered (with errno context).
  const Status& status() const { return status_; }

  /// Appends `n` bytes at the end of the file. Returns the writer status so
  /// callers can fail fast; bytes are not durable until Sync().
  Status Append(const void* data, size_t n);

  /// fsyncs everything appended so far.
  Status Sync();

  /// Bytes in the file (existing content at open + successful appends).
  uint64_t size() const { return size_; }

  const std::string& path() const { return path_; }

 private:
  void Fail(const std::string& op, int err);

  std::string path_;
  int fd_ = -1;
  uint64_t size_ = 0;
  Status status_;
};

/// Truncates `path` to `size` bytes and fsyncs it. Used to reset a WAL to
/// empty after a snapshot made its contents redundant (size 0) and to trim
/// a torn tail back to the last intact record. Fault point: "fs.truncate".
Status TruncateFile(const std::string& path, uint64_t size = 0);

/// True when `path` exists (any file type).
bool FileExists(const std::string& path);

/// Creates directory `path` (one level). OK when it already exists.
Status MakeDir(const std::string& path);

/// Atomically replaces `path` with `contents` (AtomicFileWriter one-shot).
Status WriteFileAtomic(const std::string& path, const std::string& contents);

/// Reads the whole file at `path` into `*out`. IoError with errno context on
/// failure; `*out` is unspecified then.
Status ReadFileToString(const std::string& path, std::string* out);

/// Read-only memory-mapped view of a whole file (RAII: unmapped on
/// destruction). The serving read path for large artifacts: the kernel pages
/// bytes in on demand, so a snapshot holding millions of vectors opens in
/// milliseconds and its vector block is served zero-copy straight out of the
/// page cache (common/serialize.h BinaryReader has a view mode over it).
///
/// Lifetime rules: every pointer derived from `data()` — including vector
/// rows an index serves zero-copy — is valid exactly as long as this object
/// lives, so owners hold it in a `std::shared_ptr` that the borrowing index
/// keeps alive (core/ann_index.h RowStore). Renaming or truncating the file
/// *path* after Open is safe (the mapping pins the old inode); mutating the
/// mapped bytes in place through another descriptor is not, which is why
/// every artifact is published via AtomicFileWriter's tmp+rename and never
/// rewritten in place.
///
/// Fault point (common/fault.h): "fs.mmap".
class MmapFile {
 public:
  /// Maps `path` read-only. An empty file maps to data() == nullptr,
  /// size() == 0 (mmap of length 0 is invalid, and no valid artifact is
  /// empty — readers reject it on parse).
  static Result<MmapFile> Open(const std::string& path);

  MmapFile() = default;
  ~MmapFile();
  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  const char* data() const { return static_cast<const char*>(base_); }
  size_t size() const { return size_; }
  const std::string& path() const { return path_; }

 private:
  void* base_ = nullptr;
  size_t size_ = 0;
  std::string path_;
};

}  // namespace t2vec

#endif  // T2VEC_COMMON_FS_H_
