#ifndef T2VEC_COMMON_MACROS_H_
#define T2VEC_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

/// \file
/// Assertion macros used for programming-error checks throughout the library.
///
/// CHECK-style macros abort on failure with a source location; they are the
/// designated mechanism for invariant violations (out-of-range indices,
/// dimension mismatches). Fallible operations that depend on external input
/// (file I/O, parsing) return `Status`/`Result<T>` instead — see status.h.

namespace t2vec::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace t2vec::internal

/// Aborts the program if `expr` evaluates to false. Always enabled.
#define T2VEC_CHECK(expr)                                      \
  do {                                                         \
    if (!(expr)) {                                             \
      ::t2vec::internal::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                          \
  } while (0)

/// Like T2VEC_CHECK but compiled out in NDEBUG builds. Use on hot paths.
#ifdef NDEBUG
#define T2VEC_DCHECK(expr) \
  do {                     \
  } while (0)
#else
#define T2VEC_DCHECK(expr) T2VEC_CHECK(expr)
#endif

#endif  // T2VEC_COMMON_MACROS_H_
