#include "common/sync.h"

#include <mutex>

namespace t2vec::sync {

// Both waits adopt the already-held lock into a std::unique_lock so the
// standard condition variable can release/reacquire it, then release() the
// adoption so the unique_lock's destructor does not unlock a mutex the
// caller still owns. The analysis never sees an acquire or release inside
// these bodies — the REQUIRES(mu) contract on the declarations is the whole
// story: the lock is held on entry and held again on return.

void CondVar::Wait(Mutex* mu) {
  std::unique_lock<std::shared_mutex> lock(mu->inner_, std::adopt_lock);
  cv_.wait(lock);
  lock.release();
}

std::cv_status CondVar::WaitUntil(
    Mutex* mu, std::chrono::steady_clock::time_point deadline) {
  std::unique_lock<std::shared_mutex> lock(mu->inner_, std::adopt_lock);
  const std::cv_status status = cv_.wait_until(lock, deadline);
  lock.release();
  return status;
}

}  // namespace t2vec::sync
