#include "eval/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "common/sort.h"

namespace t2vec::eval {

double MeanRank(const std::vector<size_t>& ranks) {
  T2VEC_CHECK(!ranks.empty());
  double total = 0.0;
  for (size_t r : ranks) total += static_cast<double>(r);
  return total / static_cast<double>(ranks.size());
}

double KnnPrecision(const std::vector<size_t>& truth,
                    const std::vector<size_t>& retrieved) {
  T2VEC_CHECK(!truth.empty());
  std::vector<size_t> a = truth, b = retrieved;
  DeterministicSort(a.begin(), a.end());
  DeterministicSort(b.begin(), b.end());
  std::vector<size_t> common;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(common));
  return static_cast<double>(common.size()) / static_cast<double>(a.size());
}

double RecallAtK(const std::vector<size_t>& exact,
                 const std::vector<size_t>& approx) {
  return KnnPrecision(exact, approx);
}

double CrossDistanceDeviation(double transformed_distance,
                              double original_distance) {
  if (original_distance == 0.0) return 0.0;
  return std::fabs(transformed_distance - original_distance) /
         original_distance;
}

}  // namespace t2vec::eval
