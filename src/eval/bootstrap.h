#ifndef T2VEC_EVAL_BOOTSTRAP_H_
#define T2VEC_EVAL_BOOTSTRAP_H_

#include <vector>

#include "common/rng.h"

/// \file
/// Bootstrap confidence intervals for experiment statistics. The paper
/// reports point estimates only; for a scaled-down reproduction with ~120
/// queries the sampling noise matters, so the harness can attach a
/// percentile-bootstrap interval to any per-query statistic (mean rank,
/// precision).

namespace t2vec::eval {

/// A point estimate with a (lower, upper) confidence interval.
struct IntervalEstimate {
  double mean = 0.0;
  double lower = 0.0;
  double upper = 0.0;
};

/// Percentile bootstrap of the mean of `samples`: draws `resamples`
/// with-replacement resamples and returns the mean plus the
/// [alpha/2, 1-alpha/2] percentile interval. Requires non-empty samples.
IntervalEstimate BootstrapMean(const std::vector<double>& samples,
                               int resamples, double alpha, Rng& rng);

/// Convenience overload for integer ranks.
IntervalEstimate BootstrapMeanRank(const std::vector<size_t>& ranks,
                                   int resamples, double alpha, Rng& rng);

}  // namespace t2vec::eval

#endif  // T2VEC_EVAL_BOOTSTRAP_H_
