#include "eval/experiments.h"

#include <algorithm>
#include <cstdlib>

#include "common/thread_pool.h"
#include "core/vec_index.h"
#include "dist/knn.h"
#include "eval/metrics.h"
#include "traj/tokenizer.h"
#include "traj/transforms.h"

namespace t2vec::eval {

ExperimentData MakeData(DatasetKind kind, size_t train_count,
                        size_t test_count) {
  const traj::GeneratorConfig config = (kind == DatasetKind::kPortoLike)
                                           ? traj::GeneratorConfig::PortoLike()
                                           : traj::GeneratorConfig::HarbinLike();
  traj::SyntheticTrajectoryGenerator generator(config);
  const traj::Dataset all = generator.Generate(train_count + test_count);
  ExperimentData data;
  all.Split(train_count, &data.train, &data.test);
  return data;
}

double BenchScaleFactor() {
  const char* env = std::getenv("T2VEC_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double v = std::atof(env);
  return v > 0.0 ? v : 1.0;
}

size_t Scaled(size_t n, size_t floor) {
  const auto scaled =
      static_cast<size_t>(static_cast<double>(n) * BenchScaleFactor());
  return std::max(scaled, floor);
}

core::T2VecConfig DefaultBenchConfig() {
  core::T2VecConfig config;  // Defaults already hold the scaled settings.
  config.max_iterations = Scaled(3000, 200);
  return config;
}

MssData BuildMss(const traj::Dataset& test, size_t num_queries,
                 size_t num_distractors) {
  T2VEC_CHECK(test.size() >= num_queries + num_distractors);
  MssData mss;
  mss.num_queries = num_queries;
  mss.queries.reserve(num_queries);
  mss.database.reserve(num_queries + num_distractors);
  // D_Q and D'_Q from the query trips (twin of queries[i] is database[i]).
  for (size_t i = 0; i < num_queries; ++i) {
    auto [ta, ta_prime] = traj::AlternatingSplit(test[i]);
    mss.queries.push_back(std::move(ta));
    mss.database.push_back(std::move(ta_prime));
  }
  // D'_P distractors (the paper uses D'_P rather than raw P so query and
  // database trajectories have similar mean length).
  for (size_t i = 0; i < num_distractors; ++i) {
    auto [ta, ta_prime] = traj::AlternatingSplit(test[num_queries + i]);
    (void)ta;
    mss.database.push_back(std::move(ta_prime));
  }
  return mss;
}

void TransformMss(MssData* mss, double r1, double r2, Rng& rng) {
  auto transform = [&](traj::Trajectory& t) {
    if (r1 > 0.0) t = traj::Downsample(t, r1, rng);
    if (r2 > 0.0) t = traj::Distort(t, r2, rng);
  };
  for (traj::Trajectory& t : mss->queries) transform(t);
  for (traj::Trajectory& t : mss->database) transform(t);
}

double MeanRankOfMeasure(const dist::Measure& measure, const MssData& mss) {
  // Queries are independent; rank i is written by iteration i only. The
  // nested parallel loop inside dist::RankOf runs inline on pool workers,
  // so parallelism lives at the query level where it amortizes best.
  std::vector<size_t> ranks(mss.queries.size());
  ParallelFor(0, mss.queries.size(), 1, [&](size_t i) {
    ranks[i] = dist::RankOf(measure, mss.queries[i], mss.database, i);
  });
  return MeanRank(ranks);
}

double MeanRankOfVectors(const nn::Matrix& query_vecs,
                         const nn::Matrix& db_vecs) {
  T2VEC_CHECK(query_vecs.rows() <= db_vecs.rows());
  // lint:allow(raw-index-ctor) RankOf is a VectorIndex-only evaluation hook.
  core::VectorIndex index{nn::Matrix(db_vecs)};
  std::vector<size_t> ranks(query_vecs.rows());
  ParallelFor(0, query_vecs.rows(), 1, [&](size_t i) {
    ranks[i] = index.RankOf(query_vecs.Row(i), i);
  });
  return MeanRank(ranks);
}

double MeanRankOfT2Vec(const core::T2Vec& model, const MssData& mss) {
  const nn::Matrix query_vecs = model.Encode(mss.queries);
  const nn::Matrix db_vecs = model.Encode(mss.database);
  return MeanRankOfVectors(query_vecs, db_vecs);
}

double MeanRankOfVRnn(const core::VRnn& vrnn, const geo::HotCellVocab& vocab,
                      const MssData& mss) {
  const nn::Matrix query_vecs =
      vrnn.EncodeBatch(traj::TokenizeAll(vocab, mss.queries));
  const nn::Matrix db_vecs =
      vrnn.EncodeBatch(traj::TokenizeAll(vocab, mss.database));
  return MeanRankOfVectors(query_vecs, db_vecs);
}

std::vector<std::pair<traj::Trajectory, traj::Trajectory>> MakeCrossPairs(
    const traj::Dataset& test, size_t count, Rng& rng) {
  T2VEC_CHECK(test.size() >= 2);
  std::vector<std::pair<traj::Trajectory, traj::Trajectory>> pairs;
  pairs.reserve(count);
  while (pairs.size() < count) {
    const size_t a = rng.UniformInt(test.size());
    const size_t b = rng.UniformInt(test.size());
    if (a == b) continue;
    pairs.emplace_back(test[a], test[b]);
  }
  return pairs;
}

namespace {

traj::Trajectory TransformOne(const traj::Trajectory& t, double r1, double r2,
                              Rng& rng) {
  traj::Trajectory out = t;
  if (r1 > 0.0) out = traj::Downsample(out, r1, rng);
  if (r2 > 0.0) out = traj::Distort(out, r2, rng);
  return out;
}

}  // namespace

double CrossDeviationOfMeasure(
    const dist::Measure& measure,
    const std::vector<std::pair<traj::Trajectory, traj::Trajectory>>& pairs,
    double r1, double r2, Rng& rng) {
  T2VEC_CHECK(!pairs.empty());
  // Transforms consume the shared rng and stay serial (the stream order is
  // part of the experiment's reproducibility); the O(n^2) distance programs
  // dominate and run per-pair in parallel. Deviations are accumulated
  // serially in index order so the floating-point sum matches a serial run.
  std::vector<std::pair<traj::Trajectory, traj::Trajectory>> transformed;
  transformed.reserve(pairs.size());
  for (const auto& [tb, tb_prime] : pairs) {
    traj::Trajectory ta = TransformOne(tb, r1, r2, rng);
    traj::Trajectory ta_prime = TransformOne(tb_prime, r1, r2, rng);
    transformed.emplace_back(std::move(ta), std::move(ta_prime));
  }
  std::vector<double> deviations(pairs.size());
  ParallelFor(0, pairs.size(), 1, [&](size_t i) {
    const double original =
        measure.Distance(pairs[i].first, pairs[i].second);
    const double after =
        measure.Distance(transformed[i].first, transformed[i].second);
    deviations[i] = CrossDistanceDeviation(after, original);
  });
  double total = 0.0;
  for (double d : deviations) total += d;
  return total / static_cast<double>(pairs.size());
}

double CrossDeviationOfT2Vec(
    const core::T2Vec& model,
    const std::vector<std::pair<traj::Trajectory, traj::Trajectory>>& pairs,
    double r1, double r2, Rng& rng) {
  T2VEC_CHECK(!pairs.empty());
  // Batch-encode originals and transformed variants for throughput.
  std::vector<traj::Trajectory> originals, transformed;
  originals.reserve(pairs.size() * 2);
  transformed.reserve(pairs.size() * 2);
  for (const auto& [tb, tb_prime] : pairs) {
    originals.push_back(tb);
    originals.push_back(tb_prime);
    transformed.push_back(TransformOne(tb, r1, r2, rng));
    transformed.push_back(TransformOne(tb_prime, r1, r2, rng));
  }
  const nn::Matrix orig_vecs = model.Encode(originals);
  const nn::Matrix trans_vecs = model.Encode(transformed);

  auto row_distance = [](const nn::Matrix& m, size_t a, size_t b) {
    double acc = 0.0;
    for (size_t j = 0; j < m.cols(); ++j) {
      const double diff = static_cast<double>(m.At(a, j)) - m.At(b, j);
      acc += diff * diff;
    }
    return std::sqrt(acc);
  };

  double total = 0.0;
  for (size_t i = 0; i < pairs.size(); ++i) {
    const double original = row_distance(orig_vecs, 2 * i, 2 * i + 1);
    const double after = row_distance(trans_vecs, 2 * i, 2 * i + 1);
    total += CrossDistanceDeviation(after, original);
  }
  return total / static_cast<double>(pairs.size());
}

double KnnPrecisionOfMeasure(const dist::Measure& measure,
                             const std::vector<traj::Trajectory>& queries,
                             const std::vector<traj::Trajectory>& database,
                             size_t k, double r1, double r2, Rng& rng) {
  T2VEC_CHECK(!queries.empty());
  std::vector<traj::Trajectory> tq, tdb;
  tq.reserve(queries.size());
  tdb.reserve(database.size());
  for (const auto& q : queries) tq.push_back(TransformOne(q, r1, r2, rng));
  for (const auto& d : database) tdb.push_back(TransformOne(d, r1, r2, rng));

  std::vector<double> precisions(queries.size());
  ParallelFor(0, queries.size(), 1, [&](size_t i) {
    const dist::KnnResult truth = dist::KnnQuery(measure, queries[i],
                                                 database, k);
    const dist::KnnResult retrieved = dist::KnnQuery(measure, tq[i], tdb, k);
    precisions[i] = KnnPrecision(truth.ids, retrieved.ids);
  });
  double total = 0.0;
  for (double p : precisions) total += p;
  return total / static_cast<double>(queries.size());
}

double KnnPrecisionOfEncoder(const EncodeFn& encode,
                             const std::vector<traj::Trajectory>& queries,
                             const std::vector<traj::Trajectory>& database,
                             size_t k, double r1, double r2, Rng& rng) {
  T2VEC_CHECK(!queries.empty());
  std::vector<traj::Trajectory> tq, tdb;
  tq.reserve(queries.size());
  tdb.reserve(database.size());
  for (const auto& q : queries) tq.push_back(TransformOne(q, r1, r2, rng));
  for (const auto& d : database) tdb.push_back(TransformOne(d, r1, r2, rng));

  // lint:allow(raw-index-ctor) ground truth must be the exact scan, always.
  const core::VectorIndex truth_index{encode(database)};
  // lint:allow(raw-index-ctor) same: precision is measured against exact kNN.
  const core::VectorIndex trans_index{encode(tdb)};
  const nn::Matrix query_vecs = encode(queries);
  const nn::Matrix tq_vecs = encode(tq);

  std::vector<double> precisions(queries.size());
  ParallelFor(0, queries.size(), 1, [&](size_t i) {
    const core::KnnResult truth = truth_index.Query(
        {query_vecs.Row(i), query_vecs.cols()}, k);
    const core::KnnResult retrieved = trans_index.Query(
        {tq_vecs.Row(i), tq_vecs.cols()}, k);
    precisions[i] = KnnPrecision(truth.ids, retrieved.ids);
  });
  double total = 0.0;
  for (double p : precisions) total += p;
  return total / static_cast<double>(queries.size());
}

double KnnPrecisionOfT2Vec(const core::T2Vec& model,
                           const std::vector<traj::Trajectory>& queries,
                           const std::vector<traj::Trajectory>& database,
                           size_t k, double r1, double r2, Rng& rng) {
  return KnnPrecisionOfEncoder(
      [&model](const std::vector<traj::Trajectory>& trips) {
        return model.Encode(trips);
      },
      queries, database, k, r1, r2, rng);
}

}  // namespace t2vec::eval
