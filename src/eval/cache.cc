#include "eval/cache.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "common/logging.h"
#include "nn/checkpoint.h"
#include "traj/tokenizer.h"

namespace t2vec::eval {

std::string CacheDir() {
  const char* env = std::getenv("T2VEC_CACHE_DIR");
  return env != nullptr ? env : ".t2vec_cache";
}

namespace {

// The cache is best-effort: a directory we cannot create only costs a
// retrain, so log the failure (with context) instead of throwing.
void EnsureCacheDir() {
  const std::string dir = CacheDir();
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    T2VEC_LOG_WARN("cannot create cache directory %s: %s (caching disabled)",
                   dir.c_str(), ec.message().c_str());
  }
}

}  // namespace

// Cheap structural fingerprint of the training data: size plus a few probe
// points, enough to invalidate the cache when the generator setup changes.
// Coordinates are hashed by bit pattern: the previous float-to-uint64_t cast
// was undefined behavior for negative values (PortoLike longitudes are
// negative), which collapsed distinct datasets onto unstable fingerprints
// and silently served stale cached models.
uint64_t DataFingerprint(const std::vector<traj::Trajectory>& trips) {
  uint64_t h = 0xCBF29CE484222325ULL;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 0x100000001B3ULL;
  };
  auto mix_point = [&mix](const geo::Point& p) {
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(p.x));
    std::memcpy(&bits, &p.x, sizeof(bits));
    mix(bits);
    std::memcpy(&bits, &p.y, sizeof(bits));
    mix(bits);
  };
  mix(trips.size());
  for (size_t i = 0; i < trips.size(); i += std::max<size_t>(1, trips.size() / 16)) {
    const traj::Trajectory& t = trips[i];
    mix(static_cast<uint64_t>(t.size()));
    if (!t.empty()) {
      mix_point(t.points.front());
      mix_point(t.points[t.size() / 2]);
      mix_point(t.points.back());
    }
  }
  return h;
}

std::string CachePath(const std::string& tag, uint64_t config_fingerprint,
                      uint64_t data_fingerprint, const std::string& suffix) {
  char key[64];
  std::snprintf(key, sizeof(key), "_%016llx_%016llx",
                static_cast<unsigned long long>(config_fingerprint),
                static_cast<unsigned long long>(data_fingerprint));
  return CacheDir() + "/" + tag + key + suffix;
}

core::T2Vec GetOrTrainModel(const std::string& tag,
                            const std::vector<traj::Trajectory>& train_trips,
                            const core::T2VecConfig& config,
                            core::TrainStats* stats) {
  if (stats != nullptr) *stats = core::TrainStats{};
  EnsureCacheDir();
  const std::string name = CachePath(tag, config.Fingerprint(),
                                     DataFingerprint(train_trips), ".t2vec");

  if (std::filesystem::exists(name)) {
    Result<core::T2Vec> loaded = core::T2Vec::Load(name);
    if (loaded.ok()) {
      T2VEC_LOG_INFO("model cache hit: %s", name.c_str());
      return std::move(loaded).value();
    }
    T2VEC_LOG_WARN("corrupt cache entry %s: %s; retraining", name.c_str(),
                   loaded.status().ToString().c_str());
  }

  T2VEC_LOG_INFO("training model [%s] (%s)", tag.c_str(),
                 config.Summary().c_str());
  core::T2Vec model = core::T2Vec::Train(train_trips, config, stats);
  const Status save_status = model.Save(name);
  if (!save_status.ok()) {
    T2VEC_LOG_WARN("cannot cache model: %s", save_status.ToString().c_str());
  }
  return model;
}

core::VRnn GetOrTrainVRnn(const std::string& tag,
                          const std::vector<traj::Trajectory>& train_trips,
                          const geo::HotCellVocab& vocab,
                          const core::T2VecConfig& config, size_t iterations) {
  EnsureCacheDir();
  // Left-to-right lvalue appends: `"_" + std::to_string(...)` trips GCC 12's
  // -Wrestrict false positive on the inlined insert(0, const char*).
  std::string suffix = "_";
  suffix += std::to_string(iterations);
  suffix += ".vrnn";
  const std::string name = CachePath(tag, config.Fingerprint(),
                                     DataFingerprint(train_trips), suffix);

  Rng rng(config.seed + 17);
  core::VRnn vrnn(config, vocab.vocab_size(), rng);
  if (std::filesystem::exists(name) &&
      nn::LoadParams(vrnn.Params(), name).ok()) {
    T2VEC_LOG_INFO("vRNN cache hit: %s", name.c_str());
    return vrnn;
  }

  T2VEC_LOG_INFO("training vRNN [%s] for %zu iterations", tag.c_str(),
                 iterations);
  std::vector<traj::TokenSeq> seqs;
  seqs.reserve(train_trips.size());
  for (const traj::Trajectory& t : train_trips) {
    seqs.push_back(traj::Tokenize(vocab, t));
  }
  Rng train_rng(config.seed + 29);
  const double loss = vrnn.Train(seqs, iterations, train_rng);
  T2VEC_LOG_INFO("vRNN final loss %.4f", loss);
  const Status save_status = nn::SaveParams(vrnn.Params(), name);
  if (!save_status.ok()) {
    T2VEC_LOG_WARN("cannot cache vRNN: %s", save_status.ToString().c_str());
  }
  return vrnn;
}

}  // namespace t2vec::eval
