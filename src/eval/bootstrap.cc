#include "eval/bootstrap.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "common/sort.h"

namespace t2vec::eval {

IntervalEstimate BootstrapMean(const std::vector<double>& samples,
                               int resamples, double alpha, Rng& rng) {
  T2VEC_CHECK(!samples.empty());
  T2VEC_CHECK(resamples >= 2);
  T2VEC_CHECK(alpha > 0.0 && alpha < 1.0);

  const size_t n = samples.size();
  double total = 0.0;
  for (double s : samples) total += s;

  std::vector<double> means;
  means.reserve(static_cast<size_t>(resamples));
  for (int r = 0; r < resamples; ++r) {
    double acc = 0.0;
    for (size_t i = 0; i < n; ++i) acc += samples[rng.UniformInt(n)];
    means.push_back(acc / static_cast<double>(n));
  }
  // Resampled means can tie exactly; the percentile interpolation below
  // reads positional values, so the order is pinned.
  DeterministicSort(means.begin(), means.end());

  auto percentile = [&](double q) {
    const double pos = q * static_cast<double>(means.size() - 1);
    const size_t lo = static_cast<size_t>(std::floor(pos));
    const size_t hi = std::min(lo + 1, means.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return means[lo] * (1.0 - frac) + means[hi] * frac;
  };

  IntervalEstimate out;
  out.mean = total / static_cast<double>(n);
  out.lower = percentile(alpha / 2.0);
  out.upper = percentile(1.0 - alpha / 2.0);
  return out;
}

IntervalEstimate BootstrapMeanRank(const std::vector<size_t>& ranks,
                                   int resamples, double alpha, Rng& rng) {
  std::vector<double> samples;
  samples.reserve(ranks.size());
  for (size_t r : ranks) samples.push_back(static_cast<double>(r));
  return BootstrapMean(samples, resamples, alpha, rng);
}

}  // namespace t2vec::eval
