#ifndef T2VEC_EVAL_METRICS_H_
#define T2VEC_EVAL_METRICS_H_

#include <cstddef>
#include <vector>

/// \file
/// Scalar evaluation metrics of the paper's Sec. V protocol.

namespace t2vec::eval {

/// Mean of 1-based ranks.
double MeanRank(const std::vector<size_t>& ranks);

/// Precision of a retrieved k-NN list against a ground-truth k-NN list:
/// |retrieved ∩ truth| / |truth| (paper Sec. V-C3, "proportion of true k-nn
/// trajectories"). Both lists are index sets; order is ignored.
double KnnPrecision(const std::vector<size_t>& truth,
                    const std::vector<size_t>& retrieved);

/// Recall@k of an approximate k-NN list against the exact k-NN list:
/// |retrieved ∩ truth| / |truth|. Numerically identical to KnnPrecision —
/// the lists share a size k, so precision and recall coincide — but named
/// for the ANN-evaluation reading, where `truth` is always the exact scan's
/// answer and `retrieved` comes from an approximate index (LSH, IVF).
double RecallAtK(const std::vector<size_t>& exact,
                 const std::vector<size_t>& approx);

/// Cross-distance deviation (paper Sec. V-C2):
/// |d(Ta(r), Ta'(r)) - d(Tb, Tb')| / d(Tb, Tb'). Guarded against a zero
/// denominator (identical originals are skipped by the caller by contract;
/// this returns 0 for 0/0).
double CrossDistanceDeviation(double transformed_distance,
                              double original_distance);

}  // namespace t2vec::eval

#endif  // T2VEC_EVAL_METRICS_H_
