#ifndef T2VEC_EVAL_TABLE_H_
#define T2VEC_EVAL_TABLE_H_

#include <string>
#include <vector>

/// \file
/// Fixed-width table printer so every bench emits paper-style tables.

namespace t2vec::eval {

/// Accumulates rows and prints an aligned table to stdout.
class Table {
 public:
  /// `title` is printed above the table; `header` names the columns.
  Table(std::string title, std::vector<std::string> header);

  /// Adds a row of preformatted cells (must match the header width).
  void AddRow(std::vector<std::string> cells);

  /// Convenience: first cell is a label, remaining cells are numbers
  /// formatted with `precision` decimals.
  void AddRow(const std::string& label, const std::vector<double>& values,
              int precision = 2);

  /// Renders to stdout.
  void Print() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace t2vec::eval

#endif  // T2VEC_EVAL_TABLE_H_
