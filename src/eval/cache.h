#ifndef T2VEC_EVAL_CACHE_H_
#define T2VEC_EVAL_CACHE_H_

#include <string>
#include <vector>

#include "core/t2vec.h"
#include "core/trainer.h"
#include "core/vrnn.h"
#include "traj/trajectory.h"

/// \file
/// On-disk cache of trained models, keyed by (tag, config fingerprint,
/// training-set fingerprint). The bench binaries share one default model
/// this way: the first bench trains it (~minutes), the rest load it.

namespace t2vec::eval {

/// Default cache directory, overridable via $T2VEC_CACHE_DIR.
std::string CacheDir();

/// Structural fingerprint of a training set: size plus probe points (first,
/// middle, last of sampled trips), hashed by floating-point bit pattern so
/// negative coordinates and sub-millimeter differences both distinguish
/// datasets. Exposed for the cache-collision regression tests.
uint64_t DataFingerprint(const std::vector<traj::Trajectory>& trips);

/// Cache file path for a (tag, config, data) key: never truncates, however
/// long $T2VEC_CACHE_DIR is. `suffix` is the extension including the dot.
std::string CachePath(const std::string& tag, uint64_t config_fingerprint,
                      uint64_t data_fingerprint, const std::string& suffix);

/// Loads the cached model for this (tag, config, data) key, or trains one
/// and stores it. `stats`, if non-null, is filled only on a fresh training
/// run (stats->iterations == 0 signals a cache hit).
core::T2Vec GetOrTrainModel(const std::string& tag,
                            const std::vector<traj::Trajectory>& train_trips,
                            const core::T2VecConfig& config,
                            core::TrainStats* stats = nullptr);

/// Loads or trains the vRNN baseline over `vocab` (architecture fields are
/// taken from `config`, matching the paper's "same parameters as our
/// encoder-RNN"). Only the weights are cached; the vocabulary comes from the
/// accompanying t2vec model.
core::VRnn GetOrTrainVRnn(const std::string& tag,
                          const std::vector<traj::Trajectory>& train_trips,
                          const geo::HotCellVocab& vocab,
                          const core::T2VecConfig& config, size_t iterations);

}  // namespace t2vec::eval

#endif  // T2VEC_EVAL_CACHE_H_
