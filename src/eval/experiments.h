#ifndef T2VEC_EVAL_EXPERIMENTS_H_
#define T2VEC_EVAL_EXPERIMENTS_H_

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/t2vec.h"
#include "core/vrnn.h"
#include "dist/measure.h"
#include "traj/dataset.h"
#include "traj/generator.h"

/// \file
/// Shared drivers for the paper's Sec. V experimental protocol, used by
/// every bench binary:
///
///  - *Most similar search* (Sec. V-C1, Tables III-V): each test trajectory
///    T_b is split into interleaved halves T_a / T_a' (Fig. 4); T_a queries
///    a database containing every T_a'; the rank of the query's own twin is
///    the score.
///  - *Cross-similarity* (Sec. V-C2, Table VI): distance deviation between
///    transformed variants relative to the original pair distance.
///  - *k-NN precision* (Sec. V-C3, Fig. 5): k-NN lists on transformed data
///    compared against each method's own k-NN list on the originals.

namespace t2vec::eval {

/// Which synthetic dataset preset to use.
enum class DatasetKind { kPortoLike, kHarbinLike };

/// Generated train/test split (temporal prefix split, as in the paper).
struct ExperimentData {
  traj::Dataset train;
  traj::Dataset test;
};

/// Generates `train_count` + `test_count` trips of the given preset.
ExperimentData MakeData(DatasetKind kind, size_t train_count,
                        size_t test_count);

/// Global scale factor for bench workloads, read from the environment
/// variable T2VEC_BENCH_SCALE (default 1.0). Benches multiply their trip,
/// query, and iteration counts by it, so `T2VEC_BENCH_SCALE=0.25 bench_x`
/// gives a quick smoke run of the same code path.
double BenchScaleFactor();

/// `n` scaled by BenchScaleFactor(), with a floor to stay meaningful.
size_t Scaled(size_t n, size_t floor = 8);

/// Default t2vec configuration for the bench suite (paper settings scaled
/// to single-core CPU training; see DESIGN.md §1).
core::T2VecConfig DefaultBenchConfig();

// ---------------------------------------------------------------------------
// Most similar search.
// ---------------------------------------------------------------------------

/// Query/database construction of Sec. V-C1. The twin of queries[i] is
/// database[i]; database[num_queries..] are the distractors from P.
struct MssData {
  std::vector<traj::Trajectory> queries;   ///< D_Q = {T_a}
  std::vector<traj::Trajectory> database;  ///< D'_Q ∪ D'_P
  size_t num_queries = 0;
};

/// Builds D_Q / D'_Q from the first `num_queries` test trips and D'_P from
/// the next `num_distractors`. Requires enough test trips.
MssData BuildMss(const traj::Dataset& test, size_t num_queries,
                 size_t num_distractors);

/// Applies Downsample(r1) then Distort(r2) to every query and database
/// trajectory (the paper transforms both sides).
void TransformMss(MssData* mss, double r1, double r2, Rng& rng);

/// Mean rank of each query's twin under a classical measure.
double MeanRankOfMeasure(const dist::Measure& measure, const MssData& mss);

/// Mean rank using rows of two aligned embedding matrices.
double MeanRankOfVectors(const nn::Matrix& query_vecs,
                         const nn::Matrix& db_vecs);

/// Mean rank for a trained t2vec model (encodes, then ranks in vector
/// space).
double MeanRankOfT2Vec(const core::T2Vec& model, const MssData& mss);

/// Mean rank for the vRNN baseline.
double MeanRankOfVRnn(const core::VRnn& vrnn, const geo::HotCellVocab& vocab,
                      const MssData& mss);

// ---------------------------------------------------------------------------
// Cross-similarity.
// ---------------------------------------------------------------------------

/// Random distinct test-trajectory pairs (T_b, T_b').
std::vector<std::pair<traj::Trajectory, traj::Trajectory>> MakeCrossPairs(
    const traj::Dataset& test, size_t count, Rng& rng);

/// Mean cross-distance deviation under a classical measure when both pair
/// members are transformed with (r1, r2).
double CrossDeviationOfMeasure(
    const dist::Measure& measure,
    const std::vector<std::pair<traj::Trajectory, traj::Trajectory>>& pairs,
    double r1, double r2, Rng& rng);

/// Same for t2vec (vector-space distances).
double CrossDeviationOfT2Vec(
    const core::T2Vec& model,
    const std::vector<std::pair<traj::Trajectory, traj::Trajectory>>& pairs,
    double r1, double r2, Rng& rng);

// ---------------------------------------------------------------------------
// k-NN precision.
// ---------------------------------------------------------------------------

/// Mean precision@k of a classical measure: ground truth is the measure's
/// own k-NN on the originals; retrieval runs on (r1, r2)-transformed queries
/// and database (Sec. V-C3 methodology).
double KnnPrecisionOfMeasure(const dist::Measure& measure,
                             const std::vector<traj::Trajectory>& queries,
                             const std::vector<traj::Trajectory>& database,
                             size_t k, double r1, double r2, Rng& rng);

/// Same protocol for any trajectory encoder (rows of the returned matrix are
/// aligned with the input trajectories). Lets callers run the fig5 harness
/// over alternative encode paths — e.g. int8-quantized inference — and
/// compare precision against the fp32 encoder under identical transforms
/// (seed the Rng the same way for both runs).
using EncodeFn =
    std::function<nn::Matrix(const std::vector<traj::Trajectory>&)>;
double KnnPrecisionOfEncoder(const EncodeFn& encode,
                             const std::vector<traj::Trajectory>& queries,
                             const std::vector<traj::Trajectory>& database,
                             size_t k, double r1, double r2, Rng& rng);

/// Same for t2vec (fp32 encode path).
double KnnPrecisionOfT2Vec(const core::T2Vec& model,
                           const std::vector<traj::Trajectory>& queries,
                           const std::vector<traj::Trajectory>& database,
                           size_t k, double r1, double r2, Rng& rng);

}  // namespace t2vec::eval

#endif  // T2VEC_EVAL_EXPERIMENTS_H_
