#include "eval/table.h"

#include <algorithm>
#include <cstdio>

#include "common/macros.h"

namespace t2vec::eval {

Table::Table(std::string title, std::vector<std::string> header)
    : title_(std::move(title)), header_(std::move(header)) {}

void Table::AddRow(std::vector<std::string> cells) {
  T2VEC_CHECK(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

void Table::AddRow(const std::string& label, const std::vector<double>& values,
                   int precision) {
  std::vector<std::string> cells;
  cells.push_back(label);
  char buf[64];
  for (double v : values) {
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    cells.emplace_back(buf);
  }
  AddRow(std::move(cells));
}

void Table::Print() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::printf("\n== %s ==\n", title_.c_str());
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      std::printf("%-*s", static_cast<int>(widths[c] + 2), cells[c].c_str());
    }
    std::printf("\n");
  };
  print_row(header_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  std::printf("%s\n", std::string(total, '-').c_str());
  for (const auto& row : rows_) print_row(row);
}

}  // namespace t2vec::eval
