#ifndef T2VEC_SERVE_WAL_H_
#define T2VEC_SERVE_WAL_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "common/fs.h"
#include "common/status.h"

/// \file
/// Write-ahead log for the serving-path ingestion pipeline (DESIGN.md §8).
///
/// File layout (flat little-endian, like common/serialize.h):
///
///     [magic "T2WL" u32][version u32]            file header
///     [payload_len u32][crc32c(payload) u32][payload bytes]   record 0
///     [payload_len u32][crc32c(payload) u32][payload bytes]   record 1
///     ...
///
/// Every `WalWriter::Append` fsyncs before returning OK, so an acknowledged
/// record is durable. A crash can still leave a *torn tail* — a partially
/// written final record (or header) — and the per-record CRC32C is what
/// makes that safe: `ReplayWal` applies records in order and stops cleanly
/// at the first record whose length field overruns the file or whose
/// checksum mismatches, reporting the byte offset of the intact prefix so
/// the owner can trim the tail before appending again. Replay of a given
/// WAL file is fully deterministic: records are applied sequentially in
/// write order, single-threaded.
///
/// Fault points (common/fault.h): "wal.append", "wal.replay", plus the
/// fs.append.* sites of the underlying AppendOnlyFile.

namespace t2vec::serve {

/// Magic "T2WL" little-endian at offset 0 of every WAL file.
inline constexpr uint32_t kWalMagic = 0x4C57'3254;
inline constexpr uint32_t kWalVersion = 1;
/// Header + per-record overhead, in bytes.
inline constexpr size_t kWalHeaderBytes = 8;
inline constexpr size_t kWalRecordOverhead = 8;

/// What ReplayWal found in the file.
struct WalReplayStats {
  size_t records = 0;        ///< Intact records applied, in write order.
  uint64_t valid_bytes = 0;  ///< Header + intact records; the rest is torn.
  bool torn_tail = false;    ///< File ended inside a record (crash artifact).
};

/// Appends CRC32C-framed records to a WAL file, fsyncing each one.
///
/// The constructor opens (or creates) `path` in append mode and writes the
/// file header if the file is empty. Reopening an existing WAL resumes
/// appending after its current end — the owner is expected to have trimmed
/// any torn tail first (DurableStore does this with ReplayWal's
/// `valid_bytes`). First error wins; a failed writer stays inert.
class WalWriter {
 public:
  explicit WalWriter(const std::string& path);

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// True until the first I/O failure.
  bool ok() const { return file_.ok(); }
  const Status& status() const { return file_.status(); }

  /// Appends one record and fsyncs: when this returns OK the record will
  /// survive a crash. Fault point "wal.append" fires before any byte is
  /// written, so an injected fault leaves the log exactly as it was.
  Status Append(std::string_view payload);

  /// Current file size in bytes (header + records).
  uint64_t size_bytes() const { return file_.size(); }

  const std::string& path() const { return file_.path(); }

 private:
  AppendOnlyFile file_;
};

/// Replays `path`, calling `apply` on each intact record payload in write
/// order. A missing file is an empty log (OK, 0 records). A torn tail stops
/// replay cleanly with `torn_tail = true`; a bad header on a non-empty file
/// or an `apply` failure is an error (the log cannot be trusted). The
/// stats' `valid_bytes` is the offset the owner should truncate to before
/// appending new records.
Result<WalReplayStats> ReplayWal(
    const std::string& path,
    const std::function<Status(std::string_view payload)>& apply);

}  // namespace t2vec::serve

#endif  // T2VEC_SERVE_WAL_H_
