#include "serve/embedding_service.h"

#include <algorithm>
#include <utility>

#include "common/macros.h"
#include "common/thread_pool.h"
#include "nn/matrix.h"

namespace t2vec::serve {

namespace {

double ElapsedUs(EmbeddingService::Clock::time_point from,
                 EmbeddingService::Clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

}  // namespace

EmbeddingService::EmbeddingService(const core::T2Vec* model,
                                   ServiceOptions options)
    : model_(model), options_(options) {
  T2VEC_CHECK(model_ != nullptr);
  T2VEC_CHECK(options_.queue_capacity >= 1);
  T2VEC_CHECK(options_.max_batch >= 1);
  // Pay the int8 weight-quantization cost here, not on the first request.
  if (options_.quantized) model_->PrepareQuantized();
  dispatcher_ = std::thread([this] { DispatchLoop(); });
}

EmbeddingService::~EmbeddingService() { Shutdown(); }

std::future<EmbeddingService::EncodeResult> EmbeddingService::Submit(
    const traj::Trajectory& trip) {
  return SubmitInternal(trip, Clock::time_point{}, /*has_deadline=*/false);
}

std::future<EmbeddingService::EncodeResult>
EmbeddingService::SubmitWithDeadline(const traj::Trajectory& trip,
                                     Clock::time_point deadline) {
  return SubmitInternal(trip, deadline, /*has_deadline=*/true);
}

std::future<EmbeddingService::EncodeResult> EmbeddingService::SubmitInternal(
    const traj::Trajectory& trip, Clock::time_point deadline,
    bool has_deadline) {
  Request request;
  // Tokenize on the caller's thread: it is cheap relative to the encode and
  // keeps the dispatcher's critical path free of per-request work.
  request.tokens = model_->EncoderTokens(trip);
  request.enqueue_time = Clock::now();
  request.deadline = deadline;
  request.has_deadline = has_deadline;
  std::future<EncodeResult> future = request.promise.get_future();

  {
    sync::MutexLock lock(&mu_);
    if (stop_) {
      metrics_.rejected_shutdown.Increment();
      request.promise.set_value(
          Status::Unavailable("EmbeddingService is shut down"));
      return future;
    }
    if (queue_.size() >= options_.queue_capacity) {
      metrics_.rejected_queue_full.Increment();
      request.promise.set_value(Status::Unavailable(
          "EmbeddingService queue full (" +
          std::to_string(options_.queue_capacity) + " pending)"));
      return future;
    }
    queue_.push_back(std::move(request));
    metrics_.submitted.Increment();
    metrics_.queue_depth.Observe(static_cast<double>(queue_.size()));
  }
  work_cv_.NotifyOne();
  return future;
}

void EmbeddingService::Shutdown() {
  {
    sync::MutexLock lock(&mu_);
    stop_ = true;
  }
  work_cv_.NotifyAll();
  // joinable() flips to false under join_mu_, making Shutdown idempotent
  // and safe to race with itself (and with the destructor).
  sync::MutexLock join_lock(&join_mu_);
  if (dispatcher_.joinable()) dispatcher_.join();
}

std::vector<EmbeddingService::Request> EmbeddingService::TakeBatchLocked() {
  std::vector<Request> batch;
  if (queue_.empty()) return batch;
  const size_t want = queue_.front().tokens.size();
  batch.reserve(std::min(options_.max_batch, queue_.size()));
  // One pass, oldest first: take up to max_batch requests whose token
  // length matches the head's; every other request keeps its place.
  for (auto it = queue_.begin();
       it != queue_.end() && batch.size() < options_.max_batch;) {
    if (it->tokens.size() == want) {
      batch.push_back(std::move(*it));
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
  return batch;
}

void EmbeddingService::Flush(std::vector<Request> batch) {
  const Clock::time_point now = Clock::now();
  // Expire overdue requests before paying for the encode. Deadlines are
  // checked here, at batch assembly — an expired request never reaches the
  // encoder and can never wedge the Shutdown() drain.
  std::vector<Request> live;
  live.reserve(batch.size());
  for (Request& request : batch) {
    if (request.has_deadline && request.deadline < now) {
      metrics_.deadline_expired.Increment();
      request.promise.set_value(
          Status::DeadlineExceeded("deadline passed before encoding"));
    } else {
      live.push_back(std::move(request));
    }
  }
  if (live.empty()) return;

  std::vector<traj::TokenSeq> seqs;
  seqs.reserve(live.size());
  for (const Request& request : live) seqs.push_back(request.tokens);

  const Clock::time_point flush_start = Clock::now();
  nn::Matrix vectors;
  {
    ScopedNumThreads scoped(options_.num_threads);
    vectors = options_.quantized ? model_->EncodeQuantizedTokenized(seqs)
                                 : model_->EncodeTokenized(seqs);
  }
  const Clock::time_point flush_end = Clock::now();

  metrics_.flushes.Increment();
  metrics_.batch_size.Observe(static_cast<double>(live.size()));
  metrics_.flush_latency_us.Observe(ElapsedUs(flush_start, flush_end));
  for (size_t i = 0; i < live.size(); ++i) {
    std::vector<float> vec(vectors.Row(i), vectors.Row(i) + vectors.cols());
    metrics_.request_latency_us.Observe(
        ElapsedUs(live[i].enqueue_time, flush_end));
    metrics_.completed.Increment();
    live[i].promise.set_value(std::move(vec));
  }
}

void EmbeddingService::DispatchLoop() {
  // Predicate loops are spelled out (common/sync.h): a wait lambda would be
  // analyzed as its own unlocked function and defeat the GUARDED_BY checks.
  mu_.Lock();
  for (;;) {
    while (!stop_ && queue_.empty()) work_cv_.Wait(&mu_);
    if (queue_.empty()) {
      if (stop_) break;
      continue;
    }
    // Let a micro-batch accumulate: flush when the queue could fill one, or
    // when the head request has waited out the batch window, or on stop
    // (drain mode never waits).
    if (!stop_ && options_.batch_window.count() > 0) {
      const Clock::time_point flush_at =
          queue_.front().enqueue_time + options_.batch_window;
      while (!stop_ && queue_.size() < options_.max_batch) {
        if (work_cv_.WaitUntil(&mu_, flush_at) == std::cv_status::timeout) {
          break;
        }
      }
      if (queue_.empty()) continue;  // Drained by a racing state change.
    }
    std::vector<Request> batch = TakeBatchLocked();
    mu_.Unlock();
    Flush(std::move(batch));
    mu_.Lock();
  }
  mu_.Unlock();
}

}  // namespace t2vec::serve
