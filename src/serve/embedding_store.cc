#include "serve/embedding_store.h"

#include <utility>

#include "common/serialize.h"

namespace t2vec::serve {

namespace {

// "t2vS" little-endian: distinguishes store snapshots from model files.
constexpr uint32_t kStoreMagic = 0x5376'3274;
// Version 2 added the atomic-write + CRC32C trailer framing (DESIGN.md §7);
// the payload layout is unchanged, so version-1 (trailer-less) files remain
// loadable.
constexpr uint32_t kStoreVersion = 2;
constexpr uint32_t kFirstChecksummedStoreVersion = 2;

}  // namespace

EmbeddingStore::EmbeddingStore(size_t dim) : index_(dim) {}

Status EmbeddingStore::Add(int64_t id, std::span<const float> vec) {
  if (vec.size() != dim()) {
    return Status::InvalidArgument(
        "EmbeddingStore::Add: vector has dimension " +
        std::to_string(vec.size()) + ", store holds " + std::to_string(dim()));
  }
  if (Contains(id)) {
    return Status::InvalidArgument("EmbeddingStore::Add: duplicate id " +
                                   std::to_string(id));
  }
  row_of_.emplace(id, ids_.size());
  ids_.push_back(id);
  index_.Add(vec);
  return Status::Ok();
}

const float* EmbeddingStore::Find(int64_t id) const {
  const auto it = row_of_.find(id);
  if (it == row_of_.end()) return nullptr;
  return index_.vectors().Row(it->second);
}

EmbeddingStore::Neighbors EmbeddingStore::Knn(std::span<const float> query,
                                              size_t k) const {
  const core::KnnResult rows = index_.Query(query, k);
  Neighbors out;
  out.ids.reserve(rows.size());
  for (const size_t row : rows.ids) out.ids.push_back(ids_[row]);
  out.distances = rows.distances;
  return out;
}

Status EmbeddingStore::Save(const std::string& path) const {
  BinaryWriter writer(path);
  if (!writer.ok()) return writer.status();
  writer.WritePod(kStoreMagic);
  writer.WritePod(kStoreVersion);
  writer.WritePod<uint64_t>(dim());
  writer.WriteVector(ids_);
  // Row-major vector block; rows() == ids_.size() by construction.
  const nn::Matrix& vectors = index_.vectors();
  std::vector<float> flat(vectors.data(),
                          vectors.data() + vectors.rows() * vectors.cols());
  writer.WriteVector(flat);
  return writer.Finish();
}

Result<EmbeddingStore> EmbeddingStore::Load(const std::string& path) {
  BinaryReader reader(path);
  if (!reader.ok()) return reader.status();
  uint32_t magic = 0;
  uint32_t version = 0;
  uint64_t dim = 0;
  if (!reader.ReadPod(&magic) || magic != kStoreMagic) {
    return Status::IoError("EmbeddingStore::Load: bad magic in " + path);
  }
  if (!reader.ReadPod(&version) || version == 0 || version > kStoreVersion) {
    return Status::IoError("EmbeddingStore::Load: unsupported version in " +
                           path);
  }
  if (version >= kFirstChecksummedStoreVersion && !reader.checksummed()) {
    return Status::IoError("EmbeddingStore::Load: " + path +
                           " is missing its checksum trailer (truncated?)");
  }
  if (!reader.ReadPod(&dim) || dim == 0) {
    return Status::IoError("EmbeddingStore::Load: bad dimension in " + path);
  }
  std::vector<int64_t> ids;
  std::vector<float> flat;
  if (!reader.ReadVector(&ids) || !reader.ReadVector(&flat) ||
      flat.size() != ids.size() * dim) {
    return Status::IoError("EmbeddingStore::Load: truncated store in " + path);
  }
  EmbeddingStore store(static_cast<size_t>(dim));
  for (size_t row = 0; row < ids.size(); ++row) {
    const Status status = store.Add(
        ids[row], {flat.data() + row * dim, static_cast<size_t>(dim)});
    if (!status.ok()) return status;
  }
  return store;
}

}  // namespace t2vec::serve
