#include "serve/embedding_store.h"

#include <cstring>
#include <utility>

#include "common/macros.h"
#include "common/serialize.h"

namespace t2vec::serve {

namespace {

// "t2vS" little-endian: distinguishes store snapshots from model files.
constexpr uint32_t kStoreMagic = 0x5376'3274;
// Version 2 added the atomic-write + CRC32C trailer framing (DESIGN.md §7).
// Version 3 embeds the retrieval backend: an index-kind field after the
// dimension and the index's serialized structure after the vector block, so
// an IVF/LSH store reopens without retraining. v1/v2 files (no embedded
// index) remain loadable — the backend is rebuilt from the vectors.
constexpr uint32_t kStoreVersion = 3;
constexpr uint32_t kFirstChecksummedStoreVersion = 2;
constexpr uint32_t kFirstIndexedStoreVersion = 3;

}  // namespace

EmbeddingStore::EmbeddingStore(size_t dim, core::IndexConfig config) {
  auto created = core::CreateIndex(config, dim);
  // Config validity is a caller contract (user-input paths Validate first).
  T2VEC_CHECK(created.ok());
  index_ = std::move(created).value();
}

Status EmbeddingStore::Add(int64_t id, std::span<const float> vec) {
  if (vec.size() != dim()) {
    return Status::InvalidArgument(
        "EmbeddingStore::Add: vector has dimension " +
        std::to_string(vec.size()) + ", store holds " + std::to_string(dim()));
  }
  if (Contains(id)) {
    return Status::InvalidArgument("EmbeddingStore::Add: duplicate id " +
                                   std::to_string(id));
  }
  row_of_.emplace(id, ids_.size());
  ids_.push_back(id);
  index_->Add(vec);
  return Status::Ok();
}

const float* EmbeddingStore::Find(int64_t id) const {
  const auto it = row_of_.find(id);
  if (it == row_of_.end()) return nullptr;
  return index_->RowPtr(it->second);
}

EmbeddingStore::Neighbors EmbeddingStore::Knn(std::span<const float> query,
                                              size_t k) const {
  const core::KnnResult rows = index_->Query(query, k);
  Neighbors out;
  out.ids.reserve(rows.size());
  for (const size_t row : rows.ids) out.ids.push_back(ids_[row]);
  out.distances = rows.distances;
  return out;
}

Status EmbeddingStore::Save(const std::string& path) const {
  BinaryWriter writer(path);
  if (!writer.ok()) return writer.status();
  writer.WritePod(kStoreMagic);
  writer.WritePod(kStoreVersion);
  writer.WritePod<uint64_t>(dim());
  writer.WritePod<uint32_t>(static_cast<uint32_t>(index_->kind()));
  writer.WriteVector(ids_);
  // Same count-prefixed float block as WriteVector, but streamed straight
  // from the index's row storage (at most two large writes). The header
  // (20) + ids (8 + 8n) + count (8) layout keeps the floats 4-byte aligned
  // at offset 36 + 8n for the LoadMmap zero-copy path.
  writer.WritePod<uint64_t>(size() * dim());
  index_->AppendRowsTo(&writer);
  index_->AppendAuxTo(&writer);
  return writer.Finish();
}

Result<EmbeddingStore> EmbeddingStore::Load(const std::string& path,
                                            core::IndexConfig config) {
  BinaryReader reader(path);
  return LoadImpl(reader, path, config, nullptr);
}

Result<EmbeddingStore> EmbeddingStore::LoadMmap(const std::string& path,
                                                core::IndexConfig config) {
  auto mapped = MmapFile::Open(path);
  if (!mapped.ok()) return mapped.status();
  auto keepalive = std::make_shared<MmapFile>(std::move(mapped).value());
  BinaryReader reader(keepalive->data(), keepalive->size(), path);
  return LoadImpl(reader, path, config, std::move(keepalive));
}

Result<EmbeddingStore> EmbeddingStore::LoadImpl(
    BinaryReader& reader, const std::string& path,
    const core::IndexConfig& config, std::shared_ptr<MmapFile> keepalive) {
  if (Status st = config.Validate(); !st.ok()) return st;
  if (!reader.ok()) return reader.status();
  uint32_t magic = 0;
  uint32_t version = 0;
  uint64_t dim = 0;
  if (!reader.ReadPod(&magic) || magic != kStoreMagic) {
    return Status::IoError("EmbeddingStore::Load: bad magic in " + path);
  }
  if (!reader.ReadPod(&version) || version == 0 || version > kStoreVersion) {
    return Status::IoError("EmbeddingStore::Load: unsupported version in " +
                           path);
  }
  if (version >= kFirstChecksummedStoreVersion && !reader.checksummed()) {
    return Status::IoError("EmbeddingStore::Load: " + path +
                           " is missing its checksum trailer (truncated?)");
  }
  if (!reader.ReadPod(&dim) || dim == 0) {
    return Status::IoError("EmbeddingStore::Load: bad dimension in " + path);
  }
  uint32_t file_kind = static_cast<uint32_t>(core::IndexKind::kExact);
  if (version >= kFirstIndexedStoreVersion) {
    if (!reader.ReadPod(&file_kind) ||
        file_kind > static_cast<uint32_t>(core::IndexKind::kIvf)) {
      return Status::IoError("EmbeddingStore::Load: bad index kind in " +
                             path);
    }
  }
  std::vector<int64_t> ids;
  uint64_t floats = 0;
  if (!reader.ReadVector(&ids) || !reader.ReadPod(&floats) ||
      floats != ids.size() * dim ||
      floats > reader.remaining() / sizeof(float)) {
    return Status::IoError("EmbeddingStore::Load: truncated store in " + path);
  }

  core::RowBlock block;
  block.rows = ids.size();
  const char* raw = reader.ReadRaw(static_cast<size_t>(floats) *
                                   sizeof(float));
  if (raw == nullptr) {
    return Status::IoError("EmbeddingStore::Load: truncated store in " + path);
  }
  if (keepalive != nullptr && block.rows > 0) {
    // Zero-copy: rows point into the mapping; the store keeps it alive.
    T2VEC_CHECK(reinterpret_cast<uintptr_t>(raw) % alignof(float) == 0);
    block.borrowed = reinterpret_cast<const float*>(raw);
    block.keepalive = std::move(keepalive);
  } else {
    block.owned.resize(static_cast<size_t>(floats));
    std::memcpy(block.owned.data(), raw,
                static_cast<size_t>(floats) * sizeof(float));
  }

  EmbeddingStore store(static_cast<size_t>(dim), config);
  store.ids_ = std::move(ids);
  store.row_of_.reserve(store.ids_.size());
  for (size_t row = 0; row < store.ids_.size(); ++row) {
    if (!store.row_of_.emplace(store.ids_[row], row).second) {
      return Status::IoError("EmbeddingStore::Load: duplicate id " +
                             std::to_string(store.ids_[row]) + " in " + path);
    }
  }
  // The embedded structure only matches when the snapshot was saved under
  // the configured kind; otherwise the rows load and the backend rebuilds.
  BinaryReader* aux =
      version >= kFirstIndexedStoreVersion &&
              file_kind == static_cast<uint32_t>(config.kind)
          ? &reader
          : nullptr;
  if (Status st = store.index_->Restore(std::move(block), aux); !st.ok()) {
    return Status(st.code(),
                  "EmbeddingStore::Load: " + path + ": " + st.message());
  }
  return store;
}

}  // namespace t2vec::serve
