#ifndef T2VEC_SERVE_CLIENT_H_
#define T2VEC_SERVE_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "serve/embedding_store.h"
#include "serve/protocol.h"
#include "traj/trajectory.h"

/// \file
/// Blocking TCP client for the serve/protocol.h wire format: one connection,
/// one in-flight request at a time. Used by `t2vec_cli server` smoke checks,
/// the closed-loop load benchmark (bench/bench_server.cc), and the
/// end-to-end server tests.
///
/// Not thread-safe — Call interleaves a send and a receive on one socket, so
/// give each client thread its own TcpClient (that is also what makes the
/// benchmark closed-loop).

namespace t2vec::serve {

class TcpClient {
 public:
  /// Connects to `host`:`port` (IPv4 dotted quad, e.g. "127.0.0.1").
  static Result<std::unique_ptr<TcpClient>> Connect(const std::string& host,
                                                    uint16_t port);
  ~TcpClient();

  TcpClient(const TcpClient&) = delete;
  TcpClient& operator=(const TcpClient&) = delete;

  /// The server-side embedding of `trip` (bit-identical to EncodeOne).
  Result<std::vector<float>> Encode(const traj::Trajectory& trip);

  /// Encodes and durably inserts `trip`; returns its id. An OK return means
  /// the server fsynced the insert to its WAL before responding.
  Result<int64_t> Insert(const traj::Trajectory& trip);

  /// Encodes `trip` and returns its k nearest stored neighbors (k is
  /// clamped server-side to the store size).
  Result<EmbeddingStore::Neighbors> Knn(const traj::Trajectory& trip,
                                        uint32_t k);

  /// The server's combined stats JSON.
  Result<std::string> Stats();

 private:
  explicit TcpClient(int fd) : fd_(fd) {}

  /// Sends one request frame and blocks for the matching response.
  Result<Response> Call(const Request& request);

  int fd_ = -1;
  std::string buffer_;  ///< Bytes received beyond the last parsed frame.
};

}  // namespace t2vec::serve

#endif  // T2VEC_SERVE_CLIENT_H_
