#ifndef T2VEC_SERVE_CLIENT_H_
#define T2VEC_SERVE_CLIENT_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "serve/embedding_store.h"
#include "serve/protocol.h"
#include "traj/trajectory.h"

/// \file
/// Blocking TCP client for the serve/protocol.h wire format: one connection,
/// one in-flight request at a time. Used by `t2vec_cli server` smoke checks,
/// the closed-loop load benchmark (bench/bench_server.cc), and the
/// end-to-end server tests.
///
/// Every socket operation carries a timeout (TcpClient::Options) — a dead,
/// hung, or never-accepting server produces kDeadlineExceeded instead of a
/// wedged caller. Each request can also ship a server-side `deadline_ms`
/// budget (protocol v2): the server fails the request fast once it expires
/// instead of paying for an encode or a WAL fsync.
///
/// RetryingClient wraps TcpClient with capped exponential backoff and
/// deterministic jitter (common/rng.h), reconnecting on transport errors.
/// Retry safety per operation (DESIGN.md §8.4): encode/knn/stats are pure
/// reads, always retryable; insert is retryable because the store's
/// duplicate-id check makes replay idempotent — an insert retry that answers
/// "duplicate id" after a lost ack is reported as success. Nothing retries
/// after kDeadlineExceeded.
///
/// Neither class is thread-safe — Call interleaves a send and a receive on
/// one socket, so give each client thread its own instance (that is also
/// what makes the benchmark closed-loop).

namespace t2vec::serve {

/// Per-operation socket timeouts. Defaults are finite on purpose: the old
/// client blocked forever in ::connect/::recv against a dead server.
/// (Top-level rather than nested so it can default-construct in TcpClient's
/// own default arguments.)
struct TcpClientOptions {
  std::chrono::milliseconds connect_timeout{5'000};
  std::chrono::milliseconds send_timeout{5'000};
  /// Budget for the response after a request is sent. When a request
  /// carries deadline_ms, that budget is added on top, so a legitimate
  /// server-side deadline can never starve the client's read.
  std::chrono::milliseconds recv_timeout{10'000};
};

class TcpClient {
 public:
  using Options = TcpClientOptions;

  /// Connects to `host`:`port` (IPv4 dotted quad, e.g. "127.0.0.1") within
  /// options.connect_timeout; kDeadlineExceeded on timeout.
  static Result<std::unique_ptr<TcpClient>> Connect(const std::string& host,
                                                    uint16_t port,
                                                    Options options = {});
  ~TcpClient();

  TcpClient(const TcpClient&) = delete;
  TcpClient& operator=(const TcpClient&) = delete;

  /// The server-side embedding of `trip` (bit-identical to EncodeOne).
  /// `deadline_ms` > 0 ships a server-side budget with the request.
  Result<std::vector<float>> Encode(const traj::Trajectory& trip,
                                    uint32_t deadline_ms = 0);

  /// Encodes and durably inserts `trip`; returns its id. An OK return means
  /// the server fsynced the insert to its WAL before responding.
  Result<int64_t> Insert(const traj::Trajectory& trip,
                         uint32_t deadline_ms = 0);

  /// Encodes `trip` and returns its k nearest stored neighbors (k is
  /// clamped server-side to the store size).
  Result<EmbeddingStore::Neighbors> Knn(const traj::Trajectory& trip,
                                        uint32_t k, uint32_t deadline_ms = 0);

  /// The server's combined stats JSON.
  Result<std::string> Stats(uint32_t deadline_ms = 0);

 private:
  TcpClient(int fd, std::string target, Options options)
      : fd_(fd), target_(std::move(target)), options_(options) {}

  /// Sends one request frame and blocks (bounded) for the matching response.
  Result<Response> Call(const Request& request);

  int fd_ = -1;
  std::string target_;  ///< host:port, for error messages.
  Options options_;
  std::string buffer_;  ///< Bytes received beyond the last parsed frame.
};

/// Retry policy for RetryingClient. Backoff for attempt n (n >= 1 retries)
/// is min(max_backoff, initial_backoff * 2^(n-1)) scaled by a jitter factor
/// in [0.5, 1.0) drawn from a deterministic Rng stream seeded with
/// `jitter_seed` — same seed, same backoff schedule, reproducible soaks.
struct RetryOptions {
  int max_attempts = 4;  ///< Total tries, including the first.
  std::chrono::milliseconds initial_backoff{10};
  std::chrono::milliseconds max_backoff{500};
  uint64_t jitter_seed = 1;
  TcpClient::Options socket;
};

/// A TcpClient wrapper that reconnects and retries on transport failures
/// (kIoError) and overload rejections (kUnavailable). kDeadlineExceeded and
/// request-level errors (kInvalidArgument, kNotFound, ...) are terminal.
/// When an op carries deadline_ms, it also caps the whole retry loop —
/// never retry after a deadline.
class RetryingClient {
 public:
  RetryingClient(std::string host, uint16_t port, RetryOptions options = {});

  RetryingClient(const RetryingClient&) = delete;
  RetryingClient& operator=(const RetryingClient&) = delete;

  Result<std::vector<float>> Encode(const traj::Trajectory& trip,
                                    uint32_t deadline_ms = 0);
  Result<int64_t> Insert(const traj::Trajectory& trip,
                         uint32_t deadline_ms = 0);
  Result<EmbeddingStore::Neighbors> Knn(const traj::Trajectory& trip,
                                        uint32_t k, uint32_t deadline_ms = 0);
  Result<std::string> Stats(uint32_t deadline_ms = 0);

  int64_t retries() const { return retries_; }
  int64_t reconnects() const { return reconnects_; }

 private:
  /// Runs `op` with reconnect + backoff. `insert_id` enables the idempotent
  /// duplicate-id replay mapping (nullptr for read ops).
  template <typename T, typename Fn>
  Result<T> CallWithRetry(uint32_t deadline_ms, const int64_t* insert_id,
                          Fn&& op);

  /// Sleeps the jittered backoff for retry `attempt` (1-based), not past
  /// `overall`. False when the overall deadline leaves no room to retry.
  bool BackoffBeforeRetry(int attempt, std::chrono::steady_clock::time_point
                                           overall);

  const std::string host_;
  const uint16_t port_;
  const RetryOptions options_;
  Rng rng_;  ///< Jitter stream; deterministic per jitter_seed.
  std::unique_ptr<TcpClient> client_;
  int64_t retries_ = 0;
  int64_t reconnects_ = 0;
};

}  // namespace t2vec::serve

#endif  // T2VEC_SERVE_CLIENT_H_
