#include "serve/protocol.h"

#include <cstring>

#include "common/fs.h"

namespace t2vec::serve {

namespace {

template <typename T>
void AppendPod(std::string* out, const T& v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out->append(buf, sizeof(T));
}

template <typename T>
bool ReadPod(std::string_view in, size_t* pos, T* out) {
  if (in.size() - *pos < sizeof(T)) return false;
  std::memcpy(out, in.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}

Status Truncated(const char* what) {
  return Status::IoError(std::string("protocol: truncated ") + what);
}

void AppendTrajectory(const traj::Trajectory& trajectory, std::string* out) {
  AppendPod(out, trajectory.id);
  AppendPod(out, static_cast<uint32_t>(trajectory.points.size()));
  for (const geo::Point& p : trajectory.points) {
    AppendPod(out, p.x);
    AppendPod(out, p.y);
  }
}

Status ReadTrajectory(std::string_view in, size_t* pos,
                      traj::Trajectory* out) {
  uint32_t n = 0;
  if (!ReadPod(in, pos, &out->id) || !ReadPod(in, pos, &n)) {
    return Truncated("trajectory header");
  }
  // Two f64 per point: reject counts the remaining bytes cannot hold before
  // allocating, so a forged count cannot balloon memory.
  if ((in.size() - *pos) / (2 * sizeof(double)) < n) {
    return Truncated("trajectory points");
  }
  out->points.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    (void)ReadPod(in, pos, &out->points[i].x);
    (void)ReadPod(in, pos, &out->points[i].y);
  }
  return Status::Ok();
}

bool ValidOpcode(uint8_t op) {
  return op >= static_cast<uint8_t>(Opcode::kEncode) &&
         op <= static_cast<uint8_t>(Opcode::kStats);
}

std::string ResponseHeader(Opcode opcode, const Status& status) {
  std::string payload;
  AppendPod(&payload, static_cast<uint8_t>(opcode));
  AppendPod(&payload, static_cast<uint8_t>(status.code()));
  AppendPod(&payload, static_cast<uint32_t>(status.message().size()));
  payload.append(status.message());
  return payload;
}

}  // namespace

void AppendFrame(std::string_view payload, std::string* out) {
  AppendPod(out, kProtocolMagic);
  AppendPod(out, static_cast<uint32_t>(payload.size()));
  AppendPod(out, Crc32c(0, payload.data(), payload.size()));
  out->append(payload.data(), payload.size());
}

FrameStatus ParseFrame(std::string_view buffer, std::string* payload,
                       size_t* consumed) {
  if (buffer.size() < sizeof(uint32_t)) return FrameStatus::kNeedMore;
  size_t pos = 0;
  uint32_t magic = 0;
  (void)ReadPod(buffer, &pos, &magic);
  if (magic != kProtocolMagic) return FrameStatus::kCorrupt;
  if (buffer.size() < kFrameHeaderBytes) return FrameStatus::kNeedMore;
  uint32_t len = 0;
  uint32_t crc = 0;
  (void)ReadPod(buffer, &pos, &len);
  (void)ReadPod(buffer, &pos, &crc);
  if (len > kMaxPayloadBytes) return FrameStatus::kCorrupt;
  if (buffer.size() - kFrameHeaderBytes < len) return FrameStatus::kNeedMore;
  const char* body = buffer.data() + kFrameHeaderBytes;
  if (Crc32c(0, body, len) != crc) return FrameStatus::kCorrupt;
  payload->assign(body, len);
  *consumed = kFrameHeaderBytes + len;
  return FrameStatus::kOk;
}

std::string EncodeRequest(const Request& request) {
  std::string payload;
  uint8_t op = static_cast<uint8_t>(request.opcode);
  // The deadline flag is only set when a deadline rides along, so
  // deadline-free requests stay byte-identical to protocol v1.
  if (request.has_deadline) op |= kDeadlineFlag;
  AppendPod(&payload, op);
  if (request.has_deadline) AppendPod(&payload, request.deadline_ms);
  switch (request.opcode) {
    case Opcode::kEncode:
    case Opcode::kInsert:
      AppendTrajectory(request.trajectory, &payload);
      break;
    case Opcode::kKnn:
      AppendTrajectory(request.trajectory, &payload);
      AppendPod(&payload, request.k);
      break;
    case Opcode::kStats:
      break;
  }
  return payload;
}

Result<Request> ParseRequest(std::string_view payload) {
  size_t pos = 0;
  uint8_t op = 0;
  if (!ReadPod(payload, &pos, &op)) return Truncated("opcode");
  const bool has_deadline = (op & kDeadlineFlag) != 0;
  op &= static_cast<uint8_t>(~kDeadlineFlag);
  if (!ValidOpcode(op)) {
    return Status::InvalidArgument("protocol: unknown opcode " +
                                   std::to_string(op));
  }
  Request request;
  request.opcode = static_cast<Opcode>(op);
  request.has_deadline = has_deadline;
  if (has_deadline && !ReadPod(payload, &pos, &request.deadline_ms)) {
    return Truncated("deadline");
  }
  switch (request.opcode) {
    case Opcode::kEncode:
    case Opcode::kInsert:
      if (Status status = ReadTrajectory(payload, &pos, &request.trajectory);
          !status.ok()) {
        return status;
      }
      break;
    case Opcode::kKnn:
      if (Status status = ReadTrajectory(payload, &pos, &request.trajectory);
          !status.ok()) {
        return status;
      }
      if (!ReadPod(payload, &pos, &request.k)) return Truncated("knn k");
      break;
    case Opcode::kStats:
      break;
  }
  if (pos != payload.size()) {
    return Status::InvalidArgument("protocol: trailing bytes after request");
  }
  return request;
}

std::string EncodeErrorResponse(Opcode opcode, const Status& status) {
  return ResponseHeader(opcode, status);
}

std::string EncodeEncodeResponse(std::span<const float> vector) {
  std::string payload = ResponseHeader(Opcode::kEncode, Status::Ok());
  AppendPod(&payload, static_cast<uint32_t>(vector.size()));
  payload.append(reinterpret_cast<const char*>(vector.data()),
                 vector.size() * sizeof(float));
  return payload;
}

std::string EncodeInsertResponse(int64_t id) {
  std::string payload = ResponseHeader(Opcode::kInsert, Status::Ok());
  AppendPod(&payload, id);
  return payload;
}

std::string EncodeKnnResponse(const EmbeddingStore::Neighbors& neighbors) {
  std::string payload = ResponseHeader(Opcode::kKnn, Status::Ok());
  AppendPod(&payload, static_cast<uint32_t>(neighbors.size()));
  for (size_t i = 0; i < neighbors.size(); ++i) {
    AppendPod(&payload, neighbors.ids[i]);
    AppendPod(&payload, neighbors.distances[i]);
  }
  return payload;
}

std::string EncodeStatsResponse(std::string_view json) {
  std::string payload = ResponseHeader(Opcode::kStats, Status::Ok());
  AppendPod(&payload, static_cast<uint32_t>(json.size()));
  payload.append(json.data(), json.size());
  return payload;
}

Result<Response> ParseResponse(std::string_view payload) {
  size_t pos = 0;
  uint8_t op = 0;
  uint8_t code = 0;
  uint32_t msg_len = 0;
  if (!ReadPod(payload, &pos, &op) || !ReadPod(payload, &pos, &code) ||
      !ReadPod(payload, &pos, &msg_len)) {
    return Truncated("response header");
  }
  if (!ValidOpcode(op)) {
    return Status::InvalidArgument("protocol: unknown response opcode " +
                                   std::to_string(op));
  }
  if (code > static_cast<uint8_t>(StatusCode::kDeadlineExceeded)) {
    return Status::InvalidArgument("protocol: unknown status code " +
                                   std::to_string(code));
  }
  if (payload.size() - pos < msg_len) return Truncated("response message");
  std::string message(payload.data() + pos, msg_len);
  pos += msg_len;

  Response response;
  response.opcode = static_cast<Opcode>(op);
  if (code != 0) {
    response.status = Status(static_cast<StatusCode>(code),
                             std::move(message));
    if (pos != payload.size()) {
      return Status::InvalidArgument(
          "protocol: trailing bytes after error response");
    }
    return response;
  }

  switch (response.opcode) {
    case Opcode::kEncode: {
      uint32_t dim = 0;
      if (!ReadPod(payload, &pos, &dim)) return Truncated("encode dim");
      if ((payload.size() - pos) / sizeof(float) < dim) {
        return Truncated("encode vector");
      }
      response.vector.resize(dim);
      std::memcpy(response.vector.data(), payload.data() + pos,
                  dim * sizeof(float));
      pos += dim * sizeof(float);
      break;
    }
    case Opcode::kInsert:
      if (!ReadPod(payload, &pos, &response.id)) return Truncated("insert id");
      break;
    case Opcode::kKnn: {
      uint32_t n = 0;
      if (!ReadPod(payload, &pos, &n)) return Truncated("knn count");
      if ((payload.size() - pos) / (sizeof(int64_t) + sizeof(double)) < n) {
        return Truncated("knn neighbors");
      }
      response.neighbors.ids.resize(n);
      response.neighbors.distances.resize(n);
      for (uint32_t i = 0; i < n; ++i) {
        (void)ReadPod(payload, &pos, &response.neighbors.ids[i]);
        (void)ReadPod(payload, &pos, &response.neighbors.distances[i]);
      }
      break;
    }
    case Opcode::kStats: {
      uint32_t len = 0;
      if (!ReadPod(payload, &pos, &len)) return Truncated("stats length");
      if (payload.size() - pos < len) return Truncated("stats json");
      response.stats_json.assign(payload.data() + pos, len);
      pos += len;
      break;
    }
  }
  if (pos != payload.size()) {
    return Status::InvalidArgument("protocol: trailing bytes after response");
  }
  return response;
}

}  // namespace t2vec::serve
