#include "serve/client.h"

#include <unistd.h>

#include <algorithm>
#include <thread>
#include <type_traits>
#include <utility>

#include "common/fs.h"
#include "serve/net.h"

namespace t2vec::serve {

Result<std::unique_ptr<TcpClient>> TcpClient::Connect(const std::string& host,
                                                      uint16_t port,
                                                      Options options) {
  Result<int> fd = NetConnect(host, port, options.connect_timeout);
  if (!fd.ok()) return fd.status();
  return std::unique_ptr<TcpClient>(new TcpClient(
      fd.value(), host + ":" + std::to_string(port), options));
}

TcpClient::~TcpClient() {
  if (fd_ >= 0) ::close(fd_);
}

Result<Response> TcpClient::Call(const Request& request) {
  std::string frame;
  AppendFrame(EncodeRequest(request), &frame);
  int err = 0;
  const IoStatus sent =
      NetSendAll(fd_, frame, NetClock::now() + options_.send_timeout, &err);
  if (sent == IoStatus::kTimeout) {
    return Status::DeadlineExceeded(ErrnoMessage("send", target_, ETIMEDOUT));
  }
  if (sent != IoStatus::kOk) {
    return Status::IoError(ErrnoMessage("send", target_, err ? err : EPIPE));
  }
  // A request-level deadline extends the read budget: the server may
  // legitimately take up to deadline_ms before its (possibly error)
  // response, and that must not count against the transport timeout.
  const auto recv_deadline =
      NetClock::now() + options_.recv_timeout +
      std::chrono::milliseconds(request.has_deadline ? request.deadline_ms
                                                     : 0);
  char chunk[1 << 16];
  for (;;) {
    std::string payload;
    size_t consumed = 0;
    const FrameStatus status = ParseFrame(buffer_, &payload, &consumed);
    if (status == FrameStatus::kCorrupt) {
      return Status::IoError("TcpClient: corrupt frame from server");
    }
    if (status == FrameStatus::kOk) {
      buffer_.erase(0, consumed);
      return ParseResponse(payload);
    }
    size_t got = 0;
    const IoStatus received =
        NetRecv(fd_, chunk, sizeof(chunk), recv_deadline, &got, &err);
    if (received == IoStatus::kTimeout) {
      return Status::DeadlineExceeded(
          ErrnoMessage("recv", target_, ETIMEDOUT));
    }
    if (received == IoStatus::kClosed) {
      return Status::IoError("TcpClient: connection closed mid-response (" +
                             target_ + ")");
    }
    if (received != IoStatus::kOk) {
      return Status::IoError(ErrnoMessage("recv", target_, err));
    }
    buffer_.append(chunk, got);
  }
}

Result<std::vector<float>> TcpClient::Encode(const traj::Trajectory& trip,
                                             uint32_t deadline_ms) {
  Request request;
  request.opcode = Opcode::kEncode;
  request.trajectory = trip;
  request.has_deadline = deadline_ms > 0;
  request.deadline_ms = deadline_ms;
  Result<Response> response = Call(request);
  if (!response.ok()) return response.status();
  if (!response.value().status.ok()) return response.value().status;
  return std::move(response.value().vector);
}

Result<int64_t> TcpClient::Insert(const traj::Trajectory& trip,
                                  uint32_t deadline_ms) {
  Request request;
  request.opcode = Opcode::kInsert;
  request.trajectory = trip;
  request.has_deadline = deadline_ms > 0;
  request.deadline_ms = deadline_ms;
  Result<Response> response = Call(request);
  if (!response.ok()) return response.status();
  if (!response.value().status.ok()) return response.value().status;
  return response.value().id;
}

Result<EmbeddingStore::Neighbors> TcpClient::Knn(const traj::Trajectory& trip,
                                                 uint32_t k,
                                                 uint32_t deadline_ms) {
  Request request;
  request.opcode = Opcode::kKnn;
  request.trajectory = trip;
  request.k = k;
  request.has_deadline = deadline_ms > 0;
  request.deadline_ms = deadline_ms;
  Result<Response> response = Call(request);
  if (!response.ok()) return response.status();
  if (!response.value().status.ok()) return response.value().status;
  return std::move(response.value().neighbors);
}

Result<std::string> TcpClient::Stats(uint32_t deadline_ms) {
  Request request;
  request.opcode = Opcode::kStats;
  request.has_deadline = deadline_ms > 0;
  request.deadline_ms = deadline_ms;
  Result<Response> response = Call(request);
  if (!response.ok()) return response.status();
  if (!response.value().status.ok()) return response.value().status;
  return std::move(response.value().stats_json);
}

// --- RetryingClient --------------------------------------------------------

namespace {

/// Transport failures and overload rejections are worth another attempt;
/// everything else — including kDeadlineExceeded — is terminal.
bool Retryable(const Status& status) {
  return status.code() == StatusCode::kIoError ||
         status.code() == StatusCode::kUnavailable;
}

/// True when `status` is the store's duplicate-id rejection for `id` — the
/// signature of an insert that landed but whose ack was lost in transport.
bool IsDuplicateId(const Status& status, int64_t id) {
  return status.code() == StatusCode::kInvalidArgument &&
         status.message().find("duplicate id " + std::to_string(id)) !=
             std::string::npos;
}

}  // namespace

RetryingClient::RetryingClient(std::string host, uint16_t port,
                               RetryOptions options)
    : host_(std::move(host)),
      port_(port),
      options_(options),
      rng_(options.jitter_seed) {}

bool RetryingClient::BackoffBeforeRetry(
    int attempt, std::chrono::steady_clock::time_point overall) {
  auto delay = options_.initial_backoff;
  for (int i = 1; i < attempt && delay < options_.max_backoff; ++i) {
    delay *= 2;
  }
  delay = std::min(delay, options_.max_backoff);
  // Jitter in [0.5, 1.0): desynchronizes a thundering herd of retriers
  // without ever exceeding the capped delay.
  const auto jittered = std::chrono::milliseconds(static_cast<int64_t>(
      static_cast<double>(delay.count()) * (0.5 + 0.5 * rng_.Uniform())));
  const auto wake = std::chrono::steady_clock::now() + jittered;
  if (wake >= overall) return false;  // Never retry past the deadline.
  std::this_thread::sleep_until(wake);
  return true;
}

template <typename T, typename Fn>
Result<T> RetryingClient::CallWithRetry(uint32_t deadline_ms,
                                        const int64_t* insert_id, Fn&& op) {
  const auto overall =
      deadline_ms > 0
          ? std::chrono::steady_clock::now() +
                std::chrono::milliseconds(deadline_ms)
          : std::chrono::steady_clock::time_point::max();
  // Set once a request has been on the wire: from then on a "duplicate id"
  // answer means an earlier insert landed and only its ack was lost.
  bool maybe_applied = false;
  Status last = Status::Unavailable("RetryingClient: no attempt made");
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    if (attempt > 0) {
      if (!BackoffBeforeRetry(attempt, overall)) break;
      ++retries_;
    }
    if (client_ == nullptr) {
      Result<std::unique_ptr<TcpClient>> conn =
          TcpClient::Connect(host_, port_, options_.socket);
      if (!conn.ok()) {
        last = conn.status();
        if (!Retryable(last)) return last;
        continue;
      }
      client_ = std::move(conn).value();
      ++reconnects_;
    }
    Result<T> result = op(client_.get());
    if (result.ok()) return result;
    last = result.status();
    if constexpr (std::is_same_v<T, int64_t>) {
      if (insert_id != nullptr && maybe_applied &&
          IsDuplicateId(last, *insert_id)) {
        // Idempotent replay: the previous attempt was durably applied
        // before its ack was lost, so the insert succeeded.
        return *insert_id;
      }
    }
    if (last.code() == StatusCode::kIoError ||
        last.code() == StatusCode::kDeadlineExceeded) {
      // The socket is in an unknown state (half a response may be queued,
      // or a late one may still arrive); only a fresh connection is safe.
      client_.reset();
      maybe_applied = true;
    }
    if (!Retryable(last)) return last;
  }
  return last;
}

Result<std::vector<float>> RetryingClient::Encode(const traj::Trajectory& trip,
                                                  uint32_t deadline_ms) {
  return CallWithRetry<std::vector<float>>(
      deadline_ms, nullptr,
      [&](TcpClient* c) { return c->Encode(trip, deadline_ms); });
}

Result<int64_t> RetryingClient::Insert(const traj::Trajectory& trip,
                                       uint32_t deadline_ms) {
  const int64_t id = trip.id;
  return CallWithRetry<int64_t>(
      deadline_ms, &id,
      [&](TcpClient* c) { return c->Insert(trip, deadline_ms); });
}

Result<EmbeddingStore::Neighbors> RetryingClient::Knn(
    const traj::Trajectory& trip, uint32_t k, uint32_t deadline_ms) {
  return CallWithRetry<EmbeddingStore::Neighbors>(
      deadline_ms, nullptr,
      [&](TcpClient* c) { return c->Knn(trip, k, deadline_ms); });
}

Result<std::string> RetryingClient::Stats(uint32_t deadline_ms) {
  return CallWithRetry<std::string>(
      deadline_ms, nullptr,
      [&](TcpClient* c) { return c->Stats(deadline_ms); });
}

}  // namespace t2vec::serve
