#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

#include "common/fs.h"

namespace t2vec::serve {

namespace {

bool SendAll(int fd, std::string_view data) {
  const char* p = data.data();
  size_t n = data.size();
  while (n > 0) {
    const ssize_t sent = ::send(fd, p, n, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += sent;
    n -= static_cast<size_t>(sent);
  }
  return true;
}

}  // namespace

Result<std::unique_ptr<TcpClient>> TcpClient::Connect(const std::string& host,
                                                      uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::IoError(ErrnoMessage("socket", host, errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("TcpClient: bad IPv4 address " + host);
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IoError(
        ErrnoMessage("connect", host + ":" + std::to_string(port), err));
  }
  return std::unique_ptr<TcpClient>(new TcpClient(fd));
}

TcpClient::~TcpClient() {
  if (fd_ >= 0) ::close(fd_);
}

Result<Response> TcpClient::Call(const Request& request) {
  std::string frame;
  AppendFrame(EncodeRequest(request), &frame);
  if (!SendAll(fd_, frame)) {
    return Status::IoError("TcpClient: send failed (server gone?)");
  }
  char chunk[1 << 16];
  for (;;) {
    std::string payload;
    size_t consumed = 0;
    const FrameStatus status = ParseFrame(buffer_, &payload, &consumed);
    if (status == FrameStatus::kCorrupt) {
      return Status::IoError("TcpClient: corrupt frame from server");
    }
    if (status == FrameStatus::kOk) {
      buffer_.erase(0, consumed);
      return ParseResponse(payload);
    }
    const ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (got < 0 && errno == EINTR) continue;
    if (got <= 0) {
      return Status::IoError("TcpClient: connection closed mid-response");
    }
    buffer_.append(chunk, static_cast<size_t>(got));
  }
}

Result<std::vector<float>> TcpClient::Encode(const traj::Trajectory& trip) {
  Request request;
  request.opcode = Opcode::kEncode;
  request.trajectory = trip;
  Result<Response> response = Call(request);
  if (!response.ok()) return response.status();
  if (!response.value().status.ok()) return response.value().status;
  return std::move(response.value().vector);
}

Result<int64_t> TcpClient::Insert(const traj::Trajectory& trip) {
  Request request;
  request.opcode = Opcode::kInsert;
  request.trajectory = trip;
  Result<Response> response = Call(request);
  if (!response.ok()) return response.status();
  if (!response.value().status.ok()) return response.value().status;
  return response.value().id;
}

Result<EmbeddingStore::Neighbors> TcpClient::Knn(const traj::Trajectory& trip,
                                                 uint32_t k) {
  Request request;
  request.opcode = Opcode::kKnn;
  request.trajectory = trip;
  request.k = k;
  Result<Response> response = Call(request);
  if (!response.ok()) return response.status();
  if (!response.value().status.ok()) return response.value().status;
  return std::move(response.value().neighbors);
}

Result<std::string> TcpClient::Stats() {
  Request request;
  request.opcode = Opcode::kStats;
  Result<Response> response = Call(request);
  if (!response.ok()) return response.status();
  if (!response.value().status.ok()) return response.value().status;
  return std::move(response.value().stats_json);
}

}  // namespace t2vec::serve
