#ifndef T2VEC_SERVE_SERVER_H_
#define T2VEC_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_set>
#include <vector>

#include "common/sync.h"
#include "core/t2vec.h"
#include "serve/durable_store.h"
#include "serve/embedding_service.h"
#include "serve/metrics.h"
#include "serve/protocol.h"

/// \file
/// The TCP front door (DESIGN.md §8): a thread-per-connection server that
/// speaks the serve/protocol.h frame format and exposes the serving stack —
/// encode (EmbeddingService micro-batching), insert (WAL-backed
/// DurableStore, acknowledged only after the log fsync), knn (exact search
/// over the store), and stats (JSON snapshot of every layer's metrics).
///
/// Failure containment is the point: malformed payloads get an error
/// response, corrupt frames drop only their own connection, store/service
/// errors are relayed with their Status intact, and nothing a client sends
/// can abort the process (tests/server_test.cc fuzzes exactly this).
///
/// Overload governance (DESIGN.md §8.4): connections beyond max_connections
/// are accepted, answered with one kUnavailable frame, and closed; a
/// connection that stays silent past idle_timeout or dribbles a frame past
/// read_timeout is reaped; Stop() drains — it stops accepting, gives
/// in-flight requests drain_timeout to finish, then force-closes.

namespace t2vec::serve {

struct ServerOptions {
  /// TCP port to listen on; 0 picks an ephemeral port (read it back from
  /// port() after Start()).
  uint16_t port = 0;
  /// Micro-batcher tuning for the embedded EmbeddingService.
  ServiceOptions service;
  /// Hard cap on live connections. The one-past-the-cap connection is
  /// accepted, sent a single kUnavailable response frame, and closed —
  /// accept-then-reject, so the client sees a Status instead of a SYN
  /// backlog stall.
  size_t max_connections = 64;
  /// A connection with no buffered bytes and nothing arriving for this long
  /// is reaped (half-open peers, silent clients).
  std::chrono::milliseconds idle_timeout{30'000};
  /// A started frame must complete within this budget — measured from its
  /// first byte — or the connection is reaped (slowloris dribblers).
  std::chrono::milliseconds read_timeout{5'000};
  /// Budget for writing one response before the connection is dropped.
  std::chrono::milliseconds send_timeout{5'000};
  /// How long Stop() lets in-flight connections finish before force-closing
  /// them.
  std::chrono::milliseconds drain_timeout{2'000};
};

/// Request-level counters, separate from the service's ServeMetrics.
struct ServerMetrics {
  Counter connections;     ///< Accepted connections, lifetime.
  Counter requests;        ///< Complete frames dispatched.
  Counter errors;          ///< Requests answered with a non-OK status.
  Counter corrupt_frames;  ///< Connections dropped on framing corruption.
  Counter send_errors;     ///< Responses lost to a send failure/hangup.
  Counter timeouts;        ///< Connections reaped by idle/read/send timeout.
  Counter rejected_connections;  ///< Over-cap accepts answered kUnavailable.
  Counter drained_connections;   ///< Connections that exited during drain.

  Histogram request_us{LatencyBucketsUs()};  ///< Frame in -> response out.
};

/// A blocking TCP server over one model + one durable store. Start() spawns
/// the accept loop; Stop() (or the destructor) shuts down the listener and
/// every live connection and joins all threads. `model` and `store` must
/// outlive the server.
class TcpServer {
 public:
  TcpServer(const core::T2Vec* model, DurableStore* store,
            ServerOptions options = {});
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds, listens, and starts accepting. IoError when the port is taken.
  Status Start();

  /// Stops accepting, drains in-flight connections up to drain_timeout,
  /// force-closes the stragglers, joins all threads. Idempotent; called by
  /// the destructor.
  void Stop();

  /// The bound port (resolves port 0 to the ephemeral choice).
  uint16_t port() const { return port_; }

  /// Combined stats JSON: server counters + request latency + service
  /// metrics + store size/WAL telemetry. This is what kOpStats returns.
  std::string StatsJson() const;

  const ServerMetrics& metrics() const { return metrics_; }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);
  /// Accept-then-reject: one kUnavailable frame, best effort, then close.
  void RejectConnection(int fd);
  /// Dispatches one request payload, returns the response payload.
  std::string HandleRequest(std::string_view payload);

  DurableStore* store_;
  const ServerOptions options_;
  EmbeddingService service_;
  ServerMetrics metrics_;

  /// Not mutex-guarded (DESIGN.md §5.4): written by Start() before the
  /// accept thread exists and by Stop() only after it is joined; AcceptLoop
  /// reads it in between. The thread create/join edges order the accesses.
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};

  /// Serializes the thread joins and listener cleanup in Stop(), making it
  /// idempotent and safe to race with itself (and with the destructor).
  sync::Mutex join_mu_ ACQUIRED_BEFORE(conn_mu_);
  sync::Mutex conn_mu_;
  /// Signaled whenever a connection unregisters; Stop()'s drain waits on it
  /// for conn_fds_ to empty.
  sync::CondVar conn_cv_;
  std::unordered_set<int> conn_fds_ GUARDED_BY(conn_mu_);
  std::vector<std::thread> conn_threads_ GUARDED_BY(conn_mu_);
  /// Set by Stop() before the drain wait; connections that exit while it is
  /// set count as drained rather than dropped.
  bool draining_ GUARDED_BY(conn_mu_) = false;
  std::thread accept_thread_;
};

}  // namespace t2vec::serve

#endif  // T2VEC_SERVE_SERVER_H_
