#ifndef T2VEC_SERVE_METRICS_H_
#define T2VEC_SERVE_METRICS_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/sync.h"

/// \file
/// Lightweight serving metrics: counters and fixed-bucket histograms, with a
/// JSON snapshot export so the serving path is observable without pulling in
/// an external metrics stack. Writers are the service's submit path and its
/// dispatcher thread; readers may snapshot concurrently (counters are
/// relaxed atomics; histograms take a short lock — exclusive for Observe,
/// shared for snapshots, so concurrent readers never serialize).
///
/// JSON schema (DESIGN.md "Serving"):
///   {
///     "counters":   { "<name>": <int>, ... },
///     "histograms": {
///       "<name>": {
///         "count": <int>, "sum": <double>, "min": <double>, "max": <double>,
///         "p50": <double>, "p90": <double>, "p99": <double>,
///         "buckets": [ { "le": <double|"inf">, "count": <int> }, ... ]
///       }, ...
///     }
///   }
///
/// min/max/p50/p90/p99 are `null` while "count" is 0 — the statistics of
/// zero observations are undefined, and a literal 0 would be
/// indistinguishable from a real observation at 0.

namespace t2vec::serve {

/// A monotonically increasing event count.
class Counter {
 public:
  void Increment(int64_t by = 1) {
    value_.fetch_add(by, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A histogram over fixed, ascending bucket upper bounds (plus an implicit
/// +inf overflow bucket). Quantiles are estimated by linear interpolation
/// inside the bucket containing the target rank — exact enough for p50/p99
/// dashboards, bounded memory regardless of observation count.
class Histogram {
 public:
  /// `bounds` are inclusive upper bounds, strictly ascending.
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  int64_t count() const;
  double sum() const;
  /// Estimated q-quantile (q in [0, 1]); 0 when empty.
  double Quantile(double q) const;

  /// The histogram's JSON object (see file comment for the schema).
  std::string ToJson() const;

 private:
  mutable sync::Mutex mu_;
  const std::vector<double> bounds_;  // Immutable after construction.
  std::vector<int64_t> counts_ GUARDED_BY(mu_);  // bounds_.size() + 1 slots.
  int64_t count_ GUARDED_BY(mu_) = 0;
  double sum_ GUARDED_BY(mu_) = 0.0;
  double min_ GUARDED_BY(mu_) = 0.0;
  double max_ GUARDED_BY(mu_) = 0.0;

  double QuantileLocked(double q) const REQUIRES_SHARED(mu_);
};

/// Default bucket bounds for microsecond latencies (50us .. ~10s).
std::vector<double> LatencyBucketsUs();

/// Default bucket bounds for small cardinalities (queue depth, batch size).
std::vector<double> SizeBuckets(size_t max_expected);

/// The serving path's metric set. Counter/histogram members are updated by
/// EmbeddingService; ToJson() snapshots everything.
struct ServeMetrics {
  Counter submitted;            ///< Requests accepted into the queue.
  Counter completed;            ///< Requests fulfilled with a vector.
  Counter rejected_queue_full;  ///< Submissions refused by backpressure.
  Counter rejected_shutdown;    ///< Submissions refused after Shutdown().
  Counter deadline_expired;     ///< Requests expired before encoding.
  Counter flushes;              ///< Micro-batches pushed through the encoder.

  Histogram queue_depth{SizeBuckets(256)};     ///< Depth after each enqueue.
  Histogram batch_size{SizeBuckets(64)};       ///< Requests per flush.
  Histogram flush_latency_us{LatencyBucketsUs()};    ///< Encode wall time.
  Histogram request_latency_us{LatencyBucketsUs()};  ///< Submit -> fulfill.

  std::string ToJson() const;
};

}  // namespace t2vec::serve

#endif  // T2VEC_SERVE_METRICS_H_
