#include "serve/net.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <limits>

#include "common/fault.h"
#include "common/fs.h"

namespace t2vec::serve {

namespace {

/// Polls `fd` for `events` until `deadline`. Returns 1 when ready, 0 on
/// timeout, -1 on poll error (errno set). EINTR re-polls with a fresh
/// remaining budget, so signals cannot extend the deadline.
int PollWait(int fd, short events, NetTimePoint deadline) {
  for (;;) {
    int timeout_ms = -1;
    if (deadline != kNoDeadline) {
      const auto remaining =
          std::chrono::ceil<std::chrono::milliseconds>(deadline -
                                                       NetClock::now())
              .count();
      if (remaining <= 0) return 0;
      timeout_ms = static_cast<int>(
          std::min<long long>(remaining, std::numeric_limits<int>::max()));
    }
    pollfd p{fd, events, 0};
    const int rc = ::poll(&p, 1, timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (rc == 0) return 0;
    return 1;
  }
}

}  // namespace

IoStatus NetRecv(int fd, char* buf, size_t cap, NetTimePoint deadline,
                 size_t* got, int* err) {
  *got = 0;
  *err = 0;
  if (const int injected = T2VEC_FAULT_POINT("net.recv")) {
    *err = injected;
    return IoStatus::kError;
  }
  // A short-read fault clamps this one recv to a single byte: the frame
  // reassembly loop above must keep working on arbitrarily fragmented input.
  if (T2VEC_FAULT_POINT("net.recv.short") != 0) cap = 1;
  for (;;) {
    const int ready = PollWait(fd, POLLIN, deadline);
    if (ready < 0) {
      *err = errno;
      return IoStatus::kError;
    }
    if (ready == 0) {
      *err = ETIMEDOUT;
      return IoStatus::kTimeout;
    }
    const ssize_t n = ::recv(fd, buf, cap, 0);
    if (n > 0) {
      *got = static_cast<size_t>(n);
      return IoStatus::kOk;
    }
    if (n == 0) return IoStatus::kClosed;
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    *err = errno;
    return IoStatus::kError;
  }
}

IoStatus NetSendAll(int fd, std::string_view data, NetTimePoint deadline,
                    int* err) {
  *err = 0;
  if (const int injected = T2VEC_FAULT_POINT("net.send")) {
    *err = injected;
    return injected == EPIPE || injected == ECONNRESET ? IoStatus::kClosed
                                                       : IoStatus::kError;
  }
  // A short-write fault truncates the first send to one byte; the loop must
  // finish the rest — proving short sends are retried, never fatal.
  size_t first_cap = T2VEC_FAULT_POINT("net.send.short") != 0 ? 1 : data.size();
  const char* p = data.data();
  size_t n = data.size();
  while (n > 0) {
    const int ready = PollWait(fd, POLLOUT, deadline);
    if (ready < 0) {
      *err = errno;
      return IoStatus::kError;
    }
    if (ready == 0) {
      *err = ETIMEDOUT;
      return IoStatus::kTimeout;
    }
    const ssize_t sent =
        ::send(fd, p, std::min(n, first_cap), MSG_NOSIGNAL);
    first_cap = data.size();
    if (sent < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      *err = errno;
      return errno == EPIPE || errno == ECONNRESET ? IoStatus::kClosed
                                                   : IoStatus::kError;
    }
    p += sent;
    n -= static_cast<size_t>(sent);
  }
  return IoStatus::kOk;
}

int NetAccept(int listen_fd) {
  if (const int injected = T2VEC_FAULT_POINT("net.accept")) {
    errno = injected;
    return -1;
  }
  // Non-blocking connection fds: a blocking send() to a slow-reading peer
  // could otherwise pin a thread past its deadline; NetSendAll/NetRecv poll.
  return ::accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC | SOCK_NONBLOCK);
}

Result<int> NetConnect(const std::string& host, uint16_t port,
                       std::chrono::milliseconds timeout) {
  const std::string target = host + ":" + std::to_string(port);
  if (const int injected = T2VEC_FAULT_POINT("net.connect")) {
    return Status::IoError(ErrnoMessage("connect", target, injected));
  }
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
  if (fd < 0) {
    return Status::IoError(ErrnoMessage("socket", target, errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("NetConnect: bad IPv4 address " + host);
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    if (errno != EINPROGRESS) {
      const int err = errno;
      ::close(fd);
      return Status::IoError(ErrnoMessage("connect", target, err));
    }
    const int ready = PollWait(fd, POLLOUT, NetClock::now() + timeout);
    if (ready < 0) {
      const int err = errno;
      ::close(fd);
      return Status::IoError(ErrnoMessage("connect poll", target, err));
    }
    if (ready == 0) {
      ::close(fd);
      return Status::DeadlineExceeded(
          ErrnoMessage("connect", target, ETIMEDOUT));
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0) {
      const int err = errno;
      ::close(fd);
      return Status::IoError(ErrnoMessage("getsockopt", target, err));
    }
    if (so_error != 0) {
      ::close(fd);
      return Status::IoError(ErrnoMessage("connect", target, so_error));
    }
  }
  return fd;
}

}  // namespace t2vec::serve
