#ifndef T2VEC_SERVE_NET_H_
#define T2VEC_SERVE_NET_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

/// \file
/// Deadline-aware socket primitives shared by the TCP server and client
/// (DESIGN.md §8.4). Every call polls before it reads or writes, so a dead
/// or dribbling peer can never pin a thread past its deadline, and every
/// call passes through a `net.*` fault site so the chaos suite can inject
/// errno failures and short reads/writes deterministically:
///
///   net.accept      accept() fails with the armed errno (transient: the
///                   accept loop keeps running)
///   net.connect     connect() fails with the armed errno
///   net.recv        recv() fails with the armed errno
///   net.recv.short  that one recv is truncated to a single byte
///   net.send        send() fails with the armed errno
///   net.send.short  the first send of that call writes a single byte
///
/// The short variants ignore the armed errno value — firing is what matters.
/// Deadlines are steady-clock time points; kNoDeadline blocks indefinitely.

namespace t2vec::serve {

using NetClock = std::chrono::steady_clock;
using NetTimePoint = NetClock::time_point;

/// Sentinel deadline meaning "never time out".
inline constexpr NetTimePoint kNoDeadline = NetTimePoint::max();

/// Outcome of one socket operation.
enum class IoStatus {
  kOk,       ///< Progress was made (bytes moved, or all bytes sent).
  kClosed,   ///< Orderly peer close (recv) or EPIPE/ECONNRESET (send).
  kTimeout,  ///< The deadline passed before the operation completed.
  kError,    ///< A socket error; `*err` holds the errno.
};

/// Receives up to `cap` bytes into `buf`, waiting until `deadline`. On kOk,
/// `*got` is the byte count (>= 1). On kError, `*err` is the errno. Works on
/// blocking and non-blocking sockets (EAGAIN re-polls).
IoStatus NetRecv(int fd, char* buf, size_t cap, NetTimePoint deadline,
                 size_t* got, int* err);

/// Sends all of `data`, waiting until `deadline` between chunks. Short and
/// interrupted sends are retried, not treated as fatal; MSG_NOSIGNAL keeps a
/// mid-response hangup an error return instead of SIGPIPE. On kError or
/// kClosed, `*err` is the errno.
IoStatus NetSendAll(int fd, std::string_view data, NetTimePoint deadline,
                    int* err);

/// accept(2) with CLOEXEC + NONBLOCK and the `net.accept` fault site.
/// Returns the connection fd, or -1 with errno set (injected faults set
/// errno too). The fd is non-blocking — pair it with NetRecv/NetSendAll.
int NetAccept(int listen_fd);

/// Connects to `host`:`port` (IPv4 dotted quad) within `timeout`. The
/// returned fd is non-blocking — pair it with NetRecv/NetSendAll. A timeout
/// maps to kDeadlineExceeded; refusals and injected `net.connect` faults map
/// to kIoError.
Result<int> NetConnect(const std::string& host, uint16_t port,
                       std::chrono::milliseconds timeout);

}  // namespace t2vec::serve

#endif  // T2VEC_SERVE_NET_H_
