#ifndef T2VEC_SERVE_PROTOCOL_H_
#define T2VEC_SERVE_PROTOCOL_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "serve/embedding_store.h"
#include "traj/trajectory.h"

/// \file
/// The length-prefixed binary wire protocol spoken by the TCP front door
/// (DESIGN.md §8). Everything is flat little-endian, mirroring the on-disk
/// framing of common/serialize.h so a reader of one format can read the
/// other.
///
/// Frame (both directions):
///
///     [magic "T2RP" u32][payload_len u32][crc32c(payload) u32][payload]
///
/// Request payload:  [opcode u8][deadline_ms u32?][body]
/// Response payload: [opcode u8][status_code u8][msg_len u32][msg][body]
///   (body is present only when status_code == 0 / kOk)
///
/// Protocol v2 added the optional per-request deadline: when the high bit of
/// the opcode byte (kDeadlineFlag) is set, a `deadline_ms u32` follows it —
/// the server's time budget from the moment it parses the request. v1 frames
/// (flag clear, no deadline word) still parse unchanged, and a v2 encoder
/// only sets the flag when a deadline is present, so v1 servers keep working
/// for deadline-free clients.
///
/// Opcodes and bodies:
///
///   kOpEncode (1)  req:  [trajectory]            resp: [dim u32][dim x f32]
///   kOpInsert (2)  req:  [trajectory]            resp: [id i64]
///   kOpKnn    (3)  req:  [trajectory][k u32]     resp: [n u32][n x (id i64,
///                                                       dist f64)]
///   kOpStats  (4)  req:  (empty)                 resp: [len u32][json]
///
/// where [trajectory] = [id i64][n u32][n x (x f64, y f64)].
///
/// Every parser here is bounds-checked and fails soft with Status — the
/// server feeds it bytes straight off a socket, so hostile or truncated
/// input must produce an error response (or a dropped connection on a bad
/// frame), never an abort. Payloads are capped at kMaxPayloadBytes so a
/// forged length field cannot make the server allocate gigabytes.

namespace t2vec::serve {

/// Frame magic "T2RP" little-endian.
inline constexpr uint32_t kProtocolMagic = 0x5052'3254;
/// v2: optional per-request deadline_ms behind kDeadlineFlag.
inline constexpr uint32_t kProtocolVersion = 2;
/// High bit of the request opcode byte: a deadline_ms u32 follows.
inline constexpr uint8_t kDeadlineFlag = 0x80;
/// [magic][payload_len][crc] before the payload.
inline constexpr size_t kFrameHeaderBytes = 12;
/// Upper bound on a frame payload; larger lengths mark the frame corrupt.
inline constexpr size_t kMaxPayloadBytes = 16u << 20;

enum class Opcode : uint8_t {
  kEncode = 1,
  kInsert = 2,
  kKnn = 3,
  kStats = 4,
};

/// Outcome of scanning a receive buffer for one frame.
enum class FrameStatus {
  kOk,        ///< A complete, checksummed frame was extracted.
  kNeedMore,  ///< Prefix is consistent but incomplete; read more bytes.
  kCorrupt,   ///< Bad magic, oversize length, or CRC mismatch; drop the
              ///< connection (framing is lost, resync is impossible).
};

/// Wraps `payload` in a frame and appends it to `*out`.
void AppendFrame(std::string_view payload, std::string* out);

/// Tries to extract one frame from the front of `buffer`. On kOk, `*payload`
/// receives the payload bytes and `*consumed` the total frame size (the
/// caller erases that prefix); both are untouched otherwise.
FrameStatus ParseFrame(std::string_view buffer, std::string* payload,
                       size_t* consumed);

// --- Request payloads ------------------------------------------------------

struct Request {
  Opcode opcode = Opcode::kStats;
  traj::Trajectory trajectory;  ///< encode / insert / knn.
  uint32_t k = 0;               ///< knn only.
  bool has_deadline = false;    ///< kDeadlineFlag was (or will be) set.
  /// Server-side budget in milliseconds from request parse, meaningful only
  /// when has_deadline; 0 means already expired (useful in tests).
  uint32_t deadline_ms = 0;
};

std::string EncodeRequest(const Request& request);

/// Parses a request payload. Fails soft on unknown opcodes, truncated
/// bodies, trailing garbage, or absurd point counts.
Result<Request> ParseRequest(std::string_view payload);

// --- Response payloads -----------------------------------------------------

/// A decoded response: `status` carries the server-side outcome; exactly one
/// body field is meaningful, selected by `opcode`, and only when status.ok().
struct Response {
  Opcode opcode = Opcode::kStats;
  Status status = Status::Ok();
  std::vector<float> vector;             ///< encode.
  int64_t id = 0;                        ///< insert.
  EmbeddingStore::Neighbors neighbors;   ///< knn.
  std::string stats_json;                ///< stats.
};

std::string EncodeErrorResponse(Opcode opcode, const Status& status);
std::string EncodeEncodeResponse(std::span<const float> vector);
std::string EncodeInsertResponse(int64_t id);
std::string EncodeKnnResponse(const EmbeddingStore::Neighbors& neighbors);
std::string EncodeStatsResponse(std::string_view json);

/// Parses a response payload (the client side of every Encode*Response).
Result<Response> ParseResponse(std::string_view payload);

}  // namespace t2vec::serve

#endif  // T2VEC_SERVE_PROTOCOL_H_
