#include "serve/metrics.h"

#include <algorithm>
#include <cstdio>

#include "common/macros.h"

namespace t2vec::serve {

namespace {

void AppendDouble(std::string* out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  *out += buf;
}

void AppendInt(std::string* out, int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  *out += buf;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0) {
  T2VEC_CHECK(!bounds_.empty());
  for (size_t i = 1; i < bounds_.size(); ++i) {
    T2VEC_CHECK(bounds_[i - 1] < bounds_[i]);
  }
}

void Histogram::Observe(double value) {
  sync::MutexLock lock(&mu_);
  // lower_bound keeps the inclusive-upper-bound ("le") semantics: a value
  // equal to a bound counts in that bound's bucket.
  const size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();
  ++counts_[bucket];
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

int64_t Histogram::count() const {
  sync::ReaderMutexLock lock(&mu_);
  return count_;
}

double Histogram::sum() const {
  sync::ReaderMutexLock lock(&mu_);
  return sum_;
}

double Histogram::QuantileLocked(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  int64_t cumulative = 0;
  for (size_t b = 0; b < counts_.size(); ++b) {
    if (counts_[b] == 0) continue;
    const int64_t next = cumulative + counts_[b];
    if (static_cast<double>(next) >= target) {
      // Interpolate within this bucket; the observed min/max tighten the
      // edge buckets (notably the +inf overflow bucket).
      const double lo =
          std::max(b == 0 ? min_ : bounds_[b - 1], min_);
      const double hi = std::min(b < bounds_.size() ? bounds_[b] : max_, max_);
      if (hi <= lo) return lo;
      const double frac =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(counts_[b]);
      return lo + frac * (hi - lo);
    }
    cumulative = next;
  }
  return max_;
}

double Histogram::Quantile(double q) const {
  sync::ReaderMutexLock lock(&mu_);
  return QuantileLocked(q);
}

std::string Histogram::ToJson() const {
  // A shared lock suffices: the snapshot only reads, and concurrent ToJson
  // calls (metrics endpoint + periodic dump) must not serialize.
  sync::ReaderMutexLock lock(&mu_);
  // min/max/quantiles of zero observations are undefined, not 0: emitting
  // the default-initialized members would be indistinguishable from a real
  // observation at 0, so an empty histogram reports null for all of them.
  const bool empty = count_ == 0;
  const auto append_stat = [&](std::string* out, double v) {
    if (empty) {
      *out += "null";
    } else {
      AppendDouble(out, v);
    }
  };
  std::string out = "{\"count\": ";
  AppendInt(&out, count_);
  out += ", \"sum\": ";
  AppendDouble(&out, sum_);
  out += ", \"min\": ";
  append_stat(&out, min_);
  out += ", \"max\": ";
  append_stat(&out, max_);
  out += ", \"p50\": ";
  append_stat(&out, QuantileLocked(0.5));
  out += ", \"p90\": ";
  append_stat(&out, QuantileLocked(0.9));
  out += ", \"p99\": ";
  append_stat(&out, QuantileLocked(0.99));
  out += ", \"buckets\": [";
  for (size_t b = 0; b < counts_.size(); ++b) {
    if (b > 0) out += ", ";
    out += "{\"le\": ";
    if (b < bounds_.size()) {
      AppendDouble(&out, bounds_[b]);
    } else {
      out += "\"inf\"";
    }
    out += ", \"count\": ";
    AppendInt(&out, counts_[b]);
    out += "}";
  }
  out += "]}";
  return out;
}

std::vector<double> LatencyBucketsUs() {
  // 50us, 100us, 200us, ... doubling to ~13s: 19 buckets.
  std::vector<double> bounds;
  for (double b = 50.0; b <= 13.0e6; b *= 2.0) bounds.push_back(b);
  return bounds;
}

std::vector<double> SizeBuckets(size_t max_expected) {
  // Powers of two strictly below max_expected, then max_expected itself as
  // the final bound. Generating the whole prefix with the same `<` guard
  // keeps the sequence strictly increasing for every input — the old
  // unconditional {1,2,4,8} prefix duplicated the tail bound whenever
  // max_expected was <= 8 or itself a power of two (e.g. 8 -> {1,2,4,8,8}),
  // tripping the Histogram constructor's strictly-ascending check.
  const double max = static_cast<double>(max_expected < 1 ? 1 : max_expected);
  std::vector<double> bounds;
  for (double b = 1.0; b < max; b *= 2.0) bounds.push_back(b);
  bounds.push_back(max);
  return bounds;
}

std::string ServeMetrics::ToJson() const {
  std::string out = "{\n  \"counters\": {";
  const std::pair<const char*, const Counter*> counters[] = {
      {"submitted", &submitted},
      {"completed", &completed},
      {"rejected_queue_full", &rejected_queue_full},
      {"rejected_shutdown", &rejected_shutdown},
      {"deadline_expired", &deadline_expired},
      {"flushes", &flushes},
  };
  for (size_t i = 0; i < std::size(counters); ++i) {
    if (i > 0) out += ",";
    out += "\n    \"";
    out += counters[i].first;
    out += "\": ";
    AppendInt(&out, counters[i].second->value());
  }
  out += "\n  },\n  \"histograms\": {";
  const std::pair<const char*, const Histogram*> histograms[] = {
      {"queue_depth", &queue_depth},
      {"batch_size", &batch_size},
      {"flush_latency_us", &flush_latency_us},
      {"request_latency_us", &request_latency_us},
  };
  for (size_t i = 0; i < std::size(histograms); ++i) {
    if (i > 0) out += ",";
    out += "\n    \"";
    out += histograms[i].first;
    out += "\": ";
    out += histograms[i].second->ToJson();
  }
  out += "\n  }\n}\n";
  return out;
}

}  // namespace t2vec::serve
