#ifndef T2VEC_SERVE_EMBEDDING_STORE_H_
#define T2VEC_SERVE_EMBEDDING_STORE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/ann_index.h"

/// \file
/// Durable id -> embedding storage for the serving path: vectors produced by
/// EmbeddingService are registered under their stable trajectory ids, the
/// backing index grows incrementally, and the whole store snapshots to disk
/// via common/serialize.h.
///
/// The retrieval backend is an `AnnIndex` chosen by `core::IndexConfig`
/// (exact scan, LSH, or IVF) — the store never names a concrete index type,
/// so swapping backends is a config change, not a code change. Snapshots
/// embed the backend's structure (v3), and `LoadMmap` serves the vector
/// block zero-copy out of a memory mapping so a million-vector store opens
/// in milliseconds.
///
/// Thread-compatibility: single writer, concurrent readers — Add/Save and
/// Knn/Find may not overlap. The service's typical shape (one ingest thread,
/// query threads gated by an external RW lock or epoch) satisfies this.

namespace t2vec::serve {

/// Maps stable trajectory ids to representation vectors with kNN retrieval.
class EmbeddingStore {
 public:
  /// Neighbor ids (stable trajectory ids, not row indices) with their
  /// squared Euclidean distances, ascending.
  struct Neighbors {
    std::vector<int64_t> ids;
    std::vector<double> distances;
    size_t size() const { return ids.size(); }
  };

  /// An empty store for `dim`-dimensional vectors whose retrieval index is
  /// built from `config`. `config` must be valid (callers on user-input
  /// paths run Validate() first; an invalid config here is a programming
  /// error and CHECK-fails).
  explicit EmbeddingStore(size_t dim, core::IndexConfig config = {});

  /// Registers `vec` under `id`. Fails with kInvalidArgument when the
  /// dimension mismatches or the id is already present.
  Status Add(int64_t id, std::span<const float> vec);

  bool Contains(int64_t id) const { return row_of_.count(id) > 0; }

  /// The stored vector for `id` (length dim()), or nullptr if absent.
  /// Valid until the next Add().
  const float* Find(int64_t id) const;

  /// The k nearest stored vectors to `query` (length dim()) under the
  /// configured index (exact for kExact, approximate otherwise). k is
  /// clamped to size() — asking a 5-vector store for 10 neighbors returns
  /// 5, and an empty store returns none (k comes straight from clients on
  /// the serving path, so it must never abort).
  Neighbors Knn(std::span<const float> query, size_t k) const;

  size_t size() const { return ids_.size(); }
  size_t dim() const { return index_->dim(); }

  /// Stored ids in insertion order — the order a WAL replay reproduces, and
  /// what the chaos soak walks to rebuild a fault-free comparison store.
  const std::vector<int64_t>& ids() const { return ids_; }

  /// The retrieval backend (kind, counters) for the stats endpoint.
  core::IndexStats Stats() const { return index_->Stats(); }

  const core::AnnIndex& index() const { return *index_; }

  /// Snapshots the store (magic + version + dim + index kind + ids +
  /// vectors + index structure, CRC-framed).
  Status Save(const std::string& path) const;

  /// Restores a store written by Save(), reading the whole file. The
  /// retrieval index is rebuilt from `config`; when the snapshot was saved
  /// under the same index kind, its serialized structure is reused instead
  /// of recomputed. v1/v2 snapshots (no embedded index) load with a
  /// rebuild.
  static Result<EmbeddingStore> Load(const std::string& path,
                                     core::IndexConfig config = {});

  /// Like Load() but memory-maps the snapshot and serves the vector block
  /// zero-copy: the CRC is verified once at open, no vector bytes are
  /// copied, and the mapping stays alive for the life of the store (see
  /// common/fs.h MmapFile lifetime rules) — the cold-start path for
  /// million-vector servers.
  static Result<EmbeddingStore> LoadMmap(const std::string& path,
                                         core::IndexConfig config = {});

 private:
  static Result<EmbeddingStore> LoadImpl(
      BinaryReader& reader, const std::string& path,
      const core::IndexConfig& config, std::shared_ptr<MmapFile> keepalive);

  std::unique_ptr<core::AnnIndex> index_;
  std::vector<int64_t> ids_;                  // Row -> trajectory id.
  std::unordered_map<int64_t, size_t> row_of_;  // Trajectory id -> row.
};

}  // namespace t2vec::serve

#endif  // T2VEC_SERVE_EMBEDDING_STORE_H_
