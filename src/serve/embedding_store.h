#ifndef T2VEC_SERVE_EMBEDDING_STORE_H_
#define T2VEC_SERVE_EMBEDDING_STORE_H_

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/vec_index.h"

/// \file
/// Durable id -> embedding storage for the serving path: vectors produced by
/// EmbeddingService are registered under their stable trajectory ids, the
/// backing VectorIndex grows incrementally (core/vec_index.h Add), and the
/// whole store snapshots to disk via common/serialize.h.
///
/// Thread-compatibility: single writer, concurrent readers — Add/Save and
/// Knn/Find may not overlap. The service's typical shape (one ingest thread,
/// query threads gated by an external RW lock or epoch) satisfies this.

namespace t2vec::serve {

/// Maps stable trajectory ids to representation vectors with kNN retrieval.
class EmbeddingStore {
 public:
  /// Neighbor ids (stable trajectory ids, not row indices) with their
  /// squared Euclidean distances, ascending.
  struct Neighbors {
    std::vector<int64_t> ids;
    std::vector<double> distances;
    size_t size() const { return ids.size(); }
  };

  /// An empty store for `dim`-dimensional vectors.
  explicit EmbeddingStore(size_t dim);

  /// Registers `vec` under `id`. Fails with kInvalidArgument when the
  /// dimension mismatches or the id is already present.
  Status Add(int64_t id, std::span<const float> vec);

  bool Contains(int64_t id) const { return row_of_.count(id) > 0; }

  /// The stored vector for `id` (length dim()), or nullptr if absent.
  /// Valid until the next Add().
  const float* Find(int64_t id) const;

  /// The k nearest stored vectors to `query` (length dim()), by exact scan.
  /// k is clamped to size() — asking a 5-vector store for 10 neighbors
  /// returns 5, and an empty store returns none (k comes straight from
  /// clients on the serving path, so it must never abort).
  Neighbors Knn(std::span<const float> query, size_t k) const;

  size_t size() const { return ids_.size(); }
  size_t dim() const { return index_.dim(); }

  /// Snapshots the store (magic + version + ids + vectors).
  Status Save(const std::string& path) const;

  /// Restores a store written by Save().
  static Result<EmbeddingStore> Load(const std::string& path);

 private:
  core::VectorIndex index_;
  std::vector<int64_t> ids_;                  // Row -> trajectory id.
  std::unordered_map<int64_t, size_t> row_of_;  // Trajectory id -> row.
};

}  // namespace t2vec::serve

#endif  // T2VEC_SERVE_EMBEDDING_STORE_H_
