#ifndef T2VEC_SERVE_EMBEDDING_SERVICE_H_
#define T2VEC_SERVE_EMBEDDING_SERVICE_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "core/t2vec.h"
#include "serve/metrics.h"
#include "traj/trajectory.h"

/// \file
/// Online embedding service: the paper's encode-once/query-many deployment
/// shape (Sec. IV-D). A long-lived encoder is fronted by a bounded request
/// queue; a dispatcher thread coalesces concurrent Submit() calls into
/// length-bucketed micro-batches and flushes each bucket through the
/// encoder's padded batch forward on the deterministic thread pool.
///
/// Determinism contract (DESIGN.md "Serving"): a micro-batch only ever
/// contains token sequences of one length, and the encoder's per-row
/// floating-point chains never cross rows, so the vector returned for a
/// request is bit-identical to `T2Vec::EncodeOne` on the same trajectory —
/// at any thread count, any arrival order, and any batch composition.
///
/// Overload and cancellation are explicit:
///  - a full queue rejects new work immediately with kUnavailable,
///  - a Submit() after Shutdown() rejects with kUnavailable,
///  - a request whose deadline has passed when its batch is assembled is
///    completed with kDeadlineExceeded instead of being encoded (expired
///    requests can therefore never wedge Shutdown's drain).

namespace t2vec::serve {

/// Tuning knobs for the micro-batcher.
struct ServiceOptions {
  /// Max requests waiting to be encoded; Submit() beyond this rejects with
  /// kUnavailable (backpressure, never blocking the caller).
  size_t queue_capacity = 256;
  /// Max requests per micro-batch flush.
  size_t max_batch = 32;
  /// How long the dispatcher waits for more arrivals after the oldest
  /// pending request, before flushing a partial batch. 0 = flush eagerly.
  std::chrono::microseconds batch_window{1000};
  /// Thread-count override for the encoder flush (0 = global default).
  /// Results are bit-identical at any setting (common/thread_pool.h).
  int num_threads = 0;
  /// Encode with the int8 quantized encoder (T2Vec::EncodeQuantized*)
  /// instead of fp32. Faster, with a small measured accuracy cost
  /// (EXPERIMENTS.md); per-request results remain bit-identical across
  /// thread counts, batch compositions, and SIMD tiers. The quantized
  /// weights are built once in the service constructor.
  bool quantized = false;
};

/// A single-model online encoder with micro-batching.
class EmbeddingService {
 public:
  using Clock = std::chrono::steady_clock;
  /// Every submitted request resolves to a representation vector or an
  /// error status (kUnavailable / kDeadlineExceeded).
  using EncodeResult = Result<std::vector<float>>;

  /// `model` must outlive the service.
  EmbeddingService(const core::T2Vec* model, ServiceOptions options = {});
  /// Drains in-flight work (equivalent to Shutdown()).
  ~EmbeddingService();

  EmbeddingService(const EmbeddingService&) = delete;
  EmbeddingService& operator=(const EmbeddingService&) = delete;

  /// Enqueues one trajectory for encoding. Never blocks: when the queue is
  /// full or the service is shut down, the returned future is immediately
  /// ready with a kUnavailable status.
  std::future<EncodeResult> Submit(const traj::Trajectory& trip);

  /// Like Submit, but the request is abandoned with kDeadlineExceeded if
  /// its micro-batch has not been assembled by `deadline`. This is what the
  /// TCP server maps the wire-level deadline_ms field onto.
  std::future<EncodeResult> SubmitWithDeadline(const traj::Trajectory& trip,
                                               Clock::time_point deadline);

  /// Stops accepting work, drains every queued request (encoding the live
  /// ones, expiring the late ones), and joins the dispatcher. Idempotent.
  void Shutdown();

  /// Serving metrics (live; snapshot with metrics().ToJson()).
  const ServeMetrics& metrics() const { return metrics_; }

  size_t queue_capacity() const { return options_.queue_capacity; }

 private:
  struct Request {
    traj::TokenSeq tokens;
    std::promise<EncodeResult> promise;
    Clock::time_point enqueue_time;
    Clock::time_point deadline;
    bool has_deadline = false;
  };

  std::future<EncodeResult> SubmitInternal(const traj::Trajectory& trip,
                                           Clock::time_point deadline,
                                           bool has_deadline);
  void DispatchLoop();
  /// Pops the oldest request plus up to max_batch - 1 more with the same
  /// token length (FIFO among equals).
  std::vector<Request> TakeBatchLocked() REQUIRES(mu_);
  /// Encodes `batch` and fulfills its promises (no locks held).
  void Flush(std::vector<Request> batch) EXCLUDES(mu_);

  const core::T2Vec* model_;
  const ServiceOptions options_;
  ServeMetrics metrics_;

  sync::Mutex mu_;
  sync::CondVar work_cv_;  // Dispatcher: work queued or stop.
  std::deque<Request> queue_ GUARDED_BY(mu_);
  bool stop_ GUARDED_BY(mu_) = false;
  /// Serializes the dispatcher join in Shutdown(); never taken with mu_.
  sync::Mutex join_mu_;
  std::thread dispatcher_;
};

}  // namespace t2vec::serve

#endif  // T2VEC_SERVE_EMBEDDING_SERVICE_H_
