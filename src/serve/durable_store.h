#ifndef T2VEC_SERVE_DURABLE_STORE_H_
#define T2VEC_SERVE_DURABLE_STORE_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "serve/embedding_store.h"
#include "serve/wal.h"

/// \file
/// Crash-safe embedding store: an EmbeddingStore whose every insert is
/// appended to a write-ahead log *before* it is acknowledged (DESIGN.md §8).
///
/// Directory layout under the store's data dir:
///
///     store.snapshot   EmbeddingStore::Save artifact (atomic rename)
///     wal.log          inserts since the snapshot (serve/wal.h framing)
///
/// Open() loads the snapshot (if any), replays the WAL on top of it, trims
/// any torn tail left by a crash, and resumes appending. Because the WAL is
/// fsynced per record and replay is sequential and deterministic, a store
/// reopened after a crash is byte-identical to one that was never
/// interrupted — the kill-and-replay tests in tests/wal_test.cc assert
/// exactly that with a memcmp of the two Save artifacts.
///
/// Compaction folds the WAL into a fresh snapshot: snapshot first (atomic
/// rename), then truncate the log. A crash between those two steps leaves
/// records in the WAL that are already in the snapshot; replay skips records
/// whose id is already present, so the overlap is harmless.
///
/// Fault points (common/fault.h): "wal.compact.snapshot",
/// "wal.compact.truncate", plus the wal.* / fs.append.* sites underneath
/// Insert and Open.

namespace t2vec::serve {

struct DurableStoreOptions {
  /// When > 0, a background thread compacts the WAL into a snapshot once the
  /// log grows past this many bytes. 0 leaves compaction manual (Compact()).
  uint64_t compact_after_bytes = 0;

  /// Retrieval backend for the underlying EmbeddingStore (exact scan, LSH,
  /// or IVF). Must be valid — user-input paths run Validate() first.
  core::IndexConfig index_config;
};

/// Serializes one insert as a WAL record payload:
/// [id i64][dim u32][dim x f32]. Exposed for tests and the wire protocol.
std::string EncodeInsertRecord(int64_t id, std::span<const float> vec);

/// Inverse of EncodeInsertRecord. Fails soft on short/inconsistent payloads.
Status DecodeInsertRecord(std::string_view payload, int64_t* id,
                          std::vector<float>* vec);

/// A WAL-backed EmbeddingStore. Thread-safe: Insert/Knn/Find/Compact may be
/// called from any thread (one internal reader/writer mutex — writes
/// exclusive, reads shared).
class DurableStore {
 public:
  /// Opens (or creates) the store in `dir` for `dim`-dimensional vectors:
  /// memory-maps `store.snapshot` when present (EmbeddingStore::LoadMmap —
  /// CRC verified once, vectors served zero-copy, so cold start is
  /// milliseconds even at millions of rows), replays `wal.log` on top of it
  /// (skipping ids the snapshot already holds), trims a torn tail, and
  /// reopens the log for appending.
  static Result<std::unique_ptr<DurableStore>> Open(
      const std::string& dir, size_t dim,
      const DurableStoreOptions& options = {});

  ~DurableStore();

  DurableStore(const DurableStore&) = delete;
  DurableStore& operator=(const DurableStore&) = delete;

  /// Appends the insert to the WAL (fsync) and only then applies it to the
  /// in-memory store: an OK return means the vector survives a crash.
  /// kInvalidArgument on dimension mismatch or duplicate id — checked
  /// *before* the log write, so invalid requests never pollute the WAL.
  /// A `deadline` in the past returns kDeadlineExceeded instead of paying
  /// for the fsync (also checked before the log write, so an expired insert
  /// is never made durable); the default never expires.
  Status Insert(int64_t id, std::span<const float> vec,
                std::chrono::steady_clock::time_point deadline =
                    std::chrono::steady_clock::time_point::max());

  /// kNN over the stored vectors under the configured index (exact for
  /// kExact, approximate otherwise); k is clamped to size().
  EmbeddingStore::Neighbors Knn(std::span<const float> query, size_t k) const;

  /// Retrieval-index diagnostics (kind, probe counters) for the stats
  /// endpoint.
  core::IndexStats IndexStats() const;

  /// Copy of the stored vector for `id`; empty when absent.
  std::vector<float> Find(int64_t id) const;

  bool Contains(int64_t id) const;
  size_t size() const;
  size_t dim() const;

  /// Stored ids in insertion order (a copy; the order replay reproduces).
  std::vector<int64_t> Ids() const;

  /// Current WAL length in bytes (header + records).
  uint64_t wal_bytes() const;

  /// Completed compactions since Open.
  int64_t compactions() const;

  /// Folds the WAL into a fresh snapshot and truncates the log. Safe to
  /// crash at any point: the snapshot is atomic and replay is idempotent.
  Status Compact();

  /// Writes the current store state to `path` (EmbeddingStore::Save); used
  /// by tests to compare stores byte-for-byte.
  Status SaveTo(const std::string& path) const;

  const std::string& dir() const { return dir_; }

 private:
  DurableStore(std::string dir, EmbeddingStore store,
               const DurableStoreOptions& options);

  Status CompactLocked() REQUIRES(mu_);
  void CompactionLoop();

  const std::string dir_;
  const std::string snapshot_path_;
  const std::string wal_path_;
  const DurableStoreOptions options_;

  /// Reader/writer: Insert/Compact take it exclusively; Knn/Find/size and
  /// the other read paths take it shared, so concurrent queries never
  /// serialize against each other (EmbeddingStore is single-writer /
  /// concurrent-reader by contract, serve/embedding_store.h).
  mutable sync::Mutex mu_;
  EmbeddingStore store_ GUARDED_BY(mu_);
  std::unique_ptr<WalWriter> wal_ GUARDED_BY(mu_) PT_GUARDED_BY(mu_);
  int64_t compactions_ GUARDED_BY(mu_) = 0;

  // Background compaction: Insert sets pending_compact_ when the WAL
  // crosses the threshold; the loop thread wakes, compacts, and logs (but
  // never propagates) failures — serving must outlive a bad disk.
  sync::CondVar compact_cv_;
  bool pending_compact_ GUARDED_BY(mu_) = false;
  bool stopping_ GUARDED_BY(mu_) = false;
  std::thread compactor_;
};

}  // namespace t2vec::serve

#endif  // T2VEC_SERVE_DURABLE_STORE_H_
