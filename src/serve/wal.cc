#include "serve/wal.h"

#include <cerrno>
#include <cstring>

#include "common/fault.h"

namespace t2vec::serve {

namespace {

void AppendPod32(std::string* out, uint32_t v) {
  char buf[sizeof(v)];
  std::memcpy(buf, &v, sizeof(v));
  out->append(buf, sizeof(v));
}

uint32_t ReadPod32(const char* p) {
  uint32_t v = 0;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

}  // namespace

WalWriter::WalWriter(const std::string& path) : file_(path) {
  if (!file_.ok()) return;
  if (file_.size() == 0) {
    std::string header;
    AppendPod32(&header, kWalMagic);
    AppendPod32(&header, kWalVersion);
    if (file_.Append(header.data(), header.size()).ok()) {
      (void)file_.Sync();
    }
  }
}

Status WalWriter::Append(std::string_view payload) {
  if (!file_.ok()) return file_.status();
  if (const int err = T2VEC_FAULT_POINT("wal.append")) {
    return Status::IoError(ErrnoMessage("wal append", path(), err));
  }
  // One buffered write per record: header and payload land in a single
  // ::write, so the only torn shapes a crash can produce are a clean prefix
  // cut — exactly what ReplayWal's CRC check detects.
  std::string record;
  record.reserve(kWalRecordOverhead + payload.size());
  AppendPod32(&record, static_cast<uint32_t>(payload.size()));
  AppendPod32(&record, Crc32c(0, payload.data(), payload.size()));
  record.append(payload.data(), payload.size());
  if (Status status = file_.Append(record.data(), record.size());
      !status.ok()) {
    return status;
  }
  return file_.Sync();
}

Result<WalReplayStats> ReplayWal(
    const std::string& path,
    const std::function<Status(std::string_view payload)>& apply) {
  if (const int err = T2VEC_FAULT_POINT("wal.replay")) {
    return Status::IoError(ErrnoMessage("wal replay", path, err));
  }
  // A missing WAL is an empty log (fresh store directory); any other read
  // failure is real.
  if (!FileExists(path)) return WalReplayStats{};
  std::string data;
  if (Status status = ReadFileToString(path, &data); !status.ok()) {
    return status;
  }
  WalReplayStats stats;
  if (data.size() < kWalHeaderBytes) {
    // A crash while writing the very first header: everything is tail.
    stats.torn_tail = !data.empty();
    return stats;
  }
  if (ReadPod32(data.data()) != kWalMagic) {
    return Status::IoError("ReplayWal: bad magic in " + path +
                           " (not a WAL file)");
  }
  const uint32_t version = ReadPod32(data.data() + 4);
  if (version == 0 || version > kWalVersion) {
    return Status::IoError("ReplayWal: unsupported version " +
                           std::to_string(version) + " in " + path);
  }
  size_t pos = kWalHeaderBytes;
  stats.valid_bytes = pos;
  while (pos < data.size()) {
    if (data.size() - pos < kWalRecordOverhead) {
      stats.torn_tail = true;  // Partial record header.
      break;
    }
    const uint32_t len = ReadPod32(data.data() + pos);
    const uint32_t crc = ReadPod32(data.data() + pos + 4);
    if (data.size() - pos - kWalRecordOverhead < len) {
      stats.torn_tail = true;  // Length overruns the file: partial payload.
      break;
    }
    const char* payload = data.data() + pos + kWalRecordOverhead;
    if (Crc32c(0, payload, len) != crc) {
      // A torn single write can only truncate, but a corrupt length field
      // in the torn region can look like a complete record — the CRC is
      // the authority. Everything from here on is untrusted tail.
      stats.torn_tail = true;
      break;
    }
    if (Status status = apply(std::string_view(payload, len)); !status.ok()) {
      return status;
    }
    pos += kWalRecordOverhead + len;
    ++stats.records;
    stats.valid_bytes = pos;
  }
  return stats;
}

}  // namespace t2vec::serve
