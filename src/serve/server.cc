#include "serve/server.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <utility>

#include "common/fs.h"
#include "serve/net.h"

namespace t2vec::serve {

namespace {

/// Best-effort opcode sniff for error responses to unparseable requests.
Opcode SniffOpcode(std::string_view payload) {
  if (!payload.empty()) {
    const uint8_t op =
        static_cast<uint8_t>(payload[0]) & static_cast<uint8_t>(~kDeadlineFlag);
    if (op >= static_cast<uint8_t>(Opcode::kEncode) &&
        op <= static_cast<uint8_t>(Opcode::kStats)) {
      return static_cast<Opcode>(op);
    }
  }
  return Opcode::kStats;
}

/// Accept errors that mean "this connection attempt failed", not "the
/// listener is broken" — the accept loop must survive them (a process-wide
/// fd exhaustion spike, an aborted handshake) instead of silently ending.
bool TransientAcceptError(int err) {
  return err == EINTR || err == ECONNABORTED || err == EAGAIN ||
         err == EWOULDBLOCK || err == EMFILE || err == ENFILE ||
         err == ENOBUFS || err == ENOMEM || err == EPROTO;
}

}  // namespace

TcpServer::TcpServer(const core::T2Vec* model, DurableStore* store,
                     ServerOptions options)
    : store_(store), options_(options), service_(model, options.service) {}

TcpServer::~TcpServer() { Stop(); }

Status TcpServer::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(ErrnoMessage("socket", "tcp", errno));
  }
  const int one = 1;
  (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError(
        ErrnoMessage("bind", "port " + std::to_string(options_.port), err));
  }
  if (::listen(listen_fd_, 128) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError(ErrnoMessage("listen", "tcp", err));
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError(ErrnoMessage("getsockname", "tcp", err));
  }
  port_ = ntohs(bound.sin_port);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void TcpServer::Stop() {
  if (!stopping_.exchange(true) && listen_fd_ >= 0) {
    // shutdown() wakes the blocked accept(); close alone does not on Linux.
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  // Everything below runs under join_mu_: joinable() flips to false with
  // the lock held, so two racing Stop() calls (or Stop racing the
  // destructor) can never both join the same thread — the loser waits here
  // and finds the threads already joined. The old fast path joined
  // accept_thread_ outside any lock, which was exactly that double-join.
  sync::MutexLock join_lock(&join_mu_);
  if (accept_thread_.joinable()) accept_thread_.join();
  // Graceful drain: SHUT_RD makes each connection's next recv return 0, so
  // its thread finishes the in-flight request (the write side still works
  // for the response) and exits on its own.
  const auto drain_deadline = NetClock::now() + options_.drain_timeout;
  conn_mu_.Lock();
  draining_ = true;
  for (int fd : conn_fds_) ::shutdown(fd, SHUT_RD);
  while (!conn_fds_.empty()) {
    if (conn_cv_.WaitUntil(&conn_mu_, drain_deadline) ==
        std::cv_status::timeout) {
      break;
    }
  }
  // Past the deadline: cut the write side too, failing any in-flight send
  // so the straggler threads exit now.
  for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  conn_mu_.Unlock();
  // Connection threads remove themselves from conn_fds_ and exit once their
  // recv fails; joining outside the lock lets them do so.
  std::vector<std::thread> threads;
  {
    sync::MutexLock lock(&conn_mu_);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void TcpServer::AcceptLoop() {
  for (;;) {
    const int fd = NetAccept(listen_fd_);
    if (fd < 0) {
      if (stopping_.load()) return;
      if (TransientAcceptError(errno)) continue;
      // The listener itself broke; the accept loop is done.
      return;
    }
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    metrics_.connections.Increment();
    bool reject = false;
    {
      sync::MutexLock lock(&conn_mu_);
      if (conn_fds_.size() >= options_.max_connections) {
        reject = true;
      } else {
        conn_fds_.insert(fd);
        conn_threads_.emplace_back([this, fd] { ServeConnection(fd); });
      }
    }
    if (reject) RejectConnection(fd);
  }
}

void TcpServer::RejectConnection(int fd) {
  metrics_.rejected_connections.Increment();
  // Accept-then-reject: the peer gets a parseable kUnavailable response
  // instead of a connection reset, so a well-behaved client backs off.
  std::string out;
  AppendFrame(
      EncodeErrorResponse(
          Opcode::kStats,
          Status::Unavailable("server at max_connections (" +
                              std::to_string(options_.max_connections) + ")")),
      &out);
  int err = 0;
  (void)NetSendAll(fd, out, NetClock::now() + options_.send_timeout, &err);
  ::close(fd);
}

void TcpServer::ServeConnection(int fd) {
  std::string buffer;
  char chunk[1 << 16];
  bool fatal = false;
  auto idle_deadline = NetClock::now() + options_.idle_timeout;
  // Armed at the first byte of a partial frame: the whole frame must land
  // within read_timeout, however slowly the peer dribbles.
  auto frame_deadline = kNoDeadline;
  while (!fatal) {
    size_t got = 0;
    int err = 0;
    const IoStatus recv_status = NetRecv(
        fd, chunk, sizeof(chunk), std::min(idle_deadline, frame_deadline),
        &got, &err);
    if (recv_status == IoStatus::kTimeout) {
      metrics_.timeouts.Increment();
      break;
    }
    if (recv_status != IoStatus::kOk) break;  // Peer closed, or socket error.
    buffer.append(chunk, got);
    // Drain every complete frame in the buffer before the next recv.
    while (!fatal) {
      std::string payload;
      size_t consumed = 0;
      const FrameStatus frame = ParseFrame(buffer, &payload, &consumed);
      if (frame == FrameStatus::kNeedMore) break;
      if (frame == FrameStatus::kCorrupt) {
        // Framing is byte-positional: once it is lost there is no resync
        // point, so the only safe answer is to drop this connection. Other
        // connections and the store are unaffected.
        metrics_.corrupt_frames.Increment();
        fatal = true;
        break;
      }
      buffer.erase(0, consumed);
      const auto start = NetClock::now();
      const std::string response = HandleRequest(payload);
      std::string out;
      out.reserve(kFrameHeaderBytes + response.size());
      AppendFrame(response, &out);
      const IoStatus sent =
          NetSendAll(fd, out, NetClock::now() + options_.send_timeout, &err);
      metrics_.request_us.Observe(
          std::chrono::duration_cast<std::chrono::microseconds>(
              NetClock::now() - start)
              .count());
      if (sent != IoStatus::kOk) {
        if (sent == IoStatus::kTimeout) {
          metrics_.timeouts.Increment();
        } else {
          metrics_.send_errors.Increment();
        }
        fatal = true;
      }
    }
    if (buffer.empty()) {
      frame_deadline = kNoDeadline;
    } else if (frame_deadline == kNoDeadline) {
      frame_deadline = NetClock::now() + options_.read_timeout;
    }
    idle_deadline = NetClock::now() + options_.idle_timeout;
  }
  {
    sync::MutexLock lock(&conn_mu_);
    conn_fds_.erase(fd);
    if (draining_) metrics_.drained_connections.Increment();
    conn_cv_.NotifyAll();
  }
  ::close(fd);
}

std::string TcpServer::HandleRequest(std::string_view payload) {
  metrics_.requests.Increment();
  const auto received = EmbeddingService::Clock::now();
  Result<Request> parsed = ParseRequest(payload);
  if (!parsed.ok()) {
    metrics_.errors.Increment();
    return EncodeErrorResponse(SniffOpcode(payload), parsed.status());
  }
  const Request& request = parsed.value();
  // The wire deadline is a budget from receipt; expired requests fail fast
  // at every stage (batch assembly in the service, pre-fsync in the store).
  const auto deadline =
      request.has_deadline
          ? received + std::chrono::milliseconds(request.deadline_ms)
          : EmbeddingService::Clock::time_point::max();
  const auto submit = [&] {
    return request.has_deadline
               ? service_.SubmitWithDeadline(request.trajectory, deadline)
               : service_.Submit(request.trajectory);
  };
  switch (request.opcode) {
    case Opcode::kEncode: {
      EmbeddingService::EncodeResult encoded = submit().get();
      if (!encoded.ok()) {
        metrics_.errors.Increment();
        return EncodeErrorResponse(Opcode::kEncode, encoded.status());
      }
      return EncodeEncodeResponse(encoded.value());
    }
    case Opcode::kInsert: {
      EmbeddingService::EncodeResult encoded = submit().get();
      if (!encoded.ok()) {
        metrics_.errors.Increment();
        return EncodeErrorResponse(Opcode::kInsert, encoded.status());
      }
      // The WAL fsync inside Insert is the acknowledgment barrier: an OK
      // response promises the vector survives a crash. Insert re-checks the
      // deadline right before the append, so an expired request never pays
      // for (or is surprised by) durability.
      if (Status status = store_->Insert(request.trajectory.id,
                                         encoded.value(), deadline);
          !status.ok()) {
        metrics_.errors.Increment();
        return EncodeErrorResponse(Opcode::kInsert, status);
      }
      return EncodeInsertResponse(request.trajectory.id);
    }
    case Opcode::kKnn: {
      EmbeddingService::EncodeResult encoded = submit().get();
      if (!encoded.ok()) {
        metrics_.errors.Increment();
        return EncodeErrorResponse(Opcode::kKnn, encoded.status());
      }
      if (request.has_deadline && EmbeddingService::Clock::now() >= deadline) {
        metrics_.errors.Increment();
        return EncodeErrorResponse(
            Opcode::kKnn,
            Status::DeadlineExceeded("knn: deadline passed after encode"));
      }
      return EncodeKnnResponse(store_->Knn(encoded.value(), request.k));
    }
    case Opcode::kStats:
      return EncodeStatsResponse(StatsJson());
  }
  metrics_.errors.Increment();
  return EncodeErrorResponse(Opcode::kStats,
                             Status::Internal("unreachable opcode"));
}

std::string TcpServer::StatsJson() const {
  std::string json = "{\"server\": {";
  json += "\"connections\": " + std::to_string(metrics_.connections.value());
  json += ", \"requests\": " + std::to_string(metrics_.requests.value());
  json += ", \"errors\": " + std::to_string(metrics_.errors.value());
  json += ", \"corrupt_frames\": " +
          std::to_string(metrics_.corrupt_frames.value());
  json += ", \"send_errors\": " + std::to_string(metrics_.send_errors.value());
  json += ", \"timeouts\": " + std::to_string(metrics_.timeouts.value());
  json += ", \"rejected_connections\": " +
          std::to_string(metrics_.rejected_connections.value());
  json += ", \"drained_connections\": " +
          std::to_string(metrics_.drained_connections.value());
  json += ", \"request_latency_us\": " + metrics_.request_us.ToJson();
  json += "}, \"service\": " + service_.metrics().ToJson();
  json += ", \"store\": {";
  json += "\"size\": " + std::to_string(store_->size());
  json += ", \"dim\": " + std::to_string(store_->dim());
  json += ", \"wal_bytes\": " + std::to_string(store_->wal_bytes());
  json += ", \"compactions\": " + std::to_string(store_->compactions());
  json += ", \"index\": " + store_->IndexStats().ToJson();
  json += "}}";
  return json;
}

}  // namespace t2vec::serve
