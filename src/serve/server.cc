#include "serve/server.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <utility>

#include "common/fs.h"

namespace t2vec::serve {

namespace {

/// Writes all of `data` to `fd`. MSG_NOSIGNAL: a peer that hangs up
/// mid-response must produce an error return, not SIGPIPE.
bool SendAll(int fd, std::string_view data) {
  const char* p = data.data();
  size_t n = data.size();
  while (n > 0) {
    const ssize_t sent = ::send(fd, p, n, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += sent;
    n -= static_cast<size_t>(sent);
  }
  return true;
}

/// Best-effort opcode sniff for error responses to unparseable requests.
Opcode SniffOpcode(std::string_view payload) {
  if (!payload.empty()) {
    const uint8_t op = static_cast<uint8_t>(payload[0]);
    if (op >= static_cast<uint8_t>(Opcode::kEncode) &&
        op <= static_cast<uint8_t>(Opcode::kStats)) {
      return static_cast<Opcode>(op);
    }
  }
  return Opcode::kStats;
}

}  // namespace

TcpServer::TcpServer(const core::T2Vec* model, DurableStore* store,
                     ServerOptions options)
    : store_(store), options_(options), service_(model, options.service) {}

TcpServer::~TcpServer() { Stop(); }

Status TcpServer::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(ErrnoMessage("socket", "tcp", errno));
  }
  const int one = 1;
  (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError(
        ErrnoMessage("bind", "port " + std::to_string(options_.port), err));
  }
  if (::listen(listen_fd_, 128) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError(ErrnoMessage("listen", "tcp", err));
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError(ErrnoMessage("getsockname", "tcp", err));
  }
  port_ = ntohs(bound.sin_port);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void TcpServer::Stop() {
  if (!stopping_.exchange(true) && listen_fd_ >= 0) {
    // shutdown() wakes the blocked accept(); close alone does not on Linux.
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  // Everything below runs under join_mu_: joinable() flips to false with
  // the lock held, so two racing Stop() calls (or Stop racing the
  // destructor) can never both join the same thread — the loser waits here
  // and finds the threads already joined. The old fast path joined
  // accept_thread_ outside any lock, which was exactly that double-join.
  sync::MutexLock join_lock(&join_mu_);
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    sync::MutexLock lock(&conn_mu_);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  // Connection threads remove themselves from conn_fds_ and exit once their
  // recv fails; joining outside the lock lets them do so.
  std::vector<std::thread> threads;
  {
    sync::MutexLock lock(&conn_mu_);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void TcpServer::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // Stop() shut the listener down (or the fd broke); either way the
      // accept loop is done.
      return;
    }
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    metrics_.connections.Increment();
    sync::MutexLock lock(&conn_mu_);
    conn_fds_.insert(fd);
    conn_threads_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void TcpServer::ServeConnection(int fd) {
  std::string buffer;
  char chunk[1 << 16];
  bool corrupt = false;
  while (!corrupt) {
    const ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
    if (got < 0 && errno == EINTR) continue;
    if (got <= 0) break;  // Peer closed, or Stop() shut us down.
    buffer.append(chunk, static_cast<size_t>(got));
    // Drain every complete frame in the buffer before the next recv.
    for (;;) {
      std::string payload;
      size_t consumed = 0;
      const FrameStatus frame = ParseFrame(buffer, &payload, &consumed);
      if (frame == FrameStatus::kNeedMore) break;
      if (frame == FrameStatus::kCorrupt) {
        // Framing is byte-positional: once it is lost there is no resync
        // point, so the only safe answer is to drop this connection. Other
        // connections and the store are unaffected.
        metrics_.corrupt_frames.Increment();
        corrupt = true;
        break;
      }
      buffer.erase(0, consumed);
      const auto start = std::chrono::steady_clock::now();
      const std::string response = HandleRequest(payload);
      std::string out;
      out.reserve(kFrameHeaderBytes + response.size());
      AppendFrame(response, &out);
      const bool sent = SendAll(fd, out);
      metrics_.request_us.Observe(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - start)
              .count());
      if (!sent) {
        corrupt = true;
        break;
      }
    }
  }
  {
    sync::MutexLock lock(&conn_mu_);
    conn_fds_.erase(fd);
  }
  ::close(fd);
}

std::string TcpServer::HandleRequest(std::string_view payload) {
  metrics_.requests.Increment();
  Result<Request> parsed = ParseRequest(payload);
  if (!parsed.ok()) {
    metrics_.errors.Increment();
    return EncodeErrorResponse(SniffOpcode(payload), parsed.status());
  }
  const Request& request = parsed.value();
  switch (request.opcode) {
    case Opcode::kEncode: {
      EmbeddingService::EncodeResult encoded =
          service_.Submit(request.trajectory).get();
      if (!encoded.ok()) {
        metrics_.errors.Increment();
        return EncodeErrorResponse(Opcode::kEncode, encoded.status());
      }
      return EncodeEncodeResponse(encoded.value());
    }
    case Opcode::kInsert: {
      EmbeddingService::EncodeResult encoded =
          service_.Submit(request.trajectory).get();
      if (!encoded.ok()) {
        metrics_.errors.Increment();
        return EncodeErrorResponse(Opcode::kInsert, encoded.status());
      }
      // The WAL fsync inside Insert is the acknowledgment barrier: an OK
      // response promises the vector survives a crash.
      if (Status status =
              store_->Insert(request.trajectory.id, encoded.value());
          !status.ok()) {
        metrics_.errors.Increment();
        return EncodeErrorResponse(Opcode::kInsert, status);
      }
      return EncodeInsertResponse(request.trajectory.id);
    }
    case Opcode::kKnn: {
      EmbeddingService::EncodeResult encoded =
          service_.Submit(request.trajectory).get();
      if (!encoded.ok()) {
        metrics_.errors.Increment();
        return EncodeErrorResponse(Opcode::kKnn, encoded.status());
      }
      return EncodeKnnResponse(store_->Knn(encoded.value(), request.k));
    }
    case Opcode::kStats:
      return EncodeStatsResponse(StatsJson());
  }
  metrics_.errors.Increment();
  return EncodeErrorResponse(Opcode::kStats,
                             Status::Internal("unreachable opcode"));
}

std::string TcpServer::StatsJson() const {
  std::string json = "{\"server\": {";
  json += "\"connections\": " + std::to_string(metrics_.connections.value());
  json += ", \"requests\": " + std::to_string(metrics_.requests.value());
  json += ", \"errors\": " + std::to_string(metrics_.errors.value());
  json += ", \"corrupt_frames\": " +
          std::to_string(metrics_.corrupt_frames.value());
  json += ", \"request_latency_us\": " + metrics_.request_us.ToJson();
  json += "}, \"service\": " + service_.metrics().ToJson();
  json += ", \"store\": {";
  json += "\"size\": " + std::to_string(store_->size());
  json += ", \"dim\": " + std::to_string(store_->dim());
  json += ", \"wal_bytes\": " + std::to_string(store_->wal_bytes());
  json += ", \"compactions\": " + std::to_string(store_->compactions());
  json += ", \"index\": " + store_->IndexStats().ToJson();
  json += "}}";
  return json;
}

}  // namespace t2vec::serve
