#include "serve/durable_store.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <utility>

#include "common/fault.h"
#include "common/fs.h"

namespace t2vec::serve {

namespace {

template <typename T>
void AppendPod(std::string* out, const T& v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out->append(buf, sizeof(T));
}

template <typename T>
bool ReadPod(std::string_view in, size_t* pos, T* out) {
  if (in.size() - *pos < sizeof(T)) return false;
  std::memcpy(out, in.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}

}  // namespace

std::string EncodeInsertRecord(int64_t id, std::span<const float> vec) {
  std::string payload;
  payload.reserve(sizeof(int64_t) + sizeof(uint32_t) +
                  vec.size() * sizeof(float));
  AppendPod(&payload, id);
  AppendPod(&payload, static_cast<uint32_t>(vec.size()));
  payload.append(reinterpret_cast<const char*>(vec.data()),
                 vec.size() * sizeof(float));
  return payload;
}

Status DecodeInsertRecord(std::string_view payload, int64_t* id,
                          std::vector<float>* vec) {
  size_t pos = 0;
  uint32_t dim = 0;
  if (!ReadPod(payload, &pos, id) || !ReadPod(payload, &pos, &dim)) {
    return Status::IoError("insert record: truncated header");
  }
  if (payload.size() - pos != static_cast<size_t>(dim) * sizeof(float)) {
    return Status::IoError("insert record: payload length mismatch (dim " +
                              std::to_string(dim) + ", " +
                              std::to_string(payload.size() - pos) +
                              " bytes of vector data)");
  }
  vec->resize(dim);
  std::memcpy(vec->data(), payload.data() + pos, dim * sizeof(float));
  return Status::Ok();
}

Result<std::unique_ptr<DurableStore>> DurableStore::Open(
    const std::string& dir, size_t dim, const DurableStoreOptions& options) {
  if (Status status = MakeDir(dir); !status.ok()) return status;
  const std::string snapshot_path = dir + "/store.snapshot";
  const std::string wal_path = dir + "/wal.log";

  if (Status status = options.index_config.Validate(); !status.ok()) {
    return status;
  }
  EmbeddingStore store(dim, options.index_config);
  if (FileExists(snapshot_path)) {
    Result<EmbeddingStore> loaded =
        EmbeddingStore::LoadMmap(snapshot_path, options.index_config);
    if (!loaded.ok()) return loaded.status();
    if (loaded.value().dim() != dim) {
      return Status::InvalidArgument(
          "DurableStore: snapshot dim " +
          std::to_string(loaded.value().dim()) + " != requested dim " +
          std::to_string(dim));
    }
    store = std::move(loaded).value();
  }

  // Replay inserts acknowledged since the snapshot. Skipping ids the store
  // already holds makes replay idempotent, which is what keeps a crash
  // between "snapshot committed" and "WAL truncated" harmless.
  Result<WalReplayStats> replayed = ReplayWal(
      wal_path, [&store](std::string_view payload) -> Status {
        int64_t id = 0;
        std::vector<float> vec;
        if (Status status = DecodeInsertRecord(payload, &id, &vec);
            !status.ok()) {
          return status;
        }
        if (store.Contains(id)) return Status::Ok();
        return store.Add(id, vec);
      });
  if (!replayed.ok()) return replayed.status();
  if (replayed.value().torn_tail) {
    if (Status status = TruncateFile(wal_path, replayed.value().valid_bytes);
        !status.ok()) {
      return status;
    }
  }

  std::unique_ptr<DurableStore> out(
      new DurableStore(dir, std::move(store), options));
  // No other thread can hold the brand-new store yet, but wal_ is guarded
  // state — take the lock so the access is provably disciplined.
  sync::ReaderMutexLock lock(&out->mu_);
  if (!out->wal_->ok()) return out->wal_->status();
  return out;
}

DurableStore::DurableStore(std::string dir, EmbeddingStore store,
                           const DurableStoreOptions& options)
    : dir_(std::move(dir)),
      snapshot_path_(dir_ + "/store.snapshot"),
      wal_path_(dir_ + "/wal.log"),
      options_(options),
      store_(std::move(store)),
      wal_(std::make_unique<WalWriter>(wal_path_)) {
  if (options_.compact_after_bytes > 0) {
    compactor_ = std::thread([this] { CompactionLoop(); });
  }
}

DurableStore::~DurableStore() {
  if (compactor_.joinable()) {
    {
      sync::MutexLock lock(&mu_);
      stopping_ = true;
    }
    compact_cv_.NotifyAll();
    compactor_.join();
  }
}

Status DurableStore::Insert(int64_t id, std::span<const float> vec,
                            std::chrono::steady_clock::time_point deadline) {
  sync::MutexLock lock(&mu_);
  // Validate before touching the log so invalid requests never leave a
  // record behind; these are the same checks EmbeddingStore::Add makes.
  if (vec.size() != store_.dim()) {
    return Status::InvalidArgument(
        "Insert: vector dim " + std::to_string(vec.size()) +
        " != store dim " + std::to_string(store_.dim()));
  }
  if (store_.Contains(id)) {
    return Status::InvalidArgument("Insert: duplicate id " +
                                   std::to_string(id));
  }
  // Last stop before durability: an expired request must not pay for the
  // fsync, and must not become durable after its caller gave up on it.
  if (deadline != std::chrono::steady_clock::time_point::max() &&
      std::chrono::steady_clock::now() >= deadline) {
    return Status::DeadlineExceeded("Insert: deadline passed before WAL append");
  }
  const std::string payload = EncodeInsertRecord(id, vec);
  if (Status status = wal_->Append(payload); !status.ok()) return status;
  // Durable: the fsynced record guarantees replay reproduces this Add even
  // if we crash on the very next instruction.
  if (Status status = store_.Add(id, vec); !status.ok()) return status;
  if (options_.compact_after_bytes > 0 &&
      wal_->size_bytes() >= options_.compact_after_bytes &&
      !pending_compact_) {
    pending_compact_ = true;
    compact_cv_.NotifyOne();
  }
  return Status::Ok();
}

// Read paths take the mutex shared: they only read store_/wal_ state (the
// EmbeddingStore contract allows any number of concurrent readers), so
// queries scale instead of serializing on a single lock.

EmbeddingStore::Neighbors DurableStore::Knn(std::span<const float> query,
                                            size_t k) const {
  sync::ReaderMutexLock lock(&mu_);
  return store_.Knn(query, k);
}

core::IndexStats DurableStore::IndexStats() const {
  sync::ReaderMutexLock lock(&mu_);
  return store_.Stats();
}

std::vector<float> DurableStore::Find(int64_t id) const {
  sync::ReaderMutexLock lock(&mu_);
  const float* vec = store_.Find(id);
  if (vec == nullptr) return {};
  return std::vector<float>(vec, vec + store_.dim());
}

bool DurableStore::Contains(int64_t id) const {
  sync::ReaderMutexLock lock(&mu_);
  return store_.Contains(id);
}

size_t DurableStore::size() const {
  sync::ReaderMutexLock lock(&mu_);
  return store_.size();
}

size_t DurableStore::dim() const {
  sync::ReaderMutexLock lock(&mu_);
  return store_.dim();
}

std::vector<int64_t> DurableStore::Ids() const {
  sync::ReaderMutexLock lock(&mu_);
  return store_.ids();
}

uint64_t DurableStore::wal_bytes() const {
  sync::ReaderMutexLock lock(&mu_);
  return wal_->size_bytes();
}

int64_t DurableStore::compactions() const {
  sync::ReaderMutexLock lock(&mu_);
  return compactions_;
}

Status DurableStore::Compact() {
  sync::MutexLock lock(&mu_);
  return CompactLocked();
}

Status DurableStore::SaveTo(const std::string& path) const {
  sync::ReaderMutexLock lock(&mu_);
  return store_.Save(path);
}

Status DurableStore::CompactLocked() {
  // Snapshot first (atomic rename: readers of the old snapshot are never
  // exposed to a partial file), truncate the now-redundant log second. A
  // crash in between leaves WAL records that the snapshot already covers —
  // Open's idempotent replay skips them.
  if (const int err = T2VEC_FAULT_POINT("wal.compact.snapshot")) {
    return Status::IoError(ErrnoMessage("compact snapshot", snapshot_path_,
                                        err));
  }
  if (Status status = store_.Save(snapshot_path_); !status.ok()) {
    return status;
  }
  if (const int err = T2VEC_FAULT_POINT("wal.compact.truncate")) {
    return Status::IoError(ErrnoMessage("compact truncate", wal_path_, err));
  }
  if (Status status = TruncateFile(wal_path_); !status.ok()) return status;
  // Reopen so the writer's fd and size agree with the truncated file (the
  // constructor re-stamps the header into the now-empty log).
  wal_ = std::make_unique<WalWriter>(wal_path_);
  if (!wal_->ok()) return wal_->status();
  ++compactions_;
  return Status::Ok();
}

void DurableStore::CompactionLoop() {
  // Predicate loop spelled out (common/sync.h): the guarded reads must stay
  // in this lock-holding function, not a wait lambda.
  mu_.Lock();
  for (;;) {
    while (!pending_compact_ && !stopping_) compact_cv_.Wait(&mu_);
    if (stopping_) break;
    pending_compact_ = false;
    if (Status status = CompactLocked(); !status.ok()) {
      // Compaction failure must never take down serving: the WAL keeps
      // growing and stays authoritative, so durability is unaffected.
      std::fprintf(stderr, "t2vec: background compaction failed: %s\n",
                   status.message().c_str());
    }
  }
  mu_.Unlock();
}

}  // namespace t2vec::serve
