#ifndef T2VEC_GEO_POINT_H_
#define T2VEC_GEO_POINT_H_

#include <cmath>

/// \file
/// Geographic (lon/lat) and planar (meters) point types.
///
/// All similarity measures and the spatial grid operate in a local planar
/// frame in meters (see projection.h); GeoPoint is only used at the data
/// boundary (generation, I/O).

namespace t2vec::geo {

/// A WGS84 longitude/latitude pair in degrees.
struct GeoPoint {
  double lon = 0.0;
  double lat = 0.0;

  friend bool operator==(const GeoPoint&, const GeoPoint&) = default;
};

/// A point in a local planar frame, in meters.
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point&, const Point&) = default;
};

/// Euclidean distance between planar points, meters.
inline double Distance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

/// Squared Euclidean distance (avoids the sqrt on hot paths).
inline double SquaredDistance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

/// Linear interpolation between a and b at fraction t in [0, 1].
inline Point Lerp(const Point& a, const Point& b, double t) {
  return {a.x + (b.x - a.x) * t, a.y + (b.y - a.y) * t};
}

/// Closest point to `p` on the segment [a, b].
Point ProjectOntoSegment(const Point& p, const Point& a, const Point& b);

/// Distance from `p` to the segment [a, b].
double DistanceToSegment(const Point& p, const Point& a, const Point& b);

}  // namespace t2vec::geo

#endif  // T2VEC_GEO_POINT_H_
