#ifndef T2VEC_GEO_CELL_KNN_H_
#define T2VEC_GEO_CELL_KNN_H_

#include <vector>

#include "geo/vocab.h"

/// \file
/// Precomputed K-nearest-neighbor table over hot cells.
///
/// Three components of the paper consume this table:
///  - the approximate loss L3 restricts the positive set to NK(y_t), the K
///    nearest cells of the target (Sec. IV-C1);
///  - the spatial proximity weights w_{u,y_t} use an exponential kernel over
///    cell center distances with scale θ;
///  - cell pretraining samples skip-gram contexts from NK(u) with the same
///    kernel (Eq. 8).

namespace t2vec::geo {

/// K nearest hot cells (the cell itself is included as its own 0-distance
/// neighbor) plus distance-kernel weights for every hot-cell token.
class CellKnnTable {
 public:
  /// Builds the table for all hot cells in `vocab`. `k` neighbors per cell;
  /// `theta` is the spatial scale (meters) of exp(-d/θ). Weights are
  /// normalized to sum to 1 within each neighbor list, matching the
  /// truncated normalization of the paper's L3.
  CellKnnTable(const HotCellVocab& vocab, int k, double theta);

  /// Neighbor tokens of `token` (size k, sorted by ascending distance,
  /// first entry is `token` itself). Token must be a hot cell.
  const std::vector<Token>& Neighbors(Token token) const;

  /// Kernel weights aligned with Neighbors(); they sum to 1.
  const std::vector<float>& Weights(Token token) const;

  /// Center distances (meters) aligned with Neighbors().
  const std::vector<float>& Distances(Token token) const;

  int k() const { return k_; }
  double theta() const { return theta_; }

 private:
  size_t IndexOf(Token token) const;

  int k_;
  double theta_;
  Token vocab_size_;
  std::vector<std::vector<Token>> neighbors_;
  std::vector<std::vector<float>> weights_;
  std::vector<std::vector<float>> distances_;
};

}  // namespace t2vec::geo

#endif  // T2VEC_GEO_CELL_KNN_H_
