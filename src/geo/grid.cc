#include "geo/grid.h"

#include <algorithm>
#include <cmath>

namespace t2vec::geo {

SpatialGrid::SpatialGrid(Point min_corner, Point max_corner, double cell_size)
    : min_corner_(min_corner), cell_size_(cell_size) {
  T2VEC_CHECK(cell_size > 0.0);
  T2VEC_CHECK(max_corner.x > min_corner.x && max_corner.y > min_corner.y);
  cols_ = static_cast<int64_t>(
      std::ceil((max_corner.x - min_corner.x) / cell_size));
  rows_ = static_cast<int64_t>(
      std::ceil((max_corner.y - min_corner.y) / cell_size));
  cols_ = std::max<int64_t>(cols_, 1);
  rows_ = std::max<int64_t>(rows_, 1);
}

CellId SpatialGrid::CellOf(const Point& p) const {
  int64_t col = static_cast<int64_t>(
      std::floor((p.x - min_corner_.x) / cell_size_));
  int64_t row = static_cast<int64_t>(
      std::floor((p.y - min_corner_.y) / cell_size_));
  col = std::clamp<int64_t>(col, 0, cols_ - 1);
  row = std::clamp<int64_t>(row, 0, rows_ - 1);
  return row * cols_ + col;
}

Point SpatialGrid::CenterOf(CellId cell) const {
  T2VEC_DCHECK(cell >= 0 && cell < num_cells());
  const int64_t row = RowOf(cell);
  const int64_t col = ColOf(cell);
  return {min_corner_.x + (static_cast<double>(col) + 0.5) * cell_size_,
          min_corner_.y + (static_cast<double>(row) + 0.5) * cell_size_};
}

}  // namespace t2vec::geo
