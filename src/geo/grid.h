#ifndef T2VEC_GEO_GRID_H_
#define T2VEC_GEO_GRID_H_

#include <cstdint>

#include "common/macros.h"
#include "geo/point.h"

/// \file
/// Uniform spatial grid over a rectangular region in the local planar frame.
/// The paper partitions space into equal-size cells (default 100 m) and
/// treats each cell as a token; this class provides the cell indexing.

namespace t2vec::geo {

/// Index of a cell inside a SpatialGrid, in [0, num_cells()).
using CellId = int64_t;

/// Uniform grid with square cells of side `cell_size` meters.
class SpatialGrid {
 public:
  /// Covers [min_corner, max_corner] with ceil-sized rows/cols. Points
  /// outside the region are clamped onto the boundary cells.
  SpatialGrid(Point min_corner, Point max_corner, double cell_size);

  /// Cell containing (after clamping) the given point.
  CellId CellOf(const Point& p) const;

  /// Center point of a cell.
  Point CenterOf(CellId cell) const;

  /// Row/column decomposition.
  int64_t RowOf(CellId cell) const { return cell / cols_; }
  int64_t ColOf(CellId cell) const { return cell % cols_; }
  CellId CellAt(int64_t row, int64_t col) const {
    T2VEC_DCHECK(row >= 0 && row < rows_ && col >= 0 && col < cols_);
    return row * cols_ + col;
  }
  bool InBounds(int64_t row, int64_t col) const {
    return row >= 0 && row < rows_ && col >= 0 && col < cols_;
  }

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t num_cells() const { return rows_ * cols_; }
  double cell_size() const { return cell_size_; }
  const Point& min_corner() const { return min_corner_; }

 private:
  Point min_corner_;
  double cell_size_;
  int64_t rows_;
  int64_t cols_;
};

}  // namespace t2vec::geo

#endif  // T2VEC_GEO_GRID_H_
