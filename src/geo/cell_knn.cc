#include "geo/cell_knn.h"

#include <algorithm>
#include <cmath>

#include "common/sort.h"
#include "common/thread_pool.h"

namespace t2vec::geo {

CellKnnTable::CellKnnTable(const HotCellVocab& vocab, int k, double theta)
    : k_(k), theta_(theta), vocab_size_(vocab.vocab_size()) {
  T2VEC_CHECK(k >= 1);
  T2VEC_CHECK(theta > 0.0);
  const size_t n = vocab.num_hot_cells();
  const int effective_k =
      static_cast<int>(std::min<size_t>(static_cast<size_t>(k), n));
  const SpatialGrid& grid = vocab.grid();

  // Dense grid-cell -> token lookup for the ring search.
  std::vector<Token> cell_token_lut(static_cast<size_t>(grid.num_cells()),
                                    -1);
  for (size_t j = 0; j < n; ++j) {
    cell_token_lut[static_cast<size_t>(vocab.hot_cells()[j])] =
        static_cast<Token>(j) + kNumSpecialTokens;
  }

  neighbors_.resize(n);
  weights_.resize(n);
  distances_.resize(n);

  // Hot cells live on a lattice; candidates are gathered ring by ring around
  // each cell until the k-th best cannot be improved by farther rings. Cells
  // are independent (cell i writes only neighbors_/weights_/distances_[i]),
  // so the precompute parallelizes with bit-identical results.
  ParallelFor(0, n, 16, [&](size_t i) {
    std::vector<std::pair<double, Token>> candidates;
    const Token token = static_cast<Token>(i) + kNumSpecialTokens;
    const Point center = vocab.CenterOf(token);
    const CellId cell = vocab.hot_cells()[i];
    const int64_t row0 = grid.RowOf(cell);
    const int64_t col0 = grid.ColOf(cell);
    const int64_t max_ring = std::max(grid.rows(), grid.cols());

    candidates.emplace_back(0.0, token);  // The cell itself (distance 0).

    auto visit = [&](int64_t row, int64_t col) {
      if (!grid.InBounds(row, col)) return;
      const Token t =
          cell_token_lut[static_cast<size_t>(grid.CellAt(row, col))];
      if (t < 0 || t == token) return;
      candidates.emplace_back(Distance(center, vocab.CenterOf(t)), t);
    };

    for (int64_t ring = 1; ring <= max_ring; ++ring) {
      if (static_cast<int>(candidates.size()) >= effective_k) {
        // Tokens are distinct, so (distance, token) ordering is total and
        // the k-th value read below is unique; the partition arrangement
        // never escapes — the full range is deterministically sorted after
        // the ring loop.
        TotalOrderNthElement(candidates.begin(),
                             candidates.begin() + effective_k - 1,
                             candidates.end());
        const double kth = candidates[effective_k - 1].first;
        // Cells on this ring are at least (ring - 1) * cell_size away.
        const double ring_min_dist =
            (static_cast<double>(ring) - 1.0) * grid.cell_size();
        if (ring_min_dist > kth) break;
      }
      for (int64_t c = col0 - ring; c <= col0 + ring; ++c) {
        visit(row0 - ring, c);
        visit(row0 + ring, c);
      }
      for (int64_t r = row0 - ring + 1; r <= row0 + ring - 1; ++r) {
        visit(r, col0 - ring);
        visit(r, col0 + ring);
      }
    }

    DeterministicSort(candidates.begin(), candidates.end());
    const size_t take =
        std::min<size_t>(candidates.size(), static_cast<size_t>(effective_k));
    neighbors_[i].reserve(take);
    distances_[i].reserve(take);
    weights_[i].reserve(take);
    double weight_sum = 0.0;
    for (size_t j = 0; j < take; ++j) {
      neighbors_[i].push_back(candidates[j].second);
      distances_[i].push_back(static_cast<float>(candidates[j].first));
      const double w = std::exp(-candidates[j].first / theta_);
      weights_[i].push_back(static_cast<float>(w));
      weight_sum += w;
    }
    for (float& w : weights_[i]) {
      w = static_cast<float>(w / weight_sum);
    }
  });
}

size_t CellKnnTable::IndexOf(Token token) const {
  T2VEC_CHECK(token >= kNumSpecialTokens && token < vocab_size_);
  return static_cast<size_t>(token) - kNumSpecialTokens;
}

const std::vector<Token>& CellKnnTable::Neighbors(Token token) const {
  return neighbors_[IndexOf(token)];
}

const std::vector<float>& CellKnnTable::Weights(Token token) const {
  return weights_[IndexOf(token)];
}

const std::vector<float>& CellKnnTable::Distances(Token token) const {
  return distances_[IndexOf(token)];
}

}  // namespace t2vec::geo
