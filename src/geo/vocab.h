#ifndef T2VEC_GEO_VOCAB_H_
#define T2VEC_GEO_VOCAB_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "geo/grid.h"
#include "geo/point.h"

/// \file
/// Hot-cell vocabulary (paper Sec. IV-B). Only cells hit by more than δ
/// sample points become tokens ("hot cells"); every sample point maps to its
/// *nearest* hot cell. This filters GPS noise in sparsely visited areas and
/// bounds the vocabulary size.
///
/// Token ids: 0..3 are the special tokens PAD/BOS/EOS/UNK; hot cells follow.

namespace t2vec::geo {

/// Integer token id in the model vocabulary.
using Token = int32_t;

/// Special token ids (fixed positions at the front of the vocabulary).
inline constexpr Token kPadToken = 0;  ///< Batch padding.
inline constexpr Token kBosToken = 1;  ///< Decoder start-of-sequence.
inline constexpr Token kEosToken = 2;  ///< End-of-sequence.
inline constexpr Token kUnkToken = 3;  ///< Unused fallback (kept for safety).
inline constexpr Token kNumSpecialTokens = 4;

/// Maps planar points to hot-cell tokens and back.
class HotCellVocab {
 public:
  /// Builds the vocabulary: counts hits of `points` per grid cell and keeps
  /// cells with at least `min_hits` (the paper's δ; it keeps cells "hit by
  /// more than δ points" with δ = 50 at full scale).
  HotCellVocab(const SpatialGrid& grid, const std::vector<Point>& points,
               int min_hits);

  /// Reconstructs a vocabulary from its components (model deserialization).
  /// `hot_cells` must be sorted ascending; `hit_counts` aligned with it.
  HotCellVocab(const SpatialGrid& grid, std::vector<CellId> hot_cells,
               std::vector<int64_t> hit_counts);

  /// Total vocabulary size including special tokens.
  Token vocab_size() const {
    return static_cast<Token>(hot_cells_.size()) + kNumSpecialTokens;
  }

  /// Number of hot cells (excludes special tokens).
  size_t num_hot_cells() const { return hot_cells_.size(); }

  /// Token of the nearest hot cell to `p` (ring search over the grid).
  Token TokenOf(const Point& p) const;

  /// Center coordinates of a hot-cell token. Must not be a special token.
  const Point& CenterOf(Token token) const;

  /// Number of training points that hit this hot cell (frequency used by the
  /// NCE noise distribution). Must not be a special token.
  int64_t HitCount(Token token) const;

  /// Whether `token` is one of the reserved special tokens.
  static bool IsSpecial(Token token) { return token < kNumSpecialTokens; }

  const SpatialGrid& grid() const { return grid_; }

  /// Hot-cell grid ids, indexed by (token - kNumSpecialTokens).
  const std::vector<CellId>& hot_cells() const { return hot_cells_; }

 private:
  SpatialGrid grid_;
  std::vector<CellId> hot_cells_;       // token index -> grid cell
  std::vector<Point> centers_;          // token index -> cell center
  std::vector<int64_t> hit_counts_;     // token index -> #points
  std::unordered_map<CellId, Token> cell_to_token_;
};

}  // namespace t2vec::geo

#endif  // T2VEC_GEO_VOCAB_H_
