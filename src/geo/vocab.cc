#include "geo/vocab.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/sort.h"

namespace t2vec::geo {

HotCellVocab::HotCellVocab(const SpatialGrid& grid,
                           const std::vector<Point>& points, int min_hits)
    : grid_(grid) {
  std::unordered_map<CellId, int64_t> counts;
  counts.reserve(points.size() / 4 + 1);
  for (const Point& p : points) counts[grid_.CellOf(p)]++;

  // Keep cells with >= min_hits hits; deterministic order by cell id.
  std::vector<std::pair<CellId, int64_t>> kept;
  kept.reserve(counts.size());
  // lint:allow(unordered-iter) order-insensitive filter; kept is sorted below
  for (const auto& [cell, count] : counts) {
    if (count >= min_hits) kept.emplace_back(cell, count);
  }
  T2VEC_CHECK(!kept.empty());
  // Cell ids are unique, so the sorted result is unique; pinned regardless.
  DeterministicSort(kept.begin(), kept.end());

  hot_cells_.reserve(kept.size());
  centers_.reserve(kept.size());
  hit_counts_.reserve(kept.size());
  cell_to_token_.reserve(kept.size());
  for (size_t i = 0; i < kept.size(); ++i) {
    hot_cells_.push_back(kept[i].first);
    centers_.push_back(grid_.CenterOf(kept[i].first));
    hit_counts_.push_back(kept[i].second);
    cell_to_token_[kept[i].first] =
        static_cast<Token>(i) + kNumSpecialTokens;
  }
}

HotCellVocab::HotCellVocab(const SpatialGrid& grid,
                           std::vector<CellId> hot_cells,
                           std::vector<int64_t> hit_counts)
    : grid_(grid),
      hot_cells_(std::move(hot_cells)),
      hit_counts_(std::move(hit_counts)) {
  T2VEC_CHECK(!hot_cells_.empty());
  T2VEC_CHECK(hot_cells_.size() == hit_counts_.size());
  T2VEC_CHECK(std::is_sorted(hot_cells_.begin(), hot_cells_.end()));
  centers_.reserve(hot_cells_.size());
  cell_to_token_.reserve(hot_cells_.size());
  for (size_t i = 0; i < hot_cells_.size(); ++i) {
    centers_.push_back(grid_.CenterOf(hot_cells_[i]));
    cell_to_token_[hot_cells_[i]] = static_cast<Token>(i) + kNumSpecialTokens;
  }
}

Token HotCellVocab::TokenOf(const Point& p) const {
  // Fast path: the point's own cell is hot.
  const CellId own = grid_.CellOf(p);
  if (auto it = cell_to_token_.find(own); it != cell_to_token_.end()) {
    return it->second;
  }

  // Ring search: expand square rings around the point's cell. A candidate
  // found at ring r can only be beaten by candidates up to ring
  // ceil(best_dist / cell_size) + 1, so we keep expanding until that bound.
  const int64_t row0 = grid_.RowOf(own);
  const int64_t col0 = grid_.ColOf(own);
  const int64_t max_ring = std::max(grid_.rows(), grid_.cols());

  Token best = -1;
  double best_dist = std::numeric_limits<double>::infinity();
  for (int64_t ring = 1; ring <= max_ring; ++ring) {
    if (best >= 0) {
      // Cells in this ring are at least (ring - 1) * cell_size away.
      const double ring_min_dist =
          (static_cast<double>(ring) - 1.0) * grid_.cell_size();
      if (ring_min_dist > best_dist) break;
    }
    auto visit = [&](int64_t row, int64_t col) {
      if (!grid_.InBounds(row, col)) return;
      const CellId cell = grid_.CellAt(row, col);
      auto it = cell_to_token_.find(cell);
      if (it == cell_to_token_.end()) return;
      const double d =
          Distance(p, centers_[static_cast<size_t>(it->second) -
                               kNumSpecialTokens]);
      if (d < best_dist) {
        best_dist = d;
        best = it->second;
      }
    };
    for (int64_t c = col0 - ring; c <= col0 + ring; ++c) {
      visit(row0 - ring, c);
      visit(row0 + ring, c);
    }
    for (int64_t r = row0 - ring + 1; r <= row0 + ring - 1; ++r) {
      visit(r, col0 - ring);
      visit(r, col0 + ring);
    }
  }
  T2VEC_CHECK(best >= 0);  // Vocabulary is non-empty by construction.
  return best;
}

const Point& HotCellVocab::CenterOf(Token token) const {
  T2VEC_CHECK(!IsSpecial(token) && token < vocab_size());
  return centers_[static_cast<size_t>(token) - kNumSpecialTokens];
}

int64_t HotCellVocab::HitCount(Token token) const {
  T2VEC_CHECK(!IsSpecial(token) && token < vocab_size());
  return hit_counts_[static_cast<size_t>(token) - kNumSpecialTokens];
}

}  // namespace t2vec::geo
