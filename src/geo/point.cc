#include "geo/point.h"

#include <algorithm>

namespace t2vec::geo {

Point ProjectOntoSegment(const Point& p, const Point& a, const Point& b) {
  const double abx = b.x - a.x;
  const double aby = b.y - a.y;
  const double len_sq = abx * abx + aby * aby;
  if (len_sq <= 0.0) return a;
  const double t =
      std::clamp(((p.x - a.x) * abx + (p.y - a.y) * aby) / len_sq, 0.0, 1.0);
  return {a.x + t * abx, a.y + t * aby};
}

double DistanceToSegment(const Point& p, const Point& a, const Point& b) {
  return Distance(p, ProjectOntoSegment(p, a, b));
}

}  // namespace t2vec::geo
