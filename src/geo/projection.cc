#include "geo/projection.h"

#include <cmath>
#include <numbers>

namespace t2vec::geo {

namespace {
// WGS84 mean Earth radius, meters.
constexpr double kEarthRadius = 6371008.8;
constexpr double kDegToRad = std::numbers::pi / 180.0;
}  // namespace

LocalProjection::LocalProjection(GeoPoint origin) : origin_(origin) {
  meters_per_deg_lat_ = kEarthRadius * kDegToRad;
  meters_per_deg_lon_ =
      kEarthRadius * kDegToRad * std::cos(origin.lat * kDegToRad);
}

Point LocalProjection::Forward(const GeoPoint& g) const {
  return {(g.lon - origin_.lon) * meters_per_deg_lon_,
          (g.lat - origin_.lat) * meters_per_deg_lat_};
}

GeoPoint LocalProjection::Inverse(const Point& p) const {
  return {origin_.lon + p.x / meters_per_deg_lon_,
          origin_.lat + p.y / meters_per_deg_lat_};
}

}  // namespace t2vec::geo
