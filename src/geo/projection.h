#ifndef T2VEC_GEO_PROJECTION_H_
#define T2VEC_GEO_PROJECTION_H_

#include "geo/point.h"

/// \file
/// Local equirectangular projection between lon/lat degrees and a planar
/// frame in meters. Accurate to well under a meter across a metropolitan
/// region (tens of kilometers), which is all the paper's setting requires —
/// cells are 100 m and GPS noise is 30 m.

namespace t2vec::geo {

/// Projects lon/lat to meters relative to a fixed reference point.
class LocalProjection {
 public:
  /// Builds a projection centered at `origin` (its image is (0, 0)).
  explicit LocalProjection(GeoPoint origin);

  /// lon/lat -> local meters.
  Point Forward(const GeoPoint& g) const;

  /// local meters -> lon/lat.
  GeoPoint Inverse(const Point& p) const;

  const GeoPoint& origin() const { return origin_; }

 private:
  GeoPoint origin_;
  double meters_per_deg_lon_;
  double meters_per_deg_lat_;
};

}  // namespace t2vec::geo

#endif  // T2VEC_GEO_PROJECTION_H_
