// t2vec command-line tool: train, encode, search, and reconstruct over
// trajectory dataset files (the text format of traj::Dataset).
//
// Subcommands:
//   generate --out data.txt [--count N] [--preset porto|harbin]
//   train    --data data.txt --model out.t2vec [--iters N] [--hidden H]
//            [--loss l1|l2|l3] [--no-pretrain] [--checkpoint-dir D]
//            [--checkpoint-every N] [--resume snapshot-or-dir]
//   encode   --model m.t2vec --data data.txt --out vectors.txt
//   knn      --model m.t2vec --data db.txt --query-index I [--k K]
//   reconstruct --model m.t2vec --data db.txt --query-index I [--drop R]
//   server   --model m.t2vec --data-dir d/ [--port P] [--run-seconds S]
//
// knn, serve-bench, and server take an index configuration
// (--index exact|lsh|ivf plus --nlist/--nprobe/--lsh-tables/--lsh-bits):
// the retrieval backend is a config choice, never hard-coded.
//
// Exit status is non-zero on any error; diagnostics go to stderr.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/fs.h"
#include "core/ann_index.h"
#include "core/t2vec.h"
#include "serve/durable_store.h"
#include "serve/embedding_service.h"
#include "serve/server.h"
#include "traj/generator.h"
#include "traj/transforms.h"

namespace {

using namespace t2vec;

// Minimal --key value parser; flags must come in pairs.
class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      if (std::strncmp(argv[i], "--", 2) != 0) continue;
      // A flag followed by another flag (or nothing) is boolean, e.g.
      // --no-pretrain / --quantized; otherwise it consumes the next arg.
      // insert_or_assign: GCC 12's -Wrestrict miscounts the inlined
      // char-pointer operator= here at -O3.
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        values_.insert_or_assign(argv[i] + 2, std::string(argv[i + 1]));
        ++i;
      } else {
        values_.insert_or_assign(argv[i] + 2, std::string("1"));
      }
    }
  }

  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  long GetInt(const std::string& key, long fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atol(it->second.c_str());
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }
  bool Has(const std::string& key) const { return values_.count(key) > 0; }

 private:
  std::map<std::string, std::string> values_;
};

int Fail(const char* message) {
  std::fprintf(stderr, "error: %s\n", message);
  return 1;
}

// Shared --index/--nlist/--nprobe/--lsh-* parsing for every retrieval
// surface (knn, serve-bench, server). Validation happens here so a bad flag
// fails with a message before any work starts.
Result<core::IndexConfig> ParseIndexConfig(const Flags& flags) {
  core::IndexConfig config;
  Result<core::IndexKind> kind =
      core::ParseIndexKind(flags.Get("index", "exact"));
  if (!kind.ok()) return kind.status();
  config.kind = kind.value();
  config.lsh_tables =
      static_cast<int>(flags.GetInt("lsh-tables", config.lsh_tables));
  config.lsh_bits = static_cast<int>(flags.GetInt("lsh-bits", config.lsh_bits));
  config.ivf_nlist = static_cast<size_t>(
      flags.GetInt("nlist", static_cast<long>(config.ivf_nlist)));
  config.ivf_nprobe = static_cast<size_t>(
      flags.GetInt("nprobe", static_cast<long>(config.ivf_nprobe)));
  config.ivf_train_iters =
      static_cast<int>(flags.GetInt("ivf-iters", config.ivf_train_iters));
  if (Status status = config.Validate(); !status.ok()) return status;
  return config;
}

int CmdGenerate(const Flags& flags) {
  if (!flags.Has("out")) return Fail("generate requires --out");
  const std::string preset = flags.Get("preset", "porto");
  traj::GeneratorConfig config = (preset == "harbin")
                                     ? traj::GeneratorConfig::HarbinLike()
                                     : traj::GeneratorConfig::PortoLike();
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 101));
  traj::SyntheticTrajectoryGenerator generator(config);
  const traj::Dataset data =
      generator.Generate(static_cast<size_t>(flags.GetInt("count", 1000)));
  const Status status = data.Save(flags.Get("out", ""));
  if (!status.ok()) return Fail(status.ToString().c_str());
  std::printf("wrote %zu trips (%lld points, mean length %.1f) to %s\n",
              data.size(), static_cast<long long>(data.TotalPoints()),
              data.MeanLength(), flags.Get("out", "").c_str());
  return 0;
}

int CmdTrain(const Flags& flags) {
  if (!flags.Has("data") || !flags.Has("model")) {
    return Fail("train requires --data and --model");
  }
  Result<traj::Dataset> data = traj::Dataset::Load(flags.Get("data", ""));
  if (!data.ok()) return Fail(data.status().ToString().c_str());

  core::T2VecConfig config;
  config.max_iterations =
      static_cast<size_t>(flags.GetInt("iters", 1000));
  config.hidden = static_cast<size_t>(flags.GetInt("hidden", 96));
  config.cell_size = flags.GetDouble("cell-size", 100.0);
  config.pretrain_cells = !flags.Has("no-pretrain");
  const std::string loss = flags.Get("loss", "l3");
  if (loss == "l1") {
    config.loss = core::LossKind::kL1;
  } else if (loss == "l2") {
    config.loss = core::LossKind::kL2;
  } else if (loss == "l3") {
    config.loss = core::LossKind::kL3;
  } else {
    return Fail("--loss must be l1, l2, or l3");
  }
  // Crash safety: periodic training-state snapshots, and resume from one.
  config.checkpoint_dir = flags.Get("checkpoint-dir", "");
  config.checkpoint_every =
      static_cast<size_t>(flags.GetInt("checkpoint-every", 500));
  config.resume_from = flags.Get("resume", "");
  if (flags.Has("resume") && config.resume_from.empty()) {
    return Fail("--resume requires a snapshot file or directory");
  }

  core::TrainStats stats;
  Result<core::T2Vec> model =
      core::T2Vec::TrainChecked(data.value().trajectories(), config, &stats);
  if (!model.ok()) return Fail(model.status().ToString().c_str());
  const Status status = model.value().Save(flags.Get("model", ""));
  if (!status.ok()) return Fail(status.ToString().c_str());
  std::printf("trained %zu iterations in %.0f s (best val %.4f); model "
              "saved to %s\n",
              stats.iterations, stats.train_seconds, stats.best_val_loss,
              flags.Get("model", "").c_str());
  return 0;
}

int CmdEncode(const Flags& flags) {
  if (!flags.Has("model") || !flags.Has("data") || !flags.Has("out")) {
    return Fail("encode requires --model, --data, --out");
  }
  Result<core::T2Vec> model = core::T2Vec::Load(flags.Get("model", ""));
  if (!model.ok()) return Fail(model.status().ToString().c_str());
  Result<traj::Dataset> data = traj::Dataset::Load(flags.Get("data", ""));
  if (!data.ok()) return Fail(data.status().ToString().c_str());

  const nn::Matrix vectors =
      model.value().Encode(data.value().trajectories());
  std::string text;
  char buf[64];
  for (size_t i = 0; i < vectors.rows(); ++i) {
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(data.value()[i].id));
    text += buf;
    for (size_t j = 0; j < vectors.cols(); ++j) {
      std::snprintf(buf, sizeof(buf), " %.6g", vectors.At(i, j));
      text += buf;
    }
    text += '\n';
  }
  if (Status status = WriteFileAtomic(flags.Get("out", ""), text);
      !status.ok()) {
    return Fail(status.ToString().c_str());
  }
  std::printf("encoded %zu trajectories into %zu-dim vectors -> %s\n",
              vectors.rows(), vectors.cols(),
              flags.Get("out", "").c_str());
  return 0;
}

int CmdKnn(const Flags& flags) {
  if (!flags.Has("model") || !flags.Has("data")) {
    return Fail("knn requires --model and --data");
  }
  Result<core::T2Vec> model = core::T2Vec::Load(flags.Get("model", ""));
  if (!model.ok()) return Fail(model.status().ToString().c_str());
  Result<traj::Dataset> data = traj::Dataset::Load(flags.Get("data", ""));
  if (!data.ok()) return Fail(data.status().ToString().c_str());

  const size_t query = static_cast<size_t>(flags.GetInt("query-index", 0));
  const size_t k = static_cast<size_t>(flags.GetInt("k", 5));
  if (query >= data.value().size()) return Fail("query index out of range");
  if (k > data.value().size()) return Fail("k larger than the database");

  Result<core::IndexConfig> config = ParseIndexConfig(flags);
  if (!config.ok()) return Fail(config.status().ToString().c_str());
  const nn::Matrix vectors =
      model.value().Encode(data.value().trajectories());
  Result<std::unique_ptr<core::AnnIndex>> index =
      core::CreateIndex(config.value(), vectors.cols());
  if (!index.ok()) return Fail(index.status().ToString().c_str());
  for (size_t i = 0; i < vectors.rows(); ++i) {
    index.value()->Add({vectors.Row(i), vectors.cols()});
  }
  const core::KnnResult result =
      index.value()->Query({vectors.Row(query), vectors.cols()}, k);
  std::printf("%zu nearest trajectories to #%zu (id %lld):\n", k, query,
              static_cast<long long>(data.value()[query].id));
  for (size_t i = 0; i < result.size(); ++i) {
    const size_t idx = result.ids[i];
    std::printf("  #%zu (id %lld), distance %.4f\n", idx,
                static_cast<long long>(data.value()[idx].id),
                std::sqrt(result.distances[i]));
  }
  return 0;
}

int CmdReconstruct(const Flags& flags) {
  if (!flags.Has("model") || !flags.Has("data")) {
    return Fail("reconstruct requires --model and --data");
  }
  Result<core::T2Vec> model = core::T2Vec::Load(flags.Get("model", ""));
  if (!model.ok()) return Fail(model.status().ToString().c_str());
  Result<traj::Dataset> data = traj::Dataset::Load(flags.Get("data", ""));
  if (!data.ok()) return Fail(data.status().ToString().c_str());

  const size_t query = static_cast<size_t>(flags.GetInt("query-index", 0));
  if (query >= data.value().size()) return Fail("query index out of range");
  const double drop = flags.GetDouble("drop", 0.6);

  Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 7)));
  const traj::Trajectory& dense = data.value()[query];
  const traj::Trajectory sparse = traj::Downsample(dense, drop, rng);
  const traj::Trajectory route = model.value().ReconstructRoute(sparse);

  std::printf("# original %zu points, kept %zu, reconstructed %zu cells\n",
              dense.size(), sparse.size(), route.size());
  for (const geo::Point& p : route.points) {
    std::printf("%.1f %.1f\n", p.x, p.y);
  }
  return 0;
}

// Drives the online embedding service closed-loop (each client keeps one
// request outstanding) and prints the service's metrics snapshot, so the
// micro-batching behavior is inspectable from the command line. A second
// phase loads every encoded vector into an EmbeddingStore under the
// configured index (--index/--nlist/--nprobe/...) and runs closed-loop kNN
// queries against it, so retrieval throughput is inspectable too.
int CmdServeBench(const Flags& flags) {
  if (!flags.Has("model") || !flags.Has("data")) {
    return Fail("serve-bench requires --model and --data");
  }
  Result<core::IndexConfig> index_config = ParseIndexConfig(flags);
  if (!index_config.ok()) {
    return Fail(index_config.status().ToString().c_str());
  }
  Result<core::T2Vec> model = core::T2Vec::Load(flags.Get("model", ""));
  if (!model.ok()) return Fail(model.status().ToString().c_str());
  Result<traj::Dataset> data = traj::Dataset::Load(flags.Get("data", ""));
  if (!data.ok()) return Fail(data.status().ToString().c_str());
  if (data.value().size() == 0) return Fail("dataset is empty");

  const size_t clients = static_cast<size_t>(flags.GetInt("clients", 8));
  const size_t requests = static_cast<size_t>(flags.GetInt("requests", 100));
  if (clients == 0 || requests == 0) {
    return Fail("--clients and --requests must be positive");
  }

  serve::ServiceOptions options;
  options.batch_window =
      std::chrono::microseconds(flags.GetInt("window-us", 500));
  options.max_batch = static_cast<size_t>(
      flags.GetInt("max-batch", static_cast<long>(clients)));
  options.queue_capacity = 4 * clients;
  options.quantized = flags.Has("quantized");
  if (options.quantized) std::printf("encoder: int8 quantized\n");
  serve::EmbeddingService service(&model.value(), options);

  const std::vector<traj::Trajectory>& trips = data.value().trajectories();
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  for (size_t c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      for (size_t r = 0; r < requests; ++r) {
        const traj::Trajectory& trip = trips[(c + r * clients) % trips.size()];
        (void)service.Submit(trip).get();
      }
    });
  }
  for (std::thread& w : workers) w.join();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  service.Shutdown();

  std::printf("%zu clients x %zu requests in %.3f s (%.1f req/s)\n", clients,
              requests, seconds,
              static_cast<double>(clients * requests) / seconds);
  std::printf("%s\n", service.metrics().ToJson().c_str());

  // kNN phase: every vector into a store under the configured index, then
  // the same closed-loop client shape against Knn.
  const nn::Matrix vectors = model.value().Encode(trips);
  serve::EmbeddingStore store(vectors.cols(), index_config.value());
  for (size_t i = 0; i < vectors.rows(); ++i) {
    if (Status status =
            store.Add(trips[i].id, {vectors.Row(i), vectors.cols()});
        !status.ok()) {
      return Fail(status.ToString().c_str());
    }
  }
  const size_t k = static_cast<size_t>(flags.GetInt("k", 10));
  const auto knn_start = std::chrono::steady_clock::now();
  std::vector<std::thread> queriers;
  for (size_t c = 0; c < clients; ++c) {
    queriers.emplace_back([&, c] {
      for (size_t r = 0; r < requests; ++r) {
        const size_t row = (c + r * clients) % vectors.rows();
        (void)store.Knn({vectors.Row(row), vectors.cols()}, k);
      }
    });
  }
  for (std::thread& w : queriers) w.join();
  const double knn_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    knn_start)
          .count();
  std::printf("knn: %zu clients x %zu queries (k=%zu) in %.3f s (%.1f q/s)\n",
              clients, requests, k, knn_seconds,
              static_cast<double>(clients * requests) / knn_seconds);
  std::printf("index: %s\n", store.Stats().ToJson().c_str());
  return 0;
}

// SIGINT flips this; the server loop polls it. sig_atomic_t + lock-free
// store is all a signal handler may touch.
volatile std::sig_atomic_t g_interrupted = 0;

void HandleSigint(int) { g_interrupted = 1; }

// Serves a model over TCP with WAL-backed ingestion: every insert is
// fsynced to <data-dir>/wal.log before it is acknowledged, and a restart
// replays the log back into the store (DESIGN.md §8).
int CmdServer(const Flags& flags) {
  if (!flags.Has("model") || !flags.Has("data-dir")) {
    return Fail("server requires --model and --data-dir");
  }
  Result<core::T2Vec> model = core::T2Vec::Load(flags.Get("model", ""));
  if (!model.ok()) return Fail(model.status().ToString().c_str());

  Result<core::IndexConfig> index_config = ParseIndexConfig(flags);
  if (!index_config.ok()) {
    return Fail(index_config.status().ToString().c_str());
  }
  serve::DurableStoreOptions store_options;
  store_options.compact_after_bytes = static_cast<uint64_t>(
      flags.GetInt("compact-bytes", 64 << 20));
  store_options.index_config = index_config.value();
  Result<std::unique_ptr<serve::DurableStore>> store =
      serve::DurableStore::Open(flags.Get("data-dir", ""),
                                model.value().config().hidden, store_options);
  if (!store.ok()) return Fail(store.status().ToString().c_str());
  std::fprintf(stderr,
               "store: %zu vectors (dim %zu, index %s), wal %llu bytes\n",
               store.value()->size(), store.value()->dim(),
               core::IndexKindName(index_config.value().kind),
               static_cast<unsigned long long>(store.value()->wal_bytes()));

  serve::ServerOptions options;
  options.port = static_cast<uint16_t>(flags.GetInt("port", 0));
  options.service.batch_window =
      std::chrono::microseconds(flags.GetInt("window-us", 500));
  options.service.max_batch =
      static_cast<size_t>(flags.GetInt("max-batch", 32));
  options.service.quantized = flags.Has("quantized");
  if (options.service.quantized) {
    std::fprintf(stderr, "encoder: int8 quantized\n");
  }
  // Overload governance (DESIGN.md §8.4): connection cap and reaping
  // timeouts for slow or dead peers.
  options.max_connections =
      static_cast<size_t>(flags.GetInt("max-conns", 64));
  options.idle_timeout =
      std::chrono::milliseconds(flags.GetInt("idle-timeout-ms", 30'000));
  options.read_timeout =
      std::chrono::milliseconds(flags.GetInt("read-timeout-ms", 5'000));
  options.drain_timeout =
      std::chrono::milliseconds(flags.GetInt("drain-ms", 2'000));
  serve::TcpServer server(&model.value(), store.value().get(), options);
  if (Status status = server.Start(); !status.ok()) {
    return Fail(status.ToString().c_str());
  }
  std::printf("listening on port %u\n", server.port());
  std::fflush(stdout);

  const long run_seconds = flags.GetInt("run-seconds", 0);
  std::signal(SIGINT, HandleSigint);
  const auto started = std::chrono::steady_clock::now();
  while (!g_interrupted) {
    if (run_seconds > 0 &&
        std::chrono::steady_clock::now() - started >=
            std::chrono::seconds(run_seconds)) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.Stop();
  std::printf("%s\n", server.StatsJson().c_str());
  return 0;
}

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: t2vec_cli "
      "<generate|train|encode|knn|reconstruct|serve-bench|server> "
      "[--flags]\n"
      "  generate    --out F [--count N] [--preset porto|harbin] [--seed S]\n"
      "  train       --data F --model F [--iters N] [--hidden H]\n"
      "              [--cell-size M] [--loss l1|l2|l3] [--no-pretrain]\n"
      "              [--checkpoint-dir D] [--checkpoint-every N]\n"
      "              [--resume SNAPSHOT|D]\n"
      "  encode      --model F --data F --out F\n"
      "  knn         --model F --data F [--query-index I] [--k K]\n"
      "              [index flags]\n"
      "  reconstruct --model F --data F [--query-index I] [--drop R]\n"
      "  serve-bench --model F --data F [--clients C] [--requests N]\n"
      "              [--window-us W] [--max-batch B] [--quantized] [--k K]\n"
      "              [index flags]\n"
      "  server      --model F --data-dir D [--port P] [--run-seconds S]\n"
      "              [--window-us W] [--max-batch B] [--compact-bytes N]\n"
      "              [--quantized] [--max-conns N] [--idle-timeout-ms T]\n"
      "              [--read-timeout-ms T] [--drain-ms T] [index flags]\n"
      "  index flags: --index exact|lsh|ivf [--nlist N] [--nprobe P]\n"
      "              [--ivf-iters I] [--lsh-tables T] [--lsh-bits B]\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    PrintUsage();
    return 1;
  }
  const std::string command = argv[1];
  const Flags flags(argc, argv, 2);
  if (command == "generate") return CmdGenerate(flags);
  if (command == "train") return CmdTrain(flags);
  if (command == "encode") return CmdEncode(flags);
  if (command == "knn") return CmdKnn(flags);
  if (command == "reconstruct") return CmdReconstruct(flags);
  if (command == "serve-bench") return CmdServeBench(flags);
  if (command == "server") return CmdServer(flags);
  PrintUsage();
  return 1;
}
