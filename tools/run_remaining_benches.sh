#!/bin/bash
# Priority-ordered run of the remaining experiment benches (everything the
# fig5 sweep does not cover), printing each bench's output in sequence.
# Usage: tools/run_remaining_benches.sh [build-dir]  (tee to bench_output.txt
# to keep a transcript; that file is gitignored).
set -euo pipefail
cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
for b in bench_table2_datasets bench_fig6_efficiency bench_table4_downsampling \
         bench_table7_loss_ablation bench_fig7_trainsize bench_table9_hidden \
         bench_table6_crossdist bench_table5_distortion bench_table3_dbsize \
         bench_table8_cellsize bench_micro_distance bench_micro_nn; do
  echo "===== ${BUILD_DIR}/bench/$b ====="
  "./${BUILD_DIR}/bench/$b"
done
