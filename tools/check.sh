#!/usr/bin/env bash
# Staged verification pipeline for the determinism contract (DESIGN.md §5)
# and the durability contract (DESIGN.md §7).
#
# Usage: tools/check.sh [build-dir]
#
#   stage 1  build + ctest     full suite, warnings as errors (T2VEC_WERROR)
#   stage 2  lint              tools/lint_determinism.py over src/ bench/ tools/
#   stage 3  robustness +      ctest -L 'robustness|concurrency': fault
#            concurrency       injection, corruption matrix, kill-and-resume,
#                              WAL replay, the TCP server's hostile-bytes,
#                              hostile-peer (idle / slowloris / mid-response
#                              RST) and kill-mid-ingestion scenarios, and the
#                              annotated sync-primitive suite; then the chaos
#                              soak re-runs under a fixed fault-seed matrix
#                              (T2VEC_CHAOS_SEED) so every gate exercises
#                              several randomized fault schedules
#   stage 4  SIMD tiers        ctest -L kernel twice, under T2VEC_SIMD=scalar
#                              and T2VEC_SIMD=avx2, so both dispatch tiers
#                              (and the unsupported-ISA clamp) stay green
#   stage 5  clang-tidy        -DT2VEC_CLANG_TIDY=ON build of src/ (skipped
#                              with a notice when clang-tidy is not installed)
#   stage 6  thread safety     -DT2VEC_THREAD_SAFETY=ON clang build of src/:
#                              Clang Thread Safety Analysis over the annotated
#                              primitives in common/sync.h, warnings as errors
#                              (skipped with a notice when clang++ is not
#                              installed; CI always runs it)
#   stage 7  TSan              ctest -L determinism under -fsanitize=thread,
#                              then -L concurrency at T2VEC_THREADS=1 and 8
#                              (thread-pool call sites, serving dispatch,
#                              background compaction, connection fan-out, and
#                              the incremental AnnIndex backends — tests ride
#                              labels, no hand-maintained list)
#   stage 8  UBSan             full ctest under -fsanitize=undefined with
#                              -fno-sanitize-recover: any UB aborts the test
#
# Each compiler/sanitizer tier builds in its own tree (<build-dir>-tidy,
# -tsa, -tsan, -ubsan) so instrumented or differently-flagged objects never
# mix with the release ones. Stages run in increasing cost order; the first
# failure stops the pipeline.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
TIDY_DIR="${BUILD_DIR}-tidy"
TSA_DIR="${BUILD_DIR}-tsa"
TSAN_DIR="${BUILD_DIR}-tsan"
UBSAN_DIR="${BUILD_DIR}-ubsan"
JOBS="$(nproc 2>/dev/null || echo 2)"

echo "== stage 1/8: configure/build/ctest (${BUILD_DIR}) =="
cmake -B "${BUILD_DIR}" -S . -DT2VEC_WERROR=ON >/dev/null
cmake --build "${BUILD_DIR}" -j "${JOBS}"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"

echo "== stage 2/8: determinism lint (src/ bench/ tools/) =="
python3 tools/lint_determinism.py

echo "== stage 3/8: robustness- and concurrency-labeled tests (${BUILD_DIR}) =="
ctest --test-dir "${BUILD_DIR}" -L 'robustness|concurrency' \
  --output-on-failure -j "${JOBS}"
# Chaos soak seed matrix: the label run above already covered the default
# seed (1); each extra seed arms a different randomized schedule of socket +
# WAL faults around the mid-run server restart.
for seed in 2 3; do
  echo "-- chaos soak, T2VEC_CHAOS_SEED=${seed} --"
  T2VEC_CHAOS_SEED="${seed}" ctest --test-dir "${BUILD_DIR}" -R chaos_test \
    --output-on-failure
done

echo "== stage 4/8: kernel-labeled tests under each SIMD tier (${BUILD_DIR}) =="
# On machines without AVX2 the avx2 run degrades to scalar via the dispatch
# clamp — that fallback (no SIGILL, tier logged) is itself under test.
T2VEC_SIMD=scalar ctest --test-dir "${BUILD_DIR}" -L kernel \
  --output-on-failure -j "${JOBS}"
T2VEC_SIMD=avx2 ctest --test-dir "${BUILD_DIR}" -L kernel \
  --output-on-failure -j "${JOBS}"

echo "== stage 5/8: clang-tidy (src/) =="
if command -v clang-tidy >/dev/null 2>&1; then
  cmake -B "${TIDY_DIR}" -S . -DT2VEC_WERROR=ON -DT2VEC_CLANG_TIDY=ON \
    >/dev/null
  cmake --build "${TIDY_DIR}" -j "${JOBS}" --target t2vec_common t2vec_nn \
    t2vec_geo t2vec_traj t2vec_dist t2vec_core t2vec_eval t2vec_serve
else
  echo "clang-tidy not installed; stage skipped (config: .clang-tidy)"
fi

echo "== stage 6/8: Clang Thread Safety Analysis (src/) =="
# Proves the lock discipline at compile time: every GUARDED_BY member is
# only touched with its mutex held, every acquire is released on all paths
# (common/sync.h, DESIGN.md §5.4). Library targets only — tests deliberately
# misuse locks (TryLock probes) in ways the analysis would reject.
if command -v clang++ >/dev/null 2>&1; then
  cmake -B "${TSA_DIR}" -S . -DCMAKE_CXX_COMPILER=clang++ \
    -DT2VEC_WERROR=ON -DT2VEC_THREAD_SAFETY=ON >/dev/null
  cmake --build "${TSA_DIR}" -j "${JOBS}" --target t2vec_common t2vec_nn \
    t2vec_geo t2vec_traj t2vec_dist t2vec_core t2vec_eval t2vec_serve
else
  echo "clang++ not installed; stage skipped (CI runs it: clang-thread-safety)"
fi

echo "== stage 7/8: TSan on determinism + concurrency tests (${TSAN_DIR}) =="
cmake -B "${TSAN_DIR}" -S . -DT2VEC_WERROR=ON -DT2VEC_SANITIZE=thread \
  >/dev/null
cmake --build "${TSAN_DIR}" -j "${JOBS}"
ctest --test-dir "${TSAN_DIR}" -L determinism --output-on-failure -j "${JOBS}"
# The concurrency label runs twice: single-threaded pools catch lost-wakeup /
# shutdown-ordering bugs that contention masks, wide pools catch races.
T2VEC_THREADS=1 ctest --test-dir "${TSAN_DIR}" -L concurrency \
  --output-on-failure -j "${JOBS}"
T2VEC_THREADS=8 ctest --test-dir "${TSAN_DIR}" -L concurrency \
  --output-on-failure -j "${JOBS}"

echo "== stage 8/8: UBSan (-fno-sanitize-recover) full suite (${UBSAN_DIR}) =="
cmake -B "${UBSAN_DIR}" -S . -DT2VEC_WERROR=ON -DT2VEC_SANITIZE=undefined \
  >/dev/null
cmake --build "${UBSAN_DIR}" -j "${JOBS}"
ctest --test-dir "${UBSAN_DIR}" --output-on-failure -j "${JOBS}"

echo "== all checks passed =="
