#!/usr/bin/env bash
# Tier-1 verification plus the kernel determinism contract under TSan.
#
# Usage: tools/check.sh [build-dir]
#
# 1. Configure + build + full ctest in <build-dir> (default: build).
# 2. Configure a second tree with -DT2VEC_SANITIZE=thread and run the
#    kernel / thread-pool tests — the tests that exercise the blocked GEMM
#    row partitioning and the fused-pack double-checked locking — plus the
#    serving and vector-index tests (concurrent Submit vs dispatcher,
#    incremental Add vs queries), so data races in the hot path fail CI
#    rather than corrupting training runs or served results.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
TSAN_DIR="${BUILD_DIR}-tsan"
JOBS="$(nproc 2>/dev/null || echo 2)"

echo "== tier-1: configure/build/ctest (${BUILD_DIR}) =="
cmake -B "${BUILD_DIR}" -S . >/dev/null
cmake --build "${BUILD_DIR}" -j "${JOBS}"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"

echo "== tsan: kernel + thread-pool + serving tests (${TSAN_DIR}) =="
cmake -B "${TSAN_DIR}" -S . -DT2VEC_SANITIZE=thread >/dev/null
cmake --build "${TSAN_DIR}" -j "${JOBS}" \
  --target matrix_test fused_kernels_test thread_pool_test \
           serve_test vec_index_test
"${TSAN_DIR}/tests/matrix_test"
"${TSAN_DIR}/tests/fused_kernels_test"
"${TSAN_DIR}/tests/thread_pool_test"
"${TSAN_DIR}/tests/serve_test"
"${TSAN_DIR}/tests/vec_index_test"

echo "== all checks passed =="
