#!/usr/bin/env python3
"""Determinism linter for the t2vec tree.

The repo's core contract is that parallel, fused, batched, and served paths
are bit-identical to their serial references (DESIGN.md §5). Runtime tests
enforce that contract per call site; this linter enforces it structurally,
at review time, by banning the source patterns that historically break it:

  raw-sort        std::sort / std::stable_sort / std::partial_sort /
                  std::partial_sort_copy / std::nth_element anywhere except
                  common/sort.h and common/order.h. Unpinned sorts place
                  comparator-equivalent elements in an implementation-defined
                  order, so anything downstream of the permutation (batch
                  composition, kNN tie order) silently varies per toolchain.
                  Use DeterministicSort / TotalOrderPartialSort /
                  TotalOrderNthElement from common/sort.h.
  raw-rng         rand()/srand(), std::random_device, the <random> engines
                  (mt19937, minstd_rand, default_random_engine, ...) and
                  drand48 outside common/rng.*. All stochastic code must draw
                  from an explicitly seeded t2vec::Rng so runs reproduce.
  wall-clock      std::chrono::system_clock, std::chrono::high_resolution_clock
                  (may alias system_clock), time(nullptr/0/NULL), clock(),
                  gettimeofday. Wall-clock reads in numeric code paths make
                  output depend on when it ran; timing code uses the monotonic
                  steady_clock (common/stopwatch.h), which is allowed.
  unordered-iter  Range-for or .begin()/.end() iteration over a variable
                  declared as std::unordered_map / std::unordered_set in the
                  same file. Unordered iteration order is implementation- and
                  run-dependent; when it feeds serialized or returned data the
                  output is nondeterministic. Iterate a sorted copy, or
                  suppress with a reason when order provably cannot reach any
                  output (e.g. the results are re-sorted downstream).
  raw-index-ctor  Direct construction of a concrete retrieval index
                  (VectorIndex, LshIndex, IvfIndex) outside the core index
                  sources. Serving and tooling paths must build indexes via
                  core::CreateIndex(IndexConfig, dim) so the backend stays a
                  config decision (and snapshot restore keeps working);
                  evaluation code that genuinely needs the exact scan (e.g.
                  VectorIndex::RankOf ground truth) suppresses with a
                  reason.
  raw-ofstream    std::ofstream / std::fstream / std::fopen, and the raw
                  POSIX file-mapping/write path (::open, ::write, ::fsync,
                  ::fdatasync, ::rename, ::ftruncate, ::mmap, ::munmap),
                  outside common/fs.* and common/serialize.h. Direct writes
                  bypass the durability layer (DESIGN.md §7): no atomic
                  tmp-file + rename publication, no CRC32C trailer, so a
                  crash mid-write leaves a truncated artifact at the final
                  path; ad-hoc mappings bypass MmapFile's lifetime and
                  CRC-verification rules. Binary artifacts go through
                  BinaryWriter; text artifacts render into a std::string and
                  publish via WriteFileAtomic; logs append through
                  AppendOnlyFile (reads: BinaryReader / ReadFileToString /
                  MmapFile). Only global-namespace ::calls match, so socket
                  I/O (::send, ::recv, ::close) and qualified names
                  (std::remove, stream.write(...)) never fire. fopen is
                  banned in both directions — string literals are blanked
                  before matching, so the linter cannot tell "r" from "w";
                  suppress a genuine read-only use with an allow comment.
  raw-intrinsics  x86 SIMD intrinsics (<immintrin.h> and friends, _mm*()
                  calls, __m128/__m256/__m512 vector types) anywhere except
                  src/nn/kernels_avx2.cc. Hand-vectorized code scattered
                  through the tree cannot be audited for bit-identity with
                  its scalar twin; every SIMD path must live behind the
                  nn/kernels.h dispatch table, where simd_kernels_test
                  memcmp-compares the tiers and T2VEC_SIMD selects them.
  raw-mutex       std::mutex / std::shared_mutex / std::condition_variable
                  (and the recursive/timed/_any variants), plus lock_guard /
                  unique_lock / shared_lock / scoped_lock, anywhere except
                  common/sync.*. Raw primitives are invisible to the Clang
                  Thread Safety Analysis gate (-DT2VEC_THREAD_SAFETY=ON,
                  DESIGN.md §5.4): only the annotated t2vec::sync wrappers
                  let a Clang build prove at compile time that guarded
                  state is touched with the right lock held.
  bad-allow       A lint:allow comment with an unknown rule id or no reason.

Escape hatch — on the flagged line or the line directly above it:

    // lint:allow(raw-sort) keys are unique, any sort yields the same bytes

The rule id must be one of the rules above and the reason must be non-empty;
`lint:allow(a,b) reason` suppresses several rules at once.

Usage:
    tools/lint_determinism.py [--json FILE] [--quiet] [paths...]

With no paths, scans src/, bench/, and tools/ under the repo root (the
parent of this script's directory). Exits 1 if any violation is found and
0 otherwise; --json writes a machine-readable report either way.
"""

import argparse
import json
import os
import re
import sys

# ---------------------------------------------------------------------------
# Rule table
# ---------------------------------------------------------------------------

# Each rule: id -> (description, [compiled patterns], {exempt relpaths}).
# Patterns are matched against comment-stripped source lines.


def _c(*patterns):
    return [re.compile(p) for p in patterns]


RULES = {
    "raw-sort": {
        "description": (
            "raw std::sort/std::stable_sort/std::partial_sort/"
            "std::partial_sort_copy/std::nth_element outside common/sort.h "
            "and common/order.h; use DeterministicSort/TotalOrderPartialSort/"
            "TotalOrderNthElement"
        ),
        "patterns": _c(
            r"\bstd\s*::\s*(?:stable_sort|partial_sort_copy|partial_sort|"
            r"nth_element|sort)\s*\("
        ),
        "exempt": {"src/common/sort.h", "src/common/order.h"},
    },
    "raw-rng": {
        "description": (
            "raw C/std RNG (rand, srand, std::random_device, <random> "
            "engines, drand48) outside common/rng.*; use a seeded t2vec::Rng"
        ),
        "patterns": _c(
            r"\brand\s*\(\s*\)",
            r"\bsrand\s*\(",
            r"\bstd\s*::\s*random_device\b",
            r"\bstd\s*::\s*(?:mt19937(?:_64)?|minstd_rand0?|"
            r"default_random_engine|ranlux(?:24|48)(?:_base)?|knuth_b)\b",
            r"\b[dlm]rand48\s*\(",
        ),
        "exempt": {"src/common/rng.h", "src/common/rng.cc"},
    },
    "wall-clock": {
        "description": (
            "wall-clock read (system_clock, high_resolution_clock, "
            "time(nullptr), clock(), gettimeofday); numeric paths must not "
            "depend on when they run — use steady_clock for timing"
        ),
        "patterns": _c(
            r"\bstd\s*::\s*chrono\s*::\s*system_clock\b",
            r"\bstd\s*::\s*chrono\s*::\s*high_resolution_clock\b",
            r"(?<![\w:])time\s*\(\s*(?:NULL|nullptr|0)\s*\)",
            r"(?<![\w:])clock\s*\(\s*\)",
            r"\bgettimeofday\s*\(",
        ),
        "exempt": set(),
    },
    "unordered-iter": {
        "description": (
            "iteration over a std::unordered_map/std::unordered_set; "
            "iteration order is implementation-defined and must not feed "
            "serialized or returned data — iterate a sorted copy instead"
        ),
        # Handled structurally (declaration tracking), no flat patterns.
        "patterns": [],
        "exempt": set(),
    },
    "raw-index-ctor": {
        "description": (
            "direct construction of a concrete retrieval index "
            "(VectorIndex, LshIndex, IvfIndex) outside the core index "
            "sources; build through core::CreateIndex(IndexConfig, dim) so "
            "the backend stays a config decision"
        ),
        # The class name followed by an optional variable name and a ctor
        # argument list: `VectorIndex index{...}`, `LshIndex lsh(...)`,
        # `new IvfIndex(...)`. Qualified member uses (`VectorIndex::RankOf`)
        # never match — `::` follows the name instead of `(`/`{`.
        "patterns": _c(
            r"\b(?:VectorIndex|LshIndex|IvfIndex)\b\s*(?:\w+\s*)?[({]",
        ),
        # The classes' own declarations/definitions and the factory.
        "exempt": {
            "src/core/vec_index.h",
            "src/core/vec_index.cc",
            "src/core/ivf_index.h",
            "src/core/ivf_index.cc",
            "src/core/ann_index.h",
            "src/core/ann_index.cc",
        },
    },
    "raw-ofstream": {
        "description": (
            "direct std::ofstream/std::fstream/fopen or raw POSIX "
            "file-mapping/write path (::open/::write/::fsync/::fdatasync/"
            "::rename/::ftruncate/::mmap/::munmap) outside common/fs.* and "
            "common/serialize.h bypasses atomic publication, CRC framing, "
            "and MmapFile lifetime rules; use BinaryWriter, WriteFileAtomic, "
            "AppendOnlyFile, or MmapFile (common/fs.h)"
        ),
        "patterns": _c(
            r"\bstd\s*::\s*ofstream\b",
            r"\bstd\s*::\s*fstream\b",
            r"\bfopen\s*\(",
            # Global-namespace POSIX file-write/mapping calls only:
            # `(?<![\w:])::` rejects qualified names (std::remove,
            # ofstream::write) and the bare-call / member-call forms, so
            # socket I/O (::send, ::recv, ::close) and buffer.write(...)
            # never fire.
            r"(?<![\w:])::\s*(?:open|write|fsync|fdatasync|rename|"
            r"ftruncate|mmap|munmap)\s*\(",
        ),
        "exempt": {
            "src/common/fs.h",
            "src/common/fs.cc",
            "src/common/serialize.h",
        },
    },
    "raw-intrinsics": {
        "description": (
            "raw x86 SIMD intrinsics (<immintrin.h>, _mm*() calls, "
            "__m128/__m256/__m512 types) outside src/nn/kernels_avx2.cc; "
            "vector code must sit behind the nn/kernels.h dispatch table "
            "so it keeps a memcmp-verified scalar twin"
        ),
        "patterns": _c(
            r"#\s*include\s*<\s*(?:immintrin|x86intrin|xmmintrin|emmintrin|"
            r"pmmintrin|tmmintrin|smmintrin|nmmintrin|wmmintrin|"
            r"avxintrin|avx2intrin|avx512\w*intrin|fmaintrin)\.h\s*>",
            r"\b_mm(?:256|512)?_\w+\s*\(",
            r"\b__m(?:128|256|512)[di]?\b",
        ),
        "exempt": {"src/nn/kernels_avx2.cc"},
    },
    "raw-mutex": {
        "description": (
            "raw std::mutex/shared_mutex/condition_variable or "
            "lock_guard/unique_lock/shared_lock/scoped_lock outside "
            "common/sync.*; use the annotated t2vec::sync::Mutex, "
            "MutexLock, ReaderMutexLock, and CondVar so the Clang Thread "
            "Safety Analysis gate sees every acquire and guarded access"
        ),
        "patterns": _c(
            r"\bstd\s*::\s*(?:(?:recursive_|shared_)?(?:timed_)?mutex|"
            r"condition_variable(?:_any)?|lock_guard|unique_lock|"
            r"shared_lock|scoped_lock)\b"
        ),
        "exempt": {"src/common/sync.h", "src/common/sync.cc"},
    },
    "bad-allow": {
        "description": (
            "malformed lint:allow comment (unknown rule id or missing reason)"
        ),
        "patterns": [],
        "exempt": set(),
    },
}

SOURCE_EXTENSIONS = {".cc", ".cpp", ".cxx", ".h", ".hpp", ".inl"}

ALLOW_RE = re.compile(r"lint:allow\(([^)]*)\)\s*:?\s*(.*)")

UNORDERED_DECL_RE = re.compile(
    r"\bstd\s*::\s*unordered_(?:map|set)\s*<.*>\s*[&*]?\s*(\w+)\s*(?:;|=|\{|\))"
)

# ---------------------------------------------------------------------------
# Comment stripping (preserves line structure so line numbers survive)
# ---------------------------------------------------------------------------


_RAW_STRING_PREFIX_RE = re.compile(r"(?:u8|[uUL])?R\Z")


def _raw_string_end(text, i):
    """For a `"` at index i opening a raw string literal (R"delim(...)delim"),
    returns the index one past the closing quote; None when the `"` is not a
    raw-string opener. Raw strings have no escapes and may contain `"`, so
    the generic str state cannot parse them — naive quote-pairing would flip
    code and string data for the rest of the file."""
    m = _RAW_STRING_PREFIX_RE.search(text, max(0, i - 3), i)
    if not m:
        return None
    start = m.start()
    if start > 0 and (text[start - 1].isalnum() or text[start - 1] == "_"):
        return None  # Identifier ending in R, not an encoding prefix.
    paren = text.find("(", i + 1)
    if paren == -1:
        return None
    delim = text[i + 1:paren]
    # The standard caps the delimiter at 16 chars and bans whitespace,
    # parens, and backslash; anything else means this is not a raw string.
    if len(delim) > 16 or any(ch in ' \t\n\\)"' for ch in delim):
        return None
    terminator = ")" + delim + '"'
    end = text.find(terminator, paren + 1)
    return len(text) if end == -1 else end + len(terminator)


def strip_comments(text):
    """Blanks out //-comments, /*...*/ blocks, and string/char literals
    (including raw string literals, which may contain unescaped quotes)."""
    out = []
    i = 0
    n = len(text)
    state = "code"  # code | line | block | str | chr
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                raw_end = _raw_string_end(text, i)
                if raw_end is not None:
                    for k in range(i, raw_end):
                        out.append("\n" if text[k] == "\n" else " ")
                    i = raw_end
                    continue
                state = "str"
                out.append('"')
                i += 1
                continue
            if c == "'":
                state = "chr"
                out.append("'")
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state == "str":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "code"
                out.append('"')
            elif c == "\n":  # Unterminated; recover.
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "chr":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == "'":
                state = "code"
                out.append("'")
            elif c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        i += 1
    return "".join(out)


# ---------------------------------------------------------------------------
# Per-file scan
# ---------------------------------------------------------------------------


def parse_allows(raw_lines):
    """Returns ({line_no: set(rule_ids)}, [bad_allow_violations])."""
    allows = {}
    bad = []
    for no, line in enumerate(raw_lines, start=1):
        m = ALLOW_RE.search(line)
        if not m:
            continue
        ids = {part.strip() for part in m.group(1).split(",") if part.strip()}
        reason = m.group(2).strip()
        unknown = sorted(i for i in ids if i not in RULES or i == "bad-allow")
        if not ids or unknown:
            bad.append((no, line.strip(),
                        "unknown rule id(s): " + (", ".join(unknown) or "<none>")))
            continue
        if not reason:
            bad.append((no, line.strip(), "missing reason"))
            continue
        allows[no] = ids
    return allows, bad


def unordered_iteration_patterns(stripped_lines):
    """Finds unordered container names declared in the file and returns
    compiled patterns that match range-for or begin()-iteration over them."""
    names = set()
    for line in stripped_lines:
        for m in UNORDERED_DECL_RE.finditer(line):
            names.add(m.group(1))
    patterns = []
    for name in sorted(names):
        patterns.append(re.compile(
            r"for\s*\(.*:\s*(?:\w+(?:\.|->))*" + re.escape(name) + r"\s*\)"))
        # Only begin(): a lone `.end()` is the idiomatic find()-miss check,
        # not iteration.
        patterns.append(re.compile(
            re.escape(name) + r"\s*\.\s*c?r?begin\s*\(\s*\)"))
    return patterns


def scan_file(path, relpath):
    with open(path, "r", encoding="utf-8", errors="replace") as f:
        raw = f.read()
    raw_lines = raw.split("\n")
    stripped_lines = strip_comments(raw).split("\n")

    allows, bad_allows = parse_allows(raw_lines)
    violations = []
    for no, line, why in bad_allows:
        violations.append({
            "file": relpath, "line": no, "rule": "bad-allow",
            "snippet": line, "message": why,
        })

    def allowed(rule, no):
        for cand in (no, no - 1):
            if rule in allows.get(cand, set()):
                return True
        return False

    def check(rule, pattern, no, line):
        if relpath in RULES[rule]["exempt"]:
            return
        if not pattern.search(line):
            return
        if allowed(rule, no):
            return
        violations.append({
            "file": relpath, "line": no, "rule": rule,
            "snippet": raw_lines[no - 1].strip(),
            "message": RULES[rule]["description"],
        })

    flat = [(rule, p) for rule, spec in RULES.items()
            for p in spec["patterns"]]
    iter_patterns = unordered_iteration_patterns(stripped_lines)

    for no, line in enumerate(stripped_lines, start=1):
        for rule, pattern in flat:
            check(rule, pattern, no, line)
        for pattern in iter_patterns:
            check("unordered-iter", pattern, no, line)
    return violations


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def collect_files(roots):
    files = []
    for root in roots:
        if os.path.isfile(root):
            files.append(root)
            continue
        for dirpath, _, names in os.walk(root):
            for name in sorted(names):
                if os.path.splitext(name)[1] in SOURCE_EXTENSIONS:
                    files.append(os.path.join(dirpath, name))
    return sorted(files)


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("paths", nargs="*",
                        help="files or directories to scan "
                             "(default: src/ bench/ tools/ under repo root)")
    parser.add_argument("--json", metavar="FILE",
                        help="write a machine-readable report to FILE "
                             "('-' for stdout)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the human-readable listing")
    args = parser.parse_args(argv)

    repo_root = os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    if args.paths:
        roots = [os.path.abspath(p) for p in args.paths]
    else:
        roots = [os.path.join(repo_root, d) for d in ("src", "bench", "tools")]

    files = collect_files(roots)
    all_violations = []
    for path in files:
        rel = os.path.relpath(path, repo_root)
        if rel.startswith(".."):
            rel = path  # Outside the repo (e.g. fixture dirs in tests).
        all_violations.extend(scan_file(path, rel))

    all_violations.sort(key=lambda v: (v["file"], v["line"], v["rule"]))

    if not args.quiet:
        for v in all_violations:
            print(f"{v['file']}:{v['line']}: [{v['rule']}] {v['message']}")
            print(f"    {v['snippet']}")
        print(f"lint_determinism: {len(files)} files scanned, "
              f"{len(all_violations)} violation(s)")

    if args.json:
        report = {
            "files_scanned": len(files),
            "rules": {rid: spec["description"]
                      for rid, spec in RULES.items()},
            "violations": all_violations,
        }
        payload = json.dumps(report, indent=2, sort_keys=True)
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w", encoding="utf-8") as f:
                f.write(payload + "\n")

    return 1 if all_violations else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
