// Reproduces Figure 5 (a)-(f): k-NN precision versus dropping rate (top
// row) and distorting rate (bottom row), for k = 20, 30, 40.
//
// Paper shape: precision decreases with both rates for every method; EDR
// and LCSS track each other with EDR collapsing at r1 = 0.6; EDwP clearly
// better; t2vec consistently on top. Distortion hurts everyone less than
// downsampling.

#include "bench_common.h"
#include "dist/classic.h"
#include "dist/edwp.h"

int main() {
  using namespace t2vec;
  using namespace t2vec::bench;

  const eval::ExperimentData data = PortoData();
  const core::T2Vec model = PortoModel(data);
  dist::EdrMeasure edr(model.config().cell_size);
  dist::LcssMeasure lcss(model.config().cell_size);
  dist::EdwpMeasure edwp;

  // Paper: 1000 queries, 10k database; scaled.
  const size_t num_queries = eval::Scaled(50, 16);
  const size_t db_size = eval::Scaled(1200, 128);
  T2VEC_CHECK(data.test.size() >= num_queries + db_size);
  std::vector<traj::Trajectory> queries(
      data.test.trajectories().begin(),
      data.test.trajectories().begin() + num_queries);
  std::vector<traj::Trajectory> database(
      data.test.trajectories().begin() + num_queries,
      data.test.trajectories().begin() + num_queries + db_size);

  const std::vector<double> rates = {0.2, 0.3, 0.4, 0.5, 0.6};

  for (size_t k : {20u, 30u, 40u}) {
    eval::Table drop_table(
        "Fig. 5 (top): k-NN precision vs. dropping rate r1, k = " +
            std::to_string(k),
        {"r1", "EDR", "LCSS", "EDwP", "t2vec"});
    for (double r1 : rates) {
      Rng rng(300 + static_cast<uint64_t>(100 * r1) + k);
      drop_table.AddRow(
          std::to_string(r1).substr(0, 3),
          {eval::KnnPrecisionOfMeasure(edr, queries, database, k, r1, 0.0,
                                       rng),
           eval::KnnPrecisionOfMeasure(lcss, queries, database, k, r1, 0.0,
                                       rng),
           eval::KnnPrecisionOfMeasure(edwp, queries, database, k, r1, 0.0,
                                       rng),
           eval::KnnPrecisionOfT2Vec(model, queries, database, k, r1, 0.0,
                                     rng)},
          3);
    }
    drop_table.Print();
  }

  for (size_t k : {20u, 30u, 40u}) {
    eval::Table distort_table(
        "Fig. 5 (bottom): k-NN precision vs. distorting rate r2, k = " +
            std::to_string(k),
        {"r2", "EDR", "LCSS", "EDwP", "t2vec"});
    for (double r2 : rates) {
      Rng rng(400 + static_cast<uint64_t>(100 * r2) + k);
      distort_table.AddRow(
          std::to_string(r2).substr(0, 3),
          {eval::KnnPrecisionOfMeasure(edr, queries, database, k, 0.0, r2,
                                       rng),
           eval::KnnPrecisionOfMeasure(lcss, queries, database, k, 0.0, r2,
                                       rng),
           eval::KnnPrecisionOfMeasure(edwp, queries, database, k, 0.0, r2,
                                       rng),
           eval::KnnPrecisionOfT2Vec(model, queries, database, k, 0.0, r2,
                                     rng)},
          3);
    }
    distort_table.Print();
  }
  return 0;
}
