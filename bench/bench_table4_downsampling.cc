// Reproduces Table IV: mean rank of the most-similar-trajectory search as
// the dropping rate r1 varies in [0.2, 0.6], with a fixed database size.
//
// Paper shape: EDR degrades fastest; LCSS/vRNN/CMS are poor throughout;
// EDwP is clearly better but jumps at r1 = 0.6; t2vec stays lowest by a
// large margin at every dropping rate.

#include <memory>

#include "bench_common.h"
#include "core/vrnn.h"
#include "dist/classic.h"
#include "dist/cms.h"
#include "dist/edwp.h"
#include "traj/tokenizer.h"

int main() {
  using namespace t2vec;
  using namespace t2vec::bench;

  const eval::ExperimentData data = PortoData();
  const core::T2Vec model = PortoModel(data);
  core::VRnn vrnn =
      eval::GetOrTrainVRnn("porto_vrnn", data.train.trajectories(),
                           model.vocab(), model.config(),
                           bench::VRnnIterations());

  const std::vector<double> r1_values = {0.2, 0.3, 0.4, 0.5, 0.6};
  const size_t num_queries = NumQueries();
  const size_t distractors = DefaultDbDistractors();

  const double cell = model.config().cell_size;
  dist::EdrMeasure edr(cell);
  dist::LcssMeasure lcss(cell);
  dist::CmsMeasure cms(&model.vocab());
  dist::EdwpMeasure edwp;

  eval::Table table("Table IV: mean rank vs. dropping rate r1 (Porto-like, "
                    "database " + std::to_string(num_queries + distractors) +
                        ")",
                    {"r1", "EDR", "LCSS", "CMS", "vRNN", "EDwP", "t2vec"});

  for (double r1 : r1_values) {
    eval::MssData mss = eval::BuildMss(data.test, num_queries, distractors);
    Rng rng(1000 + static_cast<uint64_t>(r1 * 100));
    eval::TransformMss(&mss, r1, /*r2=*/0.0, rng);

    table.AddRow(std::to_string(r1).substr(0, 3),
                 {eval::MeanRankOfMeasure(edr, mss),
                  eval::MeanRankOfMeasure(lcss, mss),
                  eval::MeanRankOfMeasure(cms, mss),
                  eval::MeanRankOfVRnn(vrnn, model.vocab(), mss),
                  eval::MeanRankOfMeasure(edwp, mss),
                  eval::MeanRankOfT2Vec(model, mss)});
  }
  table.Print();
  return 0;
}
