// Extension ablation (not in the paper): does a global-attention decoder
// (DESIGN.md §4.0) change representation quality at a fixed training
// budget? The paper's architecture compresses the source into the final
// hidden state only; attention gives the decoder direct access to encoder
// outputs, which weakens the pressure on v — the interesting question is
// whether v still improves.

#include "bench_common.h"

int main() {
  using namespace t2vec;
  using namespace t2vec::bench;

  const eval::ExperimentData data = PortoData();
  const size_t num_queries = NumQueries();
  const size_t distractors = eval::Scaled(2000, 128);

  eval::Table table(
      "Extension ablation: attention decoder (Porto-like, fixed budget)",
      {"Decoder", "MR@r1=0.5", "MR@r1=0.6", "train time (s)"});

  for (bool attention : {false, true}) {
    core::T2VecConfig config = eval::DefaultBenchConfig();
    config.use_attention = attention;
    config.max_iterations = AblationIterations();
    config.validate_every = config.max_iterations + 1;

    core::TrainStats stats;
    // Attention models cannot be cached (no serialization); train inline.
    const core::T2Vec model =
        attention ? core::T2Vec::Train(data.train.trajectories(), config,
                                       &stats)
                  : eval::GetOrTrainModel("ablate_plain",
                                          data.train.trajectories(), config,
                                          &stats);

    std::vector<double> row;
    for (double r1 : {0.5, 0.6}) {
      eval::MssData mss = eval::BuildMss(data.test, num_queries, distractors);
      Rng rng(11000 + static_cast<uint64_t>(r1 * 100));
      eval::TransformMss(&mss, r1, 0.0, rng);
      row.push_back(eval::MeanRankOfT2Vec(model, mss));
    }
    row.push_back(stats.train_seconds);
    table.AddRow(attention ? "attention" : "final-hidden (paper)", row);
  }
  table.Print();
  return 0;
}
