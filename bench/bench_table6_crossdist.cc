// Reproduces Table VI: mean cross-distance deviation for varying dropping
// rate r1 and distorting rate r2 (t2vec, EDwP, EDR).
//
// Paper shape: t2vec's deviation stays smallest and grows slowest in r1;
// EDR's deviation under downsampling explodes (it pays one edit per dropped
// point); under distortion the three methods stay within the same order of
// magnitude, with t2vec <= EDwP <= EDR.

#include "bench_common.h"
#include "dist/classic.h"
#include "dist/edwp.h"

int main() {
  using namespace t2vec;
  using namespace t2vec::bench;

  const eval::ExperimentData data = PortoData();
  const core::T2Vec model = PortoModel(data);
  dist::EdrMeasure edr(model.config().cell_size);
  dist::EdwpMeasure edwp;

  const size_t num_pairs = eval::Scaled(300, 48);  // Paper: 10,000 pairs.
  Rng pair_rng(31);
  const auto pairs = eval::MakeCrossPairs(data.test, num_pairs, pair_rng);

  const std::vector<double> rates = {0.1, 0.2, 0.4, 0.6};

  eval::Table drop_table(
      "Table VI (top): mean cross-distance deviation vs. dropping rate r1",
      {"r1", "t2vec", "EDwP", "EDR"});
  for (double r1 : rates) {
    Rng rng(41);
    drop_table.AddRow(
        std::to_string(r1).substr(0, 3),
        {eval::CrossDeviationOfT2Vec(model, pairs, r1, 0.0, rng),
         eval::CrossDeviationOfMeasure(edwp, pairs, r1, 0.0, rng),
         eval::CrossDeviationOfMeasure(edr, pairs, r1, 0.0, rng)},
        3);
  }
  drop_table.Print();

  eval::Table distort_table(
      "Table VI (bottom): mean cross-distance deviation vs. distorting rate "
      "r2",
      {"r2", "t2vec", "EDwP", "EDR"});
  for (double r2 : rates) {
    Rng rng(43);
    distort_table.AddRow(
        std::to_string(r2).substr(0, 3),
        {eval::CrossDeviationOfT2Vec(model, pairs, 0.0, r2, rng),
         eval::CrossDeviationOfMeasure(edwp, pairs, 0.0, r2, rng),
         eval::CrossDeviationOfMeasure(edr, pairs, 0.0, r2, rng)},
        3);
  }
  distort_table.Print();
  return 0;
}
