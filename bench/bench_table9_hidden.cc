// Reproduces Table IX: effect of the encoder hidden size |v| (the
// representation dimensionality) on most-similar-search accuracy.
//
// Paper shape: tiny |v| cannot hold the route information (mean rank
// hundreds); accuracy improves steeply up to a sweet spot, then flattens or
// slightly degrades once the model outgrows the training data.

#include "bench_common.h"

int main() {
  using namespace t2vec;
  using namespace t2vec::bench;

  const eval::ExperimentData data = PortoData();
  const size_t num_queries = NumQueries();
  const size_t distractors = eval::Scaled(2000, 128);

  // Paper sweeps {64, 128, 256, 484, 512} at |v|=256 default; scaled.
  const std::vector<size_t> hidden_sizes = {16, 32, 64, 96};

  eval::Table table(
      "Table IX: impact of the hidden size |v| (Porto-like)",
      {"|v|", "MR@r1=0.5", "MR@r1=0.6", "MR@r2=0.5", "MR@r2=0.6",
       "train time (s)"});

  for (size_t hidden : hidden_sizes) {
    core::T2VecConfig config = eval::DefaultBenchConfig();
    config.hidden = hidden;
    config.max_iterations = AblationIterations();
    config.validate_every = config.max_iterations + 1;

    core::TrainStats stats;
    const core::T2Vec model = eval::GetOrTrainModel(
        "hidden_" + std::to_string(hidden), data.train.trajectories(), config,
        &stats);

    std::vector<double> row;
    for (auto [r1, r2] : {std::pair{0.5, 0.0}, {0.6, 0.0}, {0.0, 0.5},
                          {0.0, 0.6}}) {
      eval::MssData mss = eval::BuildMss(data.test, num_queries, distractors);
      Rng rng(9000 + hidden + static_cast<uint64_t>(100 * (r1 + 2 * r2)));
      eval::TransformMss(&mss, r1, r2, rng);
      row.push_back(eval::MeanRankOfT2Vec(model, mss));
    }
    row.push_back(stats.train_seconds);
    table.AddRow(std::to_string(hidden), row);
  }
  table.Print();
  return 0;
}
