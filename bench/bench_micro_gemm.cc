#include <cstdio>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "common/cpu.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "nn/gru.h"
#include "nn/matrix.h"
#include "nn/quant.h"

/// \file
/// Microbenchmark for the blocked GEMM kernels and the fused-gate GRU step —
/// the training hot path. Every shape runs once per available SIMD dispatch
/// tier (scalar always; avx2 where the CPU supports it), with the tier name
/// suffixed onto each metric, so BENCH_gemm.json carries the scalar/AVX2
/// before/after pair in one artifact. The int8 quantized GEMM (serving
/// path) is measured alongside at the same shapes, including its dynamic
/// activation-quantization cost. Canonical results live in EXPERIMENTS.md.
///
/// Shapes: square GEMMs at the paper's hidden sizes (64/128/256) plus the
/// fused-gate shape (B x in · in x 3H), and one full GRU forward+backward
/// step at batch 64.

namespace t2vec {
namespace {

/// Runs `fn` repeatedly until ~0.3s have elapsed (after one warmup call) and
/// returns the mean seconds per call.
double TimePerCall(const std::function<void()>& fn) {
  fn();  // Warmup: touches the memory and builds any lazy weight packs.
  Stopwatch timer;
  int iters = 0;
  do {
    fn();
    ++iters;
  } while (timer.ElapsedSeconds() < 0.3);
  return timer.ElapsedSeconds() / iters;
}

void FillRandom(nn::Matrix* m, Rng* rng) {
  for (size_t i = 0; i < m->size(); ++i) {
    m->data()[i] = static_cast<float>(rng->Uniform(-1.0, 1.0));
  }
}

struct Results {
  std::vector<std::pair<std::string, double>> metrics;
  std::string suffix;  ///< "_scalar" / "_avx2", appended to every name.

  void Record(const std::string& name, double value, const char* unit) {
    std::printf("  %-34s %10.2f %s\n", (name + suffix).c_str(), value, unit);
    metrics.emplace_back(name + suffix, value);
  }
};

void BenchGemm(size_t n, Rng* rng, Results* out) {
  nn::Matrix a(n, n), b(n, n), c(n, n);
  FillRandom(&a, rng);
  FillRandom(&b, rng);
  const double flops = 2.0 * static_cast<double>(n) * n * n;

  const double gemm_s = TimePerCall([&] { nn::Gemm(a, b, &c); });
  out->Record("gemm_gflops_" + std::to_string(n), flops / gemm_s / 1e9,
              "GFLOP/s");
  const double ta_s = TimePerCall([&] { nn::GemmTransA(a, b, &c); });
  out->Record("gemm_transa_gflops_" + std::to_string(n), flops / ta_s / 1e9,
              "GFLOP/s");
  const double tb_s = TimePerCall([&] { nn::GemmTransB(a, b, &c); });
  out->Record("gemm_transb_gflops_" + std::to_string(n), flops / tb_s / 1e9,
              "GFLOP/s");
}

/// int8 serving GEMM at the same square shape, costed the way the quantized
/// encoder pays it per step: dynamic per-row activation quantization + the
/// exact int8 x int8 -> int32 kernel + fp32 dequantize. Reported as
/// *effective* GFLOP/s (same 2n^3 numerator as fp32) so the columns compare.
void BenchQuantGemm(size_t n, Rng* rng, Results* out) {
  nn::Matrix x(n, n), w(n, n), c(n, n);
  FillRandom(&x, rng);
  FillRandom(&w, rng);
  const nn::QuantizedMatrix qw = nn::QuantizeTransposed(w);
  std::vector<int8_t> qx;
  std::vector<float> sx;
  const double flops = 2.0 * static_cast<double>(n) * n * n;
  const double s = TimePerCall([&] {
    nn::QuantizeRowsDynamic(x, &qx, &sx);
    nn::QuantizedGemmTransB(qx.data(), sx.data(), n, qw, c,
                            /*accumulate=*/false, /*bias=*/nullptr);
  });
  out->Record("qgemm_i8_eff_gflops_" + std::to_string(n), flops / s / 1e9,
              "GFLOP/s(eff)");
}

/// The fused input projection shape: one B x in · in x 3H GEMM replaces the
/// three per-gate B x in · in x H calls.
void BenchFusedGateShape(size_t hidden, Rng* rng, Results* out) {
  const size_t batch = 64;
  nn::Matrix x(batch, hidden), w3(hidden, 3 * hidden), pre(batch, 3 * hidden);
  FillRandom(&x, rng);
  FillRandom(&w3, rng);
  const double flops = 2.0 * batch * hidden * 3.0 * hidden;
  const double s = TimePerCall([&] { nn::Gemm(x, w3, &pre); });
  out->Record("gate_pack_gflops_" + std::to_string(hidden), flops / s / 1e9,
              "GFLOP/s");
}

/// One GRU training step (forward + full BPTT over a single timestep) at
/// batch 64 — the unit of work the fused kernels accelerate.
void BenchGruStep(size_t hidden, Rng* rng, Results* out) {
  const size_t batch = 64;
  nn::GruLayer layer("bench.gru", hidden, hidden, *rng);
  std::vector<nn::Matrix> xs(1);
  xs[0].Resize(batch, hidden);
  FillRandom(&xs[0], rng);
  nn::Matrix h0(batch, hidden);
  FillRandom(&h0, rng);
  const std::vector<std::vector<float>> masks;

  nn::GruCache cache;
  std::vector<nn::Matrix> d_hs(1), d_xs;
  d_hs[0].Resize(batch, hidden);
  FillRandom(&d_hs[0], rng);
  nn::Matrix d_h0;

  const double s = TimePerCall([&] {
    layer.Forward(xs, h0, masks, &cache);
    layer.Backward(xs, h0, masks, cache, &d_hs, nullptr, &d_xs, &d_h0);
  });
  out->Record("gru_step_us_" + std::to_string(hidden), s * 1e6, "us/step");
}

int Main() {
  bench::PrintThreadSetup();
  Results results;

  std::vector<SimdTier> tiers = {SimdTier::kScalar};
  if (SimdTierSupported(SimdTier::kAvx2)) tiers.push_back(SimdTier::kAvx2);
  results.metrics.emplace_back(
      "avx2_supported", SimdTierSupported(SimdTier::kAvx2) ? 1.0 : 0.0);

  for (const SimdTier tier : tiers) {
    SetSimdTier(tier);
    results.suffix = std::string("_") + SimdTierName(tier);
    Rng rng(42);  // Same seed per tier: identical inputs, comparable times.
    std::printf("\n=== dispatch tier: %s ===\n", SimdTierName(tier));

    std::printf("GEMM kernels (square):\n");
    for (size_t n : {64, 128, 256}) BenchGemm(n, &rng, &results);

    std::printf("int8 quantized GEMM (square, incl. activation quant):\n");
    for (size_t n : {64, 128, 256}) BenchQuantGemm(n, &rng, &results);

    std::printf("Fused gate projection (64 x H  ·  H x 3H):\n");
    for (size_t h : {64, 128, 256}) BenchFusedGateShape(h, &rng, &results);

    std::printf("GRU forward+backward, one step, batch 64:\n");
    for (size_t h : {64, 128, 256}) BenchGruStep(h, &rng, &results);
  }

  bench::WriteBenchJson("BENCH_gemm.json", results.metrics);
  std::printf("\nwrote BENCH_gemm.json\n");
  return 0;
}

}  // namespace
}  // namespace t2vec

int main() { return t2vec::Main(); }
