#include <cstdio>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "nn/gru.h"
#include "nn/matrix.h"

/// \file
/// Microbenchmark for the blocked GEMM kernels and the fused-gate GRU step —
/// the training hot path. Emits BENCH_gemm.json (via WriteBenchJson) so
/// before/after numbers can be diffed across kernel changes; the canonical
/// results live in EXPERIMENTS.md.
///
/// Shapes: square GEMMs at the paper's hidden sizes (64/128/256) plus the
/// fused-gate shape (B x in · in x 3H), and one full GRU forward+backward
/// step at batch 64.

namespace t2vec {
namespace {

/// Runs `fn` repeatedly until ~0.3s have elapsed (after one warmup call) and
/// returns the mean seconds per call.
double TimePerCall(const std::function<void()>& fn) {
  fn();  // Warmup: touches the memory and builds any lazy weight packs.
  Stopwatch timer;
  int iters = 0;
  do {
    fn();
    ++iters;
  } while (timer.ElapsedSeconds() < 0.3);
  return timer.ElapsedSeconds() / iters;
}

void FillRandom(nn::Matrix* m, Rng* rng) {
  for (size_t i = 0; i < m->size(); ++i) {
    m->data()[i] = static_cast<float>(rng->Uniform(-1.0, 1.0));
  }
}

struct Results {
  std::vector<std::pair<std::string, double>> metrics;

  void Record(const std::string& name, double value, const char* unit) {
    std::printf("  %-28s %10.2f %s\n", name.c_str(), value, unit);
    metrics.emplace_back(name, value);
  }
};

void BenchGemm(size_t n, Rng* rng, Results* out) {
  nn::Matrix a(n, n), b(n, n), c(n, n);
  FillRandom(&a, rng);
  FillRandom(&b, rng);
  const double flops = 2.0 * static_cast<double>(n) * n * n;

  const double gemm_s = TimePerCall([&] { nn::Gemm(a, b, &c); });
  out->Record("gemm_gflops_" + std::to_string(n), flops / gemm_s / 1e9,
              "GFLOP/s");
  const double ta_s = TimePerCall([&] { nn::GemmTransA(a, b, &c); });
  out->Record("gemm_transa_gflops_" + std::to_string(n), flops / ta_s / 1e9,
              "GFLOP/s");
  const double tb_s = TimePerCall([&] { nn::GemmTransB(a, b, &c); });
  out->Record("gemm_transb_gflops_" + std::to_string(n), flops / tb_s / 1e9,
              "GFLOP/s");
}

/// The fused input projection shape: one B x in · in x 3H GEMM replaces the
/// three per-gate B x in · in x H calls.
void BenchFusedGateShape(size_t hidden, Rng* rng, Results* out) {
  const size_t batch = 64;
  nn::Matrix x(batch, hidden), w3(hidden, 3 * hidden), pre(batch, 3 * hidden);
  FillRandom(&x, rng);
  FillRandom(&w3, rng);
  const double flops = 2.0 * batch * hidden * 3.0 * hidden;
  const double s = TimePerCall([&] { nn::Gemm(x, w3, &pre); });
  out->Record("gate_pack_gflops_" + std::to_string(hidden), flops / s / 1e9,
              "GFLOP/s");
}

/// One GRU training step (forward + full BPTT over a single timestep) at
/// batch 64 — the unit of work the fused kernels accelerate.
void BenchGruStep(size_t hidden, Rng* rng, Results* out) {
  const size_t batch = 64;
  nn::GruLayer layer("bench.gru", hidden, hidden, *rng);
  std::vector<nn::Matrix> xs(1);
  xs[0].Resize(batch, hidden);
  FillRandom(&xs[0], rng);
  nn::Matrix h0(batch, hidden);
  FillRandom(&h0, rng);
  const std::vector<std::vector<float>> masks;

  nn::GruCache cache;
  std::vector<nn::Matrix> d_hs(1), d_xs;
  d_hs[0].Resize(batch, hidden);
  FillRandom(&d_hs[0], rng);
  nn::Matrix d_h0;

  const double s = TimePerCall([&] {
    layer.Forward(xs, h0, masks, &cache);
    layer.Backward(xs, h0, masks, cache, &d_hs, nullptr, &d_xs, &d_h0);
  });
  out->Record("gru_step_us_" + std::to_string(hidden), s * 1e6, "us/step");
}

int Main() {
  bench::PrintThreadSetup();
  Rng rng(42);
  Results results;

  std::printf("GEMM kernels (square):\n");
  for (size_t n : {64, 128, 256}) BenchGemm(n, &rng, &results);

  std::printf("Fused gate projection (64 x H  ·  H x 3H):\n");
  for (size_t h : {64, 128, 256}) BenchFusedGateShape(h, &rng, &results);

  std::printf("GRU forward+backward, one step, batch 64:\n");
  for (size_t h : {64, 128, 256}) BenchGruStep(h, &rng, &results);

  bench::WriteBenchJson("BENCH_gemm.json", results.metrics);
  std::printf("wrote BENCH_gemm.json\n");
  return 0;
}

}  // namespace
}  // namespace t2vec

int main() { return t2vec::Main(); }
