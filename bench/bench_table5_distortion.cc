// Reproduces Table V: mean rank of the most-similar-trajectory search as
// the distorting rate r2 varies in [0.2, 0.6], with a fixed database size.
//
// Paper shape: unlike downsampling, no method collapses under distortion
// (30 m noise is small relative to trajectory extents); the ordering
// CMS < LCSS/vRNN < EDR < EDwP < t2vec (better) is preserved, and each
// method's rank moves only mildly across r2.

#include "bench_common.h"
#include "core/vrnn.h"
#include "dist/classic.h"
#include "dist/cms.h"
#include "dist/edwp.h"

int main() {
  using namespace t2vec;
  using namespace t2vec::bench;

  const eval::ExperimentData data = PortoData();
  const core::T2Vec model = PortoModel(data);
  core::VRnn vrnn =
      eval::GetOrTrainVRnn("porto_vrnn", data.train.trajectories(),
                           model.vocab(), model.config(),
                           bench::VRnnIterations());

  const std::vector<double> r2_values = {0.2, 0.3, 0.4, 0.5, 0.6};
  const size_t num_queries = NumQueries();
  const size_t distractors = DefaultDbDistractors();

  const double cell = model.config().cell_size;
  dist::EdrMeasure edr(cell);
  dist::LcssMeasure lcss(cell);
  dist::CmsMeasure cms(&model.vocab());
  dist::EdwpMeasure edwp;

  eval::Table table("Table V: mean rank vs. distorting rate r2 (Porto-like, "
                    "database " + std::to_string(num_queries + distractors) +
                        ")",
                    {"r2", "EDR", "LCSS", "CMS", "vRNN", "EDwP", "t2vec"});

  for (double r2 : r2_values) {
    eval::MssData mss = eval::BuildMss(data.test, num_queries, distractors);
    Rng rng(2000 + static_cast<uint64_t>(r2 * 100));
    eval::TransformMss(&mss, /*r1=*/0.0, r2, rng);

    table.AddRow(std::to_string(r2).substr(0, 3),
                 {eval::MeanRankOfMeasure(edr, mss),
                  eval::MeanRankOfMeasure(lcss, mss),
                  eval::MeanRankOfMeasure(cms, mss),
                  eval::MeanRankOfVRnn(vrnn, model.vocab(), mss),
                  eval::MeanRankOfMeasure(edwp, mss),
                  eval::MeanRankOfT2Vec(model, mss)});
  }
  table.Print();
  return 0;
}
