// ANN retrieval bench (DESIGN.md §4e): IVF recall@10 and QPS versus the
// exact scan over a 100k+ vector corpus, sweeping nlist x nprobe, plus the
// cold-start costs that motivate the mmap snapshot path (full-read load vs
// zero-copy open, for both standalone index files and EmbeddingStore
// snapshots). Emits BENCH_ann.json (tracked in EXPERIMENTS.md).
//
// Acceptance target (ISSUE 8): some swept operating point must reach
// recall@10 >= 0.9 while serving >= 5x the exact scan's QPS.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/ann_index.h"
#include "core/ivf_index.h"
#include "eval/metrics.h"
#include "serve/embedding_store.h"

int main() {
  using namespace t2vec;
  using namespace t2vec::bench;

  PrintThreadSetup();

  const size_t d = 64;
  const size_t n = eval::Scaled(120000, 4096);
  const size_t num_queries = eval::Scaled(200, 32);
  const size_t k = 10;

  // Clustered synthetic embeddings: encoder outputs for similar
  // trajectories bunch together (that is the whole point of t2vec), so the
  // corpus is ~n/60 Gaussian bundles rather than one isotropic cloud —
  // the regime a coarse quantizer is built for.
  const size_t bundles = std::max<size_t>(64, n / 60);
  Rng rng(123);
  std::vector<float> centers(bundles * d);
  for (float& v : centers) v = static_cast<float>(rng.Gaussian() * 4.0);
  std::vector<float> data(n * d);
  for (size_t i = 0; i < n; ++i) {
    const float* c = &centers[rng.UniformInt(bundles) * d];
    for (size_t j = 0; j < d; ++j) {
      data[i * d + j] = c[j] + static_cast<float>(rng.Gaussian() * 0.3);
    }
  }
  std::vector<float> queries(num_queries * d);
  for (size_t q = 0; q < num_queries; ++q) {
    const float* c = &centers[rng.UniformInt(bundles) * d];
    for (size_t j = 0; j < d; ++j) {
      queries[q * d + j] = c[j] + static_cast<float>(rng.Gaussian() * 0.3);
    }
  }

  // Exact baseline: ground truth for recall and the QPS bar to beat.
  auto exact = core::CreateIndex(core::IndexConfig{}, d).value();
  for (size_t i = 0; i < n; ++i) exact->Add({&data[i * d], d});
  std::vector<std::vector<size_t>> truth(num_queries);
  Stopwatch watch;
  for (size_t q = 0; q < num_queries; ++q) {
    truth[q] = exact->Query({&queries[q * d], d}, k).ids;
  }
  const double exact_qps = num_queries / watch.ElapsedSeconds();
  std::printf("corpus: %zu x %zu, %zu queries, k=%zu\n", n, d, num_queries,
              k);
  std::printf("exact scan: %.0f QPS\n\n", exact_qps);

  eval::Table table("ANN sweep: recall@10 / QPS / speedup vs exact",
                    {"nlist/nprobe", "recall@10", "QPS", "speedup",
                     "mean cand"});

  // The operating point we report: the fastest sweep entry with recall
  // >= 0.9, falling back to the highest-recall entry on heavily
  // down-scaled runs where nothing qualifies.
  bool qualified = false;
  double best_qps = 0.0, best_recall = 0.0, best_build_s = 0.0;
  size_t best_nlist = 0, best_nprobe = 0;
  std::unique_ptr<core::AnnIndex> best_index;

  for (const size_t nlist : {size_t{64}, size_t{256}, size_t{1024}}) {
    core::IndexConfig config;
    config.kind = core::IndexKind::kIvf;
    config.ivf_nlist = nlist;
    if (nlist * config.ivf_train_per_list > n) continue;  // would not train
    watch.Reset();
    auto built = core::CreateIndex(config, d).value();
    for (size_t i = 0; i < n; ++i) built->Add({&data[i * d], d});
    const double build_s = watch.ElapsedSeconds();
    auto* ivf = dynamic_cast<core::IvfIndex*>(built.get());
    T2VEC_CHECK(ivf != nullptr && ivf->Stats().trained);

    for (const size_t nprobe : {size_t{1}, size_t{2}, size_t{4}, size_t{8},
                                size_t{16}, size_t{32}}) {
      if (nprobe > nlist) continue;
      ivf->set_nprobe(nprobe);
      const int64_t candidates_before = ivf->Stats().candidates;
      double recall = 0.0;
      watch.Reset();
      for (size_t q = 0; q < num_queries; ++q) {
        const dist::KnnResult got = ivf->Query({&queries[q * d], d}, k);
        recall += eval::RecallAtK(truth[q], got.ids);
      }
      const double qps = num_queries / watch.ElapsedSeconds();
      recall /= num_queries;
      const double mean_cand =
          static_cast<double>(ivf->Stats().candidates - candidates_before) /
          num_queries;
      table.AddRow(std::to_string(nlist) + " / " + std::to_string(nprobe),
                   {recall, qps, qps / exact_qps, mean_cand}, 3);
      const bool qualifies = recall >= 0.9;
      const bool better = qualified == qualifies
                              ? (qualifies ? qps > best_qps
                                           : recall > best_recall)
                              : qualifies;
      if (better) {
        qualified = qualifies;
        best_qps = qps;
        best_recall = recall;
        best_nlist = nlist;
        best_nprobe = nprobe;
        best_build_s = build_s;
      }
    }
    if (nlist == best_nlist) best_index = std::move(built);
  }
  table.Print();

  T2VEC_CHECK(best_index != nullptr);
  std::printf("\n%s point: nlist=%zu nprobe=%zu recall=%.3f "
              "QPS=%.0f (%.1fx exact), build %.1fs\n",
              qualified ? "best qualifying (recall >= 0.9)"
                        : "best-effort (nothing reached recall 0.9)",
              best_nlist, best_nprobe, best_recall, best_qps,
              best_qps / exact_qps, best_build_s);

  // Cold start: full-read load vs zero-copy mmap open, standalone index.
  const std::string index_path = "/tmp/bench_ann.idx";
  core::IndexConfig best_config;
  best_config.kind = core::IndexKind::kIvf;
  best_config.ivf_nlist = best_nlist;
  best_config.ivf_nprobe = best_nprobe;
  watch.Reset();
  T2VEC_CHECK(best_index->Save(index_path).ok());
  const double save_ms = watch.ElapsedMillis();
  watch.Reset();
  auto full = core::LoadIndex(best_config, index_path);
  const double index_load_full_ms = watch.ElapsedMillis();
  T2VEC_CHECK(full.ok());
  watch.Reset();
  auto mapped = core::OpenIndexMmap(best_config, index_path);
  const double index_load_mmap_ms = watch.ElapsedMillis();
  T2VEC_CHECK(mapped.ok());

  // Cold start, serving layer: EmbeddingStore snapshot with the same
  // corpus under the same IVF config.
  const std::string store_path = "/tmp/bench_ann.t2vstore";
  serve::EmbeddingStore store(d, best_config);
  for (size_t i = 0; i < n; ++i) {
    T2VEC_CHECK(store.Add(static_cast<int64_t>(i), {&data[i * d], d}).ok());
  }
  T2VEC_CHECK(store.Save(store_path).ok());
  watch.Reset();
  auto store_full = serve::EmbeddingStore::Load(store_path, best_config);
  const double store_load_full_ms = watch.ElapsedMillis();
  T2VEC_CHECK(store_full.ok());
  watch.Reset();
  auto store_mmap = serve::EmbeddingStore::LoadMmap(store_path, best_config);
  const double store_load_mmap_ms = watch.ElapsedMillis();
  T2VEC_CHECK(store_mmap.ok());

  std::printf("\ncold start (index, %zu rows): full read %.1f ms, mmap "
              "%.2f ms\ncold start (store): full read %.1f ms, mmap %.2f "
              "ms; save %.1f ms\n",
              n, index_load_full_ms, index_load_mmap_ms, store_load_full_ms,
              store_load_mmap_ms, save_ms);
  std::remove(index_path.c_str());
  std::remove(store_path.c_str());

  WriteBenchJson(
      "BENCH_ann.json",
      {{"n", static_cast<double>(n)},
       {"dim", static_cast<double>(d)},
       {"num_queries", static_cast<double>(num_queries)},
       {"exact_qps", exact_qps},
       {"best_nlist", static_cast<double>(best_nlist)},
       {"best_nprobe", static_cast<double>(best_nprobe)},
       {"best_recall_at_10", best_recall},
       {"best_qps", best_qps},
       {"best_speedup_vs_exact", best_qps / exact_qps},
       {"best_meets_recall_target", qualified ? 1.0 : 0.0},
       {"ivf_build_s", best_build_s},
       {"index_save_ms", save_ms},
       {"index_load_full_ms", index_load_full_ms},
       {"index_load_mmap_ms", index_load_mmap_ms},
       {"store_load_full_ms", store_load_full_ms},
       {"store_load_mmap_ms", store_load_mmap_ms}});
  std::printf("\nwrote BENCH_ann.json\n");
  return 0;
}
