// Serving-path benchmark: closed-loop clients drive EmbeddingService while
// the batch window sweeps, measuring how micro-batching trades per-request
// latency for throughput. Emits BENCH_serve.json (tracked in EXPERIMENTS.md)
// with throughput and request-latency quantiles per window setting.
//
// Protocol: C clients each keep exactly one request outstanding (submit,
// wait, repeat over a shuffled trajectory set), so the attainable batch size
// is bounded by C and the dispatcher's window decides how much coalescing
// actually happens. Results are bit-identical across all settings (the
// service's determinism contract); only the timing varies.
//
// Ahead of the closed loop, the raw encoder is swept across precision
// (fp32 vs int8) and SIMD dispatch tier (scalar vs avx2 where supported),
// at the bench model's size and at the paper-scale shape (hidden 256,
// 3 layers), and the int8 accuracy cost is measured two ways: max absolute
// embedding error + strict top-10 neighbor overlap vs fp32, and the fig5
// task metric (Sec. V-C3 kNN precision under downsampling) run once with
// the fp32 encoder and once with the int8 encoder on identical transforms,
// whose difference is the quantization cost a retrieval user actually pays.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "common/cpu.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/model.h"
#include "core/t2vec.h"
#include "nn/kernels.h"
#include "serve/embedding_service.h"

namespace t2vec::bench {
namespace {

struct WindowResult {
  int window_us = 0;
  double seconds = 0.0;
  size_t requests = 0;
  double mean_batch = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

WindowResult RunClosedLoop(const core::T2Vec& model,
                           const std::vector<traj::Trajectory>& trips,
                           size_t num_clients, size_t requests_per_client,
                           int window_us, bool quantized) {
  serve::ServiceOptions options;
  options.batch_window = std::chrono::microseconds(window_us);
  options.max_batch = num_clients;
  options.queue_capacity = 4 * num_clients;
  options.quantized = quantized;
  serve::EmbeddingService service(&model, options);

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  for (size_t c = 0; c < num_clients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(17 + c);
      std::vector<size_t> order(trips.size());
      for (size_t i = 0; i < order.size(); ++i) order[i] = i;
      rng.Shuffle(order);
      for (size_t r = 0; r < requests_per_client; ++r) {
        const traj::Trajectory& trip = trips[order[r % order.size()]];
        serve::EmbeddingService::EncodeResult result =
            service.Submit(trip).get();
        if (!result.ok()) {
          std::fprintf(stderr, "client %zu: %s\n", c,
                       result.status().ToString().c_str());
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  service.Shutdown();

  const serve::ServeMetrics& m = service.metrics();
  WindowResult out;
  out.window_us = window_us;
  out.seconds = seconds;
  out.requests = static_cast<size_t>(m.completed.value());
  out.mean_batch =
      m.flushes.value() > 0
          ? static_cast<double>(m.completed.value()) /
                static_cast<double>(m.flushes.value())
          : 0.0;
  out.p50_us = m.request_latency_us.Quantile(0.5);
  out.p99_us = m.request_latency_us.Quantile(0.99);
  return out;
}

/// Mean seconds per call of `fn` over a ~0.5s measurement window.
double TimePerCall(const std::function<void()>& fn) {
  fn();  // Warmup (builds lazy weight packs / quantized caches).
  Stopwatch timer;
  int iters = 0;
  do {
    fn();
    ++iters;
  } while (timer.ElapsedSeconds() < 0.5);
  return timer.ElapsedSeconds() / iters;
}

/// Encode throughput (trajectories/s) of `encode` over `n` sequences, per
/// dispatch tier. Records one metric per tier.
void SweepTiers(const std::string& name, size_t n,
                const std::function<void()>& encode,
                std::vector<std::pair<std::string, double>>* metrics) {
  std::vector<SimdTier> tiers = {SimdTier::kScalar};
  if (SimdTierSupported(SimdTier::kAvx2)) tiers.push_back(SimdTier::kAvx2);
  for (const SimdTier tier : tiers) {
    SetSimdTier(tier);
    const double s = TimePerCall(encode);
    const double rps = static_cast<double>(n) / s;
    std::printf("  %-28s %10.1f traj/s\n",
                (name + "_" + SimdTierName(tier)).c_str(), rps);
    metrics->emplace_back(name + "_rps_" + std::string(SimdTierName(tier)),
                          rps);
  }
  SetSimdTier(SimdTier::kScalar);
}

/// Looks up metric `name`, or 0 when absent.
double Metric(const std::vector<std::pair<std::string, double>>& metrics,
              const std::string& name) {
  for (const auto& [key, value] : metrics) {
    if (key == name) return value;
  }
  return 0.0;
}

/// Indices of the `k` nearest rows of `db` to `query` (excluding `self`),
/// by squared L2, ties broken by index.
std::vector<size_t> TopK(const nn::Matrix& db, const float* query,
                         size_t self, size_t k) {
  const nn::KernelOps& ops = nn::KernelsFor(SimdTier::kScalar);
  std::vector<std::pair<double, size_t>> scored;
  scored.reserve(db.rows());
  for (size_t i = 0; i < db.rows(); ++i) {
    if (i == self) continue;
    scored.emplace_back(ops.sqdist_f64(query, db.Row(i), db.cols()), i);
  }
  // lint:allow(raw-sort) (distance, index) pairs are distinct, total order
  std::partial_sort(scored.begin(),
                    scored.begin() + std::min(k, scored.size()),
                    scored.end());
  std::vector<size_t> out;
  for (size_t i = 0; i < std::min(k, scored.size()); ++i) {
    out.push_back(scored[i].second);
  }
  return out;
}

/// Fraction of fp32 top-k neighbors the int8 embeddings recover on the raw
/// (untransformed) set. A strict diagnostic: near-equidistant neighbors can
/// legally swap under tiny perturbations, so this lower-bounds — but does
/// not equal — task-level retrieval quality (see the fig5 run below).
double KnnOverlap(const nn::Matrix& fp32, const nn::Matrix& int8,
                  size_t num_queries, size_t k) {
  double hit = 0.0, total = 0.0;
  for (size_t q = 0; q < num_queries; ++q) {
    const std::vector<size_t> truth = TopK(fp32, fp32.Row(q), q, k);
    const std::vector<size_t> got = TopK(int8, int8.Row(q), q, k);
    for (const size_t idx : got) {
      if (std::find(truth.begin(), truth.end(), idx) != truth.end()) {
        hit += 1.0;
      }
    }
    total += static_cast<double>(truth.size());
  }
  return total > 0.0 ? hit / total : 1.0;
}

/// Paper-scale encoder shape (hidden 256, 3 layers — Sec. V's GPU config),
/// untrained weights: throughput only, where GEMM cost dominates the
/// transcendentals and the int8 win is most visible.
void BenchPaperShape(std::vector<std::pair<std::string, double>>* metrics) {
  Rng rng(7);
  core::T2VecConfig config;
  config.embed_dim = 256;
  config.hidden = 256;
  config.layers = 3;
  const geo::Token vocab_size = 1024;
  const core::EncoderDecoder model(config, vocab_size, rng);
  const core::QuantizedEncoder quantized(model);

  std::vector<traj::TokenSeq> seqs;
  Rng token_rng(8);
  const size_t batch = 32, len = 32;
  for (size_t i = 0; i < batch; ++i) {
    traj::TokenSeq seq(len);
    for (auto& tok : seq) {
      tok = static_cast<geo::Token>(4 + token_rng.UniformInt(1000));
    }
    seqs.push_back(seq);
  }

  std::printf("\npaper-scale encoder (hidden 256, 3 layers, batch %zu x "
              "len %zu, untrained):\n", batch, len);
  SweepTiers("h256_encode_fp32", batch, [&] { model.EncodeBatch(seqs); },
             metrics);
  SweepTiers("h256_encode_int8", batch, [&] { quantized.EncodeBatch(seqs); },
             metrics);
}

}  // namespace
}  // namespace t2vec::bench

int main() {
  using namespace t2vec;
  using namespace t2vec::bench;

  PrintThreadSetup();
  std::printf("simd: avx2 %s\n",
              SimdTierSupported(SimdTier::kAvx2) ? "available" : "absent");

  // A compact model keeps the encode cost realistic relative to the
  // dispatch overhead without minutes of training.
  const eval::ExperimentData data = eval::MakeData(
      eval::DatasetKind::kPortoLike, eval::Scaled(300, 64), 0);
  core::T2VecConfig config = eval::DefaultBenchConfig();
  config.hidden = 48;
  config.max_iterations = eval::Scaled(120, 40);
  const core::T2Vec model = eval::GetOrTrainModel(
      "serve_bench", data.train.trajectories(), config);

  const std::vector<traj::Trajectory>& trips = data.train.trajectories();
  std::vector<std::pair<std::string, double>> metrics;
  metrics.emplace_back("avx2_supported",
                       SimdTierSupported(SimdTier::kAvx2) ? 1.0 : 0.0);

  // ---- Raw encoder sweep: precision x dispatch tier. --------------------
  std::vector<traj::TokenSeq> seqs;
  seqs.reserve(trips.size());
  for (const auto& trip : trips) seqs.push_back(model.EncoderTokens(trip));
  model.PrepareQuantized();

  std::printf("\nbatch encode, %zu trajectories (trained model, hidden "
              "%zu):\n", seqs.size(), static_cast<size_t>(config.hidden));
  SweepTiers("encode_fp32", seqs.size(),
             [&] { model.EncodeTokenized(seqs); }, &metrics);
  SweepTiers("encode_int8", seqs.size(),
             [&] { model.EncodeQuantizedTokenized(seqs); }, &metrics);

  {
    // The acceptance ratio: best int8 tier over fp32 *scalar* (the
    // pre-SIMD serving baseline).
    const double fp32_scalar = Metric(metrics, "encode_fp32_rps_scalar");
    const double int8_best =
        std::max(Metric(metrics, "encode_int8_rps_scalar"),
                 Metric(metrics, "encode_int8_rps_avx2"));
    const double speedup = fp32_scalar > 0.0 ? int8_best / fp32_scalar : 0.0;
    std::printf("  int8 speedup vs fp32 scalar:   %.2fx\n", speedup);
    metrics.emplace_back("encode_int8_speedup_vs_fp32_scalar", speedup);
  }

  // ---- int8 accuracy cost: embedding error + fig5 kNN precision. --------
  {
    const nn::Matrix fp32 = model.EncodeTokenized(seqs);
    const nn::Matrix int8 = model.EncodeQuantizedTokenized(seqs);
    double max_err = 0.0;
    for (size_t i = 0; i < fp32.size(); ++i) {
      max_err = std::max(max_err, static_cast<double>(std::fabs(
                                      fp32.data()[i] - int8.data()[i])));
    }
    const size_t num_queries = std::min<size_t>(50, trips.size() / 4);
    const double overlap = KnnOverlap(fp32, int8, num_queries, 10);

    // fig5 harness (Sec. V-C3): ground truth is each encoder's own k-NN on
    // the originals; retrieval runs on downsampled queries + database. The
    // identical Rng seed gives both encoders the same transformed
    // trajectories, so the precision difference isolates what quantization
    // costs on the task metric (neighbor swaps among near-equidistant
    // embeddings cancel out; the strict overlap above does not forgive
    // them).
    const std::vector<traj::Trajectory> queries(
        trips.begin(), trips.begin() + static_cast<ptrdiff_t>(num_queries));
    const double r1 = 0.2, r2 = 0.0;
    Rng fig5_fp32_rng(91);
    Rng fig5_int8_rng(91);
    const double fp32_precision = eval::KnnPrecisionOfT2Vec(
        model, queries, trips, 10, r1, r2, fig5_fp32_rng);
    const double int8_precision = eval::KnnPrecisionOfEncoder(
        [&model](const std::vector<traj::Trajectory>& t) {
          return model.EncodeQuantized(t);
        },
        queries, trips, 10, r1, r2, fig5_int8_rng);
    const double delta = fp32_precision - int8_precision;
    std::printf("\nint8 accuracy vs fp32 (%zu trajectories, %zu queries):\n"
                "  max embedding error:           %.6f\n"
                "  strict top-10 overlap:         %.4f\n"
                "  fig5 precision@10 (r1=%.1f):   fp32 %.4f  int8 %.4f"
                "  (delta %+.4f)\n",
                seqs.size(), num_queries, max_err, overlap, r1,
                fp32_precision, int8_precision, delta);
    metrics.emplace_back("int8_max_embed_err", max_err);
    metrics.emplace_back("int8_top10_overlap_vs_fp32", overlap);
    metrics.emplace_back("fig5_knn_precision_at10_fp32", fp32_precision);
    metrics.emplace_back("fig5_knn_precision_at10_int8", int8_precision);
    metrics.emplace_back("int8_knn_precision_delta", delta);
  }

  BenchPaperShape(&metrics);

  // ---- Closed-loop service sweep (fp32, then quantized). ----------------
  const size_t clients = 8;
  const size_t requests_per_client = eval::Scaled(150, 30);

  std::printf("\nclosed loop: %zu clients x %zu requests, max_batch %zu\n",
              clients, requests_per_client, clients);
  std::printf("%-10s %6s %12s %12s %12s %12s\n", "window_us", "enc",
              "req/s", "mean_batch", "p50_us", "p99_us");

  for (const int window_us : {0, 100, 500, 2000}) {
    const WindowResult r =
        RunClosedLoop(model, trips, clients, requests_per_client, window_us,
                      /*quantized=*/false);
    const double rps = static_cast<double>(r.requests) / r.seconds;
    std::printf("%-10d %6s %12.1f %12.2f %12.1f %12.1f\n", r.window_us,
                "fp32", rps, r.mean_batch, r.p50_us, r.p99_us);
    const std::string prefix = "win" + std::to_string(window_us) + "us_";
    metrics.emplace_back(prefix + "throughput_rps", rps);
    metrics.emplace_back(prefix + "mean_batch", r.mean_batch);
    metrics.emplace_back(prefix + "p50_us", r.p50_us);
    metrics.emplace_back(prefix + "p99_us", r.p99_us);
  }
  for (const int window_us : {0, 500}) {
    const WindowResult r =
        RunClosedLoop(model, trips, clients, requests_per_client, window_us,
                      /*quantized=*/true);
    const double rps = static_cast<double>(r.requests) / r.seconds;
    std::printf("%-10d %6s %12.1f %12.2f %12.1f %12.1f\n", r.window_us,
                "int8", rps, r.mean_batch, r.p50_us, r.p99_us);
    const std::string prefix = "qwin" + std::to_string(window_us) + "us_";
    metrics.emplace_back(prefix + "throughput_rps", rps);
    metrics.emplace_back(prefix + "mean_batch", r.mean_batch);
    metrics.emplace_back(prefix + "p50_us", r.p50_us);
    metrics.emplace_back(prefix + "p99_us", r.p99_us);
  }
  WriteBenchJson("BENCH_serve.json", metrics);
  std::printf("\nwrote BENCH_serve.json\n");
  return 0;
}
