// Serving-path benchmark: closed-loop clients drive EmbeddingService while
// the batch window sweeps, measuring how micro-batching trades per-request
// latency for throughput. Emits BENCH_serve.json (tracked in EXPERIMENTS.md)
// with throughput and request-latency quantiles per window setting.
//
// Protocol: C clients each keep exactly one request outstanding (submit,
// wait, repeat over a shuffled trajectory set), so the attainable batch size
// is bounded by C and the dispatcher's window decides how much coalescing
// actually happens. Results are bit-identical across all settings (the
// service's determinism contract); only the timing varies.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "core/t2vec.h"
#include "serve/embedding_service.h"

namespace t2vec::bench {
namespace {

struct WindowResult {
  int window_us = 0;
  double seconds = 0.0;
  size_t requests = 0;
  double mean_batch = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

WindowResult RunClosedLoop(const core::T2Vec& model,
                           const std::vector<traj::Trajectory>& trips,
                           size_t num_clients, size_t requests_per_client,
                           int window_us) {
  serve::ServiceOptions options;
  options.batch_window = std::chrono::microseconds(window_us);
  options.max_batch = num_clients;
  options.queue_capacity = 4 * num_clients;
  serve::EmbeddingService service(&model, options);

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  for (size_t c = 0; c < num_clients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(17 + c);
      std::vector<size_t> order(trips.size());
      for (size_t i = 0; i < order.size(); ++i) order[i] = i;
      rng.Shuffle(order);
      for (size_t r = 0; r < requests_per_client; ++r) {
        const traj::Trajectory& trip = trips[order[r % order.size()]];
        serve::EmbeddingService::EncodeResult result =
            service.Submit(trip).get();
        if (!result.ok()) {
          std::fprintf(stderr, "client %zu: %s\n", c,
                       result.status().ToString().c_str());
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  service.Shutdown();

  const serve::ServeMetrics& m = service.metrics();
  WindowResult out;
  out.window_us = window_us;
  out.seconds = seconds;
  out.requests = static_cast<size_t>(m.completed.value());
  out.mean_batch =
      m.flushes.value() > 0
          ? static_cast<double>(m.completed.value()) /
                static_cast<double>(m.flushes.value())
          : 0.0;
  out.p50_us = m.request_latency_us.Quantile(0.5);
  out.p99_us = m.request_latency_us.Quantile(0.99);
  return out;
}

}  // namespace
}  // namespace t2vec::bench

int main() {
  using namespace t2vec;
  using namespace t2vec::bench;

  PrintThreadSetup();

  // A compact model keeps the encode cost realistic relative to the
  // dispatch overhead without minutes of training.
  const eval::ExperimentData data = eval::MakeData(
      eval::DatasetKind::kPortoLike, eval::Scaled(300, 64), 0);
  core::T2VecConfig config = eval::DefaultBenchConfig();
  config.hidden = 48;
  config.max_iterations = eval::Scaled(120, 40);
  const core::T2Vec model = eval::GetOrTrainModel(
      "serve_bench", data.train.trajectories(), config);

  const std::vector<traj::Trajectory>& trips = data.train.trajectories();
  const size_t clients = 8;
  const size_t requests_per_client = eval::Scaled(150, 30);

  std::printf("\nclosed loop: %zu clients x %zu requests, max_batch %zu\n",
              clients, requests_per_client, clients);
  std::printf("%-10s %12s %12s %12s %12s\n", "window_us", "req/s",
              "mean_batch", "p50_us", "p99_us");

  std::vector<std::pair<std::string, double>> metrics;
  for (const int window_us : {0, 100, 500, 2000}) {
    const WindowResult r = RunClosedLoop(model, trips, clients,
                                         requests_per_client, window_us);
    const double rps = static_cast<double>(r.requests) / r.seconds;
    std::printf("%-10d %12.1f %12.2f %12.1f %12.1f\n", r.window_us, rps,
                r.mean_batch, r.p50_us, r.p99_us);
    const std::string prefix = "win" + std::to_string(window_us) + "us_";
    metrics.emplace_back(prefix + "throughput_rps", rps);
    metrics.emplace_back(prefix + "mean_batch", r.mean_batch);
    metrics.emplace_back(prefix + "p50_us", r.p50_us);
    metrics.emplace_back(prefix + "p99_us", r.p99_us);
  }
  WriteBenchJson("BENCH_serve.json", metrics);
  std::printf("\nwrote BENCH_serve.json\n");
  return 0;
}
