// Reproduces Table II: dataset statistics (#Points, #Trips, mean length)
// for the two synthetic presets standing in for Porto and Harbin.
//
// Paper shape: Harbin trips are roughly twice as long as Porto trips; both
// datasets are in the millions of points (here scaled down, see
// bench_common.h).

#include "bench_common.h"

int main() {
  using namespace t2vec;
  using namespace t2vec::bench;

  eval::Table table("Table II: dataset statistics (synthetic presets)",
                    {"Dataset", "#Points", "#Trips", "Mean length"});

  const eval::ExperimentData porto = PortoData();
  const eval::ExperimentData harbin = HarbinData();

  auto add = [&table](const char* name, const eval::ExperimentData& data) {
    const int64_t points =
        data.train.TotalPoints() + data.test.TotalPoints();
    const size_t trips = data.train.size() + data.test.size();
    const double mean =
        static_cast<double>(points) / static_cast<double>(trips);
    table.AddRow({name, std::to_string(points), std::to_string(trips),
                  std::to_string(mean).substr(0, 5)});
  };
  add("Porto-like", porto);
  add("Harbin-like", harbin);
  table.Print();
  return 0;
}
