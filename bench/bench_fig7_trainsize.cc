// Reproduces Figure 7: effect of the training-set size on the mean rank of
// the most-similar search at a fixed heavy dropping rate (r1 = 0.6).
//
// Paper shape: mean rank drops rapidly as training data grows, then the
// marginal benefit flattens — more trips expose more of the transition
// patterns until the model saturates.

#include "bench_common.h"

int main() {
  using namespace t2vec;
  using namespace t2vec::bench;

  const eval::ExperimentData data = PortoData();
  const size_t num_queries = NumQueries();
  const size_t distractors = eval::Scaled(2000, 128);

  // Paper sweeps 200k..1M trips; scaled to fractions of our training pool.
  const std::vector<double> fractions = {0.25, 0.5, 1.0};

  eval::Table table("Fig. 7: mean rank vs. training set size (Porto-like, "
                    "r1 = 0.6)",
                    {"#Training trips", "mean rank", "train time (s)"});

  for (double fraction : fractions) {
    const size_t count = std::max<size_t>(
        32, static_cast<size_t>(fraction *
                                static_cast<double>(data.train.size())));
    std::vector<traj::Trajectory> subset(
        data.train.trajectories().begin(),
        data.train.trajectories().begin() + count);

    core::T2VecConfig config = eval::DefaultBenchConfig();
    config.max_iterations = eval::Scaled(600, 100);  // 180 is noise-dominated here.
    config.validate_every = config.max_iterations + 1;

    core::TrainStats stats;
    const core::T2Vec model = eval::GetOrTrainModel(
        "trainsize_" + std::to_string(count), subset, config, &stats);

    eval::MssData mss = eval::BuildMss(data.test, num_queries, distractors);
    Rng rng(10000 + count);
    eval::TransformMss(&mss, /*r1=*/0.6, /*r2=*/0.0, rng);

    table.AddRow(std::to_string(count),
                 {eval::MeanRankOfT2Vec(model, mss), stats.train_seconds});
  }
  table.Print();
  return 0;
}
