// Reproduces Table VII: mean rank and training time for the model trained
// with L1 (plain NLL), L2 (exact spatial loss), L3 (NCE-approximated
// spatial loss), and L3+CL (plus cell pretraining). Also reports the
// binary-NCE flavour of L3 as an extra ablation (DESIGN.md §4.2).
//
// Paper shape: L2 improves on L1 but is so expensive it is stopped before
// convergence; L3 matches/exceeds L2 at a fraction of the cost; CL further
// improves the mean rank and cuts training time. Times here are seconds on
// one CPU core (paper: hours on a Tesla K40).

#include "bench_common.h"

int main() {
  using namespace t2vec;
  using namespace t2vec::bench;

  const eval::ExperimentData data = PortoData();
  const std::vector<double> r1_values = {0.4, 0.5, 0.6};
  const size_t num_queries = NumQueries();
  const size_t distractors = eval::Scaled(2000, 128);

  struct Variant {
    const char* name;
    core::LossKind loss;
    core::NceVariant nce;
    bool pretrain;
    double iteration_scale;  // L2 is capped early, as in the paper.
  };
  const Variant variants[] = {
      {"L1", core::LossKind::kL1, core::NceVariant::kSampledSoftmax, false,
       1.0},
      {"L2", core::LossKind::kL2, core::NceVariant::kSampledSoftmax, false,
       0.5},
      {"L3", core::LossKind::kL3, core::NceVariant::kSampledSoftmax, false,
       1.0},
      {"L3+CL", core::LossKind::kL3, core::NceVariant::kSampledSoftmax, true,
       1.0},
      {"L3+CL (binary NCE)", core::LossKind::kL3,
       core::NceVariant::kBinaryNce, true, 1.0},
  };

  eval::Table table("Table VII: mean rank and training time per loss "
                    "(Porto-like)",
                    {"Loss", "MR@r1=0.4", "MR@r1=0.5", "MR@r1=0.6",
                     "train time (s)"});

  for (const Variant& v : variants) {
    core::T2VecConfig config = eval::DefaultBenchConfig();
    config.loss = v.loss;
    config.nce_variant = v.nce;
    config.pretrain_cells = v.pretrain;
    config.max_iterations = static_cast<size_t>(
        static_cast<double>(AblationIterations()) * v.iteration_scale);
    config.validate_every = config.max_iterations + 1;  // No early stop:
    // the ablation compares losses at a fixed compute budget.

    core::TrainStats stats;
    const core::T2Vec model = eval::GetOrTrainModel(
        std::string("ablate_") + v.name, data.train.trajectories(), config,
        &stats);

    std::vector<double> row;
    for (double r1 : r1_values) {
      eval::MssData mss = eval::BuildMss(data.test, num_queries, distractors);
      Rng rng(7000 + static_cast<uint64_t>(r1 * 100));
      eval::TransformMss(&mss, r1, 0.0, rng);
      row.push_back(eval::MeanRankOfT2Vec(model, mss));
    }
    row.push_back(stats.train_seconds);  // 0 on cache hit.
    table.AddRow(v.name, row);
  }
  table.Print();
  std::printf("\nNote: L2 is trained for half the iterations, mirroring the "
              "paper's early\ntermination of the non-converging L2 run "
              "(Table VII: '120h, stopped').\nA train time of 0 means the "
              "model came from the on-disk cache.\n");
  return 0;
}
