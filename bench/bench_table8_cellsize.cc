// Reproduces Table VIII: effect of the grid cell size on accuracy and
// training time. One model is trained per cell size; mean rank is reported
// under heavy downsampling / distortion.
//
// Paper shape: very small cells blow up the vocabulary and are much harder
// to train (worst accuracy, longest time); a moderate cell (100 m in the
// paper) is the sweet spot; larger cells train faster with slightly worse
// or equal accuracy.

#include "bench_common.h"

int main() {
  using namespace t2vec;
  using namespace t2vec::bench;

  const eval::ExperimentData data = PortoData();
  const size_t num_queries = NumQueries();
  const size_t distractors = eval::Scaled(2000, 128);

  const std::vector<double> cell_sizes = {25.0, 50.0, 100.0, 150.0};

  eval::Table table(
      "Table VIII: impact of the cell size (Porto-like)",
      {"Cell size", "#Cells", "MR@r1=0.5", "MR@r1=0.6", "MR@r2=0.5",
       "MR@r2=0.6", "train time (s)"});

  for (double cell : cell_sizes) {
    core::T2VecConfig config = eval::DefaultBenchConfig();
    config.cell_size = cell;
    config.max_iterations = AblationIterations();
    config.validate_every = config.max_iterations + 1;

    core::TrainStats stats;
    const core::T2Vec model = eval::GetOrTrainModel(
        "cellsize_" + std::to_string(static_cast<int>(cell)),
        data.train.trajectories(), config, &stats);

    std::vector<double> row;
    row.push_back(static_cast<double>(model.vocab().num_hot_cells()));
    for (auto [r1, r2] : {std::pair{0.5, 0.0}, {0.6, 0.0}, {0.0, 0.5},
                          {0.0, 0.6}}) {
      eval::MssData mss = eval::BuildMss(data.test, num_queries, distractors);
      Rng rng(8000 + static_cast<uint64_t>(cell) +
              static_cast<uint64_t>(100 * (r1 + 2 * r2)));
      eval::TransformMss(&mss, r1, r2, rng);
      row.push_back(eval::MeanRankOfT2Vec(model, mss));
    }
    row.push_back(stats.train_seconds);
    table.AddRow(std::to_string(static_cast<int>(cell)) + " m", row);
  }
  table.Print();
  return 0;
}
