// Reproduces Figure 6: k-NN query wall-clock time versus database size for
// EDR, EDwP, and t2vec (k = 50), plus the LSH-accelerated variant from the
// paper's future-work list (Sec. VI item 3).
//
// Paper shape: EDR and EDwP grow linearly in DB size with a large constant
// (each comparison is an O(n^2) dynamic program); t2vec's linear vector scan
// is at least one order of magnitude faster, giving near-instantaneous
// (<200 ms) responses. Encoding is a one-off offline cost, also reported.

#include "bench_common.h"
#include "common/stopwatch.h"
#include "core/ann_index.h"
#include "dist/classic.h"
#include "dist/edwp.h"
#include "dist/knn.h"

int main() {
  using namespace t2vec;
  using namespace t2vec::bench;

  PrintThreadSetup();
  const eval::ExperimentData data = PortoData();
  const core::T2Vec model = PortoModel(data);
  dist::EdrMeasure edr(model.config().cell_size);
  dist::EdwpMeasure edwp;

  const size_t k = 50;
  const size_t num_queries = eval::Scaled(10, 4);
  const std::vector<size_t> db_sizes = {
      eval::Scaled(1000, 64), eval::Scaled(2000, 128),
      eval::Scaled(3000, 192), eval::Scaled(4000, 256),
      eval::Scaled(5000, 320)};

  std::vector<traj::Trajectory> queries(
      data.test.trajectories().begin(),
      data.test.trajectories().begin() + num_queries);

  eval::Table table(
      "Fig. 6: mean k-NN query time (ms), k = 50, Porto-like",
      {"DB size", "EDR", "EDwP", "t2vec scan", "t2vec LSH",
       "encode (offline)"});

  for (size_t db_size : db_sizes) {
    T2VEC_CHECK(data.test.size() >= num_queries + db_size);
    std::vector<traj::Trajectory> database(
        data.test.trajectories().begin() + num_queries,
        data.test.trajectories().begin() + num_queries + db_size);

    Stopwatch watch;
    for (const auto& q : queries) dist::KnnQuery(edr, q, database, k);
    const double edr_ms = watch.ElapsedMillis() / num_queries;

    watch.Reset();
    for (const auto& q : queries) dist::KnnQuery(edwp, q, database, k);
    const double edwp_ms = watch.ElapsedMillis() / num_queries;

    // t2vec: offline encoding of the database, then per-query encode+scan.
    watch.Reset();
    const nn::Matrix db_vecs = model.Encode(database);
    const double encode_ms = watch.ElapsedMillis();
    auto index =
        core::CreateIndex(core::IndexConfig{}, db_vecs.cols()).value();
    for (size_t r = 0; r < db_vecs.rows(); ++r) {
      index->Add({db_vecs.Row(r), db_vecs.cols()});
    }
    const nn::Matrix query_vecs = model.Encode(queries);

    watch.Reset();
    for (size_t q = 0; q < num_queries; ++q) {
      index->Query({query_vecs.Row(q), query_vecs.cols()}, k);
    }
    const double scan_ms = watch.ElapsedMillis() / num_queries;

    core::IndexConfig lsh_config;
    lsh_config.kind = core::IndexKind::kLsh;
    lsh_config.lsh_tables = 6;
    lsh_config.lsh_bits = 12;
    lsh_config.lsh_seed = 9;
    auto lsh = core::CreateIndex(lsh_config, db_vecs.cols()).value();
    for (size_t r = 0; r < db_vecs.rows(); ++r) {
      lsh->Add({db_vecs.Row(r), db_vecs.cols()});
    }
    watch.Reset();
    for (size_t q = 0; q < num_queries; ++q) {
      lsh->Query({query_vecs.Row(q), query_vecs.cols()}, k);
    }
    const double lsh_ms = watch.ElapsedMillis() / num_queries;

    table.AddRow(std::to_string(num_queries + db_size),
                 {edr_ms, edwp_ms, scan_ms, lsh_ms, encode_ms}, 3);
  }
  table.Print();
  std::printf("\nNote: 'encode (offline)' is the one-off cost of embedding "
              "the whole database;\nqueries then touch only |v|-dim vectors "
              "(paper Sec. IV-D / V-D).\n");
  return 0;
}
