#ifndef T2VEC_BENCH_BENCH_COMMON_H_
#define T2VEC_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/fs.h"
#include "common/thread_pool.h"
#include "eval/cache.h"
#include "eval/experiments.h"
#include "eval/table.h"

/// \file
/// Shared setup for the experiment-reproduction bench binaries: canonical
/// dataset sizes, the shared default models (served from the on-disk cache),
/// and the scaled experiment dimensions.
///
/// Scale note (DESIGN.md §3): the paper evaluates 10,000 queries against up
/// to 100,000 database trajectories with a GPU-trained model (hidden 256,
/// ~800k training trips). This suite runs the same protocol scaled so the
/// whole table set regenerates in under an hour on one CPU core: ~120
/// queries, databases up to ~4k, hidden 96, ~1.2k training trips. Mean-rank
/// magnitudes therefore differ from the paper's; the reproduced signal is
/// the *ordering and shape* of each table (see EXPERIMENTS.md). Multiply
/// every workload with T2VEC_BENCH_SCALE (e.g. 0.25 for a smoke run).

namespace t2vec::bench {

/// Prints the thread count the hot paths will use (set via T2VEC_THREADS);
/// timings are only comparable across runs at the same count, while results
/// are bit-identical at any count (common/thread_pool.h).
inline void PrintThreadSetup() {
  std::printf("threads: %d (T2VEC_THREADS to override; results are "
              "thread-count independent)\n",
              GetNumThreads());
}

/// Writes a flat {"metric": value} JSON map — the stable artifact format the
/// microbenches emit for before/after comparisons (e.g. BENCH_gemm.json,
/// tracked in EXPERIMENTS.md).
inline void WriteBenchJson(
    const std::string& path,
    const std::vector<std::pair<std::string, double>>& metrics) {
  std::string text = "{\n";
  char buf[160];
  for (size_t i = 0; i < metrics.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "  \"%s\": %.6g%s\n",
                  metrics[i].first.c_str(), metrics[i].second,
                  i + 1 < metrics.size() ? "," : "");
    text += buf;
  }
  text += "}\n";
  if (t2vec::Status status = t2vec::WriteFileAtomic(path, text);
      !status.ok()) {
    std::fprintf(stderr, "WriteBenchJson: %s\n", status.ToString().c_str());
  }
}

/// Canonical training-set sizes for the shared default models.
inline size_t PortoTrainTrips() { return eval::Scaled(1200, 64); }
inline size_t HarbinTrainTrips() { return eval::Scaled(700, 64); }

/// Test pools: large enough for the biggest database sweep.
inline size_t PortoTestTrips() { return eval::Scaled(5300, 600); }
inline size_t HarbinTestTrips() { return eval::Scaled(2300, 400); }

/// Queries per most-similar-search experiment (paper: 10,000).
inline size_t NumQueries() { return eval::Scaled(120, 32); }

/// Default database distractor count when it is not the swept variable
/// (paper: 100k total).
inline size_t DefaultDbDistractors() { return eval::Scaled(3000, 128); }

/// Training iterations for the vRNN baselines.
inline size_t VRnnIterations() { return eval::Scaled(300, 64); }

/// Training iterations for the per-variant ablation models (Tables VII-IX,
/// Fig. 7). Kept below the default model's budget: the ablations compare
/// variants at a fixed, smaller compute budget.
inline size_t AblationIterations() { return eval::Scaled(180, 60); }

/// The shared default Porto-like model (trained once, then cached).
inline core::T2Vec PortoModel(const eval::ExperimentData& data) {
  core::T2VecConfig config = eval::DefaultBenchConfig();
  config.max_iterations = eval::Scaled(2000, 150);
  return eval::GetOrTrainModel("porto_default", data.train.trajectories(),
                               config);
}

/// The shared default Harbin-like model.
inline core::T2Vec HarbinModel(const eval::ExperimentData& data) {
  core::T2VecConfig config = eval::DefaultBenchConfig();
  config.max_iterations = eval::Scaled(550, 100);  // Longer sequences; more
  // iterations do not help on this preset (EXPERIMENTS.md, Table III).
  return eval::GetOrTrainModel("harbin_default", data.train.trajectories(),
                               config);
}

/// Canonical datasets for the two presets.
inline eval::ExperimentData PortoData() {
  return eval::MakeData(eval::DatasetKind::kPortoLike, PortoTrainTrips(),
                        PortoTestTrips());
}
inline eval::ExperimentData HarbinData() {
  return eval::MakeData(eval::DatasetKind::kHarbinLike, HarbinTrainTrips(),
                        HarbinTestTrips());
}

}  // namespace t2vec::bench

#endif  // T2VEC_BENCH_BENCH_COMMON_H_
