// Reproduces Table III: mean rank of the most-similar-trajectory search as
// the database (distractor set P) grows, on both datasets.
//
// Paper shape: every method degrades as the database grows; CMS is worst,
// LCSS ~ vRNN, EDwP is the best baseline, and t2vec is several times better
// than EDwP at every size.

#include "bench_common.h"
#include "core/vrnn.h"
#include "dist/classic.h"
#include "dist/cms.h"
#include "dist/edwp.h"

namespace {

using namespace t2vec;
using namespace t2vec::bench;

void RunDataset(const char* name, const eval::ExperimentData& data,
                const core::T2Vec& model, core::VRnn& vrnn,
                const std::vector<size_t>& db_sizes) {
  const double cell = model.config().cell_size;
  dist::EdrMeasure edr(cell);
  dist::LcssMeasure lcss(cell);
  dist::CmsMeasure cms(&model.vocab());
  dist::EdwpMeasure edwp;

  eval::Table table(std::string("Table III: mean rank vs. database size (") +
                        name + ")",
                    {"DB size", "EDR", "LCSS", "CMS", "vRNN", "EDwP",
                     "t2vec"});
  const size_t num_queries = NumQueries();
  for (size_t db : db_sizes) {
    const eval::MssData mss = eval::BuildMss(data.test, num_queries, db);
    table.AddRow(std::to_string(num_queries + db),
                 {eval::MeanRankOfMeasure(edr, mss),
                  eval::MeanRankOfMeasure(lcss, mss),
                  eval::MeanRankOfMeasure(cms, mss),
                  eval::MeanRankOfVRnn(vrnn, model.vocab(), mss),
                  eval::MeanRankOfMeasure(edwp, mss),
                  eval::MeanRankOfT2Vec(model, mss)});
  }
  table.Print();
}

}  // namespace

int main() {
  // Paper sweeps P in {20k..100k}; scaled to {1k..5k} (see bench_common.h).
  const std::vector<size_t> porto_sizes = {
      eval::Scaled(800, 64), eval::Scaled(1600, 128), eval::Scaled(2400, 192),
      eval::Scaled(3200, 256), eval::Scaled(4000, 320)};

  {
    const eval::ExperimentData porto = PortoData();
    const core::T2Vec model = PortoModel(porto);
    core::VRnn vrnn =
        eval::GetOrTrainVRnn("porto_vrnn", porto.train.trajectories(),
                             model.vocab(), model.config(),
                             bench::VRnnIterations());
    RunDataset("Porto-like", porto, model, vrnn, porto_sizes);
  }
  {
    const std::vector<size_t> harbin_sizes = {
        eval::Scaled(400, 48), eval::Scaled(800, 96),
        eval::Scaled(1200, 144), eval::Scaled(1600, 192),
        eval::Scaled(2000, 240)};
    const eval::ExperimentData harbin = HarbinData();
    const core::T2Vec model = HarbinModel(harbin);
    core::VRnn vrnn =
        eval::GetOrTrainVRnn("harbin_vrnn", harbin.train.trajectories(),
                             model.vocab(), model.config(),
                             bench::VRnnIterations());
    RunDataset("Harbin-like", harbin, model, vrnn, harbin_sizes);
  }
  return 0;
}
