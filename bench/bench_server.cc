// Full-stack serving benchmark: closed-loop TCP clients drive the network
// front door (serve/server.h) end to end — frame encode, socket hop,
// micro-batched model encode, WAL fsync (for inserts), exact kNN (for
// queries) — and measure client-observed latency. Emits BENCH_server.json
// (tracked in EXPERIMENTS.md).
//
// Protocol: C clients each own one TCP connection and keep exactly one
// request outstanding. Phase 1 inserts distinct trajectories (every ack
// means the vector is fsynced into the WAL); phase 2 runs kNN queries over
// the store the inserts just built. Latency is measured at the client,
// around the whole Call round trip.

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "serve/client.h"
#include "serve/durable_store.h"
#include "serve/metrics.h"
#include "serve/server.h"

namespace t2vec::bench {
namespace {

struct PhaseResult {
  double seconds = 0.0;
  size_t requests = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

/// Runs `op` closed-loop on `clients` threads; op(c, r) issues one request
/// on client c's own connection and returns false on error.
template <typename Op>
PhaseResult RunPhase(size_t num_clients, size_t requests_per_client,
                     const Op& op) {
  serve::Histogram latency_us(serve::LatencyBucketsUs());
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (size_t c = 0; c < num_clients; ++c) {
    threads.emplace_back([&, c] {
      for (size_t r = 0; r < requests_per_client; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        if (!op(c, r)) return;
        latency_us.Observe(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - t0)
                .count());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  PhaseResult out;
  out.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  out.requests = static_cast<size_t>(latency_us.count());
  out.p50_us = latency_us.Quantile(0.5);
  out.p99_us = latency_us.Quantile(0.99);
  return out;
}

}  // namespace
}  // namespace t2vec::bench

int main() {
  using namespace t2vec;
  using namespace t2vec::bench;

  PrintThreadSetup();

  const eval::ExperimentData data = eval::MakeData(
      eval::DatasetKind::kPortoLike, eval::Scaled(300, 64), 0);
  core::T2VecConfig config = eval::DefaultBenchConfig();
  config.hidden = 48;
  config.max_iterations = eval::Scaled(120, 40);
  const core::T2Vec model = eval::GetOrTrainModel(
      "serve_bench", data.train.trajectories(), config);

  // Fresh store directory per run (reruns would otherwise hit duplicate-id
  // rejections from the durable store).
  const std::string dir = "bench_server_data";
  std::remove((dir + "/store.snapshot").c_str());
  std::remove((dir + "/wal.log").c_str());
  Result<std::unique_ptr<serve::DurableStore>> store =
      serve::DurableStore::Open(dir, config.hidden);
  if (!store.ok()) {
    std::fprintf(stderr, "store: %s\n", store.status().ToString().c_str());
    return 1;
  }

  serve::ServerOptions options;
  options.port = 0;  // Ephemeral: the benchmark must not fight over a port.
  options.service.batch_window = std::chrono::microseconds(500);
  serve::TcpServer server(&model, store.value().get(), options);
  if (Status status = server.Start(); !status.ok()) {
    std::fprintf(stderr, "server: %s\n", status.ToString().c_str());
    return 1;
  }

  const size_t clients = 8;
  const size_t requests_per_client = eval::Scaled(150, 30);
  const std::vector<traj::Trajectory>& trips = data.train.trajectories();

  std::vector<std::unique_ptr<serve::TcpClient>> conns;
  for (size_t c = 0; c < clients; ++c) {
    Result<std::unique_ptr<serve::TcpClient>> conn =
        serve::TcpClient::Connect("127.0.0.1", server.port());
    if (!conn.ok()) {
      std::fprintf(stderr, "connect: %s\n", conn.status().ToString().c_str());
      return 1;
    }
    conns.push_back(std::move(conn).value());
  }

  std::printf("\nclosed loop over TCP: %zu clients x %zu requests/phase\n",
              clients, requests_per_client);

  const PhaseResult insert =
      RunPhase(clients, requests_per_client, [&](size_t c, size_t r) {
        traj::Trajectory trip = trips[(c + r * clients) % trips.size()];
        trip.id = static_cast<int64_t>(c * requests_per_client + r);
        Result<int64_t> result = conns[c]->Insert(trip);
        if (!result.ok()) {
          std::fprintf(stderr, "insert: %s\n",
                       result.status().ToString().c_str());
          return false;
        }
        return true;
      });
  const PhaseResult knn =
      RunPhase(clients, requests_per_client, [&](size_t c, size_t r) {
        const traj::Trajectory& trip = trips[(c + r * clients) % trips.size()];
        Result<serve::EmbeddingStore::Neighbors> result =
            conns[c]->Knn(trip, 10);
        if (!result.ok() || result.value().size() == 0) {
          std::fprintf(stderr, "knn failed at client %zu\n", c);
          return false;
        }
        return true;
      });

  const double insert_rps = static_cast<double>(insert.requests) /
                            insert.seconds;
  const double knn_rps = static_cast<double>(knn.requests) / knn.seconds;
  std::printf("%-8s %12s %12s %12s\n", "phase", "req/s", "p50_us", "p99_us");
  std::printf("%-8s %12.1f %12.1f %12.1f\n", "insert", insert_rps,
              insert.p50_us, insert.p99_us);
  std::printf("%-8s %12.1f %12.1f %12.1f\n", "knn", knn_rps, knn.p50_us,
              knn.p99_us);
  std::printf("store: %zu vectors, wal %llu bytes\n", store.value()->size(),
              static_cast<unsigned long long>(store.value()->wal_bytes()));

  conns.clear();
  server.Stop();

  WriteBenchJson("BENCH_server.json",
                 {{"insert_throughput_rps", insert_rps},
                  {"insert_p50_us", insert.p50_us},
                  {"insert_p99_us", insert.p99_us},
                  {"knn_throughput_rps", knn_rps},
                  {"knn_p50_us", knn.p50_us},
                  {"knn_p99_us", knn.p99_us},
                  {"store_vectors", static_cast<double>(store.value()->size())}});
  std::printf("\nwrote BENCH_server.json\n");
  return 0;
}
