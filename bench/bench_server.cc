// Full-stack serving benchmark: closed-loop TCP clients drive the network
// front door (serve/server.h) end to end — frame encode, socket hop,
// micro-batched model encode, WAL fsync (for inserts), exact kNN (for
// queries) — and measure client-observed latency. Emits BENCH_server.json
// (tracked in EXPERIMENTS.md).
//
// Protocol: C clients each own one TCP connection and keep exactly one
// request outstanding. Phase 1 inserts distinct trajectories (every ack
// means the vector is fsynced into the WAL); phase 2 runs kNN queries over
// the store the inserts just built; phase 3 repeats the kNN mix through
// RetryingClients while ~10% of socket operations carry injected faults and
// a slowloris connection dribbles one byte at a time — measuring what
// overload governance costs the well-behaved clients (faulted p99, error
// rate, and how fast the dribbler is reaped). Latency is measured at the
// client, around the whole Call round trip (including retries in phase 3).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/fault.h"
#include "serve/client.h"
#include "serve/durable_store.h"
#include "serve/metrics.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace t2vec::bench {
namespace {

struct PhaseResult {
  double seconds = 0.0;
  size_t requests = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

/// Runs `op` closed-loop on `clients` threads; op(c, r) issues one request
/// on client c's own connection and returns false on error.
template <typename Op>
PhaseResult RunPhase(size_t num_clients, size_t requests_per_client,
                     const Op& op) {
  serve::Histogram latency_us(serve::LatencyBucketsUs());
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (size_t c = 0; c < num_clients; ++c) {
    threads.emplace_back([&, c] {
      for (size_t r = 0; r < requests_per_client; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        if (!op(c, r)) return;
        latency_us.Observe(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - t0)
                .count());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  PhaseResult out;
  out.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  out.requests = static_cast<size_t>(latency_us.count());
  out.p50_us = latency_us.Quantile(0.5);
  out.p99_us = latency_us.Quantile(0.99);
  return out;
}

/// Plays slowloris against the server: connects, dribbles a valid stats
/// frame one byte per 100 ms, and returns how long the server let it live.
/// The governance contract is read_timeout-driven reaping, so this should
/// come back near options.read_timeout, not the ~2.3 s the dribble wants.
int64_t MeasureSlowlorisReapMs(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return -1;
  }
  std::string wire;
  serve::AppendFrame(serve::EncodeRequest(serve::Request{}), &wire);
  const auto start = std::chrono::steady_clock::now();
  for (char byte : wire) {
    if (::send(fd, &byte, 1, MSG_NOSIGNAL) != 1) break;  // Server hung up.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  // Block (bounded by a recv timeout) until the reaper closes the socket.
  timeval timeout{};
  timeout.tv_sec = 30;
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  char sink[256];
  while (::recv(fd, sink, sizeof(sink), 0) > 0) {
  }
  const int64_t elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                              std::chrono::steady_clock::now() - start)
                              .count();
  ::close(fd);
  return elapsed;
}

}  // namespace
}  // namespace t2vec::bench

int main() {
  using namespace t2vec;
  using namespace t2vec::bench;

  PrintThreadSetup();

  const eval::ExperimentData data = eval::MakeData(
      eval::DatasetKind::kPortoLike, eval::Scaled(300, 64), 0);
  core::T2VecConfig config = eval::DefaultBenchConfig();
  config.hidden = 48;
  config.max_iterations = eval::Scaled(120, 40);
  const core::T2Vec model = eval::GetOrTrainModel(
      "serve_bench", data.train.trajectories(), config);

  // Fresh store directory per run (reruns would otherwise hit duplicate-id
  // rejections from the durable store).
  const std::string dir = "bench_server_data";
  std::remove((dir + "/store.snapshot").c_str());
  std::remove((dir + "/wal.log").c_str());
  Result<std::unique_ptr<serve::DurableStore>> store =
      serve::DurableStore::Open(dir, config.hidden);
  if (!store.ok()) {
    std::fprintf(stderr, "store: %s\n", store.status().ToString().c_str());
    return 1;
  }

  serve::ServerOptions options;
  options.port = 0;  // Ephemeral: the benchmark must not fight over a port.
  options.service.batch_window = std::chrono::microseconds(500);
  // Tight enough that the phase-3 slowloris reap is visible inside the run;
  // the closed-loop clients never idle, so they are unaffected.
  options.idle_timeout = std::chrono::milliseconds(5'000);
  options.read_timeout = std::chrono::milliseconds(1'000);
  serve::TcpServer server(&model, store.value().get(), options);
  if (Status status = server.Start(); !status.ok()) {
    std::fprintf(stderr, "server: %s\n", status.ToString().c_str());
    return 1;
  }

  const size_t clients = 8;
  const size_t requests_per_client = eval::Scaled(150, 30);
  const std::vector<traj::Trajectory>& trips = data.train.trajectories();

  std::vector<std::unique_ptr<serve::TcpClient>> conns;
  for (size_t c = 0; c < clients; ++c) {
    Result<std::unique_ptr<serve::TcpClient>> conn =
        serve::TcpClient::Connect("127.0.0.1", server.port());
    if (!conn.ok()) {
      std::fprintf(stderr, "connect: %s\n", conn.status().ToString().c_str());
      return 1;
    }
    conns.push_back(std::move(conn).value());
  }

  std::printf("\nclosed loop over TCP: %zu clients x %zu requests/phase\n",
              clients, requests_per_client);

  const PhaseResult insert =
      RunPhase(clients, requests_per_client, [&](size_t c, size_t r) {
        traj::Trajectory trip = trips[(c + r * clients) % trips.size()];
        trip.id = static_cast<int64_t>(c * requests_per_client + r);
        Result<int64_t> result = conns[c]->Insert(trip);
        if (!result.ok()) {
          std::fprintf(stderr, "insert: %s\n",
                       result.status().ToString().c_str());
          return false;
        }
        return true;
      });
  const PhaseResult knn =
      RunPhase(clients, requests_per_client, [&](size_t c, size_t r) {
        const traj::Trajectory& trip = trips[(c + r * clients) % trips.size()];
        Result<serve::EmbeddingStore::Neighbors> result =
            conns[c]->Knn(trip, 10);
        if (!result.ok() || result.value().size() == 0) {
          std::fprintf(stderr, "knn failed at client %zu\n", c);
          return false;
        }
        return true;
      });

  // Phase 3: the same kNN mix through RetryingClients while ~10% of socket
  // sends and receives (client and server side alike — the registry is
  // process-global) fail with injected errnos, and a slowloris dribbler
  // leans on the reaper. The numbers to watch: how far p99 moves versus the
  // clean kNN phase, what fraction of ops still end in an error after
  // retries, and how fast the dribbler is evicted.
  std::vector<std::unique_ptr<serve::RetryingClient>> retriers;
  for (size_t c = 0; c < clients; ++c) {
    serve::RetryOptions retry;
    retry.initial_backoff = std::chrono::milliseconds(2);
    retry.max_backoff = std::chrono::milliseconds(50);
    retry.jitter_seed = c + 1;
    retriers.push_back(std::make_unique<serve::RetryingClient>(
        "127.0.0.1", server.port(), retry));
  }
  fault::ArmEvery("net.send", 10, EPIPE);
  fault::ArmEvery("net.recv", 10, ECONNRESET);
  std::atomic<int64_t> faulted_errors{0};
  std::atomic<int64_t> slowloris_reap_ms{-1};
  std::thread slowloris([&] {
    slowloris_reap_ms.store(MeasureSlowlorisReapMs(server.port()));
  });
  const PhaseResult faulted =
      RunPhase(clients, requests_per_client, [&](size_t c, size_t r) {
        const traj::Trajectory& trip = trips[(c + r * clients) % trips.size()];
        Result<serve::EmbeddingStore::Neighbors> result =
            retriers[c]->Knn(trip, 10);
        if (!result.ok()) faulted_errors.fetch_add(1);
        return true;  // Errors are data here, not a reason to stop.
      });
  slowloris.join();
  fault::DisarmAll();
  int64_t faulted_retries = 0;
  for (const auto& retrier : retriers) faulted_retries += retrier->retries();
  const double faulted_error_rate =
      static_cast<double>(faulted_errors.load()) /
      static_cast<double>(clients * requests_per_client);

  const double insert_rps = static_cast<double>(insert.requests) /
                            insert.seconds;
  const double knn_rps = static_cast<double>(knn.requests) / knn.seconds;
  const double faulted_rps =
      static_cast<double>(faulted.requests) / faulted.seconds;
  std::printf("%-12s %12s %12s %12s\n", "phase", "req/s", "p50_us", "p99_us");
  std::printf("%-12s %12.1f %12.1f %12.1f\n", "insert", insert_rps,
              insert.p50_us, insert.p99_us);
  std::printf("%-12s %12.1f %12.1f %12.1f\n", "knn", knn_rps, knn.p50_us,
              knn.p99_us);
  std::printf("%-12s %12.1f %12.1f %12.1f\n", "knn+faults", faulted_rps,
              faulted.p50_us, faulted.p99_us);
  std::printf(
      "faults: error rate %.4f, %lld retries, slowloris reaped in %lld ms\n",
      faulted_error_rate, static_cast<long long>(faulted_retries),
      static_cast<long long>(slowloris_reap_ms.load()));
  std::printf("store: %zu vectors, wal %llu bytes\n", store.value()->size(),
              static_cast<unsigned long long>(store.value()->wal_bytes()));

  retriers.clear();
  conns.clear();
  server.Stop();

  WriteBenchJson("BENCH_server.json",
                 {{"insert_throughput_rps", insert_rps},
                  {"insert_p50_us", insert.p50_us},
                  {"insert_p99_us", insert.p99_us},
                  {"knn_throughput_rps", knn_rps},
                  {"knn_p50_us", knn.p50_us},
                  {"knn_p99_us", knn.p99_us},
                  {"faulted_knn_throughput_rps", faulted_rps},
                  {"faulted_knn_p50_us", faulted.p50_us},
                  {"faulted_knn_p99_us", faulted.p99_us},
                  {"faulted_error_rate", faulted_error_rate},
                  {"faulted_retries", static_cast<double>(faulted_retries)},
                  {"slowloris_reap_ms",
                   static_cast<double>(slowloris_reap_ms.load())},
                  {"store_vectors", static_cast<double>(store.value()->size())}});
  std::printf("\nwrote BENCH_server.json\n");
  return 0;
}
