// Microbenchmarks of the neural substrate: GEMM kernels, a batched GRU
// step, and trajectory encoding throughput. These bound the training and
// offline-encoding speed reported by the experiment benches.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "nn/gru.h"
#include "nn/matrix.h"

namespace {

using namespace t2vec;
using namespace t2vec::nn;

Matrix RandomMatrix(size_t r, size_t c, uint64_t seed) {
  Rng rng(seed);
  Matrix m(r, c);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.Uniform(-1, 1));
  }
  return m;
}

void BM_Gemm(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Matrix a = RandomMatrix(n, n, 1);
  const Matrix b = RandomMatrix(n, n, 2);
  Matrix out(n, n);
  for (auto _ : state) {
    Gemm(a, b, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      static_cast<double>(2 * n * n * n) * state.iterations() / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Gemm)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmTransB(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Matrix a = RandomMatrix(n, n, 3);
  const Matrix b = RandomMatrix(n, n, 4);
  Matrix out(n, n);
  for (auto _ : state) {
    GemmTransB(a, b, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      static_cast<double>(2 * n * n * n) * state.iterations() / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GemmTransB)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_GruForwardStep(benchmark::State& state) {
  const size_t hidden = static_cast<size_t>(state.range(0));
  const size_t batch = 64;
  Rng rng(5);
  GruLayer layer("bench", hidden, hidden, rng);
  const std::vector<Matrix> xs = {RandomMatrix(batch, hidden, 6)};
  const Matrix h0 = RandomMatrix(batch, hidden, 7);
  GruCache cache;
  for (auto _ : state) {
    layer.Forward(xs, h0, {}, &cache);
    benchmark::DoNotOptimize(cache.h.back().data());
  }
}
BENCHMARK(BM_GruForwardStep)->Arg(32)->Arg(64)->Arg(96)->Arg(128);

void BM_GruForwardBackwardSequence(benchmark::State& state) {
  // One full BPTT pass over a 60-step sequence — the training inner loop.
  const size_t hidden = static_cast<size_t>(state.range(0));
  const size_t batch = 64, steps = 60;
  Rng rng(8);
  GruLayer layer("bench", hidden, hidden, rng);
  std::vector<Matrix> xs;
  for (size_t t = 0; t < steps; ++t) {
    xs.push_back(RandomMatrix(batch, hidden, 100 + t));
  }
  const Matrix h0(batch, hidden);
  GruCache cache;
  std::vector<Matrix> d_hs(steps);
  for (size_t t = 0; t < steps; ++t) {
    d_hs[t] = RandomMatrix(batch, hidden, 200 + t);
  }
  for (auto _ : state) {
    layer.Forward(xs, h0, {}, &cache);
    std::vector<Matrix> d_xs;
    Matrix d_h0;
    layer.Backward(xs, h0, {}, cache, &d_hs, nullptr, &d_xs, &d_h0);
    benchmark::DoNotOptimize(d_h0.data());
  }
}
BENCHMARK(BM_GruForwardBackwardSequence)->Arg(32)->Arg(64)->Arg(96);

void BM_EncodeSequenceBatch(benchmark::State& state) {
  // Inference throughput: 2-layer GRU over a 60-token batch of 256 —
  // the offline database-encoding path.
  const size_t hidden = static_cast<size_t>(state.range(0));
  const size_t batch = 256, steps = 60;
  Rng rng(9);
  Gru gru("bench", hidden, hidden, 2, rng);
  std::vector<Matrix> xs;
  for (size_t t = 0; t < steps; ++t) {
    xs.push_back(RandomMatrix(batch, hidden, 300 + t));
  }
  Gru::ForwardResult result;
  for (auto _ : state) {
    gru.Forward(xs, nullptr, {}, &result);
    benchmark::DoNotOptimize(result.final_state.h.back().data());
  }
  state.counters["traj/s"] = benchmark::Counter(
      static_cast<double>(batch) * state.iterations(),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EncodeSequenceBatch)->Arg(64)->Arg(96);

}  // namespace

BENCHMARK_MAIN();
