// Microbenchmarks of the per-pair cost of every similarity measure as the
// trajectory length grows — the empirical backing of the paper's complexity
// argument: the DP baselines are O(n^2) (EDwP O((n+m)^2) with a larger
// constant), while the vector distance is O(|v|) after O(n) encoding.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "dist/classic.h"
#include "dist/edwp.h"
#include "geo/point.h"

namespace {

using namespace t2vec;

std::vector<geo::Point> RandomWalk(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<geo::Point> out;
  geo::Point p{0, 0};
  for (size_t i = 0; i < n; ++i) {
    p.x += rng.Uniform(-150, 150);
    p.y += rng.Uniform(-150, 150);
    out.push_back(p);
  }
  return out;
}

void BM_Dtw(benchmark::State& state) {
  const auto a = RandomWalk(static_cast<size_t>(state.range(0)), 1);
  const auto b = RandomWalk(static_cast<size_t>(state.range(0)), 2);
  for (auto _ : state) benchmark::DoNotOptimize(dist::Dtw(a, b));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Dtw)->Range(16, 256)->Complexity(benchmark::oNSquared);

void BM_Edr(benchmark::State& state) {
  const auto a = RandomWalk(static_cast<size_t>(state.range(0)), 3);
  const auto b = RandomWalk(static_cast<size_t>(state.range(0)), 4);
  for (auto _ : state) benchmark::DoNotOptimize(dist::Edr(a, b, 100.0));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Edr)->Range(16, 256)->Complexity(benchmark::oNSquared);

void BM_Lcss(benchmark::State& state) {
  const auto a = RandomWalk(static_cast<size_t>(state.range(0)), 5);
  const auto b = RandomWalk(static_cast<size_t>(state.range(0)), 6);
  for (auto _ : state) benchmark::DoNotOptimize(dist::Lcss(a, b, 100.0));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Lcss)->Range(16, 256)->Complexity(benchmark::oNSquared);

void BM_Erp(benchmark::State& state) {
  const auto a = RandomWalk(static_cast<size_t>(state.range(0)), 7);
  const auto b = RandomWalk(static_cast<size_t>(state.range(0)), 8);
  const geo::Point gap{0, 0};
  for (auto _ : state) benchmark::DoNotOptimize(dist::Erp(a, b, gap));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Erp)->Range(16, 256)->Complexity(benchmark::oNSquared);

void BM_Edwp(benchmark::State& state) {
  const auto a = RandomWalk(static_cast<size_t>(state.range(0)), 9);
  const auto b = RandomWalk(static_cast<size_t>(state.range(0)), 10);
  for (auto _ : state) benchmark::DoNotOptimize(dist::Edwp(a, b));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Edwp)->Range(16, 256)->Complexity(benchmark::oNSquared);

void BM_Frechet(benchmark::State& state) {
  const auto a = RandomWalk(static_cast<size_t>(state.range(0)), 11);
  const auto b = RandomWalk(static_cast<size_t>(state.range(0)), 12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dist::DiscreteFrechet(a, b));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Frechet)->Range(16, 256)->Complexity(benchmark::oNSquared);

// The t2vec online cost: Euclidean distance between |v|-dim vectors. This
// is what a query pays per database entry after offline encoding.
void BM_VectorDistance(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  Rng rng(13);
  std::vector<float> a(d), b(d);
  for (size_t i = 0; i < d; ++i) {
    a[i] = static_cast<float>(rng.Gaussian());
    b[i] = static_cast<float>(rng.Gaussian());
  }
  for (auto _ : state) {
    double acc = 0.0;
    for (size_t i = 0; i < d; ++i) {
      const double diff = static_cast<double>(a[i]) - b[i];
      acc += diff * diff;
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_VectorDistance)->Range(16, 256)->Complexity(benchmark::oN);

}  // namespace

BENCHMARK_MAIN();
