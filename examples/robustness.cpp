// Robustness anatomy: how each similarity measure's view of "the same trip"
// degrades as sampling quality falls — a compact, printable version of the
// paper's motivation (Fig. 1) and of Tables IV/V.
//
// For one trip we build progressively worse observations (dropping rate 0
// to 0.8, then heavy distortion) and print, for every measure, the distance
// to the original normalized by the distance to an unrelated trip. Values
// well below 1 mean the measure still recognizes the trip; values near or
// above 1 mean it is fooled.
//
// Runtime: ~1.5 minutes.

#include <cstdio>
#include <vector>

#include "core/t2vec.h"
#include "dist/classic.h"
#include "dist/edwp.h"
#include "traj/generator.h"
#include "traj/transforms.h"

int main() {
  using namespace t2vec;

  traj::SyntheticTrajectoryGenerator generator(
      traj::GeneratorConfig::PortoLike());
  traj::Dataset all = generator.Generate(1300);
  traj::Dataset train, test;
  all.Split(1200, &train, &test);

  core::T2VecConfig config;
  config.max_iterations = 500;
  config.validate_every = 250;
  const core::T2Vec model = core::T2Vec::Train(train.trajectories(), config);

  const traj::Trajectory& trip = test[0];
  const traj::Trajectory& other = test[1];

  dist::EdrMeasure edr(config.cell_size);
  dist::LcssMeasure lcss(config.cell_size);
  dist::DtwMeasure dtw;
  dist::EdwpMeasure edwp;
  const core::T2VecMeasure t2v(&model);
  const std::vector<const dist::Measure*> measures = {&t2v, &edwp, &edr,
                                                      &lcss, &dtw};

  std::printf("\nratio d(trip, degraded trip) / d(trip, unrelated trip)\n");
  std::printf("(< 1: variant recognized as closer than a random trip; "
              ">= 1: fooled)\n\n");
  std::printf("%-26s", "degradation");
  for (const auto* m : measures) std::printf("%10s", m->Name().c_str());
  std::printf("\n");

  Rng rng(17);
  auto report = [&](const char* label, const traj::Trajectory& variant) {
    std::printf("%-26s", label);
    for (const auto* m : measures) {
      const double to_variant = m->Distance(trip, variant);
      const double to_other = m->Distance(trip, other);
      std::printf("%10.3f", to_other > 0 ? to_variant / to_other : 0.0);
    }
    std::printf("\n");
  };

  for (double r1 : {0.0, 0.2, 0.4, 0.6, 0.8}) {
    char label[64];
    std::snprintf(label, sizeof(label), "drop %.0f%% of points", r1 * 100);
    report(label, traj::Downsample(trip, r1, rng));
  }
  for (double r2 : {0.3, 0.6, 1.0}) {
    char label[64];
    std::snprintf(label, sizeof(label), "distort %.0f%% (30 m)", r2 * 100);
    report(label, traj::Distort(trip, r2, rng));
  }
  {
    // The paper's hardest setting: sparse AND noisy.
    traj::Trajectory worst = traj::Downsample(trip, 0.6, rng);
    worst = traj::Distort(worst, 0.6, rng);
    report("drop 60% + distort 60%", worst);
  }
  return 0;
}
