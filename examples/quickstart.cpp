// Quickstart: the end-to-end t2vec pipeline on a small synthetic dataset.
//
// 1. Generate synthetic taxi trips (the library's stand-in for Porto).
// 2. Train a t2vec model (vocabulary -> cell pretraining -> seq2seq).
// 3. Encode trajectories into vectors and run a most-similar-trajectory
//    search, showing that a downsampled variant of a trip is mapped next to
//    the original while classical EDR is fooled.
//
// Runtime: ~1-2 minutes on one CPU core.

#include <cstdio>

#include "core/t2vec.h"
#include "dist/classic.h"
#include "dist/knn.h"
#include "eval/experiments.h"
#include "traj/generator.h"
#include "traj/transforms.h"

int main() {
  using namespace t2vec;

  // --- 1. Data ---------------------------------------------------------
  std::printf("generating synthetic trips...\n");
  traj::GeneratorConfig gen_config = traj::GeneratorConfig::PortoLike();
  traj::SyntheticTrajectoryGenerator generator(gen_config);
  traj::Dataset all = generator.Generate(1200);
  traj::Dataset train, test;
  all.Split(1000, &train, &test);
  std::printf("train: %zu trips, test: %zu trips, mean length %.1f points\n",
              train.size(), test.size(), train.MeanLength());

  // --- 2. Train --------------------------------------------------------
  core::T2VecConfig config;
  config.max_iterations = 500;
  config.validate_every = 250;
  core::TrainStats stats;
  core::T2Vec model = core::T2Vec::Train(train.trajectories(), config, &stats);
  std::printf("trained %zu iters in %.0fs (best val loss %.3f)\n",
              stats.iterations, stats.train_seconds, stats.best_val_loss);

  // --- 3. Search -------------------------------------------------------
  // Split each test trip into interleaved halves: the first half queries a
  // database containing everybody's second half; a good measure ranks the
  // query's own twin first (paper Sec. V-C1).
  eval::MssData mss = eval::BuildMss(test, 100, 100);

  const double t2vec_rank = eval::MeanRankOfT2Vec(model, mss);
  dist::EdrMeasure edr(config.cell_size);
  const double edr_rank = eval::MeanRankOfMeasure(edr, mss);
  std::printf("\nmost-similar search over %zu queries, database %zu:\n",
              mss.queries.size(), mss.database.size());
  std::printf("  mean rank  t2vec: %6.2f   EDR: %6.2f   (1.0 is perfect)\n",
              t2vec_rank, edr_rank);

  // Single-pair demo: encode a trip and a heavily downsampled variant.
  Rng rng(7);
  const traj::Trajectory& trip = test[0];
  const traj::Trajectory sparse = traj::Downsample(trip, 0.6, rng);
  const traj::Trajectory other = test[1];
  std::printf("\npairwise distances (trip vs. its 60%%-downsampled variant, "
              "and vs. an unrelated trip):\n");
  std::printf("  t2vec: %.3f vs %.3f\n", model.Distance(trip, sparse),
              model.Distance(trip, other));
  std::printf("  EDR  : %.0f vs %.0f\n", edr.Distance(trip, sparse),
              edr.Distance(trip, other));
  std::printf("\nA small t2vec distance for the variant and a large one for "
              "the unrelated trip\nmeans the representation recovered the "
              "underlying route despite the sparsity.\n");
  return 0;
}
