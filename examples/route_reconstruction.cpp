// Route reconstruction: the generative side of t2vec.
//
// The paper's objective is maximizing P(R|T) — inferring the most likely
// underlying route R from a sparse, noisy observation T (Sec. IV-A). After
// training, the decoder can actually be *run*: encode the sparse trajectory,
// then greedily decode the dense cell sequence. This example drops 70% of a
// trip's points, reconstructs the route, and scores the reconstruction
// against the withheld dense trip with Hausdorff and Fréchet distances —
// compared against straight-line interpolation of the sparse input.
//
// Runtime: ~1.5 minutes.

#include <cstdio>

#include "core/t2vec.h"
#include "dist/classic.h"
#include "traj/generator.h"
#include "traj/transforms.h"

namespace {

using namespace t2vec;

// Densifies `sparse` by straight-line interpolation to ~`target` points —
// the geometric baseline EDwP-style methods implicitly assume.
traj::Trajectory LinearInterpolate(const traj::Trajectory& sparse,
                                   size_t target) {
  traj::Trajectory out;
  out.id = sparse.id;
  if (sparse.size() < 2) return sparse;
  const double total = sparse.Length();
  const double spacing = total / static_cast<double>(target);
  out.points = traj::SampleAlongPolyline(sparse.points, spacing);
  return out;
}

}  // namespace

int main() {
  traj::SyntheticTrajectoryGenerator generator(
      traj::GeneratorConfig::PortoLike());
  traj::Dataset all = generator.Generate(1250);
  traj::Dataset train, test;
  all.Split(1200, &train, &test);

  core::T2VecConfig config;
  config.max_iterations = 500;
  config.validate_every = 250;
  const core::T2Vec model = core::T2Vec::Train(train.trajectories(), config);

  std::printf("\n%-8s%14s%14s%16s%16s\n", "trip", "kept points",
              "hausdorff(nn)", "hausdorff(lin)", "frechet(nn)");
  Rng rng(3);
  double nn_total = 0.0, lin_total = 0.0;
  const int trials = 10;
  for (int i = 0; i < trials; ++i) {
    const traj::Trajectory& dense = test[static_cast<size_t>(i)];
    const traj::Trajectory sparse = traj::Downsample(dense, 0.7, rng);

    const traj::Trajectory reconstructed = model.ReconstructRoute(sparse);
    const traj::Trajectory interpolated =
        LinearInterpolate(sparse, dense.size());

    const double h_nn =
        dist::Hausdorff(reconstructed.points, dense.points);
    const double h_lin =
        dist::Hausdorff(interpolated.points, dense.points);
    const double f_nn =
        dist::DiscreteFrechet(reconstructed.points, dense.points);
    nn_total += h_nn;
    lin_total += h_lin;
    std::printf("%-8d%8zu/%zu%13.0fm%15.0fm%15.0fm\n", i, sparse.size(),
                dense.size(), h_nn, h_lin, f_nn);
  }
  std::printf("\nmean Hausdorff to the true dense trip: decoder %.0f m, "
              "linear interpolation %.0f m\n",
              nn_total / trials, lin_total / trials);
  std::printf(
      "(Generation is a much harder task than encoding: at this example's "
      "small\ntraining budget the decoder usually loses to straight-line "
      "interpolation on\nnear-linear roads; it needs convergence-level "
      "training to exploit learned\ntransition patterns. The encoding-side "
      "robustness results do not depend on it.)\n");
  return 0;
}
