// Trajectory clustering on learned representations — the paper's first
// future-work item (Sec. VI.1), and the use case its linear-time similarity
// enables: k-means over vectors costs O(N k |v|) per iteration instead of
// O(N k n^2) DP evaluations.
//
// Trips are generated from a handful of synthetic corridors; k-means over
// t2vec vectors recovers the corridor structure, which is checked with a
// simple purity score against the generator's hidden labels.
//
// Runtime: ~2 minutes.

#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "common/rng.h"
#include "core/t2vec.h"
#include "traj/generator.h"
#include "traj/transforms.h"

namespace {

using namespace t2vec;

// Plain k-means over matrix rows.
std::vector<int> KMeans(const nn::Matrix& vectors, int k, int iterations,
                        Rng& rng) {
  const size_t n = vectors.rows(), d = vectors.cols();
  nn::Matrix centroids(static_cast<size_t>(k), d);
  for (int c = 0; c < k; ++c) {
    const size_t pick = rng.UniformInt(n);
    std::copy(vectors.Row(pick), vectors.Row(pick) + d,
              centroids.Row(static_cast<size_t>(c)));
  }
  std::vector<int> assignment(n, 0);
  for (int iter = 0; iter < iterations; ++iter) {
    for (size_t i = 0; i < n; ++i) {
      double best = 1e300;
      for (int c = 0; c < k; ++c) {
        double dist = 0.0;
        for (size_t j = 0; j < d; ++j) {
          const double diff = vectors.At(i, j) -
                              centroids.At(static_cast<size_t>(c), j);
          dist += diff * diff;
        }
        if (dist < best) {
          best = dist;
          assignment[i] = c;
        }
      }
    }
    centroids.SetZero();
    std::vector<int> counts(static_cast<size_t>(k), 0);
    for (size_t i = 0; i < n; ++i) {
      counts[static_cast<size_t>(assignment[i])]++;
      for (size_t j = 0; j < d; ++j) {
        centroids.At(static_cast<size_t>(assignment[i]), j) +=
            vectors.At(i, j);
      }
    }
    for (int c = 0; c < k; ++c) {
      if (counts[static_cast<size_t>(c)] == 0) continue;
      for (size_t j = 0; j < d; ++j) {
        centroids.At(static_cast<size_t>(c), j) /=
            static_cast<float>(counts[static_cast<size_t>(c)]);
      }
    }
  }
  return assignment;
}

}  // namespace

int main() {
  // Training data: ordinary synthetic trips.
  traj::SyntheticTrajectoryGenerator generator(
      traj::GeneratorConfig::PortoLike());
  traj::Dataset train = generator.Generate(1200);

  core::T2VecConfig config;
  config.max_iterations = 500;
  config.validate_every = 250;
  const core::T2Vec model = core::T2Vec::Train(train.trajectories(), config);

  // Evaluation data with known structure: `kRoutes` fixed routes, each
  // observed many times at different sampling rates.
  const int kRoutes = 6, kPerRoute = 30;
  Rng rng(99);
  std::vector<traj::Trajectory> trips;
  std::vector<int> labels;
  std::vector<geo::Point> route;
  for (int r = 0; r < kRoutes; ++r) {
    const traj::Trajectory seed = generator.GenerateOne(r, &route);
    for (int i = 0; i < kPerRoute; ++i) {
      // Each observation drops a random fraction of points and jitters.
      traj::Trajectory obs = traj::Downsample(seed, rng.Uniform(0.0, 0.5),
                                              rng);
      obs = traj::Distort(obs, 0.3, rng);
      trips.push_back(std::move(obs));
      labels.push_back(r);
    }
  }

  const nn::Matrix vectors = model.Encode(trips);
  Rng km_rng(7);
  const std::vector<int> clusters = KMeans(vectors, kRoutes, 25, km_rng);

  // Purity: majority label per cluster.
  std::map<int, std::map<int, int>> contingency;
  for (size_t i = 0; i < trips.size(); ++i) {
    contingency[clusters[i]][labels[i]]++;
  }
  int majority_total = 0;
  for (const auto& [cluster, label_counts] : contingency) {
    int best = 0;
    for (const auto& [label, count] : label_counts) {
      best = std::max(best, count);
    }
    majority_total += best;
  }
  const double purity =
      static_cast<double>(majority_total) / static_cast<double>(trips.size());

  std::printf("\nclustered %zu trajectory observations of %d routes\n",
              trips.size(), kRoutes);
  std::printf("k-means purity on t2vec vectors: %.3f (1.0 = perfect, "
              "%.3f = chance)\n",
              purity, 1.0 / kRoutes);
  return purity > 0.5 ? 0 : 1;
}
