// k-nearest-trajectory search: the paper's headline application.
//
// Encodes a trajectory database offline into vectors, then serves k-NN
// queries in vector space (exact linear scan and LSH), comparing wall-clock
// against the classical EDR / EDwP dynamic programs and showing how ranked
// results agree.
//
// Runtime: ~2-4 minutes (dominated by model training).

#include <cstdio>

#include "common/stopwatch.h"
#include "core/t2vec.h"
#include "core/vec_index.h"
#include "dist/classic.h"
#include "dist/edwp.h"
#include "dist/knn.h"
#include "eval/experiments.h"
#include "traj/generator.h"

int main() {
  using namespace t2vec;

  // Data + model.
  traj::SyntheticTrajectoryGenerator generator(
      traj::GeneratorConfig::PortoLike());
  traj::Dataset all = generator.Generate(2000);
  traj::Dataset train, test;
  all.Split(1200, &train, &test);

  core::T2VecConfig config;
  config.max_iterations = 500;
  config.validate_every = 250;
  const core::T2Vec model = core::T2Vec::Train(train.trajectories(), config);

  // Offline: encode the database once.
  const std::vector<traj::Trajectory>& database = test.trajectories();
  Stopwatch watch;
  const nn::Matrix db_vecs = model.Encode(database);
  std::printf("encoded %zu trajectories in %.0f ms (offline, one-off)\n",
              database.size(), watch.ElapsedMillis());
  core::VectorIndex index{nn::Matrix(db_vecs)};
  core::LshIndex lsh(db_vecs, 6, 12, 42);

  // Online: serve queries.
  const size_t k = 10;
  const traj::Trajectory& query = database[0];
  const std::vector<float> qv = model.EncodeOne(query);

  watch.Reset();
  const auto scan_result = index.Query(qv, k).ids;
  const double scan_ms = watch.ElapsedMillis();

  watch.Reset();
  const auto lsh_result = lsh.Query(qv, k).ids;
  const double lsh_ms = watch.ElapsedMillis();

  dist::EdwpMeasure edwp;
  watch.Reset();
  const auto edwp_result = dist::KnnQuery(edwp, query, database, k).ids;
  const double edwp_ms = watch.ElapsedMillis();

  dist::EdrMeasure edr(config.cell_size);
  watch.Reset();
  const auto edr_result = dist::KnnQuery(edr, query, database, k).ids;
  const double edr_ms = watch.ElapsedMillis();

  std::printf("\nk-NN query over %zu trajectories (k = %zu):\n",
              database.size(), k);
  std::printf("  t2vec scan : %8.3f ms\n", scan_ms);
  std::printf("  t2vec LSH  : %8.3f ms\n", lsh_ms);
  std::printf("  EDwP       : %8.3f ms\n", edwp_ms);
  std::printf("  EDR        : %8.3f ms\n", edr_ms);

  auto overlap = [](const std::vector<size_t>& a,
                    const std::vector<size_t>& b) {
    size_t hits = 0;
    for (size_t x : a) {
      for (size_t y : b) hits += (x == y);
    }
    return hits;
  };
  std::printf("\nresult agreement with t2vec scan (out of %zu):\n", k);
  std::printf("  LSH  : %zu\n", overlap(scan_result, lsh_result));
  std::printf("  EDwP : %zu\n", overlap(scan_result, edwp_result));
  std::printf("  EDR  : %zu\n", overlap(scan_result, edr_result));
  std::printf("\n(The query trajectory itself is in the database; every "
              "method should return\nit first: scan=%zu lsh=%zu edwp=%zu "
              "edr=%zu, query index 0.)\n",
              scan_result[0], lsh_result[0], edwp_result[0], edr_result[0]);
  return 0;
}
