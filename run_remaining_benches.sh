#!/bin/bash
# Priority-ordered run of the remaining experiment benches, appending to
# bench_output.txt (fig5 output is already there from the first sweep pass).
cd /root/repo
for b in bench_table2_datasets bench_fig6_efficiency bench_table4_downsampling \
         bench_table7_loss_ablation bench_fig7_trainsize bench_table9_hidden \
         bench_table6_crossdist bench_table5_distortion bench_table3_dbsize \
         bench_table8_cellsize bench_micro_distance bench_micro_nn; do
  echo "===== build/bench/$b ====="
  ./build/bench/$b
done
