#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <limits>
#include <set>

#include "common/rng.h"
#include "core/vec_index.h"

namespace t2vec::core {
namespace {

nn::Matrix RandomVectors(size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  nn::Matrix m(n, d);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.Gaussian());
  }
  return m;
}

TEST(VectorIndexTest, DistanceIsSquaredEuclidean) {
  nn::Matrix vecs(2, 2);
  vecs(0, 0) = 3.0f;
  vecs(0, 1) = 4.0f;
  VectorIndex index(std::move(vecs));
  const float query[2] = {0.0f, 0.0f};
  EXPECT_DOUBLE_EQ(index.Distance(query, 0), 25.0);
  EXPECT_DOUBLE_EQ(index.Distance(query, 1), 0.0);
}

TEST(VectorIndexTest, KnnMatchesExhaustive) {
  const nn::Matrix vecs = RandomVectors(200, 16, 1);
  VectorIndex index{nn::Matrix(vecs)};
  const nn::Matrix queries = RandomVectors(10, 16, 2);
  for (size_t q = 0; q < queries.rows(); ++q) {
    const auto knn = index.Query({queries.Row(q), 16}, 5);
    ASSERT_EQ(knn.size(), 5u);
    // Verify ordering and optimality, and that the returned distances are
    // the real ones (no recomputation needed by callers).
    std::vector<std::pair<double, size_t>> all;
    for (size_t i = 0; i < 200; ++i) {
      all.emplace_back(index.Distance(queries.Row(q), i), i);
    }
    std::sort(all.begin(), all.end());
    for (size_t i = 0; i < 5; ++i) {
      EXPECT_DOUBLE_EQ(index.Distance(queries.Row(q), knn.ids[i]),
                       all[i].first);
      EXPECT_DOUBLE_EQ(knn.distances[i], all[i].first);
    }
  }
}

TEST(VectorIndexTest, RankOfSelf) {
  const nn::Matrix vecs = RandomVectors(50, 8, 3);
  VectorIndex index{nn::Matrix(vecs)};
  for (size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(index.RankOf(vecs.Row(i), i), 1u);
  }
}

TEST(VectorIndexTest, RankCountsStrictlyCloser) {
  nn::Matrix vecs(3, 1);
  vecs(0, 0) = 0.0f;
  vecs(1, 0) = 1.0f;
  vecs(2, 0) = 2.0f;
  VectorIndex index(std::move(vecs));
  const float query[1] = {0.1f};
  EXPECT_EQ(index.RankOf(query, 0), 1u);
  EXPECT_EQ(index.RankOf(query, 1), 2u);
  EXPECT_EQ(index.RankOf(query, 2), 3u);
}

TEST(LshIndexTest, HighRecallOnClusteredData) {
  // Clustered vectors: queries near cluster centers must retrieve their
  // cluster under LSH with high recall.
  Rng rng(4);
  const size_t clusters = 8, per_cluster = 40, d = 16;
  nn::Matrix vecs(clusters * per_cluster, d);
  nn::Matrix centers(clusters, d);
  for (size_t i = 0; i < centers.size(); ++i) {
    centers.data()[i] = static_cast<float>(rng.Gaussian() * 5.0);
  }
  for (size_t c = 0; c < clusters; ++c) {
    for (size_t i = 0; i < per_cluster; ++i) {
      float* row = vecs.Row(c * per_cluster + i);
      for (size_t j = 0; j < d; ++j) {
        row[j] = centers(c, j) + static_cast<float>(rng.Gaussian() * 0.3);
      }
    }
  }
  VectorIndex exact{nn::Matrix(vecs)};
  LshIndex lsh(vecs, /*num_tables=*/8, /*num_bits=*/10, /*seed=*/7);

  double recall = 0.0;
  const size_t k = 10;
  for (size_t c = 0; c < clusters; ++c) {
    const float* query = centers.Row(c);
    const auto truth = exact.Query({query, d}, k).ids;
    const auto approx = lsh.Query({query, d}, k).ids;
    std::set<size_t> truth_set(truth.begin(), truth.end());
    size_t hits = 0;
    for (size_t idx : approx) hits += truth_set.count(idx);
    recall += static_cast<double>(hits) / static_cast<double>(k);
  }
  recall /= static_cast<double>(clusters);
  EXPECT_GT(recall, 0.8);
}

TEST(LshIndexTest, FallsBackWhenBucketsEmpty) {
  // A query far from all data hits empty buckets; the index must still
  // return k results via the full-scan fallback.
  const nn::Matrix vecs = RandomVectors(30, 8, 5);
  LshIndex lsh(vecs, 2, 12, 11);
  std::vector<float> query(8, 100.0f);
  const auto result = lsh.Query(query, 5).ids;
  EXPECT_EQ(result.size(), 5u);
  std::set<size_t> unique(result.begin(), result.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(VectorIndexTest, NanVectorsOrderLast) {
  // Regression: rows containing NaN produce NaN distances, which used to
  // break the partial_sort comparator's strict weak ordering (UB). NaN rows
  // must now sort after every finite-distance row.
  nn::Matrix vecs(6, 2);
  for (size_t i = 0; i < 6; ++i) {
    vecs(i, 0) = static_cast<float>(i);
    vecs(i, 1) = 0.0f;
  }
  vecs(1, 1) = std::numeric_limits<float>::quiet_NaN();
  vecs(4, 0) = std::numeric_limits<float>::quiet_NaN();
  VectorIndex index(std::move(vecs));
  const float query[2] = {0.0f, 0.0f};

  const auto all = index.Query(query, 6).ids;
  ASSERT_EQ(all.size(), 6u);
  EXPECT_EQ((std::vector<size_t>{all.begin(), all.begin() + 4}),
            (std::vector<size_t>{0, 2, 3, 5}));
  // Both NaN rows land at the tail (their mutual order is unspecified).
  EXPECT_TRUE((all[4] == 1 && all[5] == 4) || (all[4] == 4 && all[5] == 1));

  // k below the finite count never surfaces a NaN row.
  EXPECT_EQ(index.Query(query, 3).ids, (std::vector<size_t>{0, 2, 3}));
}

TEST(LshIndexTest, ApproxResultsAreGenuineVectors) {
  const nn::Matrix vecs = RandomVectors(100, 8, 6);
  LshIndex lsh(vecs, 4, 8, 13);
  const nn::Matrix queries = RandomVectors(5, 8, 7);
  for (size_t q = 0; q < queries.rows(); ++q) {
    for (size_t idx : lsh.Query({queries.Row(q), 8}, 3).ids) {
      EXPECT_LT(idx, 100u);
    }
  }
}

TEST(VectorIndexTest, IncrementalAddMatchesBuildOnce) {
  // An index grown row by row must answer every query identically to one
  // constructed from the final matrix: same neighbor ids, same distance
  // bits.
  const nn::Matrix vecs = RandomVectors(120, 12, 21);
  VectorIndex built{nn::Matrix(vecs)};
  VectorIndex grown(12);
  EXPECT_EQ(grown.size(), 0u);
  for (size_t i = 0; i < vecs.rows(); ++i) {
    grown.Add({vecs.Row(i), vecs.cols()});
    EXPECT_EQ(grown.size(), i + 1);
  }
  ASSERT_EQ(grown.size(), built.size());
  for (size_t i = 0; i < vecs.rows(); ++i) {
    ASSERT_EQ(std::memcmp(grown.RowPtr(i), built.RowPtr(i),
                          vecs.cols() * sizeof(float)),
              0);
  }
  const nn::Matrix queries = RandomVectors(10, 12, 22);
  for (size_t q = 0; q < queries.rows(); ++q) {
    const KnnResult a = built.Query({queries.Row(q), 12}, 7);
    const KnnResult b = grown.Query({queries.Row(q), 12}, 7);
    EXPECT_EQ(a.ids, b.ids);
    EXPECT_EQ(a.distances, b.distances);
    EXPECT_EQ(built.RankOf(queries.Row(q), q), grown.RankOf(queries.Row(q), q));
  }
}

TEST(VectorIndexTest, AddIsVisibleToQueriesImmediately) {
  VectorIndex index(2);
  const float a[2] = {0.0f, 0.0f};
  const float b[2] = {3.0f, 4.0f};
  index.Add(a);
  const float query[2] = {3.0f, 4.0f};
  EXPECT_EQ(index.Query(query, 1).ids, (std::vector<size_t>{0}));
  index.Add(b);
  const KnnResult r = index.Query(query, 2);
  EXPECT_EQ(r.ids, (std::vector<size_t>{1, 0}));
  EXPECT_DOUBLE_EQ(r.distances[0], 0.0);
  EXPECT_DOUBLE_EQ(r.distances[1], 25.0);
}

TEST(LshIndexTest, IncrementalAddMatchesBuildOnce) {
  // Build an LSH index over a prefix, grow it row by row with Add(), and
  // compare every query against a build-once index over the full matrix:
  // bucket contents (ascending row order) and therefore results must be
  // identical.
  const nn::Matrix full = RandomVectors(100, 8, 23);
  const size_t prefix = 40;

  nn::Matrix head(prefix, 8);
  std::copy(full.data(), full.data() + prefix * 8, head.data());
  LshIndex grown(head, /*num_tables=*/4, /*num_bits=*/8, /*seed=*/17);
  EXPECT_EQ(grown.Size(), prefix);
  for (size_t i = prefix; i < full.rows(); ++i) {
    grown.Add({full.Row(i), full.cols()});
  }
  EXPECT_EQ(grown.Size(), full.rows());

  LshIndex built(full, /*num_tables=*/4, /*num_bits=*/8, /*seed=*/17);
  const nn::Matrix queries = RandomVectors(12, 8, 24);
  for (size_t q = 0; q < queries.rows(); ++q) {
    const KnnResult a = built.Query({queries.Row(q), 8}, 6);
    const KnnResult b = grown.Query({queries.Row(q), 8}, 6);
    EXPECT_EQ(a.ids, b.ids);
    EXPECT_EQ(a.distances, b.distances);
  }
}

// Regression: k arrives straight from serving-path clients, so k > size()
// and empty indexes must degrade to shorter answers — the old CHECK here
// aborted the whole server process.
TEST(VectorIndexTest, QueryClampsKToIndexSize) {
  const nn::Matrix vecs = RandomVectors(5, 4, 30);
  VectorIndex index{nn::Matrix(vecs)};
  const nn::Matrix queries = RandomVectors(1, 4, 31);
  const KnnResult all = index.Query({queries.Row(0), 4}, 100);
  EXPECT_EQ(all.size(), 5u);
  const KnnResult exact = index.Query({queries.Row(0), 4}, 5);
  EXPECT_EQ(all.ids, exact.ids);
  EXPECT_EQ(all.distances, exact.distances);
  EXPECT_EQ(index.Query({queries.Row(0), 4}, 0).size(), 0u);
}

TEST(VectorIndexTest, QueryOnEmptyIndexReturnsNothing) {
  VectorIndex index(nn::Matrix(0, 4));
  const float query[4] = {1.0f, 2.0f, 3.0f, 4.0f};
  const KnnResult result = index.Query({query, 4}, 10);
  EXPECT_EQ(result.size(), 0u);
}

TEST(LshIndexTest, QueryClampsKToIndexedRows) {
  const nn::Matrix vecs = RandomVectors(6, 8, 32);
  LshIndex lsh(vecs, 4, 8, 33);
  const nn::Matrix queries = RandomVectors(1, 8, 34);
  EXPECT_EQ(lsh.Query({queries.Row(0), 8}, 50).size(), 6u);
  EXPECT_EQ(lsh.Query({queries.Row(0), 8}, 0).size(), 0u);

  const nn::Matrix no_vecs(0, 8);
  LshIndex empty(no_vecs, 4, 8, 35);
  EXPECT_EQ(empty.Query({queries.Row(0), 8}, 3).size(), 0u);
}

}  // namespace
}  // namespace t2vec::core
