// Tests of the greedy/beam sequence decoder. A tiny seq2seq model is
// trained to reproduce short, deterministic token patterns; decoding must
// recover them.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/decoder.h"
#include "core/model.h"
#include "core/pairs.h"
#include "nn/optimizer.h"

namespace t2vec::core {
namespace {

// Trains a small model on a fixed set of (src, tgt) pairs until it can
// reproduce them, shared across the tests below.
class DecoderTest : public ::testing::Test {
 protected:
  static constexpr geo::Token kVocab = 16;

  static T2VecConfig Config() {
    T2VecConfig config;
    config.embed_dim = 16;
    config.hidden = 24;
    config.layers = 2;
    return config;
  }

  static const std::vector<TokenPair>& Pairs() {
    // Three distinguishable patterns; src is a sparse subset of tgt.
    static const std::vector<TokenPair>* pairs = new std::vector<TokenPair>{
        {{4, 6, 8}, {4, 5, 6, 7, 8}},
        {{9, 11, 13}, {9, 10, 11, 12, 13}},
        {{14, 4, 9}, {14, 4, 9}},
    };
    return *pairs;
  }

  static EncoderDecoder& Model() {
    static EncoderDecoder* model = [] {
      Rng rng(21);
      auto* m = new EncoderDecoder(Config(), kVocab, rng);
      NllLoss loss(&m->projection());
      nn::Adam adam(m->Params(), 5e-3f);
      std::vector<const TokenPair*> ptrs;
      for (const TokenPair& p : Pairs()) ptrs.push_back(&p);
      const Batch batch = BuildBatch(ptrs);
      for (int step = 0; step < 600; ++step) {
        adam.ZeroGrad();
        m->RunBatch(batch, &loss, true);
        adam.Step();
      }
      return m;
    }();
    return *model;
  }
};

TEST_F(DecoderTest, GreedyReproducesTrainedTargets) {
  SequenceDecoder decoder(&Model());
  for (const TokenPair& pair : Pairs()) {
    const traj::TokenSeq decoded = decoder.DecodeGreedy(pair.src, 12);
    EXPECT_EQ(decoded, pair.tgt);
  }
}

TEST_F(DecoderTest, GreedyRespectsMaxLen) {
  SequenceDecoder decoder(&Model());
  const traj::TokenSeq decoded = decoder.DecodeGreedy(Pairs()[0].src, 2);
  EXPECT_LE(decoded.size(), 2u);
}

TEST_F(DecoderTest, EmptySourceDecodesEmpty) {
  SequenceDecoder decoder(&Model());
  EXPECT_TRUE(decoder.DecodeGreedy({}, 8).empty());
  EXPECT_TRUE(decoder.DecodeBeam({}, 3, 8).empty());
}

TEST_F(DecoderTest, BeamContainsGreedyResult) {
  SequenceDecoder decoder(&Model());
  for (const TokenPair& pair : Pairs()) {
    const traj::TokenSeq greedy = decoder.DecodeGreedy(pair.src, 12);
    const std::vector<Hypothesis> beams = decoder.DecodeBeam(pair.src, 4, 12);
    ASSERT_FALSE(beams.empty());
    bool found = false;
    for (const Hypothesis& h : beams) found |= (h.tokens == greedy);
    EXPECT_TRUE(found);
  }
}

TEST_F(DecoderTest, BeamScoresAreFiniteAndOrdered) {
  SequenceDecoder decoder(&Model());
  const std::vector<Hypothesis> beams =
      decoder.DecodeBeam(Pairs()[1].src, 4, 12);
  ASSERT_GE(beams.size(), 2u);
  for (const Hypothesis& h : beams) {
    EXPECT_TRUE(std::isfinite(h.log_prob));
    EXPECT_LE(h.log_prob, 0.0);  // Log-probabilities.
  }
  // Length-normalized ordering, best first.
  auto norm = [](const Hypothesis& h) {
    return h.log_prob / static_cast<double>(h.tokens.size() + 1);
  };
  for (size_t i = 1; i < beams.size(); ++i) {
    EXPECT_GE(norm(beams[i - 1]), norm(beams[i]) - 1e-12);
  }
}

TEST_F(DecoderTest, NeverEmitsSpecialTokens) {
  SequenceDecoder decoder(&Model());
  for (const TokenPair& pair : Pairs()) {
    for (const Hypothesis& h : decoder.DecodeBeam(pair.src, 3, 12)) {
      for (geo::Token t : h.tokens) {
        EXPECT_GE(t, geo::kNumSpecialTokens);
      }
    }
  }
}

}  // namespace
}  // namespace t2vec::core
