// Fixture: iterating a file-declared unordered container fires
// unordered-iter. Never compiled.
#include <unordered_map>
#include <unordered_set>
#include <vector>

std::vector<int> Fixture(const std::unordered_set<int>& extra) {
  std::unordered_map<int, int> counts;
  std::unordered_set<int> seen = extra;
  std::vector<int> out;
  for (const auto& [key, value] : counts) {
    out.push_back(key + value);
  }
  for (auto it = seen.begin(); it != seen.end(); ++it) {
    out.push_back(*it);
  }
  return out;
}
