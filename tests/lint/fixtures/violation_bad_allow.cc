// Fixture: malformed suppressions fire bad-allow (and do not suppress).
// Never compiled.
#include <algorithm>
#include <vector>

void Fixture(std::vector<int>& v) {
  // lint:allow(raw-sort)
  std::sort(v.begin(), v.end());
  // lint:allow(no-such-rule) misspelled rule ids must not pass silently
  std::stable_sort(v.begin(), v.end());
}
