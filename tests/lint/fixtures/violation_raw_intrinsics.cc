// Fixture: raw x86 intrinsics outside src/nn/kernels_avx2.cc fire
// raw-intrinsics (7 hits: the include, two vector-typed declarations, and
// four intrinsic calls — type + call on the same line count once each).
// Never compiled.
#include <immintrin.h>

float Fixture(const float* x, const float* y) {
  __m256 acc = _mm256_setzero_ps();
  acc = _mm256_fmadd_ps(_mm256_loadu_ps(x), _mm256_loadu_ps(y), acc);
  alignas(32) float lanes[8];
  _mm256_store_ps(lanes, acc);
  __m128i zero = _mm_setzero_si128();
  (void)zero;
  return lanes[0];
}
