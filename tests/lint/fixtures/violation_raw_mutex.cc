// Fixture: every banned raw synchronization type fires raw-mutex.
// Never compiled — scanned by lint_test.py.
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

struct Fixture {
  std::mutex mu;
  std::timed_mutex tmu;
  std::recursive_mutex rec;
  std::shared_mutex rw;
  std::shared_timed_mutex srw;
  std::condition_variable cv;
  std::condition_variable_any cv_any;
};

void Use(Fixture& f) {
  std::lock_guard<std::mutex> lock(f.mu);
  std::unique_lock<std::timed_mutex> ul(f.tmu);
  std::shared_lock<std::shared_mutex> sl(f.rw);
  std::scoped_lock sc(f.rec);
  f.cv.notify_one();
  f.cv_any.notify_all();
}
