// Fixture: direct construction of a concrete retrieval index fires
// raw-index-ctor — serving and tooling paths must build through
// core::CreateIndex(IndexConfig, dim) so the backend stays a config
// decision. Never compiled.
#include <cstddef>

struct Matrix {};

void Fixture(const Matrix& vecs) {
  VectorIndex index{vecs};
  LshIndex lsh(vecs, 6, 12, 9);
  auto* ivf = new IvfIndex(vecs);
  (void)index;
  (void)lsh;
  (void)ivf;
}
