// Fixture: every rule is suppressible with a well-formed lint:allow comment
// — rule id plus a non-empty reason, on the flagged line or the line above.
// Never compiled.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>
#include <random>
#include <unordered_map>
#include <vector>

// Declaration only: a definition's `struct VectorIndex {` line would itself
// match the raw-index-ctor pattern. Never compiled, so no body is needed.
struct VectorIndex;

std::vector<int> Fixture(std::vector<int> v, const float* q) {
  // lint:allow(raw-sort) fixture: demonstrates a suppressed raw sort
  std::sort(v.begin(), v.end());
  std::stable_sort(v.begin(), v.end());  // lint:allow(raw-sort) same line form
  // lint:allow(raw-rng) fixture: suppressed engine declaration
  std::mt19937 gen(7);
  // lint:allow(wall-clock) fixture: suppressed wall-clock read
  const auto now = std::chrono::system_clock::now();
  (void)now;
  std::unordered_map<int, int> counts;
  // lint:allow(unordered-iter) order-insensitive: copied into a sorted map
  std::map<int, int> ordered(counts.begin(), counts.end());
  // lint:allow(unordered-iter,raw-sort) comma form suppresses several rules
  for (const auto& [k2, v2] : counts) std::sort(v.begin(), v.end());
  // lint:allow(raw-index-ctor) fixture: exact ground truth needs VectorIndex
  VectorIndex index(v);
  auto ids = index.Knn(q, 5);
  // lint:allow(raw-ofstream) fixture: /dev/null is not a durable artifact
  std::ofstream sink("/dev/null");
  sink << ids.size();
  // lint:allow(raw-mutex) fixture: suppressed raw mutex declaration
  std::mutex raw_mu;
  std::lock_guard<std::mutex> raw_lock(raw_mu);  // lint:allow(raw-mutex) same line form
  v.push_back(static_cast<int>(ids.size() + ordered.size() + gen()));
  return v;
}
