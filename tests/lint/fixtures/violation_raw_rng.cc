// Fixture: raw RNG sources fire raw-rng. Never compiled.
#include <cstdlib>
#include <random>

int Fixture() {
  std::random_device rd;
  std::mt19937 gen(rd());
  std::default_random_engine eng;
  srand(42);
  return rand() + static_cast<int>(gen() + eng());
}
