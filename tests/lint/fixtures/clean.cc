// Fixture: the approved idioms produce zero violations. Never compiled.
#include <chrono>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/sort.h"

// Mentions of std::sort or rand() in comments (like this one) are ignored.
std::vector<int> Fixture(std::vector<int> v) {
  t2vec::DeterministicSort(v.begin(), v.end());
  t2vec::TotalOrderPartialSort(v.begin(), v.begin() + 1, v.end());
  t2vec::Rng rng(42);
  const auto t0 = std::chrono::steady_clock::now();
  (void)t0;
  const char* doc = "std::sort in a string literal is ignored";
  (void)doc;
  std::unordered_map<int, int> lookup;
  // Keyed access and the find()-miss check are fine; only iteration is
  // order-sensitive.
  if (lookup.find(3) != lookup.end()) {
    v.push_back(lookup[3]);
  }
  v.push_back(static_cast<int>(rng.UniformInt(7)));
  return v;
}

// Socket I/O and qualified/member names must NOT fire raw-ofstream: the rule
// targets the POSIX file-write path, not network fds (serve/server.cc) or
// std::remove (bench cleanup). Never compiled, so no socket headers needed.
int SocketFixture(int fd, const char* buf, unsigned long n,
                  const std::string& stale) {
  long sent = ::send(fd, buf, n, 0);
  long got = ::recv(fd, const_cast<char*>(buf), n, 0);
  ::shutdown(fd, 2);
  ::close(fd);
  std::remove(stale.c_str());
  return static_cast<int>(sent + got);
}
