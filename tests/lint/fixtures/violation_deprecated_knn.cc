// Fixture: calls to the deprecated id-only kNN forwarders fire
// deprecated-knn. Never compiled.
#include <cstddef>
#include <vector>

struct FakeIndex {
  std::vector<size_t> Knn(const float* q, size_t k) const;
};

std::vector<size_t> Fixture(const FakeIndex& index, const FakeIndex* ptr,
                            const float* q) {
  auto a = index.Knn(q, 5);
  auto b = ptr->Knn(q, 5);
  auto c = KnnSearch(q, 5);
  a.insert(a.end(), b.begin(), b.end());
  a.insert(a.end(), c.begin(), c.end());
  return a;
}
