// Fixture: raw string literals are blanked as string data, even when they
// contain unescaped quotes. Never compiled — scanned by lint_test.py.
//
// Exactly one violation is expected: the std::sort after the delimited raw
// string. A stripper without raw-string handling gets both directions
// wrong here — it fires on the banned names inside the first literal (the
// inner quote makes it treat them as code) and misses the real std::sort
// after the second (quote-pairing swallows the rest of the line).
#include <algorithm>
#include <vector>

void Fixture(std::vector<int>& v) {
  const char* doc = R"(she said "use std::sort and a std::mutex" loudly)";
  const char* dodge = R"x(quote " inside)x"; std::sort(v.begin(), v.end());
  (void)doc;
  (void)dodge;
}
