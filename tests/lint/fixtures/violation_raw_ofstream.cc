// Fixture: direct output-stream writes fire raw-ofstream — they bypass the
// durability layer (atomic tmp-file + rename, CRC32C trailer; DESIGN.md §7).
// Never compiled.
#include <cstdio>
#include <fcntl.h>
#include <fstream>
#include <string>
#include <unistd.h>

void Fixture(const std::string& path) {
  std::ofstream out(path);
  out << "half-written artifact\n";
  std::fstream rw(path, std::ios::in | std::ios::out);
  rw << "also unsafe\n";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f != nullptr) std::fclose(f);
}

// The raw POSIX write path fires too: a crash between ::write and ::rename
// publishes a torn artifact at the final path. ::close is deliberately not
// matched (sockets close fds as well).
void PosixFixture(const std::string& path) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);
  (void)::write(fd, "torn", 4);
  (void)::fsync(fd);
  (void)::ftruncate(fd, 0);
  ::close(fd);
  (void)::rename(path.c_str(), (path + ".final").c_str());
}

// Ad-hoc mappings bypass MmapFile's lifetime and CRC-verification rules.
void MmapFixture(int fd, void* base, unsigned long size) {
  base = ::mmap(nullptr, size, 0x1, 0x2, fd, 0);
  (void)::munmap(base, size);
}
