// Fixture: direct output-stream writes fire raw-ofstream — they bypass the
// durability layer (atomic tmp-file + rename, CRC32C trailer; DESIGN.md §7).
// Never compiled.
#include <cstdio>
#include <fstream>
#include <string>

void Fixture(const std::string& path) {
  std::ofstream out(path);
  out << "half-written artifact\n";
  std::fstream rw(path, std::ios::in | std::ios::out);
  rw << "also unsafe\n";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f != nullptr) std::fclose(f);
}
