// Fixture: wall-clock reads fire wall-clock. Never compiled.
#include <chrono>
#include <ctime>

long Fixture() {
  const auto now = std::chrono::system_clock::now();
  const auto hi = std::chrono::high_resolution_clock::now();
  const long stamp = time(nullptr);
  const long ticks = clock();
  return stamp + ticks + now.time_since_epoch().count() +
         hi.time_since_epoch().count();
}
