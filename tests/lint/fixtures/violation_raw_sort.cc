// Fixture: every banned raw ordering call fires raw-sort.
// Never compiled — scanned by lint_test.py.
#include <algorithm>
#include <vector>

void Fixture(std::vector<int>& v) {
  std::sort(v.begin(), v.end());
  std::stable_sort(v.begin(), v.end());
  std::partial_sort(v.begin(), v.begin() + 1, v.end());
  std::nth_element(v.begin(), v.begin() + 1, v.end());
}
