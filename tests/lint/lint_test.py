#!/usr/bin/env python3
"""Fixture tests for tools/lint_determinism.py.

Runs the linter over tests/lint/fixtures/ and asserts the exact rule ids
that fire per file: one violation-fixture per rule, a clean file, and an
allow-suppressed file. Registered with ctest as `lint_test`.
"""

import collections
import json
import os
import subprocess
import sys

TESTS_LINT_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(os.path.dirname(TESTS_LINT_DIR))
LINTER = os.path.join(REPO_ROOT, "tools", "lint_determinism.py")
FIXTURES = os.path.join(TESTS_LINT_DIR, "fixtures")

# file basename -> {rule: expected_count}
EXPECTED = {
    "violation_raw_sort.cc": {"raw-sort": 4},
    "violation_raw_rng.cc": {"raw-rng": 5},
    "violation_wall_clock.cc": {"wall-clock": 4},
    "violation_unordered_iter.cc": {"unordered-iter": 2},
    "violation_raw_index_ctor.cc": {"raw-index-ctor": 3},
    "violation_raw_ofstream.cc": {"raw-ofstream": 10},
    "violation_raw_intrinsics.cc": {"raw-intrinsics": 7},
    "violation_raw_mutex.cc": {"raw-mutex": 11},
    # Raw string literals are string data: the banned names inside the
    # quoted literals stay quiet, the real sort after one still fires.
    "violation_raw_string.cc": {"raw-sort": 1},
    # Malformed suppressions fire bad-allow AND leave the underlying
    # violations unsuppressed.
    "violation_bad_allow.cc": {"bad-allow": 2, "raw-sort": 2},
    "clean.cc": {},
    "allowed.cc": {},
}

failures = []


def check(condition, message):
    if not condition:
        failures.append(message)
        print(f"FAIL: {message}")
    else:
        print(f"ok:   {message}")


def run_linter(paths):
    proc = subprocess.run(
        [sys.executable, LINTER, "--quiet", "--json", "-"] + paths,
        capture_output=True, text=True)
    try:
        report = json.loads(proc.stdout)
    except json.JSONDecodeError:
        print(proc.stdout)
        print(proc.stderr, file=sys.stderr)
        raise SystemExit(f"linter produced unparseable JSON (rc={proc.returncode})")
    return proc.returncode, report


def main():
    rc, report = run_linter([FIXTURES])

    by_file = collections.defaultdict(collections.Counter)
    for v in report["violations"]:
        by_file[os.path.basename(v["file"])][v["rule"]] += 1

    for name, expected in sorted(EXPECTED.items()):
        got = dict(by_file.get(name, collections.Counter()))
        check(got == expected,
              f"{name}: expected {expected or 'no violations'}, got "
              f"{got or 'no violations'}")

    unexpected = set(by_file) - set(EXPECTED)
    check(not unexpected, f"no violations outside known fixtures: "
                          f"{sorted(unexpected) or 'none'}")
    check(rc == 1, f"exit code 1 when violations exist (got {rc})")
    check(report["files_scanned"] == len(EXPECTED),
          f"scanned exactly the {len(EXPECTED)} fixture files "
          f"(got {report['files_scanned']})")

    # Every rule advertised by the linter has a firing fixture, so a new
    # rule cannot land untested.
    fired = {rule for counts in EXPECTED.values() for rule in counts}
    check(fired == set(report["rules"]),
          f"every rule has a fixture: rules={sorted(report['rules'])} "
          f"fired={sorted(fired)}")

    # Clean + suppressed files alone -> zero violations, exit 0.
    rc_clean, report_clean = run_linter(
        [os.path.join(FIXTURES, "clean.cc"),
         os.path.join(FIXTURES, "allowed.cc")])
    check(rc_clean == 0 and not report_clean["violations"],
          f"clean + allowed scan exits 0 with no violations "
          f"(rc={rc_clean}, n={len(report_clean['violations'])})")

    # The real tree must be lint-clean: the gate this test protects.
    rc_tree, report_tree = run_linter([])
    check(rc_tree == 0 and not report_tree["violations"],
          f"src/ bench/ tools/ are lint-clean (rc={rc_tree}, "
          f"violations={[(v['file'], v['line'], v['rule']) for v in report_tree['violations']][:10]})")

    if failures:
        print(f"\n{len(failures)} assertion(s) failed")
        return 1
    print("\nall lint fixture assertions passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
