#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "gradcheck.h"
#include "nn/gru.h"
#include "nn/matrix.h"

namespace t2vec::nn {
namespace {

using ::t2vec::nn::testing::ExpectGradientsMatch;

std::vector<Matrix> RandomSequence(size_t steps, size_t batch, size_t dim,
                                   Rng& rng, float scale = 0.8f) {
  std::vector<Matrix> xs(steps);
  for (Matrix& x : xs) {
    x.Resize(batch, dim);
    for (size_t i = 0; i < x.size(); ++i) {
      x.data()[i] = static_cast<float>(rng.Uniform(-scale, scale));
    }
  }
  return xs;
}

// Scalar objective used by the gradient checks: weighted sum of all per-step
// outputs plus the final state, with fixed pseudo-random weights so the
// gradient is nontrivial in every coordinate.
double WeightedOutputSum(const Gru& gru, const std::vector<Matrix>& xs,
                         const GruState* init,
                         const std::vector<std::vector<float>>& masks) {
  Gru::ForwardResult result;
  gru.Forward(xs, init, masks, &result);
  double loss = 0.0;
  double w = 0.7;
  for (const Matrix& h : result.TopOutputs()) {
    for (size_t i = 0; i < h.size(); ++i) {
      loss += w * h.data()[i];
      w = -w * 0.97;
    }
  }
  for (const Matrix& h : result.final_state.h) {
    for (size_t i = 0; i < h.size(); ++i) {
      loss += 0.31 * h.data()[i];
    }
  }
  return loss;
}

// Builds the matching d_top / d_final gradients for WeightedOutputSum.
void BuildUpstreamGrads(const Gru::ForwardResult& result,
                        std::vector<Matrix>* d_top, GruState* d_final) {
  d_top->clear();
  double w = 0.7;
  for (const Matrix& h : result.TopOutputs()) {
    Matrix g(h.rows(), h.cols());
    for (size_t i = 0; i < g.size(); ++i) {
      g.data()[i] = static_cast<float>(w);
      w = -w * 0.97;
    }
    d_top->push_back(std::move(g));
  }
  d_final->h.clear();
  for (const Matrix& h : result.final_state.h) {
    d_final->h.emplace_back(h.rows(), h.cols());
    d_final->h.back().Fill(0.31f);
  }
}

TEST(GruLayerTest, OutputShapeAndRange) {
  Rng rng(1);
  GruLayer layer("gru", 3, 5, rng);
  auto xs = RandomSequence(4, 2, 3, rng);
  Matrix h0(2, 5);
  GruCache cache;
  layer.Forward(xs, h0, {}, &cache);
  ASSERT_EQ(cache.steps(), 4u);
  for (const Matrix& h : cache.h) {
    ASSERT_EQ(h.rows(), 2u);
    ASSERT_EQ(h.cols(), 5u);
    for (size_t i = 0; i < h.size(); ++i) {
      // GRU hidden states are convex mixes of tanh outputs: within (-1, 1).
      EXPECT_LT(std::fabs(h.data()[i]), 1.0f);
    }
  }
}

TEST(GruLayerTest, ZeroInputZeroStateStaysNearBias) {
  Rng rng(2);
  GruLayer layer("gru", 3, 4, rng);
  std::vector<Matrix> xs(1, Matrix(1, 3));
  Matrix h0(1, 4);
  GruCache cache;
  layer.Forward(xs, h0, {}, &cache);
  // h1 = z * tanh(bc) with z = sigmoid(bz); biases start at zero -> h1 = 0.
  for (size_t i = 0; i < cache.h[0].size(); ++i) {
    EXPECT_NEAR(cache.h[0].data()[i], 0.0f, 1e-6f);
  }
}

TEST(GruLayerTest, MaskCarriesHiddenState) {
  Rng rng(3);
  GruLayer layer("gru", 2, 4, rng);
  auto xs = RandomSequence(3, 2, 2, rng);
  Matrix h0(2, 4);
  // Sequence 0 is active for all 3 steps, sequence 1 only for step 0.
  std::vector<std::vector<float>> masks = {
      {1.0f, 1.0f}, {1.0f, 0.0f}, {1.0f, 0.0f}};
  GruCache cache;
  layer.Forward(xs, h0, masks, &cache);
  // Row 1 of the hidden state must be frozen after step 0.
  for (size_t j = 0; j < 4; ++j) {
    EXPECT_EQ(cache.h[1](1, j), cache.h[0](1, j));
    EXPECT_EQ(cache.h[2](1, j), cache.h[0](1, j));
  }
  // Row 0 keeps evolving (with overwhelming probability).
  float diff = 0.0f;
  for (size_t j = 0; j < 4; ++j) {
    diff += std::fabs(cache.h[2](0, j) - cache.h[0](0, j));
  }
  EXPECT_GT(diff, 1e-6f);
}

struct GruGradCase {
  size_t steps, batch, in_dim, hidden, layers;
  bool with_masks;
  bool with_init;
};

class GruGradTest : public ::testing::TestWithParam<GruGradCase> {};

TEST_P(GruGradTest, GradCheckAllPaths) {
  const GruGradCase& tc = GetParam();
  Rng rng(42);
  Gru gru("gru", tc.in_dim, tc.hidden, tc.layers, rng);
  auto xs = RandomSequence(tc.steps, tc.batch, tc.in_dim, rng);

  GruState init;
  if (tc.with_init) {
    for (size_t l = 0; l < tc.layers; ++l) {
      Matrix h(tc.batch, tc.hidden);
      for (size_t i = 0; i < h.size(); ++i) {
        h.data()[i] = static_cast<float>(rng.Uniform(-0.5, 0.5));
      }
      init.h.push_back(std::move(h));
    }
  }
  const GruState* init_ptr = tc.with_init ? &init : nullptr;

  std::vector<std::vector<float>> masks;
  if (tc.with_masks) {
    // Staggered lengths across the batch.
    for (size_t t = 0; t < tc.steps; ++t) {
      std::vector<float> m(tc.batch, 1.0f);
      for (size_t b = 0; b < tc.batch; ++b) {
        const size_t len = tc.steps - b % 2;  // Alternate full/short.
        if (t >= len) m[b] = 0.0f;
      }
      masks.push_back(std::move(m));
    }
  }

  auto loss_fn = [&]() { return WeightedOutputSum(gru, xs, init_ptr, masks); };

  Gru::ForwardResult result;
  gru.Forward(xs, init_ptr, masks, &result);
  std::vector<Matrix> d_top;
  GruState d_final;
  BuildUpstreamGrads(result, &d_top, &d_final);

  for (Parameter* p : gru.Params()) p->ZeroGrad();
  std::vector<Matrix> d_xs;
  GruState d_init;
  gru.Backward(xs, init_ptr, masks, result, &d_top, &d_final, &d_xs,
               tc.with_init ? &d_init : nullptr);

  // Weight gradients.
  for (Parameter* p : gru.Params()) {
    ExpectGradientsMatch(&p->value, p->grad, loss_fn, 1e-2f, 3e-2, 12);
  }
  // Input gradients.
  for (size_t t = 0; t < tc.steps; ++t) {
    ExpectGradientsMatch(&xs[t], d_xs[t], loss_fn, 1e-2f, 3e-2, 8);
  }
  // Initial-state gradients.
  if (tc.with_init) {
    for (size_t l = 0; l < tc.layers; ++l) {
      ExpectGradientsMatch(&init.h[l], d_init.h[l], loss_fn, 1e-2f, 3e-2, 8);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, GruGradTest,
    ::testing::Values(GruGradCase{1, 1, 2, 3, 1, false, false},
                      GruGradCase{3, 2, 2, 3, 1, false, false},
                      GruGradCase{3, 2, 2, 3, 2, false, true},
                      GruGradCase{4, 3, 2, 3, 1, true, false},
                      GruGradCase{4, 2, 3, 4, 3, true, true}));

TEST(GruTest, FinalStateEqualsLastMaskedHidden) {
  Rng rng(5);
  Gru gru("gru", 2, 3, 2, rng);
  auto xs = RandomSequence(4, 2, 2, rng);
  std::vector<std::vector<float>> masks = {
      {1, 1}, {1, 1}, {1, 0}, {0, 0}};  // Lengths 3 and 2.
  Gru::ForwardResult result;
  gru.Forward(xs, nullptr, masks, &result);
  // With carry-through masking, the state at the last step equals each
  // sequence's state at its own final valid step.
  for (size_t l = 0; l < 2; ++l) {
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_EQ(result.final_state.h[l](0, j), result.caches[l].h[2](0, j));
      EXPECT_EQ(result.final_state.h[l](1, j), result.caches[l].h[1](1, j));
    }
  }
}

TEST(GruTest, DeterministicForward) {
  Rng rng1(6), rng2(6);
  Gru a("gru", 2, 3, 2, rng1);
  Gru b("gru", 2, 3, 2, rng2);
  Rng data_rng(7);
  auto xs = RandomSequence(3, 2, 2, data_rng);
  Gru::ForwardResult ra, rb;
  a.Forward(xs, nullptr, {}, &ra);
  b.Forward(xs, nullptr, {}, &rb);
  for (size_t l = 0; l < 2; ++l) {
    EXPECT_EQ(MaxAbsDiff(ra.final_state.h[l], rb.final_state.h[l]), 0.0f);
  }
}

TEST(GruTest, StepwiseEqualsFullSequence) {
  // Feeding the sequence one step at a time through Forward with the carried
  // state must equal a single full-sequence Forward (this is how inference
  // time encoding/decoding reuses the training code path).
  Rng rng(8);
  Gru gru("gru", 2, 3, 2, rng);
  Rng data_rng(9);
  auto xs = RandomSequence(5, 1, 2, data_rng);

  Gru::ForwardResult full;
  gru.Forward(xs, nullptr, {}, &full);

  GruState state;
  for (size_t t = 0; t < xs.size(); ++t) {
    std::vector<Matrix> one = {xs[t]};
    Gru::ForwardResult step;
    gru.Forward(one, t == 0 ? nullptr : &state, {}, &step);
    state = step.final_state;
  }
  for (size_t l = 0; l < 2; ++l) {
    EXPECT_LT(MaxAbsDiff(state.h[l], full.final_state.h[l]), 1e-5f);
  }
}

}  // namespace
}  // namespace t2vec::nn
