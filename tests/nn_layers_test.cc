#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "gradcheck.h"
#include "nn/checkpoint.h"
#include "nn/embedding.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/matrix.h"
#include "nn/ops.h"

namespace t2vec::nn {
namespace {

using ::t2vec::nn::testing::ExpectGradientsMatch;

Matrix RandomMatrix(size_t rows, size_t cols, Rng& rng, float scale = 1.0f) {
  Matrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.Uniform(-scale, scale));
  }
  return m;
}

TEST(EmbeddingTest, ForwardLooksUpRows) {
  Rng rng(1);
  Embedding emb(5, 3, rng);
  std::vector<int32_t> ids = {2, 0, 2};
  Matrix out;
  emb.Forward(ids, &out);
  ASSERT_EQ(out.rows(), 3u);
  ASSERT_EQ(out.cols(), 3u);
  for (size_t j = 0; j < 3; ++j) {
    EXPECT_EQ(out(0, j), emb.table().value(2, j));
    EXPECT_EQ(out(1, j), emb.table().value(0, j));
    EXPECT_EQ(out(2, j), out(0, j));  // Same token -> same row.
  }
}

TEST(EmbeddingTest, BackwardAccumulatesDuplicates) {
  Rng rng(2);
  Embedding emb(4, 2, rng);
  std::vector<int32_t> ids = {1, 1, 3};
  Matrix d_out(3, 2, 1.0f);
  d_out(2, 0) = 5.0f;
  emb.Backward(ids, d_out);
  EXPECT_FLOAT_EQ(emb.table().grad(1, 0), 2.0f);  // Two hits on row 1.
  EXPECT_FLOAT_EQ(emb.table().grad(1, 1), 2.0f);
  EXPECT_FLOAT_EQ(emb.table().grad(3, 0), 5.0f);
  EXPECT_FLOAT_EQ(emb.table().grad(0, 0), 0.0f);
}

TEST(LinearTest, ForwardMatchesManual) {
  Rng rng(3);
  Linear lin("lin", 2, 3, rng);
  Matrix x(1, 2);
  x(0, 0) = 1.0f;
  x(0, 1) = -2.0f;
  Matrix out;
  lin.Forward(x, &out);
  for (size_t j = 0; j < 3; ++j) {
    const float expected = x(0, 0) * lin.weight().value(0, j) +
                           x(0, 1) * lin.weight().value(1, j) +
                           lin.bias().value(0, j);
    EXPECT_NEAR(out(0, j), expected, 1e-6f);
  }
}

// Gradient check: loss = sum of squares of the linear output.
TEST(LinearTest, GradCheck) {
  Rng rng(4);
  Linear lin("lin", 3, 4, rng);
  Matrix x = RandomMatrix(5, 3, rng);

  auto loss_fn = [&]() {
    Matrix out;
    lin.Forward(x, &out);
    double loss = 0.0;
    for (size_t i = 0; i < out.size(); ++i) {
      loss += 0.5 * static_cast<double>(out.data()[i]) * out.data()[i];
    }
    return loss;
  };

  Matrix out;
  lin.Forward(x, &out);
  Matrix d_out = out;  // d(0.5*y^2)/dy = y
  Matrix d_x;
  for (Parameter* p : lin.Params()) p->ZeroGrad();
  lin.Backward(x, d_out, &d_x);

  ExpectGradientsMatch(&lin.weight().value, lin.weight().grad, loss_fn);
  ExpectGradientsMatch(&lin.bias().value, lin.bias().grad, loss_fn);
  // Check input gradient too.
  Matrix x_grad_holder = d_x;
  ExpectGradientsMatch(&x, x_grad_holder, loss_fn);
}

TEST(SoftmaxCrossEntropyTest, KnownValue) {
  // Two classes with equal logits: loss = log 2, grad = p - onehot.
  Matrix logits(1, 2);
  std::vector<int32_t> targets = {1};
  Matrix d_logits;
  const double loss = SoftmaxCrossEntropy(logits, targets, -1, &d_logits);
  EXPECT_NEAR(loss, std::log(2.0), 1e-6);
  EXPECT_NEAR(d_logits(0, 0), 0.5f, 1e-6f);
  EXPECT_NEAR(d_logits(0, 1), -0.5f, 1e-6f);
}

TEST(SoftmaxCrossEntropyTest, IgnoredRowsContributeNothing) {
  Rng rng(5);
  Matrix logits = RandomMatrix(3, 4, rng);
  std::vector<int32_t> targets = {2, -1, 0};
  Matrix d_logits;
  const double loss = SoftmaxCrossEntropy(logits, targets, -1, &d_logits);
  EXPECT_GT(loss, 0.0);
  for (size_t j = 0; j < 4; ++j) EXPECT_EQ(d_logits(1, j), 0.0f);
}

TEST(SoftmaxCrossEntropyTest, GradCheck) {
  Rng rng(6);
  Matrix logits = RandomMatrix(4, 7, rng, 2.0f);
  std::vector<int32_t> targets = {0, 3, -1, 6};

  auto loss_fn = [&]() {
    Matrix d;
    return SoftmaxCrossEntropy(logits, targets, -1, &d);
  };
  Matrix d_logits;
  SoftmaxCrossEntropy(logits, targets, -1, &d_logits);
  ExpectGradientsMatch(&logits, d_logits, loss_fn, 1e-2f, 2e-2, 28);
}

TEST(SoftCrossEntropyTest, MatchesHardWhenOneHot) {
  Rng rng(7);
  Matrix logits = RandomMatrix(2, 5, rng, 2.0f);
  std::vector<int32_t> targets = {3, 1};
  Matrix hard_grad;
  const double hard_loss =
      SoftmaxCrossEntropy(logits, targets, -1, &hard_grad);

  Matrix dist(2, 5);
  dist(0, 3) = 1.0f;
  dist(1, 1) = 1.0f;
  std::vector<uint8_t> active = {1, 1};
  Matrix soft_grad;
  const double soft_loss = SoftCrossEntropy(logits, dist, active, &soft_grad);

  EXPECT_NEAR(hard_loss, soft_loss, 1e-5);
  EXPECT_LT(MaxAbsDiff(hard_grad, soft_grad), 1e-6f);
}

TEST(SoftCrossEntropyTest, GradCheck) {
  Rng rng(8);
  Matrix logits = RandomMatrix(3, 6, rng, 2.0f);
  // Random normalized target distributions.
  Matrix dist(3, 6);
  for (size_t r = 0; r < 3; ++r) {
    double total = 0.0;
    for (size_t c = 0; c < 6; ++c) {
      dist(r, c) = static_cast<float>(rng.Uniform());
      total += dist(r, c);
    }
    for (size_t c = 0; c < 6; ++c) {
      dist(r, c) = static_cast<float>(dist(r, c) / total);
    }
  }
  std::vector<uint8_t> active = {1, 0, 1};

  auto loss_fn = [&]() {
    Matrix d;
    return SoftCrossEntropy(logits, dist, active, &d);
  };
  Matrix d_logits;
  SoftCrossEntropy(logits, dist, active, &d_logits);
  ExpectGradientsMatch(&logits, d_logits, loss_fn, 1e-2f, 2e-2, 18);
  // Inactive row has zero gradient.
  for (size_t j = 0; j < 6; ++j) EXPECT_EQ(d_logits(1, j), 0.0f);
}

TEST(CheckpointTest, SaveLoadRoundTrip) {
  Rng rng(9);
  Linear a("layer", 3, 4, rng);
  Embedding e(6, 3, rng);
  ParamList params = a.Params();
  for (Parameter* p : e.Params()) params.push_back(p);

  const std::string path = ::testing::TempDir() + "/ckpt_test.bin";
  ASSERT_TRUE(SaveParams(params, path).ok());

  // Fresh instances with different random init.
  Rng rng2(99);
  Linear a2("layer", 3, 4, rng2);
  Embedding e2(6, 3, rng2);
  ParamList params2 = a2.Params();
  for (Parameter* p : e2.Params()) params2.push_back(p);
  ASSERT_GT(MaxAbsDiff(a.weight().value, a2.weight().value), 0.0f);

  ASSERT_TRUE(LoadParams(params2, path).ok());
  EXPECT_EQ(MaxAbsDiff(a.weight().value, a2.weight().value), 0.0f);
  EXPECT_EQ(MaxAbsDiff(a.bias().value, a2.bias().value), 0.0f);
  EXPECT_EQ(MaxAbsDiff(e.table().value, e2.table().value), 0.0f);
  std::remove(path.c_str());
}

TEST(CheckpointTest, ShapeMismatchRejected) {
  Rng rng(10);
  Linear a("layer", 3, 4, rng);
  const std::string path = ::testing::TempDir() + "/ckpt_mismatch.bin";
  ASSERT_TRUE(SaveParams(a.Params(), path).ok());

  Linear b("layer", 3, 5, rng);  // Different out_dim.
  Status s = LoadParams(b.Params(), path);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(CheckpointTest, MissingFileFails) {
  Rng rng(11);
  Linear a("layer", 2, 2, rng);
  Status s = LoadParams(a.Params(), "/nonexistent/path/ckpt.bin");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace t2vec::nn
