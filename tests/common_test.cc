#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/serialize.h"
#include "common/sort.h"
#include "common/status.h"

namespace t2vec {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::IoError("disk on fire");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_EQ(s.ToString(), "IoError: disk on fire");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 16; ++i) differing += (a.NextU64() != b.NextU64());
  EXPECT_GT(differing, 0);
}

TEST(RngTest, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(7);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50000; ++i) counts[rng.UniformInt(10)]++;
  // Each bucket should get roughly 5000 hits.
  for (int c : counts) EXPECT_NEAR(c, 5000, 500);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(13);
  std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 100000; ++i) counts[rng.Categorical(weights)]++;
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / 100000.0, 0.1, 0.01);
  EXPECT_NEAR(counts[1] / 100000.0, 0.3, 0.015);
  EXPECT_NEAR(counts[3] / 100000.0, 0.6, 0.015);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> orig = v;
  rng.Shuffle(v);
  EXPECT_NE(v, orig);  // Astronomically unlikely to be identity.
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ForkIndependent) {
  Rng parent(23);
  Rng child = parent.Fork();
  EXPECT_NE(parent.NextU64(), child.NextU64());
}

TEST(AliasSamplerTest, MatchesDistribution) {
  std::vector<double> weights = {5.0, 1.0, 4.0};
  AliasSampler sampler(weights);
  EXPECT_NEAR(sampler.Probability(0), 0.5, 1e-12);
  EXPECT_NEAR(sampler.Probability(1), 0.1, 1e-12);
  EXPECT_NEAR(sampler.Probability(2), 0.4, 1e-12);

  Rng rng(29);
  std::vector<int> counts(3, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) counts[sampler.Sample(rng)]++;
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.5, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.4, 0.01);
}

TEST(AliasSamplerTest, SingleElement) {
  AliasSampler sampler({3.0});
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(sampler.Sample(rng), 0u);
}

TEST(AliasSamplerTest, ZeroWeightNeverSampled) {
  AliasSampler sampler({0.0, 1.0, 0.0, 1.0});
  Rng rng(31);
  for (int i = 0; i < 10000; ++i) {
    const size_t s = sampler.Sample(rng);
    EXPECT_TRUE(s == 1 || s == 3);
  }
}

TEST(SmoothedDistributionTest, PowerSmoothing) {
  std::vector<double> counts = {16.0, 1.0};
  std::vector<double> dist = SmoothedDistribution(counts, 0.5);
  // sqrt(16)=4, sqrt(1)=1 -> 0.8 / 0.2.
  EXPECT_NEAR(dist[0], 0.8, 1e-12);
  EXPECT_NEAR(dist[1], 0.2, 1e-12);
}

TEST(SerializeTest, RoundTrip) {
  const std::string path = ::testing::TempDir() + "/serialize_test.bin";
  {
    BinaryWriter writer(path);
    ASSERT_TRUE(writer.ok());
    writer.WritePod<uint32_t>(0xDEADBEEF);
    writer.WritePod<double>(3.25);
    writer.WriteString("hello world");
    writer.WriteVector(std::vector<float>{1.0f, -2.0f, 3.5f});
    ASSERT_TRUE(writer.Finish().ok());
  }
  {
    BinaryReader reader(path);
    ASSERT_TRUE(reader.ok());
    uint32_t magic = 0;
    double d = 0.0;
    std::string s;
    std::vector<float> v;
    ASSERT_TRUE(reader.ReadPod(&magic));
    ASSERT_TRUE(reader.ReadPod(&d));
    ASSERT_TRUE(reader.ReadString(&s));
    ASSERT_TRUE(reader.ReadVector(&v));
    EXPECT_EQ(magic, 0xDEADBEEF);
    EXPECT_EQ(d, 3.25);
    EXPECT_EQ(s, "hello world");
    EXPECT_EQ(v, (std::vector<float>{1.0f, -2.0f, 3.5f}));
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, TruncatedReadFails) {
  const std::string path = ::testing::TempDir() + "/serialize_trunc.bin";
  {
    BinaryWriter writer(path);
    writer.WritePod<uint32_t>(1);
    ASSERT_TRUE(writer.Finish().ok());
  }
  BinaryReader reader(path);
  uint32_t x = 0;
  uint64_t y = 0;
  EXPECT_TRUE(reader.ReadPod(&x));
  EXPECT_FALSE(reader.ReadPod(&y));
  std::remove(path.c_str());
}

TEST(DeterministicSortTest, SortsAndPermutes) {
  Rng rng(7);
  for (size_t n : {0u, 1u, 2u, 15u, 16u, 17u, 100u, 1500u}) {
    std::vector<int> v(n);
    for (auto& x : v) x = static_cast<int>(rng.UniformInt(40));
    std::vector<int> sorted = v;
    DeterministicSort(sorted.begin(), sorted.end(), std::less<int>());
    EXPECT_TRUE(std::is_sorted(sorted.begin(), sorted.end())) << "n=" << n;
    EXPECT_TRUE(std::is_permutation(sorted.begin(), sorted.end(), v.begin(),
                                    v.end()))
        << "n=" << n;
  }
}

TEST(DeterministicSortTest, TiePlacementIsAFixedPermutation) {
  // Batch composition depends on where comparator-equivalent elements land,
  // so the full permutation — not just sortedness — must be reproducible.
  // Golden tie order for a fixed tie-heavy input, locked on the reference
  // toolchain; any platform or algorithm change that moves ties breaks this.
  std::vector<int> keys = {3, 1, 3, 2, 1, 3, 2, 1, 3, 2, 1, 3, 2, 1, 3,
                           2, 1, 3, 2, 1, 3, 2, 1, 3, 2, 1, 3, 2, 1, 3};
  std::vector<size_t> order(keys.size());
  std::iota(order.begin(), order.end(), 0);
  DeterministicSort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return keys[a] < keys[b];
  });
  const std::vector<size_t> golden = {1,  28, 4,  25, 7,  22, 10, 19, 13, 16,
                                      15, 27, 24, 21, 18, 12, 9,  6,  3,  0,
                                      14, 17, 11, 20, 8,  23, 5,  26, 2,  29};
  EXPECT_EQ(order, golden);
}

#ifdef __GLIBCXX__
TEST(DeterministicSortTest, MatchesReferenceToolchainSort) {
  // On libstdc++ the pinned algorithm must reproduce std::sort exactly —
  // this is what keeps historical batch compositions (and trained models)
  // unchanged on the reference toolchain.
  Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t n = rng.UniformInt(3000);
    std::vector<int> lens(n);
    for (auto& l : lens) l = static_cast<int>(rng.UniformInt(40));
    std::vector<size_t> a(n), b(n);
    std::iota(a.begin(), a.end(), 0);
    b = a;
    auto comp = [&](size_t x, size_t y) { return lens[x] < lens[y]; };
    std::sort(a.begin(), a.end(), comp);
    DeterministicSort(b.begin(), b.end(), comp);
    ASSERT_EQ(a, b) << "trial " << trial << " n=" << n;
  }
}
#endif

}  // namespace
}  // namespace t2vec
