// Tests of the deterministic parallelism subsystem (common/thread_pool.h):
// ParallelFor correctness under every partitioning, nesting and concurrent
// callers (the interesting cases under TSan — this binary is the designated
// thread-pool exercise when configured with -DT2VEC_SANITIZE=thread), and
// the headline guarantee: Encode, VectorIndex::Query, dist::KnnQuery, and
// trajectory generation produce bit-identical results at 1, 2, and 8
// threads.

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "core/t2vec.h"
#include "core/vec_index.h"
#include "dist/classic.h"
#include "dist/knn.h"
#include "traj/generator.h"

namespace t2vec {
namespace {

// Restores the process-wide thread count on scope exit so tests compose.
struct ThreadCountGuard {
  ~ThreadCountGuard() { SetNumThreads(0); }
};

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexOnce) {
  ThreadCountGuard guard;
  for (int threads : {1, 2, 3, 8}) {
    for (size_t n : {0u, 1u, 7u, 64u, 1000u}) {
      for (size_t grain : {1u, 4u, 300u}) {
        std::vector<int> visits(n, 0);
        ParallelFor(0, n, grain, [&](size_t i) { visits[i]++; }, threads);
        for (size_t i = 0; i < n; ++i) {
          ASSERT_EQ(visits[i], 1) << "threads=" << threads << " n=" << n
                                  << " grain=" << grain << " i=" << i;
        }
      }
    }
  }
}

TEST(ThreadPoolTest, ParallelForHonorsSubrange) {
  std::vector<int> visits(100, 0);
  ParallelFor(10, 90, 1, [&](size_t i) { visits[i]++; }, 4);
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(visits[i], (i >= 10 && i < 90) ? 1 : 0);
  }
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineAndStaysCorrect) {
  constexpr size_t kOuter = 16, kInner = 32;
  std::vector<uint64_t> sums(kOuter, 0);
  ParallelFor(0, kOuter, 1, [&](size_t i) {
    // The nested loop must run inline on the worker (deadlock-free) and
    // still cover its whole range.
    ParallelFor(0, kInner, 1, [&](size_t j) { sums[i] += j + i; }, 8);
  }, 8);
  for (size_t i = 0; i < kOuter; ++i) {
    EXPECT_EQ(sums[i], kInner * i + kInner * (kInner - 1) / 2);
  }
}

TEST(ThreadPoolTest, ConcurrentCallersFromDistinctThreads) {
  // Two user threads issuing ParallelFor simultaneously must serialize on
  // the pool without corrupting either result.
  constexpr size_t kN = 4096;
  std::vector<uint32_t> a(kN, 0), b(kN, 0);
  std::thread ta([&] {
    ParallelFor(0, kN, 16, [&](size_t i) { a[i] = static_cast<uint32_t>(i); },
                4);
  });
  std::thread tb([&] {
    ParallelFor(0, kN, 16,
                [&](size_t i) { b[i] = static_cast<uint32_t>(2 * i); }, 4);
  });
  ta.join();
  tb.join();
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(a[i], i);
    ASSERT_EQ(b[i], 2 * i);
  }
}

TEST(ThreadPoolTest, SetNumThreadsOverridesAndRestores) {
  ThreadCountGuard guard;
  SetNumThreads(3);
  EXPECT_EQ(GetNumThreads(), 3);
  SetNumThreads(0);
  EXPECT_GE(GetNumThreads(), 1);
}

// --- Bit-identical results across thread counts --------------------------

class DeterminismTest : public ::testing::Test {
 protected:
  static const traj::Dataset& Trips() {
    static traj::Dataset* trips = [] {
      traj::SyntheticTrajectoryGenerator generator(
          traj::GeneratorConfig::PortoLike());
      // > 256 trips so Encode spans multiple parallel slices.
      return new traj::Dataset(generator.Generate(300));
    }();
    return *trips;
  }

  static const core::T2Vec& Model() {
    static core::T2Vec* model = [] {
      core::T2VecConfig config;
      config.hidden = 24;
      config.embed_dim = 16;
      config.layers = 1;
      config.max_iterations = 8;
      config.validate_every = 100;
      config.pretrain_epochs = 1;
      config.r1_grid = {0.0, 0.4};
      config.r2_grid = {0.0};
      std::vector<traj::Trajectory> train(
          Trips().trajectories().begin(),
          Trips().trajectories().begin() + 120);
      return new core::T2Vec(core::T2Vec::Train(train, config));
    }();
    return *model;
  }

  template <typename Fn>
  static void ExpectIdenticalAcrossThreadCounts(const Fn& fn) {
    ThreadCountGuard guard;
    SetNumThreads(1);
    const auto serial = fn();
    for (int threads : {2, 8}) {
      SetNumThreads(threads);
      const auto parallel = fn();
      ASSERT_EQ(serial, parallel) << "at " << threads << " threads";
    }
  }
};

TEST_F(DeterminismTest, EncodeIsBitIdentical) {
  ThreadCountGuard guard;
  SetNumThreads(1);
  const nn::Matrix serial = Model().Encode(Trips().trajectories());
  for (int threads : {2, 8}) {
    SetNumThreads(threads);
    const nn::Matrix parallel = Model().Encode(Trips().trajectories());
    ASSERT_EQ(serial.rows(), parallel.rows());
    ASSERT_EQ(serial.cols(), parallel.cols());
    ASSERT_EQ(std::memcmp(serial.data(), parallel.data(),
                          serial.size() * sizeof(float)),
              0)
        << "Encode diverged at " << threads << " threads";
  }
}

TEST_F(DeterminismTest, VectorIndexKnnAndRankAreBitIdentical) {
  const nn::Matrix vecs = Model().Encode(Trips().trajectories());
  const core::VectorIndex index{nn::Matrix(vecs)};
  ExpectIdenticalAcrossThreadCounts([&] {
    std::vector<size_t> out;
    for (size_t q = 0; q < 8; ++q) {
      const auto knn = index.Query({vecs.Row(q), vecs.cols()}, 10);
      out.insert(out.end(), knn.ids.begin(), knn.ids.end());
      out.push_back(index.RankOf(vecs.Row(q), q));
    }
    return out;
  });
}

TEST_F(DeterminismTest, LshKnnIsBitIdentical) {
  const nn::Matrix vecs = Model().Encode(Trips().trajectories());
  ExpectIdenticalAcrossThreadCounts([&] {
    core::LshIndex lsh(vecs, /*num_tables=*/4, /*num_bits=*/8, /*seed=*/3);
    std::vector<size_t> out;
    for (size_t q = 0; q < 8; ++q) {
      const auto knn = lsh.Query({vecs.Row(q), vecs.cols()}, 10);
      out.insert(out.end(), knn.ids.begin(), knn.ids.end());
    }
    return out;
  });
}

TEST_F(DeterminismTest, ClassicalKnnSearchIsBitIdentical) {
  const std::vector<traj::Trajectory>& db = Trips().trajectories();
  const dist::DtwMeasure dtw;
  ExpectIdenticalAcrossThreadCounts([&] {
    std::vector<size_t> out;
    for (size_t q = 0; q < 4; ++q) {
      const auto knn = dist::KnnQuery(dtw, db[q], db, 5);
      out.insert(out.end(), knn.ids.begin(), knn.ids.end());
      out.push_back(dist::RankOf(dtw, db[q], db, q));
    }
    return out;
  });
}

TEST_F(DeterminismTest, GeneratorIsBitIdenticalAndOrderIndependent) {
  const traj::SyntheticTrajectoryGenerator generator(
      traj::GeneratorConfig::PortoLike());
  ThreadCountGuard guard;
  SetNumThreads(1);
  const traj::Dataset serial = generator.Generate(40);
  for (int threads : {2, 8}) {
    SetNumThreads(threads);
    const traj::Dataset parallel = generator.Generate(40);
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      ASSERT_EQ(serial[i].points, parallel[i].points)
          << "trip " << i << " at " << threads << " threads";
    }
  }
  // Trip i is a pure function of (config, i): single-trip generation
  // reproduces the batch exactly.
  for (size_t i : {0u, 7u, 39u}) {
    const traj::Trajectory one =
        generator.GenerateOne(static_cast<int64_t>(i), nullptr);
    EXPECT_EQ(one.points, serial[i].points);
  }
}

}  // namespace
}  // namespace t2vec
