#include <gtest/gtest.h>

#include <cstdlib>

#include "common/rng.h"
#include "dist/classic.h"
#include "eval/cache.h"
#include "eval/experiments.h"
#include "eval/metrics.h"
#include "eval/table.h"
#include "traj/transforms.h"

namespace t2vec::eval {
namespace {

traj::Trajectory TrajOf(std::vector<geo::Point> points) {
  traj::Trajectory t;
  t.points = std::move(points);
  return t;
}

TEST(CacheTest, FingerprintDistinguishesNegativeCoordinates) {
  // Regression: casting a negative double straight to uint64_t is UB and
  // collapsed distinct datasets (PortoLike longitudes are negative) onto
  // unstable fingerprints, silently serving stale cached models.
  const std::vector<traj::Trajectory> negative = {
      TrajOf({{-8.61, 41.14}, {-8.60, 41.15}, {-8.59, 41.16}})};
  const std::vector<traj::Trajectory> shifted = {
      TrajOf({{-8.62, 41.14}, {-8.60, 41.15}, {-8.59, 41.16}})};
  const std::vector<traj::Trajectory> positive = {
      TrajOf({{8.61, 41.14}, {8.60, 41.15}, {8.59, 41.16}})};
  EXPECT_NE(DataFingerprint(negative), DataFingerprint(shifted));
  EXPECT_NE(DataFingerprint(negative), DataFingerprint(positive));
  // Same data always maps to the same key.
  EXPECT_EQ(DataFingerprint(negative), DataFingerprint(negative));
}

TEST(CacheTest, FingerprintSeesMorePointsThanEndpoints) {
  // The old fingerprint probed only front().x and back().y; datasets
  // differing in the middle (or in the other coordinate of an endpoint)
  // collided.
  const std::vector<traj::Trajectory> base = {
      TrajOf({{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}})};
  const std::vector<traj::Trajectory> mid_differs = {
      TrajOf({{1.0, 2.0}, {3.5, 4.0}, {5.0, 6.0}})};
  const std::vector<traj::Trajectory> front_y_differs = {
      TrajOf({{1.0, 2.5}, {3.0, 4.0}, {5.0, 6.0}})};
  EXPECT_NE(DataFingerprint(base), DataFingerprint(mid_differs));
  EXPECT_NE(DataFingerprint(base), DataFingerprint(front_y_differs));
}

TEST(CacheTest, CachePathNeverTruncatesLongCacheDir) {
  // Regression: the path used to go through a 256-byte snprintf buffer, so
  // a long $T2VEC_CACHE_DIR silently truncated — distinct configs then
  // collided on the truncated file name.
  const std::string long_dir(300, 'd');
  ASSERT_EQ(setenv("T2VEC_CACHE_DIR", long_dir.c_str(), 1), 0);
  const std::string path = CachePath("tag", 0x1111222233334444ULL,
                                     0x5555666677778888ULL, ".t2vec");
  unsetenv("T2VEC_CACHE_DIR");
  EXPECT_EQ(path.rfind(long_dir, 0), 0u) << "directory prefix lost";
  EXPECT_NE(path.find("tag_1111222233334444_5555666677778888.t2vec"),
            std::string::npos);
  // Distinct fingerprints stay distinct however long the prefix is.
  ASSERT_EQ(setenv("T2VEC_CACHE_DIR", long_dir.c_str(), 1), 0);
  const std::string other = CachePath("tag", 0x1111222233334444ULL,
                                      0x5555666677778889ULL, ".t2vec");
  unsetenv("T2VEC_CACHE_DIR");
  EXPECT_NE(path, other);
}

TEST(MetricsTest, MeanRank) {
  EXPECT_DOUBLE_EQ(MeanRank({1, 2, 3}), 2.0);
  EXPECT_DOUBLE_EQ(MeanRank({5}), 5.0);
}

TEST(MetricsTest, KnnPrecision) {
  EXPECT_DOUBLE_EQ(KnnPrecision({1, 2, 3, 4}, {1, 2, 3, 4}), 1.0);
  EXPECT_DOUBLE_EQ(KnnPrecision({1, 2, 3, 4}, {5, 6, 7, 8}), 0.0);
  EXPECT_DOUBLE_EQ(KnnPrecision({1, 2, 3, 4}, {4, 3, 9, 10}), 0.5);
  // Order-insensitive.
  EXPECT_DOUBLE_EQ(KnnPrecision({1, 2}, {2, 1}), 1.0);
}

TEST(MetricsTest, CrossDistanceDeviation) {
  EXPECT_DOUBLE_EQ(CrossDistanceDeviation(110.0, 100.0), 0.1);
  EXPECT_DOUBLE_EQ(CrossDistanceDeviation(90.0, 100.0), 0.1);
  EXPECT_DOUBLE_EQ(CrossDistanceDeviation(100.0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(CrossDistanceDeviation(5.0, 0.0), 0.0);  // Guarded.
}

TEST(ExperimentsTest, MakeDataSplits) {
  const ExperimentData data = MakeData(DatasetKind::kPortoLike, 30, 20);
  EXPECT_EQ(data.train.size(), 30u);
  EXPECT_EQ(data.test.size(), 20u);
  // Porto-like trips satisfy the length filter.
  for (size_t i = 0; i < data.train.size(); ++i) {
    EXPECT_GE(data.train[i].size(), 30u);
  }
}

TEST(ExperimentsTest, BuildMssStructure) {
  const ExperimentData data = MakeData(DatasetKind::kPortoLike, 5, 30);
  const MssData mss = BuildMss(data.test, 10, 15);
  EXPECT_EQ(mss.queries.size(), 10u);
  EXPECT_EQ(mss.database.size(), 25u);
  EXPECT_EQ(mss.num_queries, 10u);
  // queries[i] and database[i] are interleaved halves of the same trip:
  // same id, roughly half length each.
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(mss.queries[i].id, mss.database[i].id);
    const size_t total = mss.queries[i].size() + mss.database[i].size();
    EXPECT_EQ(total, data.test[i].size());
  }
}

TEST(ExperimentsTest, TwinRankIsTopUnderGoodMeasure) {
  // On untransformed interleaved halves, EDwP should rank the twin near the
  // top — a consistency check of the whole harness.
  const ExperimentData data = MakeData(DatasetKind::kPortoLike, 5, 60);
  const MssData mss = BuildMss(data.test, 15, 40);
  dist::DtwMeasure dtw;
  const double rank = MeanRankOfMeasure(dtw, mss);
  EXPECT_LT(rank, 4.0);
}

TEST(ExperimentsTest, TransformMssChangesTrajectories) {
  const ExperimentData data = MakeData(DatasetKind::kPortoLike, 5, 30);
  MssData mss = BuildMss(data.test, 5, 10);
  const size_t before = mss.queries[0].size();
  Rng rng(3);
  TransformMss(&mss, 0.5, 0.0, rng);
  EXPECT_LT(mss.queries[0].size(), before);
  // Endpoints preserved by downsampling.
  EXPECT_EQ(mss.queries[0].points.front().x,
            traj::AlternatingSplit(data.test[0]).first.points.front().x);
}

TEST(ExperimentsTest, MeanRankOfVectorsIdentity) {
  // Query vectors identical to their targets: every rank is 1.
  nn::Matrix db(6, 4);
  Rng rng(4);
  for (size_t i = 0; i < db.size(); ++i) {
    db.data()[i] = static_cast<float>(rng.Gaussian());
  }
  nn::Matrix queries(3, 4);
  for (size_t i = 0; i < 3; ++i) {
    std::copy(db.Row(i), db.Row(i) + 4, queries.Row(i));
  }
  EXPECT_DOUBLE_EQ(MeanRankOfVectors(queries, db), 1.0);
}

TEST(ExperimentsTest, CrossPairsAreDistinct) {
  const ExperimentData data = MakeData(DatasetKind::kPortoLike, 5, 20);
  Rng rng(5);
  const auto pairs = MakeCrossPairs(data.test, 15, rng);
  EXPECT_EQ(pairs.size(), 15u);
  for (const auto& [a, b] : pairs) {
    EXPECT_NE(a.id, b.id);
  }
}

TEST(ExperimentsTest, CrossDeviationZeroWithoutTransform) {
  const ExperimentData data = MakeData(DatasetKind::kPortoLike, 5, 20);
  Rng rng(6);
  const auto pairs = MakeCrossPairs(data.test, 10, rng);
  dist::DtwMeasure dtw;
  EXPECT_DOUBLE_EQ(CrossDeviationOfMeasure(dtw, pairs, 0.0, 0.0, rng), 0.0);
}

TEST(ExperimentsTest, KnnPrecisionPerfectWithoutTransform) {
  const ExperimentData data = MakeData(DatasetKind::kPortoLike, 5, 40);
  std::vector<traj::Trajectory> queries(data.test.trajectories().begin(),
                                        data.test.trajectories().begin() + 5);
  std::vector<traj::Trajectory> database(data.test.trajectories().begin() + 5,
                                         data.test.trajectories().end());
  dist::DtwMeasure dtw;
  Rng rng(7);
  EXPECT_DOUBLE_EQ(
      KnnPrecisionOfMeasure(dtw, queries, database, 5, 0.0, 0.0, rng), 1.0);
}

TEST(ExperimentsTest, ScaledRespectsFloor) {
  // Without the env var the factor is 1.0.
  EXPECT_EQ(Scaled(100, 8), 100u);
  EXPECT_EQ(Scaled(4, 8), 8u);
}

TEST(TableTest, PrintsAllRows) {
  // Smoke: printing must not crash and row arity is enforced.
  Table table("Demo", {"a", "b"});
  table.AddRow({"x", "1"});
  table.AddRow("y", {2.5}, 1);
  table.Print();
}

}  // namespace
}  // namespace t2vec::eval
