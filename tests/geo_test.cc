#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "geo/cell_knn.h"
#include "geo/grid.h"
#include "geo/point.h"
#include "geo/projection.h"
#include "geo/vocab.h"

namespace t2vec::geo {
namespace {

TEST(PointTest, DistanceBasics) {
  EXPECT_DOUBLE_EQ(Distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(SquaredDistance({0, 0}, {3, 4}), 25.0);
  EXPECT_DOUBLE_EQ(Distance({1, 1}, {1, 1}), 0.0);
}

TEST(PointTest, Lerp) {
  const Point mid = Lerp({0, 0}, {10, 20}, 0.5);
  EXPECT_DOUBLE_EQ(mid.x, 5.0);
  EXPECT_DOUBLE_EQ(mid.y, 10.0);
  EXPECT_EQ(Lerp({0, 0}, {10, 20}, 0.0), (Point{0, 0}));
  EXPECT_EQ(Lerp({0, 0}, {10, 20}, 1.0), (Point{10, 20}));
}

TEST(PointTest, ProjectOntoSegment) {
  // Interior projection.
  const Point p = ProjectOntoSegment({5, 5}, {0, 0}, {10, 0});
  EXPECT_DOUBLE_EQ(p.x, 5.0);
  EXPECT_DOUBLE_EQ(p.y, 0.0);
  // Clamped to segment ends.
  EXPECT_EQ(ProjectOntoSegment({-3, 7}, {0, 0}, {10, 0}), (Point{0, 0}));
  EXPECT_EQ(ProjectOntoSegment({15, 7}, {0, 0}, {10, 0}), (Point{10, 0}));
  // Degenerate segment.
  EXPECT_EQ(ProjectOntoSegment({5, 5}, {1, 1}, {1, 1}), (Point{1, 1}));
}

TEST(PointTest, DistanceToSegment) {
  EXPECT_DOUBLE_EQ(DistanceToSegment({5, 3}, {0, 0}, {10, 0}), 3.0);
  EXPECT_DOUBLE_EQ(DistanceToSegment({-4, 3}, {0, 0}, {10, 0}), 5.0);
}

TEST(ProjectionTest, OriginMapsToZero) {
  LocalProjection proj({-8.6, 41.15});  // Porto.
  const Point p = proj.Forward({-8.6, 41.15});
  EXPECT_NEAR(p.x, 0.0, 1e-9);
  EXPECT_NEAR(p.y, 0.0, 1e-9);
}

TEST(ProjectionTest, RoundTrip) {
  LocalProjection proj({-8.6, 41.15});
  const GeoPoint g{-8.58, 41.17};
  const GeoPoint back = proj.Inverse(proj.Forward(g));
  EXPECT_NEAR(back.lon, g.lon, 1e-12);
  EXPECT_NEAR(back.lat, g.lat, 1e-12);
}

TEST(ProjectionTest, MetricScaleReasonable) {
  // One degree of latitude is ~111 km everywhere.
  LocalProjection proj({0.0, 45.0});
  const Point p = proj.Forward({0.0, 46.0});
  EXPECT_NEAR(p.y, 111.2e3, 1e3);
  // One degree of longitude at 45N is ~78.6 km.
  const Point q = proj.Forward({1.0, 45.0});
  EXPECT_NEAR(q.x, 78.6e3, 1e3);
}

TEST(GridTest, Dimensions) {
  SpatialGrid grid({0, 0}, {1000, 500}, 100.0);
  EXPECT_EQ(grid.cols(), 10);
  EXPECT_EQ(grid.rows(), 5);
  EXPECT_EQ(grid.num_cells(), 50);
}

TEST(GridTest, CeilSizing) {
  SpatialGrid grid({0, 0}, {1001, 499}, 100.0);
  EXPECT_EQ(grid.cols(), 11);
  EXPECT_EQ(grid.rows(), 5);
}

TEST(GridTest, CellOfAndCenter) {
  SpatialGrid grid({0, 0}, {1000, 1000}, 100.0);
  const CellId c = grid.CellOf({250, 730});
  EXPECT_EQ(grid.ColOf(c), 2);
  EXPECT_EQ(grid.RowOf(c), 7);
  const Point center = grid.CenterOf(c);
  EXPECT_DOUBLE_EQ(center.x, 250.0);
  EXPECT_DOUBLE_EQ(center.y, 750.0);
}

TEST(GridTest, ClampsOutOfRange) {
  SpatialGrid grid({0, 0}, {1000, 1000}, 100.0);
  EXPECT_EQ(grid.CellOf({-50, -50}), grid.CellAt(0, 0));
  EXPECT_EQ(grid.CellOf({5000, 5000}), grid.CellAt(9, 9));
}

TEST(GridTest, RoundTripCellCenters) {
  SpatialGrid grid({-500, -500}, {500, 500}, 50.0);
  for (CellId c = 0; c < grid.num_cells(); c += 7) {
    EXPECT_EQ(grid.CellOf(grid.CenterOf(c)), c);
  }
}

// Vocabulary fixture: a 10x10 grid of 100 m cells where only a diagonal
// band of cells receives enough points to become hot.
class VocabTest : public ::testing::Test {
 protected:
  VocabTest() : grid_({0, 0}, {1000, 1000}, 100.0) {
    // Cells (i, i) for i in 0..9 get 5 hits each; cell (0, 9) gets 1 hit
    // (stays cold).
    for (int i = 0; i < 10; ++i) {
      const Point center = grid_.CenterOf(grid_.CellAt(i, i));
      for (int hit = 0; hit < 5; ++hit) points_.push_back(center);
    }
    points_.push_back(grid_.CenterOf(grid_.CellAt(9, 0)));
  }

  SpatialGrid grid_;
  std::vector<Point> points_;
};

TEST_F(VocabTest, HotCellSelection) {
  HotCellVocab vocab(grid_, points_, 5);
  EXPECT_EQ(vocab.num_hot_cells(), 10u);
  EXPECT_EQ(vocab.vocab_size(), 10 + kNumSpecialTokens);
}

TEST_F(VocabTest, ThresholdOne_KeepsAll) {
  HotCellVocab vocab(grid_, points_, 1);
  EXPECT_EQ(vocab.num_hot_cells(), 11u);
}

TEST_F(VocabTest, TokenOfOwnHotCell) {
  HotCellVocab vocab(grid_, points_, 5);
  const Point in_cell_3 = {350.0, 340.0};
  const Token t = vocab.TokenOf(in_cell_3);
  EXPECT_FALSE(HotCellVocab::IsSpecial(t));
  EXPECT_EQ(vocab.CenterOf(t), grid_.CenterOf(grid_.CellAt(3, 3)));
}

TEST_F(VocabTest, NearestHotCellForColdPoint) {
  HotCellVocab vocab(grid_, points_, 5);
  // A point in the cold cell (2, 3) is closest to hot cell (3, 3)
  // (its own cell is not hot). Cell (2,3) center is (350, 250); nearest
  // hot centers: (2,2)->(250,250) at 100m and (3,3)->(350,350) at 100m.
  // Use an off-center point to break the tie decisively.
  const Point p = {360.0, 255.0};  // In cell (2, 3), nearer to (2, 2)? No:
  // distance to (250,250) = sqrt(110^2+5^2)=110.1; to (350,350)=95.05.
  const Token t = vocab.TokenOf(p);
  EXPECT_EQ(vocab.CenterOf(t), grid_.CenterOf(grid_.CellAt(3, 3)));
}

TEST_F(VocabTest, HitCounts) {
  HotCellVocab vocab(grid_, points_, 5);
  const Token t = vocab.TokenOf(grid_.CenterOf(grid_.CellAt(4, 4)));
  EXPECT_EQ(vocab.HitCount(t), 5);
}

TEST_F(VocabTest, ReconstructionMatches) {
  HotCellVocab original(grid_, points_, 5);
  std::vector<int64_t> counts;
  for (size_t i = 0; i < original.num_hot_cells(); ++i) {
    counts.push_back(original.HitCount(static_cast<Token>(i) +
                                       kNumSpecialTokens));
  }
  HotCellVocab rebuilt(grid_, original.hot_cells(), counts);
  EXPECT_EQ(rebuilt.vocab_size(), original.vocab_size());
  for (const Point& p : points_) {
    EXPECT_EQ(rebuilt.TokenOf(p), original.TokenOf(p));
  }
}

TEST(CellKnnTest, SelfIsFirstNeighbor) {
  SpatialGrid grid({0, 0}, {1000, 1000}, 100.0);
  std::vector<Point> points;
  for (int r = 0; r < 10; ++r) {
    for (int c = 0; c < 10; ++c) {
      points.push_back(grid.CenterOf(grid.CellAt(r, c)));
    }
  }
  HotCellVocab vocab(grid, points, 1);
  CellKnnTable knn(vocab, 5, 100.0);
  for (Token t = kNumSpecialTokens; t < vocab.vocab_size(); ++t) {
    const auto& neighbors = knn.Neighbors(t);
    ASSERT_EQ(neighbors.size(), 5u);
    EXPECT_EQ(neighbors[0], t);
    EXPECT_EQ(knn.Distances(t)[0], 0.0f);
  }
}

TEST(CellKnnTest, DistancesSortedWeightsNormalized) {
  SpatialGrid grid({0, 0}, {800, 800}, 100.0);
  std::vector<Point> points;
  for (int r = 0; r < 8; ++r) {
    for (int c = 0; c < 8; ++c) {
      points.push_back(grid.CenterOf(grid.CellAt(r, c)));
    }
  }
  HotCellVocab vocab(grid, points, 1);
  CellKnnTable knn(vocab, 9, 100.0);
  for (Token t = kNumSpecialTokens; t < vocab.vocab_size(); ++t) {
    const auto& dists = knn.Distances(t);
    const auto& weights = knn.Weights(t);
    double weight_sum = 0.0;
    for (size_t i = 0; i < dists.size(); ++i) {
      if (i > 0) {
        EXPECT_GE(dists[i], dists[i - 1]);
      }
      weight_sum += weights[i];
      // Closer cells never get smaller weight.
      if (i > 0 && dists[i] > dists[i - 1]) {
        EXPECT_LT(weights[i], weights[i - 1]);
      }
    }
    EXPECT_NEAR(weight_sum, 1.0, 1e-5);
  }
}

TEST(CellKnnTest, MatchesBruteForce) {
  SpatialGrid grid({0, 0}, {700, 700}, 100.0);
  // Sparse, irregular hot set.
  Rng rng(5);
  std::vector<Point> points;
  for (int i = 0; i < 25; ++i) {
    const Point p{rng.Uniform(0, 700), rng.Uniform(0, 700)};
    for (int hit = 0; hit < 3; ++hit) points.push_back(p);
  }
  HotCellVocab vocab(grid, points, 3);
  const int k = 6;
  CellKnnTable knn(vocab, k, 100.0);

  for (Token t = kNumSpecialTokens; t < vocab.vocab_size(); ++t) {
    // Brute-force k nearest by center distance.
    std::vector<std::pair<double, Token>> all;
    for (Token u = kNumSpecialTokens; u < vocab.vocab_size(); ++u) {
      all.emplace_back(Distance(vocab.CenterOf(t), vocab.CenterOf(u)), u);
    }
    std::sort(all.begin(), all.end());
    const auto& got = knn.Neighbors(t);
    const size_t expect_n =
        std::min<size_t>(static_cast<size_t>(k), all.size());
    ASSERT_EQ(got.size(), expect_n);
    for (size_t i = 0; i < expect_n; ++i) {
      // Compare by distance (ties may reorder tokens).
      EXPECT_NEAR(knn.Distances(t)[i], all[i].first, 1e-3);
    }
  }
}

TEST(CellKnnTest, KLargerThanVocabClamped) {
  SpatialGrid grid({0, 0}, {300, 300}, 100.0);
  std::vector<Point> points = {grid.CenterOf(0), grid.CenterOf(4),
                               grid.CenterOf(8)};
  HotCellVocab vocab(grid, points, 1);
  CellKnnTable knn(vocab, 20, 100.0);
  EXPECT_EQ(knn.Neighbors(kNumSpecialTokens).size(), 3u);
}

}  // namespace
}  // namespace t2vec::geo
