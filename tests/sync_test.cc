// Tests for common/sync.h: the annotated Mutex/CondVar wrappers every
// other component builds its locking on. Semantics (exclusion, reader
// sharing, wait/notify, deadlines) are exercised with real threads so the
// TSan concurrency gate sees genuine interleavings; the annotation macros
// themselves are checked to compile away to nothing off Clang.

#include "common/sync.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace t2vec {
namespace {

// Two-level stringification so the macro argument is expanded first: off
// Clang every annotation must stringify to "" — proof the attributes add
// zero tokens (and therefore zero layout or codegen difference).
#define T2VEC_SYNC_TEST_STR2(...) #__VA_ARGS__
#define T2VEC_SYNC_TEST_STR(...) T2VEC_SYNC_TEST_STR2(__VA_ARGS__)

TEST(SyncMacrosTest, AnnotationMacrosAreInertOffClang) {
#if defined(__clang__)
  EXPECT_STRNE(T2VEC_SYNC_TEST_STR(GUARDED_BY(mu)), "");
  EXPECT_STRNE(T2VEC_SYNC_TEST_STR(REQUIRES(mu)), "");
#else
  EXPECT_STREQ(T2VEC_SYNC_TEST_STR(GUARDED_BY(mu)), "");
  EXPECT_STREQ(T2VEC_SYNC_TEST_STR(PT_GUARDED_BY(mu)), "");
  EXPECT_STREQ(T2VEC_SYNC_TEST_STR(REQUIRES(mu)), "");
  EXPECT_STREQ(T2VEC_SYNC_TEST_STR(REQUIRES_SHARED(mu)), "");
  EXPECT_STREQ(T2VEC_SYNC_TEST_STR(ACQUIRE(mu)), "");
  EXPECT_STREQ(T2VEC_SYNC_TEST_STR(RELEASE(mu)), "");
  EXPECT_STREQ(T2VEC_SYNC_TEST_STR(EXCLUDES(mu)), "");
  EXPECT_STREQ(T2VEC_SYNC_TEST_STR(ACQUIRED_BEFORE(mu)), "");
  EXPECT_STREQ(T2VEC_SYNC_TEST_STR(CAPABILITY("mutex")), "");
  EXPECT_STREQ(T2VEC_SYNC_TEST_STR(SCOPED_CAPABILITY), "");
  EXPECT_STREQ(T2VEC_SYNC_TEST_STR(NO_THREAD_SAFETY_ANALYSIS), "");
#endif
}

/// The canonical annotated component shape (DESIGN.md §5.4): one mutex,
/// GUARDED_BY state, exclusive writes, shared reads.
class AnnotatedCounter {
 public:
  void Add(int v) {
    sync::MutexLock lock(&mu_);
    total_ += v;
  }

  int total() const {
    sync::ReaderMutexLock lock(&mu_);
    return total_;
  }

 private:
  mutable sync::Mutex mu_;
  int total_ GUARDED_BY(mu_) = 0;
};

TEST(SyncMutexTest, GuardedCounterIsExactUnderContention) {
  AnnotatedCounter counter;
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kIters; ++i) counter.Add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.total(), kThreads * kIters);
}

TEST(SyncMutexTest, TryLockReflectsHeldState) {
  sync::Mutex mu;
  mu.Lock();
  // Another thread must see the mutex as taken...
  std::thread prober([&mu] {
    if (mu.TryLock()) {
      ADD_FAILURE() << "TryLock succeeded on an exclusively held mutex";
      mu.Unlock();
    }
  });
  prober.join();
  mu.Unlock();
  // ...and a free mutex as takeable.
  if (mu.TryLock()) {
    mu.Unlock();
  } else {
    ADD_FAILURE() << "TryLock failed on a free mutex";
  }
}

TEST(SyncMutexTest, ReadersShareTheLock) {
  sync::Mutex mu;
  std::atomic<int> readers_inside{0};
  // Both threads hold the reader lock at the same time: each waits, while
  // still inside its critical section, until it has seen the other arrive.
  // If ReaderLock were exclusive this would deadlock (and time out).
  auto reader = [&] {
    sync::ReaderMutexLock lock(&mu);
    readers_inside.fetch_add(1);
    while (readers_inside.load() < 2) std::this_thread::yield();
  };
  std::thread a(reader);
  std::thread b(reader);
  a.join();
  b.join();
  EXPECT_EQ(readers_inside.load(), 2);
}

TEST(SyncMutexTest, WriterExcludesReader) {
  sync::Mutex mu;
  std::atomic<bool> writer_done{false};
  mu.Lock();
  std::thread reader([&] {
    sync::ReaderMutexLock lock(&mu);
    // The reader can only get here after the writer released.
    EXPECT_TRUE(writer_done.load());
  });
  writer_done.store(true);
  mu.Unlock();
  reader.join();
}

TEST(SyncCondVarTest, WaitNotifyHandsOffThroughThePredicateLoop) {
  sync::Mutex mu;
  sync::CondVar cv;
  bool ready = false;
  int observed = 0;
  // The consumer spells the predicate loop out, exactly as the header
  // prescribes for every production wait site.
  std::thread consumer([&] {
    mu.Lock();
    while (!ready) cv.Wait(&mu);
    observed = 42;
    mu.Unlock();
  });
  {
    sync::MutexLock lock(&mu);
    ready = true;
  }
  cv.NotifyOne();
  consumer.join();
  EXPECT_EQ(observed, 42);
}

TEST(SyncCondVarTest, NotifyAllWakesEveryWaiter) {
  sync::Mutex mu;
  sync::CondVar cv;
  bool go = false;
  std::atomic<int> woken{0};
  constexpr int kWaiters = 4;
  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      mu.Lock();
      while (!go) cv.Wait(&mu);
      mu.Unlock();
      woken.fetch_add(1);
    });
  }
  {
    sync::MutexLock lock(&mu);
    go = true;
  }
  cv.NotifyAll();
  for (std::thread& t : waiters) t.join();
  EXPECT_EQ(woken.load(), kWaiters);
}

TEST(SyncCondVarTest, WaitUntilTimesOutAndReturnsWithTheLockHeld) {
  sync::Mutex mu;
  sync::CondVar cv;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(10);
  mu.Lock();
  // Nothing ever notifies; spurious wakeups may return no_timeout early,
  // so loop until the deadline verdict arrives.
  while (cv.WaitUntil(&mu, deadline) != std::cv_status::timeout) {
  }
  EXPECT_GE(std::chrono::steady_clock::now(), deadline);
  // The lock must be held again on return: an exclusive TryLock from
  // another thread has to fail.
  std::thread prober([&mu] {
    if (mu.TryLock()) {
      ADD_FAILURE() << "WaitUntil returned without reacquiring the lock";
      mu.Unlock();
    }
  });
  prober.join();
  mu.Unlock();
}

}  // namespace
}  // namespace t2vec
