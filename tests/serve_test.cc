// Serving-layer tests: micro-batched EmbeddingService results must be
// bit-identical to sequential EncodeOne at every thread count and under
// randomized concurrent arrival; backpressure and deadlines must surface as
// statuses without wedging Shutdown; EmbeddingStore must round-trip through
// snapshots and answer kNN in trajectory-id space.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <random>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/t2vec.h"
#include "eval/experiments.h"
#include "serve/embedding_service.h"
#include "serve/embedding_store.h"
#include "traj/generator.h"

namespace t2vec::serve {
namespace {

class ServeTest : public ::testing::Test {
 protected:
  static const core::T2Vec& Model() {
    static core::T2Vec* model = [] {
      const eval::ExperimentData data =
          eval::MakeData(eval::DatasetKind::kPortoLike, 120, 0);
      core::T2VecConfig config;
      config.hidden = 24;
      config.embed_dim = 16;
      config.layers = 1;
      config.max_iterations = 8;
      config.validate_every = 100;
      config.pretrain_epochs = 1;
      config.r1_grid = {0.0, 0.4};
      config.r2_grid = {0.0};
      return new core::T2Vec(
          core::T2Vec::Train(data.train.trajectories(), config));
    }();
    return *model;
  }

  static const traj::Dataset& Trips() {
    static traj::Dataset* trips = [] {
      traj::SyntheticTrajectoryGenerator generator(
          traj::GeneratorConfig::PortoLike());
      return new traj::Dataset(generator.Generate(40));
    }();
    return *trips;
  }

  static bool BitIdentical(const std::vector<float>& a,
                           const std::vector<float>& b) {
    return a.size() == b.size() &&
           std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
  }
};

// The core serving contract: whatever micro-batches form under concurrent
// randomized arrival, every returned vector matches EncodeOne bit for bit —
// at 1, 2, and 8 encoder threads.
TEST_F(ServeTest, SubmitBitIdenticalToEncodeOneAcrossThreadCounts) {
  std::vector<std::vector<float>> expected;
  expected.reserve(Trips().size());
  for (const traj::Trajectory& trip : Trips().trajectories()) {
    expected.push_back(Model().EncodeOne(trip));
  }

  for (const int threads : {1, 2, 8}) {
    SCOPED_TRACE("num_threads=" + std::to_string(threads));
    ServiceOptions options;
    options.num_threads = threads;
    options.max_batch = 8;
    options.batch_window = std::chrono::microseconds(500);
    EmbeddingService service(&Model(), options);

    // Four clients submit disjoint slices in shuffled order with jittered
    // arrival times, so batches mix lengths and compositions every run.
    constexpr size_t kClients = 4;
    std::vector<std::vector<std::pair<size_t, std::future<
        EmbeddingService::EncodeResult>>>> futures(kClients);
    std::vector<std::thread> clients;
    for (size_t c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        std::mt19937 rng(static_cast<unsigned>(1234 + c + threads));
        std::vector<size_t> order;
        for (size_t i = c; i < Trips().size(); i += kClients) {
          order.push_back(i);
        }
        std::shuffle(order.begin(), order.end(), rng);
        std::uniform_int_distribution<int> jitter_us(0, 200);
        for (const size_t i : order) {
          futures[c].emplace_back(i, service.Submit(Trips()[i]));
          std::this_thread::sleep_for(
              std::chrono::microseconds(jitter_us(rng)));
        }
      });
    }
    for (std::thread& t : clients) t.join();

    size_t fulfilled = 0;
    for (auto& per_client : futures) {
      for (auto& [i, future] : per_client) {
        EmbeddingService::EncodeResult result = future.get();
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        EXPECT_TRUE(BitIdentical(result.value(), expected[i]))
            << "trajectory " << i;
        ++fulfilled;
      }
    }
    EXPECT_EQ(fulfilled, Trips().size());
    service.Shutdown();
    EXPECT_EQ(service.metrics().completed.value(),
              static_cast<int64_t>(Trips().size()));
    EXPECT_GE(service.metrics().flushes.value(), 1);
  }
}

TEST_F(ServeTest, QueueFullRejectsWithUnavailable) {
  ServiceOptions options;
  options.queue_capacity = 2;
  options.max_batch = 64;  // Never fills; dispatcher must wait the window.
  options.batch_window = std::chrono::milliseconds(200);
  EmbeddingService service(&Model(), options);

  std::vector<std::future<EmbeddingService::EncodeResult>> futures;
  for (size_t i = 0; i < 10; ++i) futures.push_back(service.Submit(Trips()[i]));

  size_t accepted = 0;
  size_t rejected = 0;
  for (auto& future : futures) {
    EmbeddingService::EncodeResult result = future.get();
    if (result.ok()) {
      ++accepted;
    } else {
      EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
      ++rejected;
    }
  }
  // The window is long enough that submissions far outpace the first flush:
  // exactly queue_capacity requests fit, the rest bounce.
  EXPECT_EQ(accepted, options.queue_capacity);
  EXPECT_EQ(rejected, futures.size() - options.queue_capacity);
  EXPECT_EQ(service.metrics().rejected_queue_full.value(),
            static_cast<int64_t>(rejected));
}

TEST_F(ServeTest, ExpiredDeadlineSurfacesWithoutWedgingShutdown) {
  ServiceOptions options;
  options.batch_window = std::chrono::milliseconds(50);
  EmbeddingService service(&Model(), options);

  // Already expired when submitted: must resolve to kDeadlineExceeded.
  auto expired = service.SubmitWithDeadline(
      Trips()[0], EmbeddingService::Clock::now() - std::chrono::seconds(1));
  // A generous deadline must not trip.
  auto live = service.SubmitWithDeadline(
      Trips()[1], EmbeddingService::Clock::now() + std::chrono::minutes(5));

  EmbeddingService::EncodeResult expired_result = expired.get();
  ASSERT_FALSE(expired_result.ok());
  EXPECT_EQ(expired_result.status().code(), StatusCode::kDeadlineExceeded);

  EmbeddingService::EncodeResult live_result = live.get();
  ASSERT_TRUE(live_result.ok()) << live_result.status().ToString();

  service.Shutdown();  // Must return despite the expired request.
  EXPECT_EQ(service.metrics().deadline_expired.value(), 1);
}

TEST_F(ServeTest, ShutdownDrainsQueuedWorkAndRejectsNewWork) {
  ServiceOptions options;
  options.batch_window = std::chrono::milliseconds(100);
  EmbeddingService service(&Model(), options);

  std::vector<std::future<EmbeddingService::EncodeResult>> futures;
  for (size_t i = 0; i < 12; ++i) futures.push_back(service.Submit(Trips()[i]));
  service.Shutdown();

  for (size_t i = 0; i < futures.size(); ++i) {
    EmbeddingService::EncodeResult result = futures[i].get();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(BitIdentical(result.value(), Model().EncodeOne(Trips()[i])));
  }

  EmbeddingService::EncodeResult late = service.Submit(Trips()[0]).get();
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(service.metrics().rejected_shutdown.value(), 1);
  service.Shutdown();  // Idempotent.
}

TEST_F(ServeTest, MetricsJsonSnapshotIsWellFormed) {
  EmbeddingService service(&Model(), {});
  service.Submit(Trips()[0]).get();
  service.Shutdown();

  const std::string json = service.metrics().ToJson();
  for (const char* key :
       {"\"counters\"", "\"histograms\"", "\"submitted\"", "\"completed\"",
        "\"queue_depth\"", "\"batch_size\"", "\"flush_latency_us\"",
        "\"request_latency_us\"", "\"p50\"", "\"p99\"", "\"buckets\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
  EXPECT_NE(json.find("\"submitted\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"completed\": 1"), std::string::npos) << json;
}

TEST(HistogramTest, QuantilesBracketObservations) {
  Histogram h(LatencyBucketsUs());
  for (int i = 1; i <= 1000; ++i) h.Observe(static_cast<double>(i));
  EXPECT_EQ(h.count(), 1000);
  EXPECT_DOUBLE_EQ(h.sum(), 500500.0);
  const double p50 = h.Quantile(0.5);
  const double p99 = h.Quantile(0.99);
  EXPECT_GT(p50, 300.0);
  EXPECT_LT(p50, 800.0);
  EXPECT_GT(p99, p50);
  EXPECT_LE(p99, 1000.0);
}

TEST_F(ServeTest, StoreAddFindKnnInIdSpace) {
  const nn::Matrix vectors = Model().Encode(Trips().trajectories());
  EmbeddingStore store(vectors.cols());
  for (size_t i = 0; i < vectors.rows(); ++i) {
    ASSERT_TRUE(
        store.Add(Trips()[i].id, {vectors.Row(i), vectors.cols()}).ok());
  }
  EXPECT_EQ(store.size(), Trips().size());
  EXPECT_TRUE(store.Contains(Trips()[3].id));
  EXPECT_FALSE(store.Contains(-999));
  EXPECT_EQ(store.Find(-999), nullptr);
  const float* found = store.Find(Trips()[3].id);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(std::memcmp(found, vectors.Row(3),
                        vectors.cols() * sizeof(float)),
            0);

  // The nearest stored vector to a stored vector is itself, reported under
  // its trajectory id with distance 0.
  const EmbeddingStore::Neighbors near =
      store.Knn({vectors.Row(5), vectors.cols()}, 3);
  ASSERT_EQ(near.size(), 3u);
  EXPECT_EQ(near.ids[0], Trips()[5].id);
  EXPECT_DOUBLE_EQ(near.distances[0], 0.0);
  EXPECT_LE(near.distances[1], near.distances[2]);
}

TEST_F(ServeTest, StoreRejectsDuplicateIdAndDimMismatch) {
  EmbeddingStore store(4);
  const std::vector<float> v{1.0f, 2.0f, 3.0f, 4.0f};
  ASSERT_TRUE(store.Add(7, v).ok());
  const Status dup = store.Add(7, v);
  EXPECT_EQ(dup.code(), StatusCode::kInvalidArgument);
  const Status bad_dim = store.Add(8, {v.data(), 3});
  EXPECT_EQ(bad_dim.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(store.size(), 1u);
}

TEST_F(ServeTest, StoreSaveLoadRoundTripsBitExactly) {
  const nn::Matrix vectors = Model().Encode(Trips().trajectories());
  EmbeddingStore store(vectors.cols());
  for (size_t i = 0; i < vectors.rows(); ++i) {
    ASSERT_TRUE(
        store.Add(Trips()[i].id, {vectors.Row(i), vectors.cols()}).ok());
  }

  const std::string path = ::testing::TempDir() + "/store.t2vstore";
  ASSERT_TRUE(store.Save(path).ok());
  Result<EmbeddingStore> loaded = EmbeddingStore::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().size(), store.size());
  EXPECT_EQ(loaded.value().dim(), store.dim());
  for (size_t i = 0; i < vectors.rows(); ++i) {
    const float* vec = loaded.value().Find(Trips()[i].id);
    ASSERT_NE(vec, nullptr);
    EXPECT_EQ(
        std::memcmp(vec, vectors.Row(i), vectors.cols() * sizeof(float)), 0);
  }
  std::remove(path.c_str());
}

TEST_F(ServeTest, StoreLoadMmapMatchesFullRead) {
  const nn::Matrix vectors = Model().Encode(Trips().trajectories());
  EmbeddingStore store(vectors.cols());
  for (size_t i = 0; i < vectors.rows(); ++i) {
    ASSERT_TRUE(
        store.Add(Trips()[i].id, {vectors.Row(i), vectors.cols()}).ok());
  }
  const std::string path = ::testing::TempDir() + "/store.mmap.t2vstore";
  ASSERT_TRUE(store.Save(path).ok());

  Result<EmbeddingStore> mapped = EmbeddingStore::LoadMmap(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_EQ(mapped.value().size(), store.size());
  // Zero-copy rows read back the exact bytes, and queries match the
  // full-read store bit for bit.
  for (size_t i = 0; i < vectors.rows(); ++i) {
    const float* vec = mapped.value().Find(Trips()[i].id);
    ASSERT_NE(vec, nullptr);
    EXPECT_EQ(
        std::memcmp(vec, vectors.Row(i), vectors.cols() * sizeof(float)), 0);
  }
  const EmbeddingStore::Neighbors a =
      store.Knn({vectors.Row(2), vectors.cols()}, 5);
  const EmbeddingStore::Neighbors b =
      mapped.value().Knn({vectors.Row(2), vectors.cols()}, 5);
  EXPECT_EQ(a.ids, b.ids);
  EXPECT_EQ(a.distances, b.distances);

  // A mapped store keeps growing (owned tail behind the borrowed prefix)
  // and re-saving it reproduces the original artifact plus the new row.
  std::vector<float> extra(vectors.cols(), 0.5f);
  ASSERT_TRUE(mapped.value().Add(-1, extra).ok());
  EXPECT_EQ(mapped.value().size(), store.size() + 1);
  const float* found = mapped.value().Find(-1);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(std::memcmp(found, extra.data(), extra.size() * sizeof(float)),
            0);
  std::remove(path.c_str());
}

TEST_F(ServeTest, StoreEmbedsIvfIndexAcrossSnapshots) {
  // An IVF-configured store past the training threshold snapshots its
  // quantizer: reloading under the same config must not retrain (the
  // embedded structure is adopted) and must answer identically.
  core::IndexConfig config;
  config.kind = core::IndexKind::kIvf;
  config.ivf_nlist = 4;
  config.ivf_nprobe = 2;
  config.ivf_train_iters = 3;
  config.ivf_seed = 5;
  config.ivf_train_per_list = 8;

  const size_t d = 8, n = 64;
  Rng rng(77);
  std::vector<float> data(n * d);
  for (float& v : data) v = static_cast<float>(rng.Gaussian());

  EmbeddingStore store(d, config);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(store.Add(static_cast<int64_t>(i), {&data[i * d], d}).ok());
  }
  EXPECT_EQ(store.Stats().kind, core::IndexKind::kIvf);
  EXPECT_TRUE(store.Stats().trained);

  const std::string path = ::testing::TempDir() + "/store.ivf.t2vstore";
  ASSERT_TRUE(store.Save(path).ok());

  for (const bool use_mmap : {false, true}) {
    Result<EmbeddingStore> loaded =
        use_mmap ? EmbeddingStore::LoadMmap(path, config)
                 : EmbeddingStore::Load(path, config);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    const core::IndexStats stats = loaded.value().Stats();
    EXPECT_EQ(stats.kind, core::IndexKind::kIvf);
    EXPECT_TRUE(stats.trained);
    EXPECT_EQ(stats.nlist, config.ivf_nlist);
    const std::vector<float> probe(d, 0.25f);
    const EmbeddingStore::Neighbors a = store.Knn(probe, 7);
    const EmbeddingStore::Neighbors b = loaded.value().Knn(probe, 7);
    EXPECT_EQ(a.ids, b.ids);
    EXPECT_EQ(a.distances, b.distances);
  }

  // Loading the same snapshot under a different kind rebuilds from rows:
  // the artifact is not locked to the backend that wrote it.
  Result<EmbeddingStore> exact = EmbeddingStore::Load(path);
  ASSERT_TRUE(exact.ok()) << exact.status().ToString();
  EXPECT_EQ(exact.value().Stats().kind, core::IndexKind::kExact);
  EXPECT_EQ(exact.value().size(), n);
  std::remove(path.c_str());
}

TEST_F(ServeTest, StoreLoadRejectsGarbage) {
  const std::string path = ::testing::TempDir() + "/garbage.t2vstore";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("not a store snapshot", f);
  std::fclose(f);
  Result<EmbeddingStore> r = EmbeddingStore::Load(path);
  EXPECT_FALSE(r.ok());
  std::remove(path.c_str());
}

// End-to-end serving shape: encode through the service, ingest into the
// store, query back — ids and bits line up with the offline pipeline.
TEST_F(ServeTest, ServiceFeedsStoreEndToEnd) {
  EmbeddingService service(&Model(), {});
  EmbeddingStore store(Model().config().hidden);
  for (size_t i = 0; i < 10; ++i) {
    EmbeddingService::EncodeResult result = service.Submit(Trips()[i]).get();
    ASSERT_TRUE(result.ok());
    ASSERT_TRUE(store.Add(Trips()[i].id, result.value()).ok());
  }
  const std::vector<float> probe = Model().EncodeOne(Trips()[4]);
  const EmbeddingStore::Neighbors near = store.Knn(probe, 1);
  ASSERT_EQ(near.size(), 1u);
  EXPECT_EQ(near.ids[0], Trips()[4].id);
  EXPECT_DOUBLE_EQ(near.distances[0], 0.0);
}

// Regression: SizeBuckets(8) used to emit {1,2,4,8,8} — a duplicate final
// bound that tripped the strictly-ascending CHECK in the Histogram
// constructor. Sweep every max up to 64 and construct the histogram each
// time (the construction *is* the assertion).
TEST(HistogramTest, SizeBucketsAreStrictlyAscendingForEveryMax) {
  for (size_t max = 0; max <= 64; ++max) {
    const std::vector<double> bounds = SizeBuckets(max);
    ASSERT_FALSE(bounds.empty()) << "max " << max;
    for (size_t i = 1; i < bounds.size(); ++i) {
      EXPECT_LT(bounds[i - 1], bounds[i]) << "max " << max << ", bound " << i;
    }
    EXPECT_DOUBLE_EQ(bounds.back(),
                     static_cast<double>(max < 1 ? 1 : max));
    Histogram h(bounds);  // Would CHECK-abort on a duplicate bound.
    h.Observe(static_cast<double>(max));
    EXPECT_EQ(h.count(), 1);
  }
}

// Regression: an empty histogram used to report "min": 0, "max": 0 —
// indistinguishable from a real observation at zero. Empty statistics must
// be null.
TEST(HistogramTest, EmptyHistogramReportsNullStats) {
  const Histogram empty(LatencyBucketsUs());
  const std::string json = empty.ToJson();
  EXPECT_NE(json.find("\"count\": 0"), std::string::npos) << json;
  for (const char* key : {"\"min\"", "\"max\"", "\"p50\"", "\"p90\"",
                          "\"p99\""}) {
    EXPECT_NE(json.find(std::string(key) + ": null"), std::string::npos)
        << "missing " << key << ": null in " << json;
  }

  Histogram one(LatencyBucketsUs());
  one.Observe(75.0);
  const std::string filled = one.ToJson();
  EXPECT_EQ(filled.find("null"), std::string::npos) << filled;
  EXPECT_NE(filled.find("\"min\": 75"), std::string::npos) << filled;
  EXPECT_NE(filled.find("\"max\": 75"), std::string::npos) << filled;
}

TEST(HistogramTest, QuantileEdgesAreExactMinAndMax) {
  Histogram h(LatencyBucketsUs());
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 0.0);  // Empty: defined as 0.
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 0.0);
  h.Observe(120.0);
  h.Observe(900.0);
  h.Observe(4500.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 120.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 4500.0);
}

// The documented writer/reader contract under real contention: Observe
// takes the histogram mutex exclusively, snapshots (ToJson/count/Quantile)
// take it shared. Every observation must land — a torn update or a lost
// increment shows up as a wrong final count (and as a race under the TSan
// concurrency gate, which runs this binary).
TEST(HistogramTest, ConcurrentObserveAndSnapshotKeepExactCounts) {
  Histogram h(LatencyBucketsUs());
  constexpr int kWriters = 4;
  constexpr int kReaders = 2;
  constexpr int kPerWriter = 500;
  std::vector<std::thread> threads;
  threads.reserve(kWriters + kReaders);
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&h, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        h.Observe(50.0 + static_cast<double>((w * kPerWriter + i) % 1000));
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&h] {
      for (int i = 0; i < 50; ++i) {
        // Snapshots mid-stream must be internally consistent, never torn:
        // whatever count a reader sees, the JSON must parse back the same.
        const std::string json = h.ToJson();
        EXPECT_NE(json.find("\"count\": "), std::string::npos);
        (void)h.Quantile(0.5);
        (void)h.count();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h.count(), kWriters * kPerWriter);
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 50.0);
}

// Regression: the store's Knn inherited VectorIndex's CHECK-abort when a
// client asked for more neighbors than the store held (or queried an empty
// store).
TEST_F(ServeTest, StoreKnnClampsKAndHandlesEmptyStore) {
  const size_t dim = Model().config().hidden;
  EmbeddingStore empty(dim);
  const std::vector<float> probe = Model().EncodeOne(Trips()[0]);
  EXPECT_EQ(empty.Knn(probe, 10).size(), 0u);

  EmbeddingStore store(dim);
  for (size_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(store.Add(Trips()[i].id, Model().EncodeOne(Trips()[i])).ok());
  }
  const EmbeddingStore::Neighbors all = store.Knn(probe, 100);
  EXPECT_EQ(all.size(), 3u);
  EXPECT_EQ(all.ids[0], Trips()[0].id);
}

}  // namespace
}  // namespace t2vec::serve
