// End-to-end pipeline tests: tiny-scale training runs that verify the full
// t2vec recipe learns representations with the paper's qualitative
// properties. These are the slowest tests in the suite (~1 min total).

#include <gtest/gtest.h>

#include <cstdio>

#include "common/rng.h"
#include "core/cell_pretrain.h"
#include "core/t2vec.h"
#include "core/vrnn.h"
#include "eval/experiments.h"
#include "geo/cell_knn.h"
#include "traj/generator.h"
#include "traj/tokenizer.h"
#include "traj/transforms.h"

namespace t2vec::core {
namespace {

// Small but meaningful training setup shared by the pipeline tests.
class PipelineTest : public ::testing::Test {
 protected:
  static const T2Vec& Model() {
    static T2Vec* model = [] {
      const eval::ExperimentData data = Data();
      T2VecConfig config = TinyTrainConfig();
      return new T2Vec(T2Vec::Train(data.train.trajectories(), config));
    }();
    return *model;
  }

  static const eval::ExperimentData& Data() {
    static eval::ExperimentData* data = [] {
      return new eval::ExperimentData(
          eval::MakeData(eval::DatasetKind::kPortoLike, 250, 250));
    }();
    return *data;
  }

  static T2VecConfig TinyTrainConfig() {
    T2VecConfig config;
    config.hidden = 48;
    config.embed_dim = 32;
    config.max_iterations = 320;
    config.validate_every = 160;
    config.r1_grid = {0.0, 0.4};
    config.r2_grid = {0.0, 0.4};
    config.pretrain_epochs = 6;
    return config;
  }
};

TEST_F(PipelineTest, TrainingImprovesOverUntrainedModel) {
  // The trained model must rank a query's interleaved twin far better than
  // a freshly initialized model does.
  const eval::ExperimentData& data = Data();
  eval::MssData mss = eval::BuildMss(data.test, 60, 120);

  const double trained_rank = eval::MeanRankOfT2Vec(Model(), mss);

  T2VecConfig config = TinyTrainConfig();
  config.max_iterations = 1;  // Effectively untrained.
  config.pretrain_cells = false;
  const T2Vec untrained = T2Vec::Train(data.train.trajectories(), config);
  const double untrained_rank = eval::MeanRankOfT2Vec(untrained, mss);

  EXPECT_LT(trained_rank, 0.7 * untrained_rank);
}

TEST_F(PipelineTest, RepresentationRobustToDownsampling) {
  // Core paper claim: the twin's rank should degrade only mildly when
  // queries and database are downsampled.
  const eval::ExperimentData& data = Data();

  eval::MssData clean = eval::BuildMss(data.test, 60, 120);
  const double clean_rank = eval::MeanRankOfT2Vec(Model(), clean);

  eval::MssData dropped = eval::BuildMss(data.test, 60, 120);
  Rng rng(5);
  eval::TransformMss(&dropped, /*r1=*/0.5, /*r2=*/0.0, rng);
  const double dropped_rank = eval::MeanRankOfT2Vec(Model(), dropped);

  // Allow degradation, but it must stay within a small factor (random
  // would be ~90).
  EXPECT_LT(dropped_rank, 4.0 * clean_rank + 10.0);
}

TEST_F(PipelineTest, VariantEmbedsNearOriginal) {
  // A downsampled+distorted variant of a trip must be closer to its
  // original than an unrelated trip is, for the overwhelming majority of
  // test trips.
  const eval::ExperimentData& data = Data();
  Rng rng(11);
  int good = 0, total = 0;
  for (size_t i = 0; i + 1 < data.test.size() && total < 60; i += 2) {
    const traj::Trajectory& trip = data.test[i];
    const traj::Trajectory& other = data.test[i + 1];
    traj::Trajectory variant = traj::Downsample(trip, 0.4, rng);
    variant = traj::Distort(variant, 0.4, rng);
    const double d_variant = Model().Distance(trip, variant);
    const double d_other = Model().Distance(trip, other);
    good += (d_variant < d_other);
    ++total;
  }
  EXPECT_GE(good, total * 8 / 10);
}

TEST_F(PipelineTest, SaveLoadPreservesEncodings) {
  const std::string path = ::testing::TempDir() + "/pipeline_model.t2vec";
  ASSERT_TRUE(Model().Save(path).ok());
  Result<T2Vec> loaded = T2Vec::Load(path);
  ASSERT_TRUE(loaded.ok());

  const traj::Trajectory& trip = Data().test[3];
  const std::vector<float> original = Model().EncodeOne(trip);
  const std::vector<float> restored = loaded.value().EncodeOne(trip);
  ASSERT_EQ(original.size(), restored.size());
  for (size_t j = 0; j < original.size(); ++j) {
    EXPECT_EQ(original[j], restored[j]);
  }
  std::remove(path.c_str());
}

TEST_F(PipelineTest, EncodeBatchMatchesEncodeOne) {
  const eval::ExperimentData& data = Data();
  std::vector<traj::Trajectory> trips = {data.test[0], data.test[1],
                                         data.test[2]};
  const nn::Matrix batch = Model().Encode(trips);
  for (size_t i = 0; i < trips.size(); ++i) {
    const std::vector<float> solo = Model().EncodeOne(trips[i]);
    for (size_t j = 0; j < solo.size(); ++j) {
      EXPECT_NEAR(batch.At(i, j), solo[j], 1e-5f);
    }
  }
}

TEST(CellPretrainTest, NeighborsEndUpCloserThanRandomCells) {
  // Algorithm 1 on a lattice of hot cells: after pretraining, adjacent
  // cells must be more similar (cosine) than random pairs.
  geo::SpatialGrid grid({0, 0}, {2000, 2000}, 100.0);
  std::vector<geo::Point> points;
  for (int r = 0; r < 20; ++r) {
    for (int c = 0; c < 20; ++c) {
      points.push_back(grid.CenterOf(grid.CellAt(r, c)));
    }
  }
  geo::HotCellVocab vocab(grid, points, 1);
  geo::CellKnnTable knn(vocab, 8, 100.0);

  T2VecConfig config;
  config.embed_dim = 24;
  config.pretrain_epochs = 20;
  Rng rng(3);
  const nn::Matrix emb = PretrainCellEmbeddings(vocab, knn, config, rng);

  auto cosine = [&](geo::Token a, geo::Token b) {
    double dot = 0, na = 0, nb = 0;
    for (size_t j = 0; j < emb.cols(); ++j) {
      dot += static_cast<double>(emb.At(static_cast<size_t>(a), j)) *
             emb.At(static_cast<size_t>(b), j);
      na += static_cast<double>(emb.At(static_cast<size_t>(a), j)) *
            emb.At(static_cast<size_t>(a), j);
      nb += static_cast<double>(emb.At(static_cast<size_t>(b), j)) *
            emb.At(static_cast<size_t>(b), j);
    }
    return dot / std::sqrt(na * nb + 1e-12);
  };

  Rng pick(4);
  double near_total = 0, far_total = 0;
  const int trials = 300;
  for (int t = 0; t < trials; ++t) {
    const geo::Token u = static_cast<geo::Token>(
        pick.UniformInt(vocab.num_hot_cells())) + geo::kNumSpecialTokens;
    const geo::Token neighbor = knn.Neighbors(u)[1];  // Nearest other cell.
    geo::Token random;
    do {
      random = static_cast<geo::Token>(
          pick.UniformInt(vocab.num_hot_cells())) + geo::kNumSpecialTokens;
    } while (random == u);
    near_total += cosine(u, neighbor);
    far_total += cosine(u, random);
  }
  EXPECT_GT(near_total / trials, far_total / trials + 0.1);
}

TEST(VRnnTest, TrainsAndEncodes) {
  const eval::ExperimentData data =
      eval::MakeData(eval::DatasetKind::kPortoLike, 120, 40);
  // Vocabulary over the training points.
  std::vector<geo::Point> points = data.train.AllPoints();
  geo::Point lo = points[0], hi = points[0];
  for (const geo::Point& p : points) {
    lo.x = std::min(lo.x, p.x);
    lo.y = std::min(lo.y, p.y);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
  }
  geo::SpatialGrid grid({lo.x - 100, lo.y - 100}, {hi.x + 100, hi.y + 100},
                        100.0);
  geo::HotCellVocab vocab(grid, points, 2);

  T2VecConfig config;
  config.embed_dim = 24;
  config.hidden = 32;
  config.layers = 1;
  Rng rng(5);
  VRnn vrnn(config, vocab.vocab_size(), rng);

  std::vector<traj::TokenSeq> seqs =
      traj::TokenizeAll(vocab, data.train.trajectories());
  Rng train_rng(6);
  const double early = vrnn.Train(seqs, 10, train_rng);
  const double late = vrnn.Train(seqs, 120, train_rng);
  EXPECT_LT(late, early);

  const nn::Matrix vecs = vrnn.EncodeBatch(
      traj::TokenizeAll(vocab, data.test.trajectories()));
  EXPECT_EQ(vecs.rows(), data.test.size());
  EXPECT_EQ(vecs.cols(), 32u);
  EXPECT_GT(vecs.SquaredNorm(), 0.0);
}

}  // namespace
}  // namespace t2vec::core
