// Bit-identity and gradient tests for the fused GEMM paths (nn/matrix.h):
// the fused gate-packed GRU, the packed attention, and the packed Linear
// sequence helpers must reproduce the unfused per-gate/per-step serial
// computation bit-for-bit, at every thread count, and their packs must
// refresh after parameter updates.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "gradcheck.h"
#include "nn/attention.h"
#include "nn/gru.h"
#include "nn/linear.h"
#include "nn/matrix.h"
#include "nn/optimizer.h"

namespace t2vec::nn {
namespace {

using ::t2vec::nn::testing::ExpectGradientsMatch;

// Restores the fused-kernel toggle on scope exit so test order can't leak.
class ScopedFused {
 public:
  explicit ScopedFused(bool on) : prev_(FusedKernelsEnabled()) {
    SetFusedKernels(on);
  }
  ~ScopedFused() { SetFusedKernels(prev_); }

 private:
  bool prev_;
};

std::vector<Matrix> RandomSequence(size_t steps, size_t batch, size_t dim,
                                   Rng& rng, float scale = 0.8f) {
  std::vector<Matrix> xs(steps);
  for (Matrix& x : xs) {
    x.Resize(batch, dim);
    for (size_t i = 0; i < x.size(); ++i) {
      x.data()[i] = static_cast<float>(rng.Uniform(-scale, scale));
    }
  }
  return xs;
}

void ExpectBitEqual(const Matrix& got, const Matrix& want, const char* what) {
  ASSERT_TRUE(SameShape(got, want)) << what;
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got.data()[i], want.data()[i]) << what << " index " << i;
  }
}

void ExpectBitEqual(const std::vector<Matrix>& got,
                    const std::vector<Matrix>& want, const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (size_t t = 0; t < got.size(); ++t) ExpectBitEqual(got[t], want[t], what);
}

// ---------------------------------------------------------------------------
// GRU: fused gate-packed forward/backward vs the unfused per-gate path.
// ---------------------------------------------------------------------------

// Everything one GRU forward+backward produces, for bit comparison.
struct GruRun {
  GruCache cache;
  std::vector<Matrix> d_xs;
  Matrix d_h0;
  std::vector<Matrix> grads;  // Copies of every parameter gradient.
};

GruRun RunGru(GruLayer* layer, const std::vector<Matrix>& xs, const Matrix& h0,
              const std::vector<std::vector<float>>& masks,
              const std::vector<Matrix>& d_hs, const Matrix& d_h_last) {
  GruRun run;
  layer->Forward(xs, h0, masks, &run.cache);
  for (Parameter* p : layer->Params()) p->ZeroGrad();
  layer->Backward(xs, h0, masks, run.cache, &d_hs, &d_h_last, &run.d_xs,
                  &run.d_h0);
  for (Parameter* p : layer->Params()) run.grads.push_back(p->grad);
  return run;
}

void ExpectSameRun(const GruRun& got, const GruRun& want) {
  ExpectBitEqual(got.cache.h, want.cache.h, "h");
  ExpectBitEqual(got.cache.z, want.cache.z, "z");
  ExpectBitEqual(got.cache.r, want.cache.r, "r");
  ExpectBitEqual(got.cache.c, want.cache.c, "c");
  ExpectBitEqual(got.d_xs, want.d_xs, "d_xs");
  ExpectBitEqual(got.d_h0, want.d_h0, "d_h0");
  ExpectBitEqual(got.grads, want.grads, "grads");
}

TEST(FusedGruTest, BitIdenticalToUnfusedSerialAtAnyThreadCount) {
  // Sizes picked to cross the kernel's micro-tile edges *and* the
  // parallelism thresholds (48 rows, ~2.7e6 flops in the packed gate GEMM),
  // so the fused path really runs tiled and threaded.
  const size_t steps = 3, batch = 48, in_dim = 96, hidden = 96;
  Rng rng(11);
  GruLayer layer("gru", in_dim, hidden, rng);
  auto xs = RandomSequence(steps, batch, in_dim, rng);
  Matrix h0(batch, hidden);
  for (size_t i = 0; i < h0.size(); ++i) {
    h0.data()[i] = static_cast<float>(rng.Uniform(-0.5, 0.5));
  }
  // Staggered sequence lengths exercise the mask carry-through.
  std::vector<std::vector<float>> masks(steps,
                                        std::vector<float>(batch, 1.0f));
  for (size_t b = 0; b < batch; ++b) {
    for (size_t t = steps - b % 2; t < steps; ++t) masks[t][b] = 0.0f;
  }
  auto d_hs = RandomSequence(steps, batch, hidden, rng, 0.3f);
  Matrix d_h_last = RandomSequence(1, batch, hidden, rng, 0.3f)[0];

  GruRun ref;
  {
    ScopedFused fused(false);
    ScopedNumThreads serial(1);
    ref = RunGru(&layer, xs, h0, masks, d_hs, d_h_last);
  }
  ScopedFused fused(true);
  for (int threads : {1, 2, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ScopedNumThreads scope(threads);
    ExpectSameRun(RunGru(&layer, xs, h0, masks, d_hs, d_h_last), ref);
  }
}

TEST(FusedGruTest, PacksRefreshAfterOptimizerStep) {
  const size_t steps = 2, batch = 3, in_dim = 5, hidden = 7;
  Rng rng(21);
  GruLayer layer("gru", in_dim, hidden, rng);
  auto xs = RandomSequence(steps, batch, in_dim, rng);
  Matrix h0(batch, hidden);
  GruCache before;
  {
    ScopedFused fused(true);
    layer.Forward(xs, h0, {}, &before);  // Builds the packs.
  }

  // Take a real optimizer step: packs must be rebuilt from the new weights.
  for (Parameter* p : layer.Params()) {
    p->ZeroGrad();
    for (size_t i = 0; i < p->grad.size(); ++i) {
      p->grad.data()[i] = 0.01f * static_cast<float>(i % 7);
    }
  }
  Sgd sgd(layer.Params(), /*lr=*/0.5f);
  sgd.Step();

  GruCache fused_after, unfused_after;
  {
    ScopedFused fused(true);
    layer.Forward(xs, h0, {}, &fused_after);
  }
  {
    ScopedFused fused(false);
    layer.Forward(xs, h0, {}, &unfused_after);
  }
  ExpectBitEqual(fused_after.h, unfused_after.h, "h after step");
  // And the step must actually have changed the output (guards against a
  // vacuously-passing comparison).
  EXPECT_GT(MaxAbsDiff(fused_after.h.back(), before.h.back()), 0.0f);
}

TEST(FusedGruTest, GradCheckWithFusedKernels) {
  ScopedFused fused(true);
  const size_t steps = 3, batch = 2, in_dim = 3, hidden = 4;
  Rng rng(33);
  GruLayer layer("gru", in_dim, hidden, rng);
  auto xs = RandomSequence(steps, batch, in_dim, rng);
  Matrix h0(batch, hidden);

  // Weighted sum of all step outputs: nontrivial gradient everywhere.
  auto loss_fn = [&]() {
    GruCache cache;
    layer.Forward(xs, h0, {}, &cache);
    double loss = 0.0, w = 0.6;
    for (const Matrix& h : cache.h) {
      for (size_t i = 0; i < h.size(); ++i) {
        loss += w * h.data()[i];
        w = -w * 0.95;
      }
    }
    return loss;
  };

  GruCache cache;
  layer.Forward(xs, h0, {}, &cache);
  std::vector<Matrix> d_hs;
  double w = 0.6;
  for (const Matrix& h : cache.h) {
    Matrix g(h.rows(), h.cols());
    for (size_t i = 0; i < g.size(); ++i) {
      g.data()[i] = static_cast<float>(w);
      w = -w * 0.95;
    }
    d_hs.push_back(std::move(g));
  }
  for (Parameter* p : layer.Params()) p->ZeroGrad();
  std::vector<Matrix> d_xs;
  Matrix d_h0;
  layer.Backward(xs, h0, {}, cache, &d_hs, nullptr, &d_xs, &d_h0);

  for (Parameter* p : layer.Params()) {
    ExpectGradientsMatch(&p->value, p->grad, loss_fn, 1e-2f, 3e-2, 10);
  }
  for (size_t t = 0; t < steps; ++t) {
    ExpectGradientsMatch(&xs[t], d_xs[t], loss_fn, 1e-2f, 3e-2, 6);
  }
}

// ---------------------------------------------------------------------------
// Attention: packed sequence GEMMs vs the per-step path.
// ---------------------------------------------------------------------------

struct AttentionRun {
  AttentionCache cache;
  std::vector<Matrix> d_dec;
  std::vector<Matrix> d_enc;
  std::vector<Matrix> grads;
};

AttentionRun RunAttention(Attention* attn, const std::vector<Matrix>& dec_hs,
                          const std::vector<Matrix>& enc_hs,
                          const std::vector<std::vector<float>>& src_masks,
                          const std::vector<Matrix>& d_output) {
  AttentionRun run;
  attn->Forward(dec_hs, enc_hs, src_masks, &run.cache);
  for (Parameter* p : attn->Params()) p->ZeroGrad();
  attn->Backward(dec_hs, enc_hs, src_masks, run.cache, d_output, &run.d_dec,
                 &run.d_enc);
  for (Parameter* p : attn->Params()) run.grads.push_back(p->grad);
  return run;
}

TEST(FusedAttentionTest, BitIdenticalToUnfusedSerialAtAnyThreadCount) {
  // S*B = 128 rows through the key projection (~2.4e6 flops): clears the
  // kernel's parallel thresholds.
  const size_t src_steps = 4, dec_steps = 3, batch = 32, hidden = 96;
  Rng rng(17);
  Attention attn("attn", hidden, rng);
  auto enc_hs = RandomSequence(src_steps, batch, hidden, rng);
  auto dec_hs = RandomSequence(dec_steps, batch, hidden, rng);
  auto d_output = RandomSequence(dec_steps, batch, hidden, rng, 0.3f);
  std::vector<std::vector<float>> src_masks(
      src_steps, std::vector<float>(batch, 1.0f));
  for (size_t b = 0; b < batch; ++b) {
    for (size_t s = src_steps - b % 3; s < src_steps; ++s) {
      src_masks[s][b] = 0.0f;
    }
  }

  AttentionRun ref;
  {
    ScopedFused fused(false);
    ScopedNumThreads serial(1);
    ref = RunAttention(&attn, dec_hs, enc_hs, src_masks, d_output);
  }
  ScopedFused fused(true);
  for (int threads : {1, 2, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ScopedNumThreads scope(threads);
    AttentionRun got = RunAttention(&attn, dec_hs, enc_hs, src_masks, d_output);
    ExpectBitEqual(got.cache.output, ref.cache.output, "output");
    ExpectBitEqual(got.cache.alphas, ref.cache.alphas, "alphas");
    ExpectBitEqual(got.d_dec, ref.d_dec, "d_dec");
    ExpectBitEqual(got.d_enc, ref.d_enc, "d_enc");
    ExpectBitEqual(got.grads, ref.grads, "grads");
  }
}

TEST(FusedAttentionTest, GradCheckWithFusedKernels) {
  ScopedFused fused(true);
  const size_t src_steps = 3, dec_steps = 2, batch = 2, hidden = 4;
  Rng rng(29);
  Attention attn("attn", hidden, rng);
  auto enc_hs = RandomSequence(src_steps, batch, hidden, rng);
  auto dec_hs = RandomSequence(dec_steps, batch, hidden, rng);

  auto loss_fn = [&]() {
    AttentionCache cache;
    attn.Forward(dec_hs, enc_hs, {}, &cache);
    double loss = 0.0, w = 0.8;
    for (const Matrix& h : cache.output) {
      for (size_t i = 0; i < h.size(); ++i) {
        loss += w * h.data()[i];
        w = -w * 0.9;
      }
    }
    return loss;
  };

  AttentionCache cache;
  attn.Forward(dec_hs, enc_hs, {}, &cache);
  std::vector<Matrix> d_output;
  double w = 0.8;
  for (const Matrix& h : cache.output) {
    Matrix g(h.rows(), h.cols());
    for (size_t i = 0; i < g.size(); ++i) {
      g.data()[i] = static_cast<float>(w);
      w = -w * 0.9;
    }
    d_output.push_back(std::move(g));
  }
  for (Parameter* p : attn.Params()) p->ZeroGrad();
  std::vector<Matrix> d_dec, d_enc;
  attn.Backward(dec_hs, enc_hs, {}, cache, d_output, &d_dec, &d_enc);

  for (Parameter* p : attn.Params()) {
    ExpectGradientsMatch(&p->value, p->grad, loss_fn, 1e-2f, 3e-2, 10);
  }
  for (size_t t = 0; t < dec_steps; ++t) {
    ExpectGradientsMatch(&dec_hs[t], d_dec[t], loss_fn, 1e-2f, 3e-2, 6);
  }
  for (size_t s = 0; s < src_steps; ++s) {
    ExpectGradientsMatch(&enc_hs[s], d_enc[s], loss_fn, 1e-2f, 3e-2, 6);
  }
}

// ---------------------------------------------------------------------------
// Linear: packed sequence helpers vs per-step Forward/Backward.
// ---------------------------------------------------------------------------

TEST(FusedLinearTest, SeqHelpersBitIdenticalToPerStepCalls) {
  const size_t steps = 4, batch = 32, in_dim = 96, out_dim = 96;
  Rng rng(41);
  Linear linear("proj", in_dim, out_dim, rng);
  auto xs = RandomSequence(steps, batch, in_dim, rng);
  auto d_outs = RandomSequence(steps, batch, out_dim, rng, 0.3f);

  // Reference: per-step calls (the original layer API), serial.
  std::vector<Matrix> ref_outs(steps), ref_dxs(steps);
  std::vector<Matrix> ref_grads;
  {
    ScopedNumThreads serial(1);
    for (size_t t = 0; t < steps; ++t) linear.Forward(xs[t], &ref_outs[t]);
    for (Parameter* p : linear.Params()) p->ZeroGrad();
    for (size_t t = 0; t < steps; ++t) {
      linear.Backward(xs[t], d_outs[t], &ref_dxs[t]);
    }
    for (Parameter* p : linear.Params()) ref_grads.push_back(p->grad);
  }

  for (bool use_fused : {false, true}) {
    for (int threads : {1, 8}) {
      SCOPED_TRACE("fused=" + std::to_string(use_fused) +
                   " threads=" + std::to_string(threads));
      ScopedFused fused(use_fused);
      ScopedNumThreads scope(threads);
      std::vector<Matrix> outs, d_xs;
      linear.ForwardSeq(xs, &outs);
      for (Parameter* p : linear.Params()) p->ZeroGrad();
      linear.BackwardSeq(xs, d_outs, &d_xs);
      ExpectBitEqual(outs, ref_outs, "outs");
      ExpectBitEqual(d_xs, ref_dxs, "d_xs");
      std::vector<Matrix> grads;
      for (Parameter* p : linear.Params()) grads.push_back(p->grad);
      ExpectBitEqual(grads, ref_grads, "grads");
    }
  }
}

}  // namespace
}  // namespace t2vec::nn
