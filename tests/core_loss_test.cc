#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/loss.h"
#include "gradcheck.h"
#include "nn/loss.h"
#include "nn/ops.h"

namespace t2vec::core {
namespace {

using ::t2vec::nn::testing::ExpectGradientsMatch;

// Fixture: a 5x5 lattice of hot cells (vocab size 25 + specials) with a
// K-nearest table, shared by the loss tests.
class LossTest : public ::testing::Test {
 protected:
  LossTest()
      : grid_({0, 0}, {500, 500}, 100.0),
        vocab_(MakeVocab()),
        knn_(vocab_, 6, 100.0),
        rng_(77),
        proj_(static_cast<size_t>(vocab_.vocab_size()), 8, rng_) {}

  geo::HotCellVocab MakeVocab() {
    std::vector<geo::Point> points;
    for (int r = 0; r < 5; ++r) {
      for (int c = 0; c < 5; ++c) {
        points.push_back(grid_.CenterOf(grid_.CellAt(r, c)));
      }
    }
    return geo::HotCellVocab(grid_, points, 1);
  }

  nn::Matrix RandomHidden(size_t batch) {
    nn::Matrix h(batch, 8);
    for (size_t i = 0; i < h.size(); ++i) {
      h.data()[i] = static_cast<float>(rng_.Uniform(-1, 1));
    }
    return h;
  }

  geo::SpatialGrid grid_;
  geo::HotCellVocab vocab_;
  geo::CellKnnTable knn_;
  Rng rng_;
  OutputProjection proj_;
};

TEST_F(LossTest, ProjectionFullLogitsShape) {
  nn::Matrix h = RandomHidden(3);
  nn::Matrix logits;
  proj_.FullLogits(h, &logits);
  EXPECT_EQ(logits.rows(), 3u);
  EXPECT_EQ(logits.cols(), static_cast<size_t>(vocab_.vocab_size()));
}

TEST_F(LossTest, SampledScoresMatchFullLogits) {
  nn::Matrix h = RandomHidden(1);
  nn::Matrix logits;
  proj_.FullLogits(h, &logits);
  std::vector<geo::Token> candidates = {4, 7, 20};
  std::vector<float> scores;
  proj_.SampledScores(h.Row(0), candidates, &scores);
  for (size_t i = 0; i < candidates.size(); ++i) {
    EXPECT_NEAR(scores[i], logits(0, static_cast<size_t>(candidates[i])),
                1e-5f);
  }
}

TEST_F(LossTest, SampledBackwardMatchesFullBackward) {
  nn::Matrix h = RandomHidden(1);
  // Gradient on two candidate scores.
  std::vector<geo::Token> candidates = {5, 9};
  std::vector<float> d_scores = {0.7f, -0.3f};

  // Full path: d_logits zero except candidates.
  nn::Matrix d_logits(1, proj_.vocab_size());
  d_logits(0, 5) = 0.7f;
  d_logits(0, 9) = -0.3f;
  proj_.weight().ZeroGrad();
  nn::Matrix d_h_full;
  proj_.FullBackward(h, d_logits, true, &d_h_full);
  nn::Matrix w_grad_full = proj_.weight().grad;

  proj_.weight().ZeroGrad();
  nn::Matrix d_h_sampled(1, 8);
  proj_.SampledBackward(h.Row(0), candidates, d_scores, true,
                        d_h_sampled.Row(0));
  EXPECT_LT(nn::MaxAbsDiff(d_h_full, d_h_sampled), 1e-5f);
  EXPECT_LT(nn::MaxAbsDiff(w_grad_full, proj_.weight().grad), 1e-5f);
}

TEST_F(LossTest, NllLossMatchesReferenceCrossEntropy) {
  NllLoss loss(&proj_);
  nn::Matrix h = RandomHidden(4);
  std::vector<geo::Token> targets = {5, geo::kPadToken, 12, geo::kEosToken};
  nn::Matrix d_h;
  proj_.weight().ZeroGrad();
  const double value = loss.StepLossAndGrad(h, targets, true, &d_h);

  nn::Matrix logits, d_logits;
  proj_.FullLogits(h, &logits);
  const double reference =
      nn::SoftmaxCrossEntropy(logits, targets, geo::kPadToken, &d_logits);
  EXPECT_NEAR(value, reference, 1e-5);
  // Padded row gets no hidden gradient.
  for (size_t j = 0; j < 8; ++j) EXPECT_EQ(d_h(1, j), 0.0f);
}

TEST_F(LossTest, SpatialLossDistributionPeaksAtTarget) {
  // With the exponential kernel, the target cell itself carries the largest
  // weight, so the optimal logits put the highest score on the target.
  // Verify via the gradient: at uniform logits, the most negative gradient
  // (strongest push up) is on the target cell.
  SpatialLoss loss(&proj_, &vocab_, 100.0);
  nn::Matrix h(1, 8);  // Zero hidden -> all logits equal.
  const geo::Token target = 12;
  std::vector<geo::Token> targets = {target};
  nn::Matrix d_h;
  proj_.weight().ZeroGrad();
  loss.StepLossAndGrad(h, targets, true, &d_h);
  // Gradient on logits = p - w; with p uniform, min over cells at max w.
  // Inspect through the weight gradient: dW = d_logits^T h = 0 since h = 0;
  // instead recompute explicitly.
  nn::Matrix logits, d_logits;
  proj_.FullLogits(h, &logits);
  // Build the same distribution the loss built.
  // (Indirect check: loss value must exceed 0 and be below log(V) since the
  // distribution is concentrated near the target.)
  const double value = loss.StepLossAndGrad(h, targets, false, &d_h);
  EXPECT_GT(value, 0.0);
  EXPECT_LT(value, std::log(static_cast<double>(vocab_.vocab_size())) + 1.0);
}

TEST_F(LossTest, SpatialLossWithTinyThetaMatchesNll) {
  // θ -> 0 collapses the kernel onto the target cell: L2 == L1.
  SpatialLoss l2(&proj_, &vocab_, 1e-3);
  NllLoss l1(&proj_);
  nn::Matrix h = RandomHidden(3);
  std::vector<geo::Token> targets = {8, 17, 23};

  nn::Matrix d_h_l2, d_h_l1;
  const double v2 = l2.StepLossAndGrad(h, targets, false, &d_h_l2);
  const double v1 = l1.StepLossAndGrad(h, targets, false, &d_h_l1);
  EXPECT_NEAR(v2, v1, 1e-3);
  EXPECT_LT(nn::MaxAbsDiff(d_h_l2, d_h_l1), 1e-4f);
}

TEST_F(LossTest, SpatialLossPenalizesFarMissesMore) {
  // Two logit configurations: mass on a neighbor cell of the target vs. on
  // a far-away cell. The spatial loss must prefer the neighbor.
  SpatialLoss loss(&proj_, &vocab_, 100.0);
  const geo::Token target = 12;   // Center cell (2,2).
  const geo::Token near_cell = 13;  // (2,3), 100 m away.
  const geo::Token far_cell = 24;   // (4,4), ~283 m away.

  // Craft projection weights so that h = e1 produces a large logit on the
  // chosen cell. Simpler: compare loss under two explicit hidden states
  // after setting rows of W.
  proj_.weight().value.SetZero();
  proj_.weight().value(static_cast<size_t>(near_cell), 0) = 5.0f;
  nn::Matrix h(1, 8);
  h(0, 0) = 1.0f;
  std::vector<geo::Token> targets = {target};
  nn::Matrix d_h;
  const double loss_near = loss.StepLossAndGrad(h, targets, false, &d_h);

  proj_.weight().value.SetZero();
  proj_.weight().value(static_cast<size_t>(far_cell), 0) = 5.0f;
  const double loss_far = loss.StepLossAndGrad(h, targets, false, &d_h);

  EXPECT_LT(loss_near, loss_far);

  // The plain NLL loss cannot tell the two apart (paper's Fig. 3 argument).
  NllLoss nll(&proj_);
  proj_.weight().value.SetZero();
  proj_.weight().value(static_cast<size_t>(near_cell), 0) = 5.0f;
  const double nll_near = nll.StepLossAndGrad(h, targets, false, &d_h);
  proj_.weight().value.SetZero();
  proj_.weight().value(static_cast<size_t>(far_cell), 0) = 5.0f;
  const double nll_far = nll.StepLossAndGrad(h, targets, false, &d_h);
  EXPECT_NEAR(nll_near, nll_far, 1e-5);
}

TEST_F(LossTest, ApproxLossDecreasesUnderGradientDescent) {
  // Sanity: SGD on h and W with the L3 gradients reduces the loss.
  T2VecConfig config;
  config.nce_noise = 10;
  ApproxSpatialLoss loss(&proj_, &vocab_, &knn_, config, Rng(5));
  nn::Matrix h = RandomHidden(2);
  std::vector<geo::Token> targets = {10, 16};

  double first_avg = 0.0, last_avg = 0.0;
  const int steps = 60;
  for (int step = 0; step < steps; ++step) {
    proj_.weight().ZeroGrad();
    nn::Matrix d_h;
    const double value = loss.StepLossAndGrad(h, targets, true, &d_h);
    if (step < 5) first_avg += value;
    if (step >= steps - 5) last_avg += value;
    nn::Axpy(-0.2f, proj_.weight().grad, &proj_.weight().value);
    nn::Axpy(-0.2f, d_h, &h);
  }
  EXPECT_LT(last_avg, first_avg);
}

TEST_F(LossTest, ApproxLossBinaryNceAlsoLearns) {
  T2VecConfig config;
  config.nce_noise = 10;
  config.nce_variant = NceVariant::kBinaryNce;
  ApproxSpatialLoss loss(&proj_, &vocab_, &knn_, config, Rng(6));
  nn::Matrix h = RandomHidden(2);
  std::vector<geo::Token> targets = {10, 16};

  double first_avg = 0.0, last_avg = 0.0;
  const int steps = 60;
  for (int step = 0; step < steps; ++step) {
    proj_.weight().ZeroGrad();
    nn::Matrix d_h;
    const double value = loss.StepLossAndGrad(h, targets, true, &d_h);
    if (step < 5) first_avg += value;
    if (step >= steps - 5) last_avg += value;
    nn::Axpy(-0.1f, proj_.weight().grad, &proj_.weight().value);
    nn::Axpy(-0.1f, d_h, &h);
  }
  EXPECT_LT(last_avg, first_avg);
}

TEST_F(LossTest, ApproxLossPadRowsUntouched) {
  T2VecConfig config;
  config.nce_noise = 8;
  ApproxSpatialLoss loss(&proj_, &vocab_, &knn_, config, Rng(7));
  nn::Matrix h = RandomHidden(3);
  std::vector<geo::Token> targets = {10, geo::kPadToken, 16};
  nn::Matrix d_h;
  loss.StepLossAndGrad(h, targets, false, &d_h);
  for (size_t j = 0; j < 8; ++j) EXPECT_EQ(d_h(1, j), 0.0f);
}

TEST_F(LossTest, ApproxLossEosTargetSupported) {
  T2VecConfig config;
  config.nce_noise = 8;
  ApproxSpatialLoss loss(&proj_, &vocab_, &knn_, config, Rng(8));
  nn::Matrix h = RandomHidden(1);
  std::vector<geo::Token> targets = {geo::kEosToken};
  nn::Matrix d_h;
  const double value = loss.StepLossAndGrad(h, targets, false, &d_h);
  EXPECT_GT(value, 0.0);
  EXPECT_TRUE(std::isfinite(value));
}

TEST_F(LossTest, MakeLossFactory) {
  T2VecConfig config;
  config.loss = LossKind::kL1;
  EXPECT_STREQ(MakeLoss(config, &proj_, &vocab_, &knn_, Rng(1))->Name(), "L1");
  config.loss = LossKind::kL2;
  EXPECT_STREQ(MakeLoss(config, &proj_, &vocab_, &knn_, Rng(1))->Name(), "L2");
  config.loss = LossKind::kL3;
  EXPECT_STREQ(MakeLoss(config, &proj_, &vocab_, &knn_, Rng(1))->Name(), "L3");
}

TEST(ConfigTest, FingerprintSensitivity) {
  T2VecConfig a, b;
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
  b.hidden = 128;
  EXPECT_NE(a.Fingerprint(), b.Fingerprint());
  b = a;
  b.loss = LossKind::kL1;
  EXPECT_NE(a.Fingerprint(), b.Fingerprint());
  b = a;
  b.r1_grid.push_back(0.8);
  EXPECT_NE(a.Fingerprint(), b.Fingerprint());
}

TEST(ConfigTest, SummaryMentionsLoss) {
  T2VecConfig config;
  config.loss = LossKind::kL2;
  config.pretrain_cells = false;
  EXPECT_NE(config.Summary().find("L2"), std::string::npos);
}

}  // namespace
}  // namespace t2vec::core
