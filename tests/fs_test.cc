// Durability-layer tests (DESIGN.md §7): CRC32C correctness, atomic
// publication semantics of AtomicFileWriter, deterministic fault injection,
// and the CRC framing / bounded reads of BinaryWriter/BinaryReader.

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/fs.h"
#include "common/serialize.h"

namespace t2vec {
namespace {

class FsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::DisarmAll();
    dir_ = std::filesystem::path(::testing::TempDir()) /
           ("fs_test_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    fault::DisarmAll();
    std::filesystem::remove_all(dir_);
  }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  static std::string Slurp(const std::string& path) {
    std::string out;
    EXPECT_TRUE(ReadFileToString(path, &out).ok());
    return out;
  }

  std::filesystem::path dir_;
};

// --- CRC32C ---

TEST_F(FsTest, Crc32cCheckValue) {
  // The standard CRC32C check value (RFC 3720 appendix, iSCSI).
  EXPECT_EQ(Crc32c(0, "123456789", 9), 0xE3069283u);
}

TEST_F(FsTest, Crc32cIncrementalMatchesOneShot) {
  const std::string data = "deterministic trajectory similarity";
  const uint32_t whole = Crc32c(0, data.data(), data.size());
  uint32_t running = 0;
  for (size_t i = 0; i < data.size(); i += 7) {
    const size_t n = std::min<size_t>(7, data.size() - i);
    running = Crc32c(running, data.data() + i, n);
  }
  EXPECT_EQ(running, whole);
  EXPECT_NE(Crc32c(0, "a", 1), Crc32c(0, "b", 1));
}

// --- AtomicFileWriter ---

TEST_F(FsTest, CommitPublishesAndRemovesTmp) {
  const std::string path = Path("artifact.bin");
  AtomicFileWriter writer(path);
  ASSERT_TRUE(writer.ok());
  writer.Append("hello", 5);
  ASSERT_TRUE(writer.Commit().ok());
  EXPECT_EQ(Slurp(path), "hello");
  EXPECT_FALSE(std::filesystem::exists(writer.tmp_path()));
}

TEST_F(FsTest, AbandonLeavesPreviousFileUntouched) {
  const std::string path = Path("artifact.bin");
  ASSERT_TRUE(WriteFileAtomic(path, "old contents").ok());
  {
    AtomicFileWriter writer(path);
    ASSERT_TRUE(writer.ok());
    writer.Append("new half-written", 16);
    // Destructor abandons: simulates a crash before Commit.
  }
  EXPECT_EQ(Slurp(path), "old contents");
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST_F(FsTest, WriteFileAtomicReplaces) {
  const std::string path = Path("artifact.txt");
  ASSERT_TRUE(WriteFileAtomic(path, "v1").ok());
  ASSERT_TRUE(WriteFileAtomic(path, "v2 is longer").ok());
  EXPECT_EQ(Slurp(path), "v2 is longer");
}

TEST_F(FsTest, ErrnoMessageCarriesContext) {
  const std::string msg = ErrnoMessage("write", "/some/path", ENOSPC);
  EXPECT_NE(msg.find("write failed for /some/path"), std::string::npos) << msg;
  EXPECT_NE(msg.find("errno 28"), std::string::npos) << msg;
}

// --- Fault injection ---

TEST_F(FsTest, EveryFsFaultSiteFailsSoftAndPreservesTarget) {
  const std::string path = Path("artifact.bin");
  ASSERT_TRUE(WriteFileAtomic(path, "survivor").ok());
  for (const char* site : {"fs.open", "fs.write", "fs.fsync", "fs.rename"}) {
    SCOPED_TRACE(site);
    fault::DisarmAll();
    fault::Arm(site, 1, EIO);
    const Status status = WriteFileAtomic(path, "doomed");
    ASSERT_FALSE(status.ok());
    EXPECT_NE(status.message().find("errno 5"), std::string::npos)
        << status.ToString();
    // The previous file is intact and no temporary is left behind.
    EXPECT_EQ(Slurp(path), "survivor");
    EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  }
  fault::DisarmAll();
  ASSERT_TRUE(WriteFileAtomic(path, "recovered").ok());
  EXPECT_EQ(Slurp(path), "recovered");
}

TEST_F(FsTest, FaultFiresOnNthHitExactlyOnce) {
  const std::string path = Path("artifact.bin");
  fault::Arm("fs.open", 2, ENOSPC);
  EXPECT_TRUE(WriteFileAtomic(path, "first").ok());    // Hit 1: passes.
  EXPECT_FALSE(WriteFileAtomic(path, "second").ok());  // Hit 2: fires.
  EXPECT_TRUE(WriteFileAtomic(path, "third").ok());    // Hit 3: passes again.
  EXPECT_EQ(fault::HitCount("fs.open"), 3u);
  EXPECT_EQ(Slurp(path), "third");
}

TEST_F(FsTest, ArmFromSpecParsesTriples) {
  EXPECT_TRUE(fault::ArmFromSpec("fs.write:1:EIO;fs.rename:2:28"));
  fault::Arm("fs.write", 1, EIO);  // Reset hit count for a clean assertion.
  EXPECT_FALSE(WriteFileAtomic(Path("a"), "x").ok());
  EXPECT_FALSE(fault::ArmFromSpec("missing-fields"));
  EXPECT_FALSE(fault::ArmFromSpec("site:1:EBOGUS"));
  EXPECT_FALSE(fault::ArmFromSpec("site:notanum:5"));
  EXPECT_FALSE(fault::ArmFromSpec("site:*:EIO"));  // Bare star: no period.
}

TEST_F(FsTest, PeriodicArmFiresOnEveryNthHit) {
  fault::ArmEvery("test.periodic", 3, EIO);
  for (int round = 0; round < 3; ++round) {
    EXPECT_EQ(T2VEC_FAULT_POINT("test.periodic"), 0) << round;
    EXPECT_EQ(T2VEC_FAULT_POINT("test.periodic"), 0) << round;
    EXPECT_EQ(T2VEC_FAULT_POINT("test.periodic"), EIO) << round;
  }
  EXPECT_EQ(fault::HitCount("test.periodic"), 9u);
}

TEST_F(FsTest, ArmFromSpecParsesPeriodicSites) {
  EXPECT_TRUE(fault::ArmFromSpec("test.rate:*2:ECONNRESET"));
  EXPECT_EQ(T2VEC_FAULT_POINT("test.rate"), 0);
  EXPECT_EQ(T2VEC_FAULT_POINT("test.rate"), ECONNRESET);
  EXPECT_EQ(T2VEC_FAULT_POINT("test.rate"), 0);
  EXPECT_EQ(T2VEC_FAULT_POINT("test.rate"), ECONNRESET);
}

TEST_F(FsTest, DisarmedFaultPointIsANoop) {
  EXPECT_EQ(T2VEC_FAULT_POINT("fs.write"), 0);
  EXPECT_EQ(fault::HitCount("fs.write"), 0u);
}

// --- BinaryWriter / BinaryReader framing ---

TEST_F(FsTest, RoundTripIsChecksummedAndExact) {
  const std::string path = Path("stream.bin");
  {
    BinaryWriter writer(path);
    ASSERT_TRUE(writer.ok());
    writer.WritePod<uint32_t>(0xABCD1234u);
    writer.WriteString("name");
    writer.WriteVector(std::vector<float>{1.5f, -2.5f, 3.0f});
    writer.WriteVector(std::vector<double>{});  // Empty vectors round-trip.
    ASSERT_TRUE(writer.Finish().ok());
  }
  BinaryReader reader(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_TRUE(reader.checksummed());
  uint32_t tag = 0;
  std::string name;
  std::vector<float> floats;
  std::vector<double> empty;
  EXPECT_TRUE(reader.ReadPod(&tag));
  EXPECT_TRUE(reader.ReadString(&name));
  EXPECT_TRUE(reader.ReadVector(&floats));
  EXPECT_TRUE(reader.ReadVector(&empty));
  EXPECT_EQ(tag, 0xABCD1234u);
  EXPECT_EQ(name, "name");
  EXPECT_EQ(floats, (std::vector<float>{1.5f, -2.5f, 3.0f}));
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(reader.remaining(), 0u);
  // Reading past the payload fails soft; the trailer is never served.
  uint8_t extra = 0;
  EXPECT_FALSE(reader.ReadPod(&extra));
}

TEST_F(FsTest, LegacyStreamWithoutTrailerStaysReadable) {
  const std::string path = Path("legacy.bin");
  // A pre-framing artifact: raw fields, no trailer.
  std::string raw;
  const uint64_t n = 2;
  const int32_t values[2] = {7, -9};
  raw.append(reinterpret_cast<const char*>(&n), sizeof(n));
  raw.append(reinterpret_cast<const char*>(values), sizeof(values));
  ASSERT_TRUE(WriteFileAtomic(path, raw).ok());

  BinaryReader reader(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_FALSE(reader.checksummed());
  std::vector<int32_t> decoded;
  EXPECT_TRUE(reader.ReadVector(&decoded));
  EXPECT_EQ(decoded, (std::vector<int32_t>{7, -9}));
}

TEST_F(FsTest, PayloadBitFlipFailsUpFront) {
  const std::string path = Path("stream.bin");
  {
    BinaryWriter writer(path);
    writer.WriteVector(std::vector<uint64_t>{1, 2, 3, 4});
    ASSERT_TRUE(writer.Finish().ok());
  }
  std::string bytes = Slurp(path);
  bytes[3] ^= 0x40;  // Flip one payload bit.
  ASSERT_TRUE(WriteFileAtomic(path, bytes).ok());
  BinaryReader reader(path);
  EXPECT_FALSE(reader.ok());
  EXPECT_NE(reader.status().message().find("checksum mismatch"),
            std::string::npos)
      << reader.status().ToString();
}

TEST_F(FsTest, StrippedTrailerReadsAsLegacy) {
  // Truncation that removes exactly the trailer leaves a byte-valid legacy
  // stream: BinaryReader cannot tell, so versioned owners must reject
  // "new format version but checksummed() == false".
  const std::string path = Path("stream.bin");
  {
    BinaryWriter writer(path);
    writer.WritePod<uint64_t>(42);
    ASSERT_TRUE(writer.Finish().ok());
  }
  std::string bytes = Slurp(path);
  ASSERT_GE(bytes.size(), kCrcTrailerBytes);
  bytes.resize(bytes.size() - kCrcTrailerBytes);
  ASSERT_TRUE(WriteFileAtomic(path, bytes).ok());
  BinaryReader reader(path);
  EXPECT_TRUE(reader.ok());
  EXPECT_FALSE(reader.checksummed());
}

TEST_F(FsTest, CorruptLengthFieldFailsSoftInsteadOfAllocating) {
  const std::string path = Path("stream.bin");
  // Legacy-mode stream whose vector length claims ~2^63 elements; the read
  // must fail cleanly without attempting the allocation.
  std::string raw;
  const uint64_t huge = uint64_t{1} << 63;
  raw.append(reinterpret_cast<const char*>(&huge), sizeof(huge));
  raw.append("short", 5);
  ASSERT_TRUE(WriteFileAtomic(path, raw).ok());

  {
    BinaryReader reader(path);
    std::vector<double> v;
    EXPECT_FALSE(reader.ReadVector(&v));
  }
  {
    BinaryReader reader(path);
    std::string s;
    EXPECT_FALSE(reader.ReadString(&s));
  }
}

TEST_F(FsTest, WriterSurfacesInjectedFaultThroughStatus) {
  fault::Arm("fs.write", 1, EDQUOT);
  const std::string path = Path("stream.bin");
  BinaryWriter writer(path);
  writer.WritePod<uint32_t>(1);
  const Status status = writer.Finish();
  EXPECT_FALSE(status.ok());
  EXPECT_FALSE(writer.ok());
  EXPECT_NE(status.message().find("write failed"), std::string::npos)
      << status.ToString();
  EXPECT_FALSE(std::filesystem::exists(path));
}

}  // namespace
}  // namespace t2vec
