#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "gradcheck.h"
#include "nn/attention.h"
#include "nn/matrix.h"

namespace t2vec::nn {
namespace {

using ::t2vec::nn::testing::ExpectGradientsMatch;

std::vector<Matrix> RandomSeq(size_t steps, size_t batch, size_t dim,
                              Rng& rng) {
  std::vector<Matrix> out(steps);
  for (Matrix& m : out) {
    m.Resize(batch, dim);
    for (size_t i = 0; i < m.size(); ++i) {
      m.data()[i] = static_cast<float>(rng.Uniform(-0.8, 0.8));
    }
  }
  return out;
}

// Scalar objective: pseudo-random weighted sum of all attention outputs.
double WeightedSum(const Attention& attn, const std::vector<Matrix>& dec,
                   const std::vector<Matrix>& enc,
                   const std::vector<std::vector<float>>& masks) {
  AttentionCache cache;
  attn.Forward(dec, enc, masks, &cache);
  double loss = 0.0;
  double w = 0.9;
  for (const Matrix& out : cache.output) {
    for (size_t i = 0; i < out.size(); ++i) {
      loss += w * out.data()[i];
      w = -w * 0.95;
    }
  }
  return loss;
}

void BuildUpstream(const AttentionCache& cache, std::vector<Matrix>* d_out) {
  d_out->clear();
  double w = 0.9;
  for (const Matrix& out : cache.output) {
    Matrix g(out.rows(), out.cols());
    for (size_t i = 0; i < g.size(); ++i) {
      g.data()[i] = static_cast<float>(w);
      w = -w * 0.95;
    }
    d_out->push_back(std::move(g));
  }
}

TEST(AttentionTest, AlphasAreMaskedDistributions) {
  Rng rng(1);
  Attention attn("attn", 5, rng);
  auto dec = RandomSeq(3, 2, 5, rng);
  auto enc = RandomSeq(4, 2, 5, rng);
  // Source lengths: 4 for row 0, 2 for row 1.
  std::vector<std::vector<float>> masks = {
      {1, 1}, {1, 1}, {1, 0}, {1, 0}};
  AttentionCache cache;
  attn.Forward(dec, enc, masks, &cache);
  for (const Matrix& alpha : cache.alphas) {
    for (size_t b = 0; b < 2; ++b) {
      double total = 0.0;
      for (size_t s = 0; s < 4; ++s) total += alpha(b, s);
      EXPECT_NEAR(total, 1.0, 1e-5);
    }
    // Masked positions get zero weight.
    EXPECT_NEAR(alpha(1, 2), 0.0f, 1e-12f);
    EXPECT_NEAR(alpha(1, 3), 0.0f, 1e-12f);
  }
}

TEST(AttentionTest, OutputInTanhRange) {
  Rng rng(2);
  Attention attn("attn", 6, rng);
  auto dec = RandomSeq(2, 3, 6, rng);
  auto enc = RandomSeq(5, 3, 6, rng);
  AttentionCache cache;
  attn.Forward(dec, enc, {}, &cache);
  ASSERT_EQ(cache.output.size(), 2u);
  for (const Matrix& out : cache.output) {
    for (size_t i = 0; i < out.size(); ++i) {
      EXPECT_LT(std::fabs(out.data()[i]), 1.0f);
    }
  }
}

struct AttnCase {
  size_t dec_steps, src_steps, batch, dim;
  bool masked;
};

class AttentionGradTest : public ::testing::TestWithParam<AttnCase> {};

TEST_P(AttentionGradTest, GradCheckAllPaths) {
  const AttnCase& tc = GetParam();
  Rng rng(7);
  Attention attn("attn", tc.dim, rng);
  auto dec = RandomSeq(tc.dec_steps, tc.batch, tc.dim, rng);
  auto enc = RandomSeq(tc.src_steps, tc.batch, tc.dim, rng);
  std::vector<std::vector<float>> masks;
  if (tc.masked) {
    for (size_t s = 0; s < tc.src_steps; ++s) {
      std::vector<float> m(tc.batch, 1.0f);
      for (size_t b = 0; b < tc.batch; ++b) {
        if (s >= tc.src_steps - b % 2) m[b] = 0.0f;
      }
      masks.push_back(std::move(m));
    }
  }

  auto loss_fn = [&]() { return WeightedSum(attn, dec, enc, masks); };

  AttentionCache cache;
  attn.Forward(dec, enc, masks, &cache);
  std::vector<Matrix> d_out;
  BuildUpstream(cache, &d_out);

  for (Parameter* p : attn.Params()) p->ZeroGrad();
  std::vector<Matrix> d_dec, d_enc;
  attn.Backward(dec, enc, masks, cache, d_out, &d_dec, &d_enc);

  for (Parameter* p : attn.Params()) {
    ExpectGradientsMatch(&p->value, p->grad, loss_fn, 1e-2f, 3e-2, 16);
  }
  for (size_t t = 0; t < tc.dec_steps; ++t) {
    ExpectGradientsMatch(&dec[t], d_dec[t], loss_fn, 1e-2f, 3e-2, 10);
  }
  for (size_t s = 0; s < tc.src_steps; ++s) {
    ExpectGradientsMatch(&enc[s], d_enc[s], loss_fn, 1e-2f, 3e-2, 10);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, AttentionGradTest,
    ::testing::Values(AttnCase{1, 1, 1, 3, false},
                      AttnCase{2, 3, 2, 4, false},
                      AttnCase{3, 4, 2, 4, true},
                      AttnCase{2, 5, 3, 5, true}));

}  // namespace
}  // namespace t2vec::nn
