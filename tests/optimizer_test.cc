#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "nn/optimizer.h"
#include "nn/parameter.h"

namespace t2vec::nn {
namespace {

// Minimizes f(w) = 0.5 * ||w - target||^2 whose gradient is (w - target).
void FillGradTowards(Parameter* p, const Matrix& target) {
  for (size_t i = 0; i < p->value.size(); ++i) {
    p->grad.data()[i] = p->value.data()[i] - target.data()[i];
  }
}

double DistanceTo(const Parameter& p, const Matrix& target) {
  double acc = 0.0;
  for (size_t i = 0; i < p.value.size(); ++i) {
    const double d = p.value.data()[i] - target.data()[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

TEST(SgdTest, SingleStepIsGradientDescent) {
  Parameter p("p", 1, 2);
  p.value(0, 0) = 1.0f;
  p.value(0, 1) = -2.0f;
  p.grad(0, 0) = 0.5f;
  p.grad(0, 1) = -1.0f;
  Sgd sgd({&p}, 0.1f);
  sgd.Step();
  EXPECT_FLOAT_EQ(p.value(0, 0), 1.0f - 0.1f * 0.5f);
  EXPECT_FLOAT_EQ(p.value(0, 1), -2.0f + 0.1f * 1.0f);
}

TEST(SgdTest, ConvergesOnQuadratic) {
  Rng rng(1);
  Parameter p("p", 2, 3);
  InitUniform(&p.value, 1.0f, rng);
  Matrix target(2, 3, 0.7f);
  Sgd sgd({&p}, 0.2f);
  for (int iter = 0; iter < 200; ++iter) {
    FillGradTowards(&p, target);
    sgd.Step();
  }
  EXPECT_LT(DistanceTo(p, target), 1e-4);
}

TEST(SgdTest, MomentumAcceleratesConvergence) {
  Rng rng(2);
  Parameter a("a", 2, 2), b("b", 2, 2);
  InitUniform(&a.value, 1.0f, rng);
  b.value = a.value;
  Matrix target(2, 2, -0.3f);
  Sgd plain({&a}, 0.05f);
  Sgd momentum({&b}, 0.05f, 0.9f);
  for (int iter = 0; iter < 30; ++iter) {
    FillGradTowards(&a, target);
    plain.Step();
    FillGradTowards(&b, target);
    momentum.Step();
  }
  EXPECT_LT(DistanceTo(b, target), DistanceTo(a, target));
}

TEST(AdamTest, ConvergesOnQuadratic) {
  Rng rng(3);
  Parameter p("p", 3, 3);
  InitUniform(&p.value, 2.0f, rng);
  Matrix target(3, 3, 1.5f);
  Adam adam({&p}, 0.05f);
  for (int iter = 0; iter < 500; ++iter) {
    FillGradTowards(&p, target);
    adam.Step();
  }
  EXPECT_LT(DistanceTo(p, target), 1e-2);
}

TEST(AdamTest, FirstStepSizeIsLearningRate) {
  // With bias correction, the first Adam update has magnitude ~lr regardless
  // of gradient scale.
  Parameter p("p", 1, 1);
  p.value(0, 0) = 0.0f;
  p.grad(0, 0) = 123.0f;
  Adam adam({&p}, 0.01f);
  adam.Step();
  EXPECT_NEAR(p.value(0, 0), -0.01f, 1e-4f);
}

TEST(AdamTest, HandlesSparseStyleGradients) {
  // Rows updated rarely should not be destroyed by stale moments.
  Parameter p("p", 2, 1);
  Adam adam({&p}, 0.1f);
  for (int iter = 0; iter < 10; ++iter) {
    adam.ZeroGrad();
    p.grad(0, 0) = 1.0f;  // Row 0 always has gradient, row 1 never.
    adam.Step();
  }
  EXPECT_LT(p.value(0, 0), -0.5f);
  EXPECT_FLOAT_EQ(p.value(1, 0), 0.0f);
}

TEST(OptimizerTest, ZeroGradClearsAll) {
  Parameter a("a", 2, 2), b("b", 1, 3);
  a.grad.Fill(1.0f);
  b.grad.Fill(2.0f);
  Sgd sgd({&a, &b}, 0.1f);
  sgd.ZeroGrad();
  EXPECT_EQ(a.grad.SquaredNorm(), 0.0);
  EXPECT_EQ(b.grad.SquaredNorm(), 0.0);
}

}  // namespace
}  // namespace t2vec::nn
